package tas

import (
	"bytes"
	"crypto/sha256"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// slowpathChaosCfg tunes the control-plane failure domain for fast
// tests: a 50ms control interval makes the configured RTO
// (StallIntervals × ControlInterval) an even 100ms, and a 200ms
// slow-path timeout bounds degraded-mode detection.
func slowpathChaosCfg() Config {
	return Config{
		ControlInterval:  50 * time.Millisecond,
		SlowPathTimeout:  200 * time.Millisecond,
		HandshakeRTO:     20 * time.Millisecond,
		HandshakeRetries: 3,
		MaxRetransmits:   8,
		Telemetry:        TelemetryConfig{Enabled: true},
	}
}

// TestChaosSlowPathCrashMidTransfer is the control-plane failure-domain
// acceptance test: the client's slow path is killed mid-transfer under
// burst loss, the fast path degrades (established flows keep moving,
// new work fails fast), a warm restart reconstructs every flow, the
// post-recovery RTO fires within 2× the configured RTO, and both
// transfers complete SHA-256-intact.
func TestChaosSlowPathCrashMidTransfer(t *testing.T) {
	fab, srv, cli := newPair(t, slowpathChaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}

	const nConns = 2
	const total = 64 << 10
	payloads := make([][]byte, nConns)
	for i := range payloads {
		payloads[i] = make([]byte, total)
		rand.New(rand.NewSource(int64(i + 1))).Read(payloads[i])
	}

	type result struct {
		sum [32]byte
		err error
	}
	results := make(chan result, nConns)
	for i := 0; i < nConns; i++ {
		go func() {
			c, err := ln.Accept(10 * time.Second)
			if err != nil {
				results <- result{err: err}
				return
			}
			var got bytes.Buffer
			buf := make([]byte, 16<<10)
			for {
				n, err := c.ReadTimeout(buf, 30*time.Second)
				if n > 0 {
					got.Write(buf[:n])
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					results <- result{err: err}
					return
				}
			}
			results <- result{sum: sha256.Sum256(got.Bytes())}
		}()
	}

	conns := make([]*Conn, nConns)
	for i := range conns {
		c, err := cli.NewContext().Dial("10.0.0.1", 8080)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}

	// Phase A: half of each payload flows while everything is healthy.
	for i, c := range conns {
		if _, err := c.WriteTimeout(payloads[i][:total/2], 10*time.Second); err != nil {
			t.Fatalf("healthy write on conn %d: %v", i, err)
		}
	}

	// Phase B: burst loss, then the control plane dies mid-transfer.
	fab.SetBurstLoss(GEConfig{PGoodToBad: 0.02, PBadToGood: 0.3, LossGood: 0, LossBad: 0.5}, 7)
	cli.KillSlowPath()

	deadline := time.Now().Add(5 * time.Second)
	for !cli.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !cli.Degraded() {
		t.Fatal("fast path never entered degraded mode")
	}
	if got := cli.Stats().SlowPathOutages; got < 1 {
		t.Fatalf("SlowPathOutages = %d, want >= 1", got)
	}

	// While degraded, new work fails fast with a typed error instead of
	// queueing for a control plane that is not there.
	start := time.Now()
	if _, err := cli.NewContext().DialTimeout("10.0.0.1", 8080, 5*time.Second); !ErrSlowPathDown(err) {
		t.Fatalf("degraded Dial: %v, want ErrSlowPathDown", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("degraded Dial took %v, want fast failure", elapsed)
	}
	if _, err := cli.NewContext().Listen(9999); !ErrSlowPathDown(err) {
		t.Fatalf("degraded Listen: %v, want ErrSlowPathDown", err)
	}

	// Established flows still accept and move data during the outage
	// (ACK-clocked delivery plus fast retransmit need no slow path).
	for i, c := range conns {
		if _, err := c.WriteTimeout(payloads[i][total/2:total-4096], 10*time.Second); err != nil {
			t.Fatalf("degraded write on conn %d: %v", i, err)
		}
	}
	fab.ClearBurstLoss()

	// Phase C: force a stall only an RTO can clear — the final chunk of
	// conn 0 goes out into a fully lossy fabric. With the slow path
	// dead there is no RTO detection: the retransmission counter stays
	// frozen for the rest of the outage (lossy flows stall until
	// recovery; that is the documented degraded-mode semantics).
	timeoutsBefore := cli.Slow().Counters().Timeouts
	fab.SetLoss(1.0)
	if _, err := conns[0].WriteTimeout(payloads[0][total-4096:], 10*time.Second); err != nil {
		t.Fatalf("stalled-chunk write: %v", err)
	}
	time.Sleep(300 * time.Millisecond) // 3× the configured RTO
	if got := cli.Slow().Counters().Timeouts; got != timeoutsBefore {
		t.Fatalf("RTO fired during outage: Timeouts %d -> %d", timeoutsBefore, got)
	}

	// Phase D: warm restart. Every live flow must be reconstructed.
	pre := cli.Engine().Table.Len()
	if pre != nConns {
		t.Fatalf("pre-crash table holds %d flows, want %d", pre, nConns)
	}
	rep := cli.Restart()
	if rep.FlowsReconstructed != pre || rep.FlowsAborted != 0 {
		t.Fatalf("recovery: %+v, want %d reconstructed, 0 aborted", rep, pre)
	}
	restartDone := time.Now()

	// The watchdog observes the resumed heartbeat and leaves degraded
	// mode.
	deadline = time.Now().Add(5 * time.Second)
	for cli.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cli.Degraded() {
		t.Fatal("fast path never recovered from degraded mode")
	}

	// The reconstructed RTO state must detect the stalled chunk within
	// 2× the configured RTO (StallIntervals × ControlInterval = 100ms).
	rtoDeadline := restartDone.Add(2 * 2 * 50 * time.Millisecond)
	for cli.Slow().Counters().Timeouts == timeoutsBefore && time.Now().Before(rtoDeadline) {
		time.Sleep(2 * time.Millisecond)
	}
	rtoAt := time.Now()
	if got := cli.Slow().Counters().Timeouts; got == timeoutsBefore {
		t.Fatalf("post-recovery RTO did not fire within %v", 2*2*50*time.Millisecond)
	}
	t.Logf("post-recovery RTO after %v (budget %v)", rtoAt.Sub(restartDone), 2*2*50*time.Millisecond)

	// Heal; retransmission completes both transfers intact.
	fab.SetLoss(0)
	if _, err := conns[1].WriteTimeout(payloads[1][total-4096:], 10*time.Second); err != nil {
		t.Fatalf("post-recovery write: %v", err)
	}
	for _, c := range conns {
		c.Close()
	}
	for i := 0; i < nConns; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("receiver: %v", r.err)
			}
			if r.sum != sha256.Sum256(payloads[0]) && r.sum != sha256.Sum256(payloads[1]) {
				t.Fatal("byte stream corrupted across slow-path crash")
			}
		case <-time.After(30 * time.Second):
			t.Logf("cli counters: %+v", cli.Slow().Counters())
			t.Logf("cli stats: %+v", cli.Stats())
			t.Logf("srv stats: %+v", srv.Stats())
			for j, c := range conns {
				t.Logf("conn %d stats: %+v aborted=%v", j, c.Stats(), c.Aborted())
			}
			t.Fatal("transfer did not complete after recovery")
		}
	}

	// A fresh Dial works again after recovery.
	nc, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatalf("Dial after recovery: %v", err)
	}
	nc.Close()

	// The outage is fully visible in the metrics exposition.
	var b strings.Builder
	if err := cli.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tas_slowpath_degraded 0",
		"tas_slowpath_outages_total 1",
		"tas_slowpath_restarts_total 1",
		"tas_slowpath_flows_reconstructed_total 2",
		"tas_slowpath_recovery_aborts_total 0",
		`tas_slowpath_outage_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestChaosDegradedServerShedsSyns: a server whose control plane is
// down sheds incoming SYNs at the fast-path door (counted under its own
// cause) so the peer's handshake times out cleanly, and a warm restart
// restores admission.
func TestChaosDegradedServerShedsSyns(t *testing.T) {
	_, srv, cli := newPair(t, slowpathChaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept(30 * time.Second)
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	// Prove liveness, then kill the server's control plane.
	c, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.KillSlowPath()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !srv.Degraded() {
		t.Fatal("server never entered degraded mode")
	}

	// A new connection attempt is shed at the server's door: the SYN is
	// counted, never queued, and the client times out.
	if _, err := cli.NewContext().DialTimeout("10.0.0.1", 8080, 500*time.Millisecond); err == nil {
		t.Fatal("Dial to degraded server succeeded")
	} else if !ErrTimeout(err) {
		t.Fatalf("Dial to degraded server: %v, want timeout", err)
	}
	if got := srv.Stats().SynShedDown; got < 1 {
		t.Fatalf("SynShedDown = %d, want >= 1", got)
	}
	var b strings.Builder
	if err := srv.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `tas_drops_total{cause="syn_shed_down"}`) {
		t.Fatal("metrics missing syn_shed_down drop cause")
	}

	// Warm restart restores admission for new connections.
	srv.Restart()
	deadline = time.Now().Add(5 * time.Second)
	for srv.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	nc, err := cli.NewContext().Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatalf("Dial after server restart: %v", err)
	}
	nc.Close()
}

// TestChaosSlowPathStallRecovers: a wedged (not crashed) control plane
// degrades the fast path for the stall's duration and recovers on its
// own once the loop resumes — no restart required.
func TestChaosSlowPathStallRecovers(t *testing.T) {
	_, srv, cli := newPair(t, slowpathChaosCfg())
	sctx := srv.NewContext()
	if _, err := sctx.Listen(8080); err != nil {
		t.Fatal(err)
	}

	cli.StallSlowPath(600 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for !cli.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !cli.Degraded() {
		t.Fatal("stall never degraded the fast path")
	}
	deadline = time.Now().Add(5 * time.Second)
	for cli.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cli.Degraded() {
		t.Fatal("fast path never recovered after the stall ended")
	}
	st := cli.Stats()
	if st.SlowPathOutages != 1 {
		t.Fatalf("SlowPathOutages = %d, want 1", st.SlowPathOutages)
	}
	if cli.Restarts() != 0 {
		t.Fatal("stall recovery should not require a restart")
	}
}
