package tas

import (
	"bytes"
	"crypto/sha256"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestChaosSynFloodRestartSurvival is the adversarial-traffic chaos
// acceptance test, designed to run under the race detector: a 50K pps
// spoofed SYN flood hammers the workload port while legitimate clients
// churn SHA-256-verified transfers through it, and the server's slow
// path is warm-restarted mid-flood. The SYN-cookie jar and its key
// epochs are engine-owned, so handshakes completed from cookies issued
// before the restart still validate after it. Every transfer must
// either complete intact or fail closed with a timeout — never hang
// past its deadline, never deliver corrupt bytes.
func TestChaosSynFloodRestartSurvival(t *testing.T) {
	cfg := Config{
		SynCookies:       "always",
		HandshakeStripes: 16,
		ListenBacklog:    16,
		HandshakeRTO:     20 * time.Millisecond,
		HandshakeRetries: 4,
	}
	fab, srv, cli := newPair(t, cfg)

	const transferBytes = 32 << 10

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	// Echo server: hash whatever arrives and send the digest back.
	acceptStop := make(chan struct{})
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		var wg sync.WaitGroup
		defer wg.Wait()
		for {
			c, err := ln.Accept(200 * time.Millisecond)
			if err != nil {
				select {
				case <-acceptStop:
					return
				default:
					continue
				}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				h := sha256.New()
				buf := make([]byte, 4096)
				var got int
				for got < transferBytes {
					n, err := c.Read(buf)
					if n > 0 {
						h.Write(buf[:n])
						got += n
					}
					if err != nil {
						return
					}
				}
				c.Write(h.Sum(nil))
			}()
		}
	}()

	// The blind attacker: spoofed sources, 100 SYNs every 2ms = 50K pps
	// against the workload port for the whole test.
	atk, err := fab.NewAttacker("10.99.0.1")
	if err != nil {
		t.Fatal(err)
	}
	defer atk.Close()
	floodStop := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		rng := rand.New(rand.NewSource(1009))
		tk := time.NewTicker(2 * time.Millisecond)
		defer tk.Stop()
		for {
			if _, err := atk.SynBurst("10.0.0.1", 8080, 100, rng); err != nil {
				return
			}
			select {
			case <-floodStop:
				return
			case <-tk.C:
			}
		}
	}()

	// Legitimate workers churn connections through the flooded port.
	// Under -race everything is ~20× slower, so outcomes are scored, not
	// assumed: each attempt must finish intact or fail closed in bounded
	// time. What must NOT happen is a hang or a digest mismatch.
	const workers = 4
	const perWorker = 12
	var (
		mu        sync.Mutex
		ok        int
		failed    int
		postOK    int
		firstErr  error
		restarted bool
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w + 1)))
			payload := make([]byte, transferBytes)
			rng.Read(payload)
			want := sha256.Sum256(payload)
			ctx := cli.NewContext()
			for i := 0; i < perWorker; i++ {
				err := func() error {
					c, err := ctx.DialTimeout("10.0.0.1", 8080, 3*time.Second)
					if err != nil {
						return err
					}
					defer c.Close()
					if _, err := c.Write(payload); err != nil {
						return err
					}
					digest := make([]byte, sha256.Size)
					if _, err := io.ReadFull(c, digest); err != nil {
						return err
					}
					if !bytes.Equal(digest, want[:]) {
						t.Error("digest mismatch: corrupt transfer under flood")
					}
					return nil
				}()
				mu.Lock()
				if err != nil {
					// Failing closed (timeout, reset by the restart, EOF
					// from a torn-down peer) is acceptable under attack;
					// hanging or corrupting is not. Hangs are caught by
					// the test deadline, corruption by the digest check.
					if firstErr == nil {
						firstErr = err
					}
					failed++
				} else {
					ok++
					if restarted {
						postOK++
					}
				}
				mu.Unlock()
			}
		}(w)
	}

	// Warm-restart the server's slow path mid-flood, triggered on
	// workload progress (a third of the transfers done) rather than a
	// wall-clock sleep, so the restart genuinely lands mid-workload on
	// fast and slow (race-detector) runs alike. The engine-owned cookie
	// jar (and challenge limiter) survive the loop teardown.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := ok + failed
		mu.Unlock()
		if n >= workers*perWorker/3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("workload never reached the restart trigger point")
		}
		time.Sleep(time.Millisecond)
	}
	preRestart := srv.Stats().SynCookiesValidated
	srv.Restart()
	mu.Lock()
	restarted = true
	mu.Unlock()

	wg.Wait()
	close(floodStop)
	<-floodDone
	close(acceptStop)
	ln.Close()
	<-acceptDone

	st := srv.Stats()
	t.Logf("transfers: %d ok (%d post-restart), %d failed closed (first: %v); cookies sent=%d validated=%d (pre-restart %d) rejected=%d",
		ok, postOK, failed, firstErr, st.SynCookiesSent, st.SynCookiesValidated, preRestart, st.SynCookiesRejected)

	if ok == 0 {
		t.Fatal("no legitimate transfer completed under the flood")
	}
	if postOK == 0 {
		t.Fatal("no transfer completed after the mid-flood warm restart")
	}
	if st.SynCookiesValidated == 0 {
		t.Fatal("no handshake was reconstructed from a SYN cookie")
	}
	if st.SynCookiesValidated < preRestart {
		t.Fatalf("SynCookiesValidated went backwards across restart: %d -> %d", preRestart, st.SynCookiesValidated)
	}
	if srv.Restarts() < 1 {
		t.Fatalf("Restarts = %d, want >= 1", srv.Restarts())
	}
}
