// Command tastop is a live terminal view of a running TAS service's
// latency observatory — the `top` for the data plane. It polls the
// telemetry HTTP surface (tasd -metrics-addr) and renders per-core
// packet rates, shmring queue depths, RTT/handshake/wakeup latency
// percentiles, and drop causes, refreshing in place:
//
//	tasd -metrics-addr :9090 &
//	tastop -addr localhost:9090
//
// One frame per -interval; -once prints a single frame and exits
// (useful for scripts and smoke tests).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:9090", "telemetry HTTP address of the running service")
		interval = flag.Duration("interval", time.Second, "refresh interval")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	flag.Parse()

	url := "http://" + *addr + "/metrics.json"
	var prev map[string]float64
	prevAt := time.Now()
	for {
		samples, err := scrape(url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tastop: %v\n", err)
			os.Exit(1)
		}
		now := time.Now()
		frame := render(samples, prev, now.Sub(prevAt))
		if *once {
			fmt.Print(frame)
			return
		}
		// Home + clear-to-end keeps the refresh flicker-free.
		fmt.Print("\x1b[H\x1b[2J" + frame)
		prev = index(samples)
		prevAt = now
		time.Sleep(*interval)
	}
}

func scrape(url string) ([]telemetry.Sample, error) {
	cli := http.Client{Timeout: 5 * time.Second}
	resp, err := cli.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	var out []telemetry.Sample
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// seriesKey flattens a sample identity for delta tracking.
func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := strings.Builder{}
	b.WriteString(name)
	for _, k := range keys {
		fmt.Fprintf(&b, "|%s=%s", k, labels[k])
	}
	return b.String()
}

func index(samples []telemetry.Sample) map[string]float64 {
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		m[seriesKey(s.Name, s.Labels)] = s.Value
	}
	return m
}

// view is the frame model extracted from one scrape.
type view struct {
	cores map[string]*coreRow // by core label
	rtt   map[string]float64  // metric name -> quantile value, for q labels
	drops []dropRow
	gauge map[string]float64 // unlabeled gauges by name
}

type coreRow struct {
	core                   string
	rxPPS, txPPS, ackPPS   float64
	rxDepth, kickDepth     float64
	ctxEvDepth, ctxTxDepth float64
}

type dropRow struct {
	cause string
	total float64
	rate  float64
}

// render builds one frame. prev/elapsed supply counter deltas for
// rates; on the first frame (prev nil) rates read 0.
func render(samples []telemetry.Sample, prev map[string]float64, elapsed time.Duration) string {
	v := view{cores: map[string]*coreRow{}, rtt: map[string]float64{}, gauge: map[string]float64{}}
	secs := elapsed.Seconds()
	rate := func(s telemetry.Sample) float64 {
		if prev == nil || secs <= 0 {
			return 0
		}
		d := s.Value - prev[seriesKey(s.Name, s.Labels)]
		if d < 0 { // counter reset (service restart)
			d = s.Value
		}
		return d / secs
	}
	core := func(s telemetry.Sample) *coreRow {
		c := s.Labels["core"]
		row := v.cores[c]
		if row == nil {
			row = &coreRow{core: c}
			v.cores[c] = row
		}
		return row
	}
	for _, s := range samples {
		switch s.Name {
		case "tas_fastpath_rx_packets_total":
			core(s).rxPPS = rate(s)
		case "tas_fastpath_tx_packets_total":
			core(s).txPPS = rate(s)
		case "tas_fastpath_acks_sent_total":
			core(s).ackPPS = rate(s)
		case "tas_ring_depth":
			switch s.Labels["ring"] {
			case "rx":
				core(s).rxDepth = s.Value
			case "kick":
				core(s).kickDepth = s.Value
			case "ctx_ev":
				core(s).ctxEvDepth = s.Value
			case "ctx_tx":
				core(s).ctxTxDepth = s.Value
			case "excq":
				v.gauge["excq_depth"] = s.Value
			}
		case "tas_rtt_us", "tas_handshake_us", "tas_wakeup_us":
			if q := s.Labels["quantile"]; q != "" {
				v.rtt[s.Name+" p"+q] = s.Value
			}
		case "tas_drops_total":
			if s.Value > 0 {
				v.drops = append(v.drops, dropRow{cause: s.Labels["cause"], total: s.Value, rate: rate(s)})
			}
		case "tas_flows_live", "tas_active_cores", "tas_accept_backlog",
			"tas_half_open", "tas_slowpath_degraded", "tas_live_payload_bytes":
			v.gauge[s.Name] = s.Value
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "tastop — flows %.0f  active-cores %.0f  half-open %.0f  accept-backlog %.0f  excq %.0f",
		v.gauge["tas_flows_live"], v.gauge["tas_active_cores"], v.gauge["tas_half_open"],
		v.gauge["tas_accept_backlog"], v.gauge["excq_depth"])
	if v.gauge["tas_slowpath_degraded"] > 0 {
		b.WriteString("  [SLOW PATH DEGRADED]")
	}
	b.WriteString("\n\n")

	b.WriteString("core     rx pps     tx pps    ack pps    rxq  kickq  ctx-ev  ctx-tx\n")
	names := make([]string, 0, len(v.cores))
	for c := range v.cores {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		r := v.cores[c]
		fmt.Fprintf(&b, "%-4s %10.0f %10.0f %10.0f %6.0f %6.0f %7.0f %7.0f\n",
			r.core, r.rxPPS, r.txPPS, r.ackPPS, r.rxDepth, r.kickDepth, r.ctxEvDepth, r.ctxTxDepth)
	}

	b.WriteString("\nlatency (µs)        p0.5       p0.9      p0.99     p0.999\n")
	for _, m := range []struct{ label, name string }{
		{"rtt", "tas_rtt_us"},
		{"handshake", "tas_handshake_us"},
		{"app wakeup", "tas_wakeup_us"},
	} {
		fmt.Fprintf(&b, "%-12s %10.1f %10.1f %10.1f %10.1f\n", m.label,
			v.rtt[m.name+" p0.5"], v.rtt[m.name+" p0.9"], v.rtt[m.name+" p0.99"], v.rtt[m.name+" p0.999"])
	}

	if len(v.drops) > 0 {
		sort.Slice(v.drops, func(i, j int) bool { return v.drops[i].total > v.drops[j].total })
		b.WriteString("\ndrops by cause          total       /s\n")
		for _, d := range v.drops {
			fmt.Fprintf(&b, "%-20s %9.0f %8.1f\n", d.cause, d.total, d.rate)
		}
	}
	return b.String()
}
