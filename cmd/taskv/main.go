// Command taskv runs the key-value store demo on the live TAS stack: a
// server service with a sharded store and a memslap-style client driving
// the paper's §5.3 workload (zipf keys, 90/10 GET/SET) over real TAS
// connections, printing throughput and hit rate.
//
//	taskv -duration 10s -conns 4 -keys 10000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	tas "repro"
	"repro/internal/apps/kv"
)

func main() {
	var (
		duration = flag.Duration("duration", 10*time.Second, "run time")
		conns    = flag.Int("conns", 4, "client connections")
		keys     = flag.Int("keys", 10000, "key-space size")
		cores    = flag.Int("cores", 2, "max fast-path cores")
	)
	flag.Parse()

	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.1", tas.Config{FastPathCores: *cores})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tas.Config{FastPathCores: *cores})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	store := kv.NewStore(16)
	w := kv.NewWorkload(rand.New(rand.NewSource(1)), *keys, 32, 64, 0.9, 0.9)
	w.Preload(store)
	fmt.Printf("store preloaded with %d keys\n", store.Len())

	sctx := srv.NewContext()
	ln, err := sctx.Listen(11211)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept(0)
			if err != nil {
				return
			}
			hctx := srv.NewContext()
			c.Rebind(hctx)
			go kv.ServeConn(c, store)
		}
	}()

	var ops, gets, hits atomic.Uint64
	stop := make(chan struct{})
	for i := 0; i < *conns; i++ {
		seed := int64(i + 100)
		go func() {
			ctx := cli.NewContext()
			c, err := ctx.Dial("10.0.0.1", 11211)
			if err != nil {
				log.Printf("dial: %v", err)
				return
			}
			client := kv.NewClient(c)
			wl := kv.NewWorkload(rand.New(rand.NewSource(seed)), *keys, 32, 64, 0.9, 0.9)
			for {
				select {
				case <-stop:
					return
				default:
				}
				req := wl.Next()
				if req.Op == kv.OpGet {
					gets.Add(1)
					if _, ok, err := client.Get(req.Key); err != nil {
						log.Printf("get: %v", err)
						return
					} else if ok {
						hits.Add(1)
					}
				} else if err := client.Set(req.Key, req.Value); err != nil {
					log.Printf("set: %v", err)
					return
				}
				ops.Add(1)
			}
		}()
	}

	deadline := time.After(*duration)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	var last uint64
	for {
		select {
		case <-deadline:
			close(stop)
			g, h := gets.Load(), hits.Load()
			fmt.Printf("total ops=%d gets=%d hit-rate=%.1f%%\n", ops.Load(), g, 100*float64(h)/float64(max64(g, 1)))
			return
		case <-tick.C:
			cur := ops.Load()
			fmt.Printf("%8d ops/s  (fast-path cores: %d)\n", cur-last, srv.ActiveCores())
			last = cur
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
