// Command tasbench regenerates the paper's evaluation tables and
// figures from this repository's simulators. Run one experiment by id,
// or all of them:
//
//	tasbench -list
//	tasbench -run table1
//	tasbench -run all -quick
//
// Output is the same rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured for each id.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		run    = flag.String("run", "", "experiment id (see -list), or 'all'")
		list   = flag.Bool("list", false, "list experiment ids")
		quick  = flag.Bool("quick", false, "scaled-down parameters (faster, noisier)")
		seed   = flag.Int64("seed", 1, "simulation seed")
		csvDir = flag.String("csv", "", "also write <id>.csv files into this directory")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nusage: tasbench -run <id>|all [-quick] [-seed N]")
		}
		return
	}

	cfg := bench.RunConfig{Seed: *seed, Quick: *quick}
	emit := func(res *bench.Result) {
		fmt.Println(res)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			}
		}
	}
	if *run == "all" {
		for _, e := range bench.All() {
			if e.Heavy {
				fmt.Printf("(skipping heavy experiment %s; run it explicitly with -run %s)\n\n", e.ID, e.ID)
				continue
			}
			start := time.Now()
			emit(e.Run(cfg))
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return
	}
	e, ok := bench.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
		os.Exit(1)
	}
	emit(e.Run(cfg))
}
