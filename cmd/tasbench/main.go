// Command tasbench regenerates the paper's evaluation tables and
// figures from this repository's simulators, and runs chaos scenarios
// from the declarative scenario engine. Run one experiment by id, or
// all of them:
//
//	tasbench -list
//	tasbench -run table1
//	tasbench -run all -quick
//
// or execute a scenario (a library name or a JSON spec file) and emit
// its machine-checkable run report:
//
//	tasbench -scenarios
//	tasbench -scenario flaky-rack
//	tasbench -scenario my-chaos.json -report report.json
//
// Output is the same rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured for each id.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/scenario"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (see -list), or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		quick    = flag.Bool("quick", false, "scaled-down parameters (faster, noisier)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		csvDir   = flag.String("csv", "", "also write <id>.csv files into this directory")
		scen     = flag.String("scenario", "", "run a chaos scenario: library name or JSON spec file")
		scenList = flag.Bool("scenarios", false, "list the scenario library")
		report   = flag.String("report", "", "write the scenario run report JSON to this file")
		traj     = flag.String("bench-json", "", "append the experiment result to this JSON trajectory file (e.g. BENCH_handshake.json)")
	)
	flag.Parse()

	if *scenList {
		fmt.Println("scenarios:")
		for _, n := range scenario.Names() {
			spec, err := scenario.Lookup(n)
			if err != nil {
				continue
			}
			fmt.Printf("  %-22s %s\n", n, spec.Description)
		}
		return
	}
	if *scen != "" {
		os.Exit(runScenario(*scen, *seed, *report))
	}

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Title)
		}
		if *run == "" && !*list {
			fmt.Println("\nusage: tasbench -run <id>|all [-quick] [-seed N] | -scenario <name|file>")
		}
		return
	}

	cfg := bench.RunConfig{Seed: *seed, Quick: *quick}
	emit := func(res *bench.Result) {
		fmt.Println(res)
		if *csvDir != "" {
			path := filepath.Join(*csvDir, res.ID+".csv")
			if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
			}
		}
		if *traj != "" {
			if err := appendTrajectory(*traj, res, *seed, *quick); err != nil {
				fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			}
		}
	}
	if *run == "all" {
		for _, e := range bench.All() {
			if e.Heavy {
				fmt.Printf("(skipping heavy experiment %s; run it explicitly with -run %s)\n\n", e.ID, e.ID)
				continue
			}
			start := time.Now()
			emit(e.Run(cfg))
			fmt.Printf("(%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
		return
	}
	e, ok := bench.ByID(*run)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
		os.Exit(1)
	}
	emit(e.Run(cfg))
}

// trajectoryEntry is one recorded benchmark run; BENCH_*.json files are
// arrays of these, appended over time so regressions show as a series.
type trajectoryEntry struct {
	ID    string     `json:"id"`
	Date  string     `json:"date"`
	Seed  int64      `json:"seed"`
	Quick bool       `json:"quick,omitempty"`
	Title string     `json:"title"`
	Cols  []string   `json:"cols"`
	Rows  [][]string `json:"rows"`
	Notes []string   `json:"notes,omitempty"`
}

// appendTrajectory appends a run record to a BENCH_*.json file,
// creating it if needed.
func appendTrajectory(path string, res *bench.Result, seed int64, quick bool) error {
	var entries []trajectoryEntry
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &entries); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	entries = append(entries, trajectoryEntry{
		ID: res.ID, Date: time.Now().UTC().Format(time.RFC3339), Seed: seed, Quick: quick,
		Title: res.Title, Cols: res.Header, Rows: res.Rows, Notes: res.Notes,
	})
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runScenario resolves ref (library name first, then a JSON spec file),
// executes it, prints the summary, and optionally writes the report.
// Returns the process exit code: 0 pass, 1 assertion failure, 2 setup
// error.
func runScenario(ref string, seed int64, reportPath string) int {
	spec, err := scenario.Lookup(ref)
	if err != nil {
		raw, rerr := os.ReadFile(ref)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "scenario %q: not in library (%v) and not readable as a file (%v)\n", ref, err, rerr)
			return 2
		}
		if spec, err = scenario.ParseSpec(raw); err != nil {
			fmt.Fprintf(os.Stderr, "scenario file %s: %v\n", ref, err)
			return 2
		}
	}
	// -seed overrides the spec's seed only when given explicitly.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			spec.Seed = seed
		}
	})

	rep, err := scenario.Run(spec, scenario.RunOptions{Metrics: true, Log: os.Stderr})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario run: %v\n", err)
		return 2
	}
	fmt.Println(rep.Summary())
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			return 2
		}
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			f.Close()
			return 2
		}
		f.Close()
		fmt.Printf("report written to %s\n", reportPath)
	}
	if !rep.Pass {
		return 1
	}
	return 0
}
