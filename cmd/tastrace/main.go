// Command tastrace analyzes pcap captures produced by the trace package
// (or any classic little-endian Ethernet pcap of IPv4/TCP traffic):
// per-flow packet/byte counts, retransmissions, handshake/teardown
// events, ECN marking, and RTT samples from timestamp echoes. It is the
// debugging companion to the fabric's Tap hook.
//
// With -flight it additionally loads a flight-recorder dump (the JSON
// served at /debug/flows or written by telemetry.Recorder.WriteJSON)
// and correlates each flow's traced segment events against the capture
// by sequence number, so a recorder timeline can be lined up with what
// actually crossed the wire.
//
//	tastrace capture.pcap
//	tastrace -flight flows.json capture.pcap
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/protocol"
	"repro/internal/tcp"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// flowStats accumulates one direction of one connection.
type flowStats struct {
	key           protocol.FlowKey
	packets       uint64
	bytes         uint64
	retxPkts      uint64
	maxSeq        uint32
	seqInit       bool
	syn, fin, rst bool
	ceMarks       uint64
	eceAcks       uint64
	firstNs       int64
	lastNs        int64
	rttSumUs      uint64
	rttCnt        uint64
	tsEcho        map[uint32]int64 // TSVal -> send time (bounded)
	segTs         map[uint32]int64 // data seq -> first capture timestamp (bounded)
}

func main() {
	flight := flag.String("flight", "", "flight-recorder JSON dump to correlate against the capture")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tastrace [-flight flows.json] <capture.pcap>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tastrace: %s: not a readable pcap: %v\n", path, err)
		os.Exit(1)
	}

	flows := make(map[protocol.FlowKey]*flowStats)
	get := func(k protocol.FlowKey) *flowStats {
		s := flows[k]
		if s == nil {
			s = &flowStats{key: k, tsEcho: make(map[uint32]int64), segTs: make(map[uint32]int64)}
			flows[k] = s
		}
		return s
	}

	var total uint64
	var readErr error
	for {
		rec, err := r.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readErr = err
			}
			break
		}
		total++
		p := rec.Packet
		// Direction key: sender's perspective.
		k := protocol.FlowKey{LocalIP: p.SrcIP, LocalPort: p.SrcPort, RemoteIP: p.DstIP, RemotePort: p.DstPort}
		s := get(k)
		s.packets++
		s.bytes += uint64(p.DataLen())
		if s.firstNs == 0 {
			s.firstNs = rec.TsNanos
		}
		s.lastNs = rec.TsNanos
		if p.Flags.Has(protocol.FlagSYN) {
			s.syn = true
		}
		if p.Flags.Has(protocol.FlagFIN) {
			s.fin = true
		}
		if p.Flags.Has(protocol.FlagRST) {
			s.rst = true
		}
		if p.ECN == protocol.ECNCE {
			s.ceMarks++
		}
		if p.Flags.Has(protocol.FlagECE) {
			s.eceAcks++
		}
		if n := p.DataLen(); n > 0 {
			if s.seqInit && tcp.SeqLT(p.Seq, s.maxSeq) {
				s.retxPkts++
			}
			if !s.seqInit || tcp.SeqGT(p.SeqEnd(), s.maxSeq) {
				s.maxSeq = p.SeqEnd()
				s.seqInit = true
			}
			if p.HasTS && len(s.tsEcho) < 1<<16 {
				s.tsEcho[p.TSVal] = rec.TsNanos
			}
			if _, seen := s.segTs[p.Seq]; !seen && len(s.segTs) < 1<<20 {
				s.segTs[p.Seq] = rec.TsNanos
			}
		}
		// RTT from the reverse direction's echo.
		if p.HasTS && p.TSEcr != 0 {
			rev := get(k.Reverse())
			if sent, ok := rev.tsEcho[p.TSEcr]; ok {
				if d := rec.TsNanos - sent; d >= 0 {
					rev.rttSumUs += uint64(d / 1000)
					rev.rttCnt++
				}
				delete(rev.tsEcho, p.TSEcr)
			}
		}
	}

	keys := make([]protocol.FlowKey, 0, len(flows))
	for k := range flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flows[keys[i]].bytes > flows[keys[j]].bytes })

	fmt.Printf("%d packets, %d flow directions\n\n", total, len(keys))
	fmt.Printf("%-44s %8s %10s %6s %5s %5s %7s %8s %s\n",
		"flow", "pkts", "bytes", "retx", "CE", "ECE", "rtt-us", "Mbps", "events")
	for _, k := range keys {
		s := flows[k]
		var rtt float64
		if s.rttCnt > 0 {
			rtt = float64(s.rttSumUs) / float64(s.rttCnt)
		}
		var mbps float64
		if d := s.lastNs - s.firstNs; d > 0 {
			mbps = float64(s.bytes) * 8 / (float64(d) / 1e9) / 1e6
		}
		ev := ""
		if s.syn {
			ev += "SYN "
		}
		if s.fin {
			ev += "FIN "
		}
		if s.rst {
			ev += "RST "
		}
		fmt.Printf("%-44s %8d %10d %6d %5d %5d %7.1f %8.2f %s\n",
			s.key.String(), s.packets, s.bytes, s.retxPkts, s.ceMarks, s.eceAcks, rtt, mbps, ev)
	}

	if *flight != "" {
		if err := correlate(*flight, flows); err != nil {
			fmt.Fprintf(os.Stderr, "tastrace: flight correlation: %v\n", err)
			os.Exit(1)
		}
	}

	// A short read mid-record means the capture was truncated (e.g. a
	// writer hit a full disk; see trace.Writer.Err). Everything up to
	// the damage was analyzed above — but say so and fail.
	if readErr != nil {
		fmt.Fprintf(os.Stderr, "tastrace: capture truncated after %d packets: %v\n", total, readErr)
		os.Exit(1)
	}
}

// correlate lines a flight-recorder dump up against the capture: every
// seg-tx/rexmit event should appear as a data packet in the flow's
// direction, every seg-rx as a data packet in the reverse direction,
// matched by raw sequence number.
func correlate(path string, flows map[protocol.FlowKey]*flowStats) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var dumps []telemetry.FlowDump
	if err := json.Unmarshal(data, &dumps); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}

	// The dump keys are local-perspective strings; index the capture's
	// directions the same way. Capture timestamps print relative to the
	// first packet (they are absolute wall-clock nanos on the wire).
	byKey := make(map[string]*flowStats, len(flows))
	var t0 int64
	for k, s := range flows {
		byKey[k.String()] = s
		if t0 == 0 || (s.firstNs > 0 && s.firstNs < t0) {
			t0 = s.firstNs
		}
	}

	fmt.Printf("\nflight-recorder correlation (%s):\n", path)
	for _, d := range dumps {
		fwd := byKey[d.Key]
		var rev *flowStats
		if fwd != nil {
			rev = byKey[fwd.key.Reverse().String()]
		}
		fmt.Printf("\nflow %s: %d events (%d overwritten)", d.Key, d.Total, d.Dropped)
		if fwd == nil {
			fmt.Printf(" — not in capture\n")
			continue
		}
		fmt.Println()
		var matched, missed int
		for _, ev := range d.Events {
			var dir *flowStats
			switch ev.Kind {
			case "seg-tx", "rexmit":
				dir = fwd
			case "seg-rx":
				dir = rev
			default:
				continue
			}
			mark := "not in capture"
			if dir != nil {
				if ts, ok := dir.segTs[ev.Seq]; ok {
					mark = fmt.Sprintf("pcap @%.3fms", float64(ts-t0)/1e6)
					matched++
				} else {
					missed++
				}
			} else {
				missed++
			}
			fmt.Printf("  %12.3fms  %-8s seq=%-10d bytes=%-6d %s\n",
				float64(ev.TS)/1e6, ev.Kind, ev.Seq, ev.Bytes, mark)
		}
		fmt.Printf("  %d/%d segment events matched in capture\n", matched, matched+missed)
	}
	return nil
}
