// Command tastrace analyzes pcap captures produced by the trace package
// (or any classic little-endian Ethernet pcap of IPv4/TCP traffic):
// per-flow packet/byte counts, retransmissions, handshake/teardown
// events, ECN marking, and RTT samples from timestamp echoes. It is the
// debugging companion to the fabric's Tap hook.
//
//	tastrace capture.pcap
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/protocol"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// flowStats accumulates one direction of one connection.
type flowStats struct {
	key           protocol.FlowKey
	packets       uint64
	bytes         uint64
	retxPkts      uint64
	maxSeq        uint32
	seqInit       bool
	syn, fin, rst bool
	ceMarks       uint64
	eceAcks       uint64
	firstNs       int64
	lastNs        int64
	rttSumUs      uint64
	rttCnt        uint64
	tsEcho        map[uint32]int64 // TSVal -> send time (bounded)
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tastrace <capture.pcap>")
		os.Exit(2)
	}
	f, err := os.Open(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tastrace: %s: not a readable pcap: %v\n", os.Args[1], err)
		os.Exit(1)
	}

	flows := make(map[protocol.FlowKey]*flowStats)
	get := func(k protocol.FlowKey) *flowStats {
		s := flows[k]
		if s == nil {
			s = &flowStats{key: k, tsEcho: make(map[uint32]int64)}
			flows[k] = s
		}
		return s
	}

	var total uint64
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		total++
		p := rec.Packet
		// Direction key: sender's perspective.
		k := protocol.FlowKey{LocalIP: p.SrcIP, LocalPort: p.SrcPort, RemoteIP: p.DstIP, RemotePort: p.DstPort}
		s := get(k)
		s.packets++
		s.bytes += uint64(p.DataLen())
		if s.firstNs == 0 {
			s.firstNs = rec.TsNanos
		}
		s.lastNs = rec.TsNanos
		if p.Flags.Has(protocol.FlagSYN) {
			s.syn = true
		}
		if p.Flags.Has(protocol.FlagFIN) {
			s.fin = true
		}
		if p.Flags.Has(protocol.FlagRST) {
			s.rst = true
		}
		if p.ECN == protocol.ECNCE {
			s.ceMarks++
		}
		if p.Flags.Has(protocol.FlagECE) {
			s.eceAcks++
		}
		if n := p.DataLen(); n > 0 {
			if s.seqInit && tcp.SeqLT(p.Seq, s.maxSeq) {
				s.retxPkts++
			}
			if !s.seqInit || tcp.SeqGT(p.SeqEnd(), s.maxSeq) {
				s.maxSeq = p.SeqEnd()
				s.seqInit = true
			}
			if p.HasTS && len(s.tsEcho) < 1<<16 {
				s.tsEcho[p.TSVal] = rec.TsNanos
			}
		}
		// RTT from the reverse direction's echo.
		if p.HasTS && p.TSEcr != 0 {
			rev := get(k.Reverse())
			if sent, ok := rev.tsEcho[p.TSEcr]; ok {
				if d := rec.TsNanos - sent; d >= 0 {
					rev.rttSumUs += uint64(d / 1000)
					rev.rttCnt++
				}
				delete(rev.tsEcho, p.TSEcr)
			}
		}
	}

	keys := make([]protocol.FlowKey, 0, len(flows))
	for k := range flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flows[keys[i]].bytes > flows[keys[j]].bytes })

	fmt.Printf("%d packets, %d flow directions\n\n", total, len(keys))
	fmt.Printf("%-44s %8s %10s %6s %5s %5s %7s %8s %s\n",
		"flow", "pkts", "bytes", "retx", "CE", "ECE", "rtt-us", "Mbps", "events")
	for _, k := range keys {
		s := flows[k]
		var rtt float64
		if s.rttCnt > 0 {
			rtt = float64(s.rttSumUs) / float64(s.rttCnt)
		}
		var mbps float64
		if d := s.lastNs - s.firstNs; d > 0 {
			mbps = float64(s.bytes) * 8 / (float64(d) / 1e9) / 1e6
		}
		ev := ""
		if s.syn {
			ev += "SYN "
		}
		if s.fin {
			ev += "FIN "
		}
		if s.rst {
			ev += "RST "
		}
		fmt.Printf("%-44s %8d %10d %6d %5d %5d %7.1f %8.2f %s\n",
			s.key.String(), s.packets, s.bytes, s.retxPkts, s.ceMarks, s.eceAcks, rtt, mbps, ev)
	}
}
