// Command tasd runs a live TAS echo service demo: two TAS instances on
// an in-process fabric, an echo server on one, and a closed-loop client
// on the other, printing throughput, latency, and fast-path core
// activity once per second. It exercises the real fast path end to end
// (rings, flow table, rate buckets, slow-path handshakes).
//
//	tasd -duration 10s -conns 4 -msg 64 -cores 2
//
// It can also run one chaos scenario instead of the echo demo, or serve
// the scenario HTTP API (list scenarios, launch runs, poll reports):
//
//	tasd -scenario slowpath-outage-churn
//	tasd -scenario-api :8080
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	tas "repro"
	"repro/internal/apps/echo"
	"repro/internal/cpumodel"
	"repro/internal/scenario"
)

// runScenario executes one scenario (library name or JSON spec file)
// with live narration and returns the process exit code.
func runScenario(ref string) int {
	spec, err := scenario.Lookup(ref)
	if err != nil {
		raw, rerr := os.ReadFile(ref)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "scenario %q: not in library (%v) and not readable as a file (%v)\n", ref, err, rerr)
			return 2
		}
		if spec, err = scenario.ParseSpec(raw); err != nil {
			fmt.Fprintf(os.Stderr, "scenario file %s: %v\n", ref, err)
			return 2
		}
	}
	rep, err := scenario.Run(spec, scenario.RunOptions{Metrics: true, Log: os.Stderr})
	if err != nil {
		fmt.Fprintf(os.Stderr, "scenario run: %v\n", err)
		return 2
	}
	fmt.Println(rep.Summary())
	if !rep.Pass {
		return 1
	}
	return 0
}

func main() {
	var (
		duration = flag.Duration("duration", 10*time.Second, "run time")
		conns    = flag.Int("conns", 4, "concurrent connections")
		msgSize  = flag.Int("msg", 64, "RPC message size (bytes)")
		cores    = flag.Int("cores", 2, "max fast-path cores per service")
		loss     = flag.Float64("loss", 0, "injected packet loss rate")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/flows, /debug/timeseries on this addr (e.g. :9090); enables telemetry (tastop points here)")
		scen     = flag.String("scenario", "", "run a chaos scenario (library name or JSON spec file) instead of the echo demo")
		scenAPI  = flag.String("scenario-api", "", "serve the scenario HTTP API (/scenarios, /runs, /runs/<id>) on this addr and block")
	)
	flag.Parse()

	if *scenAPI != "" {
		fmt.Printf("scenario API: http://%s/scenarios, POST/GET /runs, GET /runs/<id>\n", *scenAPI)
		log.Fatal(http.ListenAndServe(*scenAPI, scenario.NewAPI().Handler()))
	}
	if *scen != "" {
		os.Exit(runScenario(*scen))
	}

	cfg := tas.Config{FastPathCores: *cores}
	if *metrics != "" {
		cfg.Telemetry.Enabled = true
	}
	fab := tas.NewFabric()
	fab.SetLoss(*loss)
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	if *metrics != "" {
		go func() {
			// The server service's view: its fast path handles both
			// directions of the echo traffic.
			if err := http.ListenAndServe(*metrics, srv.Telemetry().Handler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("telemetry: http://%s/metrics (also /metrics.json, /debug/flows, /debug/timeseries; try tastop -addr %s)\n", *metrics, *metrics)
	}

	sctx := srv.NewContext()
	ln, err := sctx.Listen(7777)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept(0)
			if err != nil {
				return
			}
			// Hand each connection to its own context + goroutine.
			hctx := srv.NewContext()
			c.Rebind(hctx)
			go echo.Serve(c, *msgSize)
		}
	}()

	type sample struct {
		lat time.Duration
	}
	results := make(chan sample, 1<<16)
	stop := make(chan struct{})
	for i := 0; i < *conns; i++ {
		go func() {
			ctx := cli.NewContext()
			c, err := ctx.Dial("10.0.0.1", 7777)
			if err != nil {
				log.Printf("dial: %v", err)
				return
			}
			ec := echo.NewClient(c, *msgSize)
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if err := ec.Call(); err != nil {
					log.Printf("call: %v", err)
					return
				}
				select {
				case results <- sample{lat: time.Since(t0)}:
				default:
				}
			}
		}()
	}

	fmt.Printf("TAS echo demo: %d conns, %dB RPCs, %d fast-path cores, loss %.1f%%\n",
		*conns, *msgSize, *cores, *loss*100)
	deadline := time.After(*duration)
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-deadline:
			close(stop)
			eng := srv.Engine()
			var rx, tx, exc uint64
			for i := 0; i < *cores; i++ {
				st := eng.Stats(i)
				rx += st.RxPackets.Load()
				tx += st.TxPackets.Load()
				exc += st.Exceptions.Load()
			}
			fmt.Printf("server fast path totals: rx=%d tx=%d exceptions=%d active-cores=%d\n",
				rx, tx, exc, srv.ActiveCores())
			if t := srv.Telemetry(); t != nil {
				fmt.Println("server cycle breakdown:")
				t.Cycles.WriteBreakdown(os.Stdout, cpumodel.DefaultCyclesPerNs, rx+tx)
			}
			return
		case <-tick.C:
			var lats []time.Duration
		drain:
			for {
				select {
				case s := <-results:
					lats = append(lats, s.lat)
				default:
					break drain
				}
			}
			if len(lats) == 0 {
				fmt.Println("no completions this second")
				continue
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			p := func(q float64) time.Duration { return lats[int(q*float64(len(lats)-1))] }
			fmt.Printf("%8d rpc/s  p50=%-10v p99=%-10v cores=%d\n",
				len(lats), p(0.5).Round(time.Microsecond), p(0.99).Round(time.Microsecond), srv.ActiveCores())
		}
	}
}
