//go:build race

package tas

// raceEnabled reports whether the race detector is compiled in. The
// timing-sensitive application-chaos tests pace real transfers against
// millisecond liveness timeouts; under the detector's ~20× slowdown
// they turn flaky, so they skip themselves (the plain run covers them).
const raceEnabled = true
