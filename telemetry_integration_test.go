package tas_test

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	tas "repro"
	"repro/internal/telemetry"
)

func telemetryPair(t *testing.T) (*tas.Fabric, *tas.Service, *tas.Service) {
	t.Helper()
	fab := tas.NewFabric()
	cfg := tas.Config{
		Telemetry: tas.TelemetryConfig{Enabled: true, FlightRingSize: 256},
	}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return fab, srv, cli
}

// TestFlightRecorderLifecycle drives a full connect → transfer → close
// exchange with telemetry on and asserts the client flow's flight
// recorder holds the lifecycle events in order — the acceptance test
// for the flow flight recorder spanning slow path (handshake,
// teardown), fast path (segments), and libtas (app copies).
func TestFlightRecorderLifecycle(t *testing.T) {
	_, srv, cli := telemetryPair(t)

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 8192)
		for {
			n, err := c.Read(buf)
			if err != nil {
				c.Close()
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()

	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 4000)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, len(msg))); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // drain FIN exchange + flow retirement

	rec := cli.Telemetry().Recorder
	keys := append(rec.LiveKeys(), rec.RetiredKeys()...)
	if len(keys) != 1 {
		t.Fatalf("client recorder has %d flows (%v), want 1", len(keys), keys)
	}
	ring := rec.Lookup(keys[0])
	if ring == nil {
		t.Fatalf("no ring for %s", keys[0])
	}
	events := ring.Events()

	want := []telemetry.FlowEventKind{
		telemetry.FESynTx,
		telemetry.FESynAckRx,
		telemetry.FEEstablished,
		telemetry.FEAppSend,
		telemetry.FESegTx,
		telemetry.FESegRx,
		telemetry.FEAppRecv,
		telemetry.FEFinTx,
	}
	wi := 0
	for _, ev := range events {
		if wi < len(want) && ev.Kind == want[wi] {
			wi++
		}
	}
	if wi != len(want) {
		var got []string
		for _, ev := range events {
			got = append(got, ev.Kind.String())
		}
		t.Fatalf("lifecycle events out of order: matched %d/%d of %v\ngot: %s",
			wi, len(want), want, strings.Join(got, " "))
	}

	// Timestamps must be monotonic non-decreasing (one shared clock).
	for i := 1; i < len(events); i++ {
		if events[i].TS < events[i-1].TS {
			t.Fatalf("event %d timestamp went backwards: %d < %d", i, events[i].TS, events[i-1].TS)
		}
	}

	// The server side saw the mirror image: syn-rx, synack-tx,
	// established, and a fin-rx from our close.
	srvRec := srv.Telemetry().Recorder
	srvKeys := append(srvRec.LiveKeys(), srvRec.RetiredKeys()...)
	if len(srvKeys) != 1 {
		t.Fatalf("server recorder has %d flows, want 1", len(srvKeys))
	}
	sring := srvRec.Lookup(srvKeys[0])
	swant := []telemetry.FlowEventKind{
		telemetry.FESynRx, telemetry.FESynAckTx, telemetry.FEEstablished, telemetry.FEFinRx,
	}
	si := 0
	for _, ev := range sring.Events() {
		if si < len(swant) && ev.Kind == swant[si] {
			si++
		}
	}
	if si != len(swant) {
		t.Fatalf("server lifecycle: matched %d/%d of %v", si, len(swant), swant)
	}
}

// TestServiceMetricsExposition checks that a telemetry-enabled service
// exposes its counters, gauges, and cycle accounts through the unified
// registry in Prometheus text format.
func TestServiceMetricsExposition(t *testing.T) {
	_, srv, cli := telemetryPair(t)

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := c.Write([]byte("ping")); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
			t.Fatal(err)
		}
	}

	if srv.Metrics() == nil || cli.Metrics() == nil {
		t.Fatal("Metrics() should be non-nil with telemetry enabled")
	}
	var b bytes.Buffer
	if err := cli.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tas_fastpath_rx_packets_total",
		"tas_slowpath_established_total 1",
		"tas_flows_live 1",
		"tas_cycles_nanos_total",
		`cause="syn_shed"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The client's fast path must have attributed cycles to rx and tx.
	// Give the slow path a few control ticks (1ms period) so the cc
	// module accumulates time.
	time.Sleep(20 * time.Millisecond)
	cy := cli.Telemetry().Cycles
	if cy.Total(telemetry.ModRx).Items == 0 {
		t.Error("no cycle items attributed to rx")
	}
	if cy.Total(telemetry.ModTx).Items == 0 {
		t.Error("no cycle items attributed to tx")
	}
	if cy.Total(telemetry.ModAppCopy).Items == 0 {
		t.Error("no cycle items attributed to app-copy")
	}
	if cy.Total(telemetry.ModCC).Nanos == 0 {
		t.Error("no cycle time attributed to cc")
	}
}

// TestServiceWithoutTelemetry asserts the subsystem is genuinely
// opt-in: a default-config service exposes no telemetry handles.
func TestServiceWithoutTelemetry(t *testing.T) {
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.9", tas.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Telemetry() != nil || srv.Metrics() != nil {
		t.Fatal("telemetry should be nil when not enabled")
	}
}

// TestStatsConsistencyUnderChurn hammers Service.Stats() while
// connections churn concurrently, so -race can catch unsynchronized
// reads in the snapshot path (satellite: snapshot consistency).
func TestStatsConsistencyUnderChurn(t *testing.T) {
	_, srv, cli := telemetryPair(t)

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			c, err := ln.Accept(200 * time.Millisecond)
			if err != nil {
				continue // timeout: poll stop and retry
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 256)
				n, err := c.ReadTimeout(buf, 2*time.Second)
				if err != nil {
					return
				}
				c.Write(buf[:n])
			}()
		}
	}()

	var wg sync.WaitGroup
	// Churn: dial, exchange, close, repeatedly on two goroutines.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := cli.NewContext()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := ctx.Dial("10.0.0.1", 8080)
				if err != nil {
					continue
				}
				c.WriteTimeout([]byte("x"), time.Second)
				c.ReadTimeout(make([]byte, 1), time.Second)
				c.Close()
			}
		}()
	}
	// Scrape: stats snapshots and metric expositions concurrent with the
	// churn above.
	deadline := time.Now().Add(1 * time.Second)
	for time.Now().Before(deadline) {
		st := cli.Stats()
		if st.FlowsLive < 0 {
			t.Fatalf("impossible gauge: %+v", st)
		}
		var b bytes.Buffer
		if err := cli.Metrics().WriteText(&b); err != nil {
			t.Fatal(err)
		}
		srv.Stats()
	}
	close(stop)
	wg.Wait()

	// After churn settles, established counts must be plausible:
	// client-established >= server-accepted deliveries the app consumed.
	st := cli.Stats()
	if st.Established == 0 {
		t.Fatal("no connections established during churn")
	}
}

// TestFlightRecorderAbortDump asserts an aborted flow's ring is
// retired with the abort events intact — the "dumpable on abort"
// requirement.
func TestFlightRecorderAbortDump(t *testing.T) {
	// Not telemetryPair: this test closes srv itself mid-run (Close is
	// not idempotent), so only cli is cleaned up.
	fab := tas.NewFabric()
	cfg := tas.Config{Telemetry: tas.TelemetryConfig{Enabled: true, FlightRingSize: 256}}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *tas.Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		accepted <- c
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	<-accepted

	// Tear down the server service so the client's in-flight data is
	// never acknowledged; one write arms the retransmission machinery,
	// and the budget (MaxRetransmits backoffs) exhausts into an abort.
	srv.Close()
	if _, err := c.Write([]byte("zombie")); err != nil {
		t.Fatal(err)
	}

	// The abort retires the flow's ring; wait for it. The wait must
	// cover the whole doubling retransmit-backoff series, whose base
	// includes an 8×RTT term — under a loaded test machine the inflated
	// RTT estimate stretches the series well past its idle ~1.3s.
	rec := cli.Telemetry().Recorder
	var keys []string
	for deadline := time.Now().Add(20 * time.Second); time.Now().Before(deadline); {
		if keys = rec.RetiredKeys(); len(keys) > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(keys) != 1 {
		t.Fatalf("retired rings %v, want exactly 1 (abort did not retire the flow)", keys)
	}
	ring := rec.Lookup(keys[0])
	var kinds []string
	for _, ev := range ring.Events() {
		kinds = append(kinds, ev.Kind.String())
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"established", "rto-backoff", "aborted"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("abort dump missing %q: %s", want, joined)
		}
	}
	// JSON dump of the whole recorder must include the flow key.
	var b bytes.Buffer
	if err := rec.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), fmt.Sprintf("%q", keys[0])) {
		t.Fatalf("JSON dump missing flow %s", keys[0])
	}
}
