package tas_test

// One testing.B benchmark per table and figure of the paper's
// evaluation. Each iteration regenerates the artifact via the bench
// registry in quick mode and reports a headline metric so `go test
// -bench=.` doubles as a reproduction run. For the full-size versions
// use cmd/tasbench without -quick.

import (
	"strconv"
	"strings"
	"testing"

	tas "repro"
	"repro/internal/bench"
)

// runExperiment executes the driver once per b.N iteration (each run is
// seconds long, so b.N stays 1 under the default benchtime).
func runExperiment(b *testing.B, id string) *bench.Result {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var res *bench.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(bench.RunConfig{Seed: 1, Quick: true})
	}
	if res == nil || len(res.Rows) == 0 {
		b.Fatalf("experiment %q produced no rows", id)
	}
	b.Logf("\n%s", res)
	return res
}

// cell parses a numeric table cell.
func cell(b *testing.B, res *bench.Result, row, col int) float64 {
	b.Helper()
	s := res.Rows[row][col]
	s = strings.TrimSuffix(strings.Fields(s)[0], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell (%d,%d)=%q not numeric: %v", row, col, res.Rows[row][col], err)
	}
	return v
}

func BenchmarkTable1CyclesPerRequest(b *testing.B) {
	res := runExperiment(b, "table1")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 1), "Linux-kc/req")
	b.ReportMetric(cell(b, res, last, 5), "TAS-kc/req")
}

func BenchmarkTable2TopDown(b *testing.B) {
	res := runExperiment(b, "table2")
	b.ReportMetric(cell(b, res, 2, 3), "TAS-CPI")
}

func BenchmarkTable3FlowState(b *testing.B) {
	res := runExperiment(b, "table3")
	b.ReportMetric(cell(b, res, len(res.Rows)-1, 1), "state-bits")
}

func BenchmarkTable4Compatibility(b *testing.B) {
	res := runExperiment(b, "table4")
	b.ReportMetric(cell(b, res, 0, 1), "LinuxLinux-Gbps")
	b.ReportMetric(cell(b, res, 1, 2), "TASTAS-Gbps")
}

func BenchmarkFig4ConnScalability(b *testing.B) {
	res := runExperiment(b, "fig4")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 1), "TAS-mOps@96K")
	b.ReportMetric(cell(b, res, last, 2), "IX-mOps@96K")
}

func BenchmarkFig5ShortLived(b *testing.B) {
	res := runExperiment(b, "fig5")
	b.ReportMetric(cell(b, res, len(res.Rows)-1, 1), "TAS-mOps@max")
}

func BenchmarkFig6PipelinedRPC(b *testing.B) {
	res := runExperiment(b, "fig6")
	b.ReportMetric(cell(b, res, 0, 3), "TAS-RX32B-Gbps")
}

func BenchmarkFig7LossPenalty(b *testing.B) {
	res := runExperiment(b, "fig7")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 2), "TAS-penalty%@5%loss")
	b.ReportMetric(cell(b, res, last, 3), "GBN-penalty%@5%loss")
}

func BenchmarkFig8KVScalability(b *testing.B) {
	res := runExperiment(b, "fig8")
	last := len(res.Rows) - 1
	b.ReportMetric(cell(b, res, last, 1), "TASLL-mOps@16c")
	b.ReportMetric(cell(b, res, last, 4), "Linux-mOps@16c")
}

func BenchmarkFig9LatencyCDF(b *testing.B) {
	res := runExperiment(b, "fig9")
	b.ReportMetric(cell(b, res, 0, 3), "TAS/TAS-p50us")
}

func BenchmarkTable5LatencyPercentiles(b *testing.B) {
	res := runExperiment(b, "table5")
	b.ReportMetric(cell(b, res, 2, 1), "TAS-p50us")
	b.ReportMetric(cell(b, res, 0, 1), "Linux-p50us")
}

func BenchmarkTable6CoreSplit(b *testing.B) {
	runExperiment(b, "table6")
}

func BenchmarkTable7NonScalable(b *testing.B) {
	res := runExperiment(b, "table7")
	b.ReportMetric(cell(b, res, 0, 4), "TASLL-mOps@4c")
}

func BenchmarkFig10FlexStorm(b *testing.B) {
	res := runExperiment(b, "fig10")
	b.ReportMetric(cell(b, res, 2, 1), "TAS-mtuples")
}

func BenchmarkTable8TupleLatency(b *testing.B) {
	runExperiment(b, "table8")
}

func BenchmarkFig11ControlInterval(b *testing.B) {
	res := runExperiment(b, "fig11")
	b.ReportMetric(cell(b, res, 2, 3), "TAS-FCTms@tau100us")
}

func BenchmarkFig12FatTreeFCT(b *testing.B) {
	runExperiment(b, "fig12")
}

func BenchmarkFig13Incast(b *testing.B) {
	res := runExperiment(b, "fig13")
	b.ReportMetric(cell(b, res, 0, 4), "TAS-p50@50conns")
}

func BenchmarkFig14Proportionality(b *testing.B) {
	runExperiment(b, "fig14")
}

func BenchmarkFig15ScalingLatency(b *testing.B) {
	runExperiment(b, "fig15")
}

func BenchmarkAblationBuffers(b *testing.B) {
	runExperiment(b, "ablation-buffers")
}

func BenchmarkAblationSteering(b *testing.B) {
	runExperiment(b, "ablation-steering")
}

// --- Live-stack micro-benchmarks (real goroutine fast path) -------------

func BenchmarkLiveEchoRPC(b *testing.B) { liveEchoRPC(b, tas.Config{}) }

// BenchmarkLiveEchoTelemetryOn is the same workload with the full
// telemetry surface enabled (metrics registry, flight recorder, cycle
// accounting); compare against BenchmarkLiveEchoRPC for the end-to-end
// instrumentation cost. The gated fast-path comparison lives in
// internal/fastpath (TestTelemetryOverheadSmoke).
func BenchmarkLiveEchoTelemetryOn(b *testing.B) {
	liveEchoRPC(b, tas.Config{Telemetry: tas.TelemetryConfig{Enabled: true}})
}

func liveEchoRPC(b *testing.B, cfg tas.Config) {
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.9.0.1", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := fab.NewService("10.9.0.2", cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		c, err := ln.Accept(0)
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		for {
			got := 0
			for got < 64 {
				n, err := c.Read(buf[got:])
				if err != nil {
					return
				}
				got += n
			}
			if _, err := c.Write(buf); err != nil {
				return
			}
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.9.0.1", 8080)
	if err != nil {
		b.Fatal(err)
	}
	req := make([]byte, 64)
	resp := make([]byte, 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(req); err != nil {
			b.Fatal(err)
		}
		got := 0
		for got < 64 {
			n, err := c.Read(resp[got:])
			if err != nil {
				b.Fatal(err)
			}
			got += n
		}
	}
}

func BenchmarkLiveBulkThroughput(b *testing.B) {
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.9.1.1", tas.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := fab.NewService("10.9.1.2", tas.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	sctx := srv.NewContext()
	ln, err := sctx.Listen(9000)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		c, err := ln.Accept(0)
		if err != nil {
			return
		}
		buf := make([]byte, 256<<10)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.9.1.1", 9000)
	if err != nil {
		b.Fatal(err)
	}
	chunk := make([]byte, 64<<10)
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Write(chunk); err != nil {
			b.Fatal(err)
		}
	}
}
