package tas

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func newPair(t *testing.T, cfg Config) (*Fabric, *Service, *Service) {
	t.Helper()
	fab := NewFabric()
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })
	return fab, srv, cli
}

func TestEchoRoundTrip(t *testing.T) {
	_, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 128)
		n, err := c.Read(buf)
		if err != nil {
			done <- err
			return
		}
		if _, err := c.Write(buf[:n]); err != nil {
			done <- err
			return
		}
		done <- nil
	}()

	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello TAS fast path")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Fatalf("echo mismatch: %q", buf[:n])
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDialRefusedWithoutListener(t *testing.T) {
	_, _, cli := newPair(t, Config{})
	ctx := cli.NewContext()
	start := time.Now()
	_, err := ctx.Dial("10.0.0.1", 12345)
	if err == nil {
		t.Fatal("dial to closed port should fail")
	}
	if time.Since(start) > 6*time.Second {
		t.Fatal("refusal should not take the full timeout")
	}
}

func TestBulkTransferIntegrity(t *testing.T) {
	_, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, err := sctx.Listen(9000)
	if err != nil {
		t.Fatal(err)
	}
	const total = 8 << 20 // 8 MiB through 256 KiB buffers
	// Deterministic pseudo-random payload.
	payload := make([]byte, total)
	x := uint32(123456789)
	for i := range payload {
		x = x*1664525 + 1013904223
		payload[i] = byte(x >> 24)
	}
	var got bytes.Buffer
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 64<<10)
		for got.Len() < total {
			n, err := c.Read(buf)
			if err != nil {
				done <- fmt.Errorf("read after %d bytes: %w", got.Len(), err)
				return
			}
			got.Write(buf[:n])
		}
		done <- nil
	}()

	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 9000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatal("bulk payload corrupted in transit")
	}
}

func TestManyConnections(t *testing.T) {
	_, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, err := sctx.Listen(9100)
	if err != nil {
		t.Fatal(err)
	}
	const conns = 50
	go func() {
		for i := 0; i < conns; i++ {
			c, err := ln.Accept(10 * time.Second)
			if err != nil {
				return
			}
			go func() {
				// One echo per connection on its own goroutine is not
				// context-safe; serially echo instead.
				_ = c
			}()
			buf := make([]byte, 64)
			n, err := c.Read(buf)
			if err == nil {
				c.Write(buf[:n])
			}
		}
	}()

	cctx := cli.NewContext()
	for i := 0; i < conns; i++ {
		c, err := cctx.Dial("10.0.0.1", 9100)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		msg := []byte(fmt.Sprintf("conn-%03d", i))
		if _, err := c.Write(msg); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil || !bytes.Equal(buf[:n], msg) {
			t.Fatalf("echo %d: %q err=%v", i, buf[:n], err)
		}
		c.Close()
	}
}

func TestGracefulClose(t *testing.T) {
	_, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, _ := sctx.Listen(9200)
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		// Read until EOF.
		buf := make([]byte, 1024)
		var total int
		for {
			n, err := c.Read(buf)
			total += n
			if err == io.EOF {
				if total != 1000 {
					done <- fmt.Errorf("got %d bytes before EOF", total)
					return
				}
				done <- nil
				return
			}
			if err != nil {
				done <- err
				return
			}
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 9200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("EOF never observed")
	}
}

func TestLossRecoveryLive(t *testing.T) {
	fab, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, _ := sctx.Listen(9300)
	const total = 1 << 20
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 32<<10)
		n := 0
		for n < total {
			k, err := c.Read(buf)
			if err != nil {
				done <- err
				return
			}
			n += k
		}
		done <- nil
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 9300)
	if err != nil {
		t.Fatal(err)
	}
	fab.SetLoss(0.02) // 2% loss after handshake
	defer fab.SetLoss(0)
	if _, err := c.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("transfer with loss did not complete")
	}
}

func TestConcurrentContexts(t *testing.T) {
	_, srv, cli := newPair(t, Config{FastPathCores: 2})
	sctx := srv.NewContext()
	ln, _ := sctx.Listen(9400)
	go func() {
		for {
			c, err := ln.Accept(5 * time.Second)
			if err != nil {
				return
			}
			buf := make([]byte, 256)
			n, err := c.Read(buf)
			if err == nil {
				c.Write(buf[:n])
			}
		}
	}()
	// Several client contexts (threads) in parallel, each with its own
	// connection — contexts are single-goroutine, services are not.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := cli.NewContext()
			c, err := ctx.Dial("10.0.0.1", 9400)
			if err != nil {
				errs <- err
				return
			}
			msg := []byte(fmt.Sprintf("ctx-%d", g))
			if _, err := c.Write(msg); err != nil {
				errs <- err
				return
			}
			buf := make([]byte, 256)
			n, err := c.Read(buf)
			if err != nil || !bytes.Equal(buf[:n], msg) {
				errs <- fmt.Errorf("ctx %d echo mismatch: %q %v", g, buf[:n], err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestParseIP(t *testing.T) {
	ip, err := ParseIP("10.1.2.3")
	if err != nil {
		t.Fatal(err)
	}
	if ip.String() != "10.1.2.3" {
		t.Fatalf("round trip: %v", ip)
	}
	for _, bad := range []string{"", "10.0.0", "10.0.0.256", "a.b.c.d"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) should fail", bad)
		}
	}
}

func TestRandomizedChunksIntegrity(t *testing.T) {
	// Property-style live test: random chunk sizes, random small loss,
	// payload must arrive byte-identical. Exercises segmentation,
	// flow-control windows, window updates, OOO handling, and go-back-N
	// together.
	for _, seed := range []int64{3, 7, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fab, srv, cli := newPair(t, Config{})
			sctx := srv.NewContext()
			port := uint16(9500 + seed)
			ln, err := sctx.Listen(port)
			if err != nil {
				t.Fatal(err)
			}
			total := 200<<10 + rng.Intn(300<<10)
			payload := make([]byte, total)
			rng.Read(payload)

			var got bytes.Buffer
			done := make(chan error, 1)
			go func() {
				c, err := ln.Accept(5 * time.Second)
				if err != nil {
					done <- err
					return
				}
				buf := make([]byte, 48<<10)
				for got.Len() < total {
					n, err := c.Read(buf)
					if err != nil {
						done <- err
						return
					}
					got.Write(buf[:n])
				}
				done <- nil
			}()
			cctx := cli.NewContext()
			c, err := cctx.Dial("10.0.0.1", port)
			if err != nil {
				t.Fatal(err)
			}
			fab.SetLoss(float64(rng.Intn(3)) * 0.005) // 0, 0.5% or 1%
			sent := 0
			for sent < total {
				n := 1 + rng.Intn(20<<10)
				if sent+n > total {
					n = total - sent
				}
				if _, err := c.Write(payload[sent : sent+n]); err != nil {
					t.Fatal(err)
				}
				sent += n
			}
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(60 * time.Second):
				t.Fatalf("stalled at %d/%d bytes", got.Len(), total)
			}
			if !bytes.Equal(got.Bytes(), payload) {
				t.Fatal("payload corrupted")
			}
		})
	}
}
