package tas

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQuotaConfigValidation rejects inconsistent governor settings at
// NewService time: a per-app quota above its global pool, inverted or
// out-of-range hysteresis watermarks, negative capacities. Valid
// combinations construct.
func TestQuotaConfigValidation(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // substring; "" = must succeed
	}{
		{"zero-config", Config{}, ""},
		{"capped-pools", Config{MaxPayloadBytes: 1 << 20, MaxFlows: 100, MaxHalfOpen: 50}, ""},
		{"quotas-within-pools", Config{MaxFlows: 100, AppMaxFlows: 10,
			MaxPayloadBytes: 1 << 20, AppMaxPayloadBytes: 1 << 18}, ""},
		{"quota-without-global", Config{AppMaxFlows: 10, AppMaxPayloadBytes: 1 << 18}, ""},
		{"custom-watermarks", Config{PressureEngagePct: 80, PressureReleasePct: 60}, ""},
		{"app-flows-over-pool", Config{MaxFlows: 10, AppMaxFlows: 11},
			"per-app flows quota 11 exceeds global pool 10"},
		{"app-payload-over-pool", Config{MaxPayloadBytes: 1 << 10, AppMaxPayloadBytes: 1 << 11},
			"per-app payload bytes quota"},
		{"inverted-hysteresis", Config{PressureEngagePct: 60, PressureReleasePct: 70},
			"inverted hysteresis"},
		{"equal-watermarks", Config{PressureEngagePct: 60, PressureReleasePct: 60},
			"inverted hysteresis"},
		{"engage-over-100", Config{PressureEngagePct: 140, PressureReleasePct: 55},
			"outside (0,100]"},
		{"release-negative", Config{PressureEngagePct: 70, PressureReleasePct: -5},
			"outside (0,100]"},
		{"negative-pool", Config{MaxFlows: -4}, "negative"},
		{"negative-payload", Config{MaxPayloadBytes: -1}, "negative"},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fab := NewFabric()
			srv, err := fab.NewService(fmt.Sprintf("10.3.0.%d", i+1), tc.cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				srv.Close()
				return
			}
			if err == nil {
				srv.Close()
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestDialBackpressureTyped exercises the active-side admission path:
// when the dialing service's own flow pool is exhausted, Dial fails
// fast with the typed backpressure error (retryable overload, not a
// fault), and succeeds again once a flow closes and drains.
func TestDialBackpressureTyped(t *testing.T) {
	fab := NewFabric()
	srv, err := fab.NewService("10.0.0.1", Config{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", Config{MaxFlows: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := ln.Accept(100 * time.Millisecond)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()

	cctx := cli.NewContext()
	c1, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cctx.DialTimeout("10.0.0.1", 8080, 2*time.Second)
	if err == nil {
		t.Fatal("third dial should exceed the 2-flow budget")
	}
	if !ErrBackpressure(err) {
		t.Fatalf("want typed backpressure, got %v", err)
	}
	if rej := cli.Stats().PoolRejects["flows"]; rej == 0 {
		t.Fatal("flow-pool rejection not counted")
	}

	// Release one slot; the flow-table entry drains after the close
	// handshake, so retry until admission succeeds.
	c1.Close()
	var c3 *Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err = cctx.DialTimeout("10.0.0.1", 8080, time.Second)
		if err == nil {
			break
		}
		if !ErrBackpressure(err) {
			t.Fatalf("retry dial failed with non-backpressure error: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("flow slot never drained after close")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c3.Close()
	c2.Close()
}

// TestAppQuotaBackpressure exercises the per-app quota: one context
// capped at a single flow gets a typed backpressure denial on its
// second concurrent dial, while a sibling context on the same service
// is unaffected.
func TestAppQuotaBackpressure(t *testing.T) {
	fab := NewFabric()
	srv, err := fab.NewService("10.0.0.1", Config{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", Config{AppMaxFlows: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			c, err := ln.Accept(100 * time.Millisecond)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			defer c.Close()
		}
	}()

	cctx := cli.NewContext()
	c1, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := cctx.DialTimeout("10.0.0.1", 8080, 2*time.Second); !ErrBackpressure(err) {
		t.Fatalf("second dial on quota-capped context: want backpressure, got %v", err)
	}
	if q := cli.Stats().QuotaRejects; q == 0 {
		t.Fatal("quota rejection not counted")
	}

	// A different context has its own quota.
	other := cli.NewContext()
	c2, err := other.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatalf("sibling context blocked by another app's quota: %v", err)
	}
	c2.Close()
}

// TestSendBackpressureWhenClamped drives the ladder to the TX-clamp
// rung with a nearly-full payload budget and verifies a bounded write
// against a non-reading peer surfaces backpressure (the clamp binding),
// not a generic timeout.
func TestSendBackpressureWhenClamped(t *testing.T) {
	fab := NewFabric()
	srv, err := fab.NewService("10.0.0.1", Config{RxBufSize: 32 << 10, TxBufSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2 flows x 64 KiB of buffers = 128 KiB against a 144 KiB budget:
	// 88.9% occupancy sits in the clamp-tx band (>=85%) but under
	// reclaim's 92.5%.
	cli, err := fab.NewService("10.0.0.2", Config{
		RxBufSize: 32 << 10, TxBufSize: 32 << 10,
		MaxPayloadBytes: 144 << 10,
		// Flows stay deliberately idle while the ladder climbs; a long
		// reclaim age keeps rung 4 from ever seeing them as victims
		// even if occupancy were to brush its band.
		IdleReclaimAge: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var accepted []*Conn
	var amu sync.Mutex
	go func() {
		for i := 0; i < 2; i++ {
			c, err := ln.Accept(5 * time.Second)
			if err != nil {
				return
			}
			amu.Lock()
			accepted = append(accepted, c)
			amu.Unlock()
		}
		<-release
		// Drain everything so the writer can finish.
		amu.Lock()
		conns := append([]*Conn(nil), accepted...)
		amu.Unlock()
		for _, c := range conns {
			go func(c *Conn) {
				buf := make([]byte, 16<<10)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	cctx := cli.NewContext()
	c1, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Let the ladder climb one rung per control tick to clamp-tx.
	deadline := time.Now().Add(3 * time.Second)
	for cli.Stats().PressureLevel < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never reached clamp-tx: level %d, pressure %.2f",
				cli.Stats().PressureLevel, cli.Stats().Pressure)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server is not reading, so its 32 KiB receive buffer absorbs
	// the head of the write; after that the clamped grant (a quarter
	// buffer = 8 KiB) caps TX occupancy at 40 KiB total in flight. A
	// 56 KiB write — which the unclamped 32 KiB TX buffer would have
	// absorbed whole — must stall on the grant and report backpressure,
	// not a generic timeout.
	n, err := c1.WriteTimeout(make([]byte, 56<<10), 300*time.Millisecond)
	if err == nil {
		t.Fatalf("write of 56 KiB against an 8 KiB grant completed (%d bytes)", n)
	}
	if !ErrBackpressure(err) {
		t.Fatalf("want typed backpressure from the clamp, got %v", err)
	}
	if n == 0 {
		t.Fatal("clamped write should still have moved the granted bytes")
	}
	if sheds := cli.Stats().PressureSheds["clamp_tx"]; sheds == 0 {
		t.Fatal("clamp-tx shed not counted")
	}

	close(release)
}
