package tas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

// appCfg shortens the liveness timescale so crash detection completes
// in tens of milliseconds.
func appCfg() Config {
	cfg := chaosCfg()
	// Short enough that reap latency stays test-friendly, long enough
	// that the 1/4-interval heartbeat survives scheduler starvation on a
	// loaded single-CPU machine.
	cfg.AppTimeout = 100 * time.Millisecond
	return cfg
}

// TestAppCrashReapedWhileNeighborUnharmed is the headline isolation
// property (§3.3): two application contexts share one TAS instance;
// app A is killed mid-transfer and must be fully reclaimed — flows
// RST, flow-table entries and rate buckets freed, payload buffers
// returned, context slot reusable, listen port free — while app B's
// concurrent SHA-256-verified transfer completes untouched.
func TestAppCrashReapedWhileNeighborUnharmed(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-heavy chaos test; plain run covers it")
	}
	_, srv, cli := newPair(t, appCfg())

	// Server side: one accept loop per app.
	sctxA, sctxB := srv.NewContext(), srv.NewContext()
	lnA, err := sctxA.Listen(9001)
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := sctxB.Listen(9002)
	if err != nil {
		t.Fatal(err)
	}
	errA := make(chan error, 1)
	go func() { // A's server: discard until the stream breaks
		c, err := lnA.Accept(5 * time.Second)
		if err != nil {
			errA <- err
			return
		}
		buf := make([]byte, 32<<10)
		for {
			if _, err := c.Read(buf); err != nil {
				errA <- err
				return
			}
		}
	}()
	digestB := make(chan []byte, 1)
	errB := make(chan error, 1)
	go func() { // B's server: hash framed payload, return the digest
		c, err := lnB.Accept(5 * time.Second)
		if err != nil {
			errB <- err
			return
		}
		h := sha256.New()
		hdr := make([]byte, 4)
		buf := make([]byte, 32<<10)
		for {
			if _, err := io.ReadFull(c, hdr); err != nil {
				errB <- err
				return
			}
			n := binary.BigEndian.Uint32(hdr)
			if n == 0 {
				break
			}
			if _, err := io.ReadFull(c, buf[:n]); err != nil {
				errB <- err
				return
			}
			h.Write(buf[:n])
		}
		if _, err := c.Write(h.Sum(nil)); err != nil {
			errB <- err
			return
		}
		digestB <- h.Sum(nil)
	}()

	// Client side: apps A and B share the client TAS instance.
	ctxA, ctxB := cli.NewContext(), cli.NewContext()
	idA := ctxA.LowLevel().ID
	if _, err := ctxA.Listen(7777); err != nil { // a port A holds when it dies
		t.Fatal(err)
	}
	connA, err := ctxA.Dial("10.0.0.1", 9001)
	if err != nil {
		t.Fatal(err)
	}
	flowA := connA.c.Flow()
	connB, err := ctxB.Dial("10.0.0.1", 9002)
	if err != nil {
		t.Fatal(err)
	}

	// App A streams until its world ends.
	senderA := make(chan error, 1)
	go func() {
		chunk := make([]byte, 4<<10)
		for {
			if _, err := connA.WriteTimeout(chunk, 5*time.Second); err != nil {
				senderA <- err
				return
			}
		}
	}()

	// App B paces a framed transfer that deliberately spans the crash:
	// it keeps sending until the reaper has fired, then finishes.
	h := sha256.New()
	chunk := make([]byte, 8<<10)
	for i := range chunk {
		chunk[i] = byte(i * 31)
	}
	sendFrame := func(p []byte) {
		t.Helper()
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(p)))
		if _, err := connB.Write(hdr[:]); err != nil {
			t.Fatalf("B header: %v", err)
		}
		if len(p) == 0 {
			return
		}
		if _, err := connB.Write(p); err != nil {
			t.Fatalf("B payload: %v", err)
		}
		h.Write(p)
	}
	for i := 0; i < 8; i++ {
		sendFrame(chunk)
	}
	ctxA.Kill() // crash app A mid-transfer

	deadline := time.Now().Add(10 * time.Second)
	for cli.Stats().AppsReaped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("app A never reaped")
		}
		sendFrame(chunk) // B's transfer continues across the crash
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 8; i++ {
		sendFrame(chunk)
	}
	sendFrame(nil) // end-of-stream

	// B's transfer must complete and verify.
	var got []byte
	select {
	case got = <-digestB:
	case err := <-errB:
		t.Fatalf("B server: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("B digest never arrived")
	}
	want := h.Sum(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("B digest mismatch: got %x want %x", got, want)
	}
	echo := make([]byte, sha256.Size)
	if _, err := io.ReadFull(connB, echo); err != nil {
		t.Fatalf("B digest read-back: %v", err)
	}
	if !bytes.Equal(echo, want) {
		t.Fatalf("B read-back mismatch: got %x want %x", echo, want)
	}

	// A's sender observed the crash...
	select {
	case err := <-senderA:
		if !ErrReset(err) && !ErrAppDead(err) {
			t.Fatalf("A sender error = %v, want reset or app-dead", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("A's sender never failed")
	}
	// ...and so did A's peer (best-effort RST).
	select {
	case err := <-errA:
		if !ErrReset(err) {
			t.Fatalf("A server error = %v, want reset", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("A's server half never saw the abort")
	}

	// Everything A held is back in the free pools.
	st := cli.Stats()
	if st.AppsReaped != 1 || st.FlowsReaped < 1 || st.ListenersReaped != 1 {
		t.Fatalf("reap counters: %+v", st)
	}
	if !flowA.RxBuf.Reclaimed() || !flowA.TxBuf.Reclaimed() {
		t.Fatal("A's payload buffers not reclaimed")
	}
	if cli.Engine().ContextByID(uint16(idA)) != nil {
		t.Fatal("A's context slot not released")
	}
	if cli.Engine().Bucket(flowA.Bucket) != nil {
		t.Fatal("A's rate bucket not freed")
	}
	// The context slot and the listen port are immediately reusable.
	fresh := cli.NewContext()
	if fresh.LowLevel().ID != idA {
		t.Fatalf("fresh context got slot %d, want reused slot %d", fresh.LowLevel().ID, idA)
	}
	if _, err := fresh.Listen(7777); err != nil {
		t.Fatalf("re-listen on A's port: %v", err)
	}
	// B was never touched.
	if err := connB.Close(); err != nil {
		t.Fatalf("B close: %v", err)
	}
}

// TestAcceptBacklogOverflowShedsSyns: a listener with backlog 4 and a
// slow accepter sheds the fifth concurrent connection (silent SYN drop,
// counted, no RST), and accepting connections opens the gate again.
func TestAcceptBacklogOverflowShedsSyns(t *testing.T) {
	_, srv, cli := newPair(t, chaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.ListenBacklog(9090, 4)
	if err != nil {
		t.Fatal(err)
	}
	cctx := cli.NewContext()

	var conns []*Conn
	for i := 0; i < 4; i++ {
		c, err := cctx.DialTimeout("10.0.0.1", 9090, 2*time.Second)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		conns = append(conns, c)
	}
	// The accept queue is full: the next SYN must be shed and the dial
	// time out on the client's handshake retry budget.
	if _, err := cctx.DialTimeout("10.0.0.1", 9090, 2*time.Second); !ErrTimeout(err) {
		t.Fatalf("overflow dial err = %v, want timeout", err)
	}
	if got := srv.Stats().SynBacklogDrops; got == 0 {
		t.Fatal("no SynBacklogDrops counted")
	}

	// Accepting drains the queue and frees backlog slots.
	if _, err := ln.Accept(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	c, err := cctx.DialTimeout("10.0.0.1", 9090, 2*time.Second)
	if err != nil {
		t.Fatalf("dial after accept: %v", err)
	}
	c.Close()
	for _, c := range conns {
		c.Close()
	}
}

// TestCorruptQueueInjectionHarmless: garbage descriptors injected into
// an app's command queue are dropped and counted, and the service keeps
// serving the same connection correctly afterwards.
func TestCorruptQueueInjectionHarmless(t *testing.T) {
	_, srv, cli := newPair(t, chaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(9091)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	cctx := cli.NewContext()
	conn, err := cctx.Dial("10.0.0.1", 9091)
	if err != nil {
		t.Fatal(err)
	}
	roundtrip := func(msg string) {
		t.Helper()
		if _, err := conn.Write([]byte(msg)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, len(msg))
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != msg {
			t.Fatalf("echo = %q, want %q", buf, msg)
		}
	}
	roundtrip("before")

	injected := cctx.CorruptQueue(42, 64)
	if injected == 0 {
		t.Fatal("nothing injected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for int(cli.Stats().BadDescDrops) < injected {
		if time.Now().After(deadline) {
			t.Fatalf("BadDescDrops = %d, want %d", cli.Stats().BadDescDrops, injected)
		}
		time.Sleep(time.Millisecond)
	}
	// The connection — and the service — survived the attack.
	roundtrip("after")
}

// TestStallShorterThanTimeoutSurvives: a wedged-but-alive app whose
// stall is shorter than AppTimeout must not be reaped; one that stalls
// longer is indistinguishable from a crash and is.
func TestStallShorterThanTimeoutSurvives(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-heavy chaos test; plain run covers it")
	}
	cfg := chaosCfg()
	cfg.AppTimeout = 200 * time.Millisecond
	_, srv, cli := newPair(t, cfg)
	sctx := srv.NewContext()
	if _, err := sctx.Listen(9092); err != nil {
		t.Fatal(err)
	}
	cctx := cli.NewContext()

	cctx.Stall(50 * time.Millisecond)
	time.Sleep(120 * time.Millisecond)
	if got := cli.Stats().AppsReaped; got != 0 {
		t.Fatalf("short stall reaped: %d", got)
	}
	if _, err := cctx.Dial("10.0.0.1", 9092); err != nil {
		t.Fatalf("dial after short stall: %v", err)
	}

	cctx.Stall(5 * time.Second)
	deadline := time.Now().Add(10 * time.Second)
	for cli.Stats().AppsReaped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long stall never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := cctx.Dial("10.0.0.1", 9092); !ErrAppDead(err) {
		t.Fatalf("dial on reaped context err = %v, want app-dead", err)
	}
}

// TestCloseAfterAbortIdempotent: Close on an aborted connection is a
// local no-op that reports ErrReset, on both the crashed app's own
// connections and the surviving peer's — and repeat calls agree.
func TestCloseAfterAbortIdempotent(t *testing.T) {
	_, srv, cli := newPair(t, appCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(9093)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err == nil {
			accepted <- c
		}
	}()
	cctx := cli.NewContext()
	conn, err := cctx.Dial("10.0.0.1", 9093)
	if err != nil {
		t.Fatal(err)
	}
	var peer *Conn
	select {
	case peer = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept never completed")
	}

	cctx.Kill()
	deadline := time.Now().Add(10 * time.Second)
	for cli.Stats().AppsReaped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("never reaped")
		}
		time.Sleep(time.Millisecond)
	}
	// The dead app's own handle: reset, idempotently.
	if err := conn.Close(); !ErrReset(err) {
		t.Fatalf("first Close = %v, want reset", err)
	}
	if err := conn.Close(); !ErrReset(err) {
		t.Fatalf("second Close = %v, want reset", err)
	}
	// The surviving peer, once it observes the RST: same contract.
	deadline = time.Now().Add(10 * time.Second)
	for !peer.Aborted() {
		if time.Now().After(deadline) {
			t.Fatal("peer never saw the abort")
		}
		time.Sleep(time.Millisecond)
	}
	if err := peer.Close(); !ErrReset(err) {
		t.Fatalf("peer first Close = %v, want reset", err)
	}
	if err := peer.Close(); !ErrReset(err) {
		t.Fatalf("peer second Close = %v, want reset", err)
	}
}
