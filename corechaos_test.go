package tas

import (
	"bytes"
	"crypto/sha256"
	"io"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/fastpath"
	"repro/internal/flowstate"
)

// coreChaosCfg pins four fast-path cores (no scaling churn under the
// fault) and arms the core watchdog. ControlInterval 10ms gives a 20ms
// base RTO (StallIntervals=2) and a detection sweep fast enough that
// CoreTimeout dominates detection latency. CoreTimeout 400ms sits 4×
// above the blocked-core heartbeat period (100ms), so a healthy core is
// never falsely condemned even under the race detector's slowdown.
func coreChaosCfg() Config {
	return Config{
		FastPathCores:      4,
		DisableCoreScaling: true,
		CoreTimeout:        400 * time.Millisecond,
		ControlInterval:    10 * time.Millisecond,
		HandshakeRTO:       20 * time.Millisecond,
		HandshakeRetries:   3,
		MaxRetransmits:     10,
		Telemetry:          TelemetryConfig{Enabled: true},
	}
}

// victimCore returns the active core owning the most flows in eng's
// table (ties to the lowest index) and how many flows it owns.
func victimCore(eng *fastpath.Engine) (int, int) {
	counts := make(map[int]int)
	eng.Table.ForEach(func(f *flowstate.Flow) {
		counts[eng.CoreForFlow(f)]++
	})
	victim, n := -1, 0
	for c, k := range counts {
		if k > n || (k == n && (victim < 0 || c < victim)) {
			victim, n = c, k
		}
	}
	return victim, n
}

// assertNoBucketSteersTo fails if any RSS bucket names the given core.
func assertNoBucketSteersTo(t *testing.T, eng *fastpath.Engine, core int, when string) {
	t.Helper()
	for b := 0; b < flowstate.RSSTableSize; b++ {
		if eng.RSS.CoreFor(uint32(b)) == core {
			t.Fatalf("%s: RSS bucket %d steers to failed core %d", when, b, core)
		}
	}
}

// TestChaosCoreKillMidTransfer is the data-plane failure-domain
// acceptance test: one of four active fast-path cores on the server is
// killed mid-transfer under Gilbert–Elliott burst loss. The core
// watchdog must detect the frozen heartbeat within CoreTimeout, rewrite
// RSS around the corpse (and keep excluding it across a scale event),
// migrate its flows to survivors, and — after ReviveCore — fold the
// core back in. Every flow completes SHA-256-intact and post-recovery
// transfer time stays within 2× of the pre-fault baseline.
func TestChaosCoreKillMidTransfer(t *testing.T) {
	fab, srv, cli := newPair(t, coreChaosCfg())
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}

	const nConns = 6
	const total = 64 << 10
	const chunk = total / 4
	payloads := make([][]byte, nConns)
	sums := make(map[[32]byte]int, nConns)
	for i := range payloads {
		payloads[i] = make([]byte, total)
		rand.New(rand.NewSource(int64(i + 1))).Read(payloads[i])
		sums[sha256.Sum256(payloads[i])] = i
	}

	type result struct {
		sum [32]byte
		err error
	}
	results := make(chan result, nConns)
	for i := 0; i < nConns; i++ {
		go func() {
			c, err := ln.Accept(10 * time.Second)
			if err != nil {
				results <- result{err: err}
				return
			}
			var got bytes.Buffer
			buf := make([]byte, 16<<10)
			for {
				n, err := c.ReadTimeout(buf, 30*time.Second)
				if n > 0 {
					got.Write(buf[:n])
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					results <- result{err: err}
					return
				}
			}
			results <- result{sum: sha256.Sum256(got.Bytes())}
		}()
	}

	conns := make([]*Conn, nConns)
	for i := range conns {
		c, err := cli.NewContext().Dial("10.0.0.1", 8080)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}

	// Phase A: healthy baseline, timed — the throughput yardstick the
	// post-recovery phase is held to.
	preStart := time.Now()
	for i, c := range conns {
		if _, err := c.WriteTimeout(payloads[i][:chunk], 10*time.Second); err != nil {
			t.Fatalf("healthy write on conn %d: %v", i, err)
		}
	}
	preDur := time.Since(preStart)

	// Phase B: burst loss, then kill the server core owning the most
	// flows mid-transfer.
	fab.SetBurstLoss(GEConfig{PGoodToBad: 0.02, PBadToGood: 0.3, LossGood: 0, LossBad: 0.5}, 7)
	victim, owned := victimCore(srv.Engine())
	if owned == 0 {
		t.Fatal("no server core owns any flows")
	}
	srv.KillCore(victim)

	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().CoreFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	st := srv.Stats()
	if st.CoreFailures != 1 {
		t.Fatalf("CoreFailures = %d, want 1", st.CoreFailures)
	}
	if !srv.CoreFailed(victim) {
		t.Fatalf("core %d not marked failed", victim)
	}
	if st.FlowsMigrated < uint64(owned) {
		t.Fatalf("FlowsMigrated = %d, want >= %d (victim's flows)", st.FlowsMigrated, owned)
	}
	if st.CoresFailed != 1 {
		t.Fatalf("CoresFailed gauge = %d, want 1", st.CoresFailed)
	}
	// A killed (exited) core's backlog is drained, not stranded.
	if st.CoreStranded != 0 {
		t.Fatalf("CoreStranded = %d, want 0 for an exited core", st.CoreStranded)
	}

	// Never-steer-to-failed, including across a scale event while down.
	assertNoBucketSteersTo(t, srv.Engine(), victim, "after failure verdict")
	srv.Engine().SetActiveCores(4)
	assertNoBucketSteersTo(t, srv.Engine(), victim, "after SetActiveCores")
	rxFrozen := srv.Engine().Stats(victim).RxPackets.Load()

	// Phase C: the transfer continues through the outage on survivors,
	// still under burst loss.
	for i, c := range conns {
		if _, err := c.WriteTimeout(payloads[i][chunk:3*chunk], 20*time.Second); err != nil {
			t.Fatalf("outage write on conn %d: %v", i, err)
		}
	}
	fab.ClearBurstLoss()
	if got := srv.Engine().Stats(victim).RxPackets.Load(); got != rxFrozen {
		t.Fatalf("failed core processed packets during outage: %d -> %d", rxFrozen, got)
	}

	// Phase D: revive; the watchdog re-admits after clean heartbeats.
	if !srv.ReviveCore(victim) {
		t.Fatal("ReviveCore failed")
	}
	deadline = time.Now().Add(5 * time.Second)
	for (srv.Stats().CoreReadmits == 0 || srv.CoreFailed(victim)) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if st := srv.Stats(); st.CoreReadmits != 1 || st.CoresFailed != 0 {
		t.Fatalf("after revive: CoreReadmits=%d CoresFailed=%d, want 1/0", st.CoreReadmits, st.CoresFailed)
	}

	// Phase E: post-recovery throughput within 2× of the healthy
	// baseline (floored: sub-millisecond baselines are scheduler noise).
	postStart := time.Now()
	for i, c := range conns {
		if _, err := c.WriteTimeout(payloads[i][3*chunk:], 10*time.Second); err != nil {
			t.Fatalf("post-recovery write on conn %d: %v", i, err)
		}
	}
	postDur := time.Since(postStart)
	budget := 2 * preDur
	if floor := 750 * time.Millisecond; budget < floor {
		budget = floor
	}
	if postDur > budget {
		t.Fatalf("post-recovery transfer took %v, budget %v (pre-fault %v)", postDur, budget, preDur)
	}
	t.Logf("pre-fault %v, post-recovery %v (budget %v), victim core %d owned %d flows",
		preDur, postDur, budget, victim, owned)

	// Every byte stream survives the migration intact.
	for _, c := range conns {
		c.Close()
	}
	seen := make(map[int]bool)
	for i := 0; i < nConns; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				t.Fatalf("receiver: %v", r.err)
			}
			id, ok := sums[r.sum]
			if !ok {
				t.Fatal("byte stream corrupted across core failure")
			}
			seen[id] = true
		case <-time.After(30 * time.Second):
			t.Logf("srv stats: %+v", srv.Stats())
			t.Fatal("transfer did not complete")
		}
	}
	if len(seen) != nConns {
		t.Fatalf("only %d distinct streams delivered, want %d", len(seen), nConns)
	}

	// The episode is visible in the metrics exposition.
	var b strings.Builder
	if err := srv.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"tas_core_failures_total 1",
		"tas_core_readmits_total 1",
		"tas_core_panics_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, out)
		}
	}
}

// TestChaosCombinedFailureDomains exercises all three failure domains
// plus a lossy network in a single run: Gilbert–Elliott burst loss, an
// application context killed mid-transfer, the client's slow path
// crashed and warm-restarted, and a server fast-path core killed and
// revived. The surviving flows must complete SHA-256-intact.
func TestChaosCombinedFailureDomains(t *testing.T) {
	if raceEnabled {
		t.Skip("timing-heavy chaos test; plain run covers it (core-kill chaos runs under -race)")
	}
	cfg := coreChaosCfg()
	cfg.FastPathCores = 3
	cfg.SlowPathTimeout = 200 * time.Millisecond
	cfg.AppTimeout = 150 * time.Millisecond
	fab, srv, cli := newPair(t, cfg)
	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}

	const nConns = 4
	const victimConn = 0 // its app context is killed mid-transfer
	const total = 48 << 10
	const half = total / 2
	payloads := make([][]byte, nConns)
	sums := make(map[[32]byte]int, nConns)
	for i := range payloads {
		payloads[i] = make([]byte, total)
		rand.New(rand.NewSource(int64(100 + i))).Read(payloads[i])
		sums[sha256.Sum256(payloads[i])] = i
	}

	type result struct {
		sum [32]byte
		err error
	}
	results := make(chan result, nConns)
	for i := 0; i < nConns; i++ {
		go func() {
			c, err := ln.Accept(10 * time.Second)
			if err != nil {
				results <- result{err: err}
				return
			}
			var got bytes.Buffer
			buf := make([]byte, 16<<10)
			for {
				n, err := c.ReadTimeout(buf, 30*time.Second)
				if n > 0 {
					got.Write(buf[:n])
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					results <- result{err: err}
					return
				}
			}
			results <- result{sum: sha256.Sum256(got.Bytes())}
		}()
	}

	// The doomed app gets its own context; survivors share another.
	doomedCtx := cli.NewContext()
	liveCtx := cli.NewContext()
	conns := make([]*Conn, nConns)
	for i := range conns {
		ctx := liveCtx
		if i == victimConn {
			ctx = doomedCtx
		}
		c, err := ctx.Dial("10.0.0.1", 8080)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}

	// Everyone ships the first half healthy.
	for i, c := range conns {
		if _, err := c.WriteTimeout(payloads[i][:half], 10*time.Second); err != nil {
			t.Fatalf("healthy write on conn %d: %v", i, err)
		}
	}

	// Chaos, stacked: burst loss; app killed; slow path crashed and warm
	// restarted; fast-path core killed.
	fab.SetBurstLoss(GEConfig{PGoodToBad: 0.02, PBadToGood: 0.3, LossGood: 0, LossBad: 0.5}, 11)
	doomedCtx.Kill()

	cli.KillSlowPath()
	deadline := time.Now().Add(5 * time.Second)
	for !cli.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !cli.Degraded() {
		t.Fatal("client fast path never entered degraded mode")
	}
	cli.Restart()
	deadline = time.Now().Add(5 * time.Second)
	for cli.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if cli.Degraded() {
		t.Fatal("client fast path never recovered from warm restart")
	}

	victim, owned := victimCore(srv.Engine())
	if owned == 0 {
		t.Fatal("no server core owns any flows")
	}
	srv.KillCore(victim)
	deadline = time.Now().Add(5 * time.Second)
	for srv.Stats().CoreFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.Stats().CoreFailures == 0 {
		t.Fatal("core failure never detected")
	}
	assertNoBucketSteersTo(t, srv.Engine(), victim, "after combined-chaos verdict")

	// Survivors push the second half through the wreckage.
	for i, c := range conns {
		if i == victimConn {
			continue
		}
		if _, err := c.WriteTimeout(payloads[i][half:], 30*time.Second); err != nil {
			t.Fatalf("outage write on conn %d: %v", i, err)
		}
	}
	fab.ClearBurstLoss()

	if !srv.ReviveCore(victim) {
		t.Fatal("ReviveCore failed")
	}
	deadline = time.Now().Add(5 * time.Second)
	for srv.CoreFailed(victim) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.CoreFailed(victim) {
		t.Fatal("core never re-admitted")
	}

	for i, c := range conns {
		if i != victimConn {
			c.Close()
		}
	}

	// Surviving flows deliver intact; the doomed flow's receiver may see
	// an abort or a truncated stream — either is acceptable, a completed
	// SHA-256 match for it is not required.
	survivors := make(map[int]bool)
	for i := 0; i < nConns; i++ {
		select {
		case r := <-results:
			if r.err != nil {
				continue // the doomed flow's receiver erroring is expected
			}
			if id, ok := sums[r.sum]; ok {
				survivors[id] = true
			} else {
				t.Fatal("byte stream corrupted under combined chaos")
			}
		case <-time.After(30 * time.Second):
			t.Logf("srv stats: %+v", srv.Stats())
			t.Logf("cli stats: %+v", cli.Stats())
			t.Fatal("surviving transfers did not complete")
		}
	}
	for i := 0; i < nConns; i++ {
		if i != victimConn && !survivors[i] {
			t.Fatalf("surviving conn %d did not deliver intact (survivors: %v)", i, survivors)
		}
	}
	t.Logf("combined chaos: victim core %d (owned %d flows), stats %+v",
		victim, owned, srv.Stats())
}
