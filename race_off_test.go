//go:build !race

package tas

const raceEnabled = false
