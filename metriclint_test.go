package tas_test

import (
	"bytes"
	"regexp"
	"strings"
	"testing"

	tas "repro"
)

var (
	lintMetricName = regexp.MustCompile(`^tas_[a-z0-9_]+$`)
	lintLabelKey   = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	// Counter names must state their unit of accumulation.
	lintCounterSuffixes = []string{"_total", "_count", "_sum", "_bucket"}
)

// TestMetricNamingConventions walks every series a fully built service
// registers — counters, gauges, histograms, the latency observatory,
// ring-depth gauges — and enforces the Prometheus naming rules the
// repo's exposition promises: tas_ prefix, lowercase snake case,
// counters ending in an accumulation suffix, and valid label keys.
// Registering a nonconforming metric anywhere in the stack fails here,
// not in a dashboard three weeks later.
func TestMetricNamingConventions(t *testing.T) {
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.1", tas.Config{
		Telemetry: tas.TelemetryConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	samples := srv.Metrics().Samples()
	if len(samples) == 0 {
		t.Fatal("registry exposed no series")
	}
	seen := map[string]bool{}
	for _, s := range samples {
		if !lintMetricName.MatchString(s.Name) {
			t.Errorf("metric %q: name violates ^tas_[a-z0-9_]+$", s.Name)
		}
		if strings.Contains(s.Name, "__") {
			t.Errorf("metric %q: double underscore", s.Name)
		}
		switch s.Kind {
		case "counter":
			ok := false
			for _, suf := range lintCounterSuffixes {
				if strings.HasSuffix(s.Name, suf) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("counter %q: name must end in one of %v", s.Name, lintCounterSuffixes)
			}
		case "gauge":
			if strings.HasSuffix(s.Name, "_total") {
				t.Errorf("gauge %q: _total suffix is reserved for counters", s.Name)
			}
		default:
			t.Errorf("metric %q: unknown kind %q", s.Name, s.Kind)
		}
		id := s.Name
		for k, v := range s.Labels {
			if !lintLabelKey.MatchString(k) {
				t.Errorf("metric %q: label key %q violates ^[a-z][a-z0-9_]*$", s.Name, k)
			}
			if v == "" {
				t.Errorf("metric %q: label %q has empty value", s.Name, k)
			}
		}
		// Duplicate series (same name + label set) would collide in any
		// Prometheus scrape.
		var parts []string
		for k, v := range s.Labels {
			parts = append(parts, k+"="+v)
		}
		// map iteration order: sort for a stable identity
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if parts[j] < parts[i] {
					parts[i], parts[j] = parts[j], parts[i]
				}
			}
		}
		id += "{" + strings.Join(parts, ",") + "}"
		if seen[id] {
			t.Errorf("duplicate series %s", id)
		}
		seen[id] = true
	}

	// Every metric must carry non-empty help text in the exposition.
	var b bytes.Buffer
	if err := srv.Metrics().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "# HELP ") {
			continue
		}
		rest := strings.TrimPrefix(line, "# HELP ")
		name, help, found := strings.Cut(rest, " ")
		if !found || strings.TrimSpace(help) == "" {
			t.Errorf("metric %q: empty help text", name)
		}
	}
}

// TestGovernorMetricPresence pins the resource-governor series the
// dashboards and scenario assertions depend on: the pressure-ladder
// gauges, a full per-pool gauge/counter family for every governed pool,
// per-rung engagement and shed counters, the quota-denial counter, and
// the ladder's SYN-shed drop cause. Renaming or dropping any of these
// breaks consumers silently, so their presence is asserted by exact
// series identity — and TestMetricNamingConventions above lints the
// same series for convention violations automatically.
func TestGovernorMetricPresence(t *testing.T) {
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.1", tas.Config{
		Telemetry: tas.TelemetryConfig{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	type series struct {
		name       string
		labelKey   string
		labelValue string
	}
	want := []series{
		{"tas_pressure_level", "", ""},
		{"tas_pressure_peak_level", "", ""},
		{"tas_pressure_ratio", "", ""},
		{"tas_pressure_quota_rejects_total", "", ""},
		{"tas_pressure_flow_denials_total", "", ""},
		{"tas_pressure_idle_reclaimed_total", "", ""},
		{"tas_drops_total", "cause", "syn_shed_pressure"},
	}
	for _, pool := range []string{"payload_bytes", "flows", "half_open", "contexts", "timers", "accept"} {
		want = append(want,
			series{"tas_pool_used", "pool", pool},
			series{"tas_pool_cap", "pool", pool},
			series{"tas_pool_peak", "pool", pool},
			series{"tas_pool_rejects_total", "pool", pool},
		)
	}
	for _, rung := range []string{"cookies", "shed_syn", "clamp_tx", "reclaim"} {
		want = append(want,
			series{"tas_pressure_engaged_total", "rung", rung},
			series{"tas_pressure_sheds_total", "rung", rung},
		)
	}

	have := map[series]bool{}
	for _, s := range srv.Metrics().Samples() {
		if len(s.Labels) == 0 {
			have[series{s.Name, "", ""}] = true
			continue
		}
		for k, v := range s.Labels {
			have[series{s.Name, k, v}] = true
		}
	}
	for _, w := range want {
		if !have[w] {
			if w.labelKey == "" {
				t.Errorf("missing series %s", w.name)
			} else {
				t.Errorf("missing series %s{%s=%q}", w.name, w.labelKey, w.labelValue)
			}
		}
	}
}
