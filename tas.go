// Package tas is TCP Acceleration as a Service: a reproduction of the
// EuroSys 2019 paper's system in Go. It splits common-case TCP
// processing onto dedicated fast-path cores (goroutines here), runs
// connection control / congestion policy / timeouts / core scaling in a
// slow path, and gives applications an untrusted user-level stack with
// a sockets-style API over shared-memory context queues and per-flow
// payload buffers.
//
// The package is a facade over the internal packages:
//
//	fab := tas.NewFabric()                  // in-process network
//	srv, _ := fab.NewService("10.0.0.1", tas.Config{})
//	cli, _ := fab.NewService("10.0.0.2", tas.Config{})
//
//	sctx := srv.NewContext()                // one per app thread
//	ln, _ := sctx.Listen(8080)
//	go func() {
//	    c, _ := ln.Accept(0)
//	    buf := make([]byte, 64)
//	    n, _ := c.Read(buf)
//	    c.Write(buf[:n])
//	}()
//
//	cctx := cli.NewContext()
//	c, _ := cctx.Dial("10.0.0.1", 8080)
//	c.Write([]byte("ping"))
//
// Connections implement io.ReadWriteCloser. For the low-level API
// (the paper's IX-like interface) use Context.LowLevel.
package tas

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/congestion"
	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/libtas"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/shmring"
	"repro/internal/slowpath"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Config parameterizes one TAS service instance.
type Config struct {
	// FastPathCores is the maximum number of fast-path cores (default
	// 2). The slow path scales the active count with load unless
	// DisableCoreScaling is set.
	FastPathCores int

	// RxBufSize / TxBufSize are the fixed per-connection payload buffer
	// sizes in bytes (powers of two; default 256 KiB).
	RxBufSize, TxBufSize int

	// CongestionControl selects the slow-path policy: "dctcp" (rate-
	// based DCTCP, the paper's default), "timely", or "none" (no rate
	// enforcement). Default "dctcp".
	CongestionControl string

	// ControlInterval is the slow-path control loop period (default
	// 1ms).
	ControlInterval time.Duration

	// LinkRateBps calibrates congestion control (default 40 Gbps, the
	// paper's server NIC).
	LinkRateBps float64

	// DisableCoreScaling pins the fast path at FastPathCores.
	DisableCoreScaling bool

	// DisableOoo turns off the fast path's one-interval out-of-order
	// buffering ("TAS simple recovery", Figure 7's ablation).
	DisableOoo bool

	// HandshakeRTO is the initial SYN / SYN-ACK retransmission timeout;
	// it doubles per unanswered attempt (default 250ms). Lower it in
	// fault-injection tests to bound handshake failure detection.
	HandshakeRTO time.Duration

	// HandshakeRetries caps handshake retransmissions before a connect
	// fails with a timeout error (default 3).
	HandshakeRetries int

	// MaxRetransmits caps consecutive unproductive retransmission
	// timeouts on an established flow before it is aborted: RST to the
	// peer and ErrReset to the application (default 6).
	MaxRetransmits int

	// PersistRTO is the initial persist-timer interval: when the peer
	// advertises a zero receive window while data is pending, the slow
	// path probes with 1-byte window probes starting at this interval and
	// backing off exponentially (default 200ms).
	PersistRTO time.Duration

	// MaxPersistProbes caps consecutive unanswered zero-window probes
	// before the flow is declared dead and aborted with a peer-dead error
	// (default 8). A probe is "answered" whenever the peer reopens its
	// window; mere duplicate zero-window ACKs keep the count rising.
	MaxPersistProbes int

	// KeepaliveTime enables TCP keepalives: an established flow idle in
	// both directions for this long gets liveness probes. Zero disables
	// keepalives (the default — idle connections are legitimate).
	KeepaliveTime time.Duration

	// KeepaliveInterval is the spacing between successive keepalive
	// probes once the idle threshold has passed (default KeepaliveTime/4,
	// floored at 10ms).
	KeepaliveInterval time.Duration

	// KeepaliveProbes is how many unanswered keepalive probes declare the
	// peer dead: the flow is aborted (RST best-effort) and every resource
	// it held is reclaimed (default 3).
	KeepaliveProbes int

	// FinWait2Timeout bounds FIN_WAIT_2: after our FIN is acknowledged,
	// the peer has this long to send its own FIN before the flow is
	// quietly reclaimed (default 5s). A crashed peer that acked the FIN
	// but never closes would otherwise pin the flow forever.
	FinWait2Timeout time.Duration

	// TimeWaitDuration is the 2MSL quarantine on the active closer's
	// 4-tuple (default 1s here — scaled for an in-process fabric). While
	// quarantined, old duplicate segments get the RFC 793 re-ACK and the
	// tuple is not picked for new outbound connections; a new SYN with a
	// sequence number above the quarantined flow's final sequence may
	// reuse the tuple early (RFC 6191).
	TimeWaitDuration time.Duration

	// AppTimeout is how long an application context may go without a
	// heartbeat before the slow path declares the app dead and reclaims
	// everything it held: flows (RST to peers), listen ports, context
	// slot, payload buffers. Default 30s; negative disables reaping.
	AppTimeout time.Duration

	// ListenBacklog bounds per-listener admission: half-open handshakes
	// plus not-yet-accepted connections. SYNs beyond it are shed
	// (dropped silently, so well-behaved peers retry). Default 128.
	ListenBacklog int

	// SynCookies selects the SYN-cookie mode: "" (auto — engage per
	// listener while half-open occupancy or SYN arrival rate indicates
	// a flood), "always" (every handshake stateless), or "off". Under
	// cookies the SYN-ACK's initial sequence number is a keyed MAC over
	// the 4-tuple, so a flood costs the slow path no memory and the
	// completing ACK alone reconstructs the connection.
	SynCookies string

	// ChallengeAckPerSec bounds RFC 5961 challenge ACKs per second
	// across the whole service (0 = default 100; negative disables
	// challenge ACKs entirely). Challenge ACKs answer in-window-but-
	// inexact RSTs and SYNs on established connections.
	ChallengeAckPerSec int

	// HandshakeStripes is the number of lock stripes sharding the
	// slow path's listener and half-open tables (default 16, rounded up
	// to a power of two). More stripes mean a SYN flood on one port
	// contends with less unrelated connection setup.
	HandshakeStripes int

	// SlowPathTimeout is how long the slow-path heartbeat may go stale
	// before the fast path enters degraded mode: established flows keep
	// transferring, but new SYNs are shed and Dial/Listen fail fast
	// with ErrSlowPathDown until Service.Restart recovers the control
	// plane. Default 1s; negative disables the watchdog.
	SlowPathTimeout time.Duration

	// CoreTimeout is how long a fast-path core's per-iteration heartbeat
	// may go without advancing before the slow path declares the core
	// failed: its RSS buckets are rewritten to surviving cores (and no
	// scale event ever steers back to it), its flows are migrated —
	// state re-adopted, retransmission re-armed, TX kicked — and packets
	// stranded in its queues are requeued. A revived core
	// (Service.ReviveCore) is folded back in after it proves clean
	// heartbeats. Default 500ms; negative disables the core watchdog.
	// Values below 250ms are floored there: even an idle healthy core
	// only advances its counter every blocked-wakeup period (~100ms).
	CoreTimeout time.Duration

	// Telemetry opts into the observability subsystem: a unified metrics
	// registry (Service.Metrics), a per-flow flight recorder, and
	// per-core cycle accounting. Zero value = off, leaving only
	// nil-pointer checks on the hot paths.
	Telemetry TelemetryConfig

	// Resource-governor capacities. Every finite pool is accounted by
	// the unified governor regardless; a zero capacity leaves that pool
	// uncapped (accounted but never denied, contributing no pressure).
	// When capped, admission beyond the capacity fails with
	// backpressure (see ErrBackpressure) and occupancy drives the
	// degradation ladder: SYN cookies engage at PressureEngagePct of
	// the hottest pool, then SYN shedding, TX-grant clamping, and
	// LRU idle-flow reclamation as pressure keeps rising.
	MaxPayloadBytes  int64 // total payload-buffer bytes across all flows
	MaxFlows         int   // established flow-table entries
	MaxHalfOpen      int   // half-open handshake slots
	MaxContexts      int   // registered application contexts
	MaxTimers        int   // pending timer entries (FIN/closing sweeps)
	MaxAcceptBacklog int   // not-yet-accepted connections across listeners
	MaxTimeWait      int   // TIME_WAIT quarantine entries (oldest evicted past cap)

	// Per-app quotas (0 = none). A quota must not exceed the matching
	// global capacity when both are set; NewService rejects such
	// configs.
	AppMaxFlows        int
	AppMaxPayloadBytes int64

	// PressureEngagePct / PressureReleasePct are the degradation
	// ladder's hysteresis watermarks in percent of the hottest capped
	// pool (defaults 70/55). Release must be strictly below engage;
	// NewService rejects inverted or out-of-range pairs.
	PressureEngagePct  int
	PressureReleasePct int

	// IdleReclaimAge is how long a flow must sit with no packet or
	// application activity before the ladder's last rung may reclaim it
	// (default 1s). ReclaimBatch bounds reclaims per control tick
	// (default 32).
	IdleReclaimAge time.Duration
	ReclaimBatch   int
}

// TelemetryConfig configures the observability subsystem (see
// internal/telemetry).
type TelemetryConfig = telemetry.Config

// Fabric is the in-process network connecting services.
type Fabric struct{ f *fabric.Fabric }

// NewFabric creates an empty network.
func NewFabric() *Fabric { return &Fabric{f: fabric.New()} }

// SetLoss makes the fabric drop packets at the given probability
// (failure injection).
func (f *Fabric) SetLoss(p float64) { f.f.SetLossRate(p) }

// SetLatency adds one-way delivery latency.
func (f *Fabric) SetLatency(d time.Duration) { f.f.SetLatency(d) }

// GEConfig parameterizes the Gilbert–Elliott burst-loss model.
type GEConfig = stats.GEConfig

// DefaultGEConfig returns bursty-loss parameters (~9% stationary time
// in the bad state, 75% loss while there).
func DefaultGEConfig() GEConfig { return stats.DefaultGEConfig() }

// SetLinkDown takes a host's link down (down=true) or back up: while
// down, every packet to or from addr is dropped silently.
func (f *Fabric) SetLinkDown(addr string, down bool) error {
	ip, err := ParseIP(addr)
	if err != nil {
		return err
	}
	f.f.SetLinkDown(ip, down)
	return nil
}

// Partition drops all packets between the two hosts (both directions)
// until Heal or HealAll.
func (f *Fabric) Partition(a, b string) error {
	ipa, err := ParseIP(a)
	if err != nil {
		return err
	}
	ipb, err := ParseIP(b)
	if err != nil {
		return err
	}
	f.f.Partition(ipa, ipb)
	return nil
}

// Heal removes a partition between two hosts.
func (f *Fabric) Heal(a, b string) error {
	ipa, err := ParseIP(a)
	if err != nil {
		return err
	}
	ipb, err := ParseIP(b)
	if err != nil {
		return err
	}
	f.f.Heal(ipa, ipb)
	return nil
}

// HealAll removes all partitions and brings all links up.
func (f *Fabric) HealAll() { f.f.HealAll() }

// SetBurstLoss enables seeded Gilbert–Elliott burst loss on the whole
// fabric (correlated drop bursts rather than uniform loss).
func (f *Fabric) SetBurstLoss(cfg GEConfig, seed int64) { f.f.SetBurstLoss(cfg, seed) }

// ClearBurstLoss disables burst loss.
func (f *Fabric) ClearBurstLoss() { f.f.ClearBurstLoss() }

// Reseed re-seeds the fabric's random source (the uniform-loss process)
// so a run's loss decisions replay deterministically from a scenario
// seed instead of the construction-time default.
func (f *Fabric) Reseed(seed int64) { f.f.Reseed(seed) }

// LinkConfig parameterizes the netem-grade link model: transmission
// (RateBps), bounded queueing (QueueCap packets, drop-tail, optional
// ECN CE marking past ECNThreshold), and propagation (PropDelay)
// modeled separately per destination.
type LinkConfig = fabric.LinkConfig

// SetLink installs (or reconfigures, mid-run) the link model on every
// destination. Without it delivery is synchronous apart from
// SetLatency's flat delay — infinite bandwidth, so bursts arrive as
// bursts; with it, packets serialize at the configured rate through a
// bounded queue, giving congestion-limited behavior under load.
func (f *Fabric) SetLink(cfg LinkConfig) { f.f.SetLink(cfg) }

// ClearLink removes the link model.
func (f *Fabric) ClearLink() { f.f.ClearLink() }

// FabricStats counts what the fabric did to traffic.
type FabricStats struct {
	Delivered      uint64 `json:"delivered"`
	Dropped        uint64 `json:"dropped"`
	QueueDrops     uint64 `json:"queue_drops"`
	CEMarks        uint64 `json:"ce_marks"`
	DownDrops      uint64 `json:"down_drops"`
	PartitionDrops uint64 `json:"partition_drops"`
	BurstDrops     uint64 `json:"burst_drops"`
}

// Stats snapshots the fabric's delivery and drop counters.
func (f *Fabric) Stats() FabricStats {
	return FabricStats{
		Delivered:      f.f.Delivered.Load(),
		Dropped:        f.f.Dropped.Load(),
		QueueDrops:     f.f.QueueDrops.Load(),
		CEMarks:        f.f.CEMarks.Load(),
		DownDrops:      f.f.DownDrops.Load(),
		PartitionDrops: f.f.PartitionDrops.Load(),
		BurstDrops:     f.f.BurstDrops.Load(),
	}
}

// CaptureTo streams a pcap capture of every packet crossing the fabric
// into w (readable by tcpdump/Wireshark) until stop is called. One
// capture at a time. stop reports the first write error the capture
// hit, if any — a non-nil result means the file is truncated.
func (f *Fabric) CaptureTo(w io.Writer) (stop func() error, err error) {
	pw, err := trace.NewWriter(w)
	if err != nil {
		return nil, err
	}
	f.f.Tap = func(ts int64, pkt *protocol.Packet) { pw.WritePacket(ts, pkt) }
	return func() error {
		f.f.Tap = nil
		return pw.Err()
	}, nil
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (protocol.IPv4, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("tas: bad IPv4 %q: %w", s, err)
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("tas: bad IPv4 %q", s)
		}
	}
	return protocol.MakeIPv4(byte(a), byte(b), byte(c), byte(d)), nil
}

// Service is one host's TAS instance: fast path + slow path attached to
// the fabric at an IP address.
type Service struct {
	IP    protocol.IPv4
	eng   *fastpath.Engine
	stack *libtas.Stack
	fab   *Fabric
	telem *telemetry.Telemetry // nil when telemetry is off
	gov   *resource.Governor

	// slow is atomic because Restart swaps in a fresh instance while
	// application goroutines and metric scrapes are running.
	slow     atomic.Pointer[slowpath.Slowpath]
	scfg     slowpath.Config // kept for warm restarts
	restarts atomic.Uint64
}

// NewService creates, attaches, and starts a TAS instance at addr
// (dotted quad).
func (f *Fabric) NewService(addr string, cfg Config) (*Service, error) {
	ip, err := ParseIP(addr)
	if err != nil {
		return nil, err
	}
	if cfg.FastPathCores <= 0 {
		cfg.FastPathCores = 2
	}
	var telem *telemetry.Telemetry
	if cfg.Telemetry.Enabled {
		telem = telemetry.New(cfg.Telemetry, cfg.FastPathCores)
	}
	spTimeout := cfg.SlowPathTimeout
	switch {
	case spTimeout == 0:
		spTimeout = time.Second
	case spTimeout < 0:
		spTimeout = 0 // watchdog disabled
	}
	coreTimeout := cfg.CoreTimeout
	switch {
	case coreTimeout == 0:
		coreTimeout = 500 * time.Millisecond
	case coreTimeout < 0:
		coreTimeout = 0 // core watchdog disabled
	}
	ecfg := fastpath.Config{
		LocalIP:            ip,
		LocalMAC:           protocol.MACForIPv4(ip),
		MaxCores:           cfg.FastPathCores,
		DisableOoo:         cfg.DisableOoo,
		SlowPathTimeout:    spTimeout,
		ChallengeAckPerSec: cfg.ChallengeAckPerSec,
		Telemetry:          telem,
	}
	// The fabric handler closes over the engine variable, which is
	// assigned immediately after attaching; no packets flow until a
	// peer sends to this IP.
	var eng *fastpath.Engine
	nic := f.f.Attach(ip, func(pkt *protocol.Packet) {
		if eng != nil {
			eng.Input(pkt)
		}
	})
	eng = fastpath.NewEngine(nic, ecfg)

	// The governor always runs — accounting is how leaks are caught —
	// but only capped pools can deny admission or raise pressure.
	lim := resource.Limits{
		PayloadBytes:    cfg.MaxPayloadBytes,
		Flows:           int64(cfg.MaxFlows),
		HalfOpen:        int64(cfg.MaxHalfOpen),
		Contexts:        int64(cfg.MaxContexts),
		Timers:          int64(cfg.MaxTimers),
		Accept:          int64(cfg.MaxAcceptBacklog),
		TimeWait:        int64(cfg.MaxTimeWait),
		AppFlows:        int64(cfg.AppMaxFlows),
		AppPayloadBytes: cfg.AppMaxPayloadBytes,
		EngagePct:       cfg.PressureEngagePct,
		ReleasePct:      cfg.PressureReleasePct,
	}
	if err := lim.Validate(); err != nil {
		return nil, fmt.Errorf("tas: invalid resource limits: %w", err)
	}
	gov := resource.New(lim)
	eng.SetGovernor(gov)
	if telem != nil {
		// The "pressure" ring is materialized on the first transition,
		// not eagerly: an unpressured run leaves no synthetic flow in
		// the recorder.
		gov.OnTransition(func(from, to int) {
			kind := telemetry.FEPressureUp
			if to < from {
				kind = telemetry.FEPressureDown
			}
			telem.Recorder.Ring("pressure").Record(kind, 0, 0, uint32(from), uint64(to))
		})
	}

	scfg := slowpath.Config{
		RxBufSize:         cfg.RxBufSize,
		TxBufSize:         cfg.TxBufSize,
		ControlInterval:   cfg.ControlInterval,
		DisableScaling:    cfg.DisableCoreScaling,
		HandshakeRTO:      cfg.HandshakeRTO,
		HandshakeRetries:  cfg.HandshakeRetries,
		MaxRetransmits:    cfg.MaxRetransmits,
		PersistRTO:        cfg.PersistRTO,
		MaxPersistProbes:  cfg.MaxPersistProbes,
		KeepaliveTime:     cfg.KeepaliveTime,
		KeepaliveInterval: cfg.KeepaliveInterval,
		KeepaliveProbes:   cfg.KeepaliveProbes,
		FinWait2Timeout:   cfg.FinWait2Timeout,
		TimeWait:          cfg.TimeWaitDuration,
		AppTimeout:        cfg.AppTimeout,
		ListenBacklog:     cfg.ListenBacklog,
		SynCookies:        cfg.SynCookies,
		Stripes:           cfg.HandshakeStripes,
		CoreTimeout:       coreTimeout,
		Telemetry:         telem,
		Gov:               gov,
		IdleReclaimAge:    cfg.IdleReclaimAge,
		ReclaimBatch:      cfg.ReclaimBatch,
	}
	link := cfg.LinkRateBps
	if link <= 0 {
		link = 40e9
	}
	switch cfg.CongestionControl {
	case "", "dctcp":
		scfg.NewController = func() congestion.RateController {
			c := congestion.DefaultConfig(link)
			c.InitRate = link / 8 / 10
			return congestion.NewRateDCTCP(c)
		}
	case "timely":
		scfg.NewController = func() congestion.RateController {
			c := congestion.DefaultConfig(link)
			c.InitRate = link / 8 / 10
			return congestion.NewTIMELY(c)
		}
	case "dctcp-window":
		// Window-based DCTCP behind the rate-bucket enforcement (§3.2:
		// TAS supports both rate- and window-based control).
		scfg.NewController = func() congestion.RateController {
			return congestion.NewRateFromWindow(
				congestion.NewWindowDCTCP(protocol.DefaultMSS, 2<<20),
				congestion.DefaultConfig(link))
		}
	case "none":
		scfg.NewController = func() congestion.RateController { return unlimited{} }
	default:
		return nil, fmt.Errorf("tas: unknown congestion control %q", cfg.CongestionControl)
	}

	slow := slowpath.New(eng, scfg)
	eng.Start()
	if cfg.DisableCoreScaling {
		// With scaling off nothing would ever grow the active set past
		// the initial single core; pin the full complement so every
		// configured core carries traffic (and a core-failure re-steer
		// has survivors to steer to).
		eng.SetActiveCores(cfg.FastPathCores)
	}
	slow.Start()
	s := &Service{IP: ip, eng: eng, fab: f, telem: telem, gov: gov, scfg: scfg}
	s.slow.Store(slow)
	s.stack = libtas.NewStack(eng, slow)
	s.stack.Telem = telem
	if telem != nil {
		s.registerMetrics()
	}
	return s, nil
}

// RecoveryStats reports what a warm restart rebuilt (see
// slowpath.Recover).
type RecoveryStats = slowpath.RecoveryStats

// Restart warm-restarts the slow path: the current instance is killed
// (a no-op if it already crashed), and a fresh one reconstructs its
// control state — congestion/RTO entries, FIN timers, listener map —
// from the shared flow table, payload-ring positions, rate buckets, and
// listener registry the engine kept serving throughout the outage.
// Established connections are untouched; the fast path's watchdog
// observes the resumed heartbeat and leaves degraded mode.
func (s *Service) Restart() RecoveryStats {
	old := s.slow.Load()
	old.Kill()
	ns := slowpath.New(s.eng, s.scfg)
	ns.AdoptCounters(old.Counters())
	rep := ns.Recover()
	ns.Start()
	s.slow.Store(ns)
	s.stack.SetSlow(ns)
	s.restarts.Add(1)
	return rep
}

// Restarts returns how many times the slow path has been warm-restarted.
func (s *Service) Restarts() uint64 { return s.restarts.Load() }

// KillSlowPath crashes the slow path abruptly (fault harness): the
// control plane dies mid-whatever-it-was-doing, heartbeats stop, and
// after SlowPathTimeout the fast path enters degraded mode. Established
// flows keep transferring; recover with Restart.
func (s *Service) KillSlowPath() { s.slow.Load().Kill() }

// StallSlowPath wedges the slow path for d without killing it —
// a livelocked control plane. Stalls longer than SlowPathTimeout
// trigger degraded mode until the loop resumes beating.
func (s *Service) StallSlowPath(d time.Duration) { s.slow.Load().Stall(d) }

// InjectSlowPathPanic makes the slow-path event loop panic at its next
// iteration. The panic is contained and counted; the loop is dead until
// Restart, exactly like KillSlowPath but via the panic path.
func (s *Service) InjectSlowPathPanic() { s.slow.Load().InjectPanic() }

// Degraded reports whether the fast path currently considers the slow
// path down.
func (s *Service) Degraded() bool { return s.eng.Degraded() }

// KillCore crashes fast-path core i abruptly (fault harness): its
// goroutine exits at the next loop check without draining anything,
// exactly as an uncaught bug would leave it. After CoreTimeout the
// slow path's core watchdog re-steers RSS around it and migrates its
// flows to the survivors; recover the core with ReviveCore.
func (s *Service) KillCore(i int) { s.eng.KillCore(i) }

// StallCore wedges fast-path core i for d without killing it — the
// goroutine sleeps mid-iteration, heartbeats stop, its queues back up.
// Stalls longer than CoreTimeout trigger the same failure handling as
// a crash; when the stall ends the core starts beating again and is
// re-admitted automatically.
func (s *Service) StallCore(i int, d time.Duration) { s.eng.StallCore(i, d) }

// InjectCorePanic makes fast-path core i panic at its next loop check.
// The panic is contained and counted (never escapes to the process);
// the watchdog then treats the silent core like a crash.
func (s *Service) InjectCorePanic(i int) { s.eng.InjectCorePanic(i) }

// ReviveCore relaunches a crashed fast-path core's goroutine. Steering
// does not resume immediately: the slow path folds the core back into
// RSS only after it observes clean heartbeats from the new incarnation
// (the normal scale-up path). Returns false if the goroutine is still
// running.
func (s *Service) ReviveCore(i int) bool { return s.eng.ReviveCore(i) }

// CoreFailed reports whether fast-path core i is currently excluded
// from RSS steering by the core watchdog.
func (s *Service) CoreFailed(i int) bool { return s.eng.CoreFailed(i) }

// Telemetry returns the service's telemetry hub (registry, flight
// recorder, cycle accounts), or nil when telemetry is off.
func (s *Service) Telemetry() *telemetry.Telemetry { return s.telem }

// Metrics returns the service's metrics registry, or nil when telemetry
// is off. Serve Telemetry().Handler() for the HTTP exposition.
func (s *Service) Metrics() *telemetry.Registry {
	if s.telem == nil {
		return nil
	}
	return s.telem.Registry
}

// registerMetrics exposes the service's pre-existing atomic counters,
// drop accounting, live gauges, and cycle accounts through the unified
// registry. Everything reads lock-free or snapshot-at-scrape; nothing
// here adds hot-path work.
func (s *Service) registerMetrics() {
	r := s.telem.Registry
	eng := s.eng
	// Counters are read through s.Slow() at scrape time, not a captured
	// pointer, so metrics stay live across warm restarts (AdoptCounters
	// keeps them monotonic).
	slowCounters := func() slowpath.Counters { return s.Slow().Counters() }

	// Per-core fast-path activity.
	for i := 0; i < eng.MaxCores(); i++ {
		st := eng.Stats(i)
		lbl := telemetry.L("core", fmt.Sprintf("%d", i))
		for _, m := range []struct {
			name, help string
			read       func() float64
		}{
			{"tas_fastpath_rx_packets_total", "Packets received by a fast-path core.",
				func() float64 { return float64(st.RxPackets.Load()) }},
			{"tas_fastpath_tx_packets_total", "Segments transmitted by a fast-path core.",
				func() float64 { return float64(st.TxPackets.Load()) }},
			{"tas_fastpath_tx_bytes_total", "Payload bytes transmitted by a fast-path core.",
				func() float64 { return float64(st.TxBytes.Load()) }},
			{"tas_fastpath_acks_sent_total", "Acknowledgements generated by a fast-path core.",
				func() float64 { return float64(st.AcksSent.Load()) }},
			{"tas_fastpath_exceptions_total", "Packets forwarded to the slow path by a fast-path core.",
				func() float64 { return float64(st.Exceptions.Load()) }},
			{"tas_fastpath_fast_rexmits_total", "Fast retransmits triggered on a fast-path core.",
				func() float64 { return float64(st.Frexmits.Load()) }},
		} {
			r.CounterFunc(m.name, m.help, m.read, lbl)
		}
	}

	// Drop/shed accounting by cause (the DropStats causes).
	for _, m := range []struct {
		cause, help string
		read        func(fastpath.DropStats) uint64
	}{
		{"rx_ring_full", "NIC receive ring overflow.", func(d fastpath.DropStats) uint64 { return d.RxRingFull }},
		{"rx_buf_full", "Per-flow receive payload buffer full.", func(d fastpath.DropStats) uint64 { return d.RxBufFull }},
		{"bad_desc", "Malformed app-to-TAS queue descriptors.", func(d fastpath.DropStats) uint64 { return d.BadDesc }},
		{"syn_shed", "SYNs shed by slow-path admission control.", func(d fastpath.DropStats) uint64 { return d.SynShed }},
		{"syn_shed_down", "SYNs shed because the slow path is down (degraded mode).", func(d fastpath.DropStats) uint64 { return d.SynShedDown }},
		{"excq_full", "Exception queue overflow.", func(d fastpath.DropStats) uint64 { return d.ExcqFull }},
		{"events_lost", "Context event-queue overflow.", func(d fastpath.DropStats) uint64 { return d.EventsLost }},
		{"ooo_dropped", "Out-of-order segments outside the tracked interval.", func(d fastpath.DropStats) uint64 { return d.OooDropped }},
		{"core_stranded", "Packets stranded in a failed core's queues (stalled core, not drainable).", func(d fastpath.DropStats) uint64 { return d.CoreStranded }},
		{"blind_ack", "Blind-injection ACKs rejected by RFC 5961 validation.", func(d fastpath.DropStats) uint64 { return d.BlindAck }},
		{"syn_shed_pressure", "SYNs shed by the resource-pressure ladder (rung 2).", func(d fastpath.DropStats) uint64 { return d.SynShedPress }},
	} {
		read := m.read
		r.CounterFunc("tas_drops_total", "Work refused by cause: "+m.help,
			func() float64 { return float64(read(eng.Drops())) },
			telemetry.L("cause", m.cause))
	}

	// Slow-path lifecycle counters.
	for _, m := range []struct {
		name, help string
		read       func(slowpath.Counters) uint64
	}{
		{"tas_slowpath_established_total", "Connections established.", func(c slowpath.Counters) uint64 { return c.Established }},
		{"tas_slowpath_accepted_total", "Connections accepted (passive opens).", func(c slowpath.Counters) uint64 { return c.Accepted }},
		{"tas_slowpath_rejected_total", "Connection attempts refused.", func(c slowpath.Counters) uint64 { return c.Rejected }},
		{"tas_slowpath_timeouts_total", "Retransmission timeouts declared.", func(c slowpath.Counters) uint64 { return c.Timeouts }},
		{"tas_slowpath_handshake_rexmits_total", "SYN/SYN-ACK retransmissions.", func(c slowpath.Counters) uint64 { return c.HandshakeRexmits }},
		{"tas_slowpath_fin_rexmits_total", "FIN retransmissions.", func(c slowpath.Counters) uint64 { return c.FinRexmits }},
		{"tas_slowpath_aborts_total", "Flows aborted after retry-budget exhaustion.", func(c slowpath.Counters) uint64 { return c.Aborts }},
		{"tas_slowpath_apps_reaped_total", "Application contexts reaped after missed heartbeats.", func(c slowpath.Counters) uint64 { return c.AppsReaped }},
		{"tas_slowpath_flows_reaped_total", "Flows reclaimed by the reaper.", func(c slowpath.Counters) uint64 { return c.FlowsReaped }},
		{"tas_slowpath_syn_backlog_drops_total", "SYNs shed by listener backlog bounds.", func(c slowpath.Counters) uint64 { return c.SynBacklogDrops }},
		{"tas_slowpath_flows_reconstructed_total", "Flows whose control state was rebuilt by a warm restart.", func(c slowpath.Counters) uint64 { return c.FlowsReconstructed }},
		{"tas_slowpath_recovery_aborts_total", "Flows aborted during warm restart (state not provably consistent).", func(c slowpath.Counters) uint64 { return c.RecoveryAborts }},
		{"tas_slowpath_panics_total", "Slow-path event-loop panics caught (loop dead until restart).", func(c slowpath.Counters) uint64 { return c.Panics }},
		{"tas_syn_cookies_sent_total", "Stateless SYN-ACKs issued under SYN-cookie mode.", func(c slowpath.Counters) uint64 { return c.SynCookiesSent }},
		{"tas_syn_cookies_validated_total", "Connections reconstructed from a valid cookie ACK.", func(c slowpath.Counters) uint64 { return c.SynCookiesValidated }},
		{"tas_syn_cookies_rejected_total", "Cookie ACKs that failed MAC validation.", func(c slowpath.Counters) uint64 { return c.SynCookiesRejected }},
		{"tas_slowpath_blind_rst_drops_total", "RSTs rejected by RFC 5961 sequence validation.", func(c slowpath.Counters) uint64 { return c.BlindRstDrops }},
		{"tas_pressure_flow_denials_total", "Flow establishments denied by governor admission (pool or quota exhausted).", func(c slowpath.Counters) uint64 { return c.GovFlowDenied }},
		{"tas_pressure_idle_reclaimed_total", "Idle flows reclaimed LRU-first by the ladder's last rung.", func(c slowpath.Counters) uint64 { return c.GovIdleReclaimed }},
		{"tas_persist_probes_total", "Zero-window (persist-timer) probes transmitted.", func(c slowpath.Counters) uint64 { return c.PersistProbes }},
		{"tas_keepalive_probes_total", "TCP keepalive probes transmitted.", func(c slowpath.Counters) uint64 { return c.KeepaliveProbesSent }},
		{"tas_fin_wait2_timeouts_total", "Flows reclaimed after the peer never sent its FIN.", func(c slowpath.Counters) uint64 { return c.FinWait2Timeouts }},
		{"tas_time_wait_reused_total", "TIME_WAIT tuples reused early by a fresh SYN (RFC 6191).", func(c slowpath.Counters) uint64 { return c.TimeWaitReused }},
	} {
		read := m.read
		r.CounterFunc(m.name, m.help, func() float64 { return float64(read(slowCounters())) })
	}

	// Peer-liveness failure domain: dead peers by detection cause, plus
	// the close-lifecycle gauges.
	r.CounterFunc("tas_peer_dead_total", "Flows aborted because persist probes went unanswered.",
		func() float64 { return float64(slowCounters().PeerDeadZeroWindow) },
		telemetry.L("cause", "zero_window"))
	r.CounterFunc("tas_peer_dead_total", "Flows aborted because keepalive probes went unanswered.",
		func() float64 { return float64(slowCounters().PeerDeadKeepalive) },
		telemetry.L("cause", "keepalive"))
	r.GaugeFunc("tas_flows_time_wait", "TIME_WAIT quarantine entries currently held.",
		func() float64 { return float64(s.Slow().TimeWaitCount()) })
	r.GaugeFunc("tas_flows_fin_wait2", "Flows currently in FIN_WAIT_2 (our FIN acked, peer's FIN pending).",
		func() float64 { return float64(s.Slow().FinWait2Count()) })

	// Control-plane failure domain: degraded-mode gauge, outage counts,
	// and the outage-duration histogram (observed at recovery).
	r.GaugeFunc("tas_slowpath_degraded", "1 while the fast path considers the slow path down.",
		func() float64 {
			if eng.Degraded() {
				return 1
			}
			return 0
		})
	r.CounterFunc("tas_slowpath_outages_total", "Slow-path outages detected by the fast-path watchdog.",
		func() float64 { return float64(eng.Outages().Outages) })
	r.CounterFunc("tas_slowpath_restarts_total", "Slow-path warm restarts performed.",
		func() float64 { return float64(s.restarts.Load()) })
	if h := eng.OutageHistogram(); h != nil {
		r.RegisterHistogram("tas_slowpath_outage_seconds",
			"Duration of slow-path outages, observed when the heartbeat resumes.", h)
	}

	// Data-plane failure domain: per-core failed gauges plus the
	// watchdog's failure / migration / re-admission counters.
	for i := 0; i < eng.MaxCores(); i++ {
		i := i
		r.GaugeFunc("tas_core_failed", "1 while the core is excluded from RSS steering.",
			func() float64 {
				if eng.CoreFailed(i) {
					return 1
				}
				return 0
			}, telemetry.L("core", fmt.Sprintf("%d", i)))
	}
	r.CounterFunc("tas_core_failures_total", "Fast-path cores declared failed by the core watchdog.",
		func() float64 { return float64(slowCounters().CoreFailures) })
	r.CounterFunc("tas_flows_migrated_total", "Flows migrated off failed cores onto survivors.",
		func() float64 { return float64(slowCounters().FlowsMigrated) })
	r.CounterFunc("tas_core_readmits_total", "Failed cores folded back into RSS steering after clean heartbeats.",
		func() float64 { return float64(slowCounters().CoreReadmits) })
	r.CounterFunc("tas_core_drain_requeued_total", "Packets and kicks requeued from dead cores' rings onto survivors.",
		func() float64 { return float64(slowCounters().CoreDrainRequeued) })
	r.CounterFunc("tas_core_panics_total", "Fast-path run-loop panics contained by the per-core harness.",
		func() float64 { return float64(eng.CoreFaults().Panics) })

	// RFC 5961 challenge-ACK valve (global, shared fast/slow path).
	r.CounterFunc("tas_challenge_acks_total", "RFC 5961 challenge ACKs transmitted.",
		func() float64 { return float64(challengeSent(eng)) })
	r.CounterFunc("tas_challenge_acks_limited_total", "Challenge ACKs suppressed by the global rate limit.",
		func() float64 { return float64(challengeSuppressed(eng)) })

	// Resource governor: degradation-ladder level, per-pool occupancy
	// against capacity, and per-rung engagement/shed accounting. All
	// atomic loads at scrape time.
	gov := s.gov
	r.GaugeFunc("tas_pressure_level", "Current degradation-ladder rung (0 normal, 1 cookies, 2 shed-syn, 3 clamp-tx, 4 reclaim).",
		func() float64 { return float64(gov.Level()) })
	r.GaugeFunc("tas_pressure_peak_level", "Highest degradation-ladder rung reached since start.",
		func() float64 { return float64(gov.PeakLevel()) })
	r.GaugeFunc("tas_pressure_ratio", "Occupancy fraction of the hottest capped pool (0-1).",
		gov.Pressure)
	for p := resource.Pool(0); p < resource.NumPools; p++ {
		p := p
		lbl := telemetry.L("pool", p.String())
		r.GaugeFunc("tas_pool_used", "Governed pool occupancy (bytes for payload_bytes, slots otherwise).",
			func() float64 { return float64(gov.Used(p)) }, lbl)
		r.GaugeFunc("tas_pool_cap", "Governed pool capacity (0 = uncapped).",
			func() float64 { return float64(gov.Cap(p)) }, lbl)
		r.GaugeFunc("tas_pool_peak", "Governed pool high-water mark.",
			func() float64 { return float64(gov.Peak(p)) }, lbl)
		r.CounterFunc("tas_pool_rejects_total", "Admissions denied because the global pool was exhausted.",
			func() float64 { return float64(gov.Snapshot().Rejects[p]) }, lbl)
	}
	for k := 1; k < resource.NumLevels; k++ {
		k := k
		lbl := telemetry.L("rung", resource.LevelName(k))
		r.CounterFunc("tas_pressure_engaged_total", "Times the ladder engaged a rung.",
			func() float64 { return float64(gov.Snapshot().Engaged[k]) }, lbl)
		r.CounterFunc("tas_pressure_sheds_total", "Shed/degradation actions taken while a rung was engaged.",
			func() float64 { return float64(gov.Snapshot().Shed[k]) }, lbl)
	}
	r.CounterFunc("tas_pressure_quota_rejects_total", "Admissions denied by a per-app quota.",
		func() float64 { return float64(gov.Snapshot().QuotaRejects) })

	// Live gauges.
	r.GaugeFunc("tas_flows_live", "Flows currently installed in the flow table.",
		func() float64 { return float64(eng.Table.Len()) })
	r.GaugeFunc("tas_active_cores", "Fast-path cores currently receiving RSS traffic.",
		func() float64 { return float64(eng.ActiveCores()) })
	r.GaugeFunc("tas_live_payload_bytes", "Payload-buffer bytes allocated and not reclaimed.",
		func() float64 { return float64(shmring.LivePayloadBytes()) })

	// Latency observatory: sampled hot-path distributions exposed as
	// summary quantiles (µs).
	r.RegisterLogHist("tas_rtt_us",
		"Smoothed per-flow RTT sampled on ACK processing (microseconds).", s.telem.RTT)
	r.RegisterLogHist("tas_rttvar_us",
		"Smoothed per-flow RTT variance sampled on ACK processing (microseconds).", s.telem.RTTVar)
	r.RegisterLogHist("tas_handshake_us",
		"Handshake completion latency, SYN to established (microseconds).", s.telem.Handshake)
	r.RegisterLogHist("tas_wakeup_us",
		"App wakeup-to-ready latency: fast-path wake to data visible in libtas (microseconds).",
		s.telem.Wakeup)

	// Queue occupancy: every shmring plus accept/half-open backlogs,
	// read at scrape time from the rings' approximate Len (no hot-path
	// cost). One metric name, ring/core labels.
	depth := func(ring string, read func() float64, labels ...telemetry.Label) {
		lbls := append([]telemetry.Label{telemetry.L("ring", ring)}, labels...)
		r.GaugeFunc("tas_ring_depth", "Queue occupancy by ring and core.", read, lbls...)
	}
	for i := 0; i < eng.MaxCores(); i++ {
		i := i
		lbl := telemetry.L("core", fmt.Sprintf("%d", i))
		depth("rx", func() float64 { d, _ := eng.RxRingDepth(i); return float64(d) }, lbl)
		depth("kick", func() float64 { d, _ := eng.KickRingDepth(i); return float64(d) }, lbl)
		// Context queues are aggregated across live app contexts per
		// core: contexts come and go with applications, so per-context
		// series would churn the registry.
		depth("ctx_ev", func() float64 {
			var n int
			for _, ctx := range eng.Contexts() {
				if ctx != nil && i < ctx.Cores() {
					n += ctx.EventQueueLen(i)
				}
			}
			return float64(n)
		}, lbl)
		depth("ctx_tx", func() float64 {
			var n int
			for _, ctx := range eng.Contexts() {
				if ctx != nil && i < ctx.Cores() {
					n += ctx.TxQueueLen(i)
				}
			}
			return float64(n)
		}, lbl)
	}
	depth("excq", func() float64 { d, _ := eng.ExcqDepth(); return float64(d) })
	r.GaugeFunc("tas_ring_capacity", "Ring capacity by ring (per core).",
		func() float64 { _, c := eng.RxRingDepth(0); return float64(c) }, telemetry.L("ring", "rx"))
	r.GaugeFunc("tas_ring_capacity", "Ring capacity by ring (per core).",
		func() float64 { _, c := eng.ExcqDepth(); return float64(c) }, telemetry.L("ring", "excq"))
	r.GaugeFunc("tas_accept_backlog", "Established connections waiting in accept queues.",
		func() float64 { return float64(s.Slow().AcceptBacklog()) })
	r.GaugeFunc("tas_half_open", "Half-open handshakes held by the slow path.",
		func() float64 { return float64(s.Slow().HalfOpenCount()) })

	// Per-core per-module cycle accounts.
	s.telem.Cycles.Register(r)

	// Start the registry time-series recorder after every series above
	// is registered, so the column set is stable from the first point.
	if s.telem.Series != nil {
		s.telem.Series.Start()
	}
}

// unlimited is the "none" congestion controller: no rate enforcement.
type unlimited struct{}

func (unlimited) Name() string                       { return "none" }
func (unlimited) Update(congestion.Feedback) float64 { return 0 }
func (unlimited) Rate() float64                      { return 0 }

// Close stops the service and detaches it from the fabric.
func (s *Service) Close() {
	if s.telem != nil && s.telem.Series != nil {
		s.telem.Series.Stop()
	}
	s.fab.f.Detach(s.IP)
	s.slow.Load().Stop()
	s.eng.Stop()
}

// Engine exposes the fast-path engine (stats, core counts) for tools
// and benchmarks.
func (s *Service) Engine() *fastpath.Engine { return s.eng }

// Slow exposes the current slow-path instance (reaper and admission
// counters, fault harness) for tools and tests. Note that Restart swaps
// the instance; do not cache the pointer across restarts.
func (s *Service) Slow() *slowpath.Slowpath { return s.slow.Load() }

// ServiceStats is a consolidated robustness snapshot of one service:
// slow-path connection/reaper counters, fast-path drop counters, and
// live resource gauges.
type ServiceStats struct {
	// Slow-path lifecycle counters.
	Established, Accepted, Rejected uint64
	Aborts                          uint64

	// Reaper counters (application-failure handling).
	AppsReaped, FlowsReaped, ListenersReaped, HalfOpenReaped uint64

	// Overload / defensive-drop counters.
	SynBacklogDrops  uint64 // SYN shed: listener backlog full
	AcceptQueueDrops uint64 // accepted flow torn down: context queue full or dead
	SynShed          uint64 // SYN shed: slow-path event queue near saturation
	SynShedDown      uint64 // SYN shed: slow path down (degraded mode)
	ExcqDrops        uint64 // packet drops: slow-path event queue full
	BadDescDrops     uint64 // malformed app→TAS descriptors dropped
	RxRingDrops      uint64 // packet drops: fast-path RX ring full
	RxBufDrops       uint64 // payload drops: receive buffer full
	EventsLost       uint64 // app event-queue overflows
	OooDropped       uint64 // out-of-order segments dropped

	// Adversarial-traffic counters (SYN cookies, RFC 5961).
	SynCookiesSent       uint64 // stateless SYN-ACKs issued under cookies
	SynCookiesValidated  uint64 // connections reconstructed from a valid cookie ACK
	SynCookiesRejected   uint64 // cookie ACKs failing MAC validation
	BlindRstDrops        uint64 // RSTs rejected by RFC 5961 sequence validation
	BlindAckDrops        uint64 // blind-injection ACKs rejected on the fast path
	ChallengeAcksSent    uint64 // RFC 5961 challenge ACKs transmitted
	ChallengeAcksLimited uint64 // challenge ACKs suppressed by the global rate limit

	// Peer-liveness counters (persist timer, keepalives, close lifecycle).
	PersistProbes      uint64 // zero-window probes transmitted
	KeepaliveProbes    uint64 // keepalive probes transmitted
	PeerDeadZeroWindow uint64 // flows aborted: persist-probe budget exhausted
	PeerDeadKeepalive  uint64 // flows aborted: keepalive budget exhausted
	FinWait2Timeouts   uint64 // flows reclaimed: peer never sent its FIN
	TimeWaitReused     uint64 // quarantined tuples reused early by a fresh SYN (RFC 6191)
	FlowsTimeWait      int    // TIME_WAIT quarantine entries held (gauge)
	FlowsFinWait2      int    // flows currently in FIN_WAIT_2 (gauge)

	// Control-plane failure-domain counters.
	FlowsReconstructed uint64 // flows rebuilt by warm restarts
	RecoveryAborts     uint64 // flows aborted during warm restarts
	SlowPathOutages    uint64 // outages detected by the fast-path watchdog

	// Data-plane failure-domain counters.
	CoreFailures      uint64 // cores declared failed by the core watchdog
	FlowsMigrated     uint64 // flows re-adopted onto surviving cores
	CoreReadmits      uint64 // failed cores folded back into steering
	CoreDrainRequeued uint64 // packets/kicks requeued from dead cores' rings
	CorePanics        uint64 // fast-path run-loop panics contained
	CoreStranded      uint64 // packets stranded in stalled cores' queues
	CoresFailed       int    // cores currently excluded from steering (gauge)

	// Live resource gauges.
	FlowsLive        int   // flows currently installed in the flow table
	LivePayloadBytes int64 // payload-buffer bytes allocated and not reclaimed

	// Resource-governor state: the degradation ladder and unified pool
	// accounting. Maps are keyed by pool name (payload_bytes, flows,
	// half_open, contexts, timers, accept) and rung name (cookies,
	// shed_syn, clamp_tx, reclaim).
	PressureLevel     int               // current degradation-ladder rung (0 = normal)
	PeakPressureLevel int               // highest rung reached since start
	Pressure          float64           // hottest capped pool occupancy fraction (0-1)
	PoolUsed          map[string]int64  // current occupancy per pool
	PoolCap           map[string]int64  // configured capacity per pool (0 = uncapped)
	PoolRejects       map[string]uint64 // global-pool admission denials per pool
	PressureSheds     map[string]uint64 // shed actions per engaged rung
	QuotaRejects      uint64            // per-app quota denials
	GovFlowDenied     uint64            // flow establishments denied by the governor
	GovIdleReclaimed  uint64            // idle flows reclaimed by the last rung
	SynShedPressure   uint64            // SYNs shed by the ladder's rung 2
}

// Stats snapshots the service's robustness counters and gauges.
func (s *Service) Stats() ServiceStats {
	sc := s.slow.Load().Counters()
	d := s.eng.Drops()
	gs := s.gov.Snapshot()
	poolUsed := make(map[string]int64, resource.NumPools)
	poolCap := make(map[string]int64, resource.NumPools)
	poolRejects := make(map[string]uint64, resource.NumPools)
	for p := resource.Pool(0); p < resource.NumPools; p++ {
		poolUsed[p.String()] = gs.Used[p]
		poolCap[p.String()] = gs.Cap[p]
		poolRejects[p.String()] = gs.Rejects[p]
	}
	sheds := make(map[string]uint64, resource.NumLevels-1)
	for k := 1; k < resource.NumLevels; k++ {
		sheds[resource.LevelName(k)] = gs.Shed[k]
	}
	return ServiceStats{
		Established: sc.Established, Accepted: sc.Accepted, Rejected: sc.Rejected,
		Aborts:     sc.Aborts,
		AppsReaped: sc.AppsReaped, FlowsReaped: sc.FlowsReaped,
		ListenersReaped: sc.ListenersReaped, HalfOpenReaped: sc.HalfOpenReaped,
		SynBacklogDrops:  sc.SynBacklogDrops,
		AcceptQueueDrops: sc.AcceptQueueDrops,
		SynShed:          d.SynShed,
		SynShedDown:      d.SynShedDown,
		ExcqDrops:        d.ExcqFull,
		BadDescDrops:     d.BadDesc,
		RxRingDrops:      d.RxRingFull,
		RxBufDrops:       d.RxBufFull,
		EventsLost:       d.EventsLost,
		OooDropped:       d.OooDropped,

		SynCookiesSent:       sc.SynCookiesSent,
		SynCookiesValidated:  sc.SynCookiesValidated,
		SynCookiesRejected:   sc.SynCookiesRejected,
		BlindRstDrops:        sc.BlindRstDrops,
		BlindAckDrops:        d.BlindAck,
		ChallengeAcksSent:    challengeSent(s.eng),
		ChallengeAcksLimited: challengeSuppressed(s.eng),

		PersistProbes:      sc.PersistProbes,
		KeepaliveProbes:    sc.KeepaliveProbesSent,
		PeerDeadZeroWindow: sc.PeerDeadZeroWindow,
		PeerDeadKeepalive:  sc.PeerDeadKeepalive,
		FinWait2Timeouts:   sc.FinWait2Timeouts,
		TimeWaitReused:     sc.TimeWaitReused,
		FlowsTimeWait:      s.slow.Load().TimeWaitCount(),
		FlowsFinWait2:      int(s.slow.Load().FinWait2Count()),

		FlowsReconstructed: sc.FlowsReconstructed,
		RecoveryAborts:     sc.RecoveryAborts,
		SlowPathOutages:    s.eng.Outages().Outages,

		CoreFailures:      sc.CoreFailures,
		FlowsMigrated:     sc.FlowsMigrated,
		CoreReadmits:      sc.CoreReadmits,
		CoreDrainRequeued: sc.CoreDrainRequeued,
		CorePanics:        s.eng.CoreFaults().Panics,
		CoreStranded:      d.CoreStranded,
		CoresFailed:       s.eng.CoreFaults().Failed,

		FlowsLive:        s.eng.Table.Len(),
		LivePayloadBytes: shmring.LivePayloadBytes(),

		PressureLevel:     gs.Level,
		PeakPressureLevel: gs.PeakLevel,
		Pressure:          gs.Pressure,
		PoolUsed:          poolUsed,
		PoolCap:           poolCap,
		PoolRejects:       poolRejects,
		PressureSheds:     sheds,
		QuotaRejects:      gs.QuotaRejects,
		GovFlowDenied:     sc.GovFlowDenied,
		GovIdleReclaimed:  sc.GovIdleReclaimed,
		SynShedPressure:   d.SynShedPress,
	}
}

// Governor exposes the service's unified resource governor (pool
// accounting and the degradation ladder) for tools and tests.
func (s *Service) Governor() *resource.Governor { return s.gov }

// challengeSent / challengeSuppressed read the engine's global RFC 5961
// challenge-ACK limiter, which is nil when ChallengeAckPerSec < 0.
func challengeSent(e *fastpath.Engine) uint64 {
	if e.Challenge == nil {
		return 0
	}
	return e.Challenge.SentCount.Load()
}

func challengeSuppressed(e *fastpath.Engine) uint64 {
	if e.Challenge == nil {
		return 0
	}
	return e.Challenge.Suppressed.Load()
}

// ActiveCores returns the number of fast-path cores currently steered
// to by RSS.
func (s *Service) ActiveCores() int { return s.eng.ActiveCores() }

// Context is one application thread's attachment to a service.
type Context struct {
	svc *Service
	ctx *libtas.Context
}

// NewContext allocates an application context (one per app thread).
func (s *Service) NewContext() *Context {
	return &Context{svc: s, ctx: s.stack.NewContext()}
}

// LowLevel exposes the IX-like low-level API: the raw fast-path context
// with direct event-queue access.
func (c *Context) LowLevel() *fastpath.Context { return c.ctx.FP() }

// Dial connects to addr (dotted quad) : port. Blocks up to 5s.
func (c *Context) Dial(addr string, port uint16) (*Conn, error) {
	return c.DialTimeout(addr, port, 5*time.Second)
}

// DialTimeout connects with an explicit handshake deadline (0 = wait
// for the slow path's own retry budget to decide). Returns ErrTimeout
// (see the ErrTimeout helper) when the handshake retry budget or the
// deadline expires, and a connection-refused error on peer RST.
func (c *Context) DialTimeout(addr string, port uint16, timeout time.Duration) (*Conn, error) {
	ip, err := ParseIP(addr)
	if err != nil {
		return nil, err
	}
	lc, err := c.ctx.Dial(ip, port, timeout)
	if err != nil {
		return nil, err
	}
	return &Conn{c: lc}, nil
}

// Listen binds a listener on port for this context with the service's
// default backlog.
func (c *Context) Listen(port uint16) (*Listener, error) {
	ll, err := c.ctx.Listen(port)
	if err != nil {
		return nil, err
	}
	return &Listener{l: ll}, nil
}

// ListenBacklog binds a listener with an explicit admission bound:
// half-open handshakes plus not-yet-accepted connections may total at
// most backlog; SYNs beyond it are shed (0 = service default).
func (c *Context) ListenBacklog(port uint16, backlog int) (*Listener, error) {
	ll, err := c.ctx.ListenBacklog(port, backlog)
	if err != nil {
		return nil, err
	}
	return &Listener{l: ll}, nil
}

// Kill simulates an abrupt application crash: the context's heartbeat
// stops, so after the service's AppTimeout the slow path reaps every
// resource the context held (fault-injection harness).
func (c *Context) Kill() { c.ctx.KillApp() }

// Stall suppresses the context's heartbeat for d (a wedged — but not
// exited — application). If d exceeds AppTimeout the context is reaped;
// shorter stalls survive.
func (c *Context) Stall(d time.Duration) { c.ctx.StallApp(d) }

// CorruptQueue injects n malformed descriptors into the context's
// app→TAS command queue (seeded, deterministic) and returns how many
// were enqueued — a harness for the descriptor-validation path: the
// fast path must drop and count them without crashing.
func (c *Context) CorruptQueue(seed int64, n int) int { return c.ctx.CorruptQueue(seed, n) }

// Listener accepts inbound connections.
type Listener struct{ l *libtas.Listener }

// Accept waits up to timeout (0 = forever) for a connection.
func (l *Listener) Accept(timeout time.Duration) (*Conn, error) {
	lc, err := l.l.Accept(timeout)
	if err != nil {
		return nil, err
	}
	return &Conn{c: lc}, nil
}

// Close stops the listener.
func (l *Listener) Close() { l.l.Close() }

// Conn is a TAS TCP connection; it implements io.ReadWriteCloser.
type Conn struct{ c *libtas.Conn }

// Read reads at least one byte (blocking) into p; returns io.EOF after
// the peer closes and the buffer drains.
func (c *Conn) Read(p []byte) (int, error) { return c.c.Recv(p, 0) }

// Write writes all of p, blocking on flow control as needed.
func (c *Conn) Write(p []byte) (int, error) { return c.c.Send(p, 0) }

// Close tears the connection down gracefully.
func (c *Conn) Close() error { return c.c.Close() }

// ReadZeroCopy exposes readable bytes of the receive buffer in place
// (up to max); consume returns how many bytes it finished with. Returns
// the consumed count.
func (c *Conn) ReadZeroCopy(max int, consume func(first, second []byte) int) int {
	return c.c.RecvZeroCopy(max, consume)
}

// WriteZeroCopy assembles up to max bytes directly in the transmit
// buffer via fill (which returns the bytes produced) and notifies the
// fast path. Returns the committed count.
func (c *Conn) WriteZeroCopy(max int, fill func(first, second []byte) int) (int, error) {
	return c.c.SendZeroCopy(max, fill)
}

// Rebind moves the connection to another context of the same service —
// the accept-loop handoff pattern: one context accepts, then each
// connection is rebound to its own per-goroutine context before use.
func (c *Conn) Rebind(ctx *Context) { c.c.Rebind(ctx.ctx) }

// Stats snapshots the connection's fast-path counters.
func (c *Conn) Stats() libtas.ConnStats { return c.c.Stats() }

// ResizeBuffers grows the connection's payload buffers at runtime.
func (c *Conn) ResizeBuffers(rx, tx int) { c.c.ResizeBuffers(rx, tx) }

// MsgConn layers length-prefixed datagram framing over a connection
// (§6, Beyond TCP).
type MsgConn = libtas.MsgConn

// NewMsgConn wraps a connection with datagram framing (maxMsg 0 =
// 16 MiB limit).
func NewMsgConn(c *Conn, maxMsg int) *MsgConn { return libtas.NewMsgConn(c.c, maxMsg) }

// Buffered returns bytes available to Read without blocking.
func (c *Conn) Buffered() int { return c.c.Buffered() }

// ReadTimeout is Read with a deadline (0 = forever).
func (c *Conn) ReadTimeout(p []byte, d time.Duration) (int, error) { return c.c.Recv(p, d) }

// WriteTimeout is Write with a deadline (0 = forever).
func (c *Conn) WriteTimeout(p []byte, d time.Duration) (int, error) { return c.c.Send(p, d) }

// ErrTimeout reports whether err is a TAS timeout.
func ErrTimeout(err error) bool { return errors.Is(err, libtas.ErrTimeout) }

// ErrReset reports whether err is a connection abort: the peer reset
// the connection, or the retransmission budget was exhausted against a
// dead or unreachable peer.
func ErrReset(err error) bool { return errors.Is(err, libtas.ErrReset) }

// ErrPeerDead reports whether err is specifically a liveness-probe
// verdict: the peer stopped responding to zero-window persist probes or
// TCP keepalives and the flow was aborted. ErrPeerDead errors also
// satisfy ErrReset, so existing reset handling keeps working; this
// helper distinguishes "peer silently died" from "peer sent RST".
func ErrPeerDead(err error) bool { return errors.Is(err, libtas.ErrPeerDead) }

// ErrAppDead reports whether err means the application context was
// reaped (crash detected via missed heartbeats); all further operations
// on the context fail fast with this error.
func ErrAppDead(err error) bool { return errors.Is(err, libtas.ErrAppDead) }

// ErrBackpressure reports whether err is a resource-governor denial:
// a global pool capacity or the application's quota was exhausted
// (Dial refused, TX grant clamped past the deadline, or a non-blocking
// send bound by the clamp). Unlike faults, backpressure is retryable —
// pressure falls as flows close, acks drain, or the ladder reclaims.
func ErrBackpressure(err error) bool { return errors.Is(err, libtas.ErrBackpressure) }

// ErrSlowPathDown reports whether err means the control plane is down:
// Dial and Listen fail fast with it while the fast path is degraded,
// rather than queueing work no slow path will serve. Established
// connections are unaffected; recover with Service.Restart.
func ErrSlowPathDown(err error) bool { return errors.Is(err, libtas.ErrSlowPathDown) }

// Aborted reports whether the connection failed (RST or retransmission
// budget exhausted). Subsequent Reads and Writes return a reset error.
func (c *Conn) Aborted() bool { return c.c.Aborted() }
