package tas

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestGovernorLeakAuditSoak is the resource-accounting soak: churn
// connections through every lifecycle the stack has — graceful
// connect/transfer/close, app-crash reaping with RST teardown, and a
// warm slow-path restart mid-traffic — then audit that every governed
// pool gauge returns exactly to its pre-soak baseline on both sides.
// Any residue is a charge/release imbalance somewhere in the
// admission, teardown, reap, or recovery paths. The test is written to
// run race-enabled in CI.
func TestGovernorLeakAuditSoak(t *testing.T) {
	const payloadLen = 4 << 10
	fab := NewFabric()
	cfg := Config{
		RxBufSize: 16 << 10, TxBufSize: 16 << 10,
		ControlInterval: 2 * time.Millisecond,
		AppTimeout:      250 * time.Millisecond,
		// Peer-liveness knobs for the wedge and blackhole phases. Short
		// enough to converge in test time, long enough that the healthy
		// phases (where every probe is answered) never abort anything.
		PersistRTO: 25 * time.Millisecond, MaxPersistProbes: 4,
		KeepaliveTime:     500 * time.Millisecond,
		KeepaliveInterval: 100 * time.Millisecond,
		KeepaliveProbes:   3,
	}
	srv, err := fab.NewService("10.0.0.1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := fab.NewService("10.0.0.2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); cli.Close() })

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		t.Fatal(err)
	}
	// Port 8081 backs the zero-window phase: its connections are
	// accepted but never read. Created before the baseline snapshot so
	// the listener's own footprint is part of the baseline.
	wedgeLn, err := sctx.Listen(8081)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var srvWG sync.WaitGroup
	srvWG.Add(1)
	go func() {
		defer srvWG.Done()
		for {
			c, err := ln.Accept(100 * time.Millisecond)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			srvWG.Add(1)
			go func() {
				defer srvWG.Done()
				defer c.Close()
				buf := make([]byte, payloadLen)
				for {
					for off := 0; off < len(buf); {
						n, err := c.ReadTimeout(buf[off:], 2*time.Second)
						if err != nil {
							return
						}
						off += n
					}
					sum := sha256.Sum256(buf)
					if _, err := c.WriteTimeout(sum[:], 2*time.Second); err != nil {
						return
					}
				}
			}()
		}
	}()

	// Reusable worker contexts exist before the baseline snapshot so the
	// contexts pool can be audited for exact return too: only the
	// deliberately-killed contexts from the abort phase may come and go.
	const workers = 4
	wctx := make([]*Context, workers)
	for i := range wctx {
		wctx[i] = cli.NewContext()
	}
	baseline := func(s *Service) map[string]int64 { return s.Stats().PoolUsed }
	srvBase, cliBase := baseline(srv), baseline(cli)
	for _, base := range []map[string]int64{srvBase, cliBase} {
		for pool, used := range base {
			if pool != "contexts" && used != 0 {
				t.Fatalf("pool %q dirty before soak: %d in use", pool, used)
			}
		}
	}

	transfer := func(c *Conn, payload []byte, want [32]byte) error {
		for off := 0; off < len(payload); {
			n, err := c.WriteTimeout(payload[off:], 2*time.Second)
			if err != nil {
				return fmt.Errorf("write at %d: %w", off, err)
			}
			off += n
		}
		var got [32]byte
		for off := 0; off < len(got); {
			n, err := c.ReadTimeout(got[off:], 2*time.Second)
			if err != nil {
				return fmt.Errorf("digest read at %d: %w", off, err)
			}
			off += n
		}
		if got != want {
			return fmt.Errorf("digest mismatch")
		}
		return nil
	}

	// Phase 1: graceful churn — connect, transfer, verify, close.
	cycles := 12
	if testing.Short() {
		cycles = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(211 + w)))
			payload := make([]byte, payloadLen)
			rng.Read(payload)
			want := sha256.Sum256(payload)
			for i := 0; i < cycles; i++ {
				c, err := wctx[w].DialTimeout("10.0.0.1", 8080, 2*time.Second)
				if err != nil {
					errs <- fmt.Errorf("worker %d cycle %d dial: %w", w, i, err)
					return
				}
				err = transfer(c, payload, want)
				c.Close()
				if err != nil {
					errs <- fmt.Errorf("worker %d cycle %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Phase 2: abort paths — two throwaway contexts dial in, push a
	// partial payload (so the server handler is parked in a read), then
	// die. The reaper must reclaim the contexts and their flows, RST the
	// peers, and return every charge.
	reapedBefore := cli.Stats().AppsReaped
	for k := 0; k < 2; k++ {
		doomed := cli.NewContext()
		for j := 0; j < 2; j++ {
			c, err := doomed.DialTimeout("10.0.0.1", 8080, 2*time.Second)
			if err != nil {
				t.Fatalf("abort-phase dial: %v", err)
			}
			if _, err := c.WriteTimeout(bytes.Repeat([]byte{0xAB}, 1024), 2*time.Second); err != nil {
				t.Fatalf("abort-phase write: %v", err)
			}
		}
		doomed.Kill()
	}
	deadline := time.Now().Add(5 * time.Second)
	for cli.Stats().AppsReaped < reapedBefore+2 {
		if time.Now().After(deadline) {
			t.Fatalf("reaper never collected the killed contexts (reaped %d, want %d)",
				cli.Stats().AppsReaped, reapedBefore+2)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 3: warm restart mid-traffic — live flows must survive the
	// slow-path restart with their charges intact (recovery rebuilds the
	// governor's view from the flow table, not from scratch), and closing
	// them afterwards must release everything.
	rng := rand.New(rand.NewSource(997))
	payload := make([]byte, payloadLen)
	rng.Read(payload)
	want := sha256.Sum256(payload)
	var held []*Conn
	for j := 0; j < 2; j++ {
		c, err := wctx[0].DialTimeout("10.0.0.1", 8080, 2*time.Second)
		if err != nil {
			t.Fatalf("restart-phase dial: %v", err)
		}
		held = append(held, c)
		if err := transfer(c, payload, want); err != nil {
			t.Fatalf("restart-phase pre-transfer: %v", err)
		}
	}
	srv.Restart()
	for _, c := range held {
		if err := transfer(c, payload, want); err != nil {
			t.Fatalf("transfer across warm restart: %v", err)
		}
		c.Close()
	}

	// Phase 4: zero-window wedge — the server accepts on the wedge port
	// but never reads, so the sender's window closes for good. The
	// persist budget (4 probes at 25ms base) must run dry into a
	// peer-dead verdict, and both sides must return every charge.
	zwBefore := cli.Stats().PeerDeadZeroWindow
	wc, err := wctx[1].DialTimeout("10.0.0.1", 8081, 2*time.Second)
	if err != nil {
		t.Fatalf("wedge-phase dial: %v", err)
	}
	sc, err := wedgeLn.Accept(2 * time.Second)
	if err != nil {
		t.Fatalf("wedge-phase accept: %v", err)
	}
	junk := bytes.Repeat([]byte{0x5A}, 4<<10)
	wedgeDeadline := time.Now().Add(10 * time.Second)
	for {
		_, werr := wc.WriteTimeout(junk, 100*time.Millisecond)
		if werr == nil || ErrTimeout(werr) {
			if time.Now().After(wedgeDeadline) {
				t.Fatal("wedge-phase: persist budget never exhausted")
			}
			continue
		}
		if !ErrPeerDead(werr) {
			t.Fatalf("wedged write failed with %v, want peer-dead", werr)
		}
		break
	}
	st := cli.Stats()
	if st.PeerDeadZeroWindow != zwBefore+1 {
		t.Fatalf("PeerDeadZeroWindow = %d, want %d", st.PeerDeadZeroWindow, zwBefore+1)
	}
	if st.PersistProbes == 0 {
		t.Fatal("wedge-phase: no persist probes were sent before the verdict")
	}
	sc.Close()
	wc.Close()

	// Phase 5: silent peer — partition the hosts mid-conversation with
	// an idle established flow on each side. No FIN, no RST, no
	// heartbeat loss (app liveness is host-local): only keepalives can
	// notice, and the reaper and the governor's idle-reclaim rung must
	// stay silent while they do.
	kaBefore := srv.Stats().PeerDeadKeepalive + cli.Stats().PeerDeadKeepalive
	reapedBase := srv.Stats().AppsReaped + cli.Stats().AppsReaped
	idleBase := srv.Stats().GovIdleReclaimed + cli.Stats().GovIdleReclaimed
	qc, err := wctx[2].DialTimeout("10.0.0.1", 8080, 2*time.Second)
	if err != nil {
		t.Fatalf("blackhole-phase dial: %v", err)
	}
	if err := transfer(qc, payload, want); err != nil {
		t.Fatalf("blackhole-phase pre-transfer: %v", err)
	}
	if err := fab.Partition("10.0.0.1", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	kaDeadline := time.Now().Add(10 * time.Second)
	for srv.Stats().PeerDeadKeepalive+cli.Stats().PeerDeadKeepalive < kaBefore+2 {
		if time.Now().After(kaDeadline) {
			t.Fatalf("keepalives never declared the partitioned peers dead (verdicts %d, want %d)",
				srv.Stats().PeerDeadKeepalive+cli.Stats().PeerDeadKeepalive, kaBefore+2)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fab.HealAll()
	if got := srv.Stats().AppsReaped + cli.Stats().AppsReaped; got != reapedBase {
		t.Fatalf("app reaper fired during the blackhole: reaped %d, want %d", got, reapedBase)
	}
	if got := srv.Stats().GovIdleReclaimed + cli.Stats().GovIdleReclaimed; got != idleBase {
		t.Fatalf("idle-reclaim fired during the blackhole: %d, want %d", got, idleBase)
	}
	qc.Close()

	// The audit: poll until both services' pools read exactly their
	// baseline again. Timers and closing-state flow entries drain on
	// control ticks, so this settles asynchronously.
	audit := func(name string, s *Service, base map[string]int64) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			used := s.Stats().PoolUsed
			clean := true
			for pool, want := range base {
				if used[pool] != want {
					clean = false
				}
			}
			if clean {
				return
			}
			if time.Now().After(deadline) {
				for pool, want := range base {
					if got := used[pool]; got != want {
						t.Errorf("%s: pool %q leaked: %d in use, baseline %d", name, pool, got, want)
					}
				}
				t.FailNow()
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	audit("server", srv, srvBase)
	audit("client", cli, cliBase)
}
