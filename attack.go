package tas

import (
	"math/rand"

	"repro/internal/fabric"
	"repro/internal/protocol"
)

// Attacker is a raw segment source on the fabric for adversarial-traffic
// testing: it owns no service and no stack, and forges TCP segments with
// arbitrary (spoofed) source addresses. Replies the victim sends to a
// spoofed address route nowhere — exactly the view a real blind attacker
// has — so floods from an Attacker never complete handshakes and never
// consume attacker-side state.
type Attacker struct {
	f   *fabric.Fabric
	nic *fabric.NIC
	ip  protocol.IPv4
}

// NewAttacker attaches a raw packet source at addr. The address only
// anchors the NIC; every forged segment carries its own spoofed source.
func (f *Fabric) NewAttacker(addr string) (*Attacker, error) {
	ip, err := ParseIP(addr)
	if err != nil {
		return nil, err
	}
	nic := f.f.Attach(ip, func(*protocol.Packet) {})
	return &Attacker{f: f.f, nic: nic, ip: ip}, nil
}

// Close detaches the attacker from the fabric.
func (a *Attacker) Close() { a.f.Detach(a.ip) }

// SendSYN forges one SYN from src:srcPort to dst:dstPort with the given
// initial sequence number. src need not name an attached host.
func (a *Attacker) SendSYN(src string, srcPort uint16, dst string, dstPort uint16, seq uint32) error {
	sip, err := ParseIP(src)
	if err != nil {
		return err
	}
	dip, err := ParseIP(dst)
	if err != nil {
		return err
	}
	a.nic.Output(&protocol.Packet{
		SrcIP: sip, DstIP: dip,
		SrcPort: srcPort, DstPort: dstPort,
		Flags: protocol.FlagSYN, Seq: seq,
		Window: 65535,
	})
	return nil
}

// SynBurst forges n spoofed SYNs at dst:port in one call, drawing source
// addresses in 10.9.0.0/16, source ports, and sequence numbers from rng
// so a seeded flood is reproducible. Returns n for convenience.
func (a *Attacker) SynBurst(dst string, port uint16, n int, rng *rand.Rand) (int, error) {
	dip, err := ParseIP(dst)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		r := rng.Uint64()
		a.nic.Output(&protocol.Packet{
			SrcIP:   protocol.MakeIPv4(10, 9, byte(r>>8), 1+byte(r%250)),
			DstIP:   dip,
			SrcPort: 1024 + uint16(r>>16)%60000,
			DstPort: port,
			Flags:   protocol.FlagSYN,
			Seq:     uint32(r >> 32),
			Window:  65535,
		})
	}
	return n, nil
}
