package tas

import (
	"bytes"
	"testing"
	"time"
)

func TestCongestionControlVariants(t *testing.T) {
	for _, cc := range []string{"dctcp", "timely", "dctcp-window", "none"} {
		cc := cc
		t.Run(cc, func(t *testing.T) {
			_, srv, cli := newPair(t, Config{CongestionControl: cc})
			sctx := srv.NewContext()
			ln, err := sctx.Listen(8080)
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				c, err := ln.Accept(5 * time.Second)
				if err != nil {
					done <- err
					return
				}
				buf := make([]byte, 256<<10)
				got := 0
				for got < 256<<10 {
					n, err := c.Read(buf)
					if err != nil {
						done <- err
						return
					}
					got += n
				}
				done <- nil
			}()
			cctx := cli.NewContext()
			c, err := cctx.Dial("10.0.0.1", 8080)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Write(make([]byte, 256<<10)); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(20 * time.Second):
				t.Fatal("transfer did not complete")
			}
		})
	}
	// Unknown policy is rejected.
	fab := NewFabric()
	if _, err := fab.NewService("10.0.9.9", Config{CongestionControl: "bogus"}); err == nil {
		t.Fatal("unknown congestion control should fail")
	}
}

func TestDisableOooStillRecovers(t *testing.T) {
	fab, srv, cli := newPair(t, Config{DisableOoo: true})
	sctx := srv.NewContext()
	ln, _ := sctx.Listen(8081)
	const total = 256 << 10
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 32<<10)
		got := 0
		for got < total {
			n, err := c.Read(buf)
			if err != nil {
				done <- err
				return
			}
			got += n
		}
		done <- nil
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8081)
	if err != nil {
		t.Fatal(err)
	}
	fab.SetLoss(0.01)
	defer fab.SetLoss(0)
	if _, err := c.Write(make([]byte, total)); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("go-back-N-only transfer with loss did not complete")
	}
}

func TestMsgConnFacade(t *testing.T) {
	_, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, _ := sctx.Listen(8082)
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		mc := NewMsgConn(c, 0)
		m, err := mc.RecvMsg(5 * time.Second)
		if err != nil {
			done <- err
			return
		}
		done <- mc.SendMsg(m, 5*time.Second)
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8082)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMsgConn(c, 0)
	want := bytes.Repeat([]byte("msg"), 1000)
	if err := mc.SendMsg(want, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	got, err := mc.RecvMsg(5 * time.Second)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("framed echo: %d bytes, err %v", len(got), err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnStatsFacade(t *testing.T) {
	_, srv, cli := newPair(t, Config{})
	sctx := srv.NewContext()
	ln, _ := sctx.Listen(8083)
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err == nil {
			buf := make([]byte, 1024)
			c.Read(buf)
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8083)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.RxBufSize == 0 || st.TxBufSize == 0 {
		t.Fatalf("stats missing buffer sizes: %+v", st)
	}
	c.ResizeBuffers(st.RxBufSize*2, st.TxBufSize*2)
	if got := c.Stats(); got.RxBufSize != st.RxBufSize*2 {
		t.Fatalf("resize via facade failed: %+v", got)
	}
}
