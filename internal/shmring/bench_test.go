package shmring

import "testing"

func BenchmarkSPSCEnqueueDequeue(b *testing.B) {
	q := NewSPSC[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(uint64(i))
		q.Dequeue()
	}
}

func BenchmarkSPSCBatch(b *testing.B) {
	q := NewSPSC[uint64](1024)
	out := make([]uint64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			q.Enqueue(uint64(j))
		}
		q.DequeueBatch(out)
	}
	b.SetBytes(64 * 8)
}

func BenchmarkPayloadBufferWriteRead(b *testing.B) {
	buf := NewPayloadBuffer(1 << 20)
	data := make([]byte, 1448)
	out := make([]byte, 1448)
	b.SetBytes(1448)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Write(data)
		buf.Read(out)
	}
}

func BenchmarkPayloadBufferOOODeposit(b *testing.B) {
	buf := NewPayloadBuffer(1 << 20)
	data := make([]byte, 1448)
	out := make([]byte, 2*1448)
	b.SetBytes(2 * 1448)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := buf.Head()
		buf.WriteAt(h+1448, data) // out-of-order segment first
		buf.WriteAt(h, data)      // gap fill
		buf.AdvanceHead(2 * 1448)
		buf.Read(out)
	}
}
