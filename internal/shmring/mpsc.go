package shmring

import "sync"

// MPSC is an SPSC ring whose producer side is serialized by a mutex,
// for queues that have more than one enqueuing goroutine. In the paper
// the per-core packet queues have exactly one producer — the NIC's DMA
// engine — but in this in-process reproduction the "NIC" is whichever
// peer goroutine the fabric happens to deliver on, and the slow path,
// application threads, and the core-failure drain all push kicks and TX
// commands concurrently. The consumer side is untouched: the fast-path
// core still dequeues lock-free, and producers never contend with it,
// only with each other.
type MPSC[T any] struct {
	SPSC[T]
	_  pad
	mu sync.Mutex
}

// NewMPSC returns a multi-producer queue with capacity rounded up to a
// power of two (minimum 2).
func NewMPSC[T any](capacity int) *MPSC[T] {
	c := 2
	for c < capacity {
		c <<= 1
	}
	q := &MPSC[T]{}
	q.buf = make([]T, c)
	q.mask = uint64(c - 1)
	return q
}

// Enqueue appends v, serializing against other producers. It reports
// false when the queue is full.
func (q *MPSC[T]) Enqueue(v T) bool {
	q.mu.Lock()
	ok := q.SPSC.Enqueue(v)
	q.mu.Unlock()
	return ok
}
