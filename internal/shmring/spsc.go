// Package shmring implements the shared-memory communication primitives
// TAS uses between its components: cache-padded single-producer/
// single-consumer descriptor rings (the context queues and packet queues)
// and circular payload buffers (the per-flow rx/tx buffers identified by
// the rx|tx_start, size, head and tail fields of the per-flow state).
//
// In the paper these live in memory shared between the TAS process and
// application processes; here both sides are goroutines in one address
// space, and the rings provide the same lock-free, allocation-free
// message passing.
package shmring

import (
	"sync/atomic"
)

// pad is a cache-line pad to keep producer and consumer indices on
// separate lines, avoiding false sharing — the paper's point (2) about
// per-connection state spread and false sharing applies to queue indices
// just as much.
type pad [64]byte

// SPSC is a bounded lock-free single-producer single-consumer queue with
// a power-of-two capacity. Exactly one goroutine may call Enqueue and
// exactly one may call Dequeue.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    pad
	head atomic.Uint64 // next slot to dequeue (consumer-owned)
	_    pad
	tail atomic.Uint64 // next slot to enqueue (producer-owned)
	_    pad
}

// NewSPSC returns a queue with capacity rounded up to a power of two
// (minimum 2).
func NewSPSC[T any](capacity int) *SPSC[T] {
	c := 2
	for c < capacity {
		c <<= 1
	}
	return &SPSC[T]{buf: make([]T, c), mask: uint64(c - 1)}
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued items (approximate under concurrency).
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Enqueue appends v. It reports false when the queue is full.
func (q *SPSC[T]) Enqueue(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() >= uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Dequeue removes and returns the oldest item. ok is false when empty.
func (q *SPSC[T]) Dequeue() (v T, ok bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return v, false
	}
	v = q.buf[head&q.mask]
	var zero T
	q.buf[head&q.mask] = zero
	q.head.Store(head + 1)
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *SPSC[T]) Peek() (v T, ok bool) {
	head := q.head.Load()
	if head == q.tail.Load() {
		return v, false
	}
	return q.buf[head&q.mask], true
}

// DequeueBatch removes up to len(out) items into out and returns the
// count, amortizing index updates — the batching opportunity dedicated-CPU
// stacks exploit (§2.1).
func (q *SPSC[T]) DequeueBatch(out []T) int {
	head := q.head.Load()
	avail := q.tail.Load() - head
	n := uint64(len(out))
	if avail < n {
		n = avail
	}
	if n == 0 {
		return 0
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		out[i] = q.buf[(head+i)&q.mask]
		q.buf[(head+i)&q.mask] = zero
	}
	q.head.Store(head + n)
	return int(n)
}
