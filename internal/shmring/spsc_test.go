package shmring

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](4)
	if q.Cap() != 4 {
		t.Fatalf("cap = %d", q.Cap())
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty should fail")
	}
	for i := 0; i < 4; i++ {
		if !q.Enqueue(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.Enqueue(99) {
		t.Fatal("enqueue into full should fail")
	}
	if q.Len() != 4 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 0; i < 4; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue %d: got %d, %v", i, v, ok)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("len after drain = %d", q.Len())
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, c := range []struct{ in, want int }{{0, 2}, {1, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}} {
		if got := NewSPSC[byte](c.in).Cap(); got != c.want {
			t.Errorf("cap(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestSPSCPeek(t *testing.T) {
	q := NewSPSC[string](4)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek at empty")
	}
	q.Enqueue("a")
	q.Enqueue("b")
	if v, ok := q.Peek(); !ok || v != "a" {
		t.Fatalf("peek = %q, %v", v, ok)
	}
	if q.Len() != 2 {
		t.Fatal("peek must not consume")
	}
}

func TestSPSCWraparound(t *testing.T) {
	q := NewSPSC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !q.Enqueue(round*10 + i) {
				t.Fatal("enqueue failed")
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := q.Dequeue()
			if !ok || v != round*10+i {
				t.Fatalf("round %d item %d: got %d", round, i, v)
			}
		}
	}
}

func TestSPSCDequeueBatch(t *testing.T) {
	q := NewSPSC[int](16)
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	out := make([]int, 4)
	if n := q.DequeueBatch(out); n != 4 {
		t.Fatalf("batch = %d", n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	out2 := make([]int, 100)
	if n := q.DequeueBatch(out2); n != 6 {
		t.Fatalf("second batch = %d, want 6", n)
	}
	if n := q.DequeueBatch(out2); n != 0 {
		t.Fatalf("empty batch = %d", n)
	}
}

func TestSPSCConcurrent(t *testing.T) {
	q := NewSPSC[uint64](128)
	const n = 200_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if q.Enqueue(i) {
				i++
			} else {
				runtime.Gosched() // single-CPU machines need the yield
			}
		}
	}()
	var sum, count uint64
	go func() {
		defer wg.Done()
		for count < n {
			if v, ok := q.Dequeue(); ok {
				if v != count {
					t.Errorf("out of order: got %d want %d", v, count)
					return
				}
				sum += v
				count++
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if want := uint64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestSPSCConcurrentBatch(t *testing.T) {
	q := NewSPSC[uint64](64)
	const n = 100_000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if q.Enqueue(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	buf := make([]uint64, 17)
	var count uint64
	for count < n {
		k := q.DequeueBatch(buf)
		if k == 0 {
			runtime.Gosched()
		}
		for i := 0; i < k; i++ {
			if buf[i] != count {
				t.Fatalf("out of order at %d: %d", count, buf[i])
			}
			count++
		}
	}
	wg.Wait()
}

func TestSPSCFIFOProperty(t *testing.T) {
	f := func(ops []bool, vals []int16) bool {
		q := NewSPSC[int16](8)
		var model []int16
		vi := 0
		for _, enq := range ops {
			if enq && vi < len(vals) {
				if q.Enqueue(vals[vi]) {
					model = append(model, vals[vi])
				} else if len(model) != q.Cap() {
					return false // full mismatch
				}
				vi++
			} else {
				v, ok := q.Dequeue()
				if ok {
					if len(model) == 0 || v != model[0] {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false
				}
			}
		}
		return q.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
