package shmring

import (
	"bytes"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestPayloadBufferBasic(t *testing.T) {
	b := NewPayloadBuffer(16)
	if b.Size() != 16 || b.Free() != 16 || b.Used() != 0 {
		t.Fatal("fresh buffer geometry wrong")
	}
	if !b.Write([]byte("hello")) {
		t.Fatal("write failed")
	}
	if b.Used() != 5 || b.Free() != 11 {
		t.Fatalf("used=%d free=%d", b.Used(), b.Free())
	}
	out := make([]byte, 5)
	if n := b.Read(out); n != 5 || string(out) != "hello" {
		t.Fatalf("read %d %q", n, out)
	}
	if b.Used() != 0 {
		t.Fatal("not drained")
	}
}

func TestPayloadBufferRejectsOverfill(t *testing.T) {
	b := NewPayloadBuffer(8)
	if !b.Write(make([]byte, 8)) {
		t.Fatal("exact fill should succeed")
	}
	if b.Write([]byte{1}) {
		t.Fatal("write to full buffer should fail")
	}
	b.Release(3)
	if !b.Write(make([]byte, 3)) {
		t.Fatal("write after release should succeed")
	}
}

func TestPayloadBufferWraparound(t *testing.T) {
	b := NewPayloadBuffer(8)
	for round := 0; round < 1000; round++ {
		data := []byte{byte(round), byte(round + 1), byte(round + 2), byte(round + 3), byte(round + 4)}
		if !b.Write(data) {
			t.Fatal("write failed")
		}
		out := make([]byte, 5)
		if n := b.Read(out); n != 5 || !bytes.Equal(out, data) {
			t.Fatalf("round %d: got %v want %v", round, out, data)
		}
	}
}

func TestPayloadBufferPositionWraparound32(t *testing.T) {
	// Force the absolute counters near the 2^32 wrap and verify indexing
	// stays consistent.
	b := NewPayloadBuffer(16)
	start := uint32(0xfffffff0)
	b.head.Store(start)
	b.tail.Store(start)
	data := []byte("abcdefghijklmnop") // 16 bytes spanning the wrap
	if !b.Write(data) {
		t.Fatal("write failed")
	}
	out := make([]byte, 16)
	if n := b.Read(out); n != 16 || !bytes.Equal(out, data) {
		t.Fatalf("wrap read: %q", out)
	}
	if b.Head() != start+16 || b.Tail() != start+16 {
		t.Fatalf("positions: head=%d tail=%d", b.Head(), b.Tail())
	}
}

func TestPayloadBufferWriteAtOutOfOrder(t *testing.T) {
	// Simulate OOO deposit: segment B (bytes 4..8) arrives before A (0..4).
	b := NewPayloadBuffer(16)
	h := b.Head()
	b.WriteAt(h+4, []byte("BBBB"))
	if b.Used() != 0 {
		t.Fatal("WriteAt must not advance head")
	}
	b.WriteAt(h, []byte("AAAA"))
	b.AdvanceHead(8)
	out := make([]byte, 8)
	if n := b.Read(out); n != 8 || string(out) != "AAAABBBB" {
		t.Fatalf("read %q", out)
	}
}

func TestPayloadBufferReadAt(t *testing.T) {
	b := NewPayloadBuffer(16)
	b.Write([]byte("0123456789"))
	out := make([]byte, 4)
	b.ReadAt(b.Tail()+3, out)
	if string(out) != "3456" {
		t.Fatalf("ReadAt = %q", out)
	}
	if b.Used() != 10 {
		t.Fatal("ReadAt must not consume")
	}
	// Release reclaims without copying (acked tx data).
	b.Release(10)
	if b.Used() != 0 {
		t.Fatal("Release failed")
	}
}

func TestPayloadBufferInvalidSizePanics(t *testing.T) {
	for _, s := range []int{0, -4, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d should panic", s)
				}
			}()
			NewPayloadBuffer(s)
		}()
	}
}

func TestPayloadBufferStreamProperty(t *testing.T) {
	// Random interleaving of writes and reads must reproduce the byte
	// stream exactly — the core lossless in-order invariant the fast
	// path relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewPayloadBuffer(64)
		var produced, consumed []byte
		next := byte(0)
		for op := 0; op < 500; op++ {
			if rng.Intn(2) == 0 {
				n := rng.Intn(40) + 1
				data := make([]byte, n)
				for i := range data {
					data[i] = next
					next++
				}
				if b.Write(data) {
					produced = append(produced, data...)
				} else {
					next -= byte(n) // undo
				}
			} else {
				out := make([]byte, rng.Intn(40)+1)
				n := b.Read(out)
				consumed = append(consumed, out[:n]...)
			}
		}
		rest := make([]byte, b.Used())
		b.Read(rest)
		consumed = append(consumed, rest...)
		return bytes.Equal(produced, consumed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPayloadBufferConcurrent(t *testing.T) {
	b := NewPayloadBuffer(1024)
	const total = 1 << 19
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var v byte
		sent := 0
		chunk := make([]byte, 100)
		for sent < total {
			n := total - sent
			if n > len(chunk) {
				n = len(chunk)
			}
			for i := 0; i < n; i++ {
				chunk[i] = v + byte(i)
			}
			if b.Write(chunk[:n]) {
				v += byte(n)
				sent += n
			} else {
				runtime.Gosched()
			}
		}
	}()
	var want byte
	got := 0
	buf := make([]byte, 77)
	for got < total {
		n := b.Read(buf)
		if n == 0 {
			runtime.Gosched()
		}
		for i := 0; i < n; i++ {
			if buf[i] != want {
				t.Fatalf("byte %d: got %d want %d", got+i, buf[i], want)
			}
			want++
		}
		got += n
	}
	wg.Wait()
}

func TestPayloadBufferGrow(t *testing.T) {
	b := NewPayloadBuffer(16)
	b.Write([]byte("0123456789"))
	b.Read(make([]byte, 4)) // tail=4, live region "456789"
	b.Grow(64)
	if b.Size() != 64 {
		t.Fatalf("size = %d", b.Size())
	}
	if b.Used() != 6 {
		t.Fatalf("used = %d", b.Used())
	}
	out := make([]byte, 6)
	if n := b.Read(out); n != 6 || string(out) != "456789" {
		t.Fatalf("after grow read %q", out[:n])
	}
	// Growing to a smaller/equal size is a no-op.
	b.Grow(32)
	if b.Size() != 64 {
		t.Fatal("shrink must be ignored")
	}
	// New capacity usable.
	if !b.Write(make([]byte, 60)) {
		t.Fatal("grown buffer should accept 60 bytes")
	}
}

func TestPayloadBufferGrowAcrossWrap(t *testing.T) {
	b := NewPayloadBuffer(16)
	// Position the live region across the wrap point.
	b.Write(make([]byte, 12))
	b.Read(make([]byte, 12))
	b.Write([]byte("ABCDEFGH")) // wraps: 4 at end, 4 at start
	b.Grow(64)
	out := make([]byte, 8)
	if n := b.Read(out); n != 8 || string(out) != "ABCDEFGH" {
		t.Fatalf("wrapped grow read %q", out[:n])
	}
}

func TestPayloadBufferGrowInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two")
		}
	}()
	NewPayloadBuffer(16).Grow(48)
}

func TestReserveHeadPeekTailSpans(t *testing.T) {
	b := NewPayloadBuffer(16)
	// Contiguous reserve.
	a1, a2 := b.ReserveHead(8)
	if len(a1) != 8 || a2 != nil {
		t.Fatalf("reserve: %d,%d", len(a1), len(a2))
	}
	copy(a1, "01234567")
	b.AdvanceHead(8)
	// Peek sees the same bytes.
	p1, p2 := b.PeekTail(8)
	if string(p1)+string(p2) != "01234567" {
		t.Fatalf("peek %q %q", p1, p2)
	}
	b.Release(8)
	// Now force a wrap: head at 8, reserve 16 spans the boundary.
	r1, r2 := b.ReserveHead(16)
	if len(r1) != 8 || len(r2) != 8 {
		t.Fatalf("wrapped reserve: %d,%d", len(r1), len(r2))
	}
	copy(r1, "abcdefgh")
	copy(r2, "ABCDEFGH")
	b.AdvanceHead(16)
	q1, q2 := b.PeekTail(16)
	if string(q1)+string(q2) != "abcdefghABCDEFGH" {
		t.Fatalf("wrapped peek %q %q", q1, q2)
	}
	// Reserve beyond free space clamps.
	if x1, x2 := b.ReserveHead(5); x1 != nil || x2 != nil {
		t.Fatal("full buffer must yield empty reserve")
	}
	if y1, y2 := b.PeekTail(0); y1 != nil || y2 != nil {
		t.Fatal("zero peek")
	}
}
