package shmring

import (
	"sync/atomic"

	"repro/internal/stats"
)

// livePayload tracks the bytes of payload-buffer memory allocated and
// not yet reclaimed, process-wide — the in-process stand-in for the
// shared payload memory segment TAS carves per-flow buffers out of. The
// slow path's application reaper returns a dead app's buffers to the
// pool via Reclaim; tests assert the gauge falls back after a reap.
var livePayload stats.Gauge

// LivePayloadBytes returns the bytes of payload-buffer memory currently
// allocated and not reclaimed.
func LivePayloadBytes() int64 { return livePayload.Load() }

// PayloadBuffer is a circular byte buffer with absolute 32-bit positions,
// modelling the per-flow receive and transmit payload buffers of Table 3:
// rx|tx_start+size describe the region, head is the producer position and
// tail the consumer position. Positions are absolute byte counters that
// wrap modulo 2^32; the buffer index is position mod size, which requires
// the size to be a power of two so that wrapping stays consistent.
//
// The producer owns head, the consumer owns tail. Random-access writes
// (WriteAt) support the fast path's out-of-order deposit: payload is
// placed at its stream position before head advances over it.
type PayloadBuffer struct {
	buf  []byte
	mask uint32
	_    pad
	head atomic.Uint32 // producer position (bytes ever produced)
	_    pad
	tail atomic.Uint32 // consumer position (bytes ever consumed)
	_    pad
	// reclaimed marks a buffer returned to the payload pool by the
	// slow-path reaper: further producer writes are refused (the owning
	// application is dead), while reads keep working so a surviving
	// peer-side consumer can drain what it already has.
	reclaimed atomic.Bool
}

// NewPayloadBuffer returns a buffer of the given power-of-two size.
func NewPayloadBuffer(size int) *PayloadBuffer {
	if size <= 0 || size&(size-1) != 0 {
		panic("shmring: payload buffer size must be a positive power of two")
	}
	livePayload.Add(int64(size))
	return &PayloadBuffer{buf: make([]byte, size), mask: uint32(size - 1)}
}

// Reclaim returns the buffer's memory to the payload pool (the
// slow-path reaper calls this when an application dies). Idempotent.
// Producer writes are refused afterwards; reads still drain whatever
// was already buffered.
func (b *PayloadBuffer) Reclaim() {
	if b.reclaimed.Swap(true) {
		return
	}
	livePayload.Add(-int64(len(b.buf)))
}

// Reclaimed reports whether the buffer has been returned to the pool.
func (b *PayloadBuffer) Reclaimed() bool { return b.reclaimed.Load() }

// Size returns the buffer capacity in bytes.
func (b *PayloadBuffer) Size() int { return len(b.buf) }

// Head returns the producer position.
func (b *PayloadBuffer) Head() uint32 { return b.head.Load() }

// Tail returns the consumer position.
func (b *PayloadBuffer) Tail() uint32 { return b.tail.Load() }

// Used returns the number of bytes produced but not yet consumed.
func (b *PayloadBuffer) Used() int { return int(b.head.Load() - b.tail.Load()) }

// Free returns the number of bytes that can still be produced.
func (b *PayloadBuffer) Free() int { return len(b.buf) - b.Used() }

// copyIn copies data into the ring at absolute position pos.
func (b *PayloadBuffer) copyIn(pos uint32, data []byte) {
	idx := pos & b.mask
	n := copy(b.buf[idx:], data)
	if n < len(data) {
		copy(b.buf, data[n:])
	}
}

// copyOut copies from the ring at absolute position pos into out.
func (b *PayloadBuffer) copyOut(pos uint32, out []byte) {
	idx := pos & b.mask
	n := copy(out, b.buf[idx:])
	if n < len(out) {
		copy(out[n:], b.buf[:len(out)-int(uint32(n))])
	}
}

// Write appends data at head and advances head. It reports false (and
// writes nothing) if the free space is insufficient.
func (b *PayloadBuffer) Write(data []byte) bool {
	if len(data) > b.Free() || b.reclaimed.Load() {
		return false
	}
	h := b.head.Load()
	b.copyIn(h, data)
	b.head.Store(h + uint32(len(data)))
	return true
}

// WriteAt places data at absolute position pos without moving head. The
// caller must ensure [pos, pos+len) lies within [head, tail+size) — i.e.
// at or ahead of head but within the free region. Used for out-of-order
// deposit.
func (b *PayloadBuffer) WriteAt(pos uint32, data []byte) {
	b.copyIn(pos, data)
}

// AdvanceHead moves the producer position forward by n bytes (payload
// already placed via WriteAt).
func (b *PayloadBuffer) AdvanceHead(n int) {
	b.head.Store(b.head.Load() + uint32(n))
}

// Read copies up to len(out) bytes from tail and advances tail. It
// returns the number of bytes read.
func (b *PayloadBuffer) Read(out []byte) int {
	avail := b.Used()
	if avail == 0 || len(out) == 0 {
		return 0
	}
	n := len(out)
	if n > avail {
		n = avail
	}
	tl := b.tail.Load()
	b.copyOut(tl, out[:n])
	b.tail.Store(tl + uint32(n))
	return n
}

// ReadAt copies len(out) bytes starting at absolute position pos without
// moving tail. The caller must ensure [pos, pos+len) lies within
// [tail, head). Used by the fast path to fetch transmit payload that must
// remain buffered until acknowledged.
func (b *PayloadBuffer) ReadAt(pos uint32, out []byte) {
	b.copyOut(pos, out)
}

// Release advances tail by n bytes without copying — transmit-buffer
// space reclamation when acknowledgements arrive.
func (b *PayloadBuffer) Release(n int) {
	b.tail.Store(b.tail.Load() + uint32(n))
}

// ReserveHead returns up to n bytes of writable space at the producer
// position as (up to) two spans — the contiguous tail of the ring and
// its wrapped head. The caller fills the spans in order and then calls
// AdvanceHead for the bytes actually written. This is the zero-copy
// produce path: payload is assembled directly in the shared buffer.
func (b *PayloadBuffer) ReserveHead(n int) (first, second []byte) {
	if free := b.Free(); n > free {
		n = free
	}
	if n <= 0 {
		return nil, nil
	}
	idx := int(b.head.Load() & b.mask)
	if idx+n <= len(b.buf) {
		return b.buf[idx : idx+n], nil
	}
	return b.buf[idx:], b.buf[:n-(len(b.buf)-idx)]
}

// PeekTail returns up to n readable bytes at the consumer position as
// (up to) two spans, without consuming. Follow with Release for the
// bytes actually consumed. This is the zero-copy consume path.
func (b *PayloadBuffer) PeekTail(n int) (first, second []byte) {
	if used := b.Used(); n > used {
		n = used
	}
	if n <= 0 {
		return nil, nil
	}
	idx := int(b.tail.Load() & b.mask)
	if idx+n <= len(b.buf) {
		return b.buf[idx : idx+n], nil
	}
	return b.buf[idx:], b.buf[:n-(len(b.buf)-idx)]
}

// Grow replaces the backing storage with a larger power-of-two buffer,
// preserving unconsumed bytes and the absolute head/tail positions.
// The paper lists buffer resizing as desirable future work (§4.1
// Limitations); here it backs the slow path's resize management
// command. The caller must hold whatever lock serializes producers and
// consumers of this buffer (the flow spinlock).
func (b *PayloadBuffer) Grow(newSize int) {
	if newSize <= len(b.buf) {
		return
	}
	if newSize&(newSize-1) != 0 {
		panic("shmring: Grow size must be a power of two")
	}
	nb := make([]byte, newSize)
	tl, hd := b.tail.Load(), b.head.Load()
	used := int(hd - tl)
	// Copy the live region to the same absolute positions modulo the
	// new size.
	livePayload.Add(int64(newSize - len(b.buf)))
	tmp := make([]byte, used)
	b.copyOut(tl, tmp)
	b.buf = nb
	b.mask = uint32(newSize - 1)
	b.copyIn(tl, tmp)
}
