package shmring

import (
	"sync"
	"testing"
)

// TestReclaimAccounting: the process-wide payload gauge rises on
// allocation and Grow, falls exactly once per buffer on Reclaim, and
// repeated Reclaim is a no-op — the invariant the app reaper's leak
// checking is built on.
func TestReclaimAccounting(t *testing.T) {
	base := LivePayloadBytes()
	b := NewPayloadBuffer(1 << 10)
	if got := LivePayloadBytes() - base; got != 1<<10 {
		t.Fatalf("after alloc: delta %d, want %d", got, 1<<10)
	}
	b.Grow(4 << 10)
	if got := LivePayloadBytes() - base; got != 4<<10 {
		t.Fatalf("after grow: delta %d, want %d", got, 4<<10)
	}
	b.Reclaim()
	if got := LivePayloadBytes() - base; got != 0 {
		t.Fatalf("after reclaim: delta %d, want 0", got)
	}
	if !b.Reclaimed() {
		t.Fatal("not marked reclaimed")
	}
	b.Reclaim() // idempotent: must not double-subtract
	if got := LivePayloadBytes() - base; got != 0 {
		t.Fatalf("after double reclaim: delta %d, want 0", got)
	}
}

// TestReclaimBlocksWritesAllowsDrain: after Reclaim the buffer refuses
// new payload but still lets the reader drain what was buffered — an
// aborted connection may deliver already-received data, never accept
// more.
func TestReclaimBlocksWritesAllowsDrain(t *testing.T) {
	b := NewPayloadBuffer(64)
	if !b.Write([]byte("buffered")) {
		t.Fatal("write failed")
	}
	b.Reclaim()
	if b.Write([]byte("x")) {
		t.Fatal("write accepted after reclaim")
	}
	out := make([]byte, 16)
	if n := b.Read(out); n != 8 || string(out[:8]) != "buffered" {
		t.Fatalf("drain after reclaim: %q", out[:n])
	}
	if n := b.Read(out); n != 0 {
		t.Fatalf("read past drained data: %d", n)
	}
}

// TestReclaimConcurrent races many Reclaim calls against a writer and
// checks the gauge settles exactly size lower: the release happens
// exactly once no matter how the race resolves.
func TestReclaimConcurrent(t *testing.T) {
	base := LivePayloadBytes()
	b := NewPayloadBuffer(1 << 12)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Reclaim()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			b.Write([]byte("payload"))
		}
	}()
	wg.Wait()
	if got := LivePayloadBytes() - base; got != 0 {
		t.Fatalf("gauge delta after concurrent reclaim: %d, want 0", got)
	}
}

// TestPayloadFullEmptyBoundary drives the ring to exactly full and
// exactly empty across a wrap and checks Free/Used stay consistent at
// both edges (the boundary the head==tail encoding must disambiguate).
func TestPayloadFullEmptyBoundary(t *testing.T) {
	const size = 64
	b := NewPayloadBuffer(size)
	// Offset head/tail so full and empty both land mid-array.
	b.Write(make([]byte, 40))
	b.Read(make([]byte, 40))

	if !b.Write(make([]byte, size)) {
		t.Fatal("fill to exactly full failed")
	}
	if b.Free() != 0 || b.Used() != size {
		t.Fatalf("full: free=%d used=%d", b.Free(), b.Used())
	}
	if b.Write([]byte{1}) {
		t.Fatal("write accepted when exactly full")
	}
	if n := b.Read(make([]byte, size)); n != size {
		t.Fatalf("drain from full: %d", n)
	}
	if b.Free() != size || b.Used() != 0 {
		t.Fatalf("empty: free=%d used=%d", b.Free(), b.Used())
	}
	if n := b.Read(make([]byte, 1)); n != 0 {
		t.Fatal("read succeeded when exactly empty")
	}
}

// TestSPSCFullEmptyBoundary does the same for the descriptor ring:
// enqueue to capacity, overflow refused, drain to empty, underflow
// refused — then the cycle repeats cleanly (wrap state intact).
func TestSPSCFullEmptyBoundary(t *testing.T) {
	q := NewSPSC[int](4)
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < q.Cap(); i++ {
			if !q.Enqueue(i) {
				t.Fatalf("cycle %d: enqueue %d failed", cycle, i)
			}
		}
		if q.Enqueue(99) {
			t.Fatalf("cycle %d: enqueue accepted when full", cycle)
		}
		if q.Len() != q.Cap() {
			t.Fatalf("cycle %d: len=%d cap=%d", cycle, q.Len(), q.Cap())
		}
		for i := 0; i < q.Cap(); i++ {
			v, ok := q.Dequeue()
			if !ok || v != i {
				t.Fatalf("cycle %d: dequeue got (%d,%v) want (%d,true)", cycle, v, ok, i)
			}
		}
		if _, ok := q.Dequeue(); ok {
			t.Fatalf("cycle %d: dequeue succeeded when empty", cycle)
		}
	}
}
