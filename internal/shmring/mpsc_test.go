package shmring

import (
	"sync"
	"testing"
)

// TestMPSCConcurrentProducers drives many producers against one
// consumer; under -race this is the regression test for the
// multi-producer contract (the plain SPSC ring corrupts its tail
// index here).
func TestMPSCConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 10000
	q := NewMPSC[int](256)

	var wg sync.WaitGroup
	sent := make([]int, producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if q.Enqueue(p*perProducer + i) {
					sent[p]++
				}
			}
		}(p)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	got := 0
	seen := make(map[int]bool)
	var buf [64]int
	for {
		n := q.DequeueBatch(buf[:])
		for i := 0; i < n; i++ {
			if seen[buf[i]] {
				t.Fatalf("value %d dequeued twice", buf[i])
			}
			seen[buf[i]] = true
			got++
		}
		if n == 0 {
			select {
			case <-done:
				if q.Len() == 0 {
					total := 0
					for _, s := range sent {
						total += s
					}
					if got != total {
						t.Fatalf("dequeued %d, producers enqueued %d", got, total)
					}
					return
				}
			default:
			}
		}
	}
}
