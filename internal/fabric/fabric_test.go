package fabric

import (
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

func TestAttachDeliver(t *testing.T) {
	f := New()
	var mu sync.Mutex
	var got []*protocol.Packet
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(p *protocol.Packet) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	nic.Output(&protocol.Packet{DstIP: protocol.MakeIPv4(10, 0, 0, 2)})
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	if got[0].SrcIP != nic.IP() {
		t.Fatal("source IP not stamped")
	}
	if (got[0].DstMAC == protocol.MAC{}) {
		t.Fatal("destination MAC not resolved")
	}
	if f.Delivered.Load() != 1 {
		t.Fatal("counter")
	}
}

func TestNoRouteDrops(t *testing.T) {
	f := New()
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	nic.Output(&protocol.Packet{DstIP: protocol.MakeIPv4(99, 0, 0, 1)})
	if f.NoRoute.Load() != 1 {
		t.Fatal("no-route not counted")
	}
}

func TestDetach(t *testing.T) {
	f := New()
	ip := protocol.MakeIPv4(10, 0, 0, 2)
	f.Attach(ip, func(*protocol.Packet) { t.Fatal("detached host received packet") })
	f.Detach(ip)
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	nic.Output(&protocol.Packet{DstIP: ip})
	if f.NoRoute.Load() != 1 {
		t.Fatal("expected no-route after detach")
	}
}

func TestLossInjection(t *testing.T) {
	f := New()
	f.SetLossRate(0.5)
	var n int
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(*protocol.Packet) { n++ })
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	for i := 0; i < 2000; i++ {
		nic.Output(&protocol.Packet{DstIP: protocol.MakeIPv4(10, 0, 0, 2)})
	}
	if n < 700 || n > 1300 {
		t.Fatalf("delivered %d of 2000 at 50%% loss", n)
	}
	if f.Dropped.Load() != uint64(2000-n) {
		t.Fatal("drop counter inconsistent")
	}
}

func TestLatency(t *testing.T) {
	f := New()
	f.SetLatency(20 * time.Millisecond)
	done := make(chan time.Time, 1)
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(*protocol.Packet) { done <- time.Now() })
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	start := time.Now()
	nic.Output(&protocol.Packet{DstIP: protocol.MakeIPv4(10, 0, 0, 2)})
	select {
	case at := <-done:
		if d := at.Sub(start); d < 15*time.Millisecond {
			t.Fatalf("delivered after %v, want >= ~20ms", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("never delivered")
	}
}
