package fabric

import (
	"sync"
	"time"

	"repro/internal/protocol"
)

// LinkConfig is the netem-grade link model for live-mode delivery. The
// flat SetLatency model (deliver everything d later) gives every packet
// infinite bandwidth: packets written back-to-back arrive back-to-back
// in an artificial burst, and any added loss produces a receiver-limited
// TCP that collapses instead of degrading (the netem exemplar's "with
// delay" implementation). This model instead separates, per destination
// host, the three delays a real link imposes:
//
//   - transmission: each packet occupies the link for wirelen*8/RateBps;
//   - queueing: packets that arrive while the link transmits wait in a
//     bounded drop-tail FIFO (overflow counted in Fabric.QueueDrops);
//   - propagation: a constant PropDelay after transmission completes.
//
// With the queue bounded and the transmitter serialized, loss and rate
// sweeps produce congestion-limited degradation — graceful, not cliff.
type LinkConfig struct {
	// RateBps is the link bandwidth in bits/s (must be > 0).
	RateBps float64

	// QueueCap bounds the per-destination drop-tail queue in packets
	// (<= 0 means 256).
	QueueCap int

	// PropDelay is the one-way propagation delay added after a packet's
	// transmission completes.
	PropDelay time.Duration

	// ECNThreshold, when > 0, marks ECN-capable packets CE when they
	// arrive to a queue at or past this depth (DCTCP-style marking at
	// the congestion point).
	ECNThreshold int
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	return c
}

// queuedPkt is one packet waiting in or transmitting on a link, with its
// resolved destination handler captured at admission time.
type queuedPkt struct {
	pkt *protocol.Packet
	h   Handler
}

// link serializes delivery toward one destination host: a bounded
// drop-tail FIFO drained at the configured rate, then a propagation
// delay. It is the live-time mirror of netsim.Port.
//
// Draining runs on a virtual transmit clock (free): each packet's
// transmission completes at free+wirelen*8/rate, and a drain pass
// delivers every packet whose completion is due, then re-arms one timer
// for the next. Delivering in elapsed-time batches (rather than one
// timer per packet) keeps the modeled rate correct even though Go
// timers fire with ~millisecond slop — per-packet timers at tens of
// microseconds would silently throttle the link to the timer rate.
type link struct {
	fab *Fabric

	mu    sync.Mutex
	cfg   LinkConfig
	queue []queuedPkt
	busy  bool
	free  time.Time // when the transmitter finishes its current packet
}

// send admits one packet. Returns false when the queue is full (the
// caller counts the drop).
func (l *link) send(pkt *protocol.Packet, h Handler) bool {
	l.mu.Lock()
	if len(l.queue) >= l.cfg.QueueCap {
		l.mu.Unlock()
		return false
	}
	if th := l.cfg.ECNThreshold; th > 0 && len(l.queue) >= th &&
		(pkt.ECN == protocol.ECNECT0 || pkt.ECN == protocol.ECNECT1) {
		pkt = pkt.Clone()
		pkt.ECN = protocol.ECNCE
		l.fab.CEMarks.Add(1)
	}
	l.queue = append(l.queue, queuedPkt{pkt: pkt, h: h})
	if !l.busy {
		l.busy = true
		now := time.Now()
		if l.free.Before(now) {
			l.free = now // the transmitter sat idle until this packet
		}
		l.armTimer(now)
	}
	l.mu.Unlock()
	return true
}

// txTime is one packet's transmission time at the configured rate.
func (l *link) txTime(p *protocol.Packet) time.Duration {
	tx := time.Duration(float64(p.WireLen()*8) / l.cfg.RateBps * 1e9)
	if tx <= 0 {
		tx = time.Nanosecond
	}
	return tx
}

// armTimer schedules the next drain pass for the head-of-line packet's
// virtual completion. Caller holds l.mu; exactly one timer is
// outstanding per link, so per-destination delivery stays FIFO.
func (l *link) armTimer(now time.Time) {
	wait := l.free.Add(l.txTime(l.queue[0].pkt)).Sub(now)
	if wait <= 0 {
		wait = time.Microsecond
	}
	time.AfterFunc(wait, l.drain)
}

// drain delivers every queued packet whose virtual transmission has
// completed by now, advances the transmit clock, and re-arms the timer
// for the remainder. Batching by elapsed time absorbs timer slop: if
// the timer fired 1ms late at a 100 Mbit/s rate, the ~12 packets whose
// serialization finished in that millisecond all leave now, preserving
// the configured average rate (bursts stay bounded by the slop, far
// from the whole-window bursts of the flat-delay model).
func (l *link) drain() {
	l.mu.Lock()
	now := time.Now()
	var out []queuedPkt
	for len(l.queue) > 0 {
		done := l.free.Add(l.txTime(l.queue[0].pkt))
		if done.After(now) {
			break
		}
		l.free = done
		out = append(out, l.queue[0])
		l.queue = l.queue[1:]
	}
	prop := l.cfg.PropDelay
	if len(l.queue) > 0 {
		l.armTimer(now)
	} else {
		l.busy = false
	}
	l.mu.Unlock()

	deliver := func() {
		for _, q := range out {
			q.h(q.pkt)
		}
	}
	if prop > 0 {
		// Batches are scheduled at monotonically later completion times
		// with the same offset, so cross-batch order is preserved.
		time.AfterFunc(prop, deliver)
	} else {
		deliver()
	}
}

// SetLink installs (or reconfigures) the netem-grade link model: every
// destination host gets a bounded FIFO drained at cfg.RateBps followed
// by cfg.PropDelay. Reconfiguring while traffic flows is safe and takes
// effect for queued and future packets (an impairment schedule changing
// the rate mid-run). While a link model is installed it supersedes the
// flat SetLatency path. Panics if cfg.RateBps <= 0.
func (f *Fabric) SetLink(cfg LinkConfig) {
	if cfg.RateBps <= 0 {
		panic("fabric: link model needs a positive rate")
	}
	cfg = cfg.withDefaults()
	f.mu.Lock()
	f.linkCfg = &cfg
	for _, l := range f.links {
		l.mu.Lock()
		l.cfg = cfg
		l.mu.Unlock()
	}
	f.mu.Unlock()
}

// ClearLink removes the link model, returning to direct (or flat
// SetLatency) delivery. Packets already queued on links still drain.
func (f *Fabric) ClearLink() {
	f.mu.Lock()
	f.linkCfg = nil
	f.links = make(map[protocol.IPv4]*link)
	f.mu.Unlock()
}

// LinkQueueLen reports the instantaneous queue depth toward dst (0 when
// no link model is installed) — an observation point for congestion
// assertions.
func (f *Fabric) LinkQueueLen(dst protocol.IPv4) int {
	f.mu.RLock()
	l := f.links[dst]
	f.mu.RUnlock()
	if l == nil {
		return 0
	}
	l.mu.Lock()
	n := len(l.queue)
	l.mu.Unlock()
	return n
}

// linkFor returns the link toward dst, creating it if the model is
// installed (nil when it is not).
func (f *Fabric) linkFor(dst protocol.IPv4) *link {
	f.mu.RLock()
	cfg := f.linkCfg
	l := f.links[dst]
	f.mu.RUnlock()
	if cfg == nil {
		return nil
	}
	if l != nil {
		return l
	}
	f.mu.Lock()
	if f.linkCfg == nil {
		f.mu.Unlock()
		return nil
	}
	if l = f.links[dst]; l == nil {
		l = &link{fab: f, cfg: *f.linkCfg}
		f.links[dst] = l
	}
	f.mu.Unlock()
	return l
}
