// Package fabric is the live-mode network: an in-process Ethernet
// connecting TAS service instances (and any other packet handler) by IP
// address. It stands in for the NIC + switch of the paper's testbed when
// running the real fast path end to end. Delivery is synchronous by
// default; optional per-fabric latency and random loss support failure
// testing.
package fabric

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/protocol"
	"repro/internal/stats"
)

// Handler consumes packets addressed to an attached host.
type Handler func(pkt *protocol.Packet)

// Fabric connects attached hosts.
type Fabric struct {
	mu    sync.RWMutex
	hosts map[protocol.IPv4]Handler
	rng   *rand.Rand

	// Fault-injection state (guarded by mu): per-host link state,
	// pairwise partitions, and an optional Gilbert–Elliott burst-loss
	// channel.
	downHosts map[protocol.IPv4]bool
	blocked   map[[2]protocol.IPv4]bool
	ge        *stats.GilbertElliott

	// latency delays delivery (0 = synchronous hand-off); nanoseconds.
	latency atomic.Int64
	// lossRate drops packets at random; stored as math.Float64bits.
	lossRate atomic.Uint64
	// linkCfg / links are the netem-grade link model (see link.go);
	// nil linkCfg means the model is off. Guarded by mu.
	linkCfg *LinkConfig
	links   map[protocol.IPv4]*link
	// Tap, when set, observes every packet accepted onto the fabric
	// (before loss/latency), e.g. a trace.Recorder.Tap or a pcap
	// writer. Must be safe for concurrent use.
	Tap func(tsNanos int64, pkt *protocol.Packet)

	Delivered atomic.Uint64
	Dropped   atomic.Uint64
	NoRoute   atomic.Uint64

	// Link-model counters (see link.go).
	QueueDrops atomic.Uint64 // dropped: link queue overflow
	CEMarks    atomic.Uint64 // ECN CE marks applied at link queues

	// Fault-injection drop counters.
	DownDrops      atomic.Uint64 // dropped: an endpoint's link was down
	PartitionDrops atomic.Uint64 // dropped: the host pair was partitioned
	BurstDrops     atomic.Uint64 // dropped: Gilbert–Elliott burst loss
}

// New returns an empty fabric.
func New() *Fabric {
	return &Fabric{
		hosts:     make(map[protocol.IPv4]Handler),
		rng:       rand.New(rand.NewSource(1)),
		downHosts: make(map[protocol.IPv4]bool),
		blocked:   make(map[[2]protocol.IPv4]bool),
		links:     make(map[protocol.IPv4]*link),
	}
}

// Reseed re-seeds the fabric's private random source, which drives
// SetLossRate decisions. Scenario runs call this with the scenario seed
// so the loss process is part of the reproducible fault timeline rather
// than pinned to the construction-time default seed.
func (f *Fabric) Reseed(seed int64) {
	f.mu.Lock()
	f.rng = rand.New(rand.NewSource(seed))
	f.mu.Unlock()
}

// pairKey canonicalizes an unordered host pair.
func pairKey(a, b protocol.IPv4) [2]protocol.IPv4 {
	if a > b {
		a, b = b, a
	}
	return [2]protocol.IPv4{a, b}
}

// SetLinkDown takes one host's link down (or back up): every packet to
// or from the host is dropped while down, modeling NIC/cable failure or
// a link flap. Safe to toggle while traffic flows.
func (f *Fabric) SetLinkDown(ip protocol.IPv4, down bool) {
	f.mu.Lock()
	if down {
		f.downHosts[ip] = true
	} else {
		delete(f.downHosts, ip)
	}
	f.mu.Unlock()
}

// Partition blocks all traffic between a and b (both directions) until
// Heal. Other pairs are unaffected.
func (f *Fabric) Partition(a, b protocol.IPv4) {
	f.mu.Lock()
	f.blocked[pairKey(a, b)] = true
	f.mu.Unlock()
}

// Heal removes the a<->b partition.
func (f *Fabric) Heal(a, b protocol.IPv4) {
	f.mu.Lock()
	delete(f.blocked, pairKey(a, b))
	f.mu.Unlock()
}

// HealAll removes every partition and brings every link back up.
func (f *Fabric) HealAll() {
	f.mu.Lock()
	f.downHosts = make(map[protocol.IPv4]bool)
	f.blocked = make(map[[2]protocol.IPv4]bool)
	f.mu.Unlock()
}

// SetBurstLoss installs a seeded Gilbert–Elliott burst-loss channel in
// front of delivery (nil-equivalent: call ClearBurstLoss). Decisions
// are drawn per packet under the fabric lock, so a fixed seed gives a
// reproducible loss pattern for a deterministic packet sequence.
func (f *Fabric) SetBurstLoss(cfg stats.GEConfig, seed int64) {
	f.mu.Lock()
	f.ge = stats.NewGilbertElliott(rand.New(rand.NewSource(seed)), cfg)
	f.mu.Unlock()
}

// ClearBurstLoss removes the burst-loss channel.
func (f *Fabric) ClearBurstLoss() {
	f.mu.Lock()
	f.ge = nil
	f.mu.Unlock()
}

// SetLossRate makes the fabric drop packets with probability p in [0,1).
// Safe to change while traffic flows (failure injection).
func (f *Fabric) SetLossRate(p float64) { f.lossRate.Store(math.Float64bits(p)) }

// LossRate returns the current loss probability.
func (f *Fabric) LossRate() float64 { return math.Float64frombits(f.lossRate.Load()) }

// SetLatency sets one-way delivery latency. Safe to change at runtime.
func (f *Fabric) SetLatency(d time.Duration) { f.latency.Store(int64(d)) }

// GetLatency returns the current one-way latency.
func (f *Fabric) GetLatency() time.Duration { return time.Duration(f.latency.Load()) }

// Attach registers a handler for an IP and returns a NIC bound to it.
func (f *Fabric) Attach(ip protocol.IPv4, h Handler) *NIC {
	f.mu.Lock()
	f.hosts[ip] = h
	f.mu.Unlock()
	return &NIC{fab: f, ip: ip}
}

// Detach removes a host.
func (f *Fabric) Detach(ip protocol.IPv4) {
	f.mu.Lock()
	delete(f.hosts, ip)
	f.mu.Unlock()
}

// send routes one packet to its destination host.
func (f *Fabric) send(pkt *protocol.Packet) {
	if tap := f.Tap; tap != nil {
		tap(time.Now().UnixNano(), pkt)
	}
	f.mu.RLock()
	down := len(f.downHosts) > 0 && (f.downHosts[pkt.SrcIP] || f.downHosts[pkt.DstIP])
	part := len(f.blocked) > 0 && f.blocked[pairKey(pkt.SrcIP, pkt.DstIP)]
	hasGE := f.ge != nil
	f.mu.RUnlock()
	if down {
		f.DownDrops.Add(1)
		f.Dropped.Add(1)
		return
	}
	if part {
		f.PartitionDrops.Add(1)
		f.Dropped.Add(1)
		return
	}
	if hasGE {
		f.mu.Lock()
		drop := f.ge != nil && f.ge.Drop()
		f.mu.Unlock()
		if drop {
			f.BurstDrops.Add(1)
			f.Dropped.Add(1)
			return
		}
	}
	if p := f.LossRate(); p > 0 {
		f.mu.Lock()
		drop := f.rng.Float64() < p
		f.mu.Unlock()
		if drop {
			f.Dropped.Add(1)
			return
		}
	}
	f.mu.RLock()
	h := f.hosts[pkt.DstIP]
	f.mu.RUnlock()
	if h == nil {
		f.NoRoute.Add(1)
		return
	}
	if l := f.linkFor(pkt.DstIP); l != nil {
		if !l.send(pkt, h) {
			f.QueueDrops.Add(1)
			f.Dropped.Add(1)
			return
		}
		f.Delivered.Add(1)
		return
	}
	f.Delivered.Add(1)
	if d := f.GetLatency(); d > 0 {
		time.AfterFunc(d, func() { h(pkt) })
		return
	}
	h(pkt)
}

// NIC is one host's attachment; it implements fastpath.NIC.
type NIC struct {
	fab *Fabric
	ip  protocol.IPv4
}

// Output transmits a packet onto the fabric.
func (n *NIC) Output(pkt *protocol.Packet) {
	if pkt.SrcIP == 0 {
		pkt.SrcIP = n.ip
	}
	if (pkt.DstMAC == protocol.MAC{}) {
		pkt.DstMAC = protocol.MACForIPv4(pkt.DstIP)
	}
	n.fab.send(pkt)
}

// IP returns the attachment address.
func (n *NIC) IP() protocol.IPv4 { return n.ip }
