package fabric

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/protocol"
)

func mkPkt(src, dst protocol.IPv4, payload int) *protocol.Packet {
	return &protocol.Packet{
		SrcIP: src, DstIP: dst,
		SrcPort: 1000, DstPort: 2000,
		Payload: make([]byte, payload),
	}
}

// TestLinkSerializesAtRate: with the link model installed, back-to-back
// sends drain at the configured rate instead of arriving as one burst.
// 50 x ~1KiB packets at 10 Mbit/s need >= ~40ms of pure transmission
// time; the flat-latency model would deliver them all "instantly".
func TestLinkSerializesAtRate(t *testing.T) {
	f := New()
	var mu sync.Mutex
	var arrivals []time.Time
	done := make(chan struct{})
	const n = 50
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(pkt *protocol.Packet) {
		mu.Lock()
		arrivals = append(arrivals, time.Now())
		if len(arrivals) == n {
			close(done)
		}
		mu.Unlock()
	})
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	f.SetLink(LinkConfig{RateBps: 10e6, QueueCap: n + 1})

	start := time.Now()
	for i := 0; i < n; i++ {
		nic.Output(mkPkt(protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2), 1024))
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("packets never all arrived")
	}
	elapsed := time.Since(start)
	// Wire length ~1078B => ~0.86ms each at 10 Mbit/s => ~43ms total.
	// Assert at least half of the ideal serialization time to stay
	// robust to coarse timers, and that it is nowhere near instant.
	if elapsed < 20*time.Millisecond {
		t.Fatalf("50 packets at 10Mbps delivered in %v: link did not serialize (artificial burst)", elapsed)
	}
	// FIFO order per destination must hold.
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i].Before(arrivals[i-1]) {
			t.Fatalf("arrival %d before %d: reordered within a link", i, i-1)
		}
	}
}

// TestLinkQueueBounded: flooding a slow link overflows its drop-tail
// queue; the overflow is counted, and at most QueueCap+1 packets (the
// queue plus the one transmitting) survive.
func TestLinkQueueBounded(t *testing.T) {
	f := New()
	var delivered atomic.Int64
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(*protocol.Packet) { delivered.Add(1) })
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	const qcap = 8
	f.SetLink(LinkConfig{RateBps: 1e6, QueueCap: qcap}) // ~8.6ms per 1KiB packet

	const n = 64
	for i := 0; i < n; i++ {
		nic.Output(mkPkt(protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2), 1024))
	}
	if drops := f.QueueDrops.Load(); drops == 0 {
		t.Fatal("flooding a bounded link queue produced no QueueDrops")
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if delivered.Load()+int64(f.QueueDrops.Load()) == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := delivered.Load(); got > qcap+1 {
		t.Fatalf("delivered %d packets through a queue of %d", got, qcap)
	}
	if got, drops := delivered.Load(), f.QueueDrops.Load(); got+int64(drops) != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", got, drops, n)
	}
}

// TestLinkPropagationSeparate: propagation delay applies after
// transmission — a single packet arrives no earlier than tx+prop, and
// reconfiguring the rate mid-run takes effect.
func TestLinkPropagationSeparate(t *testing.T) {
	f := New()
	got := make(chan time.Time, 1)
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(*protocol.Packet) { got <- time.Now() })
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	f.SetLink(LinkConfig{RateBps: 1e9, PropDelay: 30 * time.Millisecond})

	start := time.Now()
	nic.Output(mkPkt(protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2), 256))
	select {
	case at := <-got:
		if d := at.Sub(start); d < 25*time.Millisecond {
			t.Fatalf("packet arrived after %v, want >= ~30ms propagation", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived")
	}

	// Mid-run reconfiguration: drop the propagation delay and the next
	// packet arrives promptly.
	f.SetLink(LinkConfig{RateBps: 1e9})
	start = time.Now()
	nic.Output(mkPkt(protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2), 256))
	select {
	case at := <-got:
		if d := at.Sub(start); d > 20*time.Millisecond {
			t.Fatalf("packet took %v after clearing propagation delay", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("packet never arrived after reconfig")
	}
}

// TestLinkECNMarks: ECN-capable packets entering a queue past the
// threshold get CE-marked at the congestion point.
func TestLinkECNMarks(t *testing.T) {
	f := New()
	var ce atomic.Int64
	var n atomic.Int64
	done := make(chan struct{})
	const total = 32
	f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(pkt *protocol.Packet) {
		if pkt.ECN == protocol.ECNCE {
			ce.Add(1)
		}
		if n.Add(1) == total {
			close(done)
		}
	})
	nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
	f.SetLink(LinkConfig{RateBps: 5e6, QueueCap: total + 1, ECNThreshold: 4})

	for i := 0; i < total; i++ {
		pkt := mkPkt(protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2), 1024)
		pkt.ECN = protocol.ECNECT0
		nic.Output(pkt)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("packets never all arrived")
	}
	if ce.Load() == 0 || f.CEMarks.Load() == 0 {
		t.Fatal("no CE marks despite queue past the ECN threshold")
	}
}

// TestReseedReproducesLossPattern: after Reseed with the same seed, the
// uniform-loss process makes identical per-packet decisions — the
// determinism contract the scenario engine depends on.
func TestReseedReproducesLossPattern(t *testing.T) {
	pattern := func(seed int64) []bool {
		f := New()
		var mu sync.Mutex
		var seen []bool
		f.Attach(protocol.MakeIPv4(10, 0, 0, 2), func(pkt *protocol.Packet) {
			mu.Lock()
			seen = append(seen, true)
			mu.Unlock()
		})
		nic := f.Attach(protocol.MakeIPv4(10, 0, 0, 1), func(*protocol.Packet) {})
		f.Reseed(seed)
		f.SetLossRate(0.5)
		var out []bool
		for i := 0; i < 200; i++ {
			mu.Lock()
			before := len(seen)
			mu.Unlock()
			nic.Output(mkPkt(protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2), 64))
			mu.Lock()
			out = append(out, len(seen) > before)
			mu.Unlock()
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("loss decision %d diverged across identically-seeded runs", i)
		}
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical loss patterns (seed not wired through)")
	}
}
