// Package trace captures packets crossing the simulated network or the
// live fabric into standard pcap files (readable by tcpdump/Wireshark),
// plus an in-memory recorder for assertions in tests. Wire bytes come
// from protocol.Marshal, so captures show real Ethernet/IPv4/TCP frames
// with valid checksums.
package trace

import (
	"encoding/binary"
	"io"
	"sync"

	"repro/internal/protocol"
)

// pcap global header constants (classic little-endian pcap, LINKTYPE_ETHERNET).
const (
	pcapMagic   = 0xa1b2c3d4
	pcapVMajor  = 2
	pcapVMinor  = 4
	pcapSnapLen = 65535
	pcapEthLink = 1
)

// Writer streams packets into a pcap file.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	n   uint64
	err error
}

// NewWriter writes the pcap global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagic)
	le.PutUint16(hdr[4:], pcapVMajor)
	le.PutUint16(hdr[6:], pcapVMinor)
	// thiszone, sigfigs = 0
	le.PutUint32(hdr[16:], pcapSnapLen)
	le.PutUint32(hdr[20:], pcapEthLink)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// WritePacket records one packet at the given timestamp (nanoseconds).
func (p *Writer) WritePacket(tsNanos int64, pkt *protocol.Packet) error {
	frame := protocol.Marshal(pkt)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.err != nil {
		return p.err
	}
	var rec [16]byte
	le := binary.LittleEndian
	le.PutUint32(rec[0:], uint32(tsNanos/1e9))
	le.PutUint32(rec[4:], uint32(tsNanos%1e9/1000)) // microseconds
	le.PutUint32(rec[8:], uint32(len(frame)))
	le.PutUint32(rec[12:], uint32(len(frame)))
	if err := p.writeFull(rec[:]); err != nil {
		return err
	}
	if err := p.writeFull(frame); err != nil {
		return err
	}
	p.n++
	return nil
}

// writeFull writes b entirely or latches the failure, converting a
// short write (n < len(b) with a nil error, which would silently
// truncate the capture mid-record) into io.ErrShortWrite. Caller holds
// p.mu.
func (p *Writer) writeFull(b []byte) error {
	n, err := p.w.Write(b)
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		p.err = err
	}
	return err
}

// Err returns the first error the writer encountered (nil if none).
// Taps such as Fabric.CaptureTo ignore WritePacket's per-call return;
// Err lets them surface a latched failure — a capture that stopped
// mid-stream — when the capture is closed.
func (p *Writer) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Count returns the number of packets written.
func (p *Writer) Count() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Record is one captured packet.
type Record struct {
	TsNanos int64
	Packet  *protocol.Packet
}

// Reader parses a pcap stream written by Writer (or any classic
// little-endian Ethernet pcap containing IPv4/TCP frames).
type Reader struct {
	r io.Reader
}

// NewReader validates the global header.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, io.ErrUnexpectedEOF
	}
	return &Reader{r: r}, nil
}

// Next returns the next packet, or io.EOF.
func (r *Reader) Next() (Record, error) {
	var rec [16]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	le := binary.LittleEndian
	ts := int64(le.Uint32(rec[0:]))*1e9 + int64(le.Uint32(rec[4:]))*1000
	n := le.Uint32(rec[8:])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return Record{}, err
	}
	pkt, err := protocol.Parse(buf)
	if err != nil {
		return Record{}, err
	}
	return Record{TsNanos: ts, Packet: pkt}, nil
}

// Recorder collects packets in memory for test assertions; it doubles as
// a tap function compatible with fabric and netsim hooks.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
}

// Tap records one packet (safe for concurrent use).
func (c *Recorder) Tap(tsNanos int64, pkt *protocol.Packet) {
	c.mu.Lock()
	c.recs = append(c.recs, Record{TsNanos: tsNanos, Packet: pkt.Clone()})
	c.mu.Unlock()
}

// Records returns a snapshot of the captured packets.
func (c *Recorder) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.recs...)
}

// Count returns how many packets were captured.
func (c *Recorder) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.recs)
}
