package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/protocol"
)

func samplePkt(seq uint32, payload string) *protocol.Packet {
	return &protocol.Packet{
		SrcMAC: protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 1)),
		DstMAC: protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 2)),
		SrcIP:  protocol.MakeIPv4(10, 0, 0, 1), DstIP: protocol.MakeIPv4(10, 0, 0, 2),
		SrcPort: 1234, DstPort: 80,
		Seq: seq, Flags: protocol.FlagACK | protocol.FlagPSH,
		Window: 100, Payload: []byte(payload), ECN: protocol.ECNECT0,
		HasTS: true, TSVal: 7, TSEcr: 9,
	}
}

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*protocol.Packet{samplePkt(100, "alpha"), samplePkt(105, "beta")}
	for i, p := range pkts {
		if err := w.WritePacket(int64(i+1)*1_000_000, p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 2 {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range pkts {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		got := rec.Packet
		if got.Seq != want.Seq || string(got.Payload) != string(want.Payload) {
			t.Fatalf("record %d mismatch: %+v", i, got)
		}
		if got.TSVal != 7 || !got.HasTS {
			t.Fatal("timestamp option lost")
		}
		// Timestamps survive at microsecond resolution.
		if rec.TsNanos != int64(i+1)*1_000_000 {
			t.Fatalf("timestamp %d", rec.TsNanos)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestPcapGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length %d", len(b))
	}
	if b[0] != 0xd4 || b[1] != 0xc3 || b[2] != 0xb2 || b[3] != 0xa1 {
		t.Fatal("magic bytes wrong (little-endian pcap expected)")
	}
	// Link type Ethernet at offset 20.
	if b[20] != 1 {
		t.Fatal("link type must be Ethernet")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestRecorder(t *testing.T) {
	var rec Recorder
	p := samplePkt(1, "x")
	rec.Tap(5, p)
	p.Seq = 999 // recorder must have cloned
	recs := rec.Records()
	if len(recs) != 1 || rec.Count() != 1 {
		t.Fatal("count")
	}
	if recs[0].Packet.Seq != 1 || recs[0].TsNanos != 5 {
		t.Fatalf("record %+v", recs[0])
	}
}
