package fastpath

import (
	"testing"
	"time"

	"repro/internal/protocol"
	"repro/internal/telemetry"
)

// TestWatchdogDegradedTransitions drives the heartbeat watchdog through
// a full outage: a stale heartbeat flips the engine into degraded mode
// (counted, flight-recorded), and a resumed heartbeat flips it back,
// observing the outage duration into the histogram.
func TestWatchdogDegradedTransitions(t *testing.T) {
	nic := &stubNIC{}
	telem := telemetry.New(telemetry.Config{Enabled: true}, 1)
	e := NewEngine(nic, Config{
		LocalIP:         protocol.MakeIPv4(10, 0, 0, 1),
		LocalMAC:        protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 1)),
		MaxCores:        1,
		SlowPathTimeout: 20 * time.Millisecond,
		Telemetry:       telem,
	})
	e.Start()
	defer e.Stop()

	if e.Degraded() {
		t.Fatal("degraded immediately after start")
	}

	// Nobody beats: the watchdog must declare the slow path down.
	deadline := time.Now().Add(2 * time.Second)
	for !e.Degraded() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !e.Degraded() {
		t.Fatal("watchdog never entered degraded mode")
	}
	if st := e.Outages(); st.Outages != 1 || !st.Degraded {
		t.Fatalf("outage stats during outage: %+v", st)
	}

	// The heartbeat resumes (a stall ending, or a warm restart).
	deadline = time.Now().Add(2 * time.Second)
	for e.Degraded() && time.Now().Before(deadline) {
		e.SlowpathBeat()
		time.Sleep(time.Millisecond)
	}
	if e.Degraded() {
		t.Fatal("watchdog never recovered")
	}
	st := e.Outages()
	if st.Outages != 1 || st.Degraded || st.Total <= 0 {
		t.Fatalf("outage stats after recovery: %+v", st)
	}
	h := e.OutageHistogram()
	if h == nil || h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("outage histogram not observed: %+v", h)
	}

	// Both transitions are on the synthetic slow-path flight ring.
	evs := telem.Recorder.Ring("slowpath").Events()
	var sawDown, sawUp bool
	for _, ev := range evs {
		switch ev.Kind {
		case telemetry.FEDegraded:
			sawDown = true
		case telemetry.FERecovered:
			sawUp = true
		}
	}
	if !sawDown || !sawUp {
		t.Fatalf("flight ring missing transitions (down=%v up=%v)", sawDown, sawUp)
	}
}

// TestDegradedShedsSynsKeepsQueueBounded: while the slow path is down
// nobody drains the exception queue, so bare SYNs must be shed at the
// door (counted separately from healthy admission control) and the
// queue must stay bounded — established-flow exceptions are admitted
// until the queue is full, then dropped with ExcqDrop, never enqueued
// past capacity.
func TestDegradedShedsSynsKeepsQueueBounded(t *testing.T) {
	e, _ := testEngine()
	e.degraded.Store(true)

	syn := &protocol.Packet{
		SrcIP: protocol.MakeIPv4(10, 0, 0, 2), DstIP: e.cfg.LocalIP,
		SrcPort: 5000, DstPort: 80, Flags: protocol.FlagSYN, Seq: 1,
	}
	fin := &protocol.Packet{
		SrcIP: protocol.MakeIPv4(10, 0, 0, 2), DstIP: e.cfg.LocalIP,
		SrcPort: 5001, DstPort: 80, Flags: protocol.FlagFIN | protocol.FlagACK, Seq: 1,
	}

	e.toSlowPath(e.cores[0], syn)
	if got := e.cores[0].stats.SynShedDown.Load(); got != 1 {
		t.Fatalf("SynShedDown = %d, want 1", got)
	}
	if e.excq.Len() != 0 {
		t.Fatal("degraded SYN was enqueued")
	}
	if d := e.Drops(); d.SynShedDown != 1 || d.SynShed != 0 {
		t.Fatalf("drops: %+v", d)
	}

	// Established-flow exceptions still queue (the restart will drain
	// them), but only up to capacity.
	capacity := e.excq.Cap()
	for i := 0; i < capacity+10; i++ {
		e.toSlowPath(e.cores[0], fin)
	}
	if got := e.excq.Len(); got != capacity {
		t.Fatalf("exception queue len %d, want bounded at %d", got, capacity)
	}
	if got := e.cores[0].stats.ExcqDrop.Load(); got != 10 {
		t.Fatalf("ExcqDrop = %d, want 10", got)
	}

	// Recovery: SYNs are admitted again.
	e.degraded.Store(false)
	for {
		if _, ok := e.excq.Dequeue(); !ok {
			break
		}
	}
	e.toSlowPath(e.cores[0], syn)
	if e.excq.Len() != 1 {
		t.Fatal("SYN not admitted after recovery")
	}
	if got := e.cores[0].stats.SynShedDown.Load(); got != 1 {
		t.Fatalf("SynShedDown advanced after recovery: %d", got)
	}
}

// TestInactiveCoreDrainsSteeredPackets: after SetActiveCores shrinks the
// RSS set, a packet already steered to a now-inactive core must still
// be processed there (§3.4 lazy drain), with the drain counted.
func TestInactiveCoreDrainsSteeredPackets(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	e.SetActiveCores(1)

	payload := make([]byte, 100)
	pkt := dataPkt(f, f.AckNo, payload)
	e.processRx(e.cores[1], pkt)

	if got := e.cores[1].stats.InactiveDrain.Load(); got != 1 {
		t.Fatalf("InactiveDrain = %d, want 1", got)
	}
	if got := e.cores[1].stats.WrongCore.Load(); got != 1 {
		t.Fatalf("WrongCore = %d, want 1", got)
	}
	f.Lock()
	ack := f.AckNo
	f.Unlock()
	if ack != 5000+uint32(len(payload)) {
		t.Fatalf("packet on inactive core not processed: AckNo = %d", ack)
	}

	// A packet steered to an active core is not a drain.
	pkt2 := dataPkt(f, f.AckNo, payload)
	e.processRx(e.cores[0], pkt2)
	if got := e.cores[1].stats.InactiveDrain.Load() + e.cores[0].stats.InactiveDrain.Load(); got != 1 {
		t.Fatalf("InactiveDrain = %d after active-core packet, want 1", got)
	}
}
