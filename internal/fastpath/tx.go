package fastpath

import (
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/telemetry"
)

// transmit sends as much pending payload as the peer window and the
// slow-path-configured rate bucket allow (§3.1 common-case send:
// segmentation, header production, timestamps). Caller holds the flow
// lock.
func (e *Engine) transmit(c *core, f *flowstate.Flow) {
	if f.FinSent || f.Aborted {
		return
	}
	for {
		pending := f.TxPending()
		if pending <= 0 {
			return
		}
		// Peer receive window (KiB units; fall back to one unit before
		// the first ack arrives so the connection can start).
		wnd := int(f.Window) * WindowUnit
		if wnd == 0 {
			wnd = WindowUnit
		}
		avail := wnd - int(f.TxSent)
		if avail <= 0 {
			return // window-limited; the next ack resumes transmission
		}
		n := e.cfg.MSS
		if f.MSSCap != 0 && int(f.MSSCap) < n {
			n = int(f.MSSCap)
		}
		if n > pending {
			n = pending
		}
		if n > avail {
			n = avail
		}

		// Rate enforcement: congestion control policy is slow-path
		// business, but the fast path enforces it.
		if bkt := e.Bucket(f.Bucket); bkt != nil {
			wire := n + protocol.EthHeaderLen + protocol.IPv4HeaderLen + protocol.TCPHeaderLen + protocol.TSOptLen
			if !bkt.Take(e.nowNanos(), wire) {
				// Out of tokens: park the flow for a pacing retry.
				c.pending = append(c.pending, f)
				return
			}
		}

		payload := make([]byte, n)
		f.TxBuf.ReadAt(f.TxBuf.Tail()+f.TxSent, payload)
		pkt := &protocol.Packet{
			SrcMAC: e.cfg.LocalMAC, DstMAC: f.PeerMAC,
			SrcIP: f.LocalIP, DstIP: f.PeerIP,
			SrcPort: f.LocalPort, DstPort: f.PeerPort,
			Flags:   protocol.FlagACK | protocol.FlagPSH,
			Seq:     f.SeqNo,
			Ack:     f.AckNo,
			Window:  e.advertisedWindow(f),
			ECN:     protocol.ECNECT0,
			HasTS:   true,
			TSVal:   e.NowMicros(),
			Payload: payload,
		}
		f.SeqNo += uint32(n)
		f.TxSent += uint32(n)
		c.stats.TxPackets.Add(1)
		c.stats.TxBytes.Add(uint64(n))
		if f.Rec != nil {
			f.Rec.Record(telemetry.FESegTx, pkt.Seq, pkt.Ack, uint32(n), 0)
		}
		e.nic.Output(pkt)
	}
}
