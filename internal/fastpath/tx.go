package fastpath

import (
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/telemetry"
)

// transmit sends as much pending payload as the peer window and the
// slow-path-configured rate bucket allow (§3.1 common-case send:
// segmentation, header production, timestamps). Caller holds the flow
// lock.
func (e *Engine) transmit(c *core, f *flowstate.Flow) {
	if f.FinSent || f.Aborted {
		return
	}
	for {
		pending := f.TxPending()
		if pending <= 0 {
			return
		}
		// Peer receive window (KiB units). A genuine zero window stalls
		// transmission: the slow path's persist timer owns the stall
		// (1-byte probes with backoff), and the probe ACK carrying the
		// reopened window restarts TX. Every flow is installed with the
		// window from the handshake segment, so zero here always means
		// the peer said zero — not "unknown".
		avail := int(f.Window)*WindowUnit - int(f.TxSent)
		if avail <= 0 {
			return // window-limited; the next window update resumes transmission
		}
		n := e.cfg.MSS
		if f.MSSCap != 0 && int(f.MSSCap) < n {
			n = int(f.MSSCap)
		}
		if n > pending {
			n = pending
		}
		if n > avail {
			n = avail
		}

		// Rate enforcement: congestion control policy is slow-path
		// business, but the fast path enforces it.
		if bkt := e.Bucket(f.Bucket); bkt != nil {
			wire := n + protocol.EthHeaderLen + protocol.IPv4HeaderLen + protocol.TCPHeaderLen + protocol.TSOptLen
			if !bkt.Take(e.nowNanos(), wire) {
				// Out of tokens: park the flow for a pacing retry.
				c.pending = append(c.pending, f)
				return
			}
		}

		payload := make([]byte, n)
		f.TxBuf.ReadAt(f.TxBuf.Tail()+f.TxSent, payload)
		pkt := &protocol.Packet{
			SrcMAC: e.cfg.LocalMAC, DstMAC: f.PeerMAC,
			SrcIP: f.LocalIP, DstIP: f.PeerIP,
			SrcPort: f.LocalPort, DstPort: f.PeerPort,
			Flags:   protocol.FlagACK | protocol.FlagPSH,
			Seq:     f.SeqNo,
			Ack:     f.AckNo,
			Window:  e.advertisedWindow(f),
			ECN:     protocol.ECNECT0,
			HasTS:   true,
			TSVal:   e.NowMicros(),
			Payload: payload,
		}
		f.SeqNo += uint32(n)
		f.TxSent += uint32(n)
		c.stats.TxPackets.Add(1)
		c.stats.TxBytes.Add(uint64(n))
		if f.Rec != nil {
			f.Rec.Record(telemetry.FESegTx, pkt.Seq, pkt.Ack, uint32(n), 0)
		}
		e.nic.Output(pkt)
	}
}
