// Package fastpath implements the TAS fast path for the live engine:
// dedicated goroutine "cores" that poll NIC receive rings and
// application context queues, execute common-case TCP RX/TX processing
// against the minimal per-flow state of Table 3, enforce per-flow rate
// limits set by the slow path, generate acknowledgements, handle one
// interval of out-of-order data plus duplicate-ACK fast recovery, and
// forward everything else to the slow path as exceptions (§3.1).
package fastpath

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowstate"
	"repro/internal/shmring"
)

// EventKind discriminates context-queue events from the fast path (and
// slow path) to an application context.
type EventKind uint8

// Context-queue event kinds.
const (
	// EvData: Bytes of new in-order payload are available in the flow's
	// receive buffer.
	EvData EventKind = iota + 1
	// EvTxAcked: Bytes of transmit-buffer space were freed by
	// acknowledgements (reliably delivered).
	EvTxAcked
	// EvAccepted: a new connection was established on a listener; the
	// slow path posts this. Opaque identifies the listener.
	EvAccepted
	// EvConnected: an outbound connect completed; Bytes != 0 encodes a
	// connect error code (ConnRefused, ConnTimedOut).
	EvConnected
	// EvClosed: the peer closed the connection (all data delivered).
	EvClosed
	// EvAborted: the connection failed — the slow path exhausted its
	// retransmission budget (dead peer / partition) or the peer reset.
	// In-flight data may be lost; subsequent Send/Recv return errors.
	EvAborted
)

// Abort cause codes carried in EvAborted.Bytes (0 = generic: RST or
// retransmission-budget exhaustion).
const (
	// AbortPeerDead: the slow path's liveness probes — zero-window
	// persist probes or keepalives — exhausted their budget without any
	// response; the peer is presumed silently dead. libtas surfaces
	// this as ErrPeerDead rather than the generic reset error.
	AbortPeerDead uint32 = 1
)

// Connect error codes carried in EvConnected.Bytes.
const (
	// ConnRefused: the peer answered our SYN with RST (no listener).
	ConnRefused uint32 = 1
	// ConnTimedOut: the handshake retry budget was exhausted without an
	// answer (lost SYNs, partitioned link, dead peer).
	ConnTimedOut uint32 = 2
	// ConnBackpressure: local resource pools or the app's quota were
	// exhausted at establishment; the slow path refused the connection.
	ConnBackpressure uint32 = 3
)

// Event is one context-queue entry (fast path -> application).
type Event struct {
	Kind   EventKind
	Opaque uint64          // application-defined flow identifier
	Bytes  uint32          // payload bytes / freed bytes / error code
	Flow   *flowstate.Flow // set for EvAccepted and EvConnected
}

// TX-descriptor opcodes. The application side is untrusted (§3.3): a
// crashed or malicious app can write any bit pattern into its TX queue,
// so the fast path treats descriptors as wire input — it validates the
// opcode, the flow reference, and the byte count, and drops-and-counts
// anything malformed instead of acting on it.
const (
	// OpTx: Bytes of new payload were appended to the flow's transmit
	// buffer (§3.1 common-case send). The only valid opcode today.
	OpTx uint8 = 1
)

// TxCmd is one application -> fast-path queue descriptor.
type TxCmd struct {
	Op    uint8
	Flow  *flowstate.Flow
	Bytes uint32
}

// Context is the shared-memory attachment point of one application
// thread: a queue pair per fast-path core (to avoid cross-core
// synchronization), plus a wakeup channel the application blocks on
// (the epoll/eventfd analogue).
type Context struct {
	ID int

	rxq []*shmring.SPSC[Event] // per-core: fast path produces, app consumes
	txq []*shmring.MPSC[TxCmd] // per-core: app threads produce (many), fast path consumes

	// Wakeup is a broadcast: Wake closes the current channel (releasing
	// every blocked waiter) and installs a fresh one. A context may have
	// several application goroutines blocked at once — per-connection
	// readers sharing one accept context — and a single-token scheme
	// loses wakeups: one waiter consumes the token, drains the event
	// queue for everyone, and the rest sleep forever.
	wakeMu   sync.Mutex
	wake     chan struct{}
	sleepers atomic.Int32

	// DroppedEvents counts events the fast path could not post because
	// the queue was full (the app will observe the data on its next
	// poll of the payload buffer).
	DroppedEvents atomic.Uint64

	// lastBeat is the unix-nano timestamp of the most recent application
	// heartbeat; 0 means liveness tracking is not enabled for this
	// context (raw low-level users) and the reaper leaves it alone.
	lastBeat atomic.Int64
	// dead marks a context whose application the slow path has declared
	// crashed: its resources have been (or are being) reclaimed, and the
	// fast path ignores its queues.
	dead atomic.Bool
}

// NewContext allocates a context spanning `cores` fast-path cores with
// the given per-core queue capacity.
func NewContext(id, cores, qcap int) *Context {
	c := &Context{ID: id, wake: make(chan struct{})}
	for i := 0; i < cores; i++ {
		c.rxq = append(c.rxq, shmring.NewSPSC[Event](qcap))
		c.txq = append(c.txq, shmring.NewMPSC[TxCmd](qcap))
	}
	return c
}

// Cores returns the number of per-core queue pairs.
func (c *Context) Cores() int { return len(c.rxq) }

// EventQueueLen returns the occupancy of the context's per-core event
// (RX) queue toward the application (scrape-time gauge reads).
func (c *Context) EventQueueLen(core int) int { return c.rxq[core].Len() }

// TxQueueLen returns the occupancy of the context's per-core TX command
// queue toward the fast path.
func (c *Context) TxQueueLen(core int) int { return c.txq[core].Len() }

// PostEvent enqueues an event from core onto the context's RX queue and
// wakes the application if it is blocked. It reports false if the queue
// is full (the fast path informs the stack on a later packet, §3.1).
func (c *Context) PostEvent(core int, ev Event) bool {
	if c.dead.Load() {
		// The application is gone; nobody will ever poll this queue.
		return false
	}
	if !c.rxq[core].Enqueue(ev) {
		c.DroppedEvents.Add(1)
		return false
	}
	c.Wake()
	return true
}

// Wake unblocks every waiting application goroutine. The fast-path
// cost when nobody is blocked is a single atomic load.
func (c *Context) Wake() {
	if c.sleepers.Load() == 0 {
		return
	}
	c.wakeMu.Lock()
	close(c.wake)
	c.wake = make(chan struct{})
	c.wakeMu.Unlock()
}

// PushTx enqueues a TX command toward the given core. It reports false
// if the queue is full.
func (c *Context) PushTx(core int, cmd TxCmd) bool {
	return c.txq[core].Enqueue(cmd)
}

// PollEvents drains up to len(out) events across the context's per-core
// queues, returning the count.
func (c *Context) PollEvents(out []Event) int {
	n := 0
	for _, q := range c.rxq {
		if n == len(out) {
			break
		}
		n += q.DequeueBatch(out[n:])
	}
	return n
}

// Sleep registers the caller as a blocked waiter and returns the
// current wake channel. The caller must re-poll once after calling
// Sleep and before blocking, to avoid lost wakeups, and must pair every
// Sleep with exactly one Awake.
func (c *Context) Sleep() <-chan struct{} {
	c.sleepers.Add(1)
	c.wakeMu.Lock()
	ch := c.wake
	c.wakeMu.Unlock()
	return ch
}

// Awake deregisters a waiter after the application resumes polling.
func (c *Context) Awake() { c.sleepers.Add(-1) }

// Beat records an application heartbeat. In the paper the kernel tells
// TAS when an application process dies; in this in-process reproduction
// each libtas context runs a keepalive goroutine standing in for the
// live process, and the slow path's reaper declares the app dead when
// heartbeats stop arriving.
func (c *Context) Beat() { c.lastBeat.Store(time.Now().UnixNano()) }

// LastBeat returns the unix-nano time of the most recent heartbeat
// (0 = liveness tracking never enabled).
func (c *Context) LastBeat() int64 { return c.lastBeat.Load() }

// MarkDead flags the context as belonging to a crashed application.
func (c *Context) MarkDead() { c.dead.Store(true) }

// Dead reports whether the slow path has declared this context's
// application crashed and reaped its resources.
func (c *Context) Dead() bool { return c.dead.Load() }
