package fastpath

import (
	"sync"
	"testing"
	"time"

	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/shmring"
)

// stubNIC captures transmitted packets.
type stubNIC struct{ out []*protocol.Packet }

func (n *stubNIC) Output(p *protocol.Packet) { n.out = append(n.out, p) }

func testEngine() (*Engine, *stubNIC) {
	nic := &stubNIC{}
	e := NewEngine(nic, Config{
		LocalIP:  protocol.MakeIPv4(10, 0, 0, 1),
		LocalMAC: protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 1)),
		MaxCores: 2,
	})
	return e, nic
}

func testFlow(e *Engine) *flowstate.Flow {
	f := &flowstate.Flow{
		Opaque:    7,
		LocalIP:   e.cfg.LocalIP,
		LocalPort: 80,
		PeerIP:    protocol.MakeIPv4(10, 0, 0, 2),
		PeerPort:  5000,
		PeerMAC:   protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 2)),
		SeqNo:     1000,
		AckNo:     5000,
		Window:    64, // 64 KiB
		RxBuf:     shmring.NewPayloadBuffer(64 << 10),
		TxBuf:     shmring.NewPayloadBuffer(64 << 10),
	}
	f.Bucket = e.AllocBucket()
	e.Table.Insert(f)
	return f
}

func dataPkt(f *flowstate.Flow, seq uint32, payload []byte) *protocol.Packet {
	return &protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagACK, Seq: seq, Ack: f.SeqNo,
		Window: 64, Payload: payload, ECN: protocol.ECNECT0,
		HasTS: true, TSVal: 42,
	}
}

func ackPkt(f *flowstate.Flow, ack uint32) *protocol.Packet {
	return &protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagACK, Seq: f.AckNo, Ack: ack, Window: 64,
		ECN: protocol.ECNECT0,
	}
}

func TestRxInOrderDeposit(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	ctx := NewContext(0, 2, 64)
	e.RegisterContext(ctx)
	f.Context = 0

	e.processRx(e.cores[0], dataPkt(f, 5000, []byte("hello")))
	if f.AckNo != 5005 {
		t.Fatalf("AckNo = %d, want 5005", f.AckNo)
	}
	buf := make([]byte, 16)
	if n := f.RxBuf.Read(buf); n != 5 || string(buf[:5]) != "hello" {
		t.Fatalf("RxBuf = %q", buf[:n])
	}
	// ACK generated with echoed timestamp.
	if len(nic.out) != 1 {
		t.Fatalf("packets out = %d", len(nic.out))
	}
	ack := nic.out[0]
	if !ack.Flags.Has(protocol.FlagACK) || ack.Ack != 5005 {
		t.Fatalf("ack = %+v", ack)
	}
	if !ack.HasTS || ack.TSEcr != 42 {
		t.Fatal("timestamp echo missing")
	}
	// Data event posted.
	var evs [8]Event
	if n := ctx.PollEvents(evs[:]); n != 1 || evs[0].Kind != EvData || evs[0].Bytes != 5 || evs[0].Opaque != 7 {
		t.Fatalf("events = %v (%d)", evs[:n], n)
	}
}

func TestRxDuplicateReAcks(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	e.processRx(e.cores[0], dataPkt(f, 5000, []byte("abcd")))
	e.processRx(e.cores[0], dataPkt(f, 5000, []byte("abcd"))) // dup
	if f.AckNo != 5004 {
		t.Fatalf("AckNo = %d", f.AckNo)
	}
	if len(nic.out) != 2 || nic.out[1].Ack != 5004 {
		t.Fatal("duplicate should be re-acked")
	}
	if f.RxBuf.Used() != 4 {
		t.Fatal("duplicate must not deposit twice")
	}
}

func TestRxPartialOverlapTrims(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	e.processRx(e.cores[0], dataPkt(f, 5000, []byte("abcd")))
	// Overlapping retransmission [5002, 5008).
	e.processRx(e.cores[0], dataPkt(f, 5002, []byte("cdefgh")))
	if f.AckNo != 5008 {
		t.Fatalf("AckNo = %d, want 5008", f.AckNo)
	}
	buf := make([]byte, 16)
	n := f.RxBuf.Read(buf)
	if string(buf[:n]) != "abcdefgh" {
		t.Fatalf("stream = %q", buf[:n])
	}
}

func TestRxOutOfOrderOneInterval(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	ctx := NewContext(0, 2, 64)
	e.RegisterContext(ctx)

	// Gap: [5000,5004) missing; deliver [5004,5008).
	e.processRx(e.cores[0], dataPkt(f, 5004, []byte("BBBB")))
	if f.AckNo != 5000 || f.OooLen != 4 || f.OooStart != 5004 {
		t.Fatalf("ooo state: ack=%d start=%d len=%d", f.AckNo, f.OooStart, f.OooLen)
	}
	if nic.out[0].Ack != 5000 {
		t.Fatal("ooo must generate dup ack at gap")
	}
	// Extend contiguously [5008,5012).
	e.processRx(e.cores[0], dataPkt(f, 5008, []byte("CCCC")))
	if f.OooLen != 8 {
		t.Fatalf("interval should extend, len=%d", f.OooLen)
	}
	// Non-adjacent [5016,5020) dropped.
	e.processRx(e.cores[0], dataPkt(f, 5016, []byte("EEEE")))
	if f.OooLen != 8 {
		t.Fatalf("second interval must not be tracked, len=%d", f.OooLen)
	}
	if e.cores[0].stats.OooDropped.Load() != 1 {
		t.Fatal("non-adjacent OOO should count as dropped")
	}
	// Fill the gap: everything through 5012 delivered as one unit.
	e.processRx(e.cores[0], dataPkt(f, 5000, []byte("AAAA")))
	if f.AckNo != 5012 {
		t.Fatalf("after gap fill AckNo = %d, want 5012", f.AckNo)
	}
	if f.OooLen != 0 {
		t.Fatal("interval should reset after merge")
	}
	buf := make([]byte, 16)
	n := f.RxBuf.Read(buf)
	if string(buf[:n]) != "AAAABBBBCCCC" {
		t.Fatalf("stream = %q", buf[:n])
	}
}

func TestAckFreesTxBufferAndNotifies(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	ctx := NewContext(0, 2, 64)
	e.RegisterContext(ctx)

	f.TxBuf.Write(make([]byte, 3000))
	f.Lock()
	e.transmit(e.cores[0], f)
	f.Unlock()
	if f.TxSent != 3000 {
		t.Fatalf("TxSent = %d", f.TxSent)
	}
	e.processRx(e.cores[0], ackPkt(f, 1000+1448))
	if f.TxSent != 3000-1448 {
		t.Fatalf("TxSent after ack = %d", f.TxSent)
	}
	if f.TxBuf.Used() != 3000-1448 {
		t.Fatalf("TxBuf used = %d", f.TxBuf.Used())
	}
	if f.CntAckB != 1448 {
		t.Fatalf("CntAckB = %d", f.CntAckB)
	}
	var evs [8]Event
	n := ctx.PollEvents(evs[:])
	if n != 1 || evs[n-1].Kind != EvTxAcked || evs[n-1].Bytes != 1448 {
		t.Fatalf("events = %v", evs[:n])
	}
}

func TestEcnEchoCountsMarkedBytes(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	f.TxBuf.Write(make([]byte, 1448))
	f.Lock()
	e.transmit(e.cores[0], f)
	f.Unlock()
	ack := ackPkt(f, 1000+1448)
	ack.Flags |= protocol.FlagECE
	e.processRx(e.cores[0], ack)
	if f.CntEcnB != 1448 {
		t.Fatalf("CntEcnB = %d", f.CntEcnB)
	}
}

func TestDupAcksTriggerFastRecovery(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	f.TxBuf.Write(make([]byte, 5000))
	f.Lock()
	e.transmit(e.cores[0], f)
	f.Unlock()
	sent := len(nic.out)
	if f.TxSent != 5000 {
		t.Fatalf("TxSent = %d", f.TxSent)
	}
	for i := 0; i < 3; i++ {
		e.processRx(e.cores[0], ackPkt(f, 1000)) // ack == una: duplicate
	}
	if f.CntFrexmits != 1 {
		t.Fatalf("frexmits = %d", f.CntFrexmits)
	}
	// Go-back-N: everything retransmitted.
	if len(nic.out) < sent+4 {
		t.Fatalf("expected retransmissions, out=%d (was %d)", len(nic.out), sent)
	}
	if f.TxSent != 5000 {
		t.Fatalf("after retransmit TxSent = %d", f.TxSent)
	}
}

func TestWindowUpdateNotCountedAsDupAck(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	f.TxBuf.Write(make([]byte, 2000))
	f.Lock()
	e.transmit(e.cores[0], f)
	f.Unlock()
	for i := 0; i < 5; i++ {
		upd := ackPkt(f, 1000)
		upd.Window = uint16(40 + i) // changing window: an update, not a dup
		e.processRx(e.cores[0], upd)
	}
	if f.CntFrexmits != 0 {
		t.Fatal("window updates must not trigger fast recovery")
	}
	if f.Window != 44 {
		t.Fatalf("window = %d, want 44", f.Window)
	}
}

func TestTransmitHonorsPeerWindow(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	f.Window = 2 // 2 KiB
	f.TxBuf.Write(make([]byte, 10000))
	f.Lock()
	e.transmit(e.cores[0], f)
	f.Unlock()
	if f.TxSent > 2048 {
		t.Fatalf("TxSent = %d exceeds 2KiB window", f.TxSent)
	}
	before := len(nic.out)
	// Window opens via ack.
	ack := ackPkt(f, 1000)
	ack.Ack = 1000 + f.TxSent
	ack.Window = 64
	e.processRx(e.cores[0], ack)
	if len(nic.out) <= before {
		t.Fatal("opened window should resume transmission")
	}
}

func TestTransmitHonorsRateBucket(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	e.Bucket(f.Bucket).SetRate(1) // ~0: effectively no tokens
	if !f.TxBuf.Write(make([]byte, 30000)) {
		t.Fatal("tx buffer write failed")
	}
	f.Lock()
	e.transmit(e.cores[0], f)
	f.Unlock()
	if len(nic.out) > 1 {
		t.Fatalf("rate-limited flow sent %d packets", len(nic.out))
	}
	if len(e.cores[0].pending) != 1 {
		t.Fatal("flow should be parked for pacing retry")
	}
	// Unlimited rate: retry drains.
	e.Bucket(f.Bucket).SetRate(0)
	e.retryPending(e.cores[0])
	if f.TxPending() != 0 {
		t.Fatalf("pending after unlimited retry = %d", f.TxPending())
	}
}

func TestExceptionsForwarded(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	syn := dataPkt(f, 5000, nil)
	syn.Flags = protocol.FlagSYN
	e.processRx(e.cores[0], syn)
	unknown := &protocol.Packet{
		SrcIP: protocol.MakeIPv4(9, 9, 9, 9), DstIP: e.cfg.LocalIP,
		SrcPort: 1, DstPort: 2, Flags: protocol.FlagACK,
	}
	e.processRx(e.cores[0], unknown)
	q, _ := e.Exceptions()
	if q.Len() != 2 {
		t.Fatalf("exceptions queued = %d", q.Len())
	}
	if e.cores[0].stats.Exceptions.Load() != 2 {
		t.Fatal("exception counter")
	}
}

func TestRxBufferFullDrops(t *testing.T) {
	e, nic := testEngine()
	f := testFlow(e)
	// Fill the rx buffer completely.
	f.RxBuf.Write(make([]byte, f.RxBuf.Size()))
	e.processRx(e.cores[0], dataPkt(f, 5000, []byte("xxxx")))
	if f.AckNo != 5000 {
		t.Fatal("full buffer must not advance ack")
	}
	if e.cores[0].stats.BufFullDrop.Load() != 1 {
		t.Fatal("drop not counted")
	}
	// Still acked (current ack number) so the sender learns the window.
	if len(nic.out) != 1 || nic.out[0].Window != 0 {
		t.Fatalf("expected zero-window ack, out=%v", nic.out)
	}
}

func TestBucketTokenMath(t *testing.T) {
	b := NewBucket(10000)
	b.SetRate(1000) // 1000 B/s
	if !b.Take(0, 0) {
		t.Fatal("zero take")
	}
	// At t=1s, 1000 tokens accumulated.
	if !b.Take(1e9, 1000) {
		t.Fatal("take after refill should succeed")
	}
	if b.Take(1e9, 1) {
		t.Fatal("bucket should be empty")
	}
	// Next availability for 500 bytes: +0.5s.
	if next := b.NextAvailable(1e9, 500); next < 1.49e9 || next > 1.51e9 {
		t.Fatalf("next = %d", next)
	}
	// Burst cap: after a long idle period tokens clamp to BurstMax.
	b2 := NewBucket(100)
	b2.SetRate(1e9)
	b2.Take(0, 0) // prime the refill clock at t=0
	if b2.Take(1e9, 101) {
		t.Fatal("burst cap exceeded")
	}
	if !b2.Take(1e9, 100) {
		t.Fatal("full burst should be available")
	}
	// Unlimited.
	b3 := NewBucket(10)
	if !b3.Take(0, 1<<30) {
		t.Fatal("unlimited bucket must always grant")
	}
	if b3.NextAvailable(5, 100) != 5 {
		t.Fatal("unlimited bucket next availability is now")
	}
}

func TestContextQueuesAndWake(t *testing.T) {
	ctx := NewContext(0, 2, 4)
	if ctx.Cores() != 2 {
		t.Fatal("cores")
	}
	// Fill core-0 queue to capacity.
	for i := 0; i < 4; i++ {
		if !ctx.PostEvent(0, Event{Kind: EvData, Bytes: uint32(i)}) {
			t.Fatalf("post %d failed", i)
		}
	}
	if ctx.PostEvent(0, Event{Kind: EvData}) {
		t.Fatal("full queue should reject")
	}
	if ctx.DroppedEvents.Load() != 1 {
		t.Fatal("drop not counted")
	}
	var evs [16]Event
	if n := ctx.PollEvents(evs[:]); n != 4 {
		t.Fatalf("polled %d", n)
	}
	// Wake semantics: only when sleeping.
	ch := ctx.Sleep()
	ctx.PostEvent(1, Event{Kind: EvData})
	select {
	case <-ch:
	default:
		t.Fatal("sleeping context should be woken")
	}
	ctx.Awake()
}

// TestWakeBroadcast: one Wake must release every blocked waiter, not
// just one. Regression test for the lost wakeup with several
// per-connection readers sharing one context: a single-token wake let
// one reader drain the event queue for everyone while the rest slept
// until their timeouts.
func TestWakeBroadcast(t *testing.T) {
	ctx := NewContext(0, 1, 8)
	ch1 := ctx.Sleep()
	ch2 := ctx.Sleep()
	ctx.PostEvent(0, Event{Kind: EvData})
	for i, ch := range []<-chan struct{}{ch1, ch2} {
		select {
		case <-ch:
		case <-time.After(time.Second):
			t.Fatalf("waiter %d not woken", i)
		}
	}
	ctx.Awake()
	ctx.Awake()
	// With no sleepers registered, Wake is a no-op on the new channel.
	ch3 := ctx.Sleep()
	select {
	case <-ch3:
		t.Fatal("woken without a Wake")
	default:
	}
	ctx.Awake()
}

func TestSetActiveCoresClamps(t *testing.T) {
	e, _ := testEngine()
	e.SetActiveCores(0)
	if e.ActiveCores() != 1 {
		t.Fatal("clamp low")
	}
	e.SetActiveCores(99)
	if e.ActiveCores() != 2 {
		t.Fatal("clamp high")
	}
}

func TestInputSteersByRSS(t *testing.T) {
	e, _ := testEngine()
	e.SetActiveCores(2)
	f := testFlow(e)
	pkt := dataPkt(f, 5000, []byte("x"))
	want := e.RSS.CoreForPacket(pkt)
	e.Input(pkt)
	if e.cores[want].rxRing.Len() != 1 {
		t.Fatalf("packet not on core %d ring", want)
	}
}

func TestInputDropsOnFullRing(t *testing.T) {
	nic := &stubNIC{}
	e := NewEngine(nic, Config{LocalIP: 1, MaxCores: 1, RxRingSize: 2})
	f := testFlow(e)
	for i := 0; i < 5; i++ {
		e.Input(dataPkt(f, 5000, []byte("x")))
	}
	if e.cores[0].stats.RxDrops.Load() != 3 {
		t.Fatalf("drops = %d", e.cores[0].stats.RxDrops.Load())
	}
}

// TestEngineLifecycle runs real cores: packets delivered via Input are
// processed by the core goroutines, idle cores block, and Input wakes
// them.
func TestEngineLifecycle(t *testing.T) {
	nic := &syncNIC{}
	e := NewEngine(nic, Config{
		LocalIP:      protocol.MakeIPv4(10, 0, 0, 1),
		LocalMAC:     protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 1)),
		MaxCores:     2,
		BlockTimeout: time.Millisecond,
	})
	f := testFlow(e)
	ctx := NewContext(0, 2, 256)
	e.RegisterContext(ctx)
	f.Context = 0
	e.Start()
	defer e.Stop()

	// Deliver data through the running engine.
	e.Input(dataPkt(f, 5000, []byte("engine")))
	deadline := time.Now().Add(5 * time.Second)
	for nic.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if nic.count() == 0 {
		t.Fatal("running core never generated the ack")
	}
	// Let cores go idle and block, then verify a late packet wakes them.
	time.Sleep(20 * time.Millisecond)
	blocked := e.cores[0].stats.Blocks.Load() + e.cores[1].stats.Blocks.Load()
	if blocked == 0 {
		t.Fatal("idle cores should block after BlockTimeout")
	}
	before := nic.count()
	e.Input(dataPkt(f, 5006, []byte("wake")))
	deadline = time.Now().Add(5 * time.Second)
	for nic.count() == before && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if nic.count() == before {
		t.Fatal("blocked core never woke for new input")
	}
	// TX via context command path on the running engine.
	f.Lock()
	f.TxBuf.Write([]byte("outbound"))
	f.Unlock()
	if !e.PushTxCmd(ctx, TxCmd{Op: OpTx, Flow: f, Bytes: 8}) {
		t.Fatal("tx cmd rejected")
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f.Lock()
		sent := f.TxSent
		f.Unlock()
		if sent == 8 {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("tx command never transmitted")
}

// syncNIC is a concurrency-safe stub NIC for lifecycle tests.
type syncNIC struct {
	mu  sync.Mutex
	out []*protocol.Packet
}

func (n *syncNIC) Output(p *protocol.Packet) {
	n.mu.Lock()
	n.out = append(n.out, p)
	n.mu.Unlock()
}

func (n *syncNIC) count() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.out)
}

func TestUtilizationSampling(t *testing.T) {
	e, _ := testEngine()
	// No loops run yet: utilization 0.
	if u := e.Utilization(0); u != 0 {
		t.Fatalf("idle utilization %v", u)
	}
	e.cores[0].stats.BusyLoops.Store(30)
	e.cores[0].stats.IdleLoops.Store(10)
	if u := e.Utilization(0); u != 0.75 {
		t.Fatalf("utilization %v, want 0.75", u)
	}
	// Counters reset after sampling.
	if u := e.Utilization(0); u != 0 {
		t.Fatalf("post-reset utilization %v", u)
	}
}
