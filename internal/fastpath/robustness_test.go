package fastpath

import (
	"testing"

	"repro/internal/protocol"
)

// TestContextSlotReuse exercises the context registry free-list: a slot
// released by UnregisterContext is handed to the next registration, the
// registry never grows, and a freed slot reads back nil until reused —
// the invariant the app reaper depends on to stop a dead application
// from leaking context slots.
func TestContextSlotReuse(t *testing.T) {
	e, _ := testEngine()
	a := NewContext(0, 2, 64)
	b := NewContext(0, 2, 64)
	idA := e.RegisterContext(a)
	idB := e.RegisterContext(b)
	if idA == idB {
		t.Fatalf("distinct contexts share id %d", idA)
	}

	e.UnregisterContext(a)
	if got := e.ContextByID(idA); got != nil {
		t.Fatalf("freed slot %d still resolves to %p", idA, got)
	}
	if got := e.ContextByID(idB); got != b {
		t.Fatalf("unrelated slot %d disturbed", idB)
	}

	// Double-unregister and stale-pointer unregister must be no-ops.
	e.UnregisterContext(a)
	c := NewContext(0, 2, 64)
	if id := e.RegisterContext(c); id != idA {
		t.Fatalf("new context got slot %d, want reused slot %d", id, idA)
	}
	e.UnregisterContext(a) // stale: slot now owned by c
	if got := e.ContextByID(idA); got != c {
		t.Fatalf("stale unregister evicted the new owner of slot %d", idA)
	}
	if n := len(e.Contexts()); n != 2 {
		t.Fatalf("registry grew to %d slots, want 2", n)
	}
}

// TestBucketSlotReuse does the same for rate-bucket slots: FreeBucket
// returns the slot to the pool, AllocBucket reuses it, double-free is
// harmless, and live buckets are undisturbed.
func TestBucketSlotReuse(t *testing.T) {
	e, _ := testEngine()
	base := e.AllocBucket()
	b1 := e.AllocBucket()
	e.FreeBucket(b1)
	if e.Bucket(b1) != nil {
		t.Fatalf("freed bucket %d still live", b1)
	}
	e.FreeBucket(b1) // double free: no-op
	if got := e.AllocBucket(); got != b1 {
		t.Fatalf("alloc after free got slot %d, want reused %d", got, b1)
	}
	if e.Bucket(base) == nil {
		t.Fatalf("unrelated bucket %d disturbed", base)
	}
}

// TestSynShedUnderExcqPressure verifies slow-path admission control:
// when the exception queue nears saturation, bare SYNs (new-connection
// attempts) are shed and counted while exceptions for established flows
// still get through, and a completely full queue counts ExcqDrop.
func TestSynShedUnderExcqPressure(t *testing.T) {
	e, _ := testEngine()
	syn := &protocol.Packet{
		SrcIP: protocol.MakeIPv4(10, 0, 0, 2), DstIP: e.cfg.LocalIP,
		SrcPort: 5000, DstPort: 80, Flags: protocol.FlagSYN, Seq: 1,
	}
	fin := &protocol.Packet{
		SrcIP: protocol.MakeIPv4(10, 0, 0, 2), DstIP: e.cfg.LocalIP,
		SrcPort: 5001, DstPort: 80, Flags: protocol.FlagFIN | protocol.FlagACK, Seq: 1,
	}

	// Below the 3/4 high-water mark a SYN is admitted.
	e.toSlowPath(e.cores[0], syn)
	if got := e.cores[0].stats.SynShed.Load(); got != 0 {
		t.Fatalf("SYN shed below high-water mark: %d", got)
	}
	if e.excq.Len() != 1 {
		t.Fatalf("admitted SYN not enqueued")
	}

	// Stuff the queue to the high-water mark.
	for e.excq.Len() < e.excq.Cap()*3/4 {
		if !e.excq.Enqueue(fin) {
			t.Fatal("could not stuff exception queue")
		}
	}
	depth := e.excq.Len()
	e.toSlowPath(e.cores[0], syn)
	if got := e.cores[0].stats.SynShed.Load(); got != 1 {
		t.Fatalf("SynShed = %d, want 1", got)
	}
	if e.excq.Len() != depth {
		t.Fatalf("shed SYN was enqueued anyway")
	}
	// Established-flow exceptions still get through at this depth.
	e.toSlowPath(e.cores[0], fin)
	if e.excq.Len() != depth+1 {
		t.Fatalf("non-SYN exception rejected below full")
	}

	// Fill completely: non-SYN exceptions now count ExcqDrop.
	for e.excq.Enqueue(fin) {
	}
	e.toSlowPath(e.cores[0], fin)
	if got := e.cores[0].stats.ExcqDrop.Load(); got != 1 {
		t.Fatalf("ExcqDrop = %d, want 1", got)
	}
}

// TestDeadContextQuiesced verifies MarkDead makes a context inert: event
// posting fails (no stale deliveries into a slot that may be reused) and
// queued TX descriptors are never acted on.
func TestDeadContextQuiesced(t *testing.T) {
	e, _ := testEngine()
	f := testFlow(e)
	ctx := NewContext(0, 2, 64)
	e.RegisterContext(ctx)
	f.Context = 0

	f.Lock()
	f.TxBuf.Write(make([]byte, 8))
	f.Unlock()
	if !ctx.PushTx(0, TxCmd{Op: OpTx, Flow: f, Bytes: 8}) {
		t.Fatal("push failed")
	}
	ctx.MarkDead()
	if ctx.PostEvent(0, Event{Kind: EvData, Flow: f}) {
		t.Fatal("PostEvent succeeded on a dead context")
	}
	var batch [16]TxCmd
	e.drainCtxTx(e.cores[0], batch[:])
	f.Lock()
	sent := f.TxSent
	f.Unlock()
	if sent != 0 {
		t.Fatalf("dead context's TX descriptor was executed: TxSent=%d", sent)
	}
}
