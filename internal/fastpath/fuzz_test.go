package fastpath

import (
	"math/rand"
	"testing"

	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/tcp"
)

// TestProcessRxInvariantFuzz hurls randomized packets — random sequence
// offsets, sizes, flags, ack numbers, windows — at the common-case RX
// path and checks the fast path's structural invariants after every
// packet. This is the robustness property §3.1 needs: the fast path is
// exposed to whatever arrives from the wire, and only exceptions may
// leave the common-case state machine.
func TestProcessRxInvariantFuzz(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e, _ := testEngine()
		f := testFlow(e)
		ctx := NewContext(0, 2, 1<<14)
		e.RegisterContext(ctx)
		f.Context = 0

		appRead := make([]byte, 4096)
		for i := 0; i < 20000; i++ {
			prevAck := f.AckNo
			var pkt *protocol.Packet
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // in-order-ish data at random offsets
				off := int32(rng.Intn(8000) - 2000)
				n := rng.Intn(2000) + 1
				pkt = dataPkt(f, f.AckNo+uint32(off), make([]byte, n))
			case 4: // pure ack at a random point
				una := f.SeqNo - f.TxSent
				pkt = ackPkt(f, una+uint32(rng.Intn(4000)))
			case 5: // duplicate ack
				pkt = ackPkt(f, f.SeqNo-f.TxSent)
			case 6: // garbage ack far outside the window
				pkt = ackPkt(f, rng.Uint32())
			case 7: // window update
				pkt = ackPkt(f, f.SeqNo-f.TxSent)
				pkt.Window = uint16(rng.Intn(256))
			case 8: // data with ECN CE
				pkt = dataPkt(f, f.AckNo, make([]byte, rng.Intn(1448)+1))
				pkt.ECN = protocol.ECNCE
			default: // app activity: write + transmit, read some
				f.Lock()
				if f.TxBuf.Free() > 2048 {
					f.TxBuf.Write(make([]byte, rng.Intn(2048)+1))
				}
				e.transmit(e.cores[0], f)
				f.RxBuf.Read(appRead[:rng.Intn(len(appRead))])
				f.Unlock()
				continue
			}
			e.processRx(e.cores[rng.Intn(2)], pkt)

			// Invariants.
			if tcp.SeqLT(f.AckNo, prevAck) {
				t.Fatalf("seed %d pkt %d: AckNo went backward %d -> %d", seed, i, prevAck, f.AckNo)
			}
			if f.RxBuf.Used() > f.RxBuf.Size() || f.RxBuf.Used() < 0 {
				t.Fatalf("seed %d pkt %d: rx buffer accounting broken: used=%d", seed, i, f.RxBuf.Used())
			}
			if int(f.TxSent) > f.TxBuf.Used() {
				t.Fatalf("seed %d pkt %d: TxSent %d exceeds buffered %d", seed, i, f.TxSent, f.TxBuf.Used())
			}
			if f.OooLen > 0 {
				// The tracked interval must lie strictly beyond AckNo and
				// within the receive buffer's reach.
				if !tcp.SeqGT(f.OooStart, f.AckNo) {
					t.Fatalf("seed %d pkt %d: interval start %d not beyond ack %d", seed, i, f.OooStart, f.AckNo)
				}
				if tcp.SeqDiff(f.OooStart+f.OooLen, f.AckNo) > int32(f.RxBuf.Size()) {
					t.Fatalf("seed %d pkt %d: interval beyond buffer", seed, i)
				}
			}
		}
		// Drain events without error.
		evs := make([]Event, 1024)
		for ctx.PollEvents(evs) > 0 {
		}
	}
}

// TestDescriptorQueueFuzz hurls randomized app→TAS descriptors at the
// context TX queues — garbage opcodes, nil and fabricated flow
// references, structurally broken flows, impossible byte counts —
// interleaved with valid commands, and checks the fast path drops and
// counts exactly the malformed ones without panicking or corrupting the
// live flow (§3.3: applications are untrusted, so the descriptor queue
// is an attack surface the fast path must validate defensively).
func TestDescriptorQueueFuzz(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e, _ := testEngine()
		f := testFlow(e)
		ctx := NewContext(0, 2, 1<<14)
		e.RegisterContext(ctx)
		f.Context = 0

		var cmdBatch [64]TxCmd
		wantBad := uint64(0)
		for i := 0; i < 5000; i++ {
			var cmd TxCmd
			bad := true
			switch rng.Intn(6) {
			case 0: // valid command
				f.Lock()
				if free := f.TxBuf.Free(); free > 0 {
					n := rng.Intn(free) + 1
					f.TxBuf.Write(make([]byte, n))
					cmd = TxCmd{Op: OpTx, Flow: f, Bytes: uint32(n)}
					bad = false
				} else {
					cmd = TxCmd{Op: OpTx, Flow: f, Bytes: 1}
					bad = false
				}
				f.Unlock()
			case 1: // bogus opcode on a real flow
				op := uint8(rng.Intn(255)) + 1 // never 0 here; OpTx excluded below
				if op == OpTx {
					op++
				}
				cmd = TxCmd{Op: op, Flow: f, Bytes: 1}
			case 2: // nil flow
				cmd = TxCmd{Op: OpTx, Flow: nil, Bytes: uint32(rng.Intn(1 << 20))}
			case 3: // fabricated flow not in the table
				g := &flowstate.Flow{
					LocalIP:   e.cfg.LocalIP,
					LocalPort: uint16(rng.Intn(1 << 16)),
					PeerIP:    protocol.MakeIPv4(203, 0, 113, byte(rng.Intn(256))),
					PeerPort:  uint16(rng.Intn(1 << 16)),
					RxBuf:     f.RxBuf, // alias real buffers: must still be rejected
					TxBuf:     f.TxBuf,
				}
				cmd = TxCmd{Op: OpTx, Flow: g, Bytes: uint32(rng.Intn(1 << 10))}
			case 4: // structurally broken flow (nil buffers)
				cmd = TxCmd{Op: OpTx, Flow: &flowstate.Flow{}, Bytes: 1}
			default: // impossible byte count on a real flow
				cmd = TxCmd{Op: OpTx, Flow: f,
					Bytes: uint32(f.TxBuf.Size()) + uint32(rng.Intn(1<<20)) + 1}
			}
			if !ctx.PushTx(0, cmd) {
				// Queue full: drain and retry once.
				e.drainCtxTx(e.cores[0], cmdBatch[:])
				if !ctx.PushTx(0, cmd) {
					t.Fatalf("seed %d cmd %d: queue still full after drain", seed, i)
				}
			}
			if bad {
				wantBad++
			}
			if rng.Intn(8) == 0 {
				e.drainCtxTx(e.cores[0], cmdBatch[:])
				// Ack everything so the tx buffer drains and valid commands
				// keep fitting.
				f.Lock()
				una := f.SeqNo
				f.Unlock()
				e.processRx(e.cores[0], ackPkt(f, una))
			}
		}
		for e.drainCtxTx(e.cores[0], cmdBatch[:]) > 0 {
		}

		if got := e.cores[0].stats.BadDescDrop.Load(); got != wantBad {
			t.Fatalf("seed %d: BadDescDrop = %d, want %d", seed, got, wantBad)
		}
		// The live flow must still be structurally sound.
		if int(f.TxSent) > f.TxBuf.Used() {
			t.Fatalf("seed %d: TxSent %d exceeds buffered %d", seed, f.TxSent, f.TxBuf.Used())
		}
		if e.Table.Lookup(f.Key()) != f {
			t.Fatalf("seed %d: live flow lost from table", seed)
		}
	}
}

// TestStreamIntegrityUnderReorderAndLoss drives a full sender/receiver
// conversation through the pure functions with random loss and
// reordering, and checks the receiver's byte stream is exactly the
// sender's prefix. This is the end-to-end correctness property of the
// one-interval design: whatever is delivered is correct, in order, and
// without gaps.
func TestStreamIntegrityUnderReorderAndLoss(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		// Two engines wired back-to-back through lossy/reordering queues.
		nicA, nicB := &stubNIC{}, &stubNIC{}
		ea := NewEngine(nicA, Config{LocalIP: protocol.MakeIPv4(10, 0, 0, 1), MaxCores: 1})
		eb := NewEngine(nicB, Config{LocalIP: protocol.MakeIPv4(10, 0, 0, 2), MaxCores: 1})
		fa := &testFlowPair{}
		fa.wire(t, ea, eb)

		want := make([]byte, 0, 1<<20)
		next := byte(0)
		var delivered []byte

		for round := 0; round < 3000; round++ {
			// Sender app writes.
			fa.a.Lock()
			if fa.a.TxBuf.Free() > 1500 {
				n := rng.Intn(1400) + 1
				chunk := make([]byte, n)
				for i := range chunk {
					chunk[i] = next
					next++
				}
				fa.a.TxBuf.Write(chunk)
				want = append(want, chunk...)
			}
			ea.transmit(ea.cores[0], fa.a)
			fa.a.Unlock()

			// Network: shuffle, drop, deliver A->B.
			pkts := nicA.out
			nicA.out = nil
			rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
			for _, p := range pkts {
				if rng.Float64() < 0.05 {
					continue // lost
				}
				eb.processRx(eb.cores[0], p)
			}
			// Receiver app reads.
			fa.b.Lock()
			buf := make([]byte, fa.b.RxBuf.Used())
			fa.b.RxBuf.Read(buf)
			fa.b.Unlock()
			delivered = append(delivered, buf...)

			// Acks B->A (also lossy).
			acks := nicB.out
			nicB.out = nil
			for _, p := range acks {
				if rng.Float64() < 0.05 {
					continue
				}
				ea.processRx(ea.cores[0], p)
			}
			// Sender-side timeout surrogate: occasionally go back N.
			if round%97 == 96 {
				fa.a.Lock()
				ea.resetSender(fa.a)
				ea.transmit(ea.cores[0], fa.a)
				fa.a.Unlock()
			}
		}
		if len(delivered) == 0 {
			t.Fatalf("seed %d: nothing delivered", seed)
		}
		for i := range delivered {
			if delivered[i] != want[i] {
				t.Fatalf("seed %d: stream corrupt at byte %d: got %d want %d", seed, i, delivered[i], want[i])
			}
		}
	}
}

// testFlowPair wires two mirrored flows (a on engine A sending to b on
// engine B).
type testFlowPair struct{ a, b *flowstate.Flow }

func (p *testFlowPair) wire(t *testing.T, ea, eb *Engine) {
	t.Helper()
	p.a = testFlow(ea)
	// Mirror on B: local/peer swapped, sequence spaces aligned.
	p.b = testFlow(eb)
	orig := p.b.Key()
	eb.Table.Remove(orig)
	p.b.LocalIP, p.b.PeerIP = p.a.PeerIP, p.a.LocalIP
	p.b.LocalPort, p.b.PeerPort = p.a.PeerPort, p.a.LocalPort
	p.b.SeqNo = p.a.AckNo
	p.b.AckNo = p.a.SeqNo
	eb.Table.Insert(p.b)
}
