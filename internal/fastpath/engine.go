package fastpath

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/shmring"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// NIC is the transmit side of the network attachment; the live fabric
// implements it.
type NIC interface {
	Output(pkt *protocol.Packet)
}

// WindowUnit is the advertised-window granularity in live mode: both TAS
// endpoints negotiate a window scale of 10, so the 16-bit window field
// counts KiB.
const WindowUnit = 1024

// spinWindow is how long an idle fast-path core busy-polls (yielding)
// before it starts dozing; covers the inter-packet gaps of an active
// RPC conversation without monopolizing a shared CPU during real lulls.
const spinWindow = 200 * time.Microsecond

// stopTimeout bounds Engine.Stop against a wedged core: a goroutine
// stalled inside an iteration (fault harness or a real hang) never
// reaches its loop check, and shutdown must not inherit its fate. Past
// the deadline the goroutine is deliberately leaked — the process is
// exiting or the test harness owns the fallout either way.
const stopTimeout = 2 * time.Second

// cycleSampleEvery is the cycle-accounting sampling period: the run
// loop wall-times one iteration in this many (must be a power of two)
// and scales the measurement up, keeping clock reads off the common
// per-batch path. Item counts are exact; only the nanos are estimated.
const cycleSampleEvery = 64

// rttSampleEvery is the RTT-histogram sampling period: processAck
// observes the flow's smoothed RTT/RTTVAR into the telemetry LogHists
// on one in this many timestamped ACKs (power of two). The unsampled
// cost is a per-core non-atomic increment.
const rttSampleEvery = 64

// Config parameterizes the fast-path engine.
type Config struct {
	LocalIP  protocol.IPv4
	LocalMAC protocol.MAC

	MaxCores     int           // fast-path cores created at init (§3.4)
	RxRingSize   int           // per-core NIC receive ring entries
	MSS          int           // payload bytes per segment
	BurstBytes   float64       // rate-bucket burst capacity
	BlockTimeout time.Duration // idle time before a core blocks (10ms)

	// DisableOoo turns off the fast path's one-interval out-of-order
	// buffering ("TAS simple recovery" in Figure 7): all out-of-order
	// arrivals are dropped, forcing pure go-back-N. Ablation knob.
	DisableOoo bool

	// SlowPathTimeout is how long the slow-path heartbeat may go stale
	// before the engine enters degraded mode: established flows keep
	// their RX/TX service, but new SYNs are shed immediately and the
	// application layer fails Connect/Listen fast. 0 disables the
	// watchdog (raw-engine tests with no slow path attached).
	SlowPathTimeout time.Duration

	// ChallengeAckPerSec bounds RFC 5961 challenge-ACK emission across
	// the whole stack instance (slow path and all fast-path cores
	// share one limiter), so the blind-attack defense cannot be turned
	// into an amplification primitive. 0 selects the default of 100;
	// negative disables challenge ACKs entirely (drops stay silent).
	ChallengeAckPerSec int

	// CookieRotate is the SYN-cookie key-rotation period (0 selects
	// tcp.DefaultCookieRotate). The jar lives on the engine — shared
	// state — so key epochs survive a slow-path warm restart.
	CookieRotate time.Duration

	// Telemetry, when non-nil, enables per-core cycle accounting (batch
	// section timing charged to rx/tx modules) on this engine. The flow
	// flight recorder rides on Flow.Rec and needs no engine state.
	Telemetry *telemetry.Telemetry
}

func (c *Config) fill() {
	if c.MaxCores <= 0 {
		c.MaxCores = 4
	}
	if c.RxRingSize <= 0 {
		c.RxRingSize = 2048
	}
	if c.MSS <= 0 {
		c.MSS = protocol.DefaultMSS
	}
	if c.BurstBytes <= 0 {
		c.BurstBytes = 64 << 10
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 10 * time.Millisecond
	}
}

// CoreStats counts one fast-path core's activity.
type CoreStats struct {
	RxPackets     atomic.Uint64
	TxPackets     atomic.Uint64
	TxBytes       atomic.Uint64
	AcksSent      atomic.Uint64
	Exceptions    atomic.Uint64
	RxDrops       atomic.Uint64 // ring overflow
	BufFullDrop   atomic.Uint64 // receive payload buffer full
	BadDescDrop   atomic.Uint64 // malformed app→TAS queue descriptors dropped
	SynShed       atomic.Uint64 // SYNs shed: slow-path exception queue saturated
	SynShedDown   atomic.Uint64 // SYNs shed: slow path down (degraded mode)
	SynShedPress  atomic.Uint64 // SYNs shed: resource governor's shed-syn rung engaged
	ExcqDrop      atomic.Uint64 // exceptions dropped: exception queue full
	InactiveDrain atomic.Uint64 // packets drained on a deactivated core (lazy drain)
	OooAccepted   atomic.Uint64
	OooDropped    atomic.Uint64
	Frexmits      atomic.Uint64
	WrongCore     atomic.Uint64 // packets processed on a non-RSS core
	BusyLoops     atomic.Uint64
	IdleLoops     atomic.Uint64
	Blocks        atomic.Uint64
	Panics        atomic.Uint64 // contained panics in the core's run loop
	Stranded      atomic.Uint64 // packets stuck in a failed core's queues, unrecoverable by drain
	BlindAckDrops atomic.Uint64 // segments dropped: ACK field fails RFC 5961 validation
}

type core struct {
	idx int
	// rxRing and kicks are multi-producer: the fabric delivers Input on
	// whatever goroutine the sending peer used, and kicks arrive from
	// the slow path, application threads, and the core-failure drain.
	// The consuming core stays lock-free.
	rxRing  *shmring.MPSC[*protocol.Packet]
	kicks   *shmring.MPSC[*flowstate.Flow] // slow-path retransmit/transmit kicks
	wake    chan struct{}
	asleep  atomic.Bool
	pending []*flowstate.Flow // rate-limited flows awaiting tokens
	stats   CoreStats

	// rttTicks drives the 1-in-rttSampleEvery RTT histogram sampling.
	// Only this core's run goroutine touches it, so it needs no atomics.
	rttTicks uint64

	// Data-plane failure domain (see corefault.go). beat is an
	// iteration counter, not a timestamp: stamping wall-clock time every
	// loop would put a 50-90ns clock read on the per-batch path, so the
	// core publishes a monotonically increasing count and the slow-path
	// watchdog tracks when it last changed. kill/stallC/panicNext are
	// the fault harness; exited flips (in launchCore's defer) when the
	// goroutine is provably gone — the gate for safely consuming the
	// core's single-consumer rings from outside. failed is the slow
	// path's verdict, mirrored into the RSS exclusion mask.
	beat      atomic.Uint64
	kill      chan struct{}
	killed    atomic.Bool
	stallC    chan time.Duration
	panicNext atomic.Bool
	exited    atomic.Bool
	failed    atomic.Bool
}

// Engine is the live fast path: MaxCores goroutines, per-core NIC rings,
// the flow table, RSS steering, rate buckets, and the exception path to
// the slow path.
type Engine struct {
	cfg Config
	nic NIC

	Table *flowstate.Table
	RSS   *flowstate.RSS

	// Listeners is the shared-memory listening-port registry. Like the
	// flow table it is authoritative state the slow path writes through,
	// so a warm-restarted slow path can reconstruct its listener map.
	Listeners *flowstate.ListenerTable

	// TimeWait is the 2MSL quarantine of recently-closed tuples. It
	// lives engine-side for the same reason Listeners does: flows in
	// TIME_WAIT have already had their buffers reclaimed, so the
	// quarantine (not the flow table) is the only record a warm-
	// restarted slow path has that a tuple's previous incarnation just
	// died. Quarantined tuples never appear in Table, so their segments
	// take the unknown-flow exception path to the slow path — TIME_WAIT
	// traffic is rare by construction and costs the fast path nothing.
	TimeWait *flowstate.TimeWaitTable

	// Cookies signs and validates SYN cookies. Engine-owned (not
	// slow-path state) so key epochs survive a slow-path warm restart:
	// a cookie SYN-ACK sent before a crash still validates on the ACK
	// that completes after recovery.
	Cookies *tcp.CookieJar

	// Challenge is the stack-global RFC 5961 challenge-ACK rate
	// limiter, shared by the slow path and every fast-path core. Nil
	// when challenge ACKs are disabled (ChallengeAckPerSec < 0).
	Challenge *tcp.AckLimiter

	cores []*core

	// contexts and buckets are slot registries: writers take mu and
	// publish a copy-on-write snapshot; the fast path reads the
	// snapshots without locks (per-packet lookups must not contend).
	// Slots freed by the application reaper are recycled (free lists),
	// so a churn of crashing apps does not grow the registries forever.
	mu         sync.Mutex
	contextsV  atomic.Value // []*Context; nil entries are free slots
	bucketsV   atomic.Value // []*Bucket; nil entries are free slots
	freeCtxIDs []int
	freeBkts   []uint32

	// Exception queue toward the slow path.
	excq     *shmring.SPSC[*protocol.Packet]
	slowWake chan struct{}

	// coarseClock caches nowNanos for per-packet last-activity stamps:
	// refreshed wherever the run loop already reads the wall clock (the
	// busy-loop idleSince reset) and by the slow path's heartbeat, so
	// stamping a flow costs one atomic load + store, never a clock read.
	// Staleness is bounded by the slow path's control interval.
	coarseClock atomic.Int64

	// gov is the unified resource governor (nil when ungoverned). The
	// facade installs it before Start; the fast path consults it only on
	// the exception path (SYN shedding under the shed-syn rung) and the
	// context registry charges slot occupancy to it — never per data
	// packet.
	gov atomic.Pointer[resource.Governor]

	start   time.Time
	stopped atomic.Bool
	wg      sync.WaitGroup

	// Slow-path liveness (see watchdog.go): the slow path stamps
	// slowBeat from its event loop; the watchdog goroutine flips
	// degraded when the stamp goes stale. Fast-path cores only consult
	// the flag on the exception path, never per data packet.
	slowBeat    atomic.Int64 // unix nanos of the last slow-path heartbeat
	degraded    atomic.Bool
	outageStart atomic.Int64  // unix nanos when the current outage began
	outages     atomic.Uint64 // degraded-mode entries
	outageNanos atomic.Int64  // cumulative outage time (completed outages)
	outageHist  *telemetry.Histogram
	watchStop   chan struct{}
	stopOnce    sync.Once
}

// NewEngine builds the engine (cores are started by Start).
func NewEngine(nic NIC, cfg Config) *Engine {
	cfg.fill()
	e := &Engine{
		cfg:       cfg,
		nic:       nic,
		Table:     flowstate.NewTable(),
		RSS:       flowstate.NewRSS(),
		Listeners: flowstate.NewListenerTable(),
		TimeWait:  flowstate.NewTimeWaitTable(),
		excq:      shmring.NewSPSC[*protocol.Packet](4096),
		slowWake:  make(chan struct{}, 1),
		start:     time.Now(),
		watchStop: make(chan struct{}),
	}
	e.Cookies = tcp.NewCookieJar(time.Now().UnixNano(), cfg.CookieRotate)
	if cfg.ChallengeAckPerSec >= 0 {
		e.Challenge = tcp.NewAckLimiter(cfg.ChallengeAckPerSec)
	}
	if cfg.Telemetry != nil {
		e.outageHist = telemetry.NewHistogram(telemetry.DurationBounds())
	}
	e.RSS.SetLimit(cfg.MaxCores)
	e.contextsV.Store([]*Context(nil))
	e.bucketsV.Store([]*Bucket(nil))
	for i := 0; i < cfg.MaxCores; i++ {
		e.cores = append(e.cores, &core{
			idx:    i,
			rxRing: shmring.NewMPSC[*protocol.Packet](cfg.RxRingSize),
			kicks:  shmring.NewMPSC[*flowstate.Flow](1024),
			wake:   make(chan struct{}, 1),
			kill:   make(chan struct{}),
			stallC: make(chan time.Duration, 1),
		})
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// NowMicros returns microseconds since engine start (TCP timestamp
// clock).
func (e *Engine) NowMicros() uint32 { return uint32(time.Since(e.start).Microseconds()) }

func (e *Engine) nowNanos() int64 { return time.Since(e.start).Nanoseconds() }

// CoarseNanos returns the cached engine clock (nanos since start),
// refreshed by busy run-loop iterations and slow-path heartbeats.
// Cheap enough for per-packet stamps; staleness is bounded by the
// control interval.
func (e *Engine) CoarseNanos() int64 { return e.coarseClock.Load() }

// refreshCoarse updates the cached engine clock and returns it.
func (e *Engine) refreshCoarse() int64 {
	n := e.nowNanos()
	e.coarseClock.Store(n)
	return n
}

// NowNanos returns nanoseconds since engine start — the clock the
// challenge-ACK limiter and cookie-rotation epochs run on, shared by
// fast- and slow-path callers so their rate windows agree.
func (e *Engine) NowNanos() int64 { return e.nowNanos() }

// Start launches the fast-path core goroutines and, when a slow-path
// timeout is configured, the heartbeat watchdog.
func (e *Engine) Start() {
	for _, c := range e.cores {
		e.launchCore(c)
	}
	if e.cfg.SlowPathTimeout > 0 {
		// Seed the beat so a slow path that never starts still trips the
		// watchdog after one full timeout rather than instantly.
		e.SlowpathBeat()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.watchSlowpath()
		}()
	}
}

// Stop terminates the cores and waits for them, bounded by stopTimeout:
// a core wedged mid-iteration (StallCore, or a genuine hang) would
// otherwise make shutdown hang with it.
func (e *Engine) Stop() {
	e.stopped.Store(true)
	e.stopOnce.Do(func() { close(e.watchStop) })
	for _, c := range e.cores {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	done := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(stopTimeout):
	}
}

// MaxCores returns the configured maximum core count.
func (e *Engine) MaxCores() int { return len(e.cores) }

// ActiveCores returns the number of cores currently receiving RSS
// traffic.
func (e *Engine) ActiveCores() int { return e.RSS.Cores() }

// SetActiveCores re-steers RSS to n cores (the slow path's scaling
// decision, §3.4: eager RSS update, lazy drain). Every core is woken —
// not just the newly active set — so a core that was just steered away
// from drains the packets already sitting in its receive ring promptly
// instead of waiting out its block timeout.
func (e *Engine) SetActiveCores(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(e.cores) {
		n = len(e.cores)
	}
	e.RSS.SetCores(n)
	for i := range e.cores {
		e.wakeCore(i)
	}
}

// Stats returns the per-core statistics.
func (e *Engine) Stats(core int) *CoreStats { return &e.cores[core].stats }

// Ring-depth accessors for the latency observatory's tas_ring_depth
// gauges. All reads are the rings' approximate lock-free Len/Cap —
// scrape-time only, never on the packet path.

// RxRingDepth returns core i's NIC receive ring occupancy and capacity.
func (e *Engine) RxRingDepth(i int) (depth, capacity int) {
	c := e.cores[i]
	return c.rxRing.Len(), c.rxRing.Cap()
}

// KickRingDepth returns core i's slow-path kick ring occupancy and
// capacity.
func (e *Engine) KickRingDepth(i int) (depth, capacity int) {
	c := e.cores[i]
	return c.kicks.Len(), c.kicks.Cap()
}

// ExcqDepth returns the exception-queue occupancy and capacity.
func (e *Engine) ExcqDepth() (depth, capacity int) {
	return e.excq.Len(), e.excq.Cap()
}

// SetGovernor installs the resource governor. Call before Start; the
// slow path and libtas read it through Governor().
func (e *Engine) SetGovernor(g *resource.Governor) { e.gov.Store(g) }

// Governor returns the installed resource governor (nil = ungoverned).
func (e *Engine) Governor() *resource.Governor { return e.gov.Load() }

// RegisterContext adds an application context and returns its id,
// reusing a slot freed by a previous UnregisterContext if one exists.
func (e *Engine) RegisterContext(ctx *Context) uint16 {
	if g := e.gov.Load(); g != nil {
		g.Charge(resource.PoolContexts, 1)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.contextsV.Load().([]*Context)
	if n := len(e.freeCtxIDs); n > 0 {
		id := e.freeCtxIDs[n-1]
		e.freeCtxIDs = e.freeCtxIDs[:n-1]
		ns := append([]*Context(nil), old...)
		ns[id] = ctx
		ctx.ID = id
		e.contextsV.Store(ns)
		return uint16(id)
	}
	ctx.ID = len(old)
	e.contextsV.Store(append(append([]*Context(nil), old...), ctx))
	return uint16(ctx.ID)
}

// UnregisterContext releases a context's slot for reuse — the slow-path
// reaper calls this after reclaiming a dead application's flows, so the
// slot must no longer be reachable through live flow state.
func (e *Engine) UnregisterContext(ctx *Context) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.contextsV.Load().([]*Context)
	if ctx.ID < 0 || ctx.ID >= len(old) || old[ctx.ID] != ctx {
		return
	}
	ns := append([]*Context(nil), old...)
	ns[ctx.ID] = nil
	e.contextsV.Store(ns)
	e.freeCtxIDs = append(e.freeCtxIDs, ctx.ID)
	if g := e.gov.Load(); g != nil {
		g.Charge(resource.PoolContexts, -1)
		g.DropApp(uint32(ctx.ID))
	}
}

// ContextByID returns a registered context (nil if out of range or the
// slot has been freed).
func (e *Engine) ContextByID(id uint16) *Context {
	ctxs := e.contextsV.Load().([]*Context)
	if int(id) >= len(ctxs) {
		return nil
	}
	return ctxs[id]
}

// Contexts returns the current context registry snapshot (entries may
// be nil where slots are free). Used by the slow path's liveness sweep.
func (e *Engine) Contexts() []*Context {
	return e.contextsV.Load().([]*Context)
}

// AllocBucket creates a rate bucket and returns its index (the slow
// path allocates one per established flow), reusing a freed slot when
// one exists.
func (e *Engine) AllocBucket() uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.bucketsV.Load().([]*Bucket)
	if n := len(e.freeBkts); n > 0 {
		i := e.freeBkts[n-1]
		e.freeBkts = e.freeBkts[:n-1]
		ns := append([]*Bucket(nil), old...)
		ns[i] = NewBucket(e.cfg.BurstBytes)
		e.bucketsV.Store(ns)
		return i
	}
	e.bucketsV.Store(append(append([]*Bucket(nil), old...), NewBucket(e.cfg.BurstBytes)))
	return uint32(len(old))
}

// FreeBucket returns a rate bucket slot to the free pool (flow
// teardown by the application reaper).
func (e *Engine) FreeBucket(i uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.bucketsV.Load().([]*Bucket)
	if int(i) >= len(old) || old[i] == nil {
		return
	}
	ns := append([]*Bucket(nil), old...)
	ns[i] = nil
	e.bucketsV.Store(ns)
	e.freeBkts = append(e.freeBkts, i)
}

// Bucket returns the rate bucket at index i (nil if out of range).
func (e *Engine) Bucket(i uint32) *Bucket {
	bks := e.bucketsV.Load().([]*Bucket)
	if int(i) >= len(bks) {
		return nil
	}
	return bks[i]
}

// CoreForFlow returns the fast-path core a flow's packets steer to.
func (e *Engine) CoreForFlow(f *flowstate.Flow) int {
	return e.RSS.CoreFor(protocol.FlowHash(f.LocalIP, f.LocalPort, f.PeerIP, f.PeerPort))
}

// Output transmits a packet via the NIC (used by the slow path for
// control packets).
func (e *Engine) Output(pkt *protocol.Packet) { e.nic.Output(pkt) }

// Input delivers a received packet into the fast path (called by the
// NIC/fabric). Steering follows the RSS redirection table. The index is
// clamped: a steering table must never be able to crash the input path,
// and the fabric delivers synchronously — a panic here would unwind
// into the sending peer's core goroutine.
func (e *Engine) Input(pkt *protocol.Packet) {
	idx := e.RSS.CoreForPacket(pkt)
	if idx < 0 || idx >= len(e.cores) {
		idx = 0
	}
	c := e.cores[idx]
	if !c.rxRing.Enqueue(pkt) {
		c.stats.RxDrops.Add(1)
		return
	}
	e.wakeCoreS(c)
}

// KickFlow asks the owning core to run transmission for a flow (used by
// the slow path for retransmission restarts and by libtas after
// appending payload when the tx queue was full).
func (e *Engine) KickFlow(f *flowstate.Flow) {
	c := e.cores[e.CoreForFlow(f)]
	if c.kicks.Enqueue(f) {
		e.wakeCoreS(c)
	}
}

// PushTxCmd routes a TX command from a context to the owning core and
// wakes it. It reports false if the queue is full or the descriptor is
// obviously malformed (nil flow).
func (e *Engine) PushTxCmd(ctx *Context, cmd TxCmd) bool {
	if cmd.Flow == nil {
		return false
	}
	ci := e.CoreForFlow(cmd.Flow)
	if !ctx.PushTx(ci, cmd) {
		return false
	}
	e.wakeCore(ci)
	return true
}

// validTxCmd validates one app→TAS queue descriptor before the fast
// path acts on it. Applications are untrusted (§3.3): a crashed or
// malicious app can enqueue arbitrary bit patterns, so a descriptor
// must carry a known opcode, reference a flow that is actually
// installed in the flow table with intact buffers, and claim a byte
// count that could possibly be buffered. Anything else is dropped and
// counted — never acted on, never a panic.
func (e *Engine) validTxCmd(c *core, cmd TxCmd) bool {
	f := cmd.Flow
	if cmd.Op != OpTx || f == nil || f.RxBuf == nil || f.TxBuf == nil ||
		int64(cmd.Bytes) > int64(f.TxBuf.Size()) || e.Table.Lookup(f.Key()) != f {
		c.stats.BadDescDrop.Add(1)
		return false
	}
	return true
}

// Exceptions returns the exception queue (slow-path side) and the wake
// channel signalled when it becomes non-empty.
func (e *Engine) Exceptions() (*shmring.SPSC[*protocol.Packet], <-chan struct{}) {
	return e.excq, e.slowWake
}

// toSlowPath forwards an exception packet. When the slow path's
// exception queue saturates, new-connection attempts (bare SYNs) are
// shed first — admission control under overload: established flows'
// exceptions keep their queue slots, and a shed peer simply
// retransmits its SYN later (§3.2: the slow path is the control-plane
// bottleneck, so it protects itself by refusing new work, not by
// growing an unbounded backlog).
func (e *Engine) toSlowPath(c *core, pkt *protocol.Packet) {
	if pkt.Flags.Has(protocol.FlagSYN) && !pkt.Flags.Has(protocol.FlagACK) {
		// Degraded mode: nobody is draining the exception queue, so a
		// new-connection attempt cannot succeed — shed it immediately
		// rather than letting SYNs squeeze out the established flows'
		// exceptions still queued for the restarted slow path.
		if e.degraded.Load() {
			c.stats.SynShedDown.Add(1)
			return
		}
		if e.excq.Len() >= e.excq.Cap()*3/4 {
			c.stats.SynShed.Add(1)
			return
		}
		// Shed-syn rung: the resource governor has climbed past forcing
		// cookies — pools are still filling, so new connections are
		// refused at the earliest, cheapest point. Established flows'
		// exceptions pass untouched.
		if g := e.gov.Load(); g != nil && g.Level() >= resource.LevelShedSyn {
			c.stats.SynShedPress.Add(1)
			g.NoteShed(resource.LevelShedSyn)
			return
		}
	}
	c.stats.Exceptions.Add(1)
	if e.excq.Enqueue(pkt) {
		select {
		case e.slowWake <- struct{}{}:
		default:
		}
	} else {
		c.stats.ExcqDrop.Add(1)
	}
}

func (e *Engine) wakeCore(i int) { e.wakeCoreS(e.cores[i]) }

// Nudge wakes fast-path core i if it is blocked (fault-harness use:
// make cores notice queue writes that bypass the normal kick paths).
func (e *Engine) Nudge(i int) {
	if i >= 0 && i < len(e.cores) {
		e.wakeCore(i)
	}
}

func (e *Engine) wakeCoreS(c *core) {
	if c.asleep.Load() {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// run is one fast-path core's main loop: poll NIC ring, slow-path
// kicks, context TX queues, and rate-limited retries; block after
// BlockTimeout of idleness (§3.4 adaptive blocking with notifications).
func (e *Engine) run(c *core) {
	idleSince := time.Now()
	var pktBatch [64]*protocol.Packet
	var cmdBatch [64]TxCmd
	// Cycle accounting (when telemetry is on) counts items on every
	// batch but only times one loop in cycleSampleEvery, scaling the
	// measured nanos back up — an unbiased estimate over thousands of
	// batches. System clock reads cost ~50-90ns on machines without a
	// fast vDSO time source; timing every batch measured ~30% of
	// fast-path CPU and pushed echo RPC latency up ~50%. The sampled
	// reads double as the publisher of the telemetry hub's cached
	// coarse clock (flight-recorder timestamps).
	telem := e.cfg.Telemetry
	var loops uint32
	var t0 int64
	// The kill channel is captured once: ReviveCore installs a fresh
	// channel for the next incarnation, and this goroutine must keep
	// watching the one that belongs to it.
	kill := c.kill
	for !e.stopped.Load() {
		// Heartbeat: one atomic add per iteration (no clock read — see
		// the field comment). The slow-path core watchdog decides
		// staleness by watching the count stop advancing.
		c.beat.Add(1)

		// Fault harness (corefault.go). Kill exits the loop as a crash
		// would — without draining queues or announcing anything; stall
		// freezes the goroutine mid-iteration; panicNext exercises the
		// launchCore containment path.
		if c.killed.Load() {
			return
		}
		select {
		case d := <-c.stallC:
			time.Sleep(d)
		default:
		}
		if c.panicNext.CompareAndSwap(true, false) {
			panic("fastpath: injected core panic")
		}

		did := 0
		loops++
		sampled := telem != nil && loops&(cycleSampleEvery-1) == 0

		// NIC receive ring.
		timed := sampled && c.rxRing.Len() > 0
		if timed {
			t0 = telem.RefreshNow()
		}
		n := c.rxRing.DequeueBatch(pktBatch[:])
		for i := 0; i < n; i++ {
			e.processRx(c, pktBatch[i])
		}
		did += n
		if n > 0 && telem != nil {
			var nanos int64
			if timed {
				nanos = (telem.RefreshNow() - t0) * cycleSampleEvery
			}
			telem.Cycles.AddFast(c.idx, telemetry.ModRx, nanos, uint64(n))
		}

		// Slow-path kicks, context TX queues, rate-limit retries.
		timed = sampled &&
			(c.kicks.Len() > 0 || len(c.pending) > 0 || e.ctxTxPending(c))
		if timed {
			t0 = telem.RefreshNow()
		}
		txWork := 0

		for {
			f, ok := c.kicks.Dequeue()
			if !ok {
				break
			}
			f.Lock()
			e.transmit(c, f)
			f.Unlock()
			txWork++
		}

		// Context TX queues assigned to this core.
		txWork += e.drainCtxTx(c, cmdBatch[:])

		// Rate-limited flows waiting for tokens.
		txWork += e.retryPending(c)

		did += txWork
		if txWork > 0 && telem != nil {
			var nanos int64
			if timed {
				nanos = (telem.RefreshNow() - t0) * cycleSampleEvery
			}
			telem.Cycles.AddFast(c.idx, telemetry.ModTx, nanos, uint64(txWork))
		}

		if did > 0 {
			c.stats.BusyLoops.Add(1)
			idleSince = time.Now()
			e.coarseClock.Store(idleSince.Sub(e.start).Nanoseconds())
			continue
		}
		c.stats.IdleLoops.Add(1)
		idle := time.Since(idleSince)
		if idle < spinWindow {
			// Busy-poll (dedicating the CPU, the paper's design) but
			// yield the scheduler slot so application goroutines run on
			// shared machines; time.Sleep here would add OS-timer
			// granularity to every packet's latency.
			runtime.Gosched()
			continue
		}
		if idle < e.cfg.BlockTimeout || len(c.pending) > 0 {
			// Doze: the flow of packets has paused; stop burning the
			// CPU other goroutines need but stay quick to resume.
			time.Sleep(20 * time.Microsecond)
			continue
		}
		// Block until woken (§3.4: cores that receive no packets
		// automatically block and are de-scheduled).
		c.stats.Blocks.Add(1)
		c.asleep.Store(true)
		// Re-check queues after publishing the sleep flag to avoid a
		// lost wakeup.
		if c.rxRing.Len() > 0 || c.kicks.Len() > 0 {
			c.asleep.Store(false)
			continue
		}
		select {
		case <-c.wake:
		case <-kill:
		case <-time.After(100 * time.Millisecond):
		}
		c.asleep.Store(false)
		idleSince = time.Now()
	}
}

// drainCtxTx consumes the TX descriptor queues every registered
// context aimed at core c, validating each descriptor before acting on
// it. Dead contexts (reaped applications) and free slots are skipped.
func (e *Engine) drainCtxTx(c *core, cmdBatch []TxCmd) int {
	ctxs := e.contextsV.Load().([]*Context)
	did := 0
	for _, ctx := range ctxs {
		if ctx == nil || ctx.Dead() || c.idx >= ctx.Cores() {
			continue
		}
		k := ctx.txq[c.idx].DequeueBatch(cmdBatch)
		for i := 0; i < k; i++ {
			cmd := cmdBatch[i]
			if !e.validTxCmd(c, cmd) {
				continue
			}
			cmd.Flow.Lock()
			e.transmit(c, cmd.Flow)
			cmd.Flow.Unlock()
		}
		did += k
	}
	return did
}

// ctxTxPending reports whether any live context has TX descriptors
// queued for core c: one atomic length load per context, gating the
// cycle-accounting clock reads in the run loop. A descriptor enqueued
// between this check and the drain is still transmitted — it just goes
// unattributed for one batch.
func (e *Engine) ctxTxPending(c *core) bool {
	ctxs := e.contextsV.Load().([]*Context)
	for _, ctx := range ctxs {
		if ctx == nil || ctx.Dead() || c.idx >= ctx.Cores() {
			continue
		}
		if ctx.txq[c.idx].Len() > 0 {
			return true
		}
	}
	return false
}

// retryPending re-attempts transmission for rate-limited flows.
func (e *Engine) retryPending(c *core) int {
	if len(c.pending) == 0 {
		return 0
	}
	pend := c.pending
	c.pending = c.pending[:0]
	did := 0
	for _, f := range pend {
		f.Lock()
		e.transmit(c, f)
		f.Unlock()
		did++
	}
	return did
}

// DropStats aggregates the engine's shed/drop counters across cores and
// contexts — every cause that makes TAS refuse work instead of growing
// an unbounded backlog or corrupting state.
type DropStats struct {
	RxRingFull   uint64 // NIC receive ring overflow
	RxBufFull    uint64 // per-flow receive payload buffer full
	BadDesc      uint64 // malformed app→TAS queue descriptors
	SynShed      uint64 // SYNs shed by slow-path admission control
	SynShedDown  uint64 // SYNs shed while the slow path was down (degraded)
	SynShedPress uint64 // SYNs shed by the resource governor's shed-syn rung
	ExcqFull     uint64 // exception queue overflow (non-SYN exceptions)
	EventsLost   uint64 // context event-queue overflow
	OooDropped   uint64 // out-of-order segments outside the tracked interval
	CoreStranded uint64 // packets stranded in a failed core's queues (stalled, not drainable)
	BlindAck     uint64 // segments dropped by RFC 5961 ACK validation (blind injection)
}

// Drops returns the aggregated drop counters.
func (e *Engine) Drops() DropStats {
	var d DropStats
	for _, c := range e.cores {
		d.RxRingFull += c.stats.RxDrops.Load()
		d.RxBufFull += c.stats.BufFullDrop.Load()
		d.BadDesc += c.stats.BadDescDrop.Load()
		d.SynShed += c.stats.SynShed.Load()
		d.SynShedDown += c.stats.SynShedDown.Load()
		d.SynShedPress += c.stats.SynShedPress.Load()
		d.ExcqFull += c.stats.ExcqDrop.Load()
		d.OooDropped += c.stats.OooDropped.Load()
		d.CoreStranded += c.stats.Stranded.Load()
		d.BlindAck += c.stats.BlindAckDrops.Load()
	}
	for _, ctx := range e.Contexts() {
		if ctx != nil {
			d.EventsLost += ctx.DroppedEvents.Load()
		}
	}
	return d
}

// Utilization returns the busy fraction of core loops since the last
// call, for the slow path's scaling monitor.
func (e *Engine) Utilization(coreIdx int) float64 {
	c := e.cores[coreIdx]
	busy := c.stats.BusyLoops.Swap(0)
	idle := c.stats.IdleLoops.Swap(0)
	total := busy + idle
	if total == 0 {
		return 0
	}
	return float64(busy) / float64(total)
}
