package fastpath

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/shmring"
)

// NIC is the transmit side of the network attachment; the live fabric
// implements it.
type NIC interface {
	Output(pkt *protocol.Packet)
}

// WindowUnit is the advertised-window granularity in live mode: both TAS
// endpoints negotiate a window scale of 10, so the 16-bit window field
// counts KiB.
const WindowUnit = 1024

// spinWindow is how long an idle fast-path core busy-polls (yielding)
// before it starts dozing; covers the inter-packet gaps of an active
// RPC conversation without monopolizing a shared CPU during real lulls.
const spinWindow = 200 * time.Microsecond

// Config parameterizes the fast-path engine.
type Config struct {
	LocalIP  protocol.IPv4
	LocalMAC protocol.MAC

	MaxCores     int           // fast-path cores created at init (§3.4)
	RxRingSize   int           // per-core NIC receive ring entries
	MSS          int           // payload bytes per segment
	BurstBytes   float64       // rate-bucket burst capacity
	BlockTimeout time.Duration // idle time before a core blocks (10ms)

	// DisableOoo turns off the fast path's one-interval out-of-order
	// buffering ("TAS simple recovery" in Figure 7): all out-of-order
	// arrivals are dropped, forcing pure go-back-N. Ablation knob.
	DisableOoo bool
}

func (c *Config) fill() {
	if c.MaxCores <= 0 {
		c.MaxCores = 4
	}
	if c.RxRingSize <= 0 {
		c.RxRingSize = 2048
	}
	if c.MSS <= 0 {
		c.MSS = protocol.DefaultMSS
	}
	if c.BurstBytes <= 0 {
		c.BurstBytes = 64 << 10
	}
	if c.BlockTimeout <= 0 {
		c.BlockTimeout = 10 * time.Millisecond
	}
}

// CoreStats counts one fast-path core's activity.
type CoreStats struct {
	RxPackets   atomic.Uint64
	TxPackets   atomic.Uint64
	TxBytes     atomic.Uint64
	AcksSent    atomic.Uint64
	Exceptions  atomic.Uint64
	RxDrops     atomic.Uint64 // ring overflow
	BufFullDrop atomic.Uint64 // receive payload buffer full
	OooAccepted atomic.Uint64
	OooDropped  atomic.Uint64
	Frexmits    atomic.Uint64
	WrongCore   atomic.Uint64 // packets processed on a non-RSS core
	BusyLoops   atomic.Uint64
	IdleLoops   atomic.Uint64
	Blocks      atomic.Uint64
}

type core struct {
	idx     int
	rxRing  *shmring.SPSC[*protocol.Packet]
	kicks   *shmring.SPSC[*flowstate.Flow] // slow-path retransmit/transmit kicks
	wake    chan struct{}
	asleep  atomic.Bool
	pending []*flowstate.Flow // rate-limited flows awaiting tokens
	stats   CoreStats
}

// Engine is the live fast path: MaxCores goroutines, per-core NIC rings,
// the flow table, RSS steering, rate buckets, and the exception path to
// the slow path.
type Engine struct {
	cfg Config
	nic NIC

	Table *flowstate.Table
	RSS   *flowstate.RSS

	cores []*core

	// contexts and buckets are append-only registries: writers take mu
	// and publish a copy-on-write snapshot; the fast path reads the
	// snapshots without locks (per-packet lookups must not contend).
	mu        sync.Mutex
	contextsV atomic.Value // []*Context
	bucketsV  atomic.Value // []*Bucket

	// Exception queue toward the slow path.
	excq     *shmring.SPSC[*protocol.Packet]
	slowWake chan struct{}

	start   time.Time
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// NewEngine builds the engine (cores are started by Start).
func NewEngine(nic NIC, cfg Config) *Engine {
	cfg.fill()
	e := &Engine{
		cfg:      cfg,
		nic:      nic,
		Table:    flowstate.NewTable(),
		RSS:      flowstate.NewRSS(),
		excq:     shmring.NewSPSC[*protocol.Packet](4096),
		slowWake: make(chan struct{}, 1),
		start:    time.Now(),
	}
	e.contextsV.Store([]*Context(nil))
	e.bucketsV.Store([]*Bucket(nil))
	for i := 0; i < cfg.MaxCores; i++ {
		e.cores = append(e.cores, &core{
			idx:    i,
			rxRing: shmring.NewSPSC[*protocol.Packet](cfg.RxRingSize),
			kicks:  shmring.NewSPSC[*flowstate.Flow](1024),
			wake:   make(chan struct{}, 1),
		})
	}
	return e
}

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// NowMicros returns microseconds since engine start (TCP timestamp
// clock).
func (e *Engine) NowMicros() uint32 { return uint32(time.Since(e.start).Microseconds()) }

func (e *Engine) nowNanos() int64 { return time.Since(e.start).Nanoseconds() }

// Start launches the fast-path core goroutines.
func (e *Engine) Start() {
	for _, c := range e.cores {
		c := c
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.run(c)
		}()
	}
}

// Stop terminates the cores and waits for them.
func (e *Engine) Stop() {
	e.stopped.Store(true)
	for _, c := range e.cores {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
	e.wg.Wait()
}

// MaxCores returns the configured maximum core count.
func (e *Engine) MaxCores() int { return len(e.cores) }

// ActiveCores returns the number of cores currently receiving RSS
// traffic.
func (e *Engine) ActiveCores() int { return e.RSS.Cores() }

// SetActiveCores re-steers RSS to n cores (the slow path's scaling
// decision, §3.4: eager RSS update, lazy drain).
func (e *Engine) SetActiveCores(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(e.cores) {
		n = len(e.cores)
	}
	e.RSS.SetCores(n)
	for i := 0; i < n; i++ {
		e.wakeCore(i)
	}
}

// Stats returns the per-core statistics.
func (e *Engine) Stats(core int) *CoreStats { return &e.cores[core].stats }

// RegisterContext adds an application context and returns its id.
func (e *Engine) RegisterContext(ctx *Context) uint16 {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.contextsV.Load().([]*Context)
	ctx.ID = len(old)
	e.contextsV.Store(append(append([]*Context(nil), old...), ctx))
	return uint16(ctx.ID)
}

// ContextByID returns a registered context (nil if out of range).
func (e *Engine) ContextByID(id uint16) *Context {
	ctxs := e.contextsV.Load().([]*Context)
	if int(id) >= len(ctxs) {
		return nil
	}
	return ctxs[id]
}

// AllocBucket creates a rate bucket and returns its index (the slow
// path allocates one per established flow).
func (e *Engine) AllocBucket() uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.bucketsV.Load().([]*Bucket)
	e.bucketsV.Store(append(append([]*Bucket(nil), old...), NewBucket(e.cfg.BurstBytes)))
	return uint32(len(old))
}

// Bucket returns the rate bucket at index i (nil if out of range).
func (e *Engine) Bucket(i uint32) *Bucket {
	bks := e.bucketsV.Load().([]*Bucket)
	if int(i) >= len(bks) {
		return nil
	}
	return bks[i]
}

// CoreForFlow returns the fast-path core a flow's packets steer to.
func (e *Engine) CoreForFlow(f *flowstate.Flow) int {
	return e.RSS.CoreFor(protocol.FlowHash(f.LocalIP, f.LocalPort, f.PeerIP, f.PeerPort))
}

// Output transmits a packet via the NIC (used by the slow path for
// control packets).
func (e *Engine) Output(pkt *protocol.Packet) { e.nic.Output(pkt) }

// Input delivers a received packet into the fast path (called by the
// NIC/fabric). Steering follows the RSS redirection table.
func (e *Engine) Input(pkt *protocol.Packet) {
	c := e.cores[e.RSS.CoreForPacket(pkt)]
	if !c.rxRing.Enqueue(pkt) {
		c.stats.RxDrops.Add(1)
		return
	}
	e.wakeCoreS(c)
}

// KickFlow asks the owning core to run transmission for a flow (used by
// the slow path for retransmission restarts and by libtas after
// appending payload when the tx queue was full).
func (e *Engine) KickFlow(f *flowstate.Flow) {
	c := e.cores[e.CoreForFlow(f)]
	if c.kicks.Enqueue(f) {
		e.wakeCoreS(c)
	}
}

// PushTxCmd routes a TX command from a context to the owning core and
// wakes it. It reports false if the queue is full.
func (e *Engine) PushTxCmd(ctx *Context, cmd TxCmd) bool {
	ci := e.CoreForFlow(cmd.Flow)
	if !ctx.PushTx(ci, cmd) {
		return false
	}
	e.wakeCore(ci)
	return true
}

// Exceptions returns the exception queue (slow-path side) and the wake
// channel signalled when it becomes non-empty.
func (e *Engine) Exceptions() (*shmring.SPSC[*protocol.Packet], <-chan struct{}) {
	return e.excq, e.slowWake
}

// toSlowPath forwards an exception packet.
func (e *Engine) toSlowPath(c *core, pkt *protocol.Packet) {
	c.stats.Exceptions.Add(1)
	if e.excq.Enqueue(pkt) {
		select {
		case e.slowWake <- struct{}{}:
		default:
		}
	}
}

func (e *Engine) wakeCore(i int) { e.wakeCoreS(e.cores[i]) }

func (e *Engine) wakeCoreS(c *core) {
	if c.asleep.Load() {
		select {
		case c.wake <- struct{}{}:
		default:
		}
	}
}

// run is one fast-path core's main loop: poll NIC ring, slow-path
// kicks, context TX queues, and rate-limited retries; block after
// BlockTimeout of idleness (§3.4 adaptive blocking with notifications).
func (e *Engine) run(c *core) {
	idleSince := time.Now()
	var pktBatch [64]*protocol.Packet
	var cmdBatch [64]TxCmd
	for !e.stopped.Load() {
		did := 0

		// NIC receive ring.
		n := c.rxRing.DequeueBatch(pktBatch[:])
		for i := 0; i < n; i++ {
			e.processRx(c, pktBatch[i])
		}
		did += n

		// Slow-path kicks.
		for {
			f, ok := c.kicks.Dequeue()
			if !ok {
				break
			}
			f.Lock()
			e.transmit(c, f)
			f.Unlock()
			did++
		}

		// Context TX queues assigned to this core.
		ctxs := e.contextsV.Load().([]*Context)
		for _, ctx := range ctxs {
			if c.idx >= ctx.Cores() {
				continue
			}
			k := ctx.txq[c.idx].DequeueBatch(cmdBatch[:])
			for i := 0; i < k; i++ {
				cmd := cmdBatch[i]
				cmd.Flow.Lock()
				e.transmit(c, cmd.Flow)
				cmd.Flow.Unlock()
			}
			did += k
		}

		// Rate-limited flows waiting for tokens.
		did += e.retryPending(c)

		if did > 0 {
			c.stats.BusyLoops.Add(1)
			idleSince = time.Now()
			continue
		}
		c.stats.IdleLoops.Add(1)
		idle := time.Since(idleSince)
		if idle < spinWindow {
			// Busy-poll (dedicating the CPU, the paper's design) but
			// yield the scheduler slot so application goroutines run on
			// shared machines; time.Sleep here would add OS-timer
			// granularity to every packet's latency.
			runtime.Gosched()
			continue
		}
		if idle < e.cfg.BlockTimeout || len(c.pending) > 0 {
			// Doze: the flow of packets has paused; stop burning the
			// CPU other goroutines need but stay quick to resume.
			time.Sleep(20 * time.Microsecond)
			continue
		}
		// Block until woken (§3.4: cores that receive no packets
		// automatically block and are de-scheduled).
		c.stats.Blocks.Add(1)
		c.asleep.Store(true)
		// Re-check queues after publishing the sleep flag to avoid a
		// lost wakeup.
		if c.rxRing.Len() > 0 || c.kicks.Len() > 0 {
			c.asleep.Store(false)
			continue
		}
		select {
		case <-c.wake:
		case <-time.After(100 * time.Millisecond):
		}
		c.asleep.Store(false)
		idleSince = time.Now()
	}
}

// retryPending re-attempts transmission for rate-limited flows.
func (e *Engine) retryPending(c *core) int {
	if len(c.pending) == 0 {
		return 0
	}
	pend := c.pending
	c.pending = c.pending[:0]
	did := 0
	for _, f := range pend {
		f.Lock()
		e.transmit(c, f)
		f.Unlock()
		did++
	}
	return did
}

// Utilization returns the busy fraction of core loops since the last
// call, for the slow path's scaling monitor.
func (e *Engine) Utilization(coreIdx int) float64 {
	c := e.cores[coreIdx]
	busy := c.stats.BusyLoops.Swap(0)
	idle := c.stats.IdleLoops.Swap(0)
	total := busy + idle
	if total == 0 {
		return 0
	}
	return float64(busy) / float64(total)
}
