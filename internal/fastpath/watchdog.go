package fastpath

import (
	"time"

	"repro/internal/telemetry"
)

// This file implements the fast path's view of the slow-path failure
// domain. TAS's architecture (§3.1/§3.2) puts everything the common
// case needs — flow table, sequence state, payload rings, rate buckets
// — in shared memory, so the fast path can keep serving established
// flows when the slow path wedges or crashes. What it cannot do without
// the slow path is admit new connections (handshakes), detect RTOs, or
// reap; degraded mode makes that boundary explicit:
//
//   - The slow path stamps a heartbeat (SlowpathBeat) from its event
//     loop, the shared-memory analogue of a liveness word.
//   - A watchdog goroutine — not the packet-processing cores — compares
//     the stamp against SlowPathTimeout, so a healthy system pays zero
//     additional hot-path cost; cores only read the degraded flag on
//     the (already exceptional) exception path.
//   - While degraded, bare SYNs are shed at the door (toSlowPath) and
//     libtas fails Connect/Listen fast with ErrSlowPathDown.
//
// Transitions are counted, timed into an outage-duration histogram, and
// recorded on the flight recorder's synthetic "slowpath" ring.

// slowpathRingKey is the flight-recorder key for control-plane
// lifecycle events that belong to no single flow.
const slowpathRingKey = "slowpath"

// SlowpathBeat stamps the slow-path heartbeat; the slow path calls it
// once per event-loop iteration.
func (e *Engine) SlowpathBeat() {
	e.slowBeat.Store(time.Now().UnixNano())
	e.refreshCoarse()
}

// SlowpathLastBeat returns the unix-nano timestamp of the most recent
// slow-path heartbeat (0 if no watchdog is configured and the slow path
// never stamped).
func (e *Engine) SlowpathLastBeat() int64 { return e.slowBeat.Load() }

// Degraded reports whether the engine considers the slow path down
// (heartbeat stale beyond SlowPathTimeout).
func (e *Engine) Degraded() bool { return e.degraded.Load() }

// OutageStats summarizes slow-path outages as observed by the watchdog.
type OutageStats struct {
	Outages  uint64        // completed + in-progress degraded episodes
	Total    time.Duration // cumulative outage time (including current)
	Degraded bool          // currently in degraded mode
}

// Outages returns the watchdog's outage accounting.
func (e *Engine) Outages() OutageStats {
	st := OutageStats{Outages: e.outages.Load(), Degraded: e.degraded.Load()}
	st.Total = time.Duration(e.outageNanos.Load())
	if st.Degraded {
		st.Total += time.Duration(time.Now().UnixNano() - e.outageStart.Load())
	}
	return st
}

// OutageHistogram returns the outage-duration histogram (nil when
// telemetry is off).
func (e *Engine) OutageHistogram() *telemetry.Histogram { return e.outageHist }

// watchSlowpath is the heartbeat watchdog: a dedicated goroutine that
// polls the slow-path heartbeat at a quarter of the timeout and flips
// the degraded flag on staleness. Keeping the check off the fast-path
// cores is what makes the healthy-case cost zero.
func (e *Engine) watchSlowpath() {
	period := e.cfg.SlowPathTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-e.watchStop:
			return
		case <-t.C:
		}
		now := time.Now().UnixNano()
		stale := now-e.slowBeat.Load() > int64(e.cfg.SlowPathTimeout)
		switch {
		case stale && !e.degraded.Load():
			e.outageStart.Store(now)
			e.outages.Add(1)
			e.degraded.Store(true)
			e.recordTransition(telemetry.FEDegraded, 0)
		case !stale && e.degraded.Load():
			dur := time.Now().UnixNano() - e.outageStart.Load()
			e.outageNanos.Add(dur)
			e.degraded.Store(false)
			if e.outageHist != nil {
				e.outageHist.Observe(float64(dur) / 1e9)
			}
			e.recordTransition(telemetry.FERecovered, uint64(dur))
		}
	}
}

// recordTransition logs a degraded-mode transition on the synthetic
// slow-path flight ring (aux = outage nanos for FERecovered).
func (e *Engine) recordTransition(kind telemetry.FlowEventKind, aux uint64) {
	if telem := e.cfg.Telemetry; telem != nil {
		telem.Recorder.Ring(slowpathRingKey).Record(kind, 0, 0, 0, aux)
	}
}
