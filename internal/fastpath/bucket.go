package fastpath

import (
	"math"
	"sync/atomic"
)

// Bucket is a per-flow token bucket enforcing the rate the slow path
// configured (§3.1: "the fast path fills a per-flow bucket ... and
// drains these buckets depending on a slow path configured
// per-connection rate-limit"). Tokens are bytes; refill is computed
// lazily from elapsed nanoseconds. A rate of 0 means unlimited.
type Bucket struct {
	rateBps  atomic.Uint64 // bytes per second (bits would overflow sooner)
	tokens   float64       // owned by the fast-path core holding the flow lock
	lastNs   int64
	primed   bool    // lastNs has been initialized
	BurstMax float64 // token cap, bytes
}

// NewBucket returns a bucket with the given burst capacity in bytes.
func NewBucket(burst float64) *Bucket {
	return &Bucket{BurstMax: burst}
}

// SetRate sets the enforced rate in bytes/second (0 = unlimited). Safe
// to call from the slow path concurrently with fast-path draining.
func (b *Bucket) SetRate(bytesPerSec float64) {
	if bytesPerSec < 0 {
		bytesPerSec = 0
	}
	b.rateBps.Store(math.Float64bits(bytesPerSec))
}

// Rate returns the configured rate (bytes/second; 0 = unlimited).
func (b *Bucket) Rate() float64 { return math.Float64frombits(b.rateBps.Load()) }

// refill adds tokens for the time since the last refill. Must be called
// with the flow lock held.
func (b *Bucket) refill(nowNs int64) {
	rate := b.Rate()
	if !b.primed {
		b.primed = true
		b.lastNs = nowNs
	}
	dt := nowNs - b.lastNs
	b.lastNs = nowNs
	if rate == 0 || dt <= 0 {
		return
	}
	b.tokens += rate * float64(dt) / 1e9
	if b.tokens > b.BurstMax {
		b.tokens = b.BurstMax
	}
}

// Take attempts to consume n bytes of tokens at time nowNs. With an
// unlimited rate it always succeeds. Must be called with the flow lock
// held.
func (b *Bucket) Take(nowNs int64, n int) bool {
	if b.Rate() == 0 {
		return true
	}
	b.refill(nowNs)
	if b.tokens < float64(n) {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// NextAvailable returns the absolute time (ns) when n bytes of tokens
// will be available, for scheduling a retry. Must be called with the
// flow lock held, after a failed Take.
func (b *Bucket) NextAvailable(nowNs int64, n int) int64 {
	rate := b.Rate()
	if rate == 0 {
		return nowNs
	}
	deficit := float64(n) - b.tokens
	if deficit <= 0 {
		return nowNs
	}
	return nowNs + int64(deficit/rate*1e9) + 1
}
