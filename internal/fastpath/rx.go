package fastpath

import (
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// blindAckHorizon is how far below the oldest unacknowledged byte an
// ACK may fall before RFC 5961 validation calls it blind injection
// rather than a delayed duplicate. 16 MiB dwarfs any real in-flight
// window here while leaving an attacker only ~0.4% of the sequence
// space that sails through.
const blindAckHorizon = 1 << 24

// processRx handles one received packet on core c: the common-case RX
// path of §3.1. Connection-control packets (SYN/FIN/RST) and packets for
// unknown flows are exceptions forwarded to the slow path.
func (e *Engine) processRx(c *core, pkt *protocol.Packet) {
	c.stats.RxPackets.Add(1)

	// Filter exceptions: control flags and unknown flows.
	if pkt.Flags&(protocol.FlagSYN|protocol.FlagRST|protocol.FlagFIN) != 0 {
		e.toSlowPath(c, pkt)
		return
	}
	f := e.Table.Lookup(pkt.RxKey())
	if f == nil {
		e.toSlowPath(c, pkt)
		return
	}
	// Last-activity stamp for the governor's LRU idle-reclaim rung: one
	// atomic load of the cached coarse clock plus one store — no clock
	// read on the per-packet path.
	f.Touch(e.CoarseNanos())
	if e.RSS.CoreForPacket(pkt) != c.idx {
		c.stats.WrongCore.Add(1) // arrived during a steering transition
		if c.idx >= e.RSS.Cores() {
			// This core was deactivated after the packet was steered
			// here: §3.4's lazy drain. The packet is still processed
			// normally below; the counter proves the drain happened.
			c.stats.InactiveDrain.Add(1)
		}
	}

	var ack *protocol.Packet
	f.Lock()
	// RFC 5961 §5 ACK validation: a blind attacker who cannot see the
	// connection's sequence space guesses ACK values; one landing far
	// below the oldest unacknowledged byte cannot be a delayed ACK from
	// the live window. Drop the whole segment — including any payload,
	// which kills blind data injection — and answer with at most a
	// rate-limited challenge ACK so a legitimate peer that somehow
	// desynchronized can resync. Acks *above* SND.NXT stay accepted
	// (clamped in processAck): the slow path's go-back-N rewind makes
	// them legitimate here.
	if pkt.Flags.Has(protocol.FlagACK) && tcp.SeqDiff(pkt.Ack, f.SeqNo-f.TxSent) < -blindAckHorizon {
		c.stats.BlindAckDrops.Add(1)
		if e.Challenge != nil && e.Challenge.Allow(e.nowNanos()) {
			ack = e.buildAck(f, pkt)
			if f.Rec != nil {
				f.Rec.Record(telemetry.FEChallengeTx, f.SeqNo, f.AckNo, 0, 0)
			}
		}
		f.Unlock()
		if ack != nil {
			c.stats.AcksSent.Add(1)
			e.nic.Output(ack)
		}
		return
	}
	if f.Rec != nil && pkt.DataLen() > 0 {
		f.Rec.Record(telemetry.FESegRx, pkt.Seq, pkt.Ack, uint32(pkt.DataLen()), 0)
		if pkt.ECN == protocol.ECNCE {
			f.Rec.Record(telemetry.FEEcnMark, pkt.Seq, pkt.Ack, uint32(pkt.DataLen()), 0)
		}
	}
	if pkt.Flags.Has(protocol.FlagACK) {
		e.processAck(c, f, pkt)
	}
	if pkt.DataLen() > 0 {
		ack = e.processData(c, f, pkt)
	}
	// An ack may have opened the send window or freed buffer space.
	e.transmit(c, f)
	f.Unlock()

	if ack != nil {
		c.stats.AcksSent.Add(1)
		e.nic.Output(ack)
	}
}

// processAck applies an incoming acknowledgement to flow f. Caller holds
// the flow lock.
func (e *Engine) processAck(c *core, f *flowstate.Flow, pkt *protocol.Packet) {
	una := f.SeqNo - f.TxSent // oldest unacknowledged sequence
	diff := tcp.SeqDiff(pkt.Ack, una)
	switch {
	case diff > 0:
		if f.FinSent && !f.FinAcked && diff == int32(f.TxSent)+1 {
			// The peer acknowledged our FIN's sequence number; the slow
			// path stops retransmitting it.
			f.FinAcked = true
		}
		if diff > int32(f.TxSent) {
			// Acks beyond what we sent: tolerate by clamping (can occur
			// after a slow-path retransmission reset).
			diff = int32(f.TxSent)
		}
		// Free acknowledged transmit buffer space (constant time).
		f.TxBuf.Release(int(diff))
		f.TxSent -= uint32(diff)
		f.CntAckB += uint32(diff)
		if pkt.Flags.Has(protocol.FlagECE) {
			f.CntEcnB += uint32(diff)
		}
		f.DupAcks = 0
		f.Window = pkt.Window
		if pkt.HasTS && pkt.TSEcr != 0 {
			rtt := e.NowMicros() - pkt.TSEcr
			if int32(rtt) >= 0 {
				if f.RTTEst == 0 {
					f.RTTEst = rtt
					f.RTTVarEst = rtt / 2
				} else {
					// RFC 6298 smoothing: srtt 7/8 old, rttvar 3/4 old
					// plus 1/4 of the new deviation.
					dev := int32(f.RTTEst) - int32(rtt)
					if dev < 0 {
						dev = -dev
					}
					f.RTTVarEst = (3*f.RTTVarEst + uint32(dev)) / 4
					f.RTTEst = (7*f.RTTEst + rtt) / 8
				}
				// Sampled histogram observation (1-in-rttSampleEvery ACKs,
				// like the cycle sampling): two striped atomic adds per
				// sample keeps the observatory under the overhead gate.
				if telem := e.cfg.Telemetry; telem != nil {
					c.rttTicks++
					if c.rttTicks&(rttSampleEvery-1) == 0 {
						telem.RTT.Observe(uint64(f.RTTEst), c.idx)
						telem.RTTVar.Observe(uint64(f.RTTVarEst), c.idx)
					}
				}
			}
		}
		// Inform user-space of reliably delivered bytes.
		if ctx := e.ContextByID(f.Context); ctx != nil {
			ctx.PostEvent(c.idx, Event{Kind: EvTxAcked, Opaque: f.Opaque, Bytes: uint32(diff)})
		}
	case diff == 0 && pkt.DataLen() == 0:
		if pkt.Window != f.Window {
			// Same ack number but a new window: a window update (the
			// peer's application freed receive-buffer space), not a
			// duplicate. This must apply even with nothing outstanding
			// (TxSent == 0): during a persist stall everything sent has
			// been acked, and the probe ACK reopening the window is the
			// only TX-restart signal — processRx's transmit call right
			// after this is the kick.
			f.Window = pkt.Window
			return
		}
		if f.TxSent == 0 {
			return
		}
		if pkt.Window == 0 {
			// Zero-window re-ack: the peer dropped a persist probe
			// because its buffer is still full. Flow control, not loss —
			// it must not feed the duplicate-ACK fast-recovery counter.
			return
		}
		// Duplicate ACK: count and trigger fast recovery on the third
		// (§3.1 exception optimization 1).
		f.DupAcks++
		if f.DupAcks >= 3 {
			f.DupAcks = 0
			f.CntFrexmits++
			c.stats.Frexmits.Add(1)
			if f.Rec != nil {
				f.Rec.Record(telemetry.FEFastRexmit, f.SeqNo-f.TxSent, pkt.Ack, 0, 0)
			}
			e.resetSender(f)
		}
	}
}

// resetSender rewinds the sender as if the unacknowledged segments had
// not been sent (go-back-N); the receiver's out-of-order interval
// absorbs whatever it already has.
func (e *Engine) resetSender(f *flowstate.Flow) {
	f.SeqNo -= f.TxSent
	f.TxSent = 0
}

// processData deposits payload into the flow's receive buffer and
// returns the acknowledgement to transmit. Caller holds the flow lock.
func (e *Engine) processData(c *core, f *flowstate.Flow, pkt *protocol.Packet) *protocol.Packet {
	payload := pkt.Payload
	n := uint32(len(payload))
	seq := pkt.Seq
	rel := tcp.SeqDiff(seq, f.AckNo)

	// Trim data we already have.
	if rel < 0 {
		if tcp.SeqLEQ(seq+n, f.AckNo) {
			return e.buildAck(f, pkt) // pure duplicate: re-ack
		}
		skip := uint32(-rel)
		payload = payload[skip:]
		n -= skip
		seq = f.AckNo
		rel = 0
	}

	if rel == 0 {
		// Common case: in-order payload, deposited directly into the
		// user-level receive buffer.
		if int(n) > f.RxBuf.Free() {
			// Buffer full: drop; TCP flow control makes this rare.
			c.stats.BufFullDrop.Add(1)
			return e.buildAck(f, pkt)
		}
		f.RxBuf.Write(payload)
		f.AckNo += n
		advance := n
		// Merge the out-of-order interval if this fill closed the gap.
		if f.OooLen > 0 && tcp.SeqLEQ(f.OooStart, f.AckNo) {
			end := f.OooStart + f.OooLen
			if tcp.SeqGT(end, f.AckNo) {
				delta := uint32(tcp.SeqDiff(end, f.AckNo))
				f.RxBuf.AdvanceHead(int(delta))
				f.AckNo += delta
				advance += delta
			}
			f.OooLen = 0
			f.OooStart = 0
		}
		if ctx := e.ContextByID(f.Context); ctx != nil {
			ctx.PostEvent(c.idx, Event{Kind: EvData, Opaque: f.Opaque, Bytes: advance})
		}
		return e.buildAck(f, pkt)
	}

	// Out-of-order arrival: track a single interval (§3.1 exception
	// optimization 2); anything else is dropped and the duplicate ACK
	// asks the sender to retransmit from the gap.
	if e.cfg.DisableOoo {
		// Simple-recovery ablation: drop all out-of-order data.
		c.stats.OooDropped.Add(1)
		return e.buildAck(f, pkt)
	}
	if uint32(rel)+n <= uint32(f.RxBuf.Free()) {
		pos := f.RxBuf.Head() + uint32(rel)
		switch {
		case f.OooLen == 0:
			f.RxBuf.WriteAt(pos, payload)
			f.OooStart, f.OooLen = seq, n
			c.stats.OooAccepted.Add(1)
		case tcp.SeqLEQ(seq, f.OooStart+f.OooLen) && tcp.SeqGEQ(seq+n, f.OooStart):
			f.RxBuf.WriteAt(pos, payload)
			ns := tcp.SeqMin(f.OooStart, seq)
			ne := tcp.SeqMax(f.OooStart+f.OooLen, seq+n)
			f.OooStart, f.OooLen = ns, uint32(tcp.SeqDiff(ne, ns))
			c.stats.OooAccepted.Add(1)
		default:
			c.stats.OooDropped.Add(1)
		}
	} else {
		c.stats.OooDropped.Add(1)
	}
	return e.buildAck(f, pkt)
}

// buildAck constructs the acknowledgement for the current flow state,
// echoing ECN marks (for DCTCP) and the peer's timestamp (for RTT
// estimation). Caller holds the flow lock.
func (e *Engine) buildAck(f *flowstate.Flow, data *protocol.Packet) *protocol.Packet {
	ack := &protocol.Packet{
		SrcMAC: e.cfg.LocalMAC, DstMAC: f.PeerMAC,
		SrcIP: f.LocalIP, DstIP: f.PeerIP,
		SrcPort: f.LocalPort, DstPort: f.PeerPort,
		Flags:  protocol.FlagACK,
		Seq:    f.SeqNo,
		Ack:    f.AckNo,
		Window: e.advertisedWindow(f),
		ECN:    protocol.ECNECT0,
	}
	if data.ECN == protocol.ECNCE {
		ack.Flags |= protocol.FlagECE
	}
	if data.HasTS {
		ack.HasTS = true
		ack.TSVal = e.NowMicros()
		ack.TSEcr = data.TSVal
	}
	return ack
}

// SendWindowUpdate emits a bare ACK advertising the flow's current
// receive window — issued by libtas after the application frees a
// substantial amount of receive-buffer space, so a flow-control-blocked
// peer resumes promptly.
func (e *Engine) SendWindowUpdate(f *flowstate.Flow) {
	f.Lock()
	pkt := &protocol.Packet{
		SrcMAC: e.cfg.LocalMAC, DstMAC: f.PeerMAC,
		SrcIP: f.LocalIP, DstIP: f.PeerIP,
		SrcPort: f.LocalPort, DstPort: f.PeerPort,
		Flags:  protocol.FlagACK,
		Seq:    f.SeqNo,
		Ack:    f.AckNo,
		Window: e.advertisedWindow(f),
		ECN:    protocol.ECNECT0,
		HasTS:  true,
		TSVal:  e.NowMicros(),
	}
	f.Unlock()
	e.nic.Output(pkt)
}

// advertisedWindow returns the receive window in WindowUnit units.
func (e *Engine) advertisedWindow(f *flowstate.Flow) uint16 {
	w := f.RxBuf.Free() / WindowUnit
	if w > 0xffff {
		w = 0xffff
	}
	return uint16(w)
}
