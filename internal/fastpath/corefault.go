package fastpath

import (
	"time"

	"repro/internal/telemetry"
)

// This file implements the data-plane failure domain: each fast-path
// core is a crashable, restartable unit. The slow path already owns the
// repair mechanism — §3.4's core scaling eagerly rewrites the RSS
// redirection table and the per-flow spinlocks make wrong-core packets
// safe — so a core failure costs a re-steer, not an outage:
//
//   - Every run-loop iteration bumps an atomic beat counter (no clock
//     read on the hot path; the slow-path watchdog tracks when the
//     count last changed).
//   - The fault harness (KillCore/StallCore/InjectCorePanic) crashes,
//     wedges, or panics a core on demand; panics are contained and
//     counted by launchCore, never escaping to the process.
//   - When the slow path declares a core dead (MarkCoreFailed), the
//     core's bit enters the RSS exclusion mask and the table is
//     rewritten around it, so neither this re-steer nor any later
//     SetCores/scale event sends a bucket back to it.
//   - DrainFailedCore requeues the packets and kicks stranded in the
//     dead core's single-consumer rings — but only once the goroutine
//     has provably exited; a stalled core still owns its rings, and its
//     backlog is counted stranded and left to TCP retransmission.
//   - ReviveCore relaunches the goroutine; the slow path folds the core
//     back into steering (ClearCoreFailed) after it proves itself with
//     clean heartbeats, the normal scale-up path.

// coresRingKey is the flight-recorder key for data-plane lifecycle
// events that belong to no single flow (core failed/revived).
const coresRingKey = "cores"

// launchCore starts (or restarts) a core's run-loop goroutine. A panic
// inside the loop is contained here: counted, the core marked exited,
// and the process kept alive — the slow-path watchdog turns the silence
// into a failure verdict and re-steers around it.
func (e *Engine) launchCore(c *core) {
	c.exited.Store(false)
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				c.stats.Panics.Add(1)
			}
			c.exited.Store(true)
		}()
		e.run(c)
	}()
}

// KillCore makes core i's goroutine exit at its next loop check, as an
// uncaught crash would — no drain, no goodbye. Queues keep their
// contents for DrainFailedCore. Fault-harness use.
func (e *Engine) KillCore(i int) {
	if i < 0 || i >= len(e.cores) {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.cores[i]
	if !c.killed.Swap(true) {
		close(c.kill)
	}
}

// StallCore wedges core i for d at its next loop check — the goroutine
// sleeps mid-iteration, heartbeats stop, queues back up, but the
// goroutine stays alive (so its rings stay untouchable). Fault-harness
// use.
func (e *Engine) StallCore(i int, d time.Duration) {
	if i < 0 || i >= len(e.cores) {
		return
	}
	select {
	case e.cores[i].stallC <- d:
	default:
	}
	e.wakeCore(i)
}

// InjectCorePanic makes core i panic at its next loop check; launchCore
// contains and counts it. Fault-harness use.
func (e *Engine) InjectCorePanic(i int) {
	if i < 0 || i >= len(e.cores) {
		return
	}
	e.cores[i].panicNext.Store(true)
	e.wakeCore(i)
}

// CoreBeat returns core i's loop-iteration counter — the heartbeat the
// slow-path watchdog samples for progress.
func (e *Engine) CoreBeat(i int) uint64 { return e.cores[i].beat.Load() }

// CoreExited reports whether core i's goroutine has provably exited
// (crash, contained panic, or engine stop). Only then may anyone else
// consume the core's single-consumer rings.
func (e *Engine) CoreExited(i int) bool { return e.cores[i].exited.Load() }

// CoreFailed reports whether the slow path has marked core i failed.
func (e *Engine) CoreFailed(i int) bool { return e.cores[i].failed.Load() }

// CorePanics returns the count of contained panics on core i.
func (e *Engine) CorePanics(i int) uint64 { return e.cores[i].stats.Panics.Load() }

// MarkCoreFailed is the slow path's failure verdict: exclude core i
// from RSS steering and rewrite the table around it. Idempotent;
// returns false if the core was already marked. The rewrite reuses the
// scale-event path (eager RSS update), so in-flight packets may still
// land on the dead core — they sit in its ring until DrainFailedCore or
// TCP retransmission recovers them.
func (e *Engine) MarkCoreFailed(i int) bool {
	if i < 0 || i >= len(e.cores) {
		return false
	}
	c := e.cores[i]
	if c.failed.Swap(true) {
		return false
	}
	e.RSS.SetFailed(i, true)
	e.RSS.SetCores(e.RSS.Cores())
	for j := range e.cores {
		e.wakeCore(j)
	}
	if telem := e.cfg.Telemetry; telem != nil {
		telem.Recorder.Ring(coresRingKey).Record(telemetry.FECoreFailed, 0, 0, 0, uint64(i))
	}
	return true
}

// ClearCoreFailed folds a revived core back into steering: clear its
// exclusion bit and rewrite the table so it receives buckets again (the
// normal scale-up path). The slow path calls this only after the core
// has proven itself with clean heartbeats.
func (e *Engine) ClearCoreFailed(i int) {
	if i < 0 || i >= len(e.cores) {
		return
	}
	c := e.cores[i]
	if !c.failed.Swap(false) {
		return
	}
	e.RSS.SetFailed(i, false)
	e.RSS.SetCores(e.RSS.Cores())
	for j := range e.cores {
		e.wakeCore(j)
	}
	if telem := e.cfg.Telemetry; telem != nil {
		telem.Recorder.Ring(coresRingKey).Record(telemetry.FECoreRevived, 0, 0, 0, uint64(i))
	}
}

// ReviveCore relaunches core i's goroutine after it exited (kill,
// contained panic). It resets the fault harness for the new
// incarnation. Returns false if the goroutine is still running (a
// stalled core cannot be revived — its goroutine still owns the rings)
// or the engine is stopped. Steering is NOT restored here; the slow
// path re-admits the core via ClearCoreFailed once heartbeats flow.
func (e *Engine) ReviveCore(i int) bool {
	if i < 0 || i >= len(e.cores) || e.stopped.Load() {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.cores[i]
	if !c.exited.Load() {
		return false
	}
	// Fresh kill channel for the new incarnation; the old goroutine
	// captured the previous one at entry, so closing history is inert.
	c.kill = make(chan struct{})
	c.killed.Store(false)
	c.panicNext.Store(false)
	select {
	case <-c.stallC:
	default:
	}
	e.launchCore(c)
	return true
}

// DrainFailedCore recovers the work stranded in a failed core's queues.
// If the goroutine has exited, its single-consumer rings have no
// consumer and may be safely drained here: received packets are
// re-Input (RSS now steers them to a survivor) and pending kicks
// re-issued. If the goroutine is merely stalled it still owns the
// rings; the backlog is counted stranded — those flows recover via
// normal RTO/fast-rexmit once migration kicks them. Returns how many
// items were requeued.
func (e *Engine) DrainFailedCore(i int) int {
	if i < 0 || i >= len(e.cores) {
		return 0
	}
	c := e.cores[i]
	if !c.exited.Load() {
		c.stats.Stranded.Add(uint64(c.rxRing.Len() + c.kicks.Len()))
		return 0
	}
	requeued := 0
	for {
		pkt, ok := c.rxRing.Dequeue()
		if !ok {
			break
		}
		e.Input(pkt)
		requeued++
	}
	for {
		f, ok := c.kicks.Dequeue()
		if !ok {
			break
		}
		e.KickFlow(f)
		requeued++
	}
	return requeued
}

// CoreFaultStats summarizes the data-plane failure domain for the
// facade's typed stats.
type CoreFaultStats struct {
	Failed  int    // cores currently excluded from steering
	Exited  int    // core goroutines currently not running
	Panics  uint64 // contained run-loop panics, all cores
	Strands uint64 // packets counted stranded (stalled cores)
}

// CoreFaults returns the engine-side failure-domain counters.
func (e *Engine) CoreFaults() CoreFaultStats {
	var st CoreFaultStats
	for _, c := range e.cores {
		if c.failed.Load() {
			st.Failed++
		}
		if c.exited.Load() {
			st.Exited++
		}
		st.Panics += c.stats.Panics.Load()
		st.Strands += c.stats.Stranded.Load()
	}
	return st
}
