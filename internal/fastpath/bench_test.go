package fastpath

import (
	"math"
	"os"
	"testing"

	"repro/internal/protocol"
	"repro/internal/telemetry"
)

// BenchmarkProcessRxInOrder measures the live fast path's common-case
// receive: header checks, payload deposit, ack generation, event post —
// the code Table 1 attributes ~0.8kc to (our Go version is measured
// here in wall time; -benchmem shows the allocation cost of ack
// packets).
func BenchmarkProcessRxInOrder(b *testing.B) { benchProcessRx(b, nil) }

// BenchmarkProcessRxTelemetryOn is the same receive path with the full
// telemetry surface attached: flight-ring event per data segment plus
// the run loop's per-batch cycle accounting (items every batch, wall
// time sampled 1-in-cycleSampleEvery), replicated here because the
// benchmark drives processRx directly rather than through run.
// TestTelemetryOverheadSmoke gates the delta against the plain path.
func BenchmarkProcessRxTelemetryOn(b *testing.B) {
	benchProcessRx(b, telemetry.New(telemetry.Config{Enabled: true}, 2))
}

func benchProcessRx(b *testing.B, telem *telemetry.Telemetry) {
	e, _ := testEngine()
	f := testFlow(e)
	if telem != nil {
		key := protocol.FlowKey{
			LocalIP: f.LocalIP, LocalPort: f.LocalPort,
			RemoteIP: f.PeerIP, RemotePort: f.PeerPort,
		}
		f.Rec = telem.Recorder.Ring(key.String())
		// Attach the telemetry handle to the engine too, so the RTT
		// sampler in processAck runs on this side of the comparison.
		e.cfg.Telemetry = telem
	}
	ctx := NewContext(0, 2, 1<<16)
	e.RegisterContext(ctx)
	f.Context = 0
	payload := make([]byte, 64)
	evs := make([]Event, 256)
	b.ReportAllocs()
	b.SetBytes(64)
	var t0 int64
	for i := 0; i < b.N; i++ {
		// Timestamps on both sides: the RTT estimator (and, telemetry-on,
		// its 1-in-rttSampleEvery histogram observation) is part of the
		// common-case receive being measured.
		now := e.NowMicros()
		pkt := &protocol.Packet{
			SrcIP: f.PeerIP, DstIP: f.LocalIP,
			SrcPort: f.PeerPort, DstPort: f.LocalPort,
			Flags: protocol.FlagACK, Seq: f.AckNo, Ack: f.SeqNo,
			Window: 64, Payload: payload, ECN: protocol.ECNECT0,
			HasTS: true, TSVal: now, TSEcr: now,
		}
		timed := telem != nil && i&(cycleSampleEvery-1) == 0
		if timed {
			t0 = telem.RefreshNow()
		}
		e.processRx(e.cores[0], pkt)
		if telem != nil {
			var nanos int64
			if timed {
				nanos = (telem.RefreshNow() - t0) * cycleSampleEvery
			}
			telem.Cycles.AddFast(0, telemetry.ModRx, nanos, 1)
		}
		if i%128 == 0 {
			ctx.PollEvents(evs)
			f.RxBuf.Release(f.RxBuf.Used()) // drain app side
		}
	}
}

// TestTelemetryOverheadSmoke asserts the instrumented receive path
// stays within 5% of the uninstrumented one. Single-threaded
// micro-benchmarks keep the comparison out of scheduler noise, but a
// wall-clock gate still belongs off the default test path: it runs
// only with TAS_TELEMETRY_SMOKE=1 (CI sets it in a dedicated job).
// The two sides are interleaved, best-of-three, so clock-speed drift
// over the test's lifetime biases neither.
func TestTelemetryOverheadSmoke(t *testing.T) {
	if os.Getenv("TAS_TELEMETRY_SMOKE") == "" {
		t.Skip("set TAS_TELEMETRY_SMOKE=1 to run the telemetry overhead gate")
	}
	off, on := math.MaxFloat64, math.MaxFloat64
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(BenchmarkProcessRxInOrder)
		off = math.Min(off, float64(r.NsPerOp()))
		r = testing.Benchmark(BenchmarkProcessRxTelemetryOn)
		on = math.Min(on, float64(r.NsPerOp()))
	}
	ratio := on / off
	t.Logf("processRx ns/op: telemetry off %.0f, on %.0f (ratio %.3f)", off, on, ratio)
	if ratio > 1.05 {
		t.Fatalf("telemetry-on fast path is %.1f%% slower than off (budget 5%%)", (ratio-1)*100)
	}
}

// BenchmarkTransmit measures the common-case send path: segmentation,
// header production, bucket accounting.
func BenchmarkTransmit(b *testing.B) {
	e, nic := testEngine()
	f := testFlow(e)
	f.Window = 0xffff
	chunk := make([]byte, 1448)
	b.ReportAllocs()
	b.SetBytes(1448)
	for i := 0; i < b.N; i++ {
		f.TxBuf.Write(chunk)
		f.Lock()
		e.transmit(e.cores[0], f)
		f.Unlock()
		// Ack everything so buffers stay empty.
		f.Lock()
		f.TxBuf.Release(int(f.TxSent))
		f.TxSent = 0
		f.Unlock()
		nic.out = nic.out[:0]
	}
}

// BenchmarkFlowLookup measures the sharded flow-table lookup on the
// packet path.
func BenchmarkFlowLookup(b *testing.B) {
	e, _ := testEngine()
	f := testFlow(e)
	key := f.Key().Reverse() // as a packet would present it
	_ = key
	pkt := &protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Table.Lookup(pkt.RxKey()) == nil {
			b.Fatal("lookup failed")
		}
	}
}
