package fastpath

import (
	"testing"

	"repro/internal/protocol"
)

// BenchmarkProcessRxInOrder measures the live fast path's common-case
// receive: header checks, payload deposit, ack generation, event post —
// the code Table 1 attributes ~0.8kc to (our Go version is measured
// here in wall time; -benchmem shows the allocation cost of ack
// packets).
func BenchmarkProcessRxInOrder(b *testing.B) {
	e, _ := testEngine()
	f := testFlow(e)
	ctx := NewContext(0, 2, 1<<16)
	e.RegisterContext(ctx)
	f.Context = 0
	payload := make([]byte, 64)
	evs := make([]Event, 256)
	b.ReportAllocs()
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		pkt := &protocol.Packet{
			SrcIP: f.PeerIP, DstIP: f.LocalIP,
			SrcPort: f.PeerPort, DstPort: f.LocalPort,
			Flags: protocol.FlagACK, Seq: f.AckNo, Ack: f.SeqNo,
			Window: 64, Payload: payload, ECN: protocol.ECNECT0,
		}
		e.processRx(e.cores[0], pkt)
		if i%128 == 0 {
			ctx.PollEvents(evs)
			f.RxBuf.Release(f.RxBuf.Used()) // drain app side
		}
	}
}

// BenchmarkTransmit measures the common-case send path: segmentation,
// header production, bucket accounting.
func BenchmarkTransmit(b *testing.B) {
	e, nic := testEngine()
	f := testFlow(e)
	f.Window = 0xffff
	chunk := make([]byte, 1448)
	b.ReportAllocs()
	b.SetBytes(1448)
	for i := 0; i < b.N; i++ {
		f.TxBuf.Write(chunk)
		f.Lock()
		e.transmit(e.cores[0], f)
		f.Unlock()
		// Ack everything so buffers stay empty.
		f.Lock()
		f.TxBuf.Release(int(f.TxSent))
		f.TxSent = 0
		f.Unlock()
		nic.out = nic.out[:0]
	}
}

// BenchmarkFlowLookup measures the sharded flow-table lookup on the
// packet path.
func BenchmarkFlowLookup(b *testing.B) {
	e, _ := testEngine()
	f := testFlow(e)
	key := f.Key().Reverse() // as a packet would present it
	_ = key
	pkt := &protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if e.Table.Lookup(pkt.RxKey()) == nil {
			b.Fatal("lookup failed")
		}
	}
}
