package fastpath

import (
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

// waitFor polls cond up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoreKillAndRevive: KillCore makes the goroutine exit as a crash
// would — heartbeats freeze, exited flips — while the other core keeps
// beating; ReviveCore relaunches it and the heartbeat resumes.
func TestCoreKillAndRevive(t *testing.T) {
	e, _ := testEngine()
	e.Start()
	defer e.Stop()

	waitFor(t, "core 0 first beats", func() bool { return e.CoreBeat(0) > 0 })
	if e.CoreExited(0) {
		t.Fatal("core 0 exited while healthy")
	}
	// Revive on a running core must refuse.
	if e.ReviveCore(0) {
		t.Fatal("ReviveCore succeeded on a live core")
	}

	e.KillCore(0)
	waitFor(t, "core 0 exit", func() bool { return e.CoreExited(0) })
	frozen := e.CoreBeat(0)
	before1 := e.CoreBeat(1)
	time.Sleep(150 * time.Millisecond)
	if got := e.CoreBeat(0); got != frozen {
		t.Fatalf("dead core 0 beat advanced %d -> %d", frozen, got)
	}
	waitFor(t, "core 1 still beating", func() bool { return e.CoreBeat(1) > before1 })

	if !e.ReviveCore(0) {
		t.Fatal("ReviveCore failed on an exited core")
	}
	waitFor(t, "revived core 0 beats", func() bool { return e.CoreBeat(0) > frozen })
	if e.CoreExited(0) {
		t.Fatal("revived core 0 still marked exited")
	}
}

// TestCorePanicContained: an injected run-loop panic must not escape to
// the process — launchCore contains it, counts it, and marks the core
// exited, exactly like a kill.
func TestCorePanicContained(t *testing.T) {
	e, _ := testEngine()
	e.Start()
	defer e.Stop()

	waitFor(t, "core 0 beats", func() bool { return e.CoreBeat(0) > 0 })
	e.InjectCorePanic(0)
	waitFor(t, "core 0 exit after panic", func() bool { return e.CoreExited(0) })
	if got := e.CorePanics(0); got != 1 {
		t.Fatalf("CorePanics = %d, want 1", got)
	}
	if st := e.CoreFaults(); st.Panics != 1 || st.Exited != 1 {
		t.Fatalf("CoreFaults = %+v", st)
	}
	// The harness resets across incarnations: a revived core runs clean.
	if !e.ReviveCore(0) {
		t.Fatal("ReviveCore failed after panic")
	}
	beat := e.CoreBeat(0)
	waitFor(t, "revived core beats", func() bool { return e.CoreBeat(0) > beat })
	if got := e.CorePanics(0); got != 1 {
		t.Fatalf("CorePanics after revive = %d, want still 1", got)
	}
}

// TestDrainFailedCoreRequeues: packets sitting in a dead core's receive
// ring are requeued through Input — which, after the failure re-steer,
// delivers them to a survivor — and a stalled (not exited) core's ring
// is left alone (single-consumer safety) with its backlog counted
// stranded.
func TestDrainFailedCoreRequeues(t *testing.T) {
	e, _ := testEngine()
	e.Start()
	defer e.Stop()
	f := testFlow(e)

	// Kill core 0 and wait for the goroutine to be provably gone, then
	// park packets in its ring (RSS still steers to it pre-verdict).
	e.KillCore(0)
	waitFor(t, "core 0 exit", func() bool { return e.CoreExited(0) })
	if want := e.RSS.CoreForPacket(dataPkt(f, 5000, []byte("x"))); want != 0 {
		t.Skipf("test flow hashes to core %d, want 0", want)
	}
	for i := 0; i < 5; i++ {
		e.Input(dataPkt(f, 5000, []byte("hello")))
	}
	if got := e.cores[0].rxRing.Len(); got != 5 {
		t.Fatalf("dead core ring holds %d packets, want 5", got)
	}

	if !e.MarkCoreFailed(0) {
		t.Fatal("MarkCoreFailed returned false")
	}
	if e.MarkCoreFailed(0) {
		t.Fatal("MarkCoreFailed not idempotent")
	}
	if requeued := e.DrainFailedCore(0); requeued != 5 {
		t.Fatalf("DrainFailedCore requeued %d, want 5", requeued)
	}
	if got := e.cores[0].rxRing.Len(); got != 0 {
		t.Fatalf("dead core ring still holds %d packets", got)
	}
	// The survivor actually processed them: the flow acked the payload.
	waitFor(t, "survivor processes requeued data", func() bool {
		f.Lock()
		defer f.Unlock()
		return f.AckNo == 5005
	})

	// Stalled core: goroutine alive, rings untouchable.
	e.StallCore(1, 10*time.Second)
	waitFor(t, "core 1 stall", func() bool {
		b := e.CoreBeat(1)
		time.Sleep(20 * time.Millisecond)
		return e.CoreBeat(1) == b
	})
	e.cores[1].rxRing.Enqueue(dataPkt(f, 6000, []byte("stuck")))
	if requeued := e.DrainFailedCore(1); requeued != 0 {
		t.Fatalf("drained %d items from a stalled core's ring", requeued)
	}
	if got := e.cores[1].stats.Stranded.Load(); got != 1 {
		t.Fatalf("Stranded = %d, want 1", got)
	}
	if d := e.Drops(); d.CoreStranded != 1 {
		t.Fatalf("Drops().CoreStranded = %d, want 1", d.CoreStranded)
	}
}

// TestStopBoundedStalledCore: Engine.Stop must complete within its
// bound even when a core goroutine is wedged mid-iteration and never
// reaches the loop's stop check.
func TestStopBoundedStalledCore(t *testing.T) {
	e, _ := testEngine()
	e.Start()
	waitFor(t, "core 0 beats", func() bool { return e.CoreBeat(0) > 0 })
	e.StallCore(0, time.Hour)
	waitFor(t, "core 0 wedged", func() bool {
		b := e.CoreBeat(0)
		time.Sleep(20 * time.Millisecond)
		return e.CoreBeat(0) == b
	})

	start := time.Now()
	e.Stop()
	if took := time.Since(start); took > stopTimeout+time.Second {
		t.Fatalf("Stop took %v with a stalled core, want <= ~%v", took, stopTimeout)
	}
}

// TestSetActiveCoresConcurrentTraffic is the race-regression test for
// live re-steering: SetActiveCores rewrites RSS while cores are mid
// processRx and drainCtxTx, and packets keep arriving throughout. The
// per-flow spinlock and wrong-core tolerance must hold under -race;
// every steering decision lands on a core inside [0, MaxCores).
func TestSetActiveCoresConcurrentTraffic(t *testing.T) {
	nic := &syncNIC{}
	e := NewEngine(nic, Config{
		LocalIP:  protocol.MakeIPv4(10, 0, 0, 1),
		LocalMAC: protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 1)),
		MaxCores: 4,
	})
	e.Start()
	defer e.Stop()
	f := testFlow(e)
	ctx := NewContext(0, 4, 64)
	e.RegisterContext(ctx)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// RX feeder: a stream of (duplicate) data segments.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Input(dataPkt(f, 5000, []byte("payload")))
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	// TX feeder: descriptors and kicks racing the rewrites.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.PushTxCmd(ctx, TxCmd{Op: OpTx, Flow: f})
			e.KickFlow(f)
			if i%16 == 0 {
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()

	// Scaling churn: the slow path's decision loop at high frequency.
	for iter := 0; iter < 500; iter++ {
		e.SetActiveCores(1 + iter%4)
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()

	var processed uint64
	for i := 0; i < e.MaxCores(); i++ {
		processed += e.Stats(i).RxPackets.Load()
	}
	if processed == 0 {
		t.Fatal("no packets processed during scaling churn")
	}
}
