// Package baseline builds modeled RPC server endpoints for the four
// compared stack architectures — Linux (monolithic in-kernel), IX
// (protected kernel bypass, run-to-completion), mTCP (per-core user-level
// stacks with batching), and TAS (dedicated fast-path cores) — on top of
// the cpumodel cost tables. These endpoints power the request-level
// benchmark simulations: each request charges the stack's per-module
// cycles (plus emergent cache and lock penalties) on simulated cores
// laid out the way that architecture lays them out, so throughput,
// latency distribution, connection scalability, and core scaling emerge
// from the structure rather than being dialed in.
package baseline

import (
	"repro/internal/cpumodel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ServerConfig describes one server under test.
type ServerConfig struct {
	Kind cpumodel.StackKind

	// AppCores run the application; for Linux and IX the network stack
	// runs on the same cores. StackCores are dedicated stack cores (TAS
	// fast path, mTCP stack threads); ignored for Linux/IX.
	AppCores   int
	StackCores int

	// Conns is the concurrent connection count (drives cache pressure).
	Conns int

	CyclesPerNs float64             // clock (0 = paper's 2.1 GHz)
	Cache       cpumodel.CacheModel // zero value = DefaultCache(total cores)

	// AppCycles overrides the application cycles per request (0 = the
	// cost table's measured App value).
	AppCycles float64

	// Costs overrides the stack cost table (nil = CostsFor(Kind)).
	Costs *cpumodel.Costs
}

// AppWork describes application-level work for one request beyond the
// per-request cycles: an optional serialized critical section (a shared
// lock such as a hot key-value pair), executed on a dedicated serial
// resource.
type AppWork struct {
	ExtraCycles  float64
	Serial       *cpumodel.Core // shared serial resource, or nil
	SerialCycles float64
}

// Server is a modeled RPC endpoint.
type Server struct {
	eng   *sim.Engine
	cfg   ServerConfig
	costs cpumodel.Costs
	cache cpumodel.CacheModel

	app *cpumodel.Pool
	stk *cpumodel.Pool

	// activeFP is the number of fast-path cores currently in use
	// (TAS workload proportionality); always StackCores for mTCP.
	activeFP int

	// Cold-cache state per stack core: requests on a newly woken core
	// pay extra cycles until the core has warmed.
	coldUntil []sim.Time

	// ColdPeriod and ColdExtraCycles model the transient after a core
	// is added (Figure 15's latency blip).
	ColdPeriod      sim.Time
	ColdExtraCycles float64

	// Requests served (for throughput accounting).
	Served uint64
}

// NewServer builds the endpoint.
func NewServer(eng *sim.Engine, cfg ServerConfig) *Server {
	if cfg.AppCores <= 0 {
		cfg.AppCores = 1
	}
	costs := cpumodel.CostsFor(cfg.Kind)
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	if cfg.AppCycles > 0 {
		costs.App = cfg.AppCycles
	}
	dedicated := cfg.Kind == cpumodel.StackTAS || cfg.Kind == cpumodel.StackTASLL || cfg.Kind == cpumodel.StackMTCP
	if dedicated && cfg.StackCores <= 0 {
		cfg.StackCores = 1
	}
	if !dedicated {
		cfg.StackCores = 0
	}
	cache := cfg.Cache
	if cache.CacheBytes == 0 {
		cache = cpumodel.DefaultCache(cfg.AppCores + cfg.StackCores)
	}
	s := &Server{
		eng: eng, cfg: cfg, costs: costs, cache: cache,
		app:             cpumodel.NewPool(eng, cfg.AppCores, cfg.CyclesPerNs),
		activeFP:        cfg.StackCores,
		ColdPeriod:      2 * sim.Millisecond,
		ColdExtraCycles: 2500,
	}
	if cfg.StackCores > 0 {
		s.stk = cpumodel.NewPool(eng, cfg.StackCores, cfg.CyclesPerNs)
		s.coldUntil = make([]sim.Time, cfg.StackCores)
	}
	return s
}

// Costs returns the effective cost table.
func (s *Server) Costs() cpumodel.Costs { return s.costs }

// AllCores returns every core (app then stack) for cycle accounting.
func (s *Server) AllCores() []*cpumodel.Core {
	out := append([]*cpumodel.Core(nil), s.app.Cores...)
	if s.stk != nil {
		out = append(out, s.stk.Cores...)
	}
	return out
}

// TotalCores returns app + active stack cores.
func (s *Server) TotalCores() int { return s.cfg.AppCores + s.activeFP }

// ActiveFP returns the number of active fast-path cores.
func (s *Server) ActiveFP() int { return s.activeFP }

// extraStack returns emergent per-request stack-side penalty cycles.
func (s *Server) extraStack() float64 {
	extra := s.cache.ExtraCycles(s.costs, s.cfg.Conns)
	switch s.cfg.Kind {
	case cpumodel.StackLinux:
		extra += cpumodel.LockExtraCycles(s.costs, s.cfg.AppCores)
	}
	if extra < 0 {
		extra = 0
	}
	return extra
}

// stackCoreFor picks the fast-path core for a connection and applies the
// cold-cache surcharge when the core was recently activated.
func (s *Server) stackCoreFor(conn uint32) (*cpumodel.Core, float64) {
	n := s.activeFP
	if n < 1 {
		n = 1
	}
	idx := int(conn) % n
	core := s.stk.Cores[idx]
	var cold float64
	if s.coldUntil[idx] > s.eng.Now() {
		cold = s.ColdExtraCycles
	}
	return core, cold
}

// schedDelay samples the stack's notification latency: the time from
// packet arrival to the stack starting to process it (interrupt/wakeup
// path for Linux, adaptive polling for IX, spinning cores for TAS),
// including rare scheduler outliers.
func (s *Server) schedDelay() sim.Time {
	c := s.costs
	d := c.PollBase
	if c.PollJitter > 0 {
		d += sim.Time(s.eng.Rand().ExpFloat64() * float64(c.PollJitter))
	}
	if c.SpikeProb > 0 && s.eng.Rand().Float64() < c.SpikeProb {
		d += c.SpikeDelay
	}
	return d
}

// Request submits one RPC for the given connection. done fires when the
// response has been handed to the NIC, with the server-side latency.
func (s *Server) Request(conn uint32, work AppWork, done func(latency sim.Time)) {
	start := s.eng.Now()
	if d := s.schedDelay(); d > 0 {
		s.eng.After(d, func() { s.request(conn, work, done, start) })
		return
	}
	s.request(conn, work, done, start)
}

func (s *Server) request(conn uint32, work AppWork, done func(latency sim.Time), start sim.Time) {
	finish := func() {
		s.Served++
		if done != nil {
			done(s.eng.Now() - start)
		}
	}
	appCore := s.app.ByHash(conn, s.cfg.AppCores)
	appCycles := s.costs.App + work.ExtraCycles

	runApp := func(then func()) {
		appCore.ExecMod(telemetry.ModAppCopy, appCycles, func() {
			if work.Serial != nil && work.SerialCycles > 0 {
				work.Serial.Exec(work.SerialCycles, then)
			} else {
				then()
			}
		})
	}

	switch s.cfg.Kind {
	case cpumodel.StackLinux, cpumodel.StackIX:
		// Run-to-completion: stack rx + app + stack tx execute as one
		// uninterrupted block on the app core (re-queueing the app half
		// would let unrelated requests interleave, which monolithic
		// stacks do not do).
		// The whole block attributes to "other" in the module view:
		// monolithic stacks have no rx/tx pipeline split to charge.
		total := s.costs.StackCycles() + s.extraStack() + appCycles
		appCore.ExecMod(telemetry.ModOther, total, func() {
			if work.Serial != nil && work.SerialCycles > 0 {
				work.Serial.Exec(work.SerialCycles, finish)
			} else {
				finish()
			}
		})

	case cpumodel.StackMTCP:
		// Per-core stack threads with batched handoff in both
		// directions: work is correct but delivery quantizes to batch
		// boundaries.
		stkCore, cold := s.stackCoreFor(conn)
		stack := s.costs.StackCycles() + s.extraStack() + cold
		rx := stack * s.costs.RxFraction
		tx := stack - rx
		stkCore.ExecMod(telemetry.ModRx, rx, func() {
			s.atNextBatch(func() {
				runApp(func() {
					s.atNextBatch(func() {
						stkCore.ExecMod(telemetry.ModTx, tx, finish)
					})
				})
			})
		})

	case cpumodel.StackTAS, cpumodel.StackTASLL:
		// Pipeline: fast-path core (rx) -> app core (sockets + app) ->
		// fast-path core (tx). Sockets-layer cycles execute on the app
		// core (libTAS is linked into the application); protocol cycles
		// and the per-flow state footprint live on the fast path.
		stkCore, cold := s.stackCoreFor(conn)
		proto := s.costs.Driver + s.costs.IP + s.costs.TCP + s.costs.Other + s.extraStack() + cold
		rx := proto * s.costs.RxFraction
		tx := proto - rx
		sockets := s.costs.Sockets
		stkCore.ExecMod(telemetry.ModRx, rx, func() {
			appCore.ExecMod(telemetry.ModAppCopy, sockets+appCycles, func() {
				postApp := func() { stkCore.ExecMod(telemetry.ModTx, tx, finish) }
				if work.Serial != nil && work.SerialCycles > 0 {
					work.Serial.Exec(work.SerialCycles, postApp)
				} else {
					postApp()
				}
			})
		})
	}
}

// atNextBatch delays fn to the next batch boundary (mTCP's batched
// queues); BatchDelay 0 runs fn immediately.
func (s *Server) atNextBatch(fn func()) {
	d := s.costs.BatchDelay
	if d <= 0 {
		fn()
		return
	}
	now := s.eng.Now()
	next := (now/d + 1) * d
	s.eng.At(next, fn)
}

// SetActiveFP changes the number of active fast-path cores (TAS workload
// proportionality). Newly activated cores start cold and pay a wakeup.
func (s *Server) SetActiveFP(n int) {
	if s.stk == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	if n > len(s.stk.Cores) {
		n = len(s.stk.Cores)
	}
	for i := s.activeFP; i < n; i++ {
		s.stk.Cores[i].Blocked = true
		s.coldUntil[i] = s.eng.Now() + s.ColdPeriod
		// Freshly activated cores must not report their idle past as
		// idle capacity (the monitor would immediately shed them).
		s.stk.Cores[i].ResetSample()
	}
	s.activeFP = n
}

// FPUtilization returns average utilization across active fast-path
// cores and resets their sampling windows.
func (s *Server) FPUtilization() float64 {
	if s.stk == nil || s.activeFP == 0 {
		return 0
	}
	return s.stk.Utilization(s.activeFP)
}

// Monitor runs the slow path's core-scaling policy (§3.4): every
// interval, if aggregate idle capacity exceeds removeIdle cores, drop a
// core; if it falls below addIdle, add one. Returns the ticker so the
// caller can stop it.
func (s *Server) Monitor(interval sim.Time, addIdle, removeIdle float64, onChange func(cores int)) *sim.Timer {
	// Debounce: a condition must hold for two consecutive samples
	// before acting, so queue-drain transients after a re-steer don't
	// flap the core count.
	var addPend, remPend int
	return s.eng.Every(interval, func() {
		u := s.FPUtilization()
		idle := (1 - u) * float64(s.activeFP)
		switch {
		case idle > removeIdle && s.activeFP > 1:
			addPend = 0
			remPend++
			if remPend >= 2 {
				remPend = 0
				s.SetActiveFP(s.activeFP - 1)
				if onChange != nil {
					onChange(s.activeFP)
				}
			}
		case idle < addIdle && s.activeFP < len(s.stk.Cores):
			remPend = 0
			addPend++
			if addPend >= 2 {
				addPend = 0
				s.SetActiveFP(s.activeFP + 1)
				if onChange != nil {
					onChange(s.activeFP)
				}
			}
		default:
			addPend, remPend = 0, 0
		}
	})
}
