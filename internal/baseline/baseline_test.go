package baseline

import (
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/sim"
)

func closedLoop(t *testing.T, kind cpumodel.StackKind, appCores, stackCores, conns int, dur sim.Time) LoadResult {
	t.Helper()
	eng := sim.New(1)
	srv := NewServer(eng, ServerConfig{
		Kind: kind, AppCores: appCores, StackCores: stackCores, Conns: conns,
	})
	return RunClosedLoop(eng, srv, ClosedLoopConfig{
		Conns: conns, NetRTT: 20 * sim.Microsecond,
		Duration: dur, Warmup: 5 * sim.Millisecond,
	})
}

func TestThroughputOrderingAtSaturation(t *testing.T) {
	// 8 total cores, 1024 conns: TAS ~ IX >> Linux (Fig 4's left side).
	lin := closedLoop(t, cpumodel.StackLinux, 8, 0, 1024, 50*sim.Millisecond)
	ix := closedLoop(t, cpumodel.StackIX, 8, 0, 1024, 50*sim.Millisecond)
	tas := closedLoop(t, cpumodel.StackTASLL, 5, 3, 1024, 50*sim.Millisecond)
	if !(tas.Throughput > 3*lin.Throughput) {
		t.Fatalf("TAS %.2f mOps should be >3x Linux %.2f mOps", tas.MOps(), lin.MOps())
	}
	ratio := tas.Throughput / ix.Throughput
	if ratio < 0.6 || ratio > 1.8 {
		t.Fatalf("TAS/IX ratio %.2f out of plausible band (TAS %.2f, IX %.2f mOps)", ratio, tas.MOps(), ix.MOps())
	}
}

func TestConnectionScalabilityShape(t *testing.T) {
	// Increasing conns 1K -> 96K: TAS degrades a little, IX a lot
	// (Fig 4's right side).
	run := func(kind cpumodel.StackKind, app, stk, conns int) float64 {
		return closedLoop(t, kind, app, stk, conns, 30*sim.Millisecond).Throughput
	}
	tasLo := run(cpumodel.StackTASLL, 12, 8, 4096)
	tasHi := run(cpumodel.StackTASLL, 12, 8, 96<<10)
	ixLo := run(cpumodel.StackIX, 20, 0, 4096)
	ixHi := run(cpumodel.StackIX, 20, 0, 96<<10)
	tasDrop := 1 - tasHi/tasLo
	ixDrop := 1 - ixHi/ixLo
	if tasDrop > 0.15 {
		t.Fatalf("TAS degradation %.2f too large", tasDrop)
	}
	if ixDrop < 0.3 {
		t.Fatalf("IX degradation %.2f too small (TAS %.2f)", ixDrop, tasDrop)
	}
	if tasHi < 1.5*ixHi {
		t.Fatalf("at 96K conns TAS (%.0f) should beat IX (%.0f) by >1.5x", tasHi, ixHi)
	}
}

func TestLatencyOrderingLightLoad(t *testing.T) {
	// At 15% utilization, median latency: TAS < IX < Linux (Table 5).
	lat := func(kind cpumodel.StackKind, app, stk int) (p50, p99 float64) {
		eng := sim.New(2)
		srv := NewServer(eng, ServerConfig{Kind: kind, AppCores: app, StackCores: stk, Conns: 256})
		// Capacity of 1 app core pipeline ~ totalCycles; run at 15%.
		cost := srv.Costs().TotalCycles()
		rate := 0.15 * 2.1e9 / cost
		res := RunOpenLoop(eng, srv, OpenLoopConfig{
			RatePerSec: rate, Conns: 256, NetRTT: 10 * sim.Microsecond,
			Duration: 200 * sim.Millisecond, Warmup: 20 * sim.Millisecond,
		})
		return res.Latency.Quantile(0.5), res.Latency.Quantile(0.99)
	}
	l50, l99 := lat(cpumodel.StackLinux, 1, 0)
	i50, i99 := lat(cpumodel.StackIX, 1, 0)
	t50, t99 := lat(cpumodel.StackTAS, 1, 1)
	if !(t50 < i50 && i50 < l50) {
		t.Fatalf("median ordering: TAS %.0f IX %.0f Linux %.0f", t50, i50, l50)
	}
	if !(t99 < l99 && i99 < l99) {
		t.Fatalf("tail ordering: TAS %.0f IX %.0f Linux %.0f", t99, i99, l99)
	}
	// Linux should be several times slower at the median (paper: 5.6x).
	if l50/t50 < 3 {
		t.Fatalf("Linux/TAS median ratio %.1f too small", l50/t50)
	}
}

func TestMTCPBatchingAddsLatencyNotThroughputLoss(t *testing.T) {
	eng := sim.New(3)
	srv := NewServer(eng, ServerConfig{Kind: cpumodel.StackMTCP, AppCores: 4, StackCores: 2, Conns: 1024})
	res := RunClosedLoop(eng, srv, ClosedLoopConfig{
		Conns: 1024, NetRTT: 20 * sim.Microsecond,
		Duration: 50 * sim.Millisecond, Warmup: 10 * sim.Millisecond,
	})
	// Latency dominated by the 2x batch delay (~2ms quantization each way).
	if res.Latency.Quantile(0.5) < 1e6 {
		t.Fatalf("mTCP median latency %.0fns should reflect batching", res.Latency.Quantile(0.5))
	}
	if res.Throughput == 0 {
		t.Fatal("no throughput")
	}
	// Closed loop with batching: throughput limited by latency, not CPU.
	lin := closedLoop(t, cpumodel.StackLinux, 6, 0, 1024, 50*sim.Millisecond)
	_ = lin
}

func TestSerialResourceLimitsThroughput(t *testing.T) {
	// A hot-key critical section caps throughput regardless of cores
	// (Table 7's non-scalable workload).
	run := func(serialCycles float64) float64 {
		eng := sim.New(4)
		srv := NewServer(eng, ServerConfig{Kind: cpumodel.StackTASLL, AppCores: 4, StackCores: 4, Conns: 256})
		lock := cpumodel.NewCore(eng, 2.1)
		res := RunClosedLoop(eng, srv, ClosedLoopConfig{
			Conns: 256, NetRTT: 20 * sim.Microsecond,
			Work: func(uint32) AppWork {
				return AppWork{Serial: lock, SerialCycles: serialCycles}
			},
			Duration: 30 * sim.Millisecond, Warmup: 5 * sim.Millisecond,
		})
		return res.Throughput
	}
	free := run(0)
	locked := run(800) // 800-cycle critical section -> ~2.6 mOps cap
	if locked >= free {
		t.Fatalf("critical section should reduce throughput: %.0f vs %.0f", locked, free)
	}
	cap800 := 2.1e9 / 800
	if locked > cap800*1.05 {
		t.Fatalf("throughput %.0f exceeds serial cap %.0f", locked, cap800)
	}
	if locked < cap800*0.5 {
		t.Fatalf("throughput %.0f far below serial cap %.0f — lock model broken", locked, cap800)
	}
}

func TestWorkloadProportionalScaling(t *testing.T) {
	// Load steps up: monitor must add cores; load steps down: remove.
	eng := sim.New(5)
	srv := NewServer(eng, ServerConfig{Kind: cpumodel.StackTAS, AppCores: 4, StackCores: 8, Conns: 512})
	srv.SetActiveFP(1)
	var coreHist []int
	srv.Monitor(sim.Millisecond, 0.2, 1.25, func(n int) { coreHist = append(coreHist, n) })

	// Heavy closed loop for 100ms.
	stop := false
	var issue func(conn uint32)
	issue = func(conn uint32) {
		srv.Request(conn, AppWork{}, func(sim.Time) {
			if !stop {
				eng.After(5*sim.Microsecond, func() { issue(conn) })
			}
		})
	}
	for c := 0; c < 256; c++ {
		issue(uint32(c))
	}
	eng.RunUntil(100 * sim.Millisecond)
	grown := srv.ActiveFP()
	if grown < 2 {
		t.Fatalf("under load, FP cores should grow: %d", grown)
	}
	// Stop load: cores must shrink back.
	stop = true
	eng.RunUntil(300 * sim.Millisecond)
	if srv.ActiveFP() != 1 {
		t.Fatalf("after load stops, FP cores should shrink to 1, got %d", srv.ActiveFP())
	}
	if len(coreHist) < 2 {
		t.Fatal("monitor never adjusted cores")
	}
}

func TestSetActiveFPBounds(t *testing.T) {
	eng := sim.New(6)
	srv := NewServer(eng, ServerConfig{Kind: cpumodel.StackTAS, AppCores: 1, StackCores: 4, Conns: 16})
	srv.SetActiveFP(0)
	if srv.ActiveFP() != 1 {
		t.Fatal("clamped to 1")
	}
	srv.SetActiveFP(100)
	if srv.ActiveFP() != 4 {
		t.Fatal("clamped to max")
	}
	// Linux server: no FP cores; SetActiveFP is a no-op.
	lin := NewServer(eng, ServerConfig{Kind: cpumodel.StackLinux, AppCores: 2, Conns: 16})
	lin.SetActiveFP(3)
	if lin.ActiveFP() != 0 {
		t.Fatal("Linux has no FP cores")
	}
}

func TestColdCoreLatencyBlip(t *testing.T) {
	// Right after a scale-up, requests on the new core are slower.
	eng := sim.New(7)
	srv := NewServer(eng, ServerConfig{Kind: cpumodel.StackTAS, AppCores: 2, StackCores: 2, Conns: 16})
	srv.SetActiveFP(1)
	var warm, cold sim.Time
	srv.Request(1, AppWork{}, func(l sim.Time) { warm = l })
	eng.Run()
	srv.SetActiveFP(2)
	srv.Request(1, AppWork{}, func(l sim.Time) { cold = l }) // conn 1 now maps to core 1 (new, cold+blocked)
	eng.Run()
	if cold <= warm {
		t.Fatalf("request on cold new core should be slower: warm=%d cold=%d", warm, cold)
	}
}

func TestClosedLoopLatencyIncludesRTT(t *testing.T) {
	eng := sim.New(8)
	srv := NewServer(eng, ServerConfig{Kind: cpumodel.StackIX, AppCores: 1, Conns: 1})
	res := RunClosedLoop(eng, srv, ClosedLoopConfig{
		Conns: 1, NetRTT: 100 * sim.Microsecond,
		Duration: 20 * sim.Millisecond, Warmup: sim.Millisecond,
	})
	if res.Latency.Min() < 100_000 {
		t.Fatalf("latency %.0f must include the 100us RTT", res.Latency.Min())
	}
	if res.Requests == 0 {
		t.Fatal("no requests measured")
	}
}
