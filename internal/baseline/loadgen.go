package baseline

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// ClientModel adds the client-side contribution to end-to-end latency:
// the paper measures latency from the client, so the client stack's
// per-request cycles (on unloaded client cores) appear as fixed delay.
type ClientModel struct {
	CyclesPerReq float64
	CyclesPerNs  float64
}

// Latency returns the client-side processing delay.
func (c ClientModel) Latency() sim.Time {
	if c.CyclesPerNs <= 0 {
		return sim.Time(c.CyclesPerReq / 2.2) // 2.2 GHz client machines
	}
	return sim.Time(c.CyclesPerReq / c.CyclesPerNs)
}

// ClosedLoopConfig drives a server with a fixed number of connections,
// each keeping exactly one request in flight (the paper's RPC echo and
// key-value benchmarks).
type ClosedLoopConfig struct {
	Conns    int
	NetRTT   sim.Time    // network round trip (both directions total)
	Client   ClientModel // client-side processing
	Work     func(conn uint32) AppWork
	Duration sim.Time // measurement window
	Warmup   sim.Time // excluded from stats
	// Pipeline is the number of outstanding requests per connection
	// (default 1; >1 models pipelined RPC, §5.1).
	Pipeline int
}

// LoadResult reports a load generation run.
type LoadResult struct {
	Requests   uint64
	Duration   sim.Time
	Latency    *stats.Histogram // end-to-end latency, ns
	Throughput float64          // requests/s over the measured window

	// CyclesPerReq is the measured CPU cost: busy cycles accumulated
	// across all server cores during the window, divided by requests
	// completed in the window (the hardware-counter methodology of
	// §2.2). Zero when no requests completed.
	CyclesPerReq float64
}

// MOps returns throughput in million operations per second.
func (r LoadResult) MOps() float64 { return r.Throughput / 1e6 }

// RunClosedLoop drives the server and returns measured throughput and
// latency over the window after warmup.
func RunClosedLoop(eng *sim.Engine, srv *Server, cfg ClosedLoopConfig) LoadResult {
	if cfg.Work == nil {
		cfg.Work = func(uint32) AppWork { return AppWork{} }
	}
	hist := stats.NewLatencyHistogram()
	var measured uint64
	measStart := eng.Now() + cfg.Warmup
	measEnd := measStart + cfg.Duration

	var busyAtStart, servedAtStart float64
	eng.At(measStart, func() {
		for _, c := range srv.AllCores() {
			busyAtStart += c.TotalCycles
		}
		servedAtStart = float64(measured)
	})

	var issue func(conn uint32)
	issue = func(conn uint32) {
		sent := eng.Now()
		// Half RTT to reach the server.
		eng.After(cfg.NetRTT/2, func() {
			srv.Request(conn, cfg.Work(conn), func(sim.Time) {
				// Half RTT back plus client processing.
				eng.After(cfg.NetRTT/2+cfg.Client.Latency(), func() {
					now := eng.Now()
					if now >= measStart && now < measEnd {
						measured++
						hist.Add(float64(now - sent))
					}
					if now < measEnd {
						issue(conn)
					}
				})
			})
		})
	}
	pipe := cfg.Pipeline
	if pipe < 1 {
		pipe = 1
	}
	for c := 0; c < cfg.Conns; c++ {
		conn := uint32(c)
		for p := 0; p < pipe; p++ {
			// Stagger starts across one RTT to avoid a thundering herd.
			eng.After(sim.Time(int64(cfg.NetRTT)*int64(c*pipe+p)/int64(cfg.Conns*pipe+1)), func() { issue(conn) })
		}
	}
	eng.RunUntil(measEnd)
	var busyEnd float64
	for _, c := range srv.AllCores() {
		busyEnd += c.TotalCycles
	}
	res := LoadResult{
		Requests: measured, Duration: cfg.Duration, Latency: hist,
		Throughput: float64(measured) / (float64(cfg.Duration) / 1e9),
	}
	if served := float64(measured) - servedAtStart; served > 0 {
		res.CyclesPerReq = (busyEnd - busyAtStart) / served
	}
	return res
}

// OpenLoopConfig drives the server with Poisson arrivals at a fixed
// rate, for latency-versus-load experiments (Figure 9 runs at 15% of
// capacity).
type OpenLoopConfig struct {
	RatePerSec float64
	Conns      int
	NetRTT     sim.Time
	Client     ClientModel
	Work       func(conn uint32) AppWork
	Duration   sim.Time
	Warmup     sim.Time
}

// RunOpenLoop generates Poisson load and returns the latency
// distribution.
func RunOpenLoop(eng *sim.Engine, srv *Server, cfg OpenLoopConfig) LoadResult {
	if cfg.Work == nil {
		cfg.Work = func(uint32) AppWork { return AppWork{} }
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	hist := stats.NewLatencyHistogram()
	var measured uint64
	measStart := eng.Now() + cfg.Warmup
	measEnd := measStart + cfg.Duration
	gap := stats.NewExp(eng.Rand(), 1e9/cfg.RatePerSec)

	var arrive func()
	arrive = func() {
		if eng.Now() >= measEnd {
			return
		}
		conn := uint32(eng.Rand().Intn(cfg.Conns))
		sent := eng.Now()
		eng.After(cfg.NetRTT/2, func() {
			srv.Request(conn, cfg.Work(conn), func(sim.Time) {
				eng.After(cfg.NetRTT/2+cfg.Client.Latency(), func() {
					now := eng.Now()
					if now >= measStart && now < measEnd {
						measured++
						hist.Add(float64(now - sent))
					}
				})
			})
		})
		eng.After(sim.Time(gap.Draw()), arrive)
	}
	eng.After(0, arrive)
	eng.RunUntil(measEnd + 10*sim.Millisecond) // drain tail
	return LoadResult{
		Requests: measured, Duration: cfg.Duration, Latency: hist,
		Throughput: float64(measured) / (float64(cfg.Duration) / 1e9),
	}
}
