package congestion

import (
	"math"
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{InitRate: 1e6, MinRate: 1e4, MaxRate: 1.25e9, Step: 10e6 / 8, G: 1.0 / 16}
}

func TestRateDCTCPSlowStartDoubles(t *testing.T) {
	d := NewRateDCTCP(cfg())
	if !d.InSlowStart() {
		t.Fatal("should start in slow start")
	}
	r0 := d.Rate()
	r1 := d.Update(Feedback{AckedBytes: 1000, TxRate: r0 * 10})
	if r1 != 2*r0 {
		t.Fatalf("slow start should double: %v -> %v", r0, r1)
	}
	r2 := d.Update(Feedback{AckedBytes: 1000, TxRate: r1 * 10})
	if r2 != 2*r1 {
		t.Fatalf("slow start should keep doubling: %v -> %v", r1, r2)
	}
}

func TestRateDCTCPExitsSlowStartOnECN(t *testing.T) {
	d := NewRateDCTCP(cfg())
	d.Update(Feedback{AckedBytes: 1000, EcnBytes: 500, TxRate: 1e9})
	if d.InSlowStart() {
		t.Fatal("ECN must end slow start")
	}
}

func TestRateDCTCPAdditiveIncrease(t *testing.T) {
	c := cfg()
	d := NewRateDCTCP(c)
	d.Update(Feedback{AckedBytes: 1000, EcnBytes: 100, TxRate: 1e9}) // exit SS
	r0 := d.Rate()
	r1 := d.Update(Feedback{AckedBytes: 1000, TxRate: 1e9})
	if math.Abs(r1-(r0+c.Step)) > 1e-6 {
		t.Fatalf("AI: %v -> %v, want +%v", r0, r1, c.Step)
	}
}

func TestRateDCTCPMultiplicativeDecreaseProportionalToMarks(t *testing.T) {
	// Higher mark fractions must yield deeper cuts (DCTCP's control law).
	cut := func(frac float64) float64 {
		d := NewRateDCTCP(cfg())
		d.rate = 1e8
		d.slowStart = false
		// warm alpha with a few intervals at this fraction
		for i := 0; i < 50; i++ {
			d.rate = 1e8
			d.Update(Feedback{AckedBytes: 10000, EcnBytes: uint64(10000 * frac), TxRate: 1e9})
		}
		before := 1e8
		d.rate = before
		after := d.Update(Feedback{AckedBytes: 10000, EcnBytes: uint64(10000 * frac), TxRate: 1e9})
		return (before - after) / before
	}
	c10, c50, c100 := cut(0.1), cut(0.5), cut(1.0)
	if !(c10 < c50 && c50 < c100) {
		t.Fatalf("cuts not monotone in mark fraction: %v %v %v", c10, c50, c100)
	}
	// Fully-marked steady state cuts by ~alpha/2 = 1/2.
	if math.Abs(c100-0.5) > 0.05 {
		t.Fatalf("full marking cut = %v, want ~0.5", c100)
	}
}

func TestRateDCTCPSendRateCap(t *testing.T) {
	d := NewRateDCTCP(cfg())
	d.rate = 1e9
	d.slowStart = false
	// Application only actually sends at 1e6 B/s: allowance must collapse
	// to 1.2x that (then AI adds a step).
	d.Update(Feedback{AckedBytes: 1000, TxRate: 1e6})
	if d.Rate() > 1.2*1e6+cfg().Step+1 {
		t.Fatalf("rate %v not capped near 1.2x send rate", d.Rate())
	}
}

func TestRateDCTCPTimeoutCollapses(t *testing.T) {
	d := NewRateDCTCP(cfg())
	d.rate = 1e8
	d.Update(Feedback{Timeouts: 1, TxRate: 1e9})
	if d.Rate() != cfg().MinRate {
		t.Fatalf("timeout should collapse rate to floor, got %v", d.Rate())
	}
}

func TestRateDCTCPBounds(t *testing.T) {
	f := func(acked, ecn uint32, frex uint8, txr uint32) bool {
		d := NewRateDCTCP(cfg())
		for i := 0; i < 20; i++ {
			fb := Feedback{
				AckedBytes: uint64(acked),
				EcnBytes:   uint64(ecn),
				Frexmits:   uint32(frex),
				TxRate:     float64(txr),
			}
			if fb.EcnBytes > fb.AckedBytes {
				fb.EcnBytes = fb.AckedBytes
			}
			r := d.Update(fb)
			if r < cfg().MinRate || r > cfg().MaxRate || math.IsNaN(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRateDCTCPFairnessConvergence(t *testing.T) {
	// Two flows sharing a 1.25e9 B/s link with ECN marking above
	// capacity must converge to similar rates.
	link := 1.25e9
	a, b := NewRateDCTCP(cfg()), NewRateDCTCP(cfg())
	a.rate, b.rate = 1e9, 1e5 // grossly unfair start
	a.slowStart, b.slowStart = false, false
	for i := 0; i < 5000; i++ {
		total := a.Rate() + b.Rate()
		var markFrac float64
		if total > link {
			markFrac = (total - link) / total * 2
			if markFrac > 1 {
				markFrac = 1
			}
		}
		fbA := Feedback{AckedBytes: uint64(a.Rate() / 1000), EcnBytes: uint64(a.Rate() / 1000 * markFrac), TxRate: a.Rate()}
		fbB := Feedback{AckedBytes: uint64(b.Rate() / 1000), EcnBytes: uint64(b.Rate() / 1000 * markFrac), TxRate: b.Rate()}
		a.Update(fbA)
		b.Update(fbB)
	}
	ratio := a.Rate() / b.Rate()
	if ratio > 2 || ratio < 0.5 {
		t.Fatalf("flows did not converge to fairness: %v vs %v (ratio %v)", a.Rate(), b.Rate(), ratio)
	}
}

func TestTIMELYSlowStart(t *testing.T) {
	tm := NewTIMELY(cfg())
	r0 := tm.Rate()
	r1 := tm.Update(Feedback{AckedBytes: 1000, RTT: 25_000, TxRate: r0 * 10})
	if r1 != 2*r0 {
		t.Fatalf("TIMELY slow start should double: %v -> %v", r0, r1)
	}
}

func TestTIMELYDecreaseAboveTHigh(t *testing.T) {
	tm := NewTIMELY(cfg())
	tm.slowStart = false
	tm.rate = 1e8
	r := tm.Update(Feedback{AckedBytes: 1000, RTT: 2_000_000, TxRate: 1e9}) // 2ms >> THigh
	if r >= 1e8 {
		t.Fatalf("rate should decrease above THigh: %v", r)
	}
}

func TestTIMELYIncreaseBelowTLow(t *testing.T) {
	tm := NewTIMELY(cfg())
	tm.slowStart = false
	tm.rate = 1e8
	r := tm.Update(Feedback{AckedBytes: 1000, RTT: 10_000, TxRate: 1e9}) // 10us < TLow
	if r <= 1e8 {
		t.Fatalf("rate should increase below TLow: %v", r)
	}
}

func TestTIMELYGradientResponse(t *testing.T) {
	// Rising RTTs in the mid-band must decrease rate; falling RTTs
	// must increase it.
	tm := NewTIMELY(cfg())
	tm.slowStart = false
	tm.rate = 1e8
	tm.Update(Feedback{AckedBytes: 1000, RTT: 100_000, TxRate: 1e9})
	for i := 0; i < 5; i++ {
		tm.Update(Feedback{AckedBytes: 1000, RTT: int64(100_000 + i*40_000), TxRate: 1e9})
	}
	rising := tm.Rate()
	if rising >= 1e8 {
		t.Fatalf("rising RTT gradient should cut rate: %v", rising)
	}
	for i := 0; i < 10; i++ {
		tm.Update(Feedback{AckedBytes: 1000, RTT: int64(300_000 - i*20_000), TxRate: 1e9})
	}
	if tm.Rate() <= rising {
		t.Fatalf("falling RTT gradient should raise rate: %v -> %v", rising, tm.Rate())
	}
}

func TestTIMELYBounds(t *testing.T) {
	f := func(rtts []uint32) bool {
		tm := NewTIMELY(cfg())
		for _, r := range rtts {
			rate := tm.Update(Feedback{AckedBytes: 1000, RTT: int64(r % 10_000_000), TxRate: 1e12})
			if rate < cfg().MinRate || rate > cfg().MaxRate || math.IsNaN(rate) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewRenoSlowStartAndAI(t *testing.T) {
	n := NewNewReno(1000, 1<<20)
	if n.Window() != 10000 {
		t.Fatalf("IW = %d, want 10 MSS", n.Window())
	}
	if !n.InSlowStart() {
		t.Fatal("should start in slow start")
	}
	n.OnAck(10000, false)
	if n.Window() != 20000 {
		t.Fatalf("slow start growth: %d", n.Window())
	}
	// Force CA.
	n.ssthresh = 15000
	w0 := n.Window()
	n.OnAck(w0, false) // one full window acked: +~1 MSS
	if n.Window()-w0 > 1100 || n.Window()-w0 < 900 {
		t.Fatalf("CA growth = %d, want ~1 MSS", n.Window()-w0)
	}
}

func TestNewRenoFastRetransmit(t *testing.T) {
	n := NewNewReno(1000, 1<<20)
	n.cwnd = 100000
	n.ssthresh = 50 // CA
	if n.OnDupAck() || n.OnDupAck() {
		t.Fatal("first two dupacks must not trigger")
	}
	if !n.OnDupAck() {
		t.Fatal("third dupack must trigger fast retransmit")
	}
	if n.Window() != 50000 {
		t.Fatalf("window after FR = %d, want half", n.Window())
	}
	if n.OnDupAck() {
		t.Fatal("further dupacks must not re-trigger")
	}
	n.OnAck(1000, false)
	if n.dupAcks != 0 {
		t.Fatal("new ack must reset dupack count")
	}
}

func TestNewRenoTimeout(t *testing.T) {
	n := NewNewReno(1000, 1<<20)
	n.cwnd = 100000
	n.OnRetransmitTimeout()
	if n.Window() != 1000 {
		t.Fatalf("window after RTO = %d, want 1 MSS", n.Window())
	}
	if n.ssthresh != 50000 {
		t.Fatalf("ssthresh = %v, want half prior cwnd", n.ssthresh)
	}
}

func TestNewRenoWindowFloor(t *testing.T) {
	n := NewNewReno(1000, 1<<20)
	n.cwnd = 1000
	n.OnDupAck()
	n.OnDupAck()
	n.OnDupAck()
	if n.Window() < 2000 {
		t.Fatalf("window floor = %d, want >= 2 MSS", n.Window())
	}
}

func TestWindowDCTCPCutsProportionally(t *testing.T) {
	d := NewWindowDCTCP(1000, 1<<20)
	d.cwnd = 100000
	d.ssthresh = 50 // CA mode
	// Ack two full windows with all bytes marked: alpha stays 1, cut 1/2.
	for i := 0; i < 2; i++ {
		w := d.Window()
		acked := 0
		for acked < w {
			d.OnAck(1000, true)
			acked += 1000
		}
	}
	if d.Window() > 60000 {
		t.Fatalf("fully marked traffic should halve window, got %d", d.Window())
	}
	if a := d.Alpha(); a < 0.9 {
		t.Fatalf("alpha = %v, want ~1 under full marking", a)
	}
}

func TestWindowDCTCPUnmarkedBehavesLikeReno(t *testing.T) {
	d := NewWindowDCTCP(1000, 1<<20)
	n := NewNewReno(1000, 1<<20)
	for i := 0; i < 50; i++ {
		d.OnAck(5000, false)
		n.OnAck(5000, false)
	}
	// Alpha decays toward zero without marks once windows complete.
	if d.Window() < n.Window()/2 {
		t.Fatalf("unmarked DCTCP window %d too far below NewReno %d", d.Window(), n.Window())
	}
}

func TestFeedbackCongested(t *testing.T) {
	if (Feedback{}).Congested() {
		t.Fatal("empty feedback is not congested")
	}
	if !(Feedback{EcnBytes: 1}).Congested() || !(Feedback{Frexmits: 1}).Congested() || !(Feedback{Timeouts: 1}).Congested() {
		t.Fatal("signals must report congested")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig(10e9)
	if c.MaxRate != 10e9/8 {
		t.Fatalf("MaxRate = %v", c.MaxRate)
	}
	if c.Step != 10e6/8 {
		t.Fatalf("Step = %v", c.Step)
	}
	d := NewRateDCTCP(Config{}) // zero config must be filled
	if d.Rate() <= 0 {
		t.Fatal("zero config should yield positive rate")
	}
}
