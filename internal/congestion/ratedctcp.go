package congestion

import "math"

// RateDCTCP is the paper's rate-based DCTCP adaptation (§3.2): DCTCP's
// control law — rate decrease proportional to the fraction of ECN-marked
// bytes — applied to flow rates instead of windows. During slow start the
// rate doubles every control interval until the first congestion
// indication; afterwards additive increase adds a configurable step
// (10 Mbps by default). To prevent rates growing arbitrarily in the
// absence of congestion, each update first caps the rate at 20% above
// the flow's measured send rate.
type RateDCTCP struct {
	cfg       Config
	rate      float64
	alpha     float64
	slowStart bool
}

// NewRateDCTCP returns a controller with the given configuration. Alpha
// starts at 1 (standard DCTCP initialization) so the first congestion
// indication cuts decisively; it decays if marking stays low.
func NewRateDCTCP(cfg Config) *RateDCTCP {
	cfg.fill()
	return &RateDCTCP{cfg: cfg, rate: cfg.InitRate, alpha: 1, slowStart: true}
}

// Name implements RateController.
func (d *RateDCTCP) Name() string { return "rate-dctcp" }

// Rate returns the current allowed rate in bytes/s.
func (d *RateDCTCP) Rate() float64 { return d.rate }

// Alpha returns the smoothed ECN fraction (exported for tests/telemetry).
func (d *RateDCTCP) Alpha() float64 { return d.alpha }

// InSlowStart reports whether the flow is still in slow start.
func (d *RateDCTCP) InSlowStart() bool { return d.slowStart }

// Update implements RateController.
func (d *RateDCTCP) Update(fb Feedback) float64 {
	// Rate cap: no more than 20% above the measured send rate, so an
	// application that stops sending does not accumulate an arbitrarily
	// high allowance (§3.2).
	if fb.TxRate > 0 && d.rate > 1.2*fb.TxRate {
		d.rate = 1.2 * fb.TxRate
	}

	// ECN fraction for this interval.
	var frac float64
	if fb.AckedBytes > 0 {
		frac = float64(fb.EcnBytes) / float64(fb.AckedBytes)
		if frac > 1 {
			frac = 1
		}
		d.alpha = (1-d.cfg.G)*d.alpha + d.cfg.G*frac
	}

	switch {
	case fb.Timeouts > 0:
		// Severe congestion: restart from the floor like a window stack
		// collapsing to one segment.
		d.slowStart = false
		d.rate = d.cfg.MinRate
	case frac > 0 || fb.Frexmits > 0:
		d.slowStart = false
		cut := d.alpha / 2
		if fb.Frexmits > 0 && cut < 0.5 {
			// Loss without marks still needs a multiplicative response.
			cut = 0.5
		}
		d.rate *= 1 - cut
	case d.slowStart:
		// Slow start: double per RTT (§4.1), but never more than double
		// in one control interval (§3.2) — rate growth without
		// ack-clocking must stay bounded per feedback cycle or the
		// uncontrolled overshoot blasts queues before marks return.
		factor := 2.0
		if d.cfg.IntervalNs > 0 && fb.RTT > 0 {
			e := float64(d.cfg.IntervalNs) / float64(fb.RTT)
			if e > 1 {
				e = 1
			}
			factor = math.Pow(2, e)
		}
		d.rate *= factor
	default:
		d.rate += d.cfg.Step
	}

	d.rate = clamp(d.rate, d.cfg.MinRate, d.cfg.MaxRate)
	return d.rate
}
