package congestion

// RateFromWindow adapts a window-based controller to the slow path's
// rate interface: the enforced rate is window/RTT. The paper's §3.2
// notes TAS supports both rate- and window-based congestion control;
// this adapter is how a window policy (e.g. classic DCTCP or NewReno)
// plugs into the rate-bucket enforcement without fast-path changes.
type RateFromWindow struct {
	wc      WindowController
	cfg     Config
	lastRTT int64
}

// NewRateFromWindow wraps wc. cfg bounds the resulting rate.
func NewRateFromWindow(wc WindowController, cfg Config) *RateFromWindow {
	cfg.fill()
	return &RateFromWindow{wc: wc, cfg: cfg, lastRTT: 100_000}
}

// Name implements RateController.
func (r *RateFromWindow) Name() string { return r.wc.Name() + "-as-rate" }

// Window exposes the wrapped controller's congestion window.
func (r *RateFromWindow) Window() int { return r.wc.Window() }

// Rate implements RateController.
func (r *RateFromWindow) Rate() float64 {
	rtt := r.lastRTT
	if rtt <= 0 {
		rtt = 100_000
	}
	rate := float64(r.wc.Window()) / (float64(rtt) / 1e9)
	return clamp(rate, r.cfg.MinRate, r.cfg.MaxRate)
}

// Update implements RateController: feed the interval's feedback into
// the window controller's event API, then derive the rate.
func (r *RateFromWindow) Update(fb Feedback) float64 {
	if fb.RTT > 0 {
		r.lastRTT = fb.RTT
	}
	switch {
	case fb.Timeouts > 0:
		r.wc.OnRetransmitTimeout()
	case fb.Frexmits > 0:
		// A fast retransmit corresponds to the third duplicate ACK.
		for i := 0; i < 3; i++ {
			r.wc.OnDupAck()
		}
	case fb.AckedBytes > 0:
		r.wc.OnAck(int(fb.AckedBytes), fb.EcnBytes > 0)
	}
	return r.Rate()
}
