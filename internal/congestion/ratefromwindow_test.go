package congestion

import "testing"

func TestRateFromWindowBasics(t *testing.T) {
	r := NewRateFromWindow(NewNewReno(1000, 1<<20), cfg())
	if r.Name() != "newreno-as-rate" {
		t.Fatalf("name %q", r.Name())
	}
	// IW 10 segments over the default 100us RTT = 100 MB/s.
	if got := r.Rate(); got < 9e7 || got > 1.1e8 {
		t.Fatalf("initial rate %v", got)
	}
	// Acks grow the window and hence the rate.
	before := r.Rate()
	r.Update(Feedback{AckedBytes: 10000, RTT: 100_000})
	if r.Rate() <= before {
		t.Fatal("ack should raise the derived rate")
	}
}

func TestRateFromWindowLossEvents(t *testing.T) {
	r := NewRateFromWindow(NewNewReno(1000, 1<<20), cfg())
	for i := 0; i < 20; i++ {
		r.Update(Feedback{AckedBytes: 50_000, RTT: 100_000})
	}
	grown := r.Window()
	r.Update(Feedback{Frexmits: 1, RTT: 100_000})
	if r.Window() >= grown {
		t.Fatalf("fast retransmit should shrink the window: %d -> %d", grown, r.Window())
	}
	halved := r.Window()
	r.Update(Feedback{Timeouts: 1, RTT: 100_000})
	if r.Window() >= halved {
		t.Fatalf("timeout should collapse the window: %d -> %d", halved, r.Window())
	}
	if r.Window() != 1000 {
		t.Fatalf("window after RTO = %d, want 1 MSS", r.Window())
	}
}

func TestRateFromWindowRTTScaling(t *testing.T) {
	r := NewRateFromWindow(NewNewReno(1000, 1<<20), cfg())
	r.Update(Feedback{AckedBytes: 1000, RTT: 100_000})
	atShort := r.Rate()
	r.Update(Feedback{AckedBytes: 1000, RTT: 1_000_000})
	if r.Rate() >= atShort {
		t.Fatal("a 10x RTT must lower the derived rate")
	}
}

func TestRateFromWindowBounds(t *testing.T) {
	c := cfg()
	r := NewRateFromWindow(NewWindowDCTCP(1000, 1<<30), c)
	// Tiny RTT would explode the rate: must clamp to MaxRate.
	r.Update(Feedback{AckedBytes: 1 << 20, RTT: 1})
	if r.Rate() > c.MaxRate {
		t.Fatalf("rate %v above MaxRate", r.Rate())
	}
}
