package congestion

// TIMELY is the RTT-gradient rate controller of Mittal et al. (SIGCOMM
// 2015), adapted for TCP by adding slow start (as the paper does). RTT
// samples come from TCP timestamps. Between the Tlow and Thigh guard
// bands, the normalized RTT gradient drives additive increase (gradient
// <= 0) or multiplicative decrease (gradient > 0).
type TIMELY struct {
	cfg Config

	// Guard bands and gains, per the TIMELY paper's recommendations
	// scaled for intra-datacenter RTTs.
	TLow, THigh int64   // ns
	MinRTT      int64   // ns, normalization base
	Beta        float64 // multiplicative decrease factor
	AddStep     float64 // additive increase step, bytes/s
	EWMAAlpha   float64 // gradient smoothing

	rate      float64
	prevRTT   int64
	rttDiff   float64 // smoothed RTT difference, ns
	slowStart bool
	hai       int // consecutive gradient<=0 intervals for hyper-active increase
}

// NewTIMELY returns a TIMELY controller with datacenter defaults
// (Tlow=50us, Thigh=500us, minRTT=20us, beta=0.8).
func NewTIMELY(cfg Config) *TIMELY {
	cfg.fill()
	return &TIMELY{
		cfg:       cfg,
		TLow:      50_000,
		THigh:     500_000,
		MinRTT:    20_000,
		Beta:      0.8,
		AddStep:   cfg.Step,
		EWMAAlpha: 0.3,
		rate:      cfg.InitRate,
		slowStart: true,
	}
}

// Name implements RateController.
func (t *TIMELY) Name() string { return "timely" }

// Rate returns the current allowed rate in bytes/s.
func (t *TIMELY) Rate() float64 { return t.rate }

// InSlowStart reports whether the flow is still in slow start.
func (t *TIMELY) InSlowStart() bool { return t.slowStart }

// Update implements RateController.
func (t *TIMELY) Update(fb Feedback) float64 {
	if fb.TxRate > 0 && t.rate > 1.2*fb.TxRate {
		t.rate = 1.2 * fb.TxRate
	}
	if fb.Timeouts > 0 {
		t.slowStart = false
		t.rate = clamp(t.cfg.MinRate, t.cfg.MinRate, t.cfg.MaxRate)
		return t.rate
	}
	if fb.RTT <= 0 {
		// No sample: hold, unless still in slow start with progress.
		if t.slowStart && fb.AckedBytes > 0 {
			t.rate = clamp(t.rate*2, t.cfg.MinRate, t.cfg.MaxRate)
		}
		return t.rate
	}

	newRTT := fb.RTT
	if t.prevRTT == 0 {
		t.prevRTT = newRTT
	}
	diff := float64(newRTT - t.prevRTT)
	t.prevRTT = newRTT
	t.rttDiff = (1-t.EWMAAlpha)*t.rttDiff + t.EWMAAlpha*diff
	gradient := t.rttDiff / float64(t.MinRTT)

	// Slow start: double until the RTT signals queueing.
	if t.slowStart {
		if newRTT < t.THigh && gradient <= 0.1 {
			t.rate = clamp(t.rate*2, t.cfg.MinRate, t.cfg.MaxRate)
			return t.rate
		}
		t.slowStart = false
	}

	switch {
	case newRTT < t.TLow:
		t.rate += t.AddStep
		t.hai = 0
	case newRTT > t.THigh:
		t.rate *= 1 - t.Beta*(1-float64(t.THigh)/float64(newRTT))
		t.hai = 0
	case gradient <= 0:
		t.hai++
		n := 1.0
		if t.hai >= 5 {
			n = 5 // hyper-active increase after 5 calm intervals
		}
		t.rate += n * t.AddStep
	default:
		t.hai = 0
		t.rate *= 1 - t.Beta*gradient
	}

	t.rate = clamp(t.rate, t.cfg.MinRate, t.cfg.MaxRate)
	return t.rate
}
