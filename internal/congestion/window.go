package congestion

// WindowController is a window-based congestion-control policy, used by
// the baseline stacks (Linux-model NewReno/DCTCP) and the ns-3-style
// simulations. The window is maintained in bytes.
type WindowController interface {
	Name() string
	// OnAck processes an acknowledgement of acked bytes, with ce marking
	// state of the newly acked data.
	OnAck(acked int, ce bool)
	// OnDupAck processes one duplicate ACK; it reports whether fast
	// recovery was (newly) triggered.
	OnDupAck() bool
	// OnRetransmitTimeout collapses the window.
	OnRetransmitTimeout()
	// Window returns the current congestion window in bytes.
	Window() int
}

// NewReno is classic TCP NewReno: slow start to ssthresh, additive
// increase of one MSS per RTT, fast retransmit on 3 duplicate ACKs
// (window halves), timeout collapses to one MSS.
type NewReno struct {
	MSS      int
	cwnd     float64
	ssthresh float64
	dupAcks  int
	recover  bool
	maxWin   float64
}

// NewNewReno returns a NewReno controller with initial window of 10 MSS
// (RFC 6928) and the given window cap in bytes (0 = 2MB).
func NewNewReno(mss int, maxWin int) *NewReno {
	if mss <= 0 {
		mss = 1448
	}
	if maxWin <= 0 {
		maxWin = 2 << 20
	}
	return &NewReno{MSS: mss, cwnd: float64(10 * mss), ssthresh: float64(maxWin), maxWin: float64(maxWin)}
}

// Name implements WindowController.
func (n *NewReno) Name() string { return "newreno" }

// Window implements WindowController.
func (n *NewReno) Window() int { return int(n.cwnd) }

// InSlowStart reports whether cwnd is below ssthresh.
func (n *NewReno) InSlowStart() bool { return n.cwnd < n.ssthresh }

// OnAck implements WindowController. ce is ignored by NewReno.
func (n *NewReno) OnAck(acked int, ce bool) {
	n.dupAcks = 0
	n.recover = false
	if n.cwnd < n.ssthresh {
		n.cwnd += float64(acked) // slow start: grow by acked bytes
	} else {
		n.cwnd += float64(n.MSS) * float64(acked) / n.cwnd // CA: ~1 MSS/RTT
	}
	if n.cwnd > n.maxWin {
		n.cwnd = n.maxWin
	}
}

// OnDupAck implements WindowController.
func (n *NewReno) OnDupAck() bool {
	n.dupAcks++
	if n.dupAcks == 3 && !n.recover {
		n.recover = true
		n.ssthresh = n.cwnd / 2
		if n.ssthresh < float64(2*n.MSS) {
			n.ssthresh = float64(2 * n.MSS)
		}
		n.cwnd = n.ssthresh
		return true
	}
	return false
}

// OnRetransmitTimeout implements WindowController.
func (n *NewReno) OnRetransmitTimeout() {
	n.ssthresh = n.cwnd / 2
	if n.ssthresh < float64(2*n.MSS) {
		n.ssthresh = float64(2 * n.MSS)
	}
	n.cwnd = float64(n.MSS)
	n.dupAcks = 0
	n.recover = false
}

// WindowDCTCP is standard DCTCP (Alizadeh et al., SIGCOMM 2010): an ECN
// fraction EWMA alpha, window reduced by alpha/2 once per window of data
// when marks were seen, NewReno behaviour otherwise.
type WindowDCTCP struct {
	NewReno
	G          float64
	alpha      float64
	ackedTotal int
	ackedCE    int
	windowAcc  int
}

// NewWindowDCTCP returns a DCTCP controller with gain 1/16.
func NewWindowDCTCP(mss int, maxWin int) *WindowDCTCP {
	return &WindowDCTCP{NewReno: *NewNewReno(mss, maxWin), G: 1.0 / 16, alpha: 1}
}

// Name implements WindowController.
func (d *WindowDCTCP) Name() string { return "dctcp" }

// Alpha returns the smoothed ECN fraction.
func (d *WindowDCTCP) Alpha() float64 { return d.alpha }

// OnAck implements WindowController, folding CE marks into alpha and
// applying the DCTCP cut once per window.
func (d *WindowDCTCP) OnAck(acked int, ce bool) {
	d.ackedTotal += acked
	if ce {
		d.ackedCE += acked
	}
	d.windowAcc += acked
	if d.windowAcc >= d.Window() && d.ackedTotal > 0 {
		// One window of data acked: fold the mark fraction and cut.
		frac := float64(d.ackedCE) / float64(d.ackedTotal)
		d.alpha = (1-d.G)*d.alpha + d.G*frac
		if d.ackedCE > 0 {
			d.ssthresh = d.cwnd * (1 - d.alpha/2)
			if d.ssthresh < float64(2*d.MSS) {
				d.ssthresh = float64(2 * d.MSS)
			}
			d.cwnd = d.ssthresh
		}
		d.windowAcc = 0
		d.ackedTotal = 0
		d.ackedCE = 0
	}
	// Growth as in NewReno (DCTCP keeps slow start and AI).
	if ce {
		// Marked ack: no growth this ack.
		d.dupAcks = 0
		return
	}
	d.NewReno.OnAck(acked, false)
}
