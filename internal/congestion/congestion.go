// Package congestion implements the congestion-control algorithms TAS's
// slow path supports. The paper's prototype runs a *rate-based* DCTCP
// adaptation (§3.2): the slow path polls per-flow feedback counters from
// the fast path every control interval and writes back a new rate that
// the fast path enforces via rate buckets. TIMELY (with slow start added)
// is the second rate-based policy. Window-based DCTCP and TCP NewReno
// are provided for the baseline stacks and the ns-3-style simulations.
package congestion

// Feedback is the per-flow congestion feedback the slow path reads from
// fast-path state at each control interval: the cnt_ackb, cnt_ecnb,
// cnt_frexmits and rtt_est fields of Table 3, plus the measured send
// rate needed for the 1.2x rate cap.
type Feedback struct {
	AckedBytes uint64  // bytes newly acknowledged this interval
	EcnBytes   uint64  // of those, bytes that carried CE marks
	Frexmits   uint32  // fast retransmits triggered this interval
	Timeouts   uint32  // retransmission timeouts this interval
	RTT        int64   // latest RTT estimate, ns (0 = none)
	TxRate     float64 // measured send rate over the interval, bytes/s
}

// Congested reports whether the interval showed any congestion signal.
func (fb Feedback) Congested() bool {
	return fb.EcnBytes > 0 || fb.Frexmits > 0 || fb.Timeouts > 0
}

// RateController is a rate-based congestion-control policy for one flow.
// Update consumes one control interval's feedback and returns the new
// allowed rate in bytes per second, which the fast path enforces.
type RateController interface {
	Name() string
	Update(fb Feedback) float64
	Rate() float64
}

// Config bundles the parameters shared by the rate controllers.
type Config struct {
	InitRate float64 // starting rate, bytes/s
	MinRate  float64 // floor, bytes/s
	MaxRate  float64 // link rate, bytes/s
	Step     float64 // additive-increase step, bytes/s per interval (paper default 10 Mbps)
	G        float64 // DCTCP alpha EWMA gain (default 1/16)

	// IntervalNs is the control interval τ in nanoseconds. When set,
	// slow start doubles the rate once per *RTT* (the paper's §4.1:
	// "we double the sending rate every RTT"), scaling the per-interval
	// growth factor to 2^(τ/RTT); when zero, slow start doubles once
	// per Update call.
	IntervalNs int64
}

// DefaultConfig returns the paper's defaults for the given link rate in
// bits per second.
func DefaultConfig(linkBps float64) Config {
	return Config{
		InitRate: linkBps / 8 / 100, // start at 1% of line rate
		MinRate:  125e3,             // 1 Mbps floor: recovery stays feasible
		MaxRate:  linkBps / 8,
		Step:     10e6 / 8, // 10 Mbps in bytes/s
		G:        1.0 / 16,
	}
}

func (c *Config) fill() {
	if c.MinRate <= 0 {
		c.MinRate = 1e4
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1e12
	}
	if c.InitRate <= 0 {
		c.InitRate = c.MinRate
	}
	if c.Step <= 0 {
		c.Step = 10e6 / 8
	}
	if c.G <= 0 || c.G > 1 {
		c.G = 1.0 / 16
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
