// Package slowpath implements the TAS slow path (§3.2): connection
// control (ports, handshakes, teardown), the congestion-control loop
// that polls per-flow feedback from fast-path state every control
// interval and writes back rate limits, retransmission-timeout
// detection, and the workload-proportionality monitor that scales
// fast-path cores with load (§3.4).
//
// In the paper the slow path is a separate thread communicating with
// applications over a UNIX-domain-socket-bootstrapped context queue; in
// this in-process reproduction, libtas calls the exported methods
// directly, which stand in for those slow-path context-queue commands
// (new_flow, listen, accept, close).
package slowpath

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/congestion"
	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/shmring"
	"repro/internal/telemetry"
)

// Errors returned by connection control.
var (
	ErrPortInUse  = errors.New("slowpath: port in use")
	ErrNoListener = errors.New("slowpath: connection refused")
	ErrNoPorts    = errors.New("slowpath: ephemeral ports exhausted")
	ErrClosed     = errors.New("slowpath: stack closed")
	// ErrDown: the slow path has crashed (or been killed by the fault
	// harness) and cannot take control-plane work. Established flows
	// keep flowing on the fast path; Connect/Listen fail fast until a
	// warm restart (Recover) brings a fresh instance up.
	ErrDown = errors.New("slowpath: control plane down")
)

// SYN-cookie modes (Config.SynCookies).
const (
	// SynCookiesAuto engages cookies per listener while it is under
	// pressure: half-open occupancy at half the backlog, or SYN arrival
	// rate above SynRateThreshold. The empty string means auto.
	SynCookiesAuto = ""
	// SynCookiesAlways answers every SYN statelessly.
	SynCookiesAlways = "always"
	// SynCookiesOff disables cookies; overload falls back to shedding.
	SynCookiesOff = "off"
)

// Config parameterizes the slow path.
type Config struct {
	// Buffer sizes for per-flow payload buffers (fixed at connection
	// creation; §4.1 Limitations). Must be powers of two.
	RxBufSize, TxBufSize int

	// ControlInterval is the congestion-control loop period τ.
	ControlInterval time.Duration

	// StallIntervals control intervals without ack progress trigger a
	// retransmission restart (default 2, §3.2).
	StallIntervals int

	// HandshakeRTO is the initial SYN / SYN-ACK retransmission timeout;
	// it doubles after every unanswered attempt (default 250ms).
	HandshakeRTO time.Duration

	// HandshakeRetries is the number of handshake retransmissions
	// before the half-open entry is reaped (default 3). An active open
	// that exhausts the budget delivers EvConnected with ConnTimedOut.
	HandshakeRetries int

	// MaxRetransmits caps consecutive unproductive retransmission
	// timeouts on an established flow (default 6). Exceeding it aborts
	// the connection: RST to the peer, flow-state teardown, and an
	// EvAborted event to the application.
	MaxRetransmits int

	// PersistRTO is the initial zero-window persist timeout: when the
	// peer advertises a zero receive window while we hold pending or
	// unacknowledged data, the slow path probes with one byte at this
	// interval, doubling per unanswered probe (capped at 32×), instead
	// of retransmitting blindly (default 200ms).
	PersistRTO time.Duration

	// MaxPersistProbes caps unanswered zero-window probes before the
	// peer is presumed silently dead and the flow is aborted with
	// AbortPeerDead (default 8).
	MaxPersistProbes int

	// KeepaliveTime is how long an established flow may sit idle (no
	// segments either way) before keepalive probing starts. Zero
	// disables keepalives entirely — like SO_KEEPALIVE, liveness
	// probing of quiet peers is opt-in.
	KeepaliveTime time.Duration

	// KeepaliveInterval is the gap between successive keepalive probes
	// once probing has started (default KeepaliveTime/4, floored at
	// 10ms).
	KeepaliveInterval time.Duration

	// KeepaliveProbes is how many unanswered keepalive probes declare
	// the peer dead: the flow is aborted with AbortPeerDead and every
	// resource reclaimed (default 3).
	KeepaliveProbes int

	// FinWait2Timeout bounds FIN_WAIT_2: after our FIN is acknowledged,
	// a peer that never sends its own FIN holds our flow state for at
	// most this long before a quiet local teardown (default 5s).
	FinWait2Timeout time.Duration

	// TimeWait is the 2MSL quarantine an actively closed tuple spends
	// in the engine-side TIME_WAIT table before the 4-tuple may be
	// reused (default 1s — a reproduction-scale stand-in for 2×MSL). A
	// new SYN with a sequence above the quarantined incarnation's final
	// ack may reuse the tuple early, per RFC 6191.
	TimeWait time.Duration

	// AppTimeout is how long an application context may miss heartbeats
	// before the slow path declares the app crashed and reaps its
	// resources — flows (best-effort RST to peers), listen ports,
	// half-open handshakes, fast-path context and bucket slots, and
	// payload buffers (default 30s; negative disables the reaper).
	// Contexts that never heartbeat (raw low-level users) are exempt.
	AppTimeout time.Duration

	// CoreTimeout is how long a fast-path core's heartbeat counter may
	// go without advancing before the core watchdog declares the core
	// failed, excludes it from RSS steering, and migrates its flows to
	// the survivors (0 disables the watchdog). Even an idle core
	// advances its counter every blocked-wakeup period (≤100ms), so
	// values are floored at 250ms to keep a merely-blocked core from
	// tripping the verdict.
	CoreTimeout time.Duration

	// ListenBacklog bounds, per listener, the sum of in-flight
	// handshakes and accepted-but-unconsumed connections. SYNs beyond
	// the bound are shed (dropped, counted) rather than queued without
	// bound: the peer's handshake retransmission retries later
	// (default 128).
	ListenBacklog int

	// Stripes is the number of lock stripes sharding the listener and
	// half-open tables (default 16, rounded up to a power of two). A
	// SYN flood on one port contends only with connection setup that
	// hashes to the same stripe, not the whole control plane.
	Stripes int

	// SynCookies selects the SYN-cookie mode: SynCookiesAuto (engage
	// per listener under pressure), SynCookiesAlways, or SynCookiesOff.
	SynCookies string

	// SynRateThreshold is the per-listener SYN arrival rate (SYNs per
	// second) beyond which auto mode engages cookies for about a
	// second (default 512; ≤0 keeps only the occupancy trigger).
	SynRateThreshold int

	// NewController builds the per-flow congestion controller (nil =
	// rate-based DCTCP at 40G defaults).
	NewController func() congestion.RateController

	// Core-scaling thresholds (§3.4): add a core when aggregate idle
	// capacity < AddIdle cores, remove one when > RemoveIdle.
	AddIdle, RemoveIdle float64
	ScaleInterval       time.Duration
	// DisableScaling pins the core count (benchmarks that fix cores).
	DisableScaling bool

	// Telemetry, when non-nil, enables the flow flight recorder
	// (handshake/teardown/cc events) and slow-path cycle accounting
	// (cc, timer, reaper modules).
	Telemetry *telemetry.Telemetry

	// Gov is the unified resource governor (nil = ungoverned). The slow
	// path charges every pool it owns to it (flows, payload bytes,
	// half-open slots, FIN timers, accept backlog), refuses admission
	// when a pool or per-app quota is exhausted, and drives the
	// degradation ladder from its control tick. The governor outlives
	// this instance: a warm-restarted slow path reconciles the pools
	// whose entries died with its predecessor (Recover).
	Gov *resource.Governor

	// IdleReclaimAge is how long a flow must have gone without packet or
	// send activity before the governor's reclaim rung may take it
	// (default 1s). Active transfers are never reclaimed.
	IdleReclaimAge time.Duration

	// ReclaimBatch bounds flows reclaimed per control tick while the
	// reclaim rung is engaged (default 32): pressure relief is
	// incremental, not a mass RST storm.
	ReclaimBatch int
}

func (c *Config) fill() {
	if c.RxBufSize <= 0 {
		c.RxBufSize = 256 << 10
	}
	if c.TxBufSize <= 0 {
		c.TxBufSize = 256 << 10
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = time.Millisecond
	}
	if c.StallIntervals <= 0 {
		c.StallIntervals = 2
	}
	if c.HandshakeRTO <= 0 {
		c.HandshakeRTO = 250 * time.Millisecond
	}
	if c.HandshakeRetries <= 0 {
		c.HandshakeRetries = 3
	}
	if c.MaxRetransmits <= 0 {
		c.MaxRetransmits = 6
	}
	if c.PersistRTO <= 0 {
		c.PersistRTO = 200 * time.Millisecond
	}
	if c.MaxPersistProbes <= 0 {
		c.MaxPersistProbes = 8
	}
	// KeepaliveTime stays zero unless set: keepalives are opt-in.
	if c.KeepaliveTime > 0 && c.KeepaliveInterval <= 0 {
		c.KeepaliveInterval = c.KeepaliveTime / 4
		if c.KeepaliveInterval < 10*time.Millisecond {
			c.KeepaliveInterval = 10 * time.Millisecond
		}
	}
	if c.KeepaliveProbes <= 0 {
		c.KeepaliveProbes = 3
	}
	if c.FinWait2Timeout <= 0 {
		c.FinWait2Timeout = 5 * time.Second
	}
	if c.TimeWait <= 0 {
		c.TimeWait = time.Second
	}
	if c.NewController == nil {
		c.NewController = func() congestion.RateController {
			cfg := congestion.DefaultConfig(40e9)
			cfg.InitRate = 125e6 // 1 Gbps initial: loopback fabric has no congestion
			return congestion.NewRateDCTCP(cfg)
		}
	}
	if c.AddIdle <= 0 {
		c.AddIdle = 0.2
	}
	if c.RemoveIdle <= 0 {
		c.RemoveIdle = 1.25
	}
	if c.ScaleInterval <= 0 {
		c.ScaleInterval = 10 * time.Millisecond
	}
	if c.AppTimeout == 0 {
		c.AppTimeout = 30 * time.Second
	}
	if c.ListenBacklog <= 0 {
		c.ListenBacklog = 128
	}
	if c.CoreTimeout > 0 && c.CoreTimeout < 250*time.Millisecond {
		c.CoreTimeout = 250 * time.Millisecond
	}
	if c.Stripes <= 0 {
		c.Stripes = 16
	}
	c.Stripes = ceilPow2(c.Stripes)
	if c.SynRateThreshold == 0 {
		c.SynRateThreshold = 512
	}
	if c.IdleReclaimAge <= 0 {
		c.IdleReclaimAge = time.Second
	}
	if c.ReclaimBatch <= 0 {
		c.ReclaimBatch = 32
	}
}

// listener is a registered listening port. backlog bounds halfCount
// (in-flight handshakes) plus pending (established connections the
// application has not yet accepted; shared with the libtas listener,
// which decrements it on Accept). All fields besides pending are
// guarded by the owning stripe's lock.
type listener struct {
	port      uint16
	ctxID     uint16
	opaque    uint64
	backlog   int
	halfCount int
	pending   *atomic.Int32

	// SYN-cookie pressure tracking (stripe-locked): synWinStart/synInWin
	// is a one-second SYN arrival window; cookieUntil keeps cookie mode
	// sticky briefly after the trigger so a sawtoothing flood doesn't
	// flap between stateful and stateless handshakes.
	synWinStart time.Time
	synInWin    int
	cookieUntil time.Time
}

// halfOpen is an in-progress handshake. deadline is the next
// retransmission time; rto doubles per attempt until attempts exceeds
// the configured retry cap and the entry is reaped.
type halfOpen struct {
	key      protocol.FlowKey
	iss      uint32 // our initial sequence
	ctxID    uint16
	opaque   uint64
	passive  bool // true: we sent SYNACK (accepting); false: we sent SYN
	peerISS  uint32
	deadline time.Time
	rto      time.Duration
	attempts int
	lst      *listener // passive only: for backlog accounting
	mss      uint16    // cookie completions only: recovered MSS class
	born     time.Time // handshake start, for the completion-latency histogram;
	// zero on cookie reconstructions (the stateless path kept no start time).
}

// ccEntry is the slow path's per-flow congestion/timeout state.
type ccEntry struct {
	ctrl       congestion.RateController
	lastUna    uint32
	stallTicks int
	// consecTimeouts counts back-to-back retransmission timeouts with
	// no intervening ack progress; it doubles the next timeout's wait
	// (exponential backoff) and triggers an abort past MaxRetransmits.
	consecTimeouts int
	txEwma         float64
	// lastRate is the most recent rate written to the flow's bucket, so
	// the flight recorder only logs rate-change events on actual change
	// (the controller returns a rate every interval).
	lastRate float64

	// Zero-window persist state: while the peer advertises window 0 and
	// we hold data, the persist timer replaces the retransmission timer
	// (the stall is flow control, not loss). persistDeadline zero means
	// disarmed; persistRTO doubles per probe.
	persistDeadline time.Time
	persistRTO      time.Duration
	persistProbes   int

	// Keepalive state: kaNext is the engine-clock nanosecond of the
	// next probe (0 = not probing); kaProbes counts unanswered probes
	// since the flow last went idle. Any received segment Touches the
	// flow, which resets both.
	kaNext   int64
	kaProbes int
}

// closeEntry tracks a locally initiated teardown awaiting the peer's
// acknowledgement of our FIN, so lost FINs are retransmitted with
// backoff instead of leaving the peer half-closed forever.
type closeEntry struct {
	finSeq   uint32
	deadline time.Time
	rto      time.Duration
	attempts int

	// fw2 marks the entry as FIN_WAIT_2: our FIN is acknowledged but
	// the peer has not closed its direction. deadline is then the
	// FinWait2Timeout expiry instead of a retransmission deadline. The
	// entry keeps its single timer-pool charge across the transition.
	fw2 bool
}

// Slowpath drives one TAS instance's control plane.
type Slowpath struct {
	eng *fastpath.Engine
	cfg Config

	// stripes shard the listener and half-open tables by local port
	// (see stripes.go); stripeSh maps a port hash onto a stripe index.
	stripes  []*stripe
	stripeSh uint

	// mu guards the remaining central state: the congestion map, the
	// FIN-retransmission map, and the reaper's clocks. These are
	// touched by the single event-loop goroutine plus occasional API
	// calls — they were never the SYN-flood bottleneck.
	mu      sync.Mutex
	cc      map[*flowstate.Flow]*ccEntry
	closing map[*flowstate.Flow]*closeEntry

	// portCtr drives ephemeral port allocation (32768 + ctr%32768);
	// atomic so concurrent Dials don't need any shared lock.
	portCtr atomic.Uint32

	excq    *shmring.SPSC[*protocol.Packet]
	excWake <-chan struct{}

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Fault harness (the control-plane counterpart of the app-layer
	// Kill/Stall harness): kill terminates the event loop without any
	// cooperative cleanup, stallC wedges it for a duration, and
	// panicNext makes the next event-loop tick panic. dead marks the
	// instance crashed so API calls fail fast with ErrDown.
	kill      chan struct{}
	killOnce  sync.Once
	stallC    chan time.Duration
	panicNext atomic.Bool
	dead      atomic.Bool

	// lastTick is the event loop's view of when it last ran; a gap much
	// larger than the control interval means the loop was stalled (GC
	// pause, fault-harness Stall) and wall-clock liveness comparisons
	// are unsafe until apps have had a chance to beat again.
	lastTick time.Time

	// Stats. Atomic: exception handling on different stripes updates
	// them concurrently, and readers (metrics, tests) must not need the
	// event loop's cooperation.
	Established atomic.Uint64
	Accepted    atomic.Uint64
	Rejected    atomic.Uint64
	Timeouts    atomic.Uint64
	Reinjected  atomic.Uint64

	// Failure-handling stats.
	HandshakeRexmits  atomic.Uint64 // SYN/SYN-ACK retransmissions
	HandshakeTimeouts atomic.Uint64 // half-open entries reaped after retry cap
	FinRexmits        atomic.Uint64 // FIN retransmissions
	Aborts            atomic.Uint64 // flows aborted (RST sent) after retry cap

	// Peer-liveness stats (persist timer, keepalives, close lifecycle).
	PersistProbes       atomic.Uint64 // zero-window probes sent
	KeepaliveProbesSent atomic.Uint64 // keepalive probes sent
	PeerDeadZeroWindow  atomic.Uint64 // flows aborted: persist probe budget exhausted
	PeerDeadKeepalive   atomic.Uint64 // flows aborted: keepalive budget exhausted
	FinWait2Timeouts    atomic.Uint64 // FIN_WAIT_2 flows torn down at the bound
	TimeWaitReused      atomic.Uint64 // TIME_WAIT tuples recycled early by a higher-ISN SYN
	StrayRsts           atomic.Uint64 // RSTs sent for segments that match no connection state

	// fw2Count gauges flows currently in FIN_WAIT_2 (closing entries in
	// the fw2 phase); the TIME_WAIT gauge is eng.TimeWait.Len().
	fw2Count atomic.Int64

	// Application-failure and overload stats.
	AppsReaped       atomic.Uint64 // contexts reaped after missed heartbeats
	FlowsReaped      atomic.Uint64 // established flows reclaimed by the reaper
	ListenersReaped  atomic.Uint64 // listen ports reclaimed by the reaper
	HalfOpenReaped   atomic.Uint64 // half-open handshakes reclaimed by the reaper
	SynBacklogDrops  atomic.Uint64 // SYNs shed: listener backlog full
	AcceptQueueDrops atomic.Uint64 // established-but-undeliverable accepts torn down

	// Resource-governor stats (the governor's own Snapshot carries the
	// per-rung/per-pool detail; these two are the slow path's share).
	GovFlowDenied    atomic.Uint64 // flow installs refused: pool or quota exhausted
	GovIdleReclaimed atomic.Uint64 // idle flows reclaimed (RST) by the reclaim rung

	// Adversarial-traffic stats.
	SynCookiesSent      atomic.Uint64 // stateless cookie SYN-ACKs issued
	SynCookiesValidated atomic.Uint64 // completing ACKs whose cookie checked out
	SynCookiesRejected  atomic.Uint64 // cookie candidates that failed the MAC
	BlindRstDrops       atomic.Uint64 // RSTs dropped by RFC 5961 sequence validation

	// Control-plane failure-domain stats.
	FlowsReconstructed atomic.Uint64 // flows rebuilt from shared state by warm restart
	RecoveryAborts     atomic.Uint64 // flows aborted during recovery (unprovable state)
	Panics             atomic.Uint64 // event-loop panics survived as crashes

	// Data-plane failure-domain stats (see corewatch.go).
	CoreFailures      atomic.Uint64 // cores declared failed by the watchdog
	FlowsMigrated     atomic.Uint64 // flows re-adopted onto surviving cores
	CoreReadmits      atomic.Uint64 // failed cores folded back into steering
	CoreDrainRequeued atomic.Uint64 // packets/kicks requeued from dead cores' rings

	// coresW is the core watchdog's per-core state; owned by the event
	// loop (coreSweep), so it needs no lock.
	coresW []coreWatch

	lastReap   time.Time // rate-limits the liveness sweep
	reapResume time.Time // post-stall/restart grace: treat as everyone's beat
}

// New builds (but does not start) a slow path for the engine.
func New(eng *fastpath.Engine, cfg Config) *Slowpath {
	cfg.fill()
	excq, wake := eng.Exceptions()
	s := &Slowpath{
		eng: eng, cfg: cfg,
		stripes:  newStripes(cfg.Stripes, cfg.Gov),
		stripeSh: stripeShift(cfg.Stripes),
		cc:       make(map[*flowstate.Flow]*ccEntry),
		closing:  make(map[*flowstate.Flow]*closeEntry),
		excq:     excq,
		excWake:  wake,
		stop:     make(chan struct{}),
		kill:     make(chan struct{}),
		stallC:   make(chan time.Duration, 1),
	}
	s.initCoreWatch()
	return s
}

// Start launches the slow-path goroutine.
func (s *Slowpath) Start() {
	s.eng.SlowpathBeat()
	s.wg.Add(1)
	go s.run()
}

// Stop terminates the slow path cooperatively. Idempotent, and safe
// after Kill (the loop is already gone).
func (s *Slowpath) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Kill simulates a slow-path crash: the event loop terminates
// immediately with no cleanup — half-open handshakes, cc entries, and
// pending teardowns are simply abandoned, exactly as a crashed process
// would leave them. The shared state (flow table, buffers, buckets,
// listener registry) survives in the engine; heartbeats cease, so the
// fast path's watchdog enters degraded mode. Kill waits for the loop to
// exit so recovery can scan quiescent state.
func (s *Slowpath) Kill() {
	s.dead.Store(true)
	s.killOnce.Do(func() { close(s.kill) })
	s.wg.Wait()
}

// Down reports whether this instance has crashed (Kill or an event-loop
// panic).
func (s *Slowpath) Down() bool { return s.dead.Load() }

// Stall wedges the event loop for d: no exception draining, no control
// ticks, no heartbeats — a livelocked control plane rather than a dead
// one. The watchdog flags degraded mode if d exceeds the fast path's
// SlowPathTimeout; processing (and heartbeats) resume afterwards.
func (s *Slowpath) Stall(d time.Duration) {
	select {
	case s.stallC <- d:
	default: // a stall is already pending; keep it
	}
}

// InjectPanic makes the next event-loop tick panic. The loop's recover
// treats it as a crash — the instance is marked dead, heartbeats stop —
// demonstrating that a slow-path bug cannot take down packet service
// for established flows.
func (s *Slowpath) InjectPanic() { s.panicNext.Store(true) }

func (s *Slowpath) run() {
	defer s.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			// An event-loop panic is a slow-path crash, not a process
			// crash: contain it, mark the instance dead, and leave the
			// fast path serving established flows until a warm restart.
			s.dead.Store(true)
			s.Panics.Add(1)
		}
	}()
	ctrl := time.NewTicker(s.cfg.ControlInterval)
	defer ctrl.Stop()
	scale := time.NewTicker(s.cfg.ScaleInterval)
	defer scale.Stop()
	for {
		s.eng.SlowpathBeat()
		select {
		case <-s.stop:
			return
		case <-s.kill:
			return
		case d := <-s.stallC:
			time.Sleep(d) // wedged: no beats, no processing
			s.noteResume(time.Now())
		case <-s.excWake:
			s.drainExceptions()
		case <-ctrl.C:
			if s.panicNext.CompareAndSwap(true, false) {
				panic("slowpath: injected event-loop panic")
			}
			now := time.Now()
			// Detect that the loop itself was stalled (fault harness,
			// scheduler starvation): wall-clock-vs-heartbeat comparisons
			// are not meaningful across the gap, so open the reaper's
			// grace window instead of mass-reaping apps whose beats are
			// merely older than the stall.
			if !s.lastTick.IsZero() && now.Sub(s.lastTick) > s.stallGap() {
				s.noteResume(now)
			}
			s.lastTick = now
			// SYN-cookie key epochs advance on the engine-side jar so
			// they survive this instance's crash/restart.
			s.eng.Cookies.MaybeRotate(s.eng.NowNanos())
			s.drainExceptions()
			if telem := s.cfg.Telemetry; telem != nil {
				// Charge each control-plane module's share of the tick to
				// the slow-path cycle account. RefreshNow also keeps the
				// cached coarse clock (flight-recorder timestamps) fresh
				// once per tick even when the fast path is idle.
				t0 := telem.RefreshNow()
				s.controlLoop()
				t1 := telem.RefreshNow()
				telem.Cycles.AddSlow(telemetry.ModCC, t1-t0, 1)
				s.handshakeSweep()
				s.closeSweep()
				s.timeWaitSweep()
				t2 := telem.RefreshNow()
				telem.Cycles.AddSlow(telemetry.ModTimer, t2-t1, 1)
				s.reapSweep()
				telem.Cycles.AddSlow(telemetry.ModReaper, telem.RefreshNow()-t2, 1)
				s.governorTick()
				s.coreSweep(now)
			} else {
				s.controlLoop()
				s.handshakeSweep()
				s.closeSweep()
				s.timeWaitSweep()
				s.reapSweep()
				s.governorTick()
				s.coreSweep(now)
			}
		case <-scale.C:
			if !s.cfg.DisableScaling {
				s.scaleLoop()
			}
		}
	}
}

// record logs a flight-recorder event for a 4-tuple that may not have
// flow state yet (handshake phase): the event lands in the ring the
// installed flow later adopts, so a trace covers SYN through reap.
// No-op when telemetry is off.
func (s *Slowpath) record(key protocol.FlowKey, kind telemetry.FlowEventKind, seq, ack uint32, aux uint64) {
	if s.cfg.Telemetry == nil {
		return
	}
	s.cfg.Telemetry.Recorder.Ring(key.String()).Record(kind, seq, ack, 0, aux)
}

// recordFlow logs a flight-recorder event on an installed flow's ring.
func recordFlow(f *flowstate.Flow, kind telemetry.FlowEventKind, seq, ack, bytes uint32, aux uint64) {
	if f.Rec != nil {
		f.Rec.Record(kind, seq, ack, bytes, aux)
	}
}

// retireRec moves a removed flow's flight ring to the recorder's
// retired list for post-mortem inspection.
func (s *Slowpath) retireRec(f *flowstate.Flow) {
	if s.cfg.Telemetry != nil && f.Rec != nil {
		s.cfg.Telemetry.Recorder.Retire(f.Rec.Key())
	}
}

func (s *Slowpath) drainExceptions() {
	for {
		pkt, ok := s.excq.Dequeue()
		if !ok {
			return
		}
		s.handleException(pkt)
	}
}

// Listen registers a listening port delivering accept events to the
// given context with the given opaque listener id, using the configured
// default backlog.
func (s *Slowpath) Listen(port uint16, ctxID uint16, opaque uint64) error {
	_, err := s.ListenBacklog(port, ctxID, opaque, 0)
	return err
}

// ListenBacklog registers a listener with an explicit backlog bound
// (0 = the configured default). It returns the shared accept-queue
// depth gauge: the slow path increments it per delivered accept event,
// and the application side must decrement it as connections are
// accepted — the remaining headroom is what admission control grants
// new SYNs.
func (s *Slowpath) ListenBacklog(port uint16, ctxID uint16, opaque uint64, backlog int) (*atomic.Int32, error) {
	if s.dead.Load() {
		return nil, ErrDown
	}
	if backlog <= 0 {
		backlog = s.cfg.ListenBacklog
	}
	st := s.stripeFor(port)
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.listeners[port]; dup {
		return nil, ErrPortInUse
	}
	l := &listener{port: port, ctxID: ctxID, opaque: opaque, backlog: backlog, pending: new(atomic.Int32)}
	// Mirror the registration into the engine-side shared table — the
	// authoritative record a warm-restarted slow path reconstructs
	// from. The Pending gauge object lives there too, so the depth the
	// application decrements survives restarts.
	if !s.eng.Listeners.Insert(&flowstate.ListenerEntry{
		Port: port, CtxID: ctxID, Opaque: opaque, Backlog: backlog, Pending: l.pending,
	}) {
		return nil, ErrPortInUse
	}
	st.listeners[port] = l
	return l.pending, nil
}

// Unlisten removes a listener.
func (s *Slowpath) Unlisten(port uint16) {
	st := s.stripeFor(port)
	st.mu.Lock()
	delete(st.listeners, port)
	st.mu.Unlock()
	s.eng.Listeners.Remove(port)
}

// Connect starts an active open toward the peer; the EvConnected event
// (carrying the flow) is posted to ctxID/opaque when the handshake
// completes. It returns the chosen local port.
func (s *Slowpath) Connect(peerIP protocol.IPv4, peerPort uint16, ctxID uint16, opaque uint64) (uint16, error) {
	if s.dead.Load() {
		return 0, ErrDown
	}
	if g := s.cfg.Gov; g != nil {
		// Fast-fail admission: an app already at its flow quota gets
		// backpressure here, before any handshake traffic; the
		// authoritative charge still happens at flow installation.
		if err := g.CheckApp(uint32(ctxID)); err != nil {
			return 0, err
		}
	}
	localIP := s.eng.Config().LocalIP
	for i := 0; i < 65536; i++ {
		cand := uint16(32768 + s.portCtr.Add(1)%32768)
		key := protocol.FlowKey{LocalIP: localIP, LocalPort: cand, RemoteIP: peerIP, RemotePort: peerPort}
		st := s.stripeFor(cand)
		st.mu.Lock()
		if st.listeners[cand] != nil {
			st.mu.Unlock()
			continue
		}
		if _, busy := st.half[key]; busy || s.eng.Table.Lookup(key) != nil ||
			s.eng.TimeWait.Lookup(key) != nil {
			// A TIME_WAIT tuple is still quarantined: picking it would
			// let old duplicates of the previous incarnation land in the
			// new connection's window. Take the next ephemeral port.
			st.mu.Unlock()
			continue
		}
		// Half-open pool admission: a capped pool refuses the dial with
		// backpressure instead of letting a connect storm fill memory.
		// Acquire both checks the cap and charges the slot; dropHalf is
		// the matching release.
		if g := s.cfg.Gov; g != nil {
			if err := g.Acquire(resource.PoolHalfOpen, 1); err != nil {
				st.mu.Unlock()
				return 0, err
			}
		}
		// Reserve the port under the stripe lock — no check-then-insert
		// window for a concurrent Dial to race into.
		iss := st.rng.Uint32()
		now := time.Now()
		st.half[key] = &halfOpen{
			key: key, iss: iss, ctxID: ctxID, opaque: opaque,
			rto: s.cfg.HandshakeRTO, deadline: now.Add(s.cfg.HandshakeRTO),
			born: now,
		}
		st.mu.Unlock()

		s.sendCtl(key, protocol.FlagSYN, iss, 0, true)
		s.record(key, telemetry.FESynTx, iss, 0, 0)
		return cand, nil
	}
	return 0, ErrNoPorts
}

// Close initiates connection teardown: once the transmit buffer drains,
// a FIN goes out; the flow is removed when both directions have closed.
// The FIN is retransmitted with exponential backoff by closeSweep until
// the peer acknowledges it (or the retry budget aborts the flow).
func (s *Slowpath) Close(f *flowstate.Flow) {
	go func() {
		// Wait for the transmit buffer to drain (bounded).
		deadline := time.Now().Add(5 * time.Second)
		for {
			f.Lock()
			drained := f.TxBuf.Used() == 0
			aborted := f.Aborted
			f.Unlock()
			if aborted {
				return // already torn down by failure handling
			}
			if drained || time.Now().After(deadline) {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		f.Lock()
		alreadyClosed := f.FinSent
		if !alreadyClosed {
			f.FinSent = true
		}
		seq := f.SeqNo
		ack := f.AckNo
		f.Unlock()
		if !alreadyClosed {
			s.sendCtlFlow(f, protocol.FlagFIN|protocol.FlagACK, seq, ack)
			recordFlow(f, telemetry.FEFinTx, seq, ack, 0, 0)
			rto := s.finRTO()
			s.mu.Lock()
			s.closing[f] = &closeEntry{finSeq: seq, rto: rto, deadline: time.Now().Add(rto)}
			s.mu.Unlock()
			s.chargeTimers(1)
		}
		// From here the closing entry owns the lifecycle: closeSweep
		// retransmits the FIN until acknowledged, then finishes the
		// close — straight removal for a passive closer (the peer's FIN
		// came first), TIME_WAIT quarantine for an active one, or a
		// bounded FIN_WAIT_2 wait if the peer never closes its side.
	}()
}

// finRTO is the initial FIN retransmission timeout: several control
// intervals, floored so loopback tests don't spin.
func (s *Slowpath) finRTO() time.Duration {
	rto := 4 * s.cfg.ControlInterval
	if rto < 20*time.Millisecond {
		rto = 20 * time.Millisecond
	}
	return rto
}

// sendCtl emits a control packet for a 4-tuple (no flow state yet).
func (s *Slowpath) sendCtl(key protocol.FlowKey, flags protocol.TCPFlags, seq, ack uint32, withMSS bool) {
	pkt := &protocol.Packet{
		SrcMAC: s.eng.Config().LocalMAC, DstMAC: protocol.MAC{},
		SrcIP: key.LocalIP, DstIP: key.RemoteIP,
		SrcPort: key.LocalPort, DstPort: key.RemotePort,
		Flags: flags, Seq: seq, Ack: ack,
		Window: uint16(s.cfg.RxBufSize / fastpath.WindowUnit),
		HasTS:  true, TSVal: s.eng.NowMicros(),
		ECN: protocol.ECNECT0,
	}
	if withMSS {
		pkt.MSSOpt = uint16(s.eng.Config().MSS)
	}
	s.output(pkt)
}

func (s *Slowpath) sendCtlFlow(f *flowstate.Flow, flags protocol.TCPFlags, seq, ack uint32) {
	pkt := &protocol.Packet{
		SrcMAC: s.eng.Config().LocalMAC, DstMAC: f.PeerMAC,
		SrcIP: f.LocalIP, DstIP: f.PeerIP,
		SrcPort: f.LocalPort, DstPort: f.PeerPort,
		Flags: flags, Seq: seq, Ack: ack,
		Window: uint16(f.RxBuf.Free() / fastpath.WindowUnit),
		HasTS:  true, TSVal: s.eng.NowMicros(),
		ECN: protocol.ECNECT0,
	}
	s.output(pkt)
}

// output hands a packet to the NIC via the engine's sender.
func (s *Slowpath) output(pkt *protocol.Packet) {
	s.eng.Output(pkt)
}

// ResizeBuffers grows a flow's payload buffers at runtime (the paper's
// §4.1 future-work management command). Sizes round up to powers of two;
// shrinking is not supported. After growing the receive buffer the fast
// path advertises the larger window on its next ack.
func (s *Slowpath) ResizeBuffers(f *flowstate.Flow, rxSize, txSize int) {
	f.Lock()
	if rxSize > f.RxBuf.Size() {
		rxSize = ceilPow2(rxSize)
		if s.growPayload(f, int64(rxSize-f.RxBuf.Size())) {
			f.RxBuf.Grow(rxSize)
		}
	}
	if txSize > f.TxBuf.Size() {
		txSize = ceilPow2(txSize)
		if s.growPayload(f, int64(txSize-f.TxBuf.Size())) {
			f.TxBuf.Grow(txSize)
		}
	}
	f.Unlock()
	// Tell the peer about the larger receive window promptly.
	s.eng.SendWindowUpdate(f)
	s.eng.KickFlow(f)
}

// growPayload asks the governor for extra payload-pool bytes before a
// buffer grows; a denied grow is skipped (the flow keeps its current
// buffer) rather than blowing past the pool cap. Reports whether the
// grow may proceed.
func (s *Slowpath) growPayload(f *flowstate.Flow, delta int64) bool {
	g := s.cfg.Gov
	if g == nil {
		return true
	}
	return g.GrowPayload(uint32(f.Context), delta) == nil
}

func ceilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
