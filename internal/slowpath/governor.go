package slowpath

import (
	"sort"

	"repro/internal/flowstate"
	"repro/internal/resource"
)

// The slow path drives the resource governor's degradation ladder from
// its control tick. Enforcement is spread across the layers that own
// each mechanism — the fast path sheds bare SYNs at rung 2, listeners
// go stateless at rung 1 (cookiesEngaged), libtas clamps TX grants at
// rung 3 — but the ladder itself only moves here, one rung per tick,
// so pressure responses engage and release in order.

// governorTick runs once per control interval when a governor is
// configured: re-evaluate pool pressure against the hysteresis
// thresholds, publish the TX-grant clamp while rung 3 is engaged, and
// run the LRU idle reclaimer while rung 4 is.
func (s *Slowpath) governorTick() {
	g := s.cfg.Gov
	if g == nil {
		return
	}
	level, _ := g.Evaluate()
	if level >= resource.LevelClampTx {
		// Rung 3: shrink per-flow TX grants to a quarter buffer so many
		// flows share the strained payload pool instead of a few
		// filling it end to end.
		g.SetTxGrant(int64(s.cfg.TxBufSize / 4))
	} else {
		g.SetTxGrant(0)
	}
	if level >= resource.LevelReclaim {
		s.reclaimIdle(g)
	}
}

// reclaimIdle is the ladder's last rung: abort the longest-idle
// established flows (no packet or send activity for IdleReclaimAge) —
// best-effort RST to the peer, EvAborted to the app, full resource
// reclamation — up to ReclaimBatch per tick. Oldest-first, batched:
// pressure relief is incremental and never touches active transfers.
func (s *Slowpath) reclaimIdle(g *resource.Governor) {
	now := s.eng.NowNanos()
	minAge := now - s.cfg.IdleReclaimAge.Nanoseconds()
	type victim struct {
		f       *flowstate.Flow
		touched int64
	}
	var victims []victim
	s.eng.Table.ForEach(func(f *flowstate.Flow) {
		if f.Retired() {
			return
		}
		if t := f.LastTouched(); t <= minAge {
			victims = append(victims, victim{f, t})
		}
	})
	if len(victims) == 0 {
		return
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].touched < victims[j].touched })
	if len(victims) > s.cfg.ReclaimBatch {
		victims = victims[:s.cfg.ReclaimBatch]
	}
	for _, v := range victims {
		s.abortFlow(v.f)
		s.GovIdleReclaimed.Add(1)
		g.NoteShed(resource.LevelReclaim)
	}
}
