package slowpath

import (
	"time"

	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// SYN-cookie wiring. The cookie jar itself (keyed MAC, epoch rotation,
// MSS-class encoding) lives in internal/tcp and is owned by the engine,
// so its key schedule survives a slow-path crash and warm restart: a
// handshake that straddles the restart still validates. This file is
// the policy layer — when a listener switches to stateless handshakes,
// and how a completing ACK is turned back into connection state.

// cookiesEngaged decides, for one inbound SYN, whether the listener
// answers statelessly. It also advances the listener's SYN-rate window,
// so it must be called exactly once per SYN, under the stripe lock.
//
// Auto mode engages on either pressure signal: half-open occupancy at
// half the backlog (the flood is winning the table) or SYN arrival rate
// above SynRateThreshold (the flood is coming, regardless of how fast
// entries are reaped). The verdict is sticky for a second so a
// sawtoothing attack doesn't flap the listener between modes.
func (s *Slowpath) cookiesEngaged(l *listener, now time.Time) bool {
	switch s.cfg.SynCookies {
	case SynCookiesAlways:
		return true
	case SynCookiesOff:
		return false
	}
	if l.synWinStart.IsZero() || now.Sub(l.synWinStart) >= time.Second {
		l.synWinStart = now
		l.synInWin = 0
	}
	l.synInWin++
	// Rung 1 of the degradation ladder: global resource pressure forces
	// every listener stateless regardless of its local signals — a
	// cookie handshake costs no half-open slot. Setting cookieUntil also
	// keeps cookiesActive accepting the completing ACKs.
	if g := s.cfg.Gov; g != nil && g.Level() >= resource.LevelCookies {
		g.NoteShed(resource.LevelCookies)
		l.cookieUntil = now.Add(time.Second)
		return true
	}
	if l.halfCount >= (l.backlog+1)/2 ||
		(s.cfg.SynRateThreshold > 0 && l.synInWin > s.cfg.SynRateThreshold) {
		l.cookieUntil = now.Add(time.Second)
	}
	return now.Before(l.cookieUntil)
}

// cookiesActive reports whether a completing ACK on this listener
// should be tried against the cookie jar. Unlike cookiesEngaged it does
// not advance the rate window — ACKs are not SYNs — but it must accept
// for the whole sticky window plus the handshake's own round trip, so
// the tail of ACKs from cookies issued just before pressure subsided
// still validates. Caller holds the stripe lock.
func (s *Slowpath) cookiesActive(l *listener, now time.Time) bool {
	switch s.cfg.SynCookies {
	case SynCookiesAlways:
		return true
	case SynCookiesOff:
		return false
	}
	return !l.cookieUntil.IsZero() && now.Before(l.cookieUntil.Add(2*time.Second))
}

// sendCookieSynAck answers a SYN statelessly: the ISN is a keyed MAC
// over the 4-tuple and the peer's ISS, with the peer's MSS class folded
// into the low bits, so the completing ACK alone reconstructs the
// connection.
func (s *Slowpath) sendCookieSynAck(key protocol.FlowKey, pkt *protocol.Packet) {
	mss := pkt.MSSOpt
	if mss == 0 {
		mss = uint16(s.eng.Config().MSS)
	}
	cookie := s.eng.Cookies.Issue(
		uint32(key.LocalIP), key.LocalPort,
		uint32(key.RemoteIP), key.RemotePort,
		pkt.Seq, mss,
	)
	s.SynCookiesSent.Add(1)
	s.sendCtlSynAck(key, cookie, pkt.Seq+1)
	s.record(key, telemetry.FESynCookieTx, cookie, pkt.Seq+1, 0)
}

// cookieHalf validates a candidate cookie ACK and, on success, returns
// a synthesized half-open entry equivalent to the one a stateful
// handshake would have stored: iss is the cookie itself, peerISS is
// recovered from the ACK's sequence, and mss is the class the cookie
// encoded (capping segmentation on the installed flow). Caller holds
// the stripe lock.
func (s *Slowpath) cookieHalf(key protocol.FlowKey, pkt *protocol.Packet, l *listener) (*halfOpen, bool) {
	peerISS := pkt.Seq - 1
	cookie := pkt.Ack - 1
	mss, ok := s.eng.Cookies.Validate(
		uint32(key.LocalIP), key.LocalPort,
		uint32(key.RemoteIP), key.RemotePort,
		peerISS, cookie,
	)
	if !ok {
		return nil, false
	}
	return &halfOpen{
		key: key, iss: cookie, ctxID: l.ctxID, opaque: l.opaque,
		passive: true, peerISS: peerISS, lst: l, mss: mss,
	}, true
}
