package slowpath

import (
	"time"

	"repro/internal/congestion"
	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/shmring"
	"repro/internal/tcp"
	"repro/internal/telemetry"
)

// handleException processes one packet the fast path could not handle:
// connection control (SYN, SYN|ACK, FIN, RST), handshake-completing
// ACKs, and packets that raced flow installation.
func (s *Slowpath) handleException(pkt *protocol.Packet) {
	key := pkt.RxKey()
	flags := pkt.Flags

	switch {
	case flags.Has(protocol.FlagSYN | protocol.FlagACK):
		s.handleSynAck(key, pkt)
	case flags.Has(protocol.FlagSYN):
		s.handleSyn(key, pkt)
	case flags.Has(protocol.FlagRST):
		s.handleRst(key, pkt)
	case flags.Has(protocol.FlagFIN):
		s.handleFin(key, pkt)
	default:
		s.handlePlain(key, pkt)
	}
}

// challengeAck answers a suspicious control packet with a bare ACK of
// the flow's current state (RFC 5961 §3/§4): a legitimate but
// desynchronized peer learns the exact sequence it must use, while a
// blind attacker learns nothing. Globally rate-limited so the response
// itself cannot be turned into a reflection amplifier.
func (s *Slowpath) challengeAck(f *flowstate.Flow) {
	if s.eng.Challenge == nil || !s.eng.Challenge.Allow(s.eng.NowNanos()) {
		return
	}
	f.Lock()
	seq, ack := f.SeqNo, f.AckNo
	f.Unlock()
	s.sendCtlFlow(f, protocol.FlagACK, seq, ack)
	recordFlow(f, telemetry.FEChallengeTx, seq, ack, 0, 0)
}

// handleSyn: a remote open. If a listener exists, reply SYNACK and
// remember the half-open connection (or, under SYN-flood pressure,
// answer statelessly with a cookie); otherwise refuse with RST.
func (s *Slowpath) handleSyn(key protocol.FlowKey, pkt *protocol.Packet) {
	// RFC 5961 §4: a SYN matching an established connection must not
	// disturb it — a blind attacker can land a spoofed SYN anywhere in
	// the window. Answer with a rate-limited challenge ACK; a genuinely
	// restarted peer responds with an exact-sequence RST that passes
	// handleRst's validation.
	if f := s.eng.Table.Lookup(key); f != nil {
		s.challengeAck(f)
		return
	}
	if tw := s.eng.TimeWait.Lookup(key); tw != nil {
		if tcp.SeqGT(pkt.Seq, tw.FinalAck) {
			// RFC 6191 / RFC 1122 §4.2.2.13: a SYN whose ISN is above the
			// quarantined incarnation's final receive state cannot be an
			// old duplicate — recycle the quarantine early and open the
			// new incarnation.
			if s.eng.TimeWait.Remove(key) {
				if g := s.cfg.Gov; g != nil {
					g.Release(resource.PoolTimeWait, 1)
				}
			}
			s.TimeWaitReused.Add(1)
			// Fall through to normal SYN handling.
		} else {
			// Old duplicate SYN against TIME_WAIT: re-announce the final
			// state (RFC 793); a confused legitimate peer RSTs, a stale
			// duplicate is ignored.
			s.sendCtl(key, protocol.FlagACK, tw.FinalSeq, tw.FinalAck, false)
			return
		}
	}
	st := s.stripeFor(key.LocalPort)
	st.mu.Lock()
	if h, dup := st.half[key]; dup {
		if !h.passive {
			// The key matches one of our in-flight active opens. Whether
			// this is a simultaneous open or a spoofed SYN, it must not
			// perturb the handshake or release the port reservation; the
			// SYN-ACK retransmission sweep drives it to resolution.
			st.mu.Unlock()
			return
		}
		// SYN retransmission: re-send our SYNACK.
		iss, peer := h.iss, h.peerISS
		st.mu.Unlock()
		s.sendCtlSynAck(key, iss, peer+1)
		return
	}
	l := st.listeners[key.LocalPort]
	if l == nil {
		st.mu.Unlock()
		s.Rejected.Add(1)
		s.sendCtl(key, protocol.FlagRST|protocol.FlagACK, 0, pkt.Seq+1, false)
		return
	}
	if s.cookiesEngaged(l, time.Now()) {
		st.mu.Unlock()
		// Stateless handshake: no half-open entry, no backlog slot — the
		// completing ACK proves the initiator is reachable and carries
		// everything needed to reconstruct the connection.
		s.record(key, telemetry.FESynRx, pkt.Seq, 0, 0)
		s.sendCookieSynAck(key, pkt)
		return
	}
	if l.halfCount+int(l.pending.Load()) >= l.backlog {
		// Accept-queue overflow: shed the SYN silently and count it.
		// No RST — this is overload, not refusal; the peer's handshake
		// retransmission retries when (if) the backlog drains.
		s.SynBacklogDrops.Add(1)
		st.mu.Unlock()
		return
	}
	// Global half-open pool admission (the per-listener backlog bound
	// above is local; this one is shared across every port). Exhaustion
	// sheds silently, exactly like backlog overflow: overload, not
	// refusal. Acquire charges the slot; dropHalf releases it.
	if st.gov != nil {
		if err := st.gov.Acquire(resource.PoolHalfOpen, 1); err != nil {
			s.SynBacklogDrops.Add(1)
			st.mu.Unlock()
			return
		}
	}
	iss := st.rng.Uint32()
	now := time.Now()
	st.half[key] = &halfOpen{
		key: key, iss: iss, ctxID: l.ctxID, opaque: l.opaque,
		passive: true, peerISS: pkt.Seq,
		rto: s.cfg.HandshakeRTO, deadline: now.Add(s.cfg.HandshakeRTO),
		lst: l, born: now,
	}
	l.halfCount++
	st.mu.Unlock()
	s.record(key, telemetry.FESynRx, pkt.Seq, 0, 0)
	s.sendCtlSynAck(key, iss, pkt.Seq+1)
	s.record(key, telemetry.FESynAckTx, iss, pkt.Seq+1, 0)
}

func (s *Slowpath) sendCtlSynAck(key protocol.FlowKey, iss, ack uint32) {
	pkt := &protocol.Packet{
		SrcMAC: s.eng.Config().LocalMAC,
		SrcIP:  key.LocalIP, DstIP: key.RemoteIP,
		SrcPort: key.LocalPort, DstPort: key.RemotePort,
		Flags: protocol.FlagSYN | protocol.FlagACK, Seq: iss, Ack: ack,
		Window: uint16(s.cfg.RxBufSize / fastpath.WindowUnit),
		MSSOpt: uint16(s.eng.Config().MSS),
		HasTS:  true, TSVal: s.eng.NowMicros(),
		ECN: protocol.ECNECT0,
	}
	s.output(pkt)
}

// handleSynAck: completion of our active open.
func (s *Slowpath) handleSynAck(key protocol.FlowKey, pkt *protocol.Packet) {
	st := s.stripeOf(key)
	st.mu.Lock()
	h := st.half[key]
	if h == nil || h.passive {
		st.mu.Unlock()
		// Our final handshake ACK may have been lost and the peer
		// retransmitted its SYN-ACK: re-ack from the installed flow so
		// the passive side can establish.
		if f := s.eng.Table.Lookup(key); f != nil {
			f.Lock()
			seq, ack := f.SeqNo, f.AckNo
			f.Unlock()
			s.sendCtlFlow(f, protocol.FlagACK, seq, ack)
		}
		return // stale
	}
	if pkt.Ack != h.iss+1 {
		st.mu.Unlock()
		return // not for our SYN
	}
	st.dropHalf(key, h)
	st.mu.Unlock()

	s.record(key, telemetry.FESynAckRx, pkt.Seq, pkt.Ack, 0)
	if err := s.admitFlow(h.ctxID); err != nil {
		// Flow/payload pools (or the app's quota) are exhausted at the
		// moment of establishment: refuse with RST and deliver explicit
		// backpressure to the dialer instead of a silent hang.
		s.sendCtl(key, protocol.FlagRST|protocol.FlagACK, h.iss+1, pkt.Seq+1, false)
		if ctx := s.eng.ContextByID(h.ctxID); ctx != nil {
			ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvConnected, Opaque: h.opaque, Bytes: fastpath.ConnBackpressure})
		}
		return
	}
	s.observeHandshake(h)
	f := s.installFlow(key, h, pkt.Seq, pkt.Window)
	// Final handshake ACK.
	s.sendCtlFlow(f, protocol.FlagACK, h.iss+1, pkt.Seq+1)
	if ctx := s.eng.ContextByID(h.ctxID); ctx != nil {
		ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvConnected, Opaque: h.opaque, Flow: f})
	}
	s.Established.Add(1)
}

// handlePlain: a data/ack packet the fast path didn't know. Three cases:
// the ACK completing a stateful passive handshake, the ACK completing a
// stateless (SYN-cookie) handshake, or a packet that raced flow
// installation (re-inject it).
func (s *Slowpath) handlePlain(key protocol.FlowKey, pkt *protocol.Packet) {
	st := s.stripeOf(key)
	st.mu.Lock()
	if h := st.half[key]; h != nil && h.passive && pkt.Flags.Has(protocol.FlagACK) && pkt.Ack == h.iss+1 {
		st.dropHalf(key, h)
		st.mu.Unlock()
		s.completePassive(h, pkt)
		return
	}
	// No half-open entry. If the port is listening with cookies engaged
	// and the flow is not already installed, this may be the ACK of a
	// stateless handshake: validate the cookie carried in the ack
	// number and reconstruct the connection the slow path never stored.
	if l := st.listeners[key.LocalPort]; l != nil &&
		pkt.Flags.Has(protocol.FlagACK) && s.cookiesActive(l, time.Now()) &&
		s.eng.Table.Lookup(key) == nil {
		h, ok := s.cookieHalf(key, pkt, l)
		if !ok {
			s.SynCookiesRejected.Add(1)
			st.mu.Unlock()
			s.record(key, telemetry.FESynCookieBad, pkt.Seq, pkt.Ack, 0)
			return
		}
		if int(l.pending.Load()) >= l.backlog {
			// The cookie is genuine but the accept queue is full. The
			// stateless handshake already told the peer "established", so
			// shedding must fail closed: RST, not a silent wedge.
			s.AcceptQueueDrops.Add(1)
			st.mu.Unlock()
			s.sendCtl(key, protocol.FlagRST|protocol.FlagACK, pkt.Ack, pkt.Seq, false)
			return
		}
		st.mu.Unlock()
		s.SynCookiesValidated.Add(1)
		s.record(key, telemetry.FESynCookieOK, pkt.Seq, pkt.Ack, 0)
		s.completePassive(h, pkt)
		return
	}
	st.mu.Unlock()

	if s.eng.Table.Lookup(key) != nil {
		// Raced installation: back to the fast path.
		s.Reinjected.Add(1)
		s.eng.Input(pkt)
		return
	}
	if tw := s.eng.TimeWait.Lookup(key); tw != nil {
		// A stray segment for a quarantined tuple — an old duplicate or
		// a retransmission that raced our final ACK: re-announce the
		// connection's final state (RFC 793 TIME-WAIT processing).
		s.sendCtl(key, protocol.FlagACK, tw.FinalSeq, tw.FinalAck, false)
		return
	}
	// Otherwise the segment matches no connection state at all. A peer
	// can legitimately still hold state for this tuple — we may have
	// declared it dead during a partition and reclaimed everything — and
	// if we stay silent it will retransmit into the void until its own
	// retry budget runs dry. Answer with a reset (RFC 793 reset
	// generation for a CLOSED tuple) so it tears down immediately. The
	// send shares the challenge-ACK budget: stray segments are
	// attacker-writable, so unmetered replies would be a reflection
	// amplifier. Peers in TIME_WAIT are safe from these resets —
	// handleRst never consults the TIME_WAIT table (RFC 1337).
	if s.eng.Challenge == nil || !s.eng.Challenge.Allow(s.eng.NowNanos()) {
		return
	}
	s.StrayRsts.Add(1)
	if pkt.Flags.Has(protocol.FlagACK) {
		// The peer told us what it expects next; a RST at exactly that
		// sequence number is acceptable everywhere in its window.
		s.sendCtl(key, protocol.FlagRST, pkt.Ack, 0, false)
	} else {
		s.sendCtl(key, protocol.FlagRST|protocol.FlagACK, 0, pkt.Seq+uint32(pkt.DataLen()), false)
	}
	s.record(key, telemetry.FERstTx, pkt.Seq, pkt.Ack, 0)
}

// completePassive finishes a passive handshake whose completing ACK
// just arrived (stateful or cookie-reconstructed): install the flow,
// deliver EvAccepted, and re-inject any data the ACK carried.
func (s *Slowpath) completePassive(h *halfOpen, pkt *protocol.Packet) {
	if err := s.admitFlow(h.ctxID); err != nil {
		// Fail closed: the completing ACK means the peer already
		// believes the connection is established, so a silent shed would
		// wedge it mid-handshake — answer with RST instead.
		s.sendCtl(h.key, protocol.FlagRST|protocol.FlagACK, h.iss+1, h.peerISS+1, false)
		return
	}
	s.Established.Add(1)
	s.Accepted.Add(1)
	s.observeHandshake(h)
	f := s.installFlow(h.key, h, h.peerISS, pkt.Window)
	ctx := s.eng.ContextByID(h.ctxID)
	if ctx == nil || !ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvAccepted, Opaque: h.opaque, Flow: f}) {
		// The accept event cannot be delivered (context gone, dead,
		// or its event queue is full): tear the nascent connection
		// down instead of orphaning installed flow state the
		// application will never learn about.
		s.teardownUndeliverable(f)
		return
	}
	if h.lst != nil {
		h.lst.pending.Add(1)
		// Mirror the accept-backlog occupancy into the governor; the
		// matching release happens where pending drains — libtas Accept,
		// or the reaper tearing a listener down.
		if g := s.cfg.Gov; g != nil {
			g.Charge(resource.PoolAccept, 1)
		}
	}
	// The completing ACK may carry data (or more may have raced):
	// re-inject so the fast path processes it against the new flow.
	if pkt.DataLen() > 0 {
		s.eng.Input(pkt)
	}
}

// observeHandshake records a completed handshake's SYN-to-established
// latency (µs). Cookie-reconstructed half-opens carry no start time
// (born is zero) — the stateless path deliberately keeps no state to
// timestamp — and are skipped.
func (s *Slowpath) observeHandshake(h *halfOpen) {
	if s.cfg.Telemetry == nil || h.born.IsZero() {
		return
	}
	us := time.Since(h.born).Microseconds()
	if us < 0 {
		us = 0
	}
	s.cfg.Telemetry.Handshake.Observe(uint64(us), int(h.key.LocalPort))
}

// teardownUndeliverable aborts a just-installed flow whose accept event
// could not reach the application: RST to the peer, state reclaimed,
// and the shed connection counted.
func (s *Slowpath) teardownUndeliverable(f *flowstate.Flow) {
	f.Lock()
	f.Aborted = true
	seq, ack := f.SeqNo, f.AckNo
	f.Unlock()
	s.sendCtlFlow(f, protocol.FlagRST|protocol.FlagACK, seq, ack)
	recordFlow(f, telemetry.FERstTx, seq, ack, 0, 0)
	recordFlow(f, telemetry.FEAborted, seq, ack, 0, 0)
	s.eng.Table.Remove(f.Key())
	s.reclaimFlowResources(f)
	s.mu.Lock()
	delete(s.cc, f)
	s.mu.Unlock()
	s.AcceptQueueDrops.Add(1)
	s.retireRec(f)
}

// admitFlow is the authoritative admission check for establishing a
// connection: one flow slot plus both payload buffers, charged against
// the app's quota and the global pools together. The charge point is
// flow installation — not Connect — so charges stay 1:1 with entries in
// the shared flow table, which is exactly the state that survives a
// slow-path crash and warm restart.
func (s *Slowpath) admitFlow(ctxID uint16) error {
	g := s.cfg.Gov
	if g == nil {
		return nil
	}
	if err := g.AcquireFlow(uint32(ctxID), int64(s.cfg.RxBufSize+s.cfg.TxBufSize)); err != nil {
		s.GovFlowDenied.Add(1)
		return err
	}
	return nil
}

// reclaimFlowResources returns a torn-down flow's finite resources —
// payload buffers, rate-bucket slot, and governor charges — exactly
// once, no matter how many teardown paths (FIN, RST, abort, reaper,
// recovery, undeliverable accept) race to it. Reclaim only fences
// producer writes; the application side may still drain already
// received bytes.
func (s *Slowpath) reclaimFlowResources(f *flowstate.Flow) {
	if !f.Retire() {
		return
	}
	var payload int64
	if f.RxBuf != nil {
		payload += int64(f.RxBuf.Size())
		f.RxBuf.Reclaim()
	}
	if f.TxBuf != nil {
		payload += int64(f.TxBuf.Size())
		f.TxBuf.Reclaim()
	}
	s.eng.FreeBucket(f.Bucket)
	if g := s.cfg.Gov; g != nil {
		g.ReleaseFlow(uint32(f.Context), payload)
	}
}

// chargeTimers adjusts the governor's FIN-retransmission timer pool
// (pressure accounting only; the pool is never admission-checked).
func (s *Slowpath) chargeTimers(n int64) {
	if g := s.cfg.Gov; g != nil {
		g.Charge(resource.PoolTimers, n)
	}
}

// installFlow creates fast-path state for an established connection:
// buffers, rate bucket, congestion controller, and the Table 3 record.
func (s *Slowpath) installFlow(key protocol.FlowKey, h *halfOpen, peerISS uint32, peerWindow uint16) *flowstate.Flow {
	f := &flowstate.Flow{
		Opaque:    h.opaque,
		Context:   h.ctxID,
		LocalIP:   key.LocalIP,
		LocalPort: key.LocalPort,
		PeerIP:    key.RemoteIP,
		PeerPort:  key.RemotePort,
		PeerMAC:   protocol.MACForIPv4(key.RemoteIP),
		SeqNo:     h.iss + 1,
		AckNo:     peerISS + 1,
		Window:    peerWindow,
		MSSCap:    h.mss, // nonzero only on cookie reconstructions
		RxBuf:     shmring.NewPayloadBuffer(s.cfg.RxBufSize),
		TxBuf:     shmring.NewPayloadBuffer(s.cfg.TxBufSize),
	}
	f.Bucket = s.eng.AllocBucket()
	ctrl := s.cfg.NewController()
	s.eng.Bucket(f.Bucket).SetRate(ctrl.Rate())
	if s.cfg.Telemetry != nil {
		// Adopt the handshake-phase ring (keyed by the same 4-tuple) so
		// the flow's trace runs SYN through reap.
		f.Rec = s.cfg.Telemetry.Recorder.Ring(key.String())
		f.Rec.Record(telemetry.FEEstablished, f.SeqNo, f.AckNo, 0, 0)
	}
	// Stamp activity at birth so the idle-reclaim rung never sees a
	// fresh flow with a zero clock and takes it as ancient.
	f.Touch(s.eng.NowNanos())
	s.eng.Table.Insert(f)
	s.mu.Lock()
	s.cc[f] = &ccEntry{ctrl: ctrl, lastUna: f.SeqNo, lastRate: ctrl.Rate()}
	s.mu.Unlock()
	return f
}

// handleFin: remote teardown. Acknowledge the FIN, notify the
// application, and drive the close-side state machine: a peer FIN
// before ours marks us the passive closer (straight to CLOSED after
// our own FIN completes); a peer FIN after our acknowledged FIN ends
// FIN_WAIT_2 and enters the TIME_WAIT quarantine.
func (s *Slowpath) handleFin(key protocol.FlowKey, pkt *protocol.Packet) {
	f := s.eng.Table.Lookup(key)
	if f == nil {
		if tw := s.eng.TimeWait.Lookup(key); tw != nil {
			// Retransmitted peer FIN against TIME_WAIT: our final ACK was
			// lost. Re-ack and restart the 2MSL clock (RFC 793).
			s.sendCtl(key, protocol.FlagACK, tw.FinalSeq, tw.FinalAck, false)
			s.eng.TimeWait.Extend(key, s.eng.NowNanos()+s.cfg.TimeWait.Nanoseconds())
		}
		return
	}
	f.Lock()
	if pkt.DataLen() > 0 || pkt.Seq != f.AckNo {
		// FIN with in-flight data gaps: wait for retransmission of the
		// missing data; ack what we have.
		seq, ack := f.SeqNo, f.AckNo
		f.Unlock()
		s.sendCtlFlow(f, protocol.FlagACK, seq, ack)
		return
	}
	first := !f.FinReceived
	f.FinReceived = true
	if first && !f.FinSent {
		// The peer closed first: we are the passive closer, and after
		// our own FIN is acknowledged the flow goes straight to CLOSED —
		// TIME_WAIT is the active closer's burden (RFC 793).
		f.PeerClosedFirst = true
	}
	if f.FinSent && pkt.Flags.Has(protocol.FlagACK) && pkt.Ack == f.SeqNo+1 {
		// The FIN segment itself acknowledges our FIN (it bypassed the
		// fast path, so ack processing happens here): simultaneous-close
		// and FIN_WAIT_2 exits must not wait for a later pure ACK.
		f.FinAcked = true
	}
	f.AckNo++ // FIN consumes one sequence number
	seq, ack := f.SeqNo, f.AckNo
	done := f.FinSent && f.FinAcked && !f.PeerClosedFirst
	ctxID, opaque := f.Context, f.Opaque
	f.Unlock()

	s.sendCtlFlow(f, protocol.FlagACK, seq, ack)
	if first {
		recordFlow(f, telemetry.FEFinRx, pkt.Seq, ack, 0, 0)
		if ctx := s.eng.ContextByID(ctxID); ctx != nil {
			ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvClosed, Opaque: opaque})
		}
	}
	if done {
		// Both directions are closed and we closed first (FIN_WAIT_2 →
		// TIME_WAIT, or the tail of a simultaneous close): quarantine the
		// tuple and reclaim the flow now. The passive-close and
		// not-yet-acked cases stay with closeSweep.
		s.enterTimeWait(f)
	}
}

// handleRst tears the flow down — but only after RFC 5961 sequence
// validation, because a RST is the cheapest blind attack there is: one
// spoofed packet that lands kills a connection.
//
// Against half-open state, only the RST a legitimate peer could send is
// honored: for a passive half-open, the peer's sequence must be exactly
// the one our SYN-ACK acknowledged; for an active open, the RST must
// carry an ACK of exactly our ISS+1 (RFC 793's refusal form). Against
// an established flow, only an RST at exactly the next expected
// sequence (RCV.NXT) tears down; one merely inside the receive window
// draws a rate-limited challenge ACK (a true peer reset answers that
// with an exact-sequence RST), and anything else is dropped. All
// rejected RSTs count in BlindRstDrops.
func (s *Slowpath) handleRst(key protocol.FlowKey, pkt *protocol.Packet) {
	st := s.stripeOf(key)
	st.mu.Lock()
	if h := st.half[key]; h != nil {
		valid := false
		if h.passive {
			valid = pkt.Seq == h.peerISS+1
		} else {
			valid = pkt.Flags.Has(protocol.FlagACK) && pkt.Ack == h.iss+1
		}
		if !valid {
			s.BlindRstDrops.Add(1)
			st.mu.Unlock()
			return
		}
		st.dropHalf(key, h)
		st.mu.Unlock()
		s.Rejected.Add(1)
		if !h.passive {
			if ctx := s.eng.ContextByID(h.ctxID); ctx != nil {
				ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvConnected, Opaque: h.opaque, Bytes: fastpath.ConnRefused})
			}
		}
		return
	}
	st.mu.Unlock()
	f := s.eng.Table.Lookup(key)
	if f == nil {
		// Deliberately no TIME_WAIT lookup here: an RST must not cut a
		// quarantine short (RFC 1337, TIME-WAIT assassination) — the
		// entry ages out on its own clock.
		return
	}
	f.Lock()
	expect := f.AckNo
	wnd := uint32(f.RxBuf.Free())
	f.Unlock()
	if pkt.Seq != expect {
		s.BlindRstDrops.Add(1)
		if wnd == 0 {
			wnd = 1
		}
		if tcp.SeqInWindow(pkt.Seq, expect, wnd) {
			s.challengeAck(f)
		}
		return
	}
	f.Lock()
	ctxID, opaque := f.Context, f.Opaque
	first := !f.Aborted
	f.Aborted = true
	f.Unlock()
	if first {
		recordFlow(f, telemetry.FERstRx, pkt.Seq, 0, 0, 0)
		recordFlow(f, telemetry.FEAborted, pkt.Seq, 0, 0, 0)
		if ctx := s.eng.ContextByID(ctxID); ctx != nil {
			ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvAborted, Opaque: opaque})
		}
	}
	s.removeFlow(f)
}

// abortFlow tears a flow down after a retransmission budget is
// exhausted (dead peer, persistent partition): best-effort RST to the
// peer, fast-path flow state removed, EvAborted to the application.
func (s *Slowpath) abortFlow(f *flowstate.Flow) {
	s.abortFlowCause(f, 0)
}

// abortFlowCause is abortFlow with an explicit cause code carried in
// the EvAborted event (fastpath.AbortPeerDead when liveness probing —
// persist or keepalive — declared the peer silently dead).
func (s *Slowpath) abortFlowCause(f *flowstate.Flow, cause uint32) {
	f.Lock()
	already := f.Aborted
	f.Aborted = true
	if cause == fastpath.AbortPeerDead {
		f.PeerDead = true
	}
	seq, ack := f.SeqNo, f.AckNo
	ctxID, opaque := f.Context, f.Opaque
	f.Unlock()
	if already {
		return
	}
	s.sendCtlFlow(f, protocol.FlagRST|protocol.FlagACK, seq, ack)
	recordFlow(f, telemetry.FERstTx, seq, ack, 0, 0)
	recordFlow(f, telemetry.FEAborted, seq, ack, 0, uint64(cause))
	if cause == fastpath.AbortPeerDead {
		recordFlow(f, telemetry.FEPeerDead, seq, ack, 0, 0)
	}
	s.Aborts.Add(1)
	s.removeFlow(f)
	if ctx := s.eng.ContextByID(ctxID); ctx != nil {
		ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvAborted, Opaque: opaque, Bytes: cause})
	}
}

// handshakeSweep retransmits unanswered SYNs / SYN-ACKs with
// exponential backoff and reaps half-open entries whose retry budget is
// exhausted — the slow path owns handshake timeouts (§3.2). An active
// open that gives up delivers EvConnected/ConnTimedOut so the
// application unblocks in bounded time.
func (s *Slowpath) handshakeSweep() {
	now := time.Now()
	type rexmit struct {
		key       protocol.FlowKey
		iss, peer uint32
		passive   bool
	}
	var resend []rexmit
	var failed []*halfOpen
	for _, st := range s.stripes {
		st.mu.Lock()
		for key, h := range st.half {
			if now.Before(h.deadline) {
				continue
			}
			if h.attempts >= s.cfg.HandshakeRetries {
				st.dropHalf(key, h)
				s.HandshakeTimeouts.Add(1)
				if !h.passive {
					failed = append(failed, h)
				}
				continue
			}
			h.attempts++
			h.rto *= 2
			h.deadline = now.Add(h.rto)
			s.HandshakeRexmits.Add(1)
			resend = append(resend, rexmit{key: key, iss: h.iss, peer: h.peerISS, passive: h.passive})
		}
		st.mu.Unlock()
	}
	for _, r := range resend {
		if r.passive {
			s.sendCtlSynAck(r.key, r.iss, r.peer+1)
			s.record(r.key, telemetry.FESynAckTx, r.iss, r.peer+1, 0)
		} else {
			s.sendCtl(r.key, protocol.FlagSYN, r.iss, 0, true)
			s.record(r.key, telemetry.FESynTx, r.iss, 0, 0)
		}
	}
	for _, h := range failed {
		if ctx := s.eng.ContextByID(h.ctxID); ctx != nil {
			ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvConnected, Opaque: h.opaque, Bytes: fastpath.ConnTimedOut})
		}
	}
}

// closeSweep drives locally initiated teardowns from the control tick:
// it retransmits unacknowledged FINs with exponential backoff (budget
// exhaustion aborts so neither side hangs half-closed forever), and
// once the FIN is acknowledged it finishes the close — straight
// removal for a passive closer, TIME_WAIT quarantine when both sides
// are done and we closed first, or a FinWait2Timeout-bounded wait when
// the peer has not closed its direction. This replaces the old
// fire-and-forget removal timer: every step runs on the event loop,
// charged to the timer pool, and survives a warm restart (Recover
// re-arms the entries from shared flow state).
func (s *Slowpath) closeSweep() {
	now := time.Now()
	type rexmit struct {
		f        *flowstate.Flow
		seq, ack uint32
	}
	var resend []rexmit
	var aborts, removals, timeWaits, fw2Expired []*flowstate.Flow
	s.mu.Lock()
	for f, e := range s.closing {
		f.Lock()
		acked, aborted, ack := f.FinAcked, f.Aborted, f.AckNo
		finRecv, peerFirst := f.FinReceived, f.PeerClosedFirst
		f.Unlock()
		if aborted {
			delete(s.closing, f)
			s.chargeTimers(-1)
			if e.fw2 {
				s.fw2Count.Add(-1)
			}
			continue
		}
		if acked {
			if finRecv {
				// Both directions closed. The active closer pays the
				// TIME_WAIT quarantine; the passive closer (LAST_ACK →
				// CLOSED) is done outright.
				delete(s.closing, f)
				s.chargeTimers(-1)
				if e.fw2 {
					s.fw2Count.Add(-1)
				}
				if peerFirst {
					removals = append(removals, f)
				} else {
					timeWaits = append(timeWaits, f)
				}
				continue
			}
			if !e.fw2 {
				// FIN acknowledged, peer still open: FIN_WAIT_2, bounded.
				e.fw2 = true
				e.deadline = now.Add(s.cfg.FinWait2Timeout)
				s.fw2Count.Add(1)
				continue
			}
			if now.After(e.deadline) {
				delete(s.closing, f)
				s.chargeTimers(-1)
				s.fw2Count.Add(-1)
				s.FinWait2Timeouts.Add(1)
				fw2Expired = append(fw2Expired, f)
			}
			continue
		}
		if now.Before(e.deadline) {
			continue
		}
		if e.attempts >= s.cfg.MaxRetransmits {
			delete(s.closing, f)
			s.chargeTimers(-1)
			aborts = append(aborts, f)
			continue
		}
		e.attempts++
		e.rto *= 2
		e.deadline = now.Add(e.rto)
		s.FinRexmits.Add(1)
		resend = append(resend, rexmit{f: f, seq: e.finSeq, ack: ack})
	}
	s.mu.Unlock()
	for _, r := range resend {
		s.sendCtlFlow(r.f, protocol.FlagFIN|protocol.FlagACK, r.seq, r.ack)
		recordFlow(r.f, telemetry.FERexmit, r.seq, r.ack, 0, 0)
	}
	for _, f := range removals {
		s.removeFlow(f)
	}
	for _, f := range timeWaits {
		s.enterTimeWait(f)
	}
	for _, f := range fw2Expired {
		// The peer never closed its side within the bound: quiet local
		// teardown (no RST — the peer may legitimately still be alive,
		// just uninterested in closing; its next segment for the gone
		// flow draws nothing).
		f.Lock()
		f.Aborted = true
		seq, ack := f.SeqNo, f.AckNo
		f.Unlock()
		recordFlow(f, telemetry.FEAborted, seq, ack, 0, 0)
		s.removeFlow(f)
	}
	for _, f := range aborts {
		s.abortFlow(f)
	}
}

func (s *Slowpath) removeFlow(f *flowstate.Flow) {
	s.eng.Table.Remove(f.Key())
	s.reclaimFlowResources(f)
	s.mu.Lock()
	delete(s.cc, f)
	if e, ok := s.closing[f]; ok {
		delete(s.closing, f)
		s.chargeTimers(-1)
		if e.fw2 {
			s.fw2Count.Add(-1)
		}
	}
	s.mu.Unlock()
	s.retireRec(f)
}

// controlLoop is the per-interval congestion/timeout sweep (§3.2): read
// and reset the fast path's feedback counters, run the congestion
// policy, write the new rate, and restart stalled flows.
func (s *Slowpath) controlLoop() {
	s.mu.Lock()
	flows := make([]*flowstate.Flow, 0, len(s.cc))
	entries := make([]*ccEntry, 0, len(s.cc))
	for f, e := range s.cc {
		flows = append(flows, f)
		entries = append(entries, e)
	}
	s.mu.Unlock()

	ivSec := s.cfg.ControlInterval.Seconds()
	nowN := s.eng.NowNanos()
	for i, f := range flows {
		e := entries[i]
		f.Lock()
		ackB, ecnB, frex := f.TakeCounters()
		rtt := int64(f.RTTEst) * 1000
		una := f.SeqNo - f.TxSent
		outstanding := f.TxSent
		pending := f.TxPending()
		window := f.Window
		finSent, aborted := f.FinSent, f.Aborted
		f.Unlock()

		// Zero-window stall: the peer's receiver is full, not the
		// network — this is flow control, so the persist timer replaces
		// the retransmission timer (retransmitting into a closed window
		// would only burn the abort budget). Probes are 1 byte with
		// exponential backoff; an unanswered budget declares the peer
		// dead.
		if window == 0 && !finSent && !aborted && (pending > 0 || outstanding > 0) {
			e.stallTicks = 0
			e.consecTimeouts = 0
			e.lastUna = una
			if !s.persistTick(f, e) {
				continue // probe budget exhausted; flow aborted
			}
			continue // stalled by flow control: no CC feedback to process
		}
		e.persistDeadline = time.Time{}
		e.persistProbes = 0

		// Keepalive: an established flow with nothing in flight and
		// nothing pending that has heard nothing from the peer for
		// KeepaliveTime gets liveness probes (opt-in; see Config).
		if !s.keepaliveTick(f, e, nowN, finSent, aborted, outstanding, pending) {
			continue // keepalive budget exhausted; flow aborted
		}

		// Retransmission timeout: unacknowledged data with no progress
		// for StallIntervals control intervals. The wait must also cover
		// several RTTs and several packet intervals at the current rate
		// — at low rates whole control intervals legitimately pass
		// without an ack, and declaring those stalls would collapse the
		// rate in a self-sustaining cycle.
		var timeouts uint32
		if outstanding > 0 && una == e.lastUna && ackB == 0 {
			e.stallTicks++
			needWait := time.Duration(s.cfg.StallIntervals) * s.cfg.ControlInterval
			if w := 8 * time.Duration(rtt); w > needWait {
				needWait = w
			}
			if r := e.ctrl.Rate(); r > 0 {
				if w := time.Duration(4 * float64(s.eng.Config().MSS) / r * 1e9); w > needWait {
					needWait = w
				}
			}
			if needWait < 10*time.Millisecond {
				needWait = 10 * time.Millisecond
			}
			// Exponential backoff: each consecutive unproductive timeout
			// doubles the wait before the next one (capped), so a dead
			// peer costs a bounded, geometric series of retransmissions.
			bo := e.consecTimeouts
			if bo > 6 {
				bo = 6
			}
			needWait <<= uint(bo)
			if e.stallTicks >= s.cfg.StallIntervals &&
				time.Duration(e.stallTicks)*s.cfg.ControlInterval >= needWait {
				e.stallTicks = 0
				e.consecTimeouts++
				if e.consecTimeouts > s.cfg.MaxRetransmits {
					// Retry budget exhausted: the peer is unreachable or
					// dead. Abort instead of retransmitting forever.
					s.abortFlow(f)
					continue
				}
				timeouts = 1
				s.Timeouts.Add(1)
				recordFlow(f, telemetry.FERTOBackoff, una, 0, 0, uint64(needWait))
				f.Lock()
				f.SeqNo -= f.TxSent // reset as if unsent
				f.TxSent = 0
				f.Unlock()
				s.eng.KickFlow(f)
			}
		} else {
			e.stallTicks = 0
			e.consecTimeouts = 0
			e.lastUna = una
		}

		// Smooth the measured rate across intervals: at fine τ a single
		// interval holds few packets, and the controller's send-rate cap
		// must not clamp against quantization noise.
		inst := float64(ackB) / ivSec
		if e.txEwma == 0 {
			e.txEwma = inst
		} else {
			e.txEwma = 0.7*e.txEwma + 0.3*inst
		}
		fb := congestion.Feedback{
			AckedBytes: uint64(ackB),
			EcnBytes:   uint64(ecnB),
			Frexmits:   uint32(frex),
			Timeouts:   timeouts,
			RTT:        rtt,
			TxRate:     e.txEwma,
		}
		rate := e.ctrl.Update(fb)
		if b := s.eng.Bucket(f.Bucket); b != nil {
			b.SetRate(rate)
		}
		// Trace only significant rate moves (≥25% relative, or from/to
		// zero): the controller nudges the rate every interval, and
		// recording each tick would wash real lifecycle events out of
		// the bounded flight ring.
		if d := rate - e.lastRate; d != 0 {
			if d < 0 {
				d = -d
			}
			if e.lastRate == 0 || d >= 0.25*e.lastRate {
				recordFlow(f, telemetry.FERateChange, 0, 0, 0, uint64(rate))
				e.lastRate = rate
			}
		}
		if pending > 0 {
			// Pending data may be sendable at the new rate.
			s.eng.KickFlow(f)
		}
	}
}

// scaleLoop adjusts the number of active fast-path cores to the load
// (§3.4): >RemoveIdle aggregate idle cores -> remove one; <AddIdle ->
// add one. Failed cores contribute no idle capacity — a dead goroutine
// reports 0 utilization, and counting that as a spare core would make
// the monitor scale down right after a failure, shrinking the surviving
// set when it needs every core it has. The SetActiveCores rewrite
// itself never steers to failed cores (RSS exclusion mask).
func (s *Slowpath) scaleLoop() {
	active := s.eng.ActiveCores()
	var idle float64
	for i := 0; i < active; i++ {
		if s.eng.CoreFailed(i) {
			continue
		}
		idle += 1 - s.eng.Utilization(i)
	}
	switch {
	case idle > s.cfg.RemoveIdle && active > 1:
		s.eng.SetActiveCores(active - 1)
	case idle < s.cfg.AddIdle && active < s.eng.MaxCores():
		s.eng.SetActiveCores(active + 1)
	}
}
