package slowpath

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/protocol"
)

// restart kills a node's slow path and warm-restarts it over the same
// engine — the production sequence (tas.Service.Restart) at this layer.
func restart(t *testing.T, n *testNode, cfg Config) RecoveryStats {
	t.Helper()
	n.sp.Kill()
	ns := New(n.eng, cfg)
	ns.AdoptCounters(n.sp.Counters())
	rep := ns.Recover()
	ns.Start()
	t.Cleanup(ns.Stop)
	n.sp = ns
	return rep
}

// TestWarmRestartReconstructsFlows: established connections survive a
// slow-path crash, and a fresh instance rebuilds its congestion/RTO
// state for every one of them from the shared flow table.
func TestWarmRestartReconstructsFlows(t *testing.T) {
	fab := fabric.New()
	cfg := Config{ControlInterval: time.Millisecond, AppTimeout: -1}
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	if err := b.sp.Listen(80, 0, 42); err != nil {
		t.Fatal(err)
	}

	const flows = 3
	for i := uint64(0); i < flows; i++ {
		if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, i); err != nil {
			t.Fatal(err)
		}
		if ev := waitEvent(t, a.ctx, 2*time.Second); ev.Kind != fastpath.EvConnected {
			t.Fatalf("conn %d: %+v", i, ev)
		}
		waitEvent(t, b.ctx, 2*time.Second) // EvAccepted
	}
	pre := a.eng.Table.Len()
	if pre != flows {
		t.Fatalf("table holds %d flows before crash, want %d", pre, flows)
	}

	rep := restart(t, a, cfg)
	if rep.FlowsReconstructed != pre || rep.FlowsAborted != 0 {
		t.Fatalf("recovery: %+v, want %d reconstructed, 0 aborted", rep, pre)
	}
	if got := a.eng.Table.Len(); got != pre {
		t.Fatalf("table shrank across restart: %d", got)
	}
	c := a.sp.Counters()
	if c.FlowsReconstructed != flows || c.RecoveryAborts != 0 {
		t.Fatalf("counters: %+v", c)
	}
	// The restarted instance serves new work: another connect succeeds.
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 99); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, a.ctx, 2*time.Second); ev.Kind != fastpath.EvConnected || ev.Bytes != 0 {
		t.Fatalf("post-restart connect: %+v", ev)
	}
}

// TestWarmRestartRebuildsListeners: listening ports are readopted from
// the shared registry, so a peer can connect to a port whose listener
// was registered before the crash.
func TestWarmRestartRebuildsListeners(t *testing.T) {
	fab := fabric.New()
	cfg := Config{ControlInterval: time.Millisecond, AppTimeout: -1}
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	pending, err := b.sp.ListenBacklog(80, 0, 42, 16)
	if err != nil {
		t.Fatal(err)
	}

	rep := restart(t, b, cfg)
	if rep.ListenersRebuilt != 1 {
		t.Fatalf("recovery: %+v, want 1 listener rebuilt", rep)
	}
	// The accept-depth gauge the application holds is the same object
	// the rebuilt listener uses: admission control still sees accepts.
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 7); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, a.ctx, 2*time.Second); ev.Kind != fastpath.EvConnected || ev.Bytes != 0 {
		t.Fatalf("connect to rebuilt listener: %+v", ev)
	}
	waitEvent(t, b.ctx, 2*time.Second) // EvAccepted
	if got := pending.Load(); got != 1 {
		t.Fatalf("shared pending gauge = %d, want 1", got)
	}
	// The port is still owned: a duplicate listen is refused.
	if err := b.sp.Listen(80, 0, 1); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("duplicate listen: %v", err)
	}
}

// TestWarmRestartAbortsUnprovableFlows: a flow whose owning context died
// during the outage cannot be proven consistent — recovery aborts it
// (RST, state reclaimed) instead of resuming control over garbage.
func TestWarmRestartAbortsUnprovableFlows(t *testing.T) {
	fab := fabric.New()
	cfg := Config{ControlInterval: time.Millisecond, AppTimeout: -1}
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	if err := b.sp.Listen(80, 0, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 7); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvConnected || ev.Flow == nil {
		t.Fatalf("connect: %+v", ev)
	}
	f := ev.Flow
	waitEvent(t, b.ctx, 2*time.Second)

	a.ctx.MarkDead() // the app died while the control plane was down

	rep := restart(t, a, cfg)
	if rep.FlowsReconstructed != 0 || rep.FlowsAborted != 1 {
		t.Fatalf("recovery: %+v, want 0 reconstructed, 1 aborted", rep)
	}
	if got := a.eng.Table.Len(); got != 0 {
		t.Fatalf("aborted flow still in table (%d)", got)
	}
	if !f.RxBuf.Reclaimed() || !f.TxBuf.Reclaimed() {
		t.Fatal("payload buffers not reclaimed")
	}
	if a.eng.Bucket(f.Bucket) != nil {
		t.Fatal("rate bucket not freed")
	}
	if got := a.sp.Counters().RecoveryAborts; got != 1 {
		t.Fatalf("RecoveryAborts = %d, want 1", got)
	}
	// The peer got the best-effort RST.
	if ev := waitEvent(t, b.ctx, 2*time.Second); ev.Kind != fastpath.EvAborted {
		t.Fatalf("peer event: %+v", ev)
	}
}

// TestReapGraceAfterStall is the regression test for the reaper
// false-positive: an app that was alive but could not beat while the
// control plane stalled must NOT be reaped when the loop resumes —
// stale heartbeat stamps from before the gap prove nothing.
func TestReapGraceAfterStall(t *testing.T) {
	fab := fabric.New()
	cfg := reaperCfg() // AppTimeout 40ms
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	a.ctx.Beat() // liveness enabled

	// Stall the control plane for several AppTimeouts. The app goes
	// silent too (blocked on the stalled control plane) and only beats
	// again once the loop resumes.
	a.sp.Stall(150 * time.Millisecond)
	time.Sleep(170 * time.Millisecond)

	// Resume beating promptly and keep it up past the grace window.
	end := time.Now().Add(3 * cfg.AppTimeout)
	for time.Now().Before(end) {
		a.ctx.Beat()
		time.Sleep(2 * time.Millisecond)
	}
	if got := a.sp.Counters().AppsReaped; got != 0 {
		t.Fatalf("live app reaped after stall: AppsReaped = %d", got)
	}
	if a.ctx.Dead() {
		t.Fatal("live context marked dead after stall")
	}
}

// TestReapResumesAfterGrace: the grace window is not amnesty — an app
// that stays silent after the restart is still reaped once the window
// plus AppTimeout pass.
func TestReapResumesAfterGrace(t *testing.T) {
	fab := fabric.New()
	cfg := reaperCfg()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	a.ctx.Beat() // liveness enabled, then the app truly dies

	restart(t, a, cfg)

	deadline := time.Now().Add(2 * time.Second)
	for a.sp.Counters().AppsReaped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := a.sp.Counters().AppsReaped; got != 1 {
		t.Fatalf("dead app not reaped after grace: AppsReaped = %d", got)
	}
}

// TestPanicInjectionKillsLoop: an injected event-loop panic must be
// contained (counted, loop dead, API failing fast with ErrDown) — not
// propagate into the engine's goroutines — and a warm restart brings
// the control plane back.
func TestPanicInjectionKillsLoop(t *testing.T) {
	fab := fabric.New()
	cfg := Config{ControlInterval: time.Millisecond, AppTimeout: -1}
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	if err := b.sp.Listen(80, 0, 42); err != nil {
		t.Fatal(err)
	}

	a.sp.InjectPanic()
	deadline := time.Now().Add(2 * time.Second)
	for !a.sp.Down() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !a.sp.Down() {
		t.Fatal("injected panic did not kill the loop")
	}
	if got := a.sp.Counters().Panics; got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 1); !errors.Is(err, ErrDown) {
		t.Fatalf("Connect on dead slow path: %v, want ErrDown", err)
	}
	if err := a.sp.Listen(81, 0, 1); !errors.Is(err, ErrDown) {
		t.Fatalf("Listen on dead slow path: %v, want ErrDown", err)
	}

	restart(t, a, cfg)
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 2); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, a.ctx, 2*time.Second); ev.Kind != fastpath.EvConnected || ev.Bytes != 0 {
		t.Fatalf("post-restart connect: %+v", ev)
	}
}
