package slowpath

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
)

// waitCtlEvent polls for the next connection-control event, skipping
// EvData/EvTxAcked wakeups.
func waitCtlEvent(t *testing.T, ctx *fastpath.Context, timeout time.Duration) fastpath.Event {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var evs [16]fastpath.Event
	for time.Now().Before(deadline) {
		n := ctx.PollEvents(evs[:])
		for i := 0; i < n; i++ {
			if evs[i].Kind != fastpath.EvData && evs[i].Kind != fastpath.EvTxAcked {
				return evs[i]
			}
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("no control event before timeout")
	return fastpath.Event{}
}

// fastCfg returns a config with aggressive failure-handling timers so
// the tests bound total runtime.
func fastCfg() Config {
	return Config{
		HandshakeRTO:     10 * time.Millisecond,
		HandshakeRetries: 2,
		MaxRetransmits:   2,
	}
}

// TestConnectTimesOutAcrossPartition: an active open toward an
// unreachable peer must fail with ConnTimedOut after the handshake
// retry budget, in bounded time, leaving no half-open state behind.
func TestConnectTimesOutAcrossPartition(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, fastCfg())
	b := newNode(t, fab, ipB, fastCfg())
	b.sp.Listen(80, 0, 1)
	fab.Partition(ipA, ipB)

	start := time.Now()
	if _, err := a.sp.Connect(ipB, 80, 0, 5); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvConnected || ev.Bytes != fastpath.ConnTimedOut {
		t.Fatalf("event = %+v, want EvConnected/ConnTimedOut", ev)
	}
	// Budget: 10 + 20 + 40 ms of backoff plus sweep slack.
	if el := time.Since(start); el > 1500*time.Millisecond {
		t.Fatalf("timed out after %v, want bounded", el)
	}
	nHalf, nTO := a.sp.halfLen(), a.sp.HandshakeTimeouts.Load()
	if nHalf != 0 {
		t.Fatalf("half-open entries leaked: %d", nHalf)
	}
	if nTO == 0 {
		t.Fatal("HandshakeTimeouts not counted")
	}
}

// TestHandshakeSurvivesTransientPartition: SYNs lost during a short
// partition are retransmitted with backoff and the handshake completes
// once the partition heals.
func TestHandshakeSurvivesTransientPartition(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	cfg := fastCfg()
	cfg.HandshakeRetries = 5
	a := newNode(t, fab, ipA, cfg)
	b := newNode(t, fab, ipB, cfg)
	b.sp.Listen(80, 0, 1)

	fab.Partition(ipA, ipB)
	if _, err := a.sp.Connect(ipB, 80, 0, 5); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond) // at least the first SYN is lost
	fab.Heal(ipA, ipB)

	ev := waitCtlEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvConnected || ev.Bytes != 0 || ev.Flow == nil {
		t.Fatalf("event = %+v, want established", ev)
	}
	rexmits := a.sp.HandshakeRexmits.Load()
	if rexmits == 0 {
		t.Fatal("expected SYN retransmissions")
	}
}

// TestRstReapsPassiveHalfOpen: a peer that gives up mid-handshake
// (RST after our SYN-ACK) must not leave a half-open entry behind.
func TestRstReapsPassiveHalfOpen(t *testing.T) {
	fab := fabric.New()
	ipB := protocol.MakeIPv4(10, 0, 0, 2)
	b := newNode(t, fab, ipB, fastCfg())
	b.sp.Listen(80, 0, 1)

	// Forge a SYN from a host that is not attached (its SYN-ACK
	// disappears), then a RST from the same 4-tuple.
	ghost := protocol.MakeIPv4(10, 0, 0, 99)
	b.eng.Input(&protocol.Packet{
		SrcIP: ghost, DstIP: ipB, SrcPort: 4000, DstPort: 80,
		Flags: protocol.FlagSYN, Seq: 100,
	})
	deadline := time.Now().Add(time.Second)
	for {
		n := b.sp.halfLen()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("passive half-open never created")
		}
		time.Sleep(time.Millisecond)
	}
	b.eng.Input(&protocol.Packet{
		SrcIP: ghost, DstIP: ipB, SrcPort: 4000, DstPort: 80,
		Flags: protocol.FlagRST, Seq: 101,
	})
	for {
		n := b.sp.halfLen()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("half-open entry not reaped by RST")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPassiveHalfOpenReapedWithoutFinalAck: if the handshake-completing
// ACK never arrives, the passive entry retransmits its SYN-ACK and is
// eventually reaped — the deadline satellite of the issue.
func TestPassiveHalfOpenReapedWithoutFinalAck(t *testing.T) {
	fab := fabric.New()
	ipB := protocol.MakeIPv4(10, 0, 0, 2)
	b := newNode(t, fab, ipB, fastCfg())
	b.sp.Listen(80, 0, 1)

	ghost := protocol.MakeIPv4(10, 0, 0, 99)
	b.eng.Input(&protocol.Packet{
		SrcIP: ghost, DstIP: ipB, SrcPort: 4001, DstPort: 80,
		Flags: protocol.FlagSYN, Seq: 100,
	})
	deadline := time.Now().Add(2 * time.Second)
	for {
		n, reaped := b.sp.halfLen(), b.sp.HandshakeTimeouts.Load()
		if n == 0 && reaped > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("half-open not reaped: entries=%d timeouts=%d", n, reaped)
		}
		time.Sleep(time.Millisecond)
	}
}

// establish creates a connection between two fresh nodes and returns
// both ends' flows (a dialed, b accepted).
func establish(t *testing.T, a, b *testNode, ipB protocol.IPv4) (fa, fb *flowstate.Flow) {
	t.Helper()
	b.sp.Listen(80, 0, 1)
	if _, err := a.sp.Connect(ipB, 80, 0, 1); err != nil {
		t.Fatal(err)
	}
	evA := waitEvent(t, a.ctx, 2*time.Second)
	if evA.Kind != fastpath.EvConnected || evA.Flow == nil {
		t.Fatalf("client event: %+v", evA)
	}
	evB := waitEvent(t, b.ctx, 2*time.Second)
	if evB.Kind != fastpath.EvAccepted || evB.Flow == nil {
		t.Fatalf("server event: %+v", evB)
	}
	return evA.Flow, evB.Flow
}

// TestEstablishedFlowAbortsAfterRetryBudget: a peer that vanishes
// mid-transfer must be detected by the stall sweep; after
// MaxRetransmits unproductive timeouts the flow aborts — RST attempt,
// EvAborted, state removed.
func TestEstablishedFlowAbortsAfterRetryBudget(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, fastCfg())
	b := newNode(t, fab, ipB, fastCfg())
	f, _ := establish(t, a, b, ipB)

	fab.Partition(ipA, ipB) // peer unreachable from now on

	// Queue data; the fast path sends into the void.
	f.Lock()
	f.TxBuf.Write(make([]byte, 1000))
	f.Unlock()
	a.eng.KickFlow(f)

	ev := waitCtlEvent(t, a.ctx, 5*time.Second)
	if ev.Kind != fastpath.EvAborted {
		t.Fatalf("event = %+v, want EvAborted", ev)
	}
	if a.eng.Table.Len() != 0 {
		t.Fatal("aborted flow still in table")
	}
	aborts := a.sp.Aborts.Load()
	if aborts == 0 {
		t.Fatal("Aborts not counted")
	}
	f.Lock()
	aborted := f.Aborted
	f.Unlock()
	if !aborted {
		t.Fatal("flow not marked aborted")
	}
}

// TestFinWithDataGapDefersClose: a FIN arriving ahead of missing data
// (sequence gap) must not close the connection; the receiver re-acks
// and waits for the retransmission to fill the gap first.
func TestFinWithDataGapDefersClose(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, fastCfg())
	b := newNode(t, fab, ipB, fastCfg())
	f, _ := establish(t, a, b, ipB)

	f.Lock()
	ackNo, localSeq := f.AckNo, f.SeqNo
	f.Unlock()

	// FIN 10 bytes ahead of what we have: in-flight data was lost.
	a.eng.Input(&protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagFIN | protocol.FlagACK, Seq: ackNo + 10, Ack: localSeq,
	})
	time.Sleep(20 * time.Millisecond)
	f.Lock()
	finRcvd := f.FinReceived
	f.Unlock()
	if finRcvd {
		t.Fatal("FIN with a data gap was accepted early")
	}
	if a.eng.Table.Len() != 1 {
		t.Fatal("flow removed despite unfilled gap")
	}

	// The retransmitted in-order FIN closes normally.
	a.eng.Input(&protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagFIN | protocol.FlagACK, Seq: ackNo, Ack: localSeq,
	})
	ev := waitCtlEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvClosed {
		t.Fatalf("event = %+v, want EvClosed", ev)
	}
}

// TestLingerReAcksRetransmittedFin: after both sides close, the flow
// lingers briefly (removeFlowSoon); a retransmitted peer FIN during the
// linger window must be re-acked so the peer can finish its teardown.
func TestLingerReAcksRetransmittedFin(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, fastCfg())
	b := newNode(t, fab, ipB, fastCfg())
	f, _ := establish(t, a, b, ipB)

	var reAcks atomic.Int64
	f.Lock()
	finSeq, localSeq := f.AckNo, f.SeqNo
	f.Unlock()
	fab.Tap = func(ts int64, pkt *protocol.Packet) {
		if pkt.SrcIP == ipA && pkt.Flags.Has(protocol.FlagACK) && pkt.Ack == finSeq+1 {
			reAcks.Add(1)
		}
	}
	defer func() { fab.Tap = nil }()

	// Local close first (FIN out), then the peer's FIN arrives.
	a.sp.Close(f)
	deadline := time.Now().Add(time.Second)
	for {
		f.Lock()
		sent := f.FinSent
		f.Unlock()
		if sent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("local FIN never sent")
		}
		time.Sleep(time.Millisecond)
	}
	peerFin := &protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagFIN | protocol.FlagACK, Seq: finSeq, Ack: localSeq,
	}
	a.eng.Input(peerFin)
	ev := waitCtlEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvClosed {
		t.Fatalf("event = %+v, want EvClosed", ev)
	}

	// Retransmit the peer's FIN inside the linger window: must be
	// re-acked from the still-present flow state.
	a.eng.Input(peerFin)
	time.Sleep(10 * time.Millisecond)
	if n := reAcks.Load(); n < 2 {
		t.Fatalf("re-acks = %d, want the lingering flow to re-ack the duplicate FIN", n)
	}

	// After the linger the flow is gone.
	deadline = time.Now().Add(time.Second)
	for a.eng.Table.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("flow not removed after linger")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFinRetransmittedUntilAcked: a FIN lost to a partition is
// retransmitted with backoff; once the partition heals the peer acks it
// and the closing entry clears.
func TestFinRetransmittedUntilAcked(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	cfg := fastCfg()
	cfg.MaxRetransmits = 10
	a := newNode(t, fab, ipA, cfg)
	b := newNode(t, fab, ipB, cfg)
	f, _ := establish(t, a, b, ipB)

	fab.Partition(ipA, ipB)
	a.sp.Close(f)
	time.Sleep(60 * time.Millisecond) // FIN and its first retransmits are lost
	fab.Heal(ipA, ipB)

	deadline := time.Now().Add(3 * time.Second)
	for {
		f.Lock()
		acked := f.FinAcked
		f.Unlock()
		rexmits := a.sp.FinRexmits.Load()
		if acked {
			if rexmits == 0 {
				t.Fatal("FIN acked without any retransmission despite partition")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("FIN never acked (rexmits=%d)", rexmits)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
