package slowpath

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/shmring"
)

// newCoreWatchNode builds a 2-core engine + slow path with the core
// watchdog armed at its floor timeout and scaling pinned (the test
// controls the active set).
func newCoreWatchNode(t *testing.T, coreTimeout time.Duration) (*fastpath.Engine, *Slowpath) {
	t.Helper()
	fab := fabric.New()
	ip := protocol.MakeIPv4(10, 0, 0, 1)
	var eng *fastpath.Engine
	nic := fab.Attach(ip, func(p *protocol.Packet) { eng.Input(p) })
	eng = fastpath.NewEngine(nic, fastpath.Config{
		LocalIP: ip, LocalMAC: protocol.MACForIPv4(ip), MaxCores: 2,
	})
	sp := New(eng, Config{
		ControlInterval: time.Millisecond,
		CoreTimeout:     coreTimeout,
		DisableScaling:  true,
	})
	eng.Start()
	eng.SetActiveCores(2)
	sp.Start()
	t.Cleanup(func() { sp.Stop(); eng.Stop() })
	return eng, sp
}

// installWatchFlow inserts a flow with unacked in-flight data and a cc
// entry, as an established connection mid-transfer would have.
func installWatchFlow(eng *fastpath.Engine, sp *Slowpath) *flowstate.Flow {
	f := &flowstate.Flow{
		LocalIP: eng.Config().LocalIP, LocalPort: 80,
		PeerIP: protocol.MakeIPv4(10, 0, 0, 2), PeerPort: 5000,
		PeerMAC: protocol.MACForIPv4(protocol.MakeIPv4(10, 0, 0, 2)),
		SeqNo:   1500, AckNo: 5000, Window: 64, TxSent: 500,
		RxBuf: shmring.NewPayloadBuffer(64 << 10),
		TxBuf: shmring.NewPayloadBuffer(64 << 10),
	}
	f.Bucket = eng.AllocBucket()
	eng.Table.Insert(f)
	sp.mu.Lock()
	sp.cc[f] = &ccEntry{ctrl: sp.cfg.NewController(), lastUna: 1500, stallTicks: 3, consecTimeouts: 2}
	sp.mu.Unlock()
	return f
}

func waitCond(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoreWatchdogDetectsKillMigratesAndReadmits drives the full
// data-plane failure lifecycle: a killed core's frozen heartbeat trips
// the verdict within CoreTimeout, RSS is rewritten around it, its flow
// is migrated (go-back-N rewind + re-armed timeout state), and after
// ReviveCore the watchdog folds the core back in once clean heartbeats
// flow.
func TestCoreWatchdogDetectsKillMigratesAndReadmits(t *testing.T) {
	eng, sp := newCoreWatchNode(t, 250*time.Millisecond)
	f := installWatchFlow(eng, sp)
	victim := eng.CoreForFlow(f)

	eng.KillCore(victim)
	waitCond(t, "failure verdict", 2*time.Second, func() bool {
		return sp.Counters().CoreFailures == 1
	})
	if !eng.CoreFailed(victim) {
		t.Fatalf("core %d not marked failed", victim)
	}
	// Never-steer-to-failed: every RSS bucket must name a survivor.
	for b := 0; b < flowstate.RSSTableSize; b++ {
		if eng.RSS.CoreFor(uint32(b)) == victim {
			t.Fatalf("bucket %d still steers to failed core %d", b, victim)
		}
	}
	// ... including across a scale event while the core is down.
	eng.SetActiveCores(2)
	for b := 0; b < flowstate.RSSTableSize; b++ {
		if eng.RSS.CoreFor(uint32(b)) == victim {
			t.Fatalf("SetCores steered bucket %d back to failed core %d", b, victim)
		}
	}
	if eng.CoreForFlow(f) == victim {
		t.Fatal("flow still owned by the failed core")
	}

	// Migration: in-flight tail rewound as unsent, timeout state re-armed.
	c := sp.Counters()
	if c.FlowsMigrated != 1 {
		t.Fatalf("FlowsMigrated = %d, want 1", c.FlowsMigrated)
	}
	f.Lock()
	seq, txSent := f.SeqNo, f.TxSent
	f.Unlock()
	if seq != 1000 || txSent != 0 {
		t.Fatalf("flow not rewound: SeqNo=%d TxSent=%d, want 1000/0", seq, txSent)
	}
	sp.mu.Lock()
	e := sp.cc[f]
	stall, consec, una := e.stallTicks, e.consecTimeouts, e.lastUna
	sp.mu.Unlock()
	if stall != 0 || consec != 0 || una != 1000 {
		t.Fatalf("cc entry not re-armed: stall=%d consec=%d lastUna=%d", stall, consec, una)
	}

	// Recovery: revive, then the watchdog re-admits after clean beats.
	if !eng.ReviveCore(victim) {
		t.Fatal("ReviveCore failed")
	}
	waitCond(t, "re-admission", 3*time.Second, func() bool {
		return sp.Counters().CoreReadmits == 1 && !eng.CoreFailed(victim)
	})
	owns := false
	for b := 0; b < flowstate.RSSTableSize; b++ {
		if eng.RSS.CoreFor(uint32(b)) == victim {
			owns = true
			break
		}
	}
	if !owns {
		t.Fatalf("re-admitted core %d owns no RSS buckets", victim)
	}
}

// TestCoreWatchdogStallAutoRecovers: a stall longer than CoreTimeout
// draws the failure verdict, and the watchdog re-admits the core on its
// own once the stall ends and heartbeats resume — no ReviveCore needed,
// symmetric with the slow path's own stall story.
func TestCoreWatchdogStallAutoRecovers(t *testing.T) {
	eng, sp := newCoreWatchNode(t, 250*time.Millisecond)
	eng.StallCore(1, 600*time.Millisecond)
	waitCond(t, "stall verdict", 2*time.Second, func() bool {
		return sp.Counters().CoreFailures == 1 && eng.CoreFailed(1)
	})
	waitCond(t, "auto re-admission", 3*time.Second, func() bool {
		return sp.Counters().CoreReadmits == 1 && !eng.CoreFailed(1)
	})
}

// TestCoreWatchdogSparesLastCore: the watchdog never condemns the last
// eligible core. With core 1 dead and excluded, killing core 0 too must
// not draw a verdict — excluding it would leave nothing to steer to,
// strictly worse than leaving the (possibly just starved) core in
// place. Once core 1 revives and is re-admitted, the still-dead core 0
// finally draws its deferred verdict.
func TestCoreWatchdogSparesLastCore(t *testing.T) {
	eng, sp := newCoreWatchNode(t, 250*time.Millisecond)
	eng.KillCore(1)
	waitCond(t, "first failure verdict", 2*time.Second, func() bool {
		return sp.Counters().CoreFailures == 1 && eng.CoreFailed(1)
	})

	eng.KillCore(0)
	time.Sleep(600 * time.Millisecond) // well past CoreTimeout
	if eng.CoreFailed(0) {
		t.Fatal("watchdog condemned the last eligible core")
	}
	if c := sp.Counters().CoreFailures; c != 1 {
		t.Fatalf("CoreFailures = %d, want 1 (last-core verdict deferred)", c)
	}

	// A survivor returns: core 1 is re-admitted, and the deferred
	// verdict against core 0 lands.
	if !eng.ReviveCore(1) {
		t.Fatal("ReviveCore failed")
	}
	waitCond(t, "deferred verdict on core 0", 3*time.Second, func() bool {
		c := sp.Counters()
		return c.CoreReadmits == 1 && c.CoreFailures == 2 && eng.CoreFailed(0)
	})
	if eng.CoreFailed(1) {
		t.Fatal("revived core 1 not re-admitted")
	}
}

// TestCoreWatchdogDisabled: CoreTimeout 0 turns the watchdog off — a
// dead core is never declared failed (raw-engine compatibility).
func TestCoreWatchdogDisabled(t *testing.T) {
	eng, sp := newCoreWatchNode(t, 0)
	eng.KillCore(1)
	time.Sleep(400 * time.Millisecond)
	if c := sp.Counters().CoreFailures; c != 0 {
		t.Fatalf("disabled watchdog declared %d failures", c)
	}
	if eng.CoreFailed(1) {
		t.Fatal("disabled watchdog marked core failed")
	}
}

// TestCoreWatchdogSurvivesWarmRestart: a warm-restarted slow path
// adopts the predecessor's failure verdicts (the failed core stays
// excluded) and can still re-admit the core after revival.
func TestCoreWatchdogSurvivesWarmRestart(t *testing.T) {
	eng, sp := newCoreWatchNode(t, 250*time.Millisecond)
	eng.KillCore(1)
	waitCond(t, "failure verdict", 2*time.Second, func() bool {
		return sp.Counters().CoreFailures == 1
	})

	// Crash and warm-restart the slow path on the same engine.
	sp.Kill()
	ns := New(eng, sp.cfg)
	ns.AdoptCounters(sp.Counters())
	ns.Recover()
	ns.Start()
	t.Cleanup(func() { ns.Stop() })

	if !eng.CoreFailed(1) {
		t.Fatal("warm restart lost the failure verdict")
	}
	time.Sleep(100 * time.Millisecond)
	if eng.CoreFailed(1) == false || ns.Counters().CoreFailures != 1 {
		t.Fatalf("restarted instance re-judged the core: %+v", ns.Counters())
	}

	if !eng.ReviveCore(1) {
		t.Fatal("ReviveCore failed")
	}
	waitCond(t, "re-admission by restarted instance", 3*time.Second, func() bool {
		return ns.Counters().CoreReadmits == 1 && !eng.CoreFailed(1)
	})
}
