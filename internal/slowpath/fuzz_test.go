package slowpath

import (
	"encoding/binary"
	"testing"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/protocol"
)

// FuzzStateMachine drives the slow path's exception handler directly
// with adversarial packet sequences — flags, sequence numbers, and
// ports steered by the fuzzer — against a node with live listeners.
// Neither the engine nor the event loop is started, so every handler
// runs deterministically on the fuzzer's goroutine.
//
// Properties: no input sequence panics; listener backlog accounting
// never drifts from the half-open table (halfCount always equals the
// number of passive entries charged to that listener, and never goes
// negative); the half-open table never exceeds what the backlogs
// admit.
func FuzzStateMachine(f *testing.F) {
	// Seeds: a clean handshake, a handshake completed twice, a blind
	// RST volley, a SYN flood burst, and a cookie-mode completion.
	seed := func(records ...[14]byte) []byte {
		var out []byte
		for _, r := range records {
			out = append(out, r[:]...)
		}
		return out
	}
	mk := func(flags byte, srcSel, dstSel byte, seq, ack uint32, payload byte) [14]byte {
		var r [14]byte
		r[0] = flags
		r[1] = srcSel
		r[2] = dstSel
		binary.BigEndian.PutUint32(r[3:], seq)
		binary.BigEndian.PutUint32(r[7:], ack)
		r[11] = payload
		return r
	}
	synF := byte(protocol.FlagSYN)
	ackF := byte(protocol.FlagACK)
	rstF := byte(protocol.FlagRST)
	finF := byte(protocol.FlagFIN)
	f.Add(seed(mk(synF, 1, 0, 100, 0, 0), mk(ackF, 1, 0, 101, 1, 0)))
	f.Add(seed(mk(synF, 2, 0, 7, 0, 0), mk(ackF, 2, 0, 8, 1, 0), mk(ackF, 2, 0, 8, 1, 0)))
	f.Add(seed(mk(rstF, 1, 0, 0, 0, 0), mk(rstF|ackF, 1, 0, 1, 1, 0), mk(rstF, 1, 1, 9, 9, 0)))
	f.Add(seed(mk(synF, 0, 0, 1, 0, 0), mk(synF, 1, 0, 2, 0, 0), mk(synF, 2, 0, 3, 0, 0),
		mk(synF, 3, 0, 4, 0, 0), mk(synF, 4, 0, 5, 0, 0)))
	f.Add(seed(mk(synF|ackF, 1, 0, 50, 60, 0), mk(finF|ackF, 1, 1, 70, 80, 3)))

	f.Fuzz(func(t *testing.T, data []byte) {
		fab := fabric.New()
		ip := protocol.MakeIPv4(10, 0, 0, 2)
		var eng *fastpath.Engine
		nic := fab.Attach(ip, func(p *protocol.Packet) {})
		eng = fastpath.NewEngine(nic, fastpath.Config{
			LocalIP: ip, LocalMAC: protocol.MACForIPv4(ip), MaxCores: 1,
		})
		s := New(eng, Config{
			// Tiny payload buffers: an input can establish hundreds of
			// flows, and the default 2×256KB per flow would turn large
			// inputs into allocation storms.
			RxBufSize: 4096, TxBufSize: 4096,
			ListenBacklog: 4, Stripes: 4,
			SynRateThreshold: 8,
		})
		ctx := fastpath.NewContext(0, 1, 64)
		eng.RegisterContext(ctx)
		if err := s.Listen(80, 0, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.Listen(81, 0, 2); err != nil {
			t.Fatal(err)
		}

		srcIPs := [4]protocol.IPv4{
			protocol.MakeIPv4(10, 0, 0, 1),
			protocol.MakeIPv4(10, 9, 0, 1),
			protocol.MakeIPv4(10, 9, 0, 2),
			protocol.MakeIPv4(192, 168, 1, 1),
		}
		dstPorts := [4]uint16{80, 81, 82, 40000}

		for steps := 0; len(data) >= 14 && steps < 512; steps++ {
			rec := data[:14]
			data = data[14:]
			pkt := &protocol.Packet{
				SrcIP: srcIPs[rec[1]%4], DstIP: ip,
				SrcPort: 1024 + uint16(rec[1])<<3, DstPort: dstPorts[rec[2]%4],
				Flags:  protocol.TCPFlags(rec[0]),
				Seq:    binary.BigEndian.Uint32(rec[3:]),
				Ack:    binary.BigEndian.Uint32(rec[7:]),
				MSSOpt: uint16(rec[12]) << 4,
				Window: uint16(rec[13]),
			}
			if n := int(rec[11]) % 32; n > 0 {
				pkt.Payload = make([]byte, n)
				pkt.PayloadLen = n
			}
			s.handleException(pkt)
			checkBacklogInvariants(t, s)
			// Drain accept events sometimes so both the deliverable and
			// queue-full (teardownUndeliverable) paths are exercised.
			if rec[13]&1 == 1 {
				var evs [16]fastpath.Event
				ctx.PollEvents(evs[:])
			}
		}
		// Final sweep must also hold the invariants.
		s.handshakeSweep()
		checkBacklogInvariants(t, s)
	})
}

// checkBacklogInvariants asserts listener/half-open consistency across
// all stripes: no negative or orphaned backlog accounting.
func checkBacklogInvariants(t *testing.T, s *Slowpath) {
	t.Helper()
	for _, st := range s.stripes {
		st.mu.Lock()
		passive := make(map[*listener]int)
		for _, h := range st.half {
			if h.passive && h.lst != nil {
				passive[h.lst]++
			}
		}
		for port, l := range st.listeners {
			if l.halfCount < 0 {
				st.mu.Unlock()
				t.Fatalf("listener %d: negative halfCount %d", port, l.halfCount)
			}
			if got := passive[l]; got != l.halfCount {
				st.mu.Unlock()
				t.Fatalf("listener %d: halfCount %d but %d passive entries", port, l.halfCount, got)
			}
			if l.halfCount > l.backlog {
				st.mu.Unlock()
				t.Fatalf("listener %d: halfCount %d exceeds backlog %d", port, l.halfCount, l.backlog)
			}
		}
		st.mu.Unlock()
	}
}
