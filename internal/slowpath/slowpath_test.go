package slowpath

import (
	"testing"
	"time"

	"repro/internal/congestion"
	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
)

// testNode is one TAS instance (engine + slow path) on a fabric.
type testNode struct {
	eng *fastpath.Engine
	sp  *Slowpath
	ctx *fastpath.Context
}

func newNode(t *testing.T, fab *fabric.Fabric, ip protocol.IPv4, scfg Config) *testNode {
	t.Helper()
	var eng *fastpath.Engine
	nic := fab.Attach(ip, func(p *protocol.Packet) { eng.Input(p) })
	eng = fastpath.NewEngine(nic, fastpath.Config{LocalIP: ip, LocalMAC: protocol.MACForIPv4(ip), MaxCores: 1})
	sp := New(eng, scfg)
	eng.Start()
	sp.Start()
	t.Cleanup(func() { sp.Stop(); eng.Stop() })
	ctx := fastpath.NewContext(0, 1, 256)
	eng.RegisterContext(ctx)
	return &testNode{eng: eng, sp: sp, ctx: ctx}
}

// waitEvent polls a context for the next event.
func waitEvent(t *testing.T, ctx *fastpath.Context, timeout time.Duration) fastpath.Event {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var evs [16]fastpath.Event
	for time.Now().Before(deadline) {
		if n := ctx.PollEvents(evs[:]); n > 0 {
			return evs[0]
		}
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatal("no event before timeout")
	return fastpath.Event{}
}

func TestHandshakeEstablishesBothSides(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), Config{})
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), Config{})

	if err := b.sp.Listen(80, 0, 42); err != nil {
		t.Fatal(err)
	}
	lport, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lport < 32768 {
		t.Fatalf("ephemeral port %d", lport)
	}

	evA := waitEvent(t, a.ctx, 2*time.Second)
	if evA.Kind != fastpath.EvConnected || evA.Opaque != 7 || evA.Flow == nil {
		t.Fatalf("client event: %+v", evA)
	}
	evB := waitEvent(t, b.ctx, 2*time.Second)
	if evB.Kind != fastpath.EvAccepted || evB.Opaque != 42 || evB.Flow == nil {
		t.Fatalf("server event: %+v", evB)
	}
	// Both flow tables must contain the connection.
	if a.eng.Table.Len() != 1 || b.eng.Table.Len() != 1 {
		t.Fatalf("tables: %d %d", a.eng.Table.Len(), b.eng.Table.Len())
	}
	// Sequence numbers line up.
	fa, fb := evA.Flow, evB.Flow
	if fa.SeqNo != fb.AckNo || fb.SeqNo != fa.AckNo {
		t.Fatalf("seq mismatch: a(seq=%d ack=%d) b(seq=%d ack=%d)", fa.SeqNo, fa.AckNo, fb.SeqNo, fb.AckNo)
	}
	// Rate bucket allocated and configured.
	if a.eng.Bucket(fa.Bucket) == nil {
		t.Fatal("no bucket")
	}
}

func TestConnectRefusedSendsRst(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), Config{})
	newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), Config{})
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 81, 0, 9); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvConnected || ev.Bytes == 0 {
		t.Fatalf("expected refusal event, got %+v", ev)
	}
}

func TestListenDuplicatePort(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), Config{})
	if err := a.sp.Listen(80, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.sp.Listen(80, 0, 2); err != ErrPortInUse {
		t.Fatalf("err = %v", err)
	}
	a.sp.Unlisten(80)
	if err := a.sp.Listen(80, 0, 3); err != nil {
		t.Fatalf("relisten after unlisten: %v", err)
	}
}

func TestControlLoopSetsBucketRate(t *testing.T) {
	fab := fabric.New()
	fixed := 12345.0
	cfg := Config{
		ControlInterval: time.Millisecond,
		NewController: func() congestion.RateController {
			return fixedRate{rate: fixed}
		},
	}
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	b.sp.Listen(80, 0, 1)
	a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 1)
	ev := waitEvent(t, a.ctx, 2*time.Second)
	f := ev.Flow
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.eng.Bucket(f.Bucket).Rate() == fixed {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("bucket rate = %v, want %v", a.eng.Bucket(f.Bucket).Rate(), fixed)
}

type fixedRate struct{ rate float64 }

func (f fixedRate) Name() string                       { return "fixed" }
func (f fixedRate) Update(congestion.Feedback) float64 { return f.rate }
func (f fixedRate) Rate() float64                      { return f.rate }

func TestStallTriggersRetransmission(t *testing.T) {
	fab := fabric.New()
	cfg := Config{ControlInterval: time.Millisecond, StallIntervals: 2}
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	b.sp.Listen(80, 0, 1)
	a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 1)
	ev := waitEvent(t, a.ctx, 2*time.Second)
	f := ev.Flow

	// Simulate in-flight data whose packets (and acks) were all lost.
	fab.SetLossRate(1.0)
	f.Lock()
	f.TxBuf.Write(make([]byte, 1000))
	f.Unlock()
	a.eng.KickFlow(f)
	// Wait for the fast path to mark it sent.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		f.Lock()
		sent := f.TxSent
		f.Unlock()
		if sent == 1000 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Heal the network; the slow path's stall detector must rewind and
	// retransmit, and the transfer completes.
	time.Sleep(10 * time.Millisecond)
	fab.SetLossRate(0)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		f.Lock()
		done := f.TxBuf.Used() == 0 && f.TxSent == 0
		f.Unlock()
		if done {
			if s := a.sp; s.Timeouts.Load() == 0 {
				t.Fatal("expected a slow-path timeout event")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("stalled flow never recovered")
}

func TestFlowRemovalOnRst(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), Config{})
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), Config{})
	b.sp.Listen(80, 0, 1)
	a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 1)
	ev := waitEvent(t, a.ctx, 2*time.Second)
	f := ev.Flow

	// A forged RST with a wrong (zero) sequence is blind injection:
	// RFC 5961 validation must drop it without touching the flow.
	a.eng.Input(&protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagRST,
	})
	time.Sleep(20 * time.Millisecond)
	if a.eng.Table.Len() != 1 {
		t.Fatal("blind RST (seq 0) tore the flow down")
	}
	if a.sp.BlindRstDrops.Load() == 0 {
		t.Fatal("blind RST not counted")
	}

	// The peer's real RST carries the exact next expected sequence.
	f.Lock()
	exact := f.AckNo
	f.Unlock()
	a.eng.Input(&protocol.Packet{
		SrcIP: f.PeerIP, DstIP: f.LocalIP,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagRST, Seq: exact,
	})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if a.eng.Table.Len() == 0 {
			// Abort event delivered too: a peer RST on an established
			// flow is a failure, not an orderly close.
			ev := waitEvent(t, a.ctx, time.Second)
			if ev.Kind != fastpath.EvAborted {
				t.Fatalf("event = %+v", ev)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("flow not removed after RST")
}

func TestScaleLoopRespondsToLoad(t *testing.T) {
	fab := fabric.New()
	var eng *fastpath.Engine
	ip := protocol.MakeIPv4(10, 0, 0, 1)
	nic := fab.Attach(ip, func(p *protocol.Packet) { eng.Input(p) })
	eng = fastpath.NewEngine(nic, fastpath.Config{LocalIP: ip, LocalMAC: protocol.MACForIPv4(ip), MaxCores: 4})
	sp := New(eng, Config{ScaleInterval: 5 * time.Millisecond})
	// Don't start the engine: drive utilization synthetically through
	// the scale loop's own inputs by pre-setting active cores.
	eng.SetActiveCores(3)
	// All cores idle: repeated scale loops must shrink to 1.
	for i := 0; i < 10; i++ {
		sp.scaleLoop()
	}
	if eng.ActiveCores() != 1 {
		t.Fatalf("idle system should shrink to 1 core, got %d", eng.ActiveCores())
	}
	_ = flowstate.Flow{}
}
