package slowpath

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/protocol"
)

// reaperCfg shortens every timescale so crash detection and reaping
// complete in tens of milliseconds.
func reaperCfg() Config {
	return Config{
		ControlInterval:  time.Millisecond,
		AppTimeout:       40 * time.Millisecond,
		HandshakeRTO:     10 * time.Millisecond,
		HandshakeRetries: 2,
	}
}

func TestReapOnMissedHeartbeat(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), reaperCfg())
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), reaperCfg())
	b.sp.Listen(80, 0, 42)

	// The client app beats once (liveness enabled) and then goes silent —
	// an app that crashed right after connecting.
	a.ctx.Beat()
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 7); err != nil {
		t.Fatal(err)
	}
	evA := waitEvent(t, a.ctx, 2*time.Second)
	if evA.Kind != fastpath.EvConnected || evA.Flow == nil {
		t.Fatalf("client event: %+v", evA)
	}
	f := evA.Flow
	waitEvent(t, b.ctx, 2*time.Second) // EvAccepted
	b.ctx.Beat()                       // keep the server app alive
	stopBeat := make(chan struct{})
	defer close(stopBeat)
	go func() {
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopBeat:
				return
			case <-tick.C:
				b.ctx.Beat()
			}
		}
	}()

	// The reaper must declare the client app dead and take everything
	// back.
	deadline := time.Now().Add(2 * time.Second)
	for a.sp.Counters().AppsReaped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c := a.sp.Counters()
	if c.AppsReaped != 1 || c.FlowsReaped != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if !a.ctx.Dead() {
		t.Fatal("context not marked dead")
	}
	if a.eng.Table.Len() != 0 {
		t.Fatalf("flow table still holds %d flows", a.eng.Table.Len())
	}
	if a.eng.ContextByID(0) != nil {
		t.Fatal("context slot not released")
	}
	if a.eng.Bucket(f.Bucket) != nil {
		t.Fatal("rate bucket not freed")
	}
	if !f.RxBuf.Reclaimed() || !f.TxBuf.Reclaimed() {
		t.Fatal("payload buffers not reclaimed")
	}
	// The peer received the best-effort RST and saw its side aborted.
	ev := waitEvent(t, b.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvAborted {
		t.Fatalf("peer event: %+v", ev)
	}
	// The server app, which kept beating, must be untouched.
	if got := b.sp.Counters().AppsReaped; got != 0 {
		t.Fatalf("live app reaped: %d", got)
	}
}

func TestHeartbeatPreventsReap(t *testing.T) {
	fab := fabric.New()
	// A generous timeout relative to the beat cadence: on a loaded
	// single-CPU machine the busy-polling fast-path core can starve this
	// goroutine for tens of milliseconds between beats.
	cfg := reaperCfg()
	cfg.AppTimeout = 250 * time.Millisecond
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)

	end := time.Now().Add(600 * time.Millisecond) // several AppTimeouts
	for time.Now().Before(end) {
		a.ctx.Beat()
		time.Sleep(2 * time.Millisecond)
	}
	if got := a.sp.Counters().AppsReaped; got != 0 {
		t.Fatalf("beating app was reaped: %d", got)
	}
	if a.ctx.Dead() {
		t.Fatal("beating context marked dead")
	}
}

// TestRawContextExemptFromReaping: a context that never beats has
// liveness disabled (lastBeat == 0) — the low-level API contract — and
// must never be reaped no matter how long it idles.
func TestRawContextExemptFromReaping(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), reaperCfg())
	time.Sleep(120 * time.Millisecond)
	if got := a.sp.Counters().AppsReaped; got != 0 {
		t.Fatalf("silent raw context reaped: %d", got)
	}
}

func TestReapReclaimsListenPort(t *testing.T) {
	fab := fabric.New()
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), reaperCfg())
	if err := a.sp.Listen(80, 0, 1); err != nil {
		t.Fatal(err)
	}
	a.ctx.Beat() // enable liveness, then crash

	deadline := time.Now().Add(2 * time.Second)
	for a.sp.Counters().ListenersReaped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c := a.sp.Counters(); c.ListenersReaped != 1 || c.AppsReaped != 1 {
		t.Fatalf("counters: %+v", c)
	}
	// The port is free again for the next (live) app.
	ctx2 := fastpath.NewContext(0, 1, 256)
	id := a.eng.RegisterContext(ctx2)
	if err := a.sp.Listen(80, id, 2); err != nil {
		t.Fatalf("re-listen after reap: %v", err)
	}
}

// TestBacklogShedsSyn: a listener with backlog 2 and no consumer sheds
// the third concurrent connection attempt — the SYN is dropped silently
// and counted, never RST (a well-behaved peer retries later).
func TestBacklogShedsSyn(t *testing.T) {
	fab := fabric.New()
	cfg := reaperCfg()
	cfg.AppTimeout = -1 // isolate backlog behavior from the reaper
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	if _, err := b.sp.ListenBacklog(80, 0, 1, 2); err != nil {
		t.Fatal(err)
	}

	// Two connections fill the accept queue (nobody calls accept).
	for i := uint64(0); i < 2; i++ {
		if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, i); err != nil {
			t.Fatal(err)
		}
		ev := waitEvent(t, a.ctx, 2*time.Second)
		if ev.Kind != fastpath.EvConnected || ev.Bytes != 0 {
			t.Fatalf("conn %d: %+v", i, ev)
		}
	}

	// The third attempt must be shed and eventually time out client-side.
	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 9); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, a.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvConnected || ev.Bytes != fastpath.ConnTimedOut {
		t.Fatalf("shed connect: %+v", ev)
	}
	if got := b.sp.Counters().SynBacklogDrops; got == 0 {
		t.Fatal("no SynBacklogDrops counted")
	}
	if got := b.eng.Table.Len(); got != 2 {
		t.Fatalf("server installed %d flows, want 2", got)
	}
}

// TestUndeliverableAcceptTornDown: when the accepting context cannot
// take the accept event (dead app between SYN and handshake
// completion), the slow path tears the just-established flow down
// instead of leaking it.
func TestUndeliverableAcceptTornDown(t *testing.T) {
	fab := fabric.New()
	cfg := reaperCfg()
	cfg.AppTimeout = -1
	a := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 1), cfg)
	b := newNode(t, fab, protocol.MakeIPv4(10, 0, 0, 2), cfg)
	if err := b.sp.Listen(80, 0, 1); err != nil {
		t.Fatal(err)
	}
	// The server app dies without unlistening.
	b.ctx.MarkDead()

	if _, err := a.sp.Connect(protocol.MakeIPv4(10, 0, 0, 2), 80, 0, 1); err != nil {
		t.Fatal(err)
	}
	// Client either never establishes or is aborted right after; the
	// server must not retain the flow either way.
	deadline := time.Now().Add(2 * time.Second)
	for b.sp.Counters().AcceptQueueDrops == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.sp.Counters().AcceptQueueDrops; got == 0 {
		t.Fatal("no AcceptQueueDrops counted")
	}
	if got := b.eng.Table.Len(); got != 0 {
		t.Fatalf("server retained %d flows", got)
	}
}
