package slowpath

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/protocol"
	"repro/internal/resource"
)

// Lock-striped listener/half-open tables. Before this existed, one
// mutex guarded every listener and every in-flight handshake, so a SYN
// flood against a single port serialized the entire control plane —
// Dial, accept, and teardown on unrelated ports all queued behind the
// attacker. Striping shards that state by local port: connection-setup
// work on one port only contends with traffic that hashes to the same
// stripe.
//
// The stripe key is the local port, not the full 4-tuple, deliberately:
// a listener and every passive half-open it spawns share a LocalPort,
// so they land in the same stripe and the listener's halfCount backlog
// accounting stays consistent under a single stripe lock. Active opens
// hash by their ephemeral local port and spread across stripes.

// stripe is one shard. The padding keeps adjacent stripes on separate
// cache lines so uncontended stripes don't false-share.
type stripe struct {
	mu        sync.Mutex
	listeners map[uint16]*listener
	half      map[protocol.FlowKey]*halfOpen
	rng       *rand.Rand         // ISS generation; guarded by mu
	gov       *resource.Governor // half-open slot accounting (nil = ungoverned)
	_         [64]byte
}

// newStripes builds n stripes (n must be a power of two; fill()
// guarantees it) with independently seeded ISS generators.
func newStripes(n int, gov *resource.Governor) []*stripe {
	ss := make([]*stripe, n)
	for i := range ss {
		ss[i] = &stripe{
			listeners: make(map[uint16]*listener),
			half:      make(map[protocol.FlowKey]*halfOpen),
			rng:       rand.New(rand.NewSource(time.Now().UnixNano() + int64(i)<<32)),
			gov:       gov,
		}
	}
	return ss
}

// stripeShift converts a stripe count into the right-shift that maps a
// 32-bit hash onto a stripe index.
func stripeShift(n int) uint {
	shift := uint(32)
	for n > 1 {
		n >>= 1
		shift--
	}
	return shift
}

// stripeFor returns the stripe owning a local port. Multiplicative
// hashing (Fibonacci constant) spreads the sequential port numbers
// dials allocate; adjacent ports land in different stripes.
func (s *Slowpath) stripeFor(port uint16) *stripe {
	return s.stripes[uint32(port)*0x9E3779B1>>s.stripeSh]
}

// stripeOf returns the stripe owning a flow key (by its local port).
func (s *Slowpath) stripeOf(key protocol.FlowKey) *stripe {
	return s.stripeFor(key.LocalPort)
}

// dropHalf removes a half-open entry and releases its listener backlog
// slot. Caller holds st.mu. Only passive entries carry a listener
// reference — an active open (Dial side) never decrements any
// listener's halfCount, so flood-driven reaping of a listener's
// backlog can never reclaim an active-open handshake's accounting.
func (st *stripe) dropHalf(key protocol.FlowKey, h *halfOpen) {
	delete(st.half, key)
	if h.passive && h.lst != nil && h.lst.halfCount > 0 {
		h.lst.halfCount--
	}
	if st.gov != nil {
		st.gov.Charge(resource.PoolHalfOpen, -1)
	}
}

// halfLen sums the half-open entries across stripes (tests,
// diagnostics; takes every stripe lock in turn).
func (s *Slowpath) halfLen() int {
	n := 0
	for _, st := range s.stripes {
		st.mu.Lock()
		n += len(st.half)
		st.mu.Unlock()
	}
	return n
}

// listenerCount sums registered listeners across stripes.
func (s *Slowpath) listenerCount() int {
	n := 0
	for _, st := range s.stripes {
		st.mu.Lock()
		n += len(st.listeners)
		st.mu.Unlock()
	}
	return n
}

// HalfOpenCount reports the current half-open handshake occupancy
// across all stripes (the tas_half_open gauge).
func (s *Slowpath) HalfOpenCount() int { return s.halfLen() }

// AcceptBacklog sums established-but-unaccepted connections across
// every listener (the tas_accept_backlog gauge).
func (s *Slowpath) AcceptBacklog() int {
	n := 0
	for _, st := range s.stripes {
		st.mu.Lock()
		for _, l := range st.listeners {
			n += int(l.pending.Load())
		}
		st.mu.Unlock()
	}
	return n
}

// lookupHalf fetches a half-open entry (tests only; the handlers work
// under the stripe lock directly).
func (s *Slowpath) lookupHalf(key protocol.FlowKey) *halfOpen {
	st := s.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.half[key]
}

// lookupListener fetches a listener (tests only).
func (s *Slowpath) lookupListener(port uint16) *listener {
	st := s.stripeFor(port)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.listeners[port]
}
