package slowpath

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/fastpath"
	"repro/internal/protocol"
)

// TestSynCookieHandshakeEndToEnd: with cookies always on, a real
// handshake completes statelessly — the SYN-ACK's ISN is the cookie, no
// half-open entry is stored, and the completing ACK reconstructs the
// connection, including the peer's MSS class as a segmentation cap.
func TestSynCookieHandshakeEndToEnd(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, Config{})
	b := newNode(t, fab, ipB, Config{SynCookies: SynCookiesAlways})
	if err := b.sp.Listen(80, 0, 42); err != nil {
		t.Fatal(err)
	}

	if _, err := a.sp.Connect(ipB, 80, 0, 7); err != nil {
		t.Fatal(err)
	}
	evA := waitEvent(t, a.ctx, 2*time.Second)
	if evA.Kind != fastpath.EvConnected || evA.Flow == nil {
		t.Fatalf("client event: %+v", evA)
	}
	evB := waitEvent(t, b.ctx, 2*time.Second)
	if evB.Kind != fastpath.EvAccepted || evB.Flow == nil {
		t.Fatalf("server event: %+v", evB)
	}
	if got := b.sp.SynCookiesSent.Load(); got == 0 {
		t.Fatal("no cookie SYN-ACK counted")
	}
	if got := b.sp.SynCookiesValidated.Load(); got != 1 {
		t.Fatalf("SynCookiesValidated = %d, want 1", got)
	}
	if b.sp.halfLen() != 0 {
		t.Fatal("stateless handshake left a half-open entry")
	}
	// The cookie encoded the client's MSS option; the reconstructed
	// flow must carry it as a segmentation cap.
	fb := evB.Flow
	if fb.MSSCap == 0 {
		t.Fatal("cookie-reconstructed flow has no MSS cap")
	}
	if fb.MSSCap > uint16(a.eng.Config().MSS) {
		t.Fatalf("MSSCap %d exceeds peer MSS %d", fb.MSSCap, a.eng.Config().MSS)
	}
	// Sequence numbers line up exactly as in a stateful handshake.
	fa := evA.Flow
	if fa.SeqNo != fb.AckNo || fb.SeqNo != fa.AckNo {
		t.Fatalf("seq mismatch: a(%d,%d) b(%d,%d)", fa.SeqNo, fa.AckNo, fb.SeqNo, fb.AckNo)
	}
	// Data flows over the reconstructed connection.
	fa.Lock()
	fa.TxBuf.Write([]byte("cookie payload"))
	fa.Unlock()
	a.eng.KickFlow(fa)
	deadline := time.Now().Add(2 * time.Second)
	for {
		fb.Lock()
		got := fb.RxBuf.Used()
		fb.Unlock()
		if got == len("cookie payload") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("payload not delivered (got %d bytes)", got)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSynFloodEngagesCookiesAndLegitClientConnects: a spoofed SYN flood
// saturates the listener's half-open budget; auto mode flips to
// stateless handshakes, and a legitimate client still connects while
// the flood continues.
func TestSynFloodEngagesCookiesAndLegitClientConnects(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, Config{})
	b := newNode(t, fab, ipB, Config{ListenBacklog: 32})
	if err := b.sp.Listen(80, 0, 42); err != nil {
		t.Fatal(err)
	}

	// Spoofed flood: unattached source IPs, so the SYN-ACKs vanish and
	// the half-open entries can only be reclaimed by timeout.
	flood := func(n, base int) {
		for i := 0; i < n; i++ {
			b.eng.Input(&protocol.Packet{
				SrcIP: protocol.MakeIPv4(10, 9, byte(i>>8), byte(i)), DstIP: ipB,
				SrcPort: uint16(1024 + base + i), DstPort: 80,
				Flags: protocol.FlagSYN, Seq: uint32(i), MSSOpt: 1448,
			})
		}
	}
	flood(512, 0)
	deadline := time.Now().Add(2 * time.Second)
	for b.sp.SynCookiesSent.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("flood never engaged cookies (half=%d drops=%d)",
				b.sp.halfLen(), b.sp.SynBacklogDrops.Load())
		}
		flood(64, 4096)
		time.Sleep(time.Millisecond)
	}

	// Legitimate client dials mid-flood: the stateless path admits it
	// even though the stateful backlog is saturated.
	if _, err := a.sp.Connect(ipB, 80, 0, 7); err != nil {
		t.Fatal(err)
	}
	evA := waitEvent(t, a.ctx, 2*time.Second)
	if evA.Kind != fastpath.EvConnected || evA.Flow == nil {
		t.Fatalf("client event during flood: %+v", evA)
	}
	// The client is connected the moment the SYN-ACK lands; the server
	// only validates the cookie when it processes the completing ACK, so
	// poll rather than assert instantaneously.
	deadline = time.Now().Add(2 * time.Second)
	for b.sp.SynCookiesValidated.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("legit handshake did not complete via cookie validation (sent=%d rejected=%d half=%d)",
				b.sp.SynCookiesSent.Load(), b.sp.SynCookiesRejected.Load(), b.sp.halfLen())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBlindRstRejectedInWindowChallenged covers RFC 5961 §3 on an
// established flow: an out-of-window RST is dropped silently, an
// in-window-but-inexact RST draws a challenge ACK and no teardown, and
// only the exact-sequence RST kills the connection.
func TestBlindRstRejectedInWindowChallenged(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, Config{})
	b := newNode(t, fab, ipB, Config{})
	f, _ := establish(t, a, b, ipB)

	var challenges atomic.Int64
	f.Lock()
	expect := f.AckNo
	localSeq := f.SeqNo
	f.Unlock()
	fab.Tap = func(ts int64, pkt *protocol.Packet) {
		if pkt.SrcIP == ipA && pkt.Flags == protocol.FlagACK && pkt.Seq == localSeq && pkt.Ack == expect {
			challenges.Add(1)
		}
	}
	defer func() { fab.Tap = nil }()

	rst := func(seq uint32) {
		a.eng.Input(&protocol.Packet{
			SrcIP: ipB, DstIP: ipA,
			SrcPort: f.PeerPort, DstPort: f.LocalPort,
			Flags: protocol.FlagRST, Seq: seq,
		})
	}

	// In-window but inexact: challenge ACK, connection survives.
	rst(expect + 1000)
	deadline := time.Now().Add(time.Second)
	for challenges.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-window RST drew no challenge ACK")
		}
		time.Sleep(time.Millisecond)
	}
	// Out-of-window: dropped silently.
	rst(expect - 100000)
	time.Sleep(20 * time.Millisecond)
	if a.eng.Table.Len() != 1 {
		t.Fatal("blind RST tore down the connection")
	}
	if got := a.sp.BlindRstDrops.Load(); got < 2 {
		t.Fatalf("BlindRstDrops = %d, want >= 2", got)
	}
	// Exact sequence: real teardown.
	rst(expect)
	deadline = time.Now().Add(time.Second)
	for a.eng.Table.Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("exact-sequence RST did not tear down")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBlindRstCannotKillHandshakes: RSTs against half-open state are
// validated too. A passive half-open only dies to the sequence our
// SYN-ACK acknowledged; an active open only to an RST|ACK of exactly
// our ISS+1.
func TestBlindRstCannotKillHandshakes(t *testing.T) {
	fab := fabric.New()
	ipB := protocol.MakeIPv4(10, 0, 0, 2)
	b := newNode(t, fab, ipB, fastCfg())
	b.sp.Listen(80, 0, 1)

	// Passive half-open from a ghost SYN.
	ghost := protocol.MakeIPv4(10, 0, 0, 99)
	b.eng.Input(&protocol.Packet{
		SrcIP: ghost, DstIP: ipB, SrcPort: 4000, DstPort: 80,
		Flags: protocol.FlagSYN, Seq: 5000,
	})
	key := protocol.FlowKey{LocalIP: ipB, LocalPort: 80, RemoteIP: ghost, RemotePort: 4000}
	deadline := time.Now().Add(time.Second)
	for b.sp.lookupHalf(key) == nil {
		if time.Now().After(deadline) {
			t.Fatal("half-open never created")
		}
		time.Sleep(time.Millisecond)
	}
	// Blind RST (wrong seq): entry survives.
	b.eng.Input(&protocol.Packet{
		SrcIP: ghost, DstIP: ipB, SrcPort: 4000, DstPort: 80,
		Flags: protocol.FlagRST, Seq: 9999,
	})
	time.Sleep(20 * time.Millisecond)
	if b.sp.lookupHalf(key) == nil {
		t.Fatal("blind RST reaped the passive half-open")
	}
	if b.sp.BlindRstDrops.Load() == 0 {
		t.Fatal("blind RST not counted")
	}
	// Exact RST (seq == peerISS+1): reaped.
	b.eng.Input(&protocol.Packet{
		SrcIP: ghost, DstIP: ipB, SrcPort: 4000, DstPort: 80,
		Flags: protocol.FlagRST, Seq: 5001,
	})
	deadline = time.Now().Add(time.Second)
	for b.sp.lookupHalf(key) != nil {
		if time.Now().After(deadline) {
			t.Fatal("exact RST did not reap the half-open")
		}
		time.Sleep(time.Millisecond)
	}

	// Active open toward an unattached peer: the half-open must survive
	// RSTs that don't ack our ISS.
	ipGhost := protocol.MakeIPv4(10, 0, 0, 77)
	lport, err := b.sp.Connect(ipGhost, 81, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	akey := protocol.FlowKey{LocalIP: ipB, LocalPort: lport, RemoteIP: ipGhost, RemotePort: 81}
	h := b.sp.lookupHalf(akey)
	if h == nil {
		t.Fatal("active half-open missing")
	}
	b.eng.Input(&protocol.Packet{
		SrcIP: ipGhost, DstIP: ipB, SrcPort: 81, DstPort: lport,
		Flags: protocol.FlagRST | protocol.FlagACK, Ack: h.iss + 12345,
	})
	b.eng.Input(&protocol.Packet{ // no ACK flag at all
		SrcIP: ipGhost, DstIP: ipB, SrcPort: 81, DstPort: lport,
		Flags: protocol.FlagRST, Seq: 1,
	})
	time.Sleep(20 * time.Millisecond)
	if b.sp.lookupHalf(akey) == nil {
		t.Fatal("blind RST killed the active open")
	}
	// The legitimate refusal form lands.
	b.eng.Input(&protocol.Packet{
		SrcIP: ipGhost, DstIP: ipB, SrcPort: 81, DstPort: lport,
		Flags: protocol.FlagRST | protocol.FlagACK, Ack: h.iss + 1,
	})
	ev := waitCtlEvent(t, b.ctx, 2*time.Second)
	if ev.Kind != fastpath.EvConnected || ev.Bytes != fastpath.ConnRefused {
		t.Fatalf("event = %+v, want ConnRefused", ev)
	}
}

// TestSpoofedSynCannotDisturbActiveOpen: a spoofed SYN matching an
// in-flight active open's 4-tuple must neither perturb the handshake
// nor touch any listener's backlog accounting (the dropHalf audit).
func TestSpoofedSynCannotDisturbActiveOpen(t *testing.T) {
	fab := fabric.New()
	ipB := protocol.MakeIPv4(10, 0, 0, 2)
	b := newNode(t, fab, ipB, fastCfg())

	ipGhost := protocol.MakeIPv4(10, 0, 0, 77)
	lport, err := b.sp.Connect(ipGhost, 81, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	key := protocol.FlowKey{LocalIP: ipB, LocalPort: lport, RemoteIP: ipGhost, RemotePort: 81}
	h := b.sp.lookupHalf(key)
	if h == nil || h.passive {
		t.Fatalf("active half-open missing or wrong kind: %+v", h)
	}
	issBefore := h.iss

	b.eng.Input(&protocol.Packet{
		SrcIP: ipGhost, DstIP: ipB, SrcPort: 81, DstPort: lport,
		Flags: protocol.FlagSYN, Seq: 31337,
	})
	time.Sleep(20 * time.Millisecond)
	h2 := b.sp.lookupHalf(key)
	if h2 == nil {
		t.Fatal("spoofed SYN destroyed the active open")
	}
	if h2.passive || h2.iss != issBefore {
		t.Fatalf("spoofed SYN rewrote the handshake: passive=%v iss=%d->%d", h2.passive, issBefore, h2.iss)
	}
}

// TestDropHalfNeverTouchesListenerFromActiveOpen is the white-box half
// of the audit: even if an active-open entry somehow carried a listener
// pointer, dropHalf must not decrement that listener's halfCount —
// only passive entries own backlog slots.
func TestDropHalfNeverTouchesListenerFromActiveOpen(t *testing.T) {
	l := &listener{port: 80, backlog: 8, halfCount: 3, pending: new(atomic.Int32)}
	st := &stripe{
		listeners: map[uint16]*listener{80: l},
		half:      make(map[protocol.FlowKey]*halfOpen),
	}
	key := protocol.FlowKey{LocalPort: 40000}
	h := &halfOpen{key: key, passive: false, lst: l} // corrupt: active with lst set
	st.half[key] = h
	st.dropHalf(key, h)
	if l.halfCount != 3 {
		t.Fatalf("active-open drop changed listener halfCount: %d", l.halfCount)
	}
	// A passive entry does release its slot.
	h2 := &halfOpen{key: key, passive: true, lst: l}
	st.half[key] = h2
	st.dropHalf(key, h2)
	if l.halfCount != 2 {
		t.Fatalf("passive drop did not release the slot: %d", l.halfCount)
	}
}

// TestEstablishedSynDrawsChallengeNotReset: RFC 5961 §4 — a SYN
// matching an established connection must not reset or duplicate it.
func TestEstablishedSynDrawsChallengeNotReset(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, Config{})
	b := newNode(t, fab, ipB, Config{})
	f, _ := establish(t, a, b, ipB)

	a.eng.Input(&protocol.Packet{
		SrcIP: ipB, DstIP: ipA,
		SrcPort: f.PeerPort, DstPort: f.LocalPort,
		Flags: protocol.FlagSYN, Seq: 12345,
	})
	time.Sleep(20 * time.Millisecond)
	if a.eng.Table.Len() != 1 {
		t.Fatal("spoofed SYN disturbed the established flow")
	}
	if a.sp.halfLen() != 0 {
		t.Fatal("spoofed SYN created a shadow half-open for a live connection")
	}
}

// TestStripedDialsConcurrent exercises the striped tables under the
// race detector: concurrent dials across many ports, against listeners
// spread across stripes, while a spoofed flood hammers one port.
func TestStripedDialsConcurrent(t *testing.T) {
	fab := fabric.New()
	ipA, ipB := protocol.MakeIPv4(10, 0, 0, 1), protocol.MakeIPv4(10, 0, 0, 2)
	a := newNode(t, fab, ipA, Config{})
	b := newNode(t, fab, ipB, Config{Stripes: 8})
	const listeners = 8
	for p := 0; p < listeners; p++ {
		if err := b.sp.Listen(uint16(7000+p), 0, uint64(p)); err != nil {
			t.Fatal(err)
		}
	}

	stopFlood := make(chan struct{})
	var floodWG sync.WaitGroup
	floodWG.Add(1)
	go func() {
		defer floodWG.Done()
		// Paced, not a busy loop: the point is lock contention on the
		// flooded stripe, and an unthrottled spin starves the dialing
		// goroutines outright when the whole repo's tests share the
		// machine under the race detector.
		i := 0
		for {
			select {
			case <-stopFlood:
				return
			default:
			}
			for n := 0; n < 64; n++ {
				b.eng.Input(&protocol.Packet{
					SrcIP: protocol.MakeIPv4(10, 9, byte(i>>8), byte(i)), DstIP: ipB,
					SrcPort: uint16(1024 + i%50000), DstPort: 7000,
					Flags: protocol.FlagSYN, Seq: uint32(i),
				})
				i++
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const dials = 24
	errs := make(chan error, dials)
	var wg sync.WaitGroup
	for i := 0; i < dials; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := a.sp.Connect(ipB, uint16(7000+1+i%(listeners-1)), 0, uint64(100+i)); err != nil {
				errs <- fmt.Errorf("dial %d: %w", i, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All dials complete (events delivered) despite the flood.
	got := 0
	deadline := time.Now().Add(20 * time.Second)
	var evs [64]fastpath.Event
	for got < dials && time.Now().Before(deadline) {
		n := a.ctx.PollEvents(evs[:])
		for i := 0; i < n; i++ {
			if evs[i].Kind == fastpath.EvConnected && evs[i].Flow != nil {
				got++
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(stopFlood)
	floodWG.Wait()
	if got != dials {
		t.Fatalf("connected %d/%d dials under flood", got, dials)
	}
}
