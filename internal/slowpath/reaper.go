package slowpath

import (
	"time"

	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// This file implements the application-failure half of TAS's isolation
// story (§3.3): the per-application stack is untrusted, so TAS itself
// must detect a crashed or wedged application and take back everything
// it held — otherwise one dead app leaks flows, ports, context slots,
// and payload buffers forever, starving the apps that are still alive.
//
// Liveness is epoch/heartbeat based: each libtas context runs a
// keepalive goroutine (the in-process stand-in for the paper's kernel
// notification when an application process exits) that stamps the
// fast-path context. The slow path sweeps those stamps and reaps any
// context that has gone silent for AppTimeout.

// HeartbeatInterval returns the cadence applications should beat at to
// stay comfortably inside AppTimeout (one quarter of it).
func (s *Slowpath) HeartbeatInterval() time.Duration {
	if s.cfg.AppTimeout <= 0 {
		return time.Second
	}
	iv := s.cfg.AppTimeout / 4
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	return iv
}

// stallGap is the event-loop gap beyond which wall-clock liveness
// comparisons are considered unsafe: well above normal tick jitter,
// well below AppTimeout.
func (s *Slowpath) stallGap() time.Duration {
	g := 4 * s.cfg.ControlInterval
	if s.cfg.AppTimeout > 0 && g < s.cfg.AppTimeout/4 {
		g = s.cfg.AppTimeout / 4
	}
	return g
}

// noteResume opens the reaper's grace window: the slow path just came
// back from a stall or a warm restart, during which applications may
// have been unable to make progress (an app blocked on a control-plane
// response beats from its keepalive, but a beat-on-activity low-level
// app goes quiet). Resume time counts as an implicit beat for every
// context, so only apps that stay silent for a further AppTimeout are
// reaped — the mass-reap false positive the grace window exists to
// prevent.
func (s *Slowpath) noteResume(now time.Time) {
	s.mu.Lock()
	s.reapResume = now
	s.mu.Unlock()
}

// reapSweep scans registered contexts for missed heartbeats and reaps
// dead ones. It self-rate-limits to a quarter of AppTimeout so the
// per-control-interval cost is negligible.
func (s *Slowpath) reapSweep() {
	if s.cfg.AppTimeout <= 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if now.Sub(s.lastReap) < s.cfg.AppTimeout/4 {
		s.mu.Unlock()
		return
	}
	s.lastReap = now
	resume := s.reapResume
	s.mu.Unlock()
	if !resume.IsZero() && now.Sub(resume) < s.cfg.AppTimeout {
		// Post-stall/restart grace: last-beat stamps predating the gap
		// prove nothing about liveness. Resume reaping only after every
		// live app has had a full AppTimeout to beat again.
		return
	}

	for _, ctx := range s.eng.Contexts() {
		if ctx == nil || ctx.Dead() {
			continue
		}
		lb := ctx.LastBeat()
		if lb == 0 {
			continue // liveness never enabled (raw low-level context)
		}
		if now.UnixNano()-lb > int64(s.cfg.AppTimeout) {
			s.ReapContext(ctx)
		}
	}
}

// ReapContext declares one application context dead and reclaims every
// resource it held: listen ports, half-open handshakes, established
// flows (best-effort RST to each peer, flow table entry, congestion
// state, rate-bucket slot, payload buffers), and finally the fast-path
// context slot itself. Safe to call at most once per context; later
// calls are no-ops because the context is already marked dead.
func (s *Slowpath) ReapContext(ctx *fastpath.Context) {
	if ctx.Dead() {
		return
	}
	ctx.MarkDead()
	id := uint16(ctx.ID)

	// Listen ports and half-open handshakes go first so no new flows
	// are installed for the dead app while we sweep the table.
	for _, st := range s.stripes {
		st.mu.Lock()
		for port, l := range st.listeners {
			if l.ctxID == id {
				delete(st.listeners, port)
				s.eng.Listeners.Remove(port)
				s.ListenersReaped.Add(1)
				// Nobody will ever Accept the queued connections of a dead
				// app's listener; return their accept-backlog charges now.
				if p := l.pending.Load(); p > 0 && st.gov != nil {
					st.gov.Charge(resource.PoolAccept, -int64(p))
				}
			}
		}
		for key, h := range st.half {
			if h.ctxID == id {
				st.dropHalf(key, h)
				s.HalfOpenReaped.Add(1)
			}
		}
		st.mu.Unlock()
	}

	// Established flows: abort toward the peer and free everything.
	var flows []*flowstate.Flow
	s.eng.Table.ForEach(func(f *flowstate.Flow) {
		if f.Context == id {
			flows = append(flows, f)
		}
	})
	for _, f := range flows {
		f.Lock()
		already := f.Aborted
		f.Aborted = true
		seq, ack := f.SeqNo, f.AckNo
		f.Unlock()
		if !already {
			s.sendCtlFlow(f, protocol.FlagRST|protocol.FlagACK, seq, ack)
			recordFlow(f, telemetry.FERstTx, seq, ack, 0, 0)
		}
		recordFlow(f, telemetry.FEReaped, seq, ack, 0, uint64(id))
		s.eng.Table.Remove(f.Key())
		s.reclaimFlowResources(f)
		s.mu.Lock()
		delete(s.cc, f)
		if _, ok := s.closing[f]; ok {
			delete(s.closing, f)
			s.chargeTimers(-1)
		}
		s.mu.Unlock()
		s.FlowsReaped.Add(1)
		s.retireRec(f)
	}

	s.AppsReaped.Add(1)

	// Release the context slot only after no live flow references the
	// id, so a reused slot cannot receive a dead flow's events.
	s.eng.UnregisterContext(ctx)
	// Unblock any application goroutine still parked on the context's
	// wakeup channel; it will observe the dead flag and fail fast.
	ctx.Wake()
}

// Counters is a consistent snapshot of the slow path's event counters.
type Counters struct {
	Established, Accepted, Rejected, Timeouts, Reinjected   uint64
	HandshakeRexmits, HandshakeTimeouts, FinRexmits, Aborts uint64
	AppsReaped, FlowsReaped, ListenersReaped                uint64
	HalfOpenReaped, SynBacklogDrops, AcceptQueueDrops       uint64
	SynCookiesSent, SynCookiesValidated                     uint64
	SynCookiesRejected, BlindRstDrops                       uint64
	FlowsReconstructed, RecoveryAborts, Panics              uint64
	CoreFailures, FlowsMigrated, CoreReadmits               uint64
	CoreDrainRequeued                                       uint64
	GovFlowDenied, GovIdleReclaimed                         uint64
	PersistProbes, KeepaliveProbesSent                      uint64
	PeerDeadZeroWindow, PeerDeadKeepalive                   uint64
	FinWait2Timeouts, TimeWaitReused                        uint64
	StrayRsts                                               uint64
}

// Counters returns a snapshot of the slow path's counters.
func (s *Slowpath) Counters() Counters {
	return Counters{
		Established: s.Established.Load(), Accepted: s.Accepted.Load(), Rejected: s.Rejected.Load(),
		Timeouts: s.Timeouts.Load(), Reinjected: s.Reinjected.Load(),
		HandshakeRexmits: s.HandshakeRexmits.Load(), HandshakeTimeouts: s.HandshakeTimeouts.Load(),
		FinRexmits: s.FinRexmits.Load(), Aborts: s.Aborts.Load(),
		AppsReaped: s.AppsReaped.Load(), FlowsReaped: s.FlowsReaped.Load(),
		ListenersReaped: s.ListenersReaped.Load(), HalfOpenReaped: s.HalfOpenReaped.Load(),
		SynBacklogDrops: s.SynBacklogDrops.Load(), AcceptQueueDrops: s.AcceptQueueDrops.Load(),
		SynCookiesSent: s.SynCookiesSent.Load(), SynCookiesValidated: s.SynCookiesValidated.Load(),
		SynCookiesRejected: s.SynCookiesRejected.Load(), BlindRstDrops: s.BlindRstDrops.Load(),
		FlowsReconstructed: s.FlowsReconstructed.Load(), RecoveryAborts: s.RecoveryAborts.Load(),
		Panics:       s.Panics.Load(),
		CoreFailures: s.CoreFailures.Load(), FlowsMigrated: s.FlowsMigrated.Load(),
		CoreReadmits: s.CoreReadmits.Load(), CoreDrainRequeued: s.CoreDrainRequeued.Load(),
		GovFlowDenied: s.GovFlowDenied.Load(), GovIdleReclaimed: s.GovIdleReclaimed.Load(),
		PersistProbes: s.PersistProbes.Load(), KeepaliveProbesSent: s.KeepaliveProbesSent.Load(),
		PeerDeadZeroWindow: s.PeerDeadZeroWindow.Load(), PeerDeadKeepalive: s.PeerDeadKeepalive.Load(),
		FinWait2Timeouts: s.FinWait2Timeouts.Load(), TimeWaitReused: s.TimeWaitReused.Load(),
		StrayRsts: s.StrayRsts.Load(),
	}
}

// AdoptCounters seeds this instance's counters from a predecessor's
// snapshot. In a real deployment the counters would live in shared
// memory and survive the crash with the flow state; here the restart
// path carries them over explicitly so exported metrics stay monotonic
// across warm restarts.
func (s *Slowpath) AdoptCounters(c Counters) {
	s.Established.Store(c.Established)
	s.Accepted.Store(c.Accepted)
	s.Rejected.Store(c.Rejected)
	s.Timeouts.Store(c.Timeouts)
	s.Reinjected.Store(c.Reinjected)
	s.HandshakeRexmits.Store(c.HandshakeRexmits)
	s.HandshakeTimeouts.Store(c.HandshakeTimeouts)
	s.FinRexmits.Store(c.FinRexmits)
	s.Aborts.Store(c.Aborts)
	s.AppsReaped.Store(c.AppsReaped)
	s.FlowsReaped.Store(c.FlowsReaped)
	s.ListenersReaped.Store(c.ListenersReaped)
	s.HalfOpenReaped.Store(c.HalfOpenReaped)
	s.SynBacklogDrops.Store(c.SynBacklogDrops)
	s.AcceptQueueDrops.Store(c.AcceptQueueDrops)
	s.SynCookiesSent.Store(c.SynCookiesSent)
	s.SynCookiesValidated.Store(c.SynCookiesValidated)
	s.SynCookiesRejected.Store(c.SynCookiesRejected)
	s.BlindRstDrops.Store(c.BlindRstDrops)
	s.FlowsReconstructed.Store(c.FlowsReconstructed)
	s.RecoveryAborts.Store(c.RecoveryAborts)
	s.Panics.Store(c.Panics)
	s.CoreFailures.Store(c.CoreFailures)
	s.FlowsMigrated.Store(c.FlowsMigrated)
	s.CoreReadmits.Store(c.CoreReadmits)
	s.CoreDrainRequeued.Store(c.CoreDrainRequeued)
	s.GovFlowDenied.Store(c.GovFlowDenied)
	s.GovIdleReclaimed.Store(c.GovIdleReclaimed)
	s.PersistProbes.Store(c.PersistProbes)
	s.KeepaliveProbesSent.Store(c.KeepaliveProbesSent)
	s.PeerDeadZeroWindow.Store(c.PeerDeadZeroWindow)
	s.PeerDeadKeepalive.Store(c.PeerDeadKeepalive)
	s.FinWait2Timeouts.Store(c.FinWait2Timeouts)
	s.TimeWaitReused.Store(c.TimeWaitReused)
	s.StrayRsts.Store(c.StrayRsts)
}
