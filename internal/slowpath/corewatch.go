package slowpath

import (
	"time"

	"repro/internal/flowstate"
	"repro/internal/telemetry"
)

// This file implements the slow-path half of the data-plane failure
// domain (the engine half is fastpath/corefault.go). The slow path
// already owns the repair tools: §3.4's core scaling eagerly rewrites
// the RSS redirection table, and per-flow spinlocks make packets that
// land on the wrong core safe. The core watchdog turns those tools on a
// failed core:
//
//   - Each control tick, coreSweep samples every core's beat counter
//     (one atomic load per core; the cores pay one atomic add per loop
//     iteration — no clock reads on the hot path).
//   - A counter that has not advanced for CoreTimeout is a dead or
//     wedged core: the sweep marks it failed (RSS exclusion mask +
//     table rewrite, so no scale event ever steers buckets back),
//     drains the packets stranded in its queues if the goroutine has
//     provably exited, and migrates its flows to the survivors —
//     per-flow state re-adopted under the flow spinlock, retransmission
//     timers re-armed, unacked data rewound go-back-N style, and TX
//     kicked so the new owner resumes immediately instead of waiting
//     out a full RTO.
//   - A failed core that beats again (ReviveCore relaunched it, or a
//     stall ended) is re-admitted after coreReadmitBeats observed
//     beats, via the normal scale-up path (ClearCoreFailed rewrites the
//     table to include it again).

// coreReadmitBeats is how many heartbeat advances a failed core must
// show before the watchdog folds it back into RSS steering — enough to
// prove the run loop is really iterating, small enough that recovery
// completes within a few blocked-core wakeup periods (~100ms each).
const coreReadmitBeats = 3

// coreWatch is the watchdog's per-core view.
type coreWatch struct {
	lastBeat   uint64    // counter value at the previous sweep
	lastChange time.Time // when the counter last advanced
	failed     bool      // this instance's verdict (mirrors engine flag)
	cleanBeats int       // advances observed since failure, toward re-admission
}

// initCoreWatch seeds the per-core watchdog state, adopting failure
// verdicts a previous slow-path instance left in the engine (warm
// restart): a core that was failed stays excluded until it earns
// re-admission from the new instance.
func (s *Slowpath) initCoreWatch() {
	s.coresW = make([]coreWatch, s.eng.MaxCores())
	for i := range s.coresW {
		s.coresW[i].failed = s.eng.CoreFailed(i)
	}
}

// coreSweep is the per-control-tick core-liveness check. Healthy-case
// cost is one atomic load and one comparison per core.
func (s *Slowpath) coreSweep(now time.Time) {
	if s.cfg.CoreTimeout <= 0 {
		return
	}
	for i := range s.coresW {
		w := &s.coresW[i]
		beat := s.eng.CoreBeat(i)
		advanced := beat != w.lastBeat
		if advanced {
			w.lastBeat = beat
			w.lastChange = now
		}
		if w.lastChange.IsZero() {
			// First observation of this core: start the staleness clock
			// now rather than at the zero time.
			w.lastChange = now
			continue
		}
		if !w.failed {
			// Even a fully idle core advances its counter every blocked-
			// wakeup period (≤100ms), so CoreTimeout of silence means the
			// goroutine is gone (killed, panicked) or wedged mid-iteration.
			if !advanced && now.Sub(w.lastChange) > s.cfg.CoreTimeout {
				// Never condemn the last eligible core: with everyone else
				// already failed there is nothing to re-steer to, so the
				// verdict would only blackhole traffic that the core — if
				// it is merely starved, not dead — could still serve. The
				// verdict lands later if another core earns re-admission
				// first.
				survivors := 0
				for j := range s.coresW {
					if j != i && !s.eng.CoreFailed(j) {
						survivors++
					}
				}
				if survivors == 0 {
					continue
				}
				w.failed = true
				w.cleanBeats = 0
				s.failCore(i)
			}
			continue
		}
		// Failed: watch for resurrection. cleanBeats counts observed
		// advances (not consecutive sweeps — a healthy blocked core beats
		// at ~10Hz, slower than a fine control interval samples).
		if advanced {
			w.cleanBeats++
			if w.cleanBeats >= coreReadmitBeats {
				w.failed = false
				w.cleanBeats = 0
				s.eng.ClearCoreFailed(i)
				s.CoreReadmits.Add(1)
			}
		}
	}
}

// failCore executes the failure verdict for core i: exclude it from
// steering, recover the work stranded in its queues, and migrate its
// flows to the surviving cores.
func (s *Slowpath) failCore(i int) {
	var t0 int64
	telem := s.cfg.Telemetry
	if telem != nil {
		t0 = telem.RefreshNow()
	}

	// Snapshot the victims before the rewrite: after MarkCoreFailed the
	// RSS table no longer names the dead core, so ownership must be read
	// first.
	var victims []*flowstate.Flow
	s.eng.Table.ForEach(func(f *flowstate.Flow) {
		if s.eng.CoreForFlow(f) == i {
			victims = append(victims, f)
		}
	})

	s.eng.MarkCoreFailed(i)
	requeued := s.eng.DrainFailedCore(i)

	migrated := 0
	for _, f := range victims {
		if s.migrateFlow(f, i) {
			migrated++
		}
	}

	s.CoreFailures.Add(1)
	s.FlowsMigrated.Add(uint64(migrated))
	s.CoreDrainRequeued.Add(uint64(requeued))

	if telem != nil {
		telem.Cycles.AddSlow(telemetry.ModMigrate, telem.RefreshNow()-t0, uint64(migrated))
	}
}

// migrateFlow re-adopts one flow onto its new owner after the old
// core's failure. Under the flow spinlock the unacked tail is rewound
// go-back-N style (the same reset the RTO path uses: segments the dead
// core may or may not have transmitted are treated as unsent), the cc
// entry's timeout state is re-armed at the rewound left edge, and TX is
// kicked so the surviving core — which the RSS rewrite now names —
// resumes the flow immediately instead of hanging until an RTO fires.
func (s *Slowpath) migrateFlow(f *flowstate.Flow, from int) bool {
	f.Lock()
	if f.Aborted {
		f.Unlock()
		return false
	}
	f.SeqNo -= f.TxSent // reset as if unsent (go-back-N rewind)
	f.TxSent = 0
	seq, ack := f.SeqNo, f.AckNo
	f.Unlock()

	s.mu.Lock()
	if e := s.cc[f]; e != nil {
		e.lastUna = seq
		e.stallTicks = 0
		e.consecTimeouts = 0
	}
	s.mu.Unlock()

	recordFlow(f, telemetry.FEMigrated, seq, ack, 0, uint64(from))
	s.eng.KickFlow(f)
	return true
}
