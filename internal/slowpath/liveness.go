package slowpath

import (
	"time"

	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// This file implements the slow path's peer-liveness machinery: the
// zero-window persist timer, TCP keepalives, and the TIME_WAIT 2MSL
// quarantine. All three run from the control tick — no free-running
// timer goroutines — so they stop with the event loop, are accounted
// to the governor, and survive a warm restart (Recover re-derives
// their state from the shared flow table and the engine-side
// quarantine).

// persistTick advances one flow's zero-window persist timer. The
// caller (controlLoop) has established that the peer advertises a zero
// window while we hold pending or in-flight data. Reports false when
// the probe budget is exhausted and the flow was aborted.
func (s *Slowpath) persistTick(f *flowstate.Flow, e *ccEntry) bool {
	now := time.Now()
	if e.persistDeadline.IsZero() {
		// Stall just detected: arm the timer; the first probe goes out
		// one PersistRTO from now (the window-closing ack often precedes
		// an imminent reopen — don't probe instantly).
		e.persistRTO = s.cfg.PersistRTO
		e.persistProbes = 0
		e.persistDeadline = now.Add(e.persistRTO)
		return true
	}
	if now.Before(e.persistDeadline) {
		return true
	}
	if e.persistProbes >= s.cfg.MaxPersistProbes {
		s.PeerDeadZeroWindow.Add(1)
		s.abortFlowCause(f, fastpath.AbortPeerDead)
		return false
	}
	e.persistProbes++
	e.persistRTO *= 2
	if ceil := 32 * s.cfg.PersistRTO; e.persistRTO > ceil {
		e.persistRTO = ceil
	}
	e.persistDeadline = now.Add(e.persistRTO)
	s.sendPersistProbe(f)
	return true
}

// sendPersistProbe emits a one-byte window probe: the unacknowledged
// byte at the head of the transmit buffer. A peer whose receiver is
// still full drops the byte and re-acks with window 0 (which the fast
// path deliberately does not count as a duplicate ack); a peer whose
// window has reopened acks with the new window, and that ack restarts
// transmission on the fast path.
func (s *Slowpath) sendPersistProbe(f *flowstate.Flow) {
	f.Lock()
	if f.Aborted || f.FinSent {
		f.Unlock()
		return
	}
	if f.TxSent == 0 {
		if f.TxPending() <= 0 {
			f.Unlock()
			return
		}
		// Commit the probe byte as in-flight so fast-path ack
		// processing treats it as ordinary outstanding data.
		f.SeqNo++
		f.TxSent = 1
	}
	seq := f.SeqNo - f.TxSent
	payload := make([]byte, 1)
	f.TxBuf.ReadAt(f.TxBuf.Tail(), payload)
	ack := f.AckNo
	window := uint16(f.RxBuf.Free() / fastpath.WindowUnit)
	f.Unlock()
	s.output(&protocol.Packet{
		SrcMAC: s.eng.Config().LocalMAC, DstMAC: f.PeerMAC,
		SrcIP: f.LocalIP, DstIP: f.PeerIP,
		SrcPort: f.LocalPort, DstPort: f.PeerPort,
		Flags: protocol.FlagACK | protocol.FlagPSH,
		Seq:   seq, Ack: ack, Window: window,
		HasTS: true, TSVal: s.eng.NowMicros(),
		ECN:     protocol.ECNECT0,
		Payload: payload,
	})
	s.PersistProbes.Add(1)
	recordFlow(f, telemetry.FEPersistProbe, seq, ack, 1, 0)
}

// keepaliveTick advances one flow's keepalive state. Probing is
// restricted to fully idle flows (nothing in flight, nothing pending):
// a flow with data moving proves liveness through acks, and a one-byte
// probe below an active send window would be deposited as garbage via
// the receiver's out-of-order path. Reports false when the probe
// budget is exhausted and the flow was aborted.
func (s *Slowpath) keepaliveTick(f *flowstate.Flow, e *ccEntry, nowN int64, finSent, aborted bool, outstanding uint32, pending int) bool {
	if s.cfg.KeepaliveTime <= 0 || finSent || aborted || outstanding != 0 || pending != 0 {
		e.kaNext, e.kaProbes = 0, 0
		return true
	}
	idle := nowN - f.LastTouched()
	if idle < s.cfg.KeepaliveTime.Nanoseconds() {
		// Any received segment Touches the flow — a live peer's probe
		// response lands here and resets the probe count.
		e.kaNext, e.kaProbes = 0, 0
		return true
	}
	if e.kaNext != 0 && nowN < e.kaNext {
		return true
	}
	if e.kaProbes >= s.cfg.KeepaliveProbes {
		s.PeerDeadKeepalive.Add(1)
		s.abortFlowCause(f, fastpath.AbortPeerDead)
		return false
	}
	e.kaProbes++
	e.kaNext = nowN + s.cfg.KeepaliveInterval.Nanoseconds()
	s.sendKeepalive(f)
	return true
}

// sendKeepalive emits a keepalive probe: one garbage byte at SeqNo-1,
// a sequence the peer has already acknowledged. The peer's receive
// path classifies it as a pure duplicate, discards the byte, and is
// guaranteed to answer with an ack — which Touches our flow and resets
// the idle clock. Sending our own probe does not Touch the flow, so an
// unanswered probe train converges on the dead-peer verdict.
func (s *Slowpath) sendKeepalive(f *flowstate.Flow) {
	f.Lock()
	seq := f.SeqNo - 1
	ack := f.AckNo
	window := uint16(f.RxBuf.Free() / fastpath.WindowUnit)
	f.Unlock()
	s.output(&protocol.Packet{
		SrcMAC: s.eng.Config().LocalMAC, DstMAC: f.PeerMAC,
		SrcIP: f.LocalIP, DstIP: f.PeerIP,
		SrcPort: f.LocalPort, DstPort: f.PeerPort,
		Flags: protocol.FlagACK,
		Seq:   seq, Ack: ack, Window: window,
		HasTS: true, TSVal: s.eng.NowMicros(),
		ECN:     protocol.ECNECT0,
		Payload: []byte{0},
	})
	s.KeepaliveProbesSent.Add(1)
	recordFlow(f, telemetry.FEKeepaliveProbe, seq, ack, 0, 0)
}

// enterTimeWait finishes an active close: the flow's final sequence
// state moves into the engine-side 2MSL quarantine (its own governed
// pool — a FIN storm holds tuples, not flow slots and buffers) and the
// flow itself is removed and fully reclaimed immediately.
func (s *Slowpath) enterTimeWait(f *flowstate.Flow) {
	f.Lock()
	finalSeq := f.SeqNo + 1 // SND.NXT: our FIN consumed one sequence number
	finalAck := f.AckNo     // RCV.NXT: already advanced past the peer's FIN
	f.Unlock()
	if g := s.cfg.Gov; g != nil {
		if err := g.Acquire(resource.PoolTimeWait, 1); err != nil {
			// Quarantine pool full: recycle the oldest entry rather than
			// refusing to quarantine the newest (Linux-style tw-bucket
			// recycling); the evicted entry's charge transfers.
			if !s.eng.TimeWait.EvictOldest() {
				g.Charge(resource.PoolTimeWait, 1)
			}
		}
	}
	s.eng.TimeWait.Insert(&flowstate.TimeWaitEntry{
		Key: f.Key(), FinalSeq: finalSeq, FinalAck: finalAck,
		Expiry: s.eng.NowNanos() + s.cfg.TimeWait.Nanoseconds(),
	})
	recordFlow(f, telemetry.FETimeWait, finalSeq, finalAck, 0, 0)
	s.removeFlow(f)
}

// timeWaitSweep expires quarantined tuples whose 2MSL clock has run
// out, returning their pool charges.
func (s *Slowpath) timeWaitSweep() {
	if n := s.eng.TimeWait.Expire(s.eng.NowNanos()); n > 0 {
		if g := s.cfg.Gov; g != nil {
			g.Release(resource.PoolTimeWait, int64(n))
		}
	}
}

// FinWait2Count returns the number of flows currently in FIN_WAIT_2
// (our FIN acknowledged, peer's direction still open).
func (s *Slowpath) FinWait2Count() int64 { return s.fw2Count.Load() }

// TimeWaitCount returns the number of tuples in the 2MSL quarantine.
func (s *Slowpath) TimeWaitCount() int { return s.eng.TimeWait.Len() }
