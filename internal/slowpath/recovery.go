package slowpath

import (
	"time"

	"repro/internal/fastpath"
	"repro/internal/flowstate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/telemetry"
)

// This file implements slow-path warm restart. The design leans on the
// same property that lets the fast path survive a slow-path crash
// (§3.1): everything a connection needs in the common case — the flow
// table's Table-3 records with sequence state, the shmring payload
// buffers with their positions, the rate buckets, the listener registry
// — lives on the engine side of the boundary. The slow path's private
// maps (cc entries, half-opens, FIN timers) are pure derived or
// in-progress state: derived state is rebuilt from shared memory, and
// in-progress state that cannot be proven from shared memory is
// abandoned (half-open handshakes) or aborted (inconsistent flows).

// RecoveryStats reports what a warm restart rebuilt.
type RecoveryStats struct {
	FlowsReconstructed int // established flows with rebuilt cc/RTO state
	FlowsAborted       int // flows whose state could not be proven; RST + removed
	ClosingResumed     int // FIN-in-flight teardowns whose timers were re-armed
	ListenersRebuilt   int // listening ports readopted from the shared registry
}

// Recover reconstructs this instance's control state from the engine's
// shared memory. Call it on a fresh (not yet started) Slowpath created
// over the engine a previous instance crashed on, then Start it:
//
//	dead.Kill()
//	ns := slowpath.New(eng, cfg)
//	rep := ns.Recover()
//	ns.Start()
//
// Reconstruction rules:
//
//   - Listening ports are readopted from the engine's listener table,
//     including the live accept-depth gauge the application side holds.
//   - Every flow in the flow table whose context is alive and whose
//     buffers are intact gets a fresh congestion controller (seeded
//     into its existing rate bucket) and a cc entry whose lastUna is
//     computed from the recorded SeqNo/TxSent — so RTO detection
//     re-arms exactly where the crashed instance left off.
//   - A flow mid-teardown (FIN sent, not yet acknowledged) gets its
//     FIN-retransmission timer re-armed.
//   - A flow that cannot be proven consistent — context gone or dead,
//     buffers reclaimed, or already aborted — is aborted: best-effort
//     RST, state reclaimed, counted in RecoveryAborts.
//   - Half-open handshakes died with the old instance; peers re-drive
//     passive opens by retransmitting their SYN, and active opens
//     surface a timeout to the caller.
//
// Reaping resumes only after a grace window (noteResume): last-beat
// stamps from before the outage prove nothing about app liveness.
func (s *Slowpath) Recover() RecoveryStats {
	var rep RecoveryStats
	now := time.Now()

	// Reconcile the governor pools whose entries died with the crashed
	// instance: half-open handshakes are simply gone (peers re-drive
	// them), FIN timers are re-armed below as flows are readopted, and
	// the accept backlog is recomputed from the surviving listener
	// gauges. Flow, payload, and context charges track engine-side state
	// that outlived the crash, so they carry over untouched.
	if g := s.cfg.Gov; g != nil {
		g.Reset(resource.PoolHalfOpen, 0)
		g.Reset(resource.PoolTimers, 0)
		var accept int64
		s.eng.Listeners.ForEach(func(e *flowstate.ListenerEntry) {
			accept += int64(e.Pending.Load())
		})
		g.Reset(resource.PoolAccept, accept)
		// The TIME_WAIT quarantine lives on the engine side and survived
		// the crash intact; recompute its charge from the table itself.
		g.Reset(resource.PoolTimeWait, int64(s.eng.TimeWait.Len()))
	}

	// Listening ports from the shared registry, re-striped by port.
	// SYN-cookie pressure windows restart cold, but the cookie jar
	// itself lives in the engine: cookies the crashed instance issued
	// still validate here, under the same key epochs.
	s.eng.Listeners.ForEach(func(e *flowstate.ListenerEntry) {
		st := s.stripeFor(e.Port)
		st.mu.Lock()
		st.listeners[e.Port] = &listener{
			port: e.Port, ctxID: e.CtxID, opaque: e.Opaque,
			backlog: e.Backlog, pending: e.Pending,
		}
		st.mu.Unlock()
		rep.ListenersRebuilt++
	})

	// Established flows from the flow table.
	var doomed, finished []*flowstate.Flow
	s.eng.Table.ForEach(func(f *flowstate.Flow) {
		f.Lock()
		aborted := f.Aborted
		ctxID := f.Context
		buffersGone := f.RxBuf == nil || f.TxBuf == nil ||
			f.RxBuf.Reclaimed() || f.TxBuf.Reclaimed()
		seq, txSent := f.SeqNo, f.TxSent
		ack := f.AckNo
		finPending := f.FinSent && !f.FinAcked
		finWait2 := f.FinSent && f.FinAcked && !f.FinReceived
		finDone := f.FinSent && f.FinAcked && f.FinReceived
		f.Unlock()

		ctx := s.eng.ContextByID(ctxID)
		if aborted || buffersGone || ctx == nil || ctx.Dead() {
			doomed = append(doomed, f)
			return
		}
		if finDone {
			// The crash fell between the last FIN exchange and the old
			// instance's removal step: finish the close below (TIME_WAIT
			// or straight removal) instead of reconstructing cc state for
			// a connection that is over.
			finished = append(finished, f)
			return
		}

		// Rebuild congestion/timeout state. The rate bucket survived in
		// the engine and kept enforcing the crashed instance's last
		// rate; the fresh controller restarts from its initial rate and
		// converges from there.
		ctrl := s.cfg.NewController()
		if b := s.eng.Bucket(f.Bucket); b != nil {
			b.SetRate(ctrl.Rate())
		}
		entry := &ccEntry{ctrl: ctrl, lastUna: seq - txSent, lastRate: ctrl.Rate()}
		s.mu.Lock()
		s.cc[f] = entry
		if finPending {
			rto := s.finRTO()
			s.closing[f] = &closeEntry{finSeq: seq, rto: rto, deadline: now.Add(rto)}
			rep.ClosingResumed++
		}
		if finWait2 {
			// Mid-FIN_WAIT_2 at the crash: re-arm a fresh full timeout —
			// the old deadline died with the old instance, and a fresh
			// bound errs toward the peer finishing its close.
			s.closing[f] = &closeEntry{finSeq: seq, fw2: true, deadline: now.Add(s.cfg.FinWait2Timeout)}
			s.fw2Count.Add(1)
			rep.ClosingResumed++
		}
		s.mu.Unlock()
		if finPending || finWait2 {
			s.chargeTimers(1)
		}
		s.FlowsReconstructed.Add(1)
		recordFlow(f, telemetry.FEReconstructed, seq, ack, 0, uint64(txSent))
		rep.FlowsReconstructed++
	})

	// Flows whose state cannot be proven: abort rather than resume
	// control decisions over garbage.
	for _, f := range doomed {
		s.recoveryAbort(f)
		rep.FlowsAborted++
	}
	// Closes the crash interrupted between FIN completion and removal.
	for _, f := range finished {
		f.Lock()
		peerFirst := f.PeerClosedFirst
		f.Unlock()
		if peerFirst {
			s.removeFlow(f)
		} else {
			s.enterTimeWait(f)
		}
	}

	// Core-failure verdicts survive in the engine (failed flags + RSS
	// exclusion mask); New() already adopted them into this instance's
	// watchdog, but the staleness clocks must restart at resume time —
	// the outage gap proves nothing about core liveness either way.
	for i := range s.coresW {
		s.coresW[i].lastChange = now
		s.coresW[i].lastBeat = s.eng.CoreBeat(i)
	}

	// Grace before reaping (see reaper.go): during the outage nobody
	// observed heartbeats, so stale stamps are not evidence of death.
	s.noteResume(now)
	s.mu.Lock()
	s.lastReap = now
	s.mu.Unlock()
	return rep
}

// recoveryAbort tears down a flow whose state a warm restart could not
// prove consistent: best-effort RST to the peer, EvAborted toward the
// owning context if one still exists, and full resource reclamation.
func (s *Slowpath) recoveryAbort(f *flowstate.Flow) {
	f.Lock()
	already := f.Aborted
	f.Aborted = true
	seq, ack := f.SeqNo, f.AckNo
	ctxID, opaque := f.Context, f.Opaque
	buffersOK := f.RxBuf != nil && !f.RxBuf.Reclaimed()
	f.Unlock()
	if !already && buffersOK {
		s.sendCtlFlow(f, protocol.FlagRST|protocol.FlagACK, seq, ack)
		recordFlow(f, telemetry.FERstTx, seq, ack, 0, 0)
	}
	recordFlow(f, telemetry.FEAborted, seq, ack, 0, 0)
	s.eng.Table.Remove(f.Key())
	s.reclaimFlowResources(f)
	s.mu.Lock()
	delete(s.cc, f)
	delete(s.closing, f)
	s.mu.Unlock()
	s.RecoveryAborts.Add(1)
	s.retireRec(f)
	if ctx := s.eng.ContextByID(ctxID); ctx != nil && !ctx.Dead() {
		ctx.PostEvent(0, fastpath.Event{Kind: fastpath.EvAborted, Opaque: opaque})
	}
}
