package conformance

import (
	"testing"
	"time"

	"repro/internal/libtas"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/slowpath"
)

// establish runs a scripted passive open and returns the accepted
// connection plus the peer.
func establish(t *testing.T, h *Harness, stackPort, peerPort uint16) (*libtas.Conn, *Peer) {
	t.Helper()
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(stackPort)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(peerPort, stackPort)
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}
	return conn, p
}

// expectFin waits for the stack's FIN and returns its sequence number.
func expectFin(t *testing.T, h *Harness, p *Peer) uint32 {
	t.Helper()
	fin := h.Expect(expectIn, "FIN", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagFIN)
	})
	return fin.Seq
}

// gracefulActiveClose drives the stack through a complete active
// close — FIN out, peer acks it, peer FINs, final ACK asserted — and
// returns (finalSeq, finalAck): the TIME_WAIT entry's announced state.
func gracefulActiveClose(t *testing.T, h *Harness, conn *libtas.Conn, p *Peer) (uint32, uint32) {
	t.Helper()
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	finSeq := expectFin(t, h, p)
	p.RcvNxt = finSeq + 1
	p.SendAck() // ack the FIN: stack enters FIN_WAIT_2
	p.Send(protocol.FlagFIN|protocol.FlagACK, p.SndNxt, p.RcvNxt, nil)
	h.Expect(expectIn, "final ACK of peer FIN", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK && q.Ack == p.SndNxt+1
	})
	h.WaitCond(expectIn, "TIME_WAIT entered", func() bool {
		return h.Slow.TimeWaitCount() == 1 && h.Eng.Table.Len() == 0
	})
	return finSeq + 1, p.SndNxt + 1
}

// TestFinRetransmitBudgetExhaustion: an unacknowledged FIN is
// retransmitted with backoff until the budget runs out, then the flow
// is aborted with an RST so neither side hangs half-closed forever.
func TestFinRetransmitBudgetExhaustion(t *testing.T) {
	h := newHarness(t, slowpath.Config{MaxRetransmits: 2})
	conn, p := establish(t, h, 7020, 40020)

	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	finSeq := expectFin(t, h, p)
	for i := 0; i < 2; i++ { // peer stays silent: same-sequence retransmissions
		h.Expect(expectIn, "FIN retransmission", func(q *protocol.Packet) bool {
			return p.ToPeer(q) && q.Flags.Has(protocol.FlagFIN) && q.Seq == finSeq
		})
	}
	h.Expect(expectIn, "RST after FIN budget", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagRST)
	})
	c := h.Slow.Counters()
	if c.FinRexmits < 2 || c.Aborts == 0 {
		t.Fatalf("counters: finRexmits=%d aborts=%d", c.FinRexmits, c.Aborts)
	}
	h.WaitCond(expectIn, "pools drained", func() bool {
		return h.Eng.Table.Len() == 0 &&
			h.Gov.Used(resource.PoolFlows) == 0 &&
			h.Gov.Used(resource.PoolTimers) == 0
	})
}

// TestSimultaneousClose: both ends FIN before seeing the other's. Each
// FIN acks only data (not the other FIN); the stack must ack the
// peer's FIN, accept the late ACK of its own, and — having closed
// first from its own point of view — pay the TIME_WAIT quarantine.
func TestSimultaneousClose(t *testing.T) {
	h := newHarness(t, slowpath.Config{})
	conn, p := establish(t, h, 7021, 40021)

	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	finSeq := expectFin(t, h, p)
	// Crossing FIN: acks data only (finSeq, not finSeq+1).
	p.Send(protocol.FlagFIN|protocol.FlagACK, p.SndNxt, finSeq, nil)
	h.Expect(expectIn, "ACK of crossing FIN", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK && q.Ack == p.SndNxt+1
	})
	// Late ACK of the stack's FIN completes the simultaneous close.
	p.Send(protocol.FlagACK, p.SndNxt+1, finSeq+1, nil)
	h.WaitCond(expectIn, "simultaneous close reaches TIME_WAIT", func() bool {
		return h.Slow.TimeWaitCount() == 1 && h.Eng.Table.Len() == 0
	})
	if got := h.Gov.Used(resource.PoolTimeWait); got != 1 {
		t.Fatalf("time_wait pool charge = %d, want 1", got)
	}
	if h.Gov.Used(resource.PoolFlows) != 0 || h.Gov.Used(resource.PoolPayload) != 0 {
		t.Fatal("flow resources not reclaimed at TIME_WAIT entry")
	}
}

// TestTimeWaitReAcksOldDuplicates: a quarantined tuple answers both a
// retransmitted FIN (our final ACK was lost) and a stray data-path
// segment with a re-announcement of the final state, and stays
// quarantined (RFC 793 TIME-WAIT processing).
func TestTimeWaitReAcksOldDuplicates(t *testing.T) {
	h := newHarness(t, slowpath.Config{TimeWait: 5 * time.Second})
	conn, p := establish(t, h, 7022, 40022)
	finalSeq, finalAck := gracefulActiveClose(t, h, conn, p)
	h.Drain()

	// Old duplicate FIN.
	p.Send(protocol.FlagFIN|protocol.FlagACK, p.SndNxt, p.RcvNxt, nil)
	h.Expect(expectIn, "TIME_WAIT re-ACK of duplicate FIN", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK &&
			q.Seq == finalSeq && q.Ack == finalAck
	})
	// Stray plain segment for the quarantined tuple.
	p.Send(protocol.FlagACK, p.SndNxt+1, p.RcvNxt, nil)
	h.Expect(expectIn, "TIME_WAIT re-ACK of stray segment", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK &&
			q.Seq == finalSeq && q.Ack == finalAck
	})
	if h.Slow.TimeWaitCount() != 1 {
		t.Fatal("old duplicates must not evict the quarantine entry")
	}
}

// TestTimeWaitRstDoesNotAssassinate: RFC 1337 — an RST against a
// TIME_WAIT tuple must not cut the quarantine short.
func TestTimeWaitRstDoesNotAssassinate(t *testing.T) {
	h := newHarness(t, slowpath.Config{TimeWait: 5 * time.Second})
	conn, p := establish(t, h, 7023, 40023)
	gracefulActiveClose(t, h, conn, p)

	p.Send(protocol.FlagRST, p.SndNxt+1, 0, nil)
	time.Sleep(50 * time.Millisecond) // give the slow path ticks to (wrongly) act
	if h.Slow.TimeWaitCount() != 1 {
		t.Fatal("RST assassinated the TIME_WAIT entry")
	}
}

// TestTimeWaitSynReuse: a SYN whose ISN is above the quarantined
// incarnation's final receive state reuses the tuple early (RFC 6191);
// one at or below it is an old duplicate and draws only the re-ACK.
func TestTimeWaitSynReuse(t *testing.T) {
	h := newHarness(t, slowpath.Config{TimeWait: 5 * time.Second})
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(7024)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(40024, 7024)
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}
	finalSeq, finalAck := gracefulActiveClose(t, h, conn, p)
	h.Drain()

	// Old SYN: ISN below the final receive state → re-ACK, no SYN-ACK.
	p.Inject(&protocol.Packet{
		Flags: protocol.FlagSYN, Seq: p.SndNxt - 10, Window: p.Win,
		MSSOpt: uint16(protocol.DefaultMSS), ECN: protocol.ECNECT0,
	})
	h.Expect(expectIn, "re-ACK of old SYN", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK &&
			q.Seq == finalSeq && q.Ack == finalAck
	})
	if h.Slow.TimeWaitCount() != 1 {
		t.Fatal("old SYN must not recycle the quarantine")
	}

	// Fresh incarnation: ISN well above the final receive state.
	newISN := p.SndNxt + 100000
	p.Inject(&protocol.Packet{
		Flags: protocol.FlagSYN, Seq: newISN, Window: p.Win,
		MSSOpt: uint16(protocol.DefaultMSS),
		HasTS:  true, TSVal: 2000, ECN: protocol.ECNECT0,
	})
	synack := h.Expect(expectIn, "SYN-ACK for reused tuple", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagSYN|protocol.FlagACK) && q.Ack == newISN+1
	})
	if c := h.Slow.Counters(); c.TimeWaitReused != 1 {
		t.Fatalf("TimeWaitReused = %d, want 1", c.TimeWaitReused)
	}
	if h.Slow.TimeWaitCount() != 0 {
		t.Fatal("quarantine entry must be recycled on reuse")
	}
	// Complete the new incarnation and prove it carries data.
	p.ISN, p.StackISN = newISN, synack.Seq
	p.SndNxt, p.RcvNxt = newISN+1, synack.Seq+1
	p.SendAck()
	conn2, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}
	p.SendData([]byte("again"))
	buf := make([]byte, 8)
	n, err := conn2.Recv(buf, expectIn)
	if err != nil || string(buf[:n]) != "again" {
		t.Fatalf("Recv on reused tuple = %q, %v", buf[:n], err)
	}
}

// TestFinWait2Timeout: the peer acks our FIN but never closes its own
// direction; the flow must be reclaimed quietly (no RST — the peer may
// be alive, just uninterested) after FinWait2Timeout.
func TestFinWait2Timeout(t *testing.T) {
	h := newHarness(t, slowpath.Config{FinWait2Timeout: 80 * time.Millisecond})
	conn, p := establish(t, h, 7025, 40025)

	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	finSeq := expectFin(t, h, p)
	p.RcvNxt = finSeq + 1
	p.SendAck()
	h.WaitCond(expectIn, "FIN_WAIT_2 entered", func() bool {
		return h.Slow.FinWait2Count() == 1
	})
	h.Drain()

	h.WaitCond(expectIn, "FIN_WAIT_2 flow reclaimed", func() bool {
		return h.Eng.Table.Len() == 0
	})
	c := h.Slow.Counters()
	if c.FinWait2Timeouts != 1 {
		t.Fatalf("FinWait2Timeouts = %d, want 1", c.FinWait2Timeouts)
	}
	if h.Slow.FinWait2Count() != 0 {
		t.Fatal("FIN_WAIT_2 gauge must return to zero")
	}
	if h.Slow.TimeWaitCount() != 0 {
		t.Fatal("a timed-out FIN_WAIT_2 must not enter TIME_WAIT")
	}
	h.ExpectNone(100*time.Millisecond, "RST on quiet FIN_WAIT_2 reclaim", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagRST)
	})
	if h.Gov.Used(resource.PoolFlows) != 0 || h.Gov.Used(resource.PoolTimers) != 0 {
		t.Fatal("FIN_WAIT_2 reclaim leaked pool charges")
	}
}

// TestTimeWaitExpiry: the 2MSL clock releases the quarantine entry and
// its pool charge without any external stimulus.
func TestTimeWaitExpiry(t *testing.T) {
	h := newHarness(t, slowpath.Config{TimeWait: 60 * time.Millisecond})
	conn, p := establish(t, h, 7026, 40026)
	gracefulActiveClose(t, h, conn, p)
	if h.Gov.Used(resource.PoolTimeWait) != 1 {
		t.Fatalf("time_wait charge = %d, want 1", h.Gov.Used(resource.PoolTimeWait))
	}
	h.WaitCond(expectIn, "quarantine expires", func() bool {
		return h.Slow.TimeWaitCount() == 0 && h.Gov.Used(resource.PoolTimeWait) == 0
	})
}
