// Package conformance is a packetdrill-style TCP conformance harness
// for the TAS stack: each test drives a real engine + slow path +
// libtas instance through a deterministic segment script. The stack
// under test transmits into a capture queue instead of a fabric, and a
// scripted Peer injects hand-built segments directly into the engine —
// so every byte of every header the stack emits is assertable, and
// every input (old duplicates, blind RSTs, zero windows, silence) is
// producible on demand.
//
// The harness is intentionally strict where packetdrill is strict
// (sequence numbers, flags, payload lengths are matched exactly via
// predicates) and lenient where wall-clock scheduling forces it to be
// (expectations carry deadlines rather than exact timestamps; timer
// configs in the scripts are chosen so orderings cannot invert).
package conformance

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fastpath"
	"repro/internal/libtas"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/slowpath"
)

// captureNIC records every frame the stack under test transmits. The
// queue is far larger than any script's traffic; overflow is counted
// and fails the test at teardown rather than blocking a fast-path core.
type captureNIC struct {
	ch      chan *protocol.Packet
	dropped atomic.Uint64
}

func (n *captureNIC) Output(pkt *protocol.Packet) {
	select {
	case n.ch <- pkt.Clone():
	default:
		n.dropped.Add(1)
	}
}

// Harness is one stack under test plus the capture queue its transmit
// side feeds.
type Harness struct {
	T     *testing.T
	IP    protocol.IPv4
	Eng   *fastpath.Engine
	Slow  *slowpath.Slowpath
	Stack *libtas.Stack
	Gov   *resource.Governor

	nic *captureNIC
}

// newHarness builds and starts a single-core stack under test. Zero
// fields of scfg keep slowpath defaults, except the control interval
// and payload buffers, which get conformance-friendly values.
func newHarness(t *testing.T, scfg slowpath.Config) *Harness {
	t.Helper()
	ip := protocol.MakeIPv4(10, 99, 0, 1)
	nic := &captureNIC{ch: make(chan *protocol.Packet, 8192)}
	eng := fastpath.NewEngine(nic, fastpath.Config{
		LocalIP: ip, LocalMAC: protocol.MACForIPv4(ip), MaxCores: 1,
	})
	gov := resource.New(resource.Limits{})
	eng.SetGovernor(gov)
	if scfg.ControlInterval == 0 {
		scfg.ControlInterval = 2 * time.Millisecond
	}
	if scfg.RxBufSize == 0 {
		scfg.RxBufSize = 64 << 10
	}
	if scfg.TxBufSize == 0 {
		scfg.TxBufSize = 64 << 10
	}
	scfg.Gov = gov
	slow := slowpath.New(eng, scfg)
	eng.Start()
	slow.Start()
	stack := libtas.NewStack(eng, slow)
	h := &Harness{T: t, IP: ip, Eng: eng, Slow: slow, Stack: stack, Gov: gov, nic: nic}
	t.Cleanup(func() {
		slow.Stop()
		eng.Stop()
		if d := nic.dropped.Load(); d != 0 {
			t.Errorf("capture queue overflowed: %d frames lost", d)
		}
	})
	return h
}

// Expect consumes captured frames until one satisfies match, failing
// the test if none does before the deadline. Non-matching frames are
// skipped (the stack is free to interleave pure ACKs and probes) but
// reported on failure so a wrong expectation is diagnosable.
func (h *Harness) Expect(d time.Duration, desc string, match func(*protocol.Packet) bool) *protocol.Packet {
	h.T.Helper()
	deadline := time.After(d)
	var skipped []string
	for {
		select {
		case pkt := <-h.nic.ch:
			if match(pkt) {
				return pkt
			}
			skipped = append(skipped, pkt.String())
		case <-deadline:
			h.T.Fatalf("timed out waiting for %s; skipped %d segments:\n%s",
				desc, len(skipped), strings.Join(skipped, "\n"))
			return nil
		}
	}
}

// ExpectNone watches the capture queue for the full duration and fails
// if any frame satisfies match. Non-matching frames are discarded.
func (h *Harness) ExpectNone(d time.Duration, desc string, match func(*protocol.Packet) bool) {
	h.T.Helper()
	deadline := time.After(d)
	for {
		select {
		case pkt := <-h.nic.ch:
			if match(pkt) {
				h.T.Fatalf("unexpected %s: %v", desc, pkt)
			}
		case <-deadline:
			return
		}
	}
}

// Drain discards everything currently in the capture queue.
func (h *Harness) Drain() {
	for {
		select {
		case <-h.nic.ch:
		default:
			return
		}
	}
}

// WaitCond polls cond at the control-tick cadence until it holds or
// the deadline passes.
func (h *Harness) WaitCond(d time.Duration, desc string, cond func() bool) {
	h.T.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	h.T.Fatalf("condition %q not reached within %v", desc, d)
}

// Peer is a scripted remote endpoint: it builds raw segments toward
// the stack under test and tracks absolute sequence state the way a
// packetdrill script's implicit remote does.
type Peer struct {
	h         *Harness
	IP        protocol.IPv4
	Port      uint16 // the peer's port
	StackPort uint16 // the stack-side port (listener, or learned from its SYN)

	ISN      uint32 // the peer's initial sequence number
	StackISN uint32 // the stack's ISN, learned from its SYN or SYN-ACK
	SndNxt   uint32 // next absolute sequence the peer will send
	RcvNxt   uint32 // next absolute sequence expected from the stack
	Win      uint16 // receive window the peer advertises (units of 1 KiB)
}

// NewPeer creates a scripted endpoint talking to stackPort on the
// harness stack from peerPort.
func (h *Harness) NewPeer(peerPort, stackPort uint16) *Peer {
	return &Peer{
		h: h, IP: protocol.MakeIPv4(10, 99, 0, 2),
		Port: peerPort, StackPort: stackPort,
		ISN: 1_000_000, Win: 64,
	}
}

// Inject fills in the peer's addressing and hands the segment to the
// stack's receive path.
func (p *Peer) Inject(pkt *protocol.Packet) {
	pkt.SrcMAC = protocol.MACForIPv4(p.IP)
	pkt.DstMAC = protocol.MACForIPv4(p.h.IP)
	pkt.SrcIP, pkt.DstIP = p.IP, p.h.IP
	pkt.SrcPort, pkt.DstPort = p.Port, p.StackPort
	p.h.Eng.Input(pkt)
}

// Send injects one segment with explicit absolute sequence numbers.
func (p *Peer) Send(flags protocol.TCPFlags, seq, ack uint32, payload []byte) {
	p.Inject(&protocol.Packet{
		Flags: flags, Seq: seq, Ack: ack, Window: p.Win,
		HasTS: true, TSVal: 1000, ECN: protocol.ECNECT0,
		Payload: payload,
	})
}

// SendAck injects a pure ACK of everything received so far, carrying
// the peer's current advertised window.
func (p *Peer) SendAck() { p.Send(protocol.FlagACK, p.SndNxt, p.RcvNxt, nil) }

// ToPeer matches frames addressed to this peer's tuple.
func (p *Peer) ToPeer(pkt *protocol.Packet) bool {
	return pkt.DstIP == p.IP && pkt.DstPort == p.Port && pkt.SrcPort == p.StackPort
}

// Handshake performs a scripted active open against a stack listener:
// SYN out, SYN-ACK asserted and learned, completing ACK in.
func (p *Peer) Handshake(d time.Duration) {
	p.h.T.Helper()
	p.Inject(&protocol.Packet{
		Flags: protocol.FlagSYN, Seq: p.ISN, Window: p.Win,
		MSSOpt: uint16(protocol.DefaultMSS),
		HasTS:  true, TSVal: 1000, ECN: protocol.ECNECT0,
	})
	synack := p.h.Expect(d, "SYN-ACK", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagSYN|protocol.FlagACK) && q.Ack == p.ISN+1
	})
	if synack.MSSOpt == 0 {
		p.h.T.Errorf("SYN-ACK missing MSS option: %v", synack)
	}
	if !synack.HasTS {
		p.h.T.Errorf("SYN-ACK missing timestamp option: %v", synack)
	}
	p.StackISN = synack.Seq
	p.RcvNxt = synack.Seq + 1
	p.SndNxt = p.ISN + 1
	p.SendAck()
}

// AcceptHandshake performs a scripted passive open: the stack's Dial
// sends a SYN, which the peer answers; the final ACK is asserted.
func (p *Peer) AcceptHandshake(d time.Duration) {
	p.h.T.Helper()
	syn := p.h.Expect(d, "SYN", func(q *protocol.Packet) bool {
		return q.DstIP == p.IP && q.DstPort == p.Port &&
			q.Flags.Has(protocol.FlagSYN) && !q.Flags.Has(protocol.FlagACK)
	})
	p.StackPort = syn.SrcPort
	p.StackISN = syn.Seq
	p.RcvNxt = syn.Seq + 1
	p.Send(protocol.FlagSYN|protocol.FlagACK, p.ISN, p.RcvNxt, nil)
	p.h.Expect(d, "handshake ACK", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK && q.Ack == p.ISN+1
	})
	p.SndNxt = p.ISN + 1
}

// SendData injects in-order payload from the peer and advances SndNxt.
func (p *Peer) SendData(payload []byte) {
	p.Send(protocol.FlagACK|protocol.FlagPSH, p.SndNxt, p.RcvNxt, payload)
	p.SndNxt += uint32(len(payload))
}

// ExpectData collects exactly n contiguous payload bytes from the
// stack starting at RcvNxt, acking as segments arrive (duplicates are
// tolerated, gaps are reassembled). Returns the bytes.
func (p *Peer) ExpectData(n int, d time.Duration) []byte {
	p.h.T.Helper()
	buf := make([]byte, n)
	got := make([]bool, n)
	base := p.RcvNxt
	have := 0
	deadline := time.Now().Add(d)
	for have < n {
		remain := time.Until(deadline)
		if remain <= 0 {
			p.h.T.Fatalf("expected %d payload bytes, got %d before deadline", n, have)
		}
		pkt := p.h.Expect(remain, fmt.Sprintf("payload (have %d/%d)", have, n),
			func(q *protocol.Packet) bool { return p.ToPeer(q) && q.DataLen() > 0 })
		off := int(int32(pkt.Seq - base))
		for i, b := range pkt.Payload {
			at := off + i
			if at < 0 || at >= n {
				continue // retransmission below base, or probe overlap past n
			}
			if !got[at] {
				got[at] = true
				buf[at] = b
				have++
			}
		}
		// Advance the cumulative ack over the contiguous prefix.
		adv := 0
		for adv < n && got[adv] {
			adv++
		}
		p.RcvNxt = base + uint32(adv)
		p.SendAck()
	}
	return buf
}
