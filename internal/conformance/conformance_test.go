package conformance

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/libtas"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/slowpath"
)

// expectIn is the default deadline for a single expected segment: far
// above any timer in the scripts, far below the test timeout.
const expectIn = 3 * time.Second

// TestHandshakeAndDataExchange: the baseline script. Passive open with
// exact sequence assertions on the SYN-ACK, then one payload each way
// with cumulative-ack checks.
func TestHandshakeAndDataExchange(t *testing.T) {
	h := newHarness(t, slowpath.Config{})
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(7001)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(40001, 7001)
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}

	p.SendData([]byte("hello"))
	h.Expect(expectIn, "cumulative ACK of payload", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagACK) && q.Ack == p.SndNxt && q.DataLen() == 0
	})
	buf := make([]byte, 16)
	n, err := conn.Recv(buf, expectIn)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("Recv = %q, %v", buf[:n], err)
	}

	if _, err := conn.Send([]byte("world"), expectIn); err != nil {
		t.Fatal(err)
	}
	if got := p.ExpectData(5, expectIn); string(got) != "world" {
		t.Fatalf("peer received %q", got)
	}
}

// TestActiveOpenHandshake: the stack dials out; the scripted peer
// answers the SYN and asserts the completing ACK, then data flows.
func TestActiveOpenHandshake(t *testing.T) {
	h := newHarness(t, slowpath.Config{})
	ctx := h.Stack.NewContext()
	p := h.NewPeer(40002, 0) // stack port learned from its SYN

	type dialResult struct {
		conn *libtas.Conn
		err  error
	}
	done := make(chan dialResult, 1)
	go func() {
		conn, err := ctx.Dial(p.IP, p.Port, 5*time.Second)
		done <- dialResult{conn, err}
	}()
	p.AcceptHandshake(expectIn)
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}

	if _, err := r.conn.Send([]byte("ping"), expectIn); err != nil {
		t.Fatal(err)
	}
	if got := p.ExpectData(4, expectIn); string(got) != "ping" {
		t.Fatalf("peer received %q", got)
	}
	p.SendData([]byte("pong"))
	buf := make([]byte, 8)
	n, err := r.conn.Recv(buf, expectIn)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("Recv = %q, %v", buf[:n], err)
	}
}

// TestSynOnEstablishedDrawsChallengeAck: RFC 5961 §4 — a SYN landing
// on an established connection must not disturb it; the stack answers
// with a challenge ACK announcing its exact state.
func TestSynOnEstablishedDrawsChallengeAck(t *testing.T) {
	h := newHarness(t, slowpath.Config{})
	ctx := h.Stack.NewContext()
	ln, _ := ctx.Listen(7002)
	p := h.NewPeer(40003, 7002)
	p.Handshake(expectIn)
	if _, err := ln.Accept(expectIn); err != nil {
		t.Fatal(err)
	}
	h.Drain()

	p.Inject(&protocol.Packet{
		Flags: protocol.FlagSYN, Seq: p.SndNxt + 50, Window: p.Win,
		MSSOpt: uint16(protocol.DefaultMSS), ECN: protocol.ECNECT0,
	})
	h.Expect(expectIn, "challenge ACK", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK &&
			q.Seq == p.RcvNxt && q.Ack == p.SndNxt && q.DataLen() == 0
	})
	if h.Eng.Table.Len() != 1 {
		t.Fatalf("connection did not survive in-window SYN: %d flows", h.Eng.Table.Len())
	}
}

// TestBlindRstDrawsChallengeAck: RFC 5961 §3 — an RST inside the
// window but not at RCV.NXT must not tear down; it draws a challenge
// ACK and counts as a blind-RST drop.
func TestBlindRstDrawsChallengeAck(t *testing.T) {
	h := newHarness(t, slowpath.Config{})
	ctx := h.Stack.NewContext()
	ln, _ := ctx.Listen(7003)
	p := h.NewPeer(40004, 7003)
	p.Handshake(expectIn)
	if _, err := ln.Accept(expectIn); err != nil {
		t.Fatal(err)
	}
	h.Drain()

	p.Send(protocol.FlagRST, p.SndNxt+100, 0, nil)
	h.Expect(expectIn, "challenge ACK", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags == protocol.FlagACK &&
			q.Seq == p.RcvNxt && q.Ack == p.SndNxt
	})
	if h.Eng.Table.Len() != 1 {
		t.Fatal("connection did not survive blind RST")
	}
	if c := h.Slow.Counters(); c.BlindRstDrops == 0 {
		t.Fatal("blind RST not counted")
	}
}

// TestExactRstTearsDown: an RST at exactly RCV.NXT is the legitimate
// teardown form — the flow dies, the app sees a reset error, and every
// pool charge drains.
func TestExactRstTearsDown(t *testing.T) {
	h := newHarness(t, slowpath.Config{})
	ctx := h.Stack.NewContext()
	ln, _ := ctx.Listen(7004)
	p := h.NewPeer(40005, 7004)
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}

	p.Send(protocol.FlagRST, p.SndNxt, 0, nil)
	_, rerr := conn.Recv(make([]byte, 8), expectIn)
	if !errors.Is(rerr, libtas.ErrReset) {
		t.Fatalf("Recv after exact RST = %v, want reset", rerr)
	}
	if errors.Is(rerr, libtas.ErrPeerDead) {
		t.Fatal("peer RST must not classify as peer-dead (liveness verdict)")
	}
	h.WaitCond(expectIn, "flow removed and pools drained", func() bool {
		return h.Eng.Table.Len() == 0 &&
			h.Gov.Used(resource.PoolFlows) == 0 &&
			h.Gov.Used(resource.PoolPayload) == 0
	})
}

// TestSynCookieHandshake: with cookies forced on, the SYN-ACK's ISN is
// a keyed MAC and the slow path holds no half-open state; the
// completing ACK alone reconstructs the connection and data flows.
func TestSynCookieHandshake(t *testing.T) {
	h := newHarness(t, slowpath.Config{SynCookies: slowpath.SynCookiesAlways})
	ctx := h.Stack.NewContext()
	ln, _ := ctx.Listen(7005)
	p := h.NewPeer(40006, 7005)
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}
	c := h.Slow.Counters()
	if c.SynCookiesSent == 0 || c.SynCookiesValidated == 0 {
		t.Fatalf("cookie path not exercised: sent=%d validated=%d",
			c.SynCookiesSent, c.SynCookiesValidated)
	}

	payload := bytes.Repeat([]byte{0xAB}, 2048)
	p.SendData(payload)
	buf := make([]byte, 4096)
	n, err := conn.Recv(buf, expectIn)
	if err != nil || !bytes.Equal(buf[:n], payload[:n]) {
		t.Fatalf("Recv over cookie-built flow: n=%d err=%v", n, err)
	}
}
