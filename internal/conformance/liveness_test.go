package conformance

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/libtas"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/slowpath"
)

// TestPersistProbeThenWindowReopen: the peer advertises a zero window
// from the very first ACK, the app queues data, and the stack must
// probe rather than blast or give up. When the window reopens the
// whole payload arrives intact — the stall was survival, not loss.
func TestPersistProbeThenWindowReopen(t *testing.T) {
	h := newHarness(t, slowpath.Config{
		PersistRTO:       20 * time.Millisecond,
		MaxPersistProbes: 10,
	})
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(7030)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(40030, 7030)
	p.Win = 0 // zero window from the completing ACK onward
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}

	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := conn.Send(payload, expectIn); err != nil {
		t.Fatal(err)
	}

	// The stall must produce a 1-byte window probe at SND.UNA carrying
	// real data, not a bare zero-length poke.
	probe := h.Expect(expectIn, "zero-window probe", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.DataLen() == 1 && q.Seq == p.RcvNxt &&
			q.Payload[0] == payload[0]
	})
	if c := h.Slow.Counters(); c.PersistProbes == 0 {
		t.Fatal("persist probe not counted")
	}

	// Reopen: accept the probe byte and advertise space again.
	p.Win = 64
	p.RcvNxt = probe.Seq + 1
	p.SendAck()

	if got := p.ExpectData(len(payload)-1, expectIn); !bytes.Equal(got, payload[1:]) {
		t.Fatal("payload corrupted across zero-window stall")
	}
	c := h.Slow.Counters()
	if c.Aborts != 0 || c.PeerDeadZeroWindow != 0 {
		t.Fatalf("reopened flow must not abort: aborts=%d peerDead=%d",
			c.Aborts, c.PeerDeadZeroWindow)
	}
	if h.Eng.Table.Len() != 1 {
		t.Fatal("flow did not survive the stall")
	}
}

// TestPersistBudgetExhaustion: a peer that advertises zero window and
// never reopens is indistinguishable from a dead one; after
// MaxPersistProbes unanswered probes the stack must abort with a
// peer-dead verdict and return every resource.
func TestPersistBudgetExhaustion(t *testing.T) {
	h := newHarness(t, slowpath.Config{
		PersistRTO:       10 * time.Millisecond,
		MaxPersistProbes: 3,
	})
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(7031)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(40031, 7031)
	p.Win = 0
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Send(make([]byte, 1024), expectIn); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ { // every probe retransmits the same byte
		h.Expect(expectIn, "zero-window probe", func(q *protocol.Packet) bool {
			return p.ToPeer(q) && q.DataLen() == 1 && q.Seq == p.RcvNxt
		})
	}
	h.Expect(expectIn, "RST after probe budget", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagRST)
	})
	_, rerr := conn.Recv(make([]byte, 8), expectIn)
	if !errors.Is(rerr, libtas.ErrPeerDead) {
		t.Fatalf("Recv after probe exhaustion = %v, want peer-dead", rerr)
	}
	if c := h.Slow.Counters(); c.PeerDeadZeroWindow != 1 {
		t.Fatalf("PeerDeadZeroWindow = %d, want 1", c.PeerDeadZeroWindow)
	}
	h.WaitCond(expectIn, "wedged flow fully reclaimed", func() bool {
		return h.Eng.Table.Len() == 0 &&
			h.Gov.Used(resource.PoolFlows) == 0 &&
			h.Gov.Used(resource.PoolPayload) == 0
	})
}

// TestKeepaliveAnsweredKeepsFlowAlive: an idle but responsive peer is
// probed below RCV.NXT (the classic garbage-byte keepalive) and each
// answer resets the liveness verdict — the flow never aborts.
func TestKeepaliveAnsweredKeepsFlowAlive(t *testing.T) {
	h := newHarness(t, slowpath.Config{
		KeepaliveTime:     60 * time.Millisecond,
		KeepaliveInterval: 20 * time.Millisecond,
		KeepaliveProbes:   2,
	})
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(7032)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(40032, 7032)
	p.Handshake(expectIn)
	if _, err := ln.Accept(expectIn); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		h.Expect(expectIn, "keepalive probe", func(q *protocol.Packet) bool {
			return p.ToPeer(q) && q.DataLen() == 1 && q.Seq == p.RcvNxt-1 &&
				q.Flags == protocol.FlagACK
		})
		p.SendAck() // duplicate ACK: the answer that proves liveness
	}
	c := h.Slow.Counters()
	if c.KeepaliveProbesSent < 2 {
		t.Fatalf("KeepaliveProbesSent = %d, want >= 2", c.KeepaliveProbesSent)
	}
	if c.Aborts != 0 || c.PeerDeadKeepalive != 0 {
		t.Fatalf("answered keepalives must not abort: aborts=%d peerDead=%d",
			c.Aborts, c.PeerDeadKeepalive)
	}
	if h.Eng.Table.Len() != 1 {
		t.Fatal("idle-but-alive flow was torn down")
	}
}

// TestKeepaliveDeadPeerReclaimed: a silently dead peer is detected by
// the keepalive ladder itself — not by the app-liveness reaper and not
// by the governor's idle-reclaim — and the flow plus every pool charge
// is returned.
func TestKeepaliveDeadPeerReclaimed(t *testing.T) {
	h := newHarness(t, slowpath.Config{
		KeepaliveTime:     40 * time.Millisecond,
		KeepaliveInterval: 15 * time.Millisecond,
		KeepaliveProbes:   2,
	})
	ctx := h.Stack.NewContext()
	ln, err := ctx.Listen(7033)
	if err != nil {
		t.Fatal(err)
	}
	p := h.NewPeer(40033, 7033)
	p.Handshake(expectIn)
	conn, err := ln.Accept(expectIn)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ { // peer never answers
		h.Expect(expectIn, "keepalive probe", func(q *protocol.Packet) bool {
			return p.ToPeer(q) && q.DataLen() == 1 && q.Seq == p.RcvNxt-1
		})
	}
	h.Expect(expectIn, "RST after keepalive budget", func(q *protocol.Packet) bool {
		return p.ToPeer(q) && q.Flags.Has(protocol.FlagRST)
	})
	_, rerr := conn.Recv(make([]byte, 8), expectIn)
	if !errors.Is(rerr, libtas.ErrPeerDead) {
		t.Fatalf("Recv after keepalive exhaustion = %v, want peer-dead", rerr)
	}
	c := h.Slow.Counters()
	if c.PeerDeadKeepalive != 1 {
		t.Fatalf("PeerDeadKeepalive = %d, want 1", c.PeerDeadKeepalive)
	}
	if c.AppsReaped != 0 || c.GovIdleReclaimed != 0 {
		t.Fatalf("detection must come from keepalives, not reaper/idle-reclaim: reaped=%d idle=%d",
			c.AppsReaped, c.GovIdleReclaimed)
	}
	h.WaitCond(expectIn, "dead-peer flow fully reclaimed", func() bool {
		return h.Eng.Table.Len() == 0 &&
			h.Gov.Used(resource.PoolFlows) == 0 &&
			h.Gov.Used(resource.PoolPayload) == 0
	})
}
