package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time must run FIFO: %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := New(1)
	var times []Time
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v", times)
	}
}

func TestEngineSchedulePastClamps(t *testing.T) {
	e := New(1)
	fired := Time(-1)
	e.At(100, func() {
		e.At(50, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != 100 {
		t.Fatalf("past event fired at %d, want clamped to 100", fired)
	}
}

func TestEngineNegativeAfterClamps(t *testing.T) {
	e := New(1)
	ran := false
	e.After(-5, func() { ran = true })
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay should run at now")
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.At(10, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report pending")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report not pending")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestEngineStop(t *testing.T) {
	e := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events, want 3", count)
	}
	// Run resumes.
	e.Run()
	if count != 10 {
		t.Fatalf("after resume ran %d events, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5,10", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("clock = %d, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired = %v", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100 (advance past last event)", e.Now())
	}
}

func TestRunUntilHonorsNewEvents(t *testing.T) {
	e := New(1)
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		e.After(10, reschedule)
	}
	e.After(10, reschedule)
	e.RunUntil(100)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestEvery(t *testing.T) {
	e := New(1)
	var ticks []Time
	var tm *Timer
	tm = e.Every(10, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 5 {
			tm.Stop()
		}
	})
	e.RunUntil(1000)
	if len(ticks) != 5 {
		t.Fatalf("ticks = %v", ticks)
	}
	for i, tk := range ticks {
		if tk != Time((i+1)*10) {
			t.Fatalf("tick %d at %d, want %d", i, tk, (i+1)*10)
		}
	}
}

func TestEveryInvalidPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Every(0, func() {})
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(e.Now())*1000+e.Rand().Int63n(1000))
			if len(out) < 100 {
				e.After(Time(1+e.Rand().Int63n(50)), step)
			}
		}
		e.After(1, step)
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestClockNeverGoesBackward(t *testing.T) {
	f := func(delays []uint16) bool {
		e := New(7)
		prev := Time(0)
		ok := true
		for _, d := range delays {
			d := Time(d)
			e.After(d, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
