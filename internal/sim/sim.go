// Package sim is the discrete-event simulation engine underlying the TAS
// reproduction's benchmark mode. It provides a deterministic event loop
// with a nanosecond-resolution virtual clock. Network elements, simulated
// CPU cores, and workload generators all schedule callbacks on a single
// Engine; events at equal timestamps fire in scheduling order, so a run
// with a fixed seed is fully reproducible.
package sim

import (
	"container/heap"
	"math/rand"
)

// Time is a simulated timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations, in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among equal timestamps
	fn  func()
	// index in the heap, for cancellation.
	index int
	dead  bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	e *event
}

// Stop cancels the timer. It is a no-op if the event already fired or was
// already stopped. It reports whether the event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.e == nil || t.e.dead {
		return false
	}
	t.e.dead = true
	return true
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	rng     *rand.Rand
}

// New returns an Engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute time t. Scheduling in the past (or
// present) runs the event at the current time, after already-pending
// events with the same timestamp.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{e: ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of scheduled (non-cancelled) events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.dead {
			n++
		}
	}
	return n
}

// step executes the next event. It reports whether an event ran.
func (e *Engine) step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (even if the queue drained earlier). Events scheduled during the
// run are honored if they fall within the horizon.
func (e *Engine) RunUntil(t Time) {
	e.stopped = false
	for !e.stopped {
		// Peek.
		var next *event
		for len(e.events) > 0 {
			if e.events[0].dead {
				heap.Pop(&e.events)
				continue
			}
			next = e.events[0]
			break
		}
		if next == nil || next.at > t {
			break
		}
		e.step()
	}
	if e.now < t {
		e.now = t
	}
}

// Every schedules fn to run now+d, then every d thereafter, until the
// returned Timer is stopped. fn observes the tick time via Engine.Now.
func (e *Engine) Every(d Time, fn func()) *Timer {
	if d <= 0 {
		panic("sim: Every requires positive period")
	}
	t := &Timer{}
	var tick func()
	tick = func() {
		fn()
		if !t.e.dead {
			t.e = e.After(d, tick).e
		}
	}
	t.e = e.After(d, tick).e
	return t
}
