// Package resource is the unified resource governor: one place that
// accounts for every finite pool in the stack (payload-buffer bytes,
// flow-table and half-open slots, context slots, timer entries, accept
// backlog), enforces per-app quotas on top of global capacities, and
// drives a hysteresis-based degradation ladder so the stack sheds load
// in a defined order instead of failing at whichever ad-hoc check trips
// first.
//
// The ladder has four rungs, engaged in order as pressure rises and
// released in reverse order as it falls (each transition crosses a
// watermark pair, so the level cannot flap on a noisy gauge):
//
//	1 cookies   — force stateless SYN cookies (no half-open state)
//	2 shed-syn  — drop new SYNs outright (established flows unharmed)
//	3 clamp-tx  — shrink per-flow TX buffer grants (slows senders)
//	4 reclaim   — reclaim idle flows LRU-first with RST (frees pools)
//
// The governor itself is passive bookkeeping plus a level machine; the
// slow path calls Evaluate on its control tick and applies the rungs,
// the fast path and libtas consult the level for shedding and grant
// clamps, and telemetry scrapes the occupancy gauges.
package resource

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool identifies one finite resource pool under governor accounting.
type Pool int

// The governed pools. PoolPayload is in bytes; all others are slots.
const (
	PoolPayload  Pool = iota // payload-buffer bytes (RX+TX rings)
	PoolFlows                // established flow-table entries
	PoolHalfOpen             // half-open handshake slots
	PoolContexts             // registered app context slots
	PoolTimers               // pending timer entries (closing/retransmit sweeps)
	PoolAccept               // accept-backlog occupancy across listeners
	PoolTimeWait             // TIME_WAIT 2MSL quarantine entries
	NumPools
)

var poolNames = [NumPools]string{
	"payload_bytes", "flows", "half_open", "contexts", "timers", "accept",
	"time_wait",
}

// String returns the pool's metric-label name.
func (p Pool) String() string {
	if p < 0 || p >= NumPools {
		return fmt.Sprintf("pool%d", int(p))
	}
	return poolNames[p]
}

// Degradation-ladder levels (rungs). LevelNormal is no degradation.
const (
	LevelNormal  = 0
	LevelCookies = 1 // force SYN cookies
	LevelShedSyn = 2 // shed new SYNs
	LevelClampTx = 3 // shrink per-flow TX grants
	LevelReclaim = 4 // reclaim idle flows LRU-first
	NumLevels    = 5
	maxLevel     = LevelReclaim
)

var levelNames = [NumLevels]string{"normal", "cookies", "shed_syn", "clamp_tx", "reclaim"}

// LevelName returns the rung's human/metric name.
func LevelName(l int) string {
	if l < 0 || l >= NumLevels {
		return fmt.Sprintf("level%d", l)
	}
	return levelNames[l]
}

// ErrExhausted is the sentinel for every governor admission denial —
// global pool exhaustion or per-app quota. Callers errors.Is against it
// to map overload (as opposed to faults) onto typed backpressure.
var ErrExhausted = errors.New("resource: pool exhausted")

// quotaErr wraps ErrExhausted with the denied pool and scope.
type quotaErr struct {
	pool   Pool
	perApp bool
}

func (e *quotaErr) Error() string {
	scope := "global"
	if e.perApp {
		scope = "per-app quota"
	}
	return fmt.Sprintf("resource: %s pool exhausted (%s)", e.pool, scope)
}

func (e *quotaErr) Unwrap() error { return ErrExhausted }

// Limits configures pool capacities, per-app quotas, and the watermark
// pair. Zero capacity means the pool is accounted but uncapped (it
// contributes no pressure). Validate rejects inconsistent settings.
type Limits struct {
	// Global pool capacities (0 = uncapped).
	PayloadBytes int64
	Flows        int64
	HalfOpen     int64
	Contexts     int64
	Timers       int64
	Accept       int64
	TimeWait     int64

	// Per-app quotas (0 = none). A quota must not exceed the
	// corresponding global capacity when both are set.
	AppFlows        int64
	AppPayloadBytes int64

	// Watermark pair for the degradation ladder, in percent of the
	// hottest pool's capacity: rung 1 engages at EngagePct and releases
	// below ReleasePct; higher rungs spread evenly from EngagePct to
	// 100, each keeping the same hysteresis gap. ReleasePct must be
	// strictly below EngagePct. Zero means defaults (70/55).
	EngagePct  int
	ReleasePct int
}

const (
	defaultEngagePct  = 70
	defaultReleasePct = 55
)

// fill applies watermark defaults in place.
func (l *Limits) fill() {
	if l.EngagePct == 0 && l.ReleasePct == 0 {
		l.EngagePct, l.ReleasePct = defaultEngagePct, defaultReleasePct
	}
}

// Validate rejects inconsistent limits: per-app quotas above the global
// pool, watermarks outside (0,100], and inverted hysteresis (release
// at or above engage). A nil return means New will not surprise.
func (l Limits) Validate() error {
	l.fill()
	if l.EngagePct <= 0 || l.EngagePct > 100 {
		return fmt.Errorf("resource: engage watermark %d%% outside (0,100]", l.EngagePct)
	}
	if l.ReleasePct <= 0 || l.ReleasePct > 100 {
		return fmt.Errorf("resource: release watermark %d%% outside (0,100]", l.ReleasePct)
	}
	if l.ReleasePct >= l.EngagePct {
		return fmt.Errorf("resource: inverted hysteresis: release watermark %d%% must be below engage %d%%",
			l.ReleasePct, l.EngagePct)
	}
	for _, c := range []struct {
		name       string
		quota, cap int64
	}{
		{"flows", l.AppFlows, l.Flows},
		{"payload bytes", l.AppPayloadBytes, l.PayloadBytes},
	} {
		if c.quota < 0 || c.cap < 0 {
			return fmt.Errorf("resource: negative %s limit", c.name)
		}
		if c.quota > 0 && c.cap > 0 && c.quota > c.cap {
			return fmt.Errorf("resource: per-app %s quota %d exceeds global pool %d", c.name, c.quota, c.cap)
		}
	}
	for p, cap := range l.caps() {
		if cap < 0 {
			return fmt.Errorf("resource: negative %s capacity", Pool(p))
		}
	}
	return nil
}

// caps returns the capacities indexed by Pool.
func (l Limits) caps() [NumPools]int64 {
	return [NumPools]int64{
		PoolPayload:  l.PayloadBytes,
		PoolFlows:    l.Flows,
		PoolHalfOpen: l.HalfOpen,
		PoolContexts: l.Contexts,
		PoolTimers:   l.Timers,
		PoolAccept:   l.Accept,
		PoolTimeWait: l.TimeWait,
	}
}

// appUsage tracks one application context's quota consumption.
type appUsage struct {
	flows   atomic.Int64
	payload atomic.Int64
}

// Governor is the unified accountant and ladder state machine. All
// methods are safe for concurrent use; the hot-path cost of an
// Acquire/Release is one atomic add (plus a bounds check when capped).
type Governor struct {
	limits Limits
	caps   [NumPools]int64

	occ  [NumPools]atomic.Int64
	peak [NumPools]atomic.Int64

	mu   sync.Mutex // guards apps map mutation
	apps map[uint32]*appUsage

	level     atomic.Int32
	peakLevel atomic.Int32

	// engaged[k] counts transitions onto rung k; shed[k] counts the
	// actions rung k took (cookies forced, SYNs shed, grants clamped,
	// flows reclaimed). Index 0 is unused.
	engaged [NumLevels]atomic.Uint64
	shed    [NumLevels]atomic.Uint64

	rejects [NumPools]atomic.Uint64 // global-pool admission denials
	quota   atomic.Uint64           // per-app quota denials

	// txGrant is the clamped per-flow TX grant in bytes while rung 3+
	// is engaged (0 = unclamped). Read by libtas on every Send.
	txGrant atomic.Int64

	// onTransition, when set, is invoked (outside locks) for every rung
	// transition — the slow path uses it to emit flight events.
	onTransition func(from, to int)
}

// New builds a governor from validated limits; invalid limits panic
// (callers validate first — the facade surfaces the error).
func New(l Limits) *Governor {
	l.fill()
	if err := l.Validate(); err != nil {
		panic(err)
	}
	return &Governor{limits: l, caps: l.caps(), apps: make(map[uint32]*appUsage)}
}

// OnTransition installs the rung-transition hook (call before use).
func (g *Governor) OnTransition(fn func(from, to int)) { g.onTransition = fn }

// Limits returns the configured limits.
func (g *Governor) Limits() Limits { return g.limits }

// Cap returns the pool's configured capacity (0 = uncapped).
func (g *Governor) Cap(p Pool) int64 { return g.caps[p] }

// Used returns the pool's current occupancy.
func (g *Governor) Used(p Pool) int64 { return g.occ[p].Load() }

// Peak returns the pool's high-water mark.
func (g *Governor) Peak(p Pool) int64 { return g.peak[p].Load() }

// Acquire reserves n units from pool p, failing (without reserving)
// if a capacity is configured and would be exceeded. It returns a
// *quotaErr wrapping ErrExhausted on denial.
func (g *Governor) Acquire(p Pool, n int64) error {
	if n < 0 {
		panic("resource: negative acquire")
	}
	next := g.occ[p].Add(n)
	if cap := g.caps[p]; cap > 0 && next > cap {
		g.occ[p].Add(-n)
		g.rejects[p].Add(1)
		return &quotaErr{pool: p}
	}
	g.bumpPeak(p, next)
	return nil
}

// Charge adds n units to pool p unconditionally — no cap check, no
// denial. It is the accounting hook for pools whose occupancy must be
// tracked (and contribute pressure) but whose producers cannot be
// refused at the charge point: timer entries, accept-backlog slots,
// context slots. Negative n un-charges.
func (g *Governor) Charge(p Pool, n int64) {
	next := g.occ[p].Add(n)
	if next < 0 {
		g.occ[p].Store(0)
		return
	}
	g.bumpPeak(p, next)
}

// Release returns n units to pool p. Releasing more than acquired is a
// bookkeeping bug; the occupancy is clamped at zero so a stray double
// release degrades to a visible gauge (and test failure), not a wedge.
func (g *Governor) Release(p Pool, n int64) {
	if n < 0 {
		panic("resource: negative release")
	}
	if next := g.occ[p].Add(-n); next < 0 {
		g.occ[p].Store(0)
	}
}

func (g *Governor) bumpPeak(p Pool, v int64) {
	for {
		cur := g.peak[p].Load()
		if v <= cur || g.peak[p].CompareAndSwap(cur, v) {
			return
		}
	}
}

// app returns (creating if needed) the usage record for ctxID.
func (g *Governor) app(ctxID uint32) *appUsage {
	g.mu.Lock()
	u := g.apps[ctxID]
	if u == nil {
		u = &appUsage{}
		g.apps[ctxID] = u
	}
	g.mu.Unlock()
	return u
}

// AcquireFlow reserves one flow slot plus payloadBytes of buffer space,
// charging both the global pools and ctxID's quota. On any denial
// nothing is left reserved.
func (g *Governor) AcquireFlow(ctxID uint32, payloadBytes int64) error {
	u := g.app(ctxID)
	if q := g.limits.AppFlows; q > 0 {
		if next := u.flows.Add(1); next > q {
			u.flows.Add(-1)
			g.quota.Add(1)
			return &quotaErr{pool: PoolFlows, perApp: true}
		}
	} else {
		u.flows.Add(1)
	}
	if q := g.limits.AppPayloadBytes; q > 0 {
		if next := u.payload.Add(payloadBytes); next > q {
			u.payload.Add(-payloadBytes)
			u.flows.Add(-1)
			g.quota.Add(1)
			return &quotaErr{pool: PoolPayload, perApp: true}
		}
	} else {
		u.payload.Add(payloadBytes)
	}
	if err := g.Acquire(PoolFlows, 1); err != nil {
		u.payload.Add(-payloadBytes)
		u.flows.Add(-1)
		return err
	}
	if err := g.Acquire(PoolPayload, payloadBytes); err != nil {
		g.Release(PoolFlows, 1)
		u.payload.Add(-payloadBytes)
		u.flows.Add(-1)
		return err
	}
	return nil
}

// ReleaseFlow undoes AcquireFlow.
func (g *Governor) ReleaseFlow(ctxID uint32, payloadBytes int64) {
	u := g.app(ctxID)
	if v := u.flows.Add(-1); v < 0 {
		u.flows.Store(0)
	}
	if v := u.payload.Add(-payloadBytes); v < 0 {
		u.payload.Store(0)
	}
	g.Release(PoolFlows, 1)
	g.Release(PoolPayload, payloadBytes)
}

// GrowPayload charges extra payload bytes to an existing flow (buffer
// resize). It fails against both the app quota and the global pool.
func (g *Governor) GrowPayload(ctxID uint32, delta int64) error {
	if delta <= 0 {
		return nil
	}
	u := g.app(ctxID)
	if q := g.limits.AppPayloadBytes; q > 0 {
		if next := u.payload.Add(delta); next > q {
			u.payload.Add(-delta)
			g.quota.Add(1)
			return &quotaErr{pool: PoolPayload, perApp: true}
		}
	} else {
		u.payload.Add(delta)
	}
	if err := g.Acquire(PoolPayload, delta); err != nil {
		u.payload.Add(-delta)
		return err
	}
	return nil
}

// Reset forces pool p's occupancy to v. Warm restart uses it to
// reconcile pools whose entries died with the crashed slow-path
// instance (half-open handshakes, FIN timers): the governor outlives
// the instance, so abandoned in-progress charges must be written off
// against what the recovered state actually holds.
func (g *Governor) Reset(p Pool, v int64) {
	if v < 0 {
		v = 0
	}
	g.occ[p].Store(v)
	g.bumpPeak(p, v)
}

// CheckApp is the advisory Dial-time quota probe: it reports (without
// reserving anything) whether ctxID is already at its flow quota, so an
// active open can fail fast with backpressure instead of completing a
// handshake the install-time check would tear down. Racy by design —
// the authoritative charge happens at flow installation.
func (g *Governor) CheckApp(ctxID uint32) error {
	q := g.limits.AppFlows
	if q <= 0 {
		return nil
	}
	g.mu.Lock()
	u := g.apps[ctxID]
	g.mu.Unlock()
	if u != nil && u.flows.Load() >= q {
		g.quota.Add(1)
		return &quotaErr{pool: PoolFlows, perApp: true}
	}
	return nil
}

// DropApp forgets an application context's quota record (reaped app).
// Its flow/payload charges must already have been released per-flow.
func (g *Governor) DropApp(ctxID uint32) {
	g.mu.Lock()
	delete(g.apps, ctxID)
	g.mu.Unlock()
}

// AppUsage reports ctxID's current quota consumption.
func (g *Governor) AppUsage(ctxID uint32) (flows, payloadBytes int64) {
	g.mu.Lock()
	u := g.apps[ctxID]
	g.mu.Unlock()
	if u == nil {
		return 0, 0
	}
	return u.flows.Load(), u.payload.Load()
}

// Pressure returns the hottest capped pool's occupancy fraction in
// [0,1] (uncapped pools contribute nothing).
func (g *Governor) Pressure() float64 {
	var worst float64
	for p := Pool(0); p < NumPools; p++ {
		if cap := g.caps[p]; cap > 0 {
			if f := float64(g.occ[p].Load()) / float64(cap); f > worst {
				worst = f
			}
		}
	}
	return worst
}

// thresholds returns rung k's engage/release pressure fractions. Rung
// engage points spread evenly from EngagePct up to 100%; each release
// point sits the configured hysteresis gap below its engage point.
func (g *Governor) thresholds(k int) (engage, release float64) {
	base := float64(g.limits.EngagePct) / 100
	gap := float64(g.limits.EngagePct-g.limits.ReleasePct) / 100
	step := (1 - base) / float64(maxLevel)
	engage = base + float64(k-1)*step
	release = engage - gap
	if release < 0 {
		release = 0
	}
	return engage, release
}

// Evaluate advances the ladder one step toward the level the current
// pressure calls for — rungs engage and release strictly one at a time,
// in order — and returns the (possibly new) level. The slow path calls
// this on its control tick.
func (g *Governor) Evaluate() (level int, changed bool) {
	p := g.Pressure()
	cur := int(g.level.Load())
	next := cur
	if cur < maxLevel {
		if e, _ := g.thresholds(cur + 1); p >= e {
			next = cur + 1
		}
	}
	if next == cur && cur > 0 {
		if _, r := g.thresholds(cur); p < r {
			next = cur - 1
		}
	}
	if next == cur {
		return cur, false
	}
	g.level.Store(int32(next))
	if next > cur {
		g.engaged[next].Add(1)
		for {
			pk := g.peakLevel.Load()
			if int32(next) <= pk || g.peakLevel.CompareAndSwap(pk, int32(next)) {
				break
			}
		}
	}
	if fn := g.onTransition; fn != nil {
		fn(cur, next)
	}
	return next, true
}

// Level returns the current degradation rung.
func (g *Governor) Level() int { return int(g.level.Load()) }

// PeakLevel returns the highest rung reached since construction.
func (g *Governor) PeakLevel() int { return int(g.peakLevel.Load()) }

// NoteShed counts one action taken by rung k (a forced cookie, a shed
// SYN, a clamped grant, a reclaimed flow).
func (g *Governor) NoteShed(k int) {
	if k > 0 && k < NumLevels {
		g.shed[k].Add(1)
	}
}

// SetTxGrant publishes the clamped per-flow TX grant (0 = unclamped).
func (g *Governor) SetTxGrant(bytes int64) { g.txGrant.Store(bytes) }

// TxGrant returns the live per-flow TX grant clamp (0 = unclamped).
func (g *Governor) TxGrant() int64 { return g.txGrant.Load() }

// Stats is a governor snapshot for telemetry and ServiceStats.
type Stats struct {
	Level     int
	PeakLevel int
	Pressure  float64

	Used [NumPools]int64
	Cap  [NumPools]int64
	Peak [NumPools]int64

	Engaged [NumLevels]uint64 // transitions onto each rung
	Shed    [NumLevels]uint64 // actions taken by each rung

	Rejects      [NumPools]uint64 // global-pool admission denials
	QuotaRejects uint64           // per-app quota denials
}

// Snapshot captures the governor's current state.
func (g *Governor) Snapshot() Stats {
	var s Stats
	s.Level = g.Level()
	s.PeakLevel = g.PeakLevel()
	s.Pressure = g.Pressure()
	for p := Pool(0); p < NumPools; p++ {
		s.Used[p] = g.occ[p].Load()
		s.Cap[p] = g.caps[p]
		s.Peak[p] = g.peak[p].Load()
		s.Rejects[p] = g.rejects[p].Load()
	}
	for k := 0; k < NumLevels; k++ {
		s.Engaged[k] = g.engaged[k].Load()
		s.Shed[k] = g.shed[k].Load()
	}
	s.QuotaRejects = g.quota.Load()
	return s
}
