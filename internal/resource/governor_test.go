package resource

import (
	"errors"
	"sync"
	"testing"
)

func TestAcquireReleaseAccounting(t *testing.T) {
	g := New(Limits{Flows: 4, PayloadBytes: 1 << 20})
	for i := 0; i < 4; i++ {
		if err := g.Acquire(PoolFlows, 1); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if err := g.Acquire(PoolFlows, 1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted past cap, got %v", err)
	}
	if got := g.Used(PoolFlows); got != 4 {
		t.Fatalf("denied acquire must not reserve: used=%d", got)
	}
	g.Release(PoolFlows, 4)
	if got := g.Used(PoolFlows); got != 0 {
		t.Fatalf("after release used=%d, want 0", got)
	}
	if got := g.Peak(PoolFlows); got != 4 {
		t.Fatalf("peak=%d, want 4", got)
	}
	if got := g.Snapshot().Rejects[PoolFlows]; got != 1 {
		t.Fatalf("rejects=%d, want 1", got)
	}
}

func TestUncappedPoolNeverDenies(t *testing.T) {
	g := New(Limits{})
	for i := 0; i < 1000; i++ {
		if err := g.Acquire(PoolHalfOpen, 1); err != nil {
			t.Fatalf("uncapped pool denied: %v", err)
		}
	}
	if p := g.Pressure(); p != 0 {
		t.Fatalf("uncapped pools must not contribute pressure, got %v", p)
	}
}

func TestPerAppQuota(t *testing.T) {
	g := New(Limits{Flows: 100, AppFlows: 2, PayloadBytes: 1 << 20, AppPayloadBytes: 1 << 16})
	if err := g.AcquireFlow(1, 1<<10); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireFlow(1, 1<<10); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireFlow(1, 1<<10); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want quota denial for app 1, got %v", err)
	}
	// A different app is unaffected by app 1's quota.
	if err := g.AcquireFlow(2, 1<<10); err != nil {
		t.Fatalf("app 2 should be admitted: %v", err)
	}
	if f, _ := g.AppUsage(1); f != 2 {
		t.Fatalf("app 1 flows=%d, want 2", f)
	}
	g.ReleaseFlow(1, 1<<10)
	if err := g.AcquireFlow(1, 1<<10); err != nil {
		t.Fatalf("after release app 1 should fit again: %v", err)
	}
	if got := g.Snapshot().QuotaRejects; got != 1 {
		t.Fatalf("quota rejects=%d, want 1", got)
	}
	// Payload quota denial leaves nothing reserved.
	if err := g.AcquireFlow(3, 1<<17); !errors.Is(err, ErrExhausted) {
		t.Fatal("payload quota should deny")
	}
	if f, p := g.AppUsage(3); f != 0 || p != 0 {
		t.Fatalf("denied acquire leaked app usage: flows=%d payload=%d", f, p)
	}
}

func TestAcquireFlowDenialLeavesGlobalsUntouched(t *testing.T) {
	g := New(Limits{Flows: 1, PayloadBytes: 1 << 20})
	if err := g.AcquireFlow(1, 512); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireFlow(2, 512); !errors.Is(err, ErrExhausted) {
		t.Fatal("want global flow-pool denial")
	}
	if got := g.Used(PoolPayload); got != 512 {
		t.Fatalf("denied AcquireFlow leaked payload: used=%d want 512", got)
	}
	g.ReleaseFlow(1, 512)
	if got := g.Used(PoolPayload); got != 0 {
		t.Fatalf("payload not returned: used=%d", got)
	}
	if got := g.Used(PoolFlows); got != 0 {
		t.Fatalf("flows not returned: used=%d", got)
	}
}

func TestLadderEngagesAndReleasesInOrder(t *testing.T) {
	g := New(Limits{PayloadBytes: 100, EngagePct: 60, ReleasePct: 50})
	var transitions [][2]int
	g.OnTransition(func(from, to int) { transitions = append(transitions, [2]int{from, to}) })

	// Rung engage points: 60, 70, 80, 90 (spread to 100); release gap 10.
	fill := func(n int64) {
		g.Release(PoolPayload, g.Used(PoolPayload))
		if n > 0 {
			if err := g.Acquire(PoolPayload, n); err != nil {
				t.Fatalf("fill %d: %v", n, err)
			}
		}
	}
	settle := func() int {
		for {
			l, changed := g.Evaluate()
			if !changed {
				return l
			}
		}
	}

	fill(95) // above every engage point: must climb 0→1→2→3→4 one rung per tick
	if l, _ := g.Evaluate(); l != 1 {
		t.Fatalf("first tick level=%d, want 1 (one rung at a time)", l)
	}
	if l := settle(); l != 4 {
		t.Fatalf("settled level=%d, want 4", l)
	}
	fill(85) // below rung 4 release (90-10=80)? 85 >= 80, so rung 4 holds (hysteresis)
	if l := settle(); l != 4 {
		t.Fatalf("hysteresis: level=%d, want 4 at 85%%", l)
	}
	fill(75) // below rung 4 release (80) but above rung 3's (70): drop to 3 only
	if l := settle(); l != 3 {
		t.Fatalf("level=%d, want 3 at 75%%", l)
	}
	fill(0)
	if l := settle(); l != 0 {
		t.Fatalf("level=%d, want 0 when idle", l)
	}

	want := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 3}, {3, 2}, {2, 1}, {1, 0}}
	if len(transitions) != len(want) {
		t.Fatalf("transitions %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v (strict order)", i, transitions[i], want[i])
		}
	}
	if g.PeakLevel() != 4 {
		t.Fatalf("peak level=%d, want 4", g.PeakLevel())
	}
	s := g.Snapshot()
	for k := 1; k <= 4; k++ {
		if s.Engaged[k] != 1 {
			t.Fatalf("rung %d engaged %d times, want 1", k, s.Engaged[k])
		}
	}
}

func TestValidateRejectsInconsistentLimits(t *testing.T) {
	cases := []struct {
		name string
		l    Limits
	}{
		{"inverted hysteresis", Limits{EngagePct: 50, ReleasePct: 60}},
		{"equal watermarks", Limits{EngagePct: 50, ReleasePct: 50}},
		{"engage over 100", Limits{EngagePct: 150, ReleasePct: 50}},
		{"quota over pool", Limits{Flows: 10, AppFlows: 20}},
		{"payload quota over pool", Limits{PayloadBytes: 1 << 20, AppPayloadBytes: 1 << 21}},
		{"negative cap", Limits{Flows: -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.l.Validate(); err == nil {
				t.Fatalf("Validate(%+v) accepted inconsistent limits", c.l)
			}
		})
	}
	// And the happy path.
	ok := Limits{Flows: 100, AppFlows: 10, PayloadBytes: 1 << 20, AppPayloadBytes: 1 << 18}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid limits rejected: %v", err)
	}
	if err := (Limits{}).Validate(); err != nil {
		t.Fatalf("zero limits rejected: %v", err)
	}
}

func TestTxGrantPublication(t *testing.T) {
	g := New(Limits{})
	if g.TxGrant() != 0 {
		t.Fatal("grant should start unclamped")
	}
	g.SetTxGrant(4096)
	if got := g.TxGrant(); got != 4096 {
		t.Fatalf("grant=%d, want 4096", got)
	}
	g.SetTxGrant(0)
	if g.TxGrant() != 0 {
		t.Fatal("grant should unclamp")
	}
}

func TestConcurrentAccountingBalances(t *testing.T) {
	g := New(Limits{Flows: 1 << 30, PayloadBytes: 1 << 40})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := g.AcquireFlow(id, 4096); err != nil {
					t.Error(err)
					return
				}
				g.ReleaseFlow(id, 4096)
			}
		}(uint32(w))
	}
	wg.Wait()
	if got := g.Used(PoolFlows); got != 0 {
		t.Fatalf("flows leaked: %d", got)
	}
	if got := g.Used(PoolPayload); got != 0 {
		t.Fatalf("payload leaked: %d", got)
	}
	for w := 0; w < 8; w++ {
		if f, p := g.AppUsage(uint32(w)); f != 0 || p != 0 {
			t.Fatalf("app %d leaked: flows=%d payload=%d", w, f, p)
		}
	}
}

func TestShedCounters(t *testing.T) {
	g := New(Limits{})
	g.NoteShed(LevelCookies)
	g.NoteShed(LevelShedSyn)
	g.NoteShed(LevelShedSyn)
	s := g.Snapshot()
	if s.Shed[LevelCookies] != 1 || s.Shed[LevelShedSyn] != 2 {
		t.Fatalf("shed counters %v", s.Shed)
	}
}

func TestPoolAndLevelNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Pool(0); p < NumPools; p++ {
		n := p.String()
		if n == "" || seen[n] {
			t.Fatalf("pool %d name %q empty or duplicate", p, n)
		}
		seen[n] = true
	}
	for k := 0; k < NumLevels; k++ {
		if LevelName(k) == "" {
			t.Fatalf("level %d has no name", k)
		}
	}
}
