// Package flexstorm implements the evaluation's real-time analytics
// workload (§5.4), after the FlexStorm system the paper benchmarks: a
// data-stream-processing node with a demultiplexer thread that receives
// tuples from the network and routes them to executor workers by key
// hash, and a multiplexer thread that batches outgoing tuples before
// emission (the batching whose latency cost Figure 10/Table 8
// quantifies). Nodes connect over any io.ReadWriter (TAS connections in
// the live example), forming a topology.
package flexstorm

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tuple is one unit of streaming data.
type Tuple struct {
	ID    uint64
	Key   string
	Value int64
	// Emitted is the origin timestamp (unix nanos) for end-to-end
	// latency accounting.
	Emitted int64
}

// wire format: [8 id][8 value][8 emitted][2 keylen][key]
const tupleHdrLen = 26

// WriteTuple encodes one tuple.
func WriteTuple(w io.Writer, t *Tuple) error {
	if len(t.Key) > 0xffff {
		return errors.New("flexstorm: key too long")
	}
	buf := make([]byte, tupleHdrLen+len(t.Key))
	binary.BigEndian.PutUint64(buf[0:], t.ID)
	binary.BigEndian.PutUint64(buf[8:], uint64(t.Value))
	binary.BigEndian.PutUint64(buf[16:], uint64(t.Emitted))
	binary.BigEndian.PutUint16(buf[24:], uint16(len(t.Key)))
	copy(buf[tupleHdrLen:], t.Key)
	_, err := w.Write(buf)
	return err
}

// ReadTuple decodes one tuple.
func ReadTuple(r io.Reader, t *Tuple) error {
	var hdr [tupleHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	t.ID = binary.BigEndian.Uint64(hdr[0:])
	t.Value = int64(binary.BigEndian.Uint64(hdr[8:]))
	t.Emitted = int64(binary.BigEndian.Uint64(hdr[16:]))
	klen := int(binary.BigEndian.Uint16(hdr[24:]))
	key := make([]byte, klen)
	if _, err := io.ReadFull(r, key); err != nil {
		return err
	}
	t.Key = string(key)
	return nil
}

// Executor processes tuples; it may emit derived tuples downstream by
// returning them.
type Executor func(t *Tuple) []Tuple

// WordCount returns the canonical counting executor: it accumulates a
// per-key count and emits an updated (key, count) tuple.
func WordCount() Executor {
	counts := make(map[string]int64)
	return func(t *Tuple) []Tuple {
		counts[t.Key] += t.Value
		return []Tuple{{ID: t.ID, Key: t.Key, Value: counts[t.Key], Emitted: t.Emitted}}
	}
}

// NodeConfig sizes one FlexStorm node.
type NodeConfig struct {
	Executors int // worker goroutines (default 2)
	// BatchFlush is the mux flush interval (the paper's Linux deployment
	// batches up to 10ms of tuples; TAS needs none). Zero = flush
	// per-tuple.
	BatchFlush time.Duration
	// BatchSize flushes earlier when this many tuples accumulate
	// (default 512).
	BatchSize int
	QueueCap  int // per-stage channel capacity (default 4096)
}

func (c *NodeConfig) fill() {
	if c.Executors <= 0 {
		c.Executors = 2
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
}

// Stats aggregates a node's activity.
type Stats struct {
	TuplesIn   atomic.Uint64
	TuplesOut  atomic.Uint64
	InQueueNs  atomic.Int64 // total time tuples spent before an executor
	ProcessNs  atomic.Int64 // total executor processing time
	OutQueueNs atomic.Int64 // total time spent in the mux batch
}

// Node is a running FlexStorm worker node: demux -> executors -> mux.
type Node struct {
	cfg   NodeConfig
	exec  []chan timedTuple
	muxCh chan timedTuple
	out   io.Writer
	Stats Stats

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

type timedTuple struct {
	t       Tuple
	stageAt int64 // when the tuple entered the current stage (unix nanos)
}

// NewNode starts a node that applies mkExec-produced executors and
// writes emitted tuples to out.
func NewNode(cfg NodeConfig, mkExec func() Executor, out io.Writer) *Node {
	cfg.fill()
	n := &Node{
		cfg:    cfg,
		muxCh:  make(chan timedTuple, cfg.QueueCap),
		out:    out,
		closed: make(chan struct{}),
	}
	for i := 0; i < cfg.Executors; i++ {
		ch := make(chan timedTuple, cfg.QueueCap)
		n.exec = append(n.exec, ch)
		ex := mkExec()
		n.wg.Add(1)
		go n.runExecutor(ch, ex)
	}
	n.wg.Add(1)
	go n.runMux()
	return n
}

// Ingest is the demultiplexer: it reads tuples from r and routes them to
// executors by key hash, until EOF or error. Run one goroutine per
// upstream connection.
func (n *Node) Ingest(r io.Reader) error {
	var t Tuple
	for {
		if err := ReadTuple(r, &t); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		n.Inject(t)
	}
}

// Inject routes one tuple to its executor (the demux step).
func (n *Node) Inject(t Tuple) {
	n.Stats.TuplesIn.Add(1)
	h := fnv.New32a()
	io.WriteString(h, t.Key)
	select {
	case n.exec[h.Sum32()%uint32(len(n.exec))] <- timedTuple{t: t, stageAt: time.Now().UnixNano()}:
	case <-n.closed:
	}
}

func (n *Node) runExecutor(ch chan timedTuple, ex Executor) {
	defer n.wg.Done()
	for {
		select {
		case tt := <-ch:
			start := time.Now().UnixNano()
			n.Stats.InQueueNs.Add(start - tt.stageAt)
			outs := ex(&tt.t)
			end := time.Now().UnixNano()
			n.Stats.ProcessNs.Add(end - start)
			for _, o := range outs {
				select {
				case n.muxCh <- timedTuple{t: o, stageAt: end}:
				case <-n.closed:
					return
				}
			}
		case <-n.closed:
			return
		}
	}
}

// runMux batches tuples and writes them out at flush boundaries.
func (n *Node) runMux() {
	defer n.wg.Done()
	var batch []timedTuple
	var timer *time.Timer
	var timerC <-chan time.Time
	flush := func() {
		now := time.Now().UnixNano()
		for i := range batch {
			n.Stats.OutQueueNs.Add(now - batch[i].stageAt)
			if n.out != nil {
				if err := WriteTuple(n.out, &batch[i].t); err != nil {
					break
				}
			}
			n.Stats.TuplesOut.Add(1)
		}
		batch = batch[:0]
		timerC = nil
	}
	for {
		select {
		case tt := <-n.muxCh:
			batch = append(batch, tt)
			if n.cfg.BatchFlush <= 0 || len(batch) >= n.cfg.BatchSize {
				flush()
				continue
			}
			if timerC == nil {
				if timer == nil {
					timer = time.NewTimer(n.cfg.BatchFlush)
				} else {
					timer.Reset(n.cfg.BatchFlush)
				}
				timerC = timer.C
			}
		case <-timerC:
			flush()
		case <-n.closed:
			flush()
			return
		}
	}
}

// AvgLatencies returns the mean per-tuple time in each stage
// (input queue, processing, output batch), in nanoseconds.
func (n *Node) AvgLatencies() (inQ, proc, outQ float64) {
	in := n.Stats.TuplesIn.Load()
	out := n.Stats.TuplesOut.Load()
	if in > 0 {
		inQ = float64(n.Stats.InQueueNs.Load()) / float64(in)
		proc = float64(n.Stats.ProcessNs.Load()) / float64(in)
	}
	if out > 0 {
		outQ = float64(n.Stats.OutQueueNs.Load()) / float64(out)
	}
	return
}

// Close stops the node's goroutines.
func (n *Node) Close() {
	n.once.Do(func() { close(n.closed) })
	n.wg.Wait()
}
