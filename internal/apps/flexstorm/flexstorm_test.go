package flexstorm

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

func TestTupleRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Tuple{ID: 42, Key: "word", Value: -7, Emitted: 123456789}
	if err := WriteTuple(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Tuple
	if err := ReadTuple(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestWordCountExecutor(t *testing.T) {
	ex := WordCount()
	for i := 1; i <= 3; i++ {
		outs := ex(&Tuple{Key: "a", Value: 1})
		if len(outs) != 1 || outs[0].Value != int64(i) {
			t.Fatalf("count %d: %+v", i, outs)
		}
	}
	outs := ex(&Tuple{Key: "b", Value: 5})
	if outs[0].Value != 5 {
		t.Fatal("independent keys")
	}
}

// syncWriter collects emitted tuples.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) tuples(t *testing.T) []Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []Tuple
	r := bytes.NewReader(w.buf.Bytes())
	for {
		var tp Tuple
		if err := ReadTuple(r, &tp); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out
			}
			t.Fatal(err)
		}
		out = append(out, tp)
	}
}

func TestNodePipelineUnbatched(t *testing.T) {
	out := &syncWriter{}
	n := NewNode(NodeConfig{Executors: 4}, WordCount, out)
	words := []string{"a", "b", "a", "c", "a", "b"}
	for i, w := range words {
		n.Inject(Tuple{ID: uint64(i), Key: w, Value: 1, Emitted: time.Now().UnixNano()})
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.Stats.TuplesOut.Load() < uint64(len(words)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	n.Close()
	tuples := out.tuples(t)
	if len(tuples) != len(words) {
		t.Fatalf("emitted %d tuples, want %d", len(tuples), len(words))
	}
	// The final count for "a" must be 3 (per-key ordering holds because
	// a key always routes to the same executor).
	maxA := int64(0)
	for _, tp := range tuples {
		if tp.Key == "a" && tp.Value > maxA {
			maxA = tp.Value
		}
	}
	if maxA != 3 {
		t.Fatalf("count(a) = %d, want 3", maxA)
	}
	if n.Stats.TuplesIn.Load() != uint64(len(words)) {
		t.Fatal("input count")
	}
}

func TestNodeBatchingDelaysEmission(t *testing.T) {
	out := &syncWriter{}
	n := NewNode(NodeConfig{Executors: 1, BatchFlush: 30 * time.Millisecond, BatchSize: 1000}, WordCount, out)
	defer n.Close()
	n.Inject(Tuple{ID: 1, Key: "x", Value: 1})
	time.Sleep(10 * time.Millisecond)
	if n.Stats.TuplesOut.Load() != 0 {
		t.Fatal("tuple emitted before batch flush")
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats.TuplesOut.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n.Stats.TuplesOut.Load() != 1 {
		t.Fatal("tuple never flushed")
	}
	_, _, outQ := n.AvgLatencies()
	if outQ < float64(20*time.Millisecond) {
		t.Fatalf("output-queue latency %.0fns should reflect ~30ms batching", outQ)
	}
}

func TestNodeBatchSizeTriggersEarlyFlush(t *testing.T) {
	out := &syncWriter{}
	n := NewNode(NodeConfig{Executors: 1, BatchFlush: time.Hour, BatchSize: 10}, WordCount, out)
	defer n.Close()
	for i := 0; i < 10; i++ {
		n.Inject(Tuple{ID: uint64(i), Key: "k", Value: 1})
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats.TuplesOut.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n.Stats.TuplesOut.Load() != 10 {
		t.Fatal("batch-size flush did not trigger")
	}
}

func TestIngestFromStream(t *testing.T) {
	var wire bytes.Buffer
	for i := 0; i < 20; i++ {
		WriteTuple(&wire, &Tuple{ID: uint64(i), Key: "w", Value: 1})
	}
	out := &syncWriter{}
	n := NewNode(NodeConfig{Executors: 2}, WordCount, out)
	defer n.Close()
	if err := n.Ingest(&wire); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats.TuplesOut.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := n.Stats.TuplesIn.Load(); got != 20 {
		t.Fatalf("ingested %d", got)
	}
}

func TestChainedNodes(t *testing.T) {
	// Node A's output streams into node B via an in-memory pipe.
	pr, pw := io.Pipe()
	outB := &syncWriter{}
	b := NewNode(NodeConfig{Executors: 1}, WordCount, outB)
	defer b.Close()
	go b.Ingest(pr)
	a := NewNode(NodeConfig{Executors: 2}, WordCount, pw)
	defer a.Close()
	for i := 0; i < 10; i++ {
		a.Inject(Tuple{ID: uint64(i), Key: "k", Value: 1})
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats.TuplesOut.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Stats.TuplesOut.Load() != 10 {
		t.Fatalf("downstream emitted %d", b.Stats.TuplesOut.Load())
	}
}
