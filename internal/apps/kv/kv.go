// Package kv implements the evaluation's key-value store application
// (§5.3), modeled after memcached: a sharded in-memory store, a compact
// binary request/response protocol, a server loop that runs over any
// io.ReadWriter (a TAS connection or net.Conn), a client, and the
// memslap-style workload generator (zipf-distributed keys, 90/10
// GET/SET).
package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strconv"
	"sync"

	"repro/internal/stats"
)

// Store is a sharded in-memory key-value store. Shards use RW mutexes;
// with a skewed workload hitting a single hot key, writers serialize on
// one shard lock — the non-scalable workload of Table 7.
type Store struct {
	shards []shard
}

type shard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewStore creates a store with the given shard count (rounded up to at
// least 1).
func NewStore(nshards int) *Store {
	if nshards < 1 {
		nshards = 1
	}
	s := &Store{shards: make([]shard, nshards)}
	for i := range s.shards {
		s.shards[i].m = make(map[string][]byte)
	}
	return s
}

func (s *Store) shardFor(key []byte) *shard {
	h := fnv.New32a()
	h.Write(key)
	return &s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Get returns a copy of the value for key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.RLock()
	v, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Set stores a copy of value under key.
func (s *Store) Set(key, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.m[string(key)] = append([]byte(nil), value...)
	sh.mu.Unlock()
}

// Len returns the total number of keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// Protocol operations.
const (
	OpGet = 1
	OpSet = 2

	StatusOK       = 0
	StatusNotFound = 1
	StatusErr      = 2
)

// Request is one KV operation.
type Request struct {
	Op    byte
	Key   []byte
	Value []byte // Set only
}

// Response is the server's answer.
type Response struct {
	Status byte
	Value  []byte // Get hits only
}

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("kv: protocol error")

// WriteRequest encodes a request: [op:1][klen:2][vlen:4][key][value].
func WriteRequest(w io.Writer, r *Request) error {
	if len(r.Key) > 0xffff {
		return fmt.Errorf("kv: key too long (%d)", len(r.Key))
	}
	hdr := make([]byte, 7, 7+len(r.Key)+len(r.Value))
	hdr[0] = r.Op
	binary.BigEndian.PutUint16(hdr[1:], uint16(len(r.Key)))
	binary.BigEndian.PutUint32(hdr[3:], uint32(len(r.Value)))
	buf := append(hdr, r.Key...)
	buf = append(buf, r.Value...)
	_, err := w.Write(buf)
	return err
}

// ReadRequest decodes one request.
func ReadRequest(r io.Reader, req *Request) error {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	req.Op = hdr[0]
	klen := int(binary.BigEndian.Uint16(hdr[1:]))
	vlen := int(binary.BigEndian.Uint32(hdr[3:]))
	if req.Op != OpGet && req.Op != OpSet {
		return ErrProtocol
	}
	if vlen > 16<<20 {
		return ErrProtocol
	}
	req.Key = make([]byte, klen)
	if _, err := io.ReadFull(r, req.Key); err != nil {
		return err
	}
	req.Value = make([]byte, vlen)
	if _, err := io.ReadFull(r, req.Value); err != nil {
		return err
	}
	return nil
}

// WriteResponse encodes a response: [status:1][vlen:4][value].
func WriteResponse(w io.Writer, resp *Response) error {
	hdr := make([]byte, 5, 5+len(resp.Value))
	hdr[0] = resp.Status
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(resp.Value)))
	_, err := w.Write(append(hdr, resp.Value...))
	return err
}

// ReadResponse decodes one response.
func ReadResponse(r io.Reader, resp *Response) error {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	resp.Status = hdr[0]
	vlen := int(binary.BigEndian.Uint32(hdr[1:]))
	if vlen > 16<<20 {
		return ErrProtocol
	}
	resp.Value = make([]byte, vlen)
	_, err := io.ReadFull(r, resp.Value)
	return err
}

// Handle executes one request against the store.
func Handle(st *Store, req *Request) Response {
	switch req.Op {
	case OpGet:
		if v, ok := st.Get(req.Key); ok {
			return Response{Status: StatusOK, Value: v}
		}
		return Response{Status: StatusNotFound}
	case OpSet:
		st.Set(req.Key, req.Value)
		return Response{Status: StatusOK}
	default:
		return Response{Status: StatusErr}
	}
}

// ServeConn processes requests from rw until EOF or error.
func ServeConn(rw io.ReadWriter, st *Store) error {
	var req Request
	for {
		if err := ReadRequest(rw, &req); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		resp := Handle(st, &req)
		if err := WriteResponse(rw, &resp); err != nil {
			return err
		}
	}
}

// Client issues KV operations over a connection.
type Client struct {
	rw io.ReadWriter
}

// NewClient wraps a connection.
func NewClient(rw io.ReadWriter) *Client { return &Client{rw: rw} }

// Get fetches a key.
func (c *Client) Get(key []byte) ([]byte, bool, error) {
	if err := WriteRequest(c.rw, &Request{Op: OpGet, Key: key}); err != nil {
		return nil, false, err
	}
	var resp Response
	if err := ReadResponse(c.rw, &resp); err != nil {
		return nil, false, err
	}
	return resp.Value, resp.Status == StatusOK, nil
}

// Set stores a key.
func (c *Client) Set(key, value []byte) error {
	if err := WriteRequest(c.rw, &Request{Op: OpSet, Key: key, Value: value}); err != nil {
		return err
	}
	var resp Response
	if err := ReadResponse(c.rw, &resp); err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: set failed (status %d)", resp.Status)
	}
	return nil
}

// Workload generates the paper's §5.3 access pattern: NumKeys keys of
// KeySize bytes with ValueSize-byte values, zipf(Skew) popularity, and
// GetFraction reads.
type Workload struct {
	NumKeys     int
	KeySize     int
	ValueSize   int
	Skew        float64
	GetFraction float64

	rng  *rand.Rand
	zipf *stats.Zipf
	val  []byte
}

// PaperWorkload returns §5.3's parameters: 100K keys, 32B keys, 64B
// values, zipf s=0.9, 90% GETs.
func PaperWorkload(rng *rand.Rand) *Workload {
	w := &Workload{NumKeys: 100_000, KeySize: 32, ValueSize: 64, Skew: 0.9, GetFraction: 0.9, rng: rng}
	w.init()
	return w
}

// NewWorkload builds a custom workload.
func NewWorkload(rng *rand.Rand, numKeys, keySize, valueSize int, skew, getFrac float64) *Workload {
	w := &Workload{NumKeys: numKeys, KeySize: keySize, ValueSize: valueSize, Skew: skew, GetFraction: getFrac, rng: rng}
	w.init()
	return w
}

func (w *Workload) init() {
	w.zipf = stats.NewZipf(w.rng, w.Skew, w.NumKeys)
	w.val = make([]byte, w.ValueSize)
	for i := range w.val {
		w.val[i] = byte('a' + i%26)
	}
}

// Key materializes the key for a rank: "key-<rank>" padded with 'x' to
// KeySize (which must be large enough to hold the rank digits).
func (w *Workload) Key(rank int) []byte {
	s := strconv.Itoa(rank)
	if 4+len(s) > w.KeySize {
		panic("kv: KeySize too small for key space")
	}
	k := make([]byte, w.KeySize)
	n := copy(k, "key-")
	n += copy(k[n:], s)
	for i := n; i < w.KeySize; i++ {
		k[i] = 'x'
	}
	return k
}

// Next draws the next request.
func (w *Workload) Next() Request {
	rank := w.zipf.Draw()
	if w.rng.Float64() < w.GetFraction {
		return Request{Op: OpGet, Key: w.Key(rank)}
	}
	return Request{Op: OpSet, Key: w.Key(rank), Value: w.val}
}

// Preload fills the store with every key.
func (w *Workload) Preload(st *Store) {
	for i := 0; i < w.NumKeys; i++ {
		st.Set(w.Key(i), w.val)
	}
}
