package kv

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
)

func TestStoreBasics(t *testing.T) {
	st := NewStore(8)
	if _, ok := st.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	st.Set([]byte("k"), []byte("v1"))
	v, ok := st.Get([]byte("k"))
	if !ok || string(v) != "v1" {
		t.Fatalf("got %q %v", v, ok)
	}
	st.Set([]byte("k"), []byte("v2"))
	if v, _ := st.Get([]byte("k")); string(v) != "v2" {
		t.Fatal("overwrite failed")
	}
	if st.Len() != 1 {
		t.Fatalf("len = %d", st.Len())
	}
}

func TestStoreValueIsolation(t *testing.T) {
	st := NewStore(1)
	val := []byte("abc")
	st.Set([]byte("k"), val)
	val[0] = 'X' // caller mutation must not leak in
	v, _ := st.Get([]byte("k"))
	if string(v) != "abc" {
		t.Fatal("Set must copy the value")
	}
	v[0] = 'Y' // reader mutation must not leak back
	v2, _ := st.Get([]byte("k"))
	if string(v2) != "abc" {
		t.Fatal("Get must return a copy")
	}
}

func TestStoreConcurrent(t *testing.T) {
	st := NewStore(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []byte{byte(g)}
			for i := 0; i < 5000; i++ {
				st.Set(key, []byte{byte(i)})
				if v, ok := st.Get(key); !ok || len(v) != 1 {
					t.Error("bad read")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// pipe is an in-memory full-duplex byte stream for protocol tests.
type pipe struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (p pipe) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipe) Write(b []byte) (int, error) { return p.w.Write(b) }

func duplex() (pipe, pipe) {
	r1, w1 := io.Pipe()
	r2, w2 := io.Pipe()
	return pipe{r1, w2}, pipe{r2, w1}
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{Op: OpSet, Key: []byte("hello"), Value: []byte("world")}
	if err := WriteRequest(&buf, &req); err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := ReadRequest(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != OpSet || string(got.Key) != "hello" || string(got.Value) != "world" {
		t.Fatalf("round trip: %+v", got)
	}

	resp := Response{Status: StatusOK, Value: []byte("xyz")}
	if err := WriteResponse(&buf, &resp); err != nil {
		t.Fatal(err)
	}
	var gotR Response
	if err := ReadResponse(&buf, &gotR); err != nil {
		t.Fatal(err)
	}
	if gotR.Status != StatusOK || string(gotR.Value) != "xyz" {
		t.Fatalf("resp round trip: %+v", gotR)
	}
}

func TestProtocolRejectsBadOp(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{99, 0, 0, 0, 0, 0, 0})
	var req Request
	if err := ReadRequest(&buf, &req); err != ErrProtocol {
		t.Fatalf("err = %v", err)
	}
}

func TestServeConnEndToEnd(t *testing.T) {
	st := NewStore(4)
	serverSide, clientSide := duplex()
	go ServeConn(serverSide, st)
	c := NewClient(clientSide)

	if err := c.Set([]byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	_, ok, err = c.Get([]byte("beta"))
	if err != nil || ok {
		t.Fatalf("missing key: ok=%v err=%v", ok, err)
	}
}

func TestHandle(t *testing.T) {
	st := NewStore(1)
	r := Handle(st, &Request{Op: OpSet, Key: []byte("k"), Value: []byte("v")})
	if r.Status != StatusOK {
		t.Fatal("set status")
	}
	r = Handle(st, &Request{Op: OpGet, Key: []byte("k")})
	if r.Status != StatusOK || string(r.Value) != "v" {
		t.Fatal("get")
	}
	r = Handle(st, &Request{Op: OpGet, Key: []byte("nope")})
	if r.Status != StatusNotFound {
		t.Fatal("not found")
	}
	r = Handle(st, &Request{Op: 77})
	if r.Status != StatusErr {
		t.Fatal("bad op")
	}
}

func TestWorkloadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := PaperWorkload(rng)
	gets, sets := 0, 0
	keyCounts := make(map[string]int)
	for i := 0; i < 20000; i++ {
		r := w.Next()
		if len(r.Key) != 32 {
			t.Fatalf("key size %d", len(r.Key))
		}
		switch r.Op {
		case OpGet:
			gets++
		case OpSet:
			sets++
			if len(r.Value) != 64 {
				t.Fatalf("value size %d", len(r.Value))
			}
		}
		keyCounts[string(r.Key)]++
	}
	frac := float64(gets) / float64(gets+sets)
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("GET fraction = %v, want ~0.9", frac)
	}
	// Skew: the most popular key should appear far more than 1/100000.
	max := 0
	for _, c := range keyCounts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest key only %d/20000 — no zipf skew?", max)
	}
}

func TestWorkloadPreload(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWorkload(rng, 500, 16, 8, 0.9, 1.0)
	st := NewStore(4)
	w.Preload(st)
	if st.Len() != 500 {
		t.Fatalf("preloaded %d", st.Len())
	}
	// Every generated GET must hit.
	for i := 0; i < 1000; i++ {
		r := w.Next()
		if _, ok := st.Get(r.Key); !ok {
			t.Fatal("workload key missing after preload")
		}
	}
}
