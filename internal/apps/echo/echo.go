// Package echo implements the evaluation's RPC echo application (§5.1):
// fixed-size request/response messages over a byte stream, a server
// loop, and a closed-loop client. It runs over any io.ReadWriter.
package echo

import (
	"errors"
	"io"
)

// Serve echoes fixed-size messages from rw until EOF.
func Serve(rw io.ReadWriter, msgSize int) error {
	buf := make([]byte, msgSize)
	for {
		if _, err := io.ReadFull(rw, buf); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil
			}
			return err
		}
		if _, err := rw.Write(buf); err != nil {
			return err
		}
	}
}

// Client issues closed-loop echo RPCs.
type Client struct {
	rw   io.ReadWriter
	req  []byte
	resp []byte
}

// NewClient builds a client sending msgSize-byte RPCs.
func NewClient(rw io.ReadWriter, msgSize int) *Client {
	req := make([]byte, msgSize)
	for i := range req {
		req[i] = byte(i)
	}
	return &Client{rw: rw, req: req, resp: make([]byte, msgSize)}
}

// Call performs one echo round trip and verifies the payload.
func (c *Client) Call() error {
	if _, err := c.rw.Write(c.req); err != nil {
		return err
	}
	if _, err := io.ReadFull(c.rw, c.resp); err != nil {
		return err
	}
	for i := range c.resp {
		if c.resp[i] != c.req[i] {
			return errors.New("echo: payload mismatch")
		}
	}
	return nil
}
