package echo

import (
	"io"
	"testing"
)

type pipe struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func (p pipe) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p pipe) Write(b []byte) (int, error) { return p.w.Write(b) }

func duplex() (pipe, pipe) {
	r1, w1 := io.Pipe()
	r2, w2 := io.Pipe()
	return pipe{r1, w2}, pipe{r2, w1}
}

func TestEchoRPC(t *testing.T) {
	s, c := duplex()
	go Serve(s, 64)
	cl := NewClient(c, 64)
	for i := 0; i < 100; i++ {
		if err := cl.Call(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestServeStopsOnEOF(t *testing.T) {
	s, c := duplex()
	done := make(chan error, 1)
	go func() { done <- Serve(s, 16) }()
	c.w.Close()
	if err := <-done; err != nil {
		t.Fatalf("EOF should end serve cleanly: %v", err)
	}
}

func TestClientDetectsCorruption(t *testing.T) {
	s, c := duplex()
	go func() {
		buf := make([]byte, 8)
		io.ReadFull(s, buf)
		buf[0] ^= 0xff
		s.Write(buf)
	}()
	cl := NewClient(c, 8)
	if err := cl.Call(); err == nil {
		t.Fatal("corrupted echo should fail verification")
	}
}
