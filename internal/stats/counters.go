package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Gauge is a concurrency-safe level indicator: unlike CounterSet's
// monotonic counters it rises and falls, tracking the current size of a
// pool or queue (e.g. live payload-buffer bytes awaiting reclamation).
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// CounterSet is a small registry of named event counters for cold
// paths: every Add takes a mutex and a map lookup, which is fine for
// setup, teardown, and error accounting but NOT for per-packet or
// per-event hot paths. Hot-path callers should pre-register
// telemetry.Counter values (striped atomics) or declare plain atomic
// struct fields (see netsim.FaultCounters). Safe for concurrent use.
type CounterSet struct {
	mu   sync.Mutex
	vals map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{vals: make(map[string]uint64)}
}

// Add increments the named counter by delta.
func (s *CounterSet) Add(name string, delta uint64) {
	s.mu.Lock()
	s.vals[name] += delta
	s.mu.Unlock()
}

// Get returns the named counter (0 if never incremented).
func (s *CounterSet) Get(name string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[name]
}

// Snapshot returns a copy of all counters.
func (s *CounterSet) Snapshot() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.vals))
	for k, v := range s.vals {
		out[k] = v
	}
	return out
}

// String renders the counters in sorted-name order ("a=1 b=2"), for
// logs and test failure messages.
func (s *CounterSet) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}
