package stats

import (
	"math/rand"
	"testing"
)

func TestGilbertElliottDeterministic(t *testing.T) {
	cfg := DefaultGEConfig()
	a := NewGilbertElliott(rand.New(rand.NewSource(7)), cfg)
	b := NewGilbertElliott(rand.New(rand.NewSource(7)), cfg)
	for i := 0; i < 10000; i++ {
		if a.Drop() != b.Drop() {
			t.Fatalf("diverged at packet %d", i)
		}
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With LossGood=0 every drop happens inside a bad-state burst, so
	// drops must cluster: the number of isolated drops (no drop within
	// the previous 1 packet) should be far below the total drop count.
	cfg := GEConfig{PGoodToBad: 0.01, PBadToGood: 0.2, LossGood: 0, LossBad: 0.9}
	g := NewGilbertElliott(rand.New(rand.NewSource(42)), cfg)
	const n = 100000
	drops, runs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		d := g.Drop()
		if d {
			drops++
			if !prev {
				runs++
			}
		}
		prev = d
	}
	// Stationary bad fraction = 0.01/0.21 ~= 4.8%; drop rate ~= 4.3%.
	if drops < n/50 || drops > n/10 {
		t.Fatalf("drop count %d outside expected band", drops)
	}
	// Mean run length must exceed 1.5 packets (bursty, not Bernoulli).
	if float64(drops)/float64(runs) < 1.5 {
		t.Fatalf("drops not bursty: %d drops in %d runs", drops, runs)
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Add("drops", 2)
	c.Add("drops", 3)
	c.Add("dups", 1)
	if got := c.Get("drops"); got != 5 {
		t.Fatalf("drops = %d, want 5", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("missing = %d, want 0", got)
	}
	snap := c.Snapshot()
	if snap["dups"] != 1 || len(snap) != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	if s := c.String(); s != "drops=5 dups=1" {
		t.Fatalf("String() = %q", s)
	}
}
