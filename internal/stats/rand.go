package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Unlike math/rand's Zipf it supports any s > 0 including
// the paper's s=0.9 key-popularity skew, via an inverse-CDF table.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a Zipf generator over n items with exponent s, driven by
// rng. Building is O(n); drawing is O(log n).
func NewZipf(rng *rand.Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf n must be positive")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns a rank in [0, n); rank 0 is the most popular item.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// Pareto draws bounded-Pareto values in [min, max] with shape alpha, the
// canonical heavy-tailed flow-size distribution used in the paper's
// single-link simulation (Pareto-distributed flow sizes).
type Pareto struct {
	alpha, min, max float64
	rng             *rand.Rand
}

// NewPareto returns a bounded Pareto generator. alpha > 0, 0 < min < max.
func NewPareto(rng *rand.Rand, alpha, min, max float64) *Pareto {
	if alpha <= 0 || min <= 0 || max <= min {
		panic("stats: invalid Pareto parameters")
	}
	return &Pareto{alpha: alpha, min: min, max: max, rng: rng}
}

// Draw returns one sample in [min, max].
func (p *Pareto) Draw() float64 {
	u := p.rng.Float64()
	la := math.Pow(p.min, p.alpha)
	ha := math.Pow(p.max, p.alpha)
	// Inverse CDF of bounded Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.alpha)
	if x < p.min {
		x = p.min
	}
	if x > p.max {
		x = p.max
	}
	return x
}

// Mean returns the analytic mean of the bounded Pareto distribution.
func (p *Pareto) Mean() float64 {
	a, l, h := p.alpha, p.min, p.max
	if a == 1 {
		return (h * l / (h - l)) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * (a / (a - 1)) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// Exp draws exponential inter-arrival gaps with the given mean, for
// Poisson open-loop load generation.
type Exp struct {
	mean float64
	rng  *rand.Rand
}

// NewExp returns an exponential generator with the given mean > 0.
func NewExp(rng *rand.Rand, mean float64) *Exp {
	if mean <= 0 {
		panic("stats: Exp mean must be positive")
	}
	return &Exp{mean: mean, rng: rng}
}

// Draw returns one sample.
func (e *Exp) Draw() float64 { return e.rng.ExpFloat64() * e.mean }
