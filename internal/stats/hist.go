// Package stats provides the statistics toolkit used throughout the TAS
// reproduction: log-bucketed histograms for latency, exact-quantile CDF
// collectors, running moments, and the random variate generators the
// paper's workloads need (Zipf with s<1, bounded Pareto, exponential
// inter-arrivals).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-bucketed histogram intended for latency-like values
// spanning several orders of magnitude. Buckets grow geometrically from
// Min with the given growth factor; values below Min land in bucket 0 and
// values above the top bucket land in the overflow bucket. It records
// exact count, sum, min and max so means are exact even though quantiles
// are approximate (bounded by the bucket width, ~growth-1 relative error).
type Histogram struct {
	min     float64
	growth  float64
	logG    float64
	buckets []uint64
	count   uint64
	sum     float64
	minSeen float64
	maxSeen float64
}

// NewHistogram returns a histogram covering [min, min*growth^nbuckets)
// with geometric buckets. growth must be > 1 and min > 0.
func NewHistogram(min, growth float64, nbuckets int) *Histogram {
	if min <= 0 || growth <= 1 || nbuckets <= 0 {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{
		min:     min,
		growth:  growth,
		logG:    math.Log(growth),
		buckets: make([]uint64, nbuckets+1), // +1 overflow
		minSeen: math.Inf(1),
		maxSeen: math.Inf(-1),
	}
}

// NewLatencyHistogram returns a histogram suited for latencies in
// nanoseconds from 100ns to ~100s with ~2% bucket resolution.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(100, 1.02, 1050)
}

func (h *Histogram) bucketOf(v float64) int {
	if v < h.min {
		return 0
	}
	b := int(math.Log(v/h.min)/h.logG) + 1
	if b >= len(h.buckets) {
		return len(h.buckets) - 1
	}
	return b
}

// Add records a single observation.
func (h *Histogram) Add(v float64) {
	h.buckets[h.bucketOf(v)]++
	h.count++
	h.sum += v
	if v < h.minSeen {
		h.minSeen = v
	}
	if v > h.maxSeen {
		h.maxSeen = v
	}
}

// AddN records n observations of the same value.
func (h *Histogram) AddN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.buckets[h.bucketOf(v)] += n
	h.count += n
	h.sum += v * float64(n)
	if v < h.minSeen {
		h.minSeen = v
	}
	if v > h.maxSeen {
		h.maxSeen = v
	}
}

// Merge adds all observations recorded in other into h. The histograms
// must have identical bucket layouts.
func (h *Histogram) Merge(other *Histogram) {
	if h.min != other.min || h.growth != other.growth || len(h.buckets) != len(other.buckets) {
		panic("stats: merging incompatible histograms")
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.minSeen < h.minSeen {
		h.minSeen = other.minSeen
	}
	if other.maxSeen > h.maxSeen {
		h.maxSeen = other.maxSeen
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of recorded observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded observation (0 if empty).
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.minSeen
}

// Max returns the largest recorded observation (0 if empty).
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.maxSeen
}

// bucketUpper returns the upper edge of bucket b.
func (h *Histogram) bucketUpper(b int) float64 {
	if b == 0 {
		return h.min
	}
	return h.min * math.Pow(h.growth, float64(b))
}

// bucketLower returns the lower edge of bucket b. The underflow bucket
// spans [0, min): everything below min lands there, so its lower edge
// is 0, not min.
func (h *Histogram) bucketLower(b int) float64 {
	if b == 0 {
		return 0
	}
	return h.min * math.Pow(h.growth, float64(b-1))
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) by
// linear interpolation within the bucket containing the target rank.
// The underflow bucket interpolates from 0 — not from the histogram's
// configured min — so distributions concentrated below min are not all
// reported as min; the overflow bucket uses the observed max as its
// upper edge. The result is clamped to the observed min/max so tails
// are never exaggerated beyond actually-seen values.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.minSeen
	}
	if q >= 1 {
		return h.maxSeen
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for b, c := range h.buckets {
		if cum+c >= rank && c > 0 {
			lo, hi := h.bucketLower(b), h.bucketUpper(b)
			if hi > h.maxSeen {
				hi = h.maxSeen
			}
			frac := float64(rank-cum) / float64(c)
			v := lo + (hi-lo)*frac
			if v > h.maxSeen {
				v = h.maxSeen
			}
			if v < h.minSeen {
				v = h.minSeen
			}
			return v
		}
		cum += c
	}
	return h.maxSeen
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9), h.Quantile(0.99), h.Max())
}

// CDF collects exact samples and reports exact empirical quantiles. Use
// it when sample counts are modest (e.g. per-flow completion times);
// use Histogram for per-packet scales.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns an empty CDF collector.
func NewCDF() *CDF { return &CDF{} }

// Add records one sample.
func (c *CDF) Add(v float64) {
	c.samples = append(c.samples, v)
	c.sorted = false
}

// Count returns the number of samples recorded.
func (c *CDF) Count() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Quantile returns the exact empirical q-quantile using the nearest-rank
// method. Returns 0 for an empty collector.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	if q <= 0 {
		return c.samples[0]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(c.samples) {
		rank = len(c.samples) - 1
	}
	return c.samples[rank]
}

// Mean returns the sample mean (0 if empty).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.samples {
		s += v
	}
	return s / float64(len(c.samples))
}

// Min returns the smallest sample (0 if empty).
func (c *CDF) Min() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	return c.samples[0]
}

// Max returns the largest sample (0 if empty).
func (c *CDF) Max() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	return c.samples[len(c.samples)-1]
}

// Points returns (value, cumulative fraction) pairs suitable for plotting
// a CDF, downsampled to at most n points (n<=0 means all samples).
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.samples) == 0 {
		return nil
	}
	c.sort()
	total := len(c.samples)
	if n <= 0 || n > total {
		n = total
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * total / n
		if idx > total {
			idx = total
		}
		pts = append(pts, [2]float64{c.samples[idx-1], float64(idx) / float64(total)})
	}
	return pts
}

// Running tracks count, mean, variance (Welford), min and max without
// retaining samples.
type Running struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (r *Running) Add(v float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = v, v
	} else {
		if v < r.min {
			r.min = v
		}
		if v > r.max {
			r.max = v
		}
	}
	d := v - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (v - r.mean)
}

// Count returns the number of observations.
func (r *Running) Count() uint64 { return r.n }

// Mean returns the running mean (0 if empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the sample variance (0 if fewer than 2 observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev returns the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (0 if empty).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 if empty).
func (r *Running) Max() float64 { return r.max }

// EWMA is an exponentially weighted moving average with weight alpha for
// new observations, as used for DCTCP's ECN-fraction estimate and RTT
// estimators.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given new-sample weight in (0, 1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha out of range")
	}
	return &EWMA{alpha: alpha}
}

// Update folds in a new observation and returns the new average. The
// first observation initializes the average directly.
func (e *EWMA) Update(v float64) float64 {
	if !e.init {
		e.value = v
		e.init = true
	} else {
		e.value = (1-e.alpha)*e.value + e.alpha*v
	}
	return e.value
}

// Value returns the current average (0 before any update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.init }
