package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 1.5, 50)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram should report zeros")
	}
	h.Add(10)
	h.Add(20)
	h.Add(30)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	if got := h.Mean(); got != 20 {
		t.Fatalf("mean = %v, want 20", got)
	}
	if h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("min/max = %v/%v, want 10/30", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewLatencyHistogram()
	rng := rand.New(rand.NewSource(1))
	var exact []float64
	for i := 0; i < 100000; i++ {
		v := rng.ExpFloat64() * 50000 // mean 50us in ns
		h.Add(v)
		exact = append(exact, v)
	}
	c := NewCDF()
	for _, v := range exact {
		c.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := h.Quantile(q)
		want := c.Quantile(q)
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("q=%v: hist %v vs exact %v (>5%% error)", q, got, want)
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(1, 1.3, 80)
		for _, v := range vals {
			h.Add(float64(v%1000000) + 1)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramQuantileWithinObservedRange(t *testing.T) {
	f := func(vals []uint16, qi uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(1, 2, 40)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			x := float64(v) + 0.5
			h.Add(x)
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		q := float64(qi) / 255
		v := h.Quantile(q)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 1.5, 30)
	b := NewHistogram(1, 1.5, 30)
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Add(float64(i))
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	if math.Abs(a.Mean()-100.5) > 1e-9 {
		t.Fatalf("merged mean = %v, want 100.5", a.Mean())
	}
}

func TestHistogramMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on incompatible merge")
		}
	}()
	NewHistogram(1, 1.5, 30).Merge(NewHistogram(1, 2, 30))
}

func TestHistogramAddN(t *testing.T) {
	h := NewHistogram(1, 1.5, 30)
	h.AddN(5, 10)
	h.AddN(7, 0)
	if h.Count() != 10 {
		t.Fatalf("count = %d, want 10", h.Count())
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", h.Mean())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram(1, 2, 4) // covers up to 16
	h.Add(1e12)
	if h.Count() != 1 || h.Max() != 1e12 {
		t.Fatal("overflow value not recorded")
	}
	// Quantile clamps to observed max.
	if got := h.Quantile(0.99); got != 1e12 {
		t.Fatalf("overflow quantile = %v", got)
	}
}

func TestHistogramInvalidParamsPanics(t *testing.T) {
	for _, c := range []struct {
		min, g float64
		n      int
	}{
		{0, 2, 10}, {1, 1, 10}, {1, 2, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v,%v,%d) should panic", c.min, c.g, c.n)
				}
			}()
			NewHistogram(c.min, c.g, c.n)
		}()
	}
}

func TestCDFExactQuantiles(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if c.Mean() != 50.5 {
		t.Errorf("mean = %v, want 50.5", c.Mean())
	}
	if c.Min() != 1 || c.Max() != 100 {
		t.Errorf("min/max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF()
	if c.Quantile(0.5) != 0 || c.Mean() != 0 || c.Min() != 0 || c.Max() != 0 || c.Count() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
	if c.Points(10) != nil {
		t.Fatal("empty CDF points should be nil")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF()
	for i := 1; i <= 1000; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("got %d points, want 10", len(pts))
	}
	if pts[9][0] != 1000 || pts[9][1] != 1 {
		t.Fatalf("last point = %v, want [1000 1]", pts[9])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("points must be nondecreasing")
		}
	}
	// n<=0 returns all points.
	if got := len(c.Points(0)); got != 1000 {
		t.Fatalf("Points(0) len = %d, want 1000", got)
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.Count() != 0 || r.Variance() != 0 {
		t.Fatal("zero Running should report zeros")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(v)
	}
	if r.Count() != 8 {
		t.Fatalf("count = %d", r.Count())
	}
	if r.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA should not be initialized")
	}
	e.Update(10)
	if e.Value() != 10 {
		t.Fatalf("first update should initialize directly, got %v", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Fatalf("value = %v, want 15", e.Value())
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.1)
	for i := 0; i < 200; i++ {
		e.Update(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("EWMA should converge to constant input, got %v", e.Value())
	}
}

func TestEWMAInvalidAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) should panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestHistogramEmptyQuantiles(t *testing.T) {
	h := NewHistogram(100, 1.5, 16)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty Mean/Min/Max = %v/%v/%v, want all 0", h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	// One sample: every quantile is that sample, regardless of where it
	// lands inside a (coarse) bucket — min/max clamping must win over
	// the bucket upper bound.
	h := NewHistogram(100, 2, 8)
	h.Add(137)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 137 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 137", q, got)
		}
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// A one-bucket histogram degenerates to [0, min) plus overflow; all
	// quantiles must still stay inside the observed range.
	h := NewHistogram(10, 1.5, 1)
	h.Add(3)
	h.Add(7)
	h.Add(25) // overflow bucket
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		if got < 3 || got > 25 {
			t.Fatalf("single-bucket Quantile(%v) = %v, outside observed [3, 25]", q, got)
		}
	}
	if h.Quantile(0) != 3 {
		t.Fatalf("p0 = %v, want exact min 3", h.Quantile(0))
	}
	if h.Quantile(1) != 25 {
		t.Fatalf("p100 = %v, want exact max 25", h.Quantile(1))
	}
}

func TestHistogramExtremeQuantilesExact(t *testing.T) {
	// p0 and p100 return the exact observed extremes, not bucket
	// boundaries, and out-of-range q clamps to them.
	h := NewHistogram(100, 2, 8)
	for _, v := range []float64{101, 333, 999} {
		h.Add(v)
	}
	if got := h.Quantile(0); got != 101 {
		t.Fatalf("p0 = %v, want exact min 101", got)
	}
	if got := h.Quantile(1); got != 999 {
		t.Fatalf("p100 = %v, want exact max 999", got)
	}
	if got := h.Quantile(-0.5); got != 101 {
		t.Fatalf("Quantile(-0.5) = %v, want min 101", got)
	}
	if got := h.Quantile(1.5); got != 999 {
		t.Fatalf("Quantile(1.5) = %v, want max 999", got)
	}
	if h.Quantile(1) != h.Max() || h.Quantile(0) != h.Min() {
		t.Fatal("p100/p0 must equal Max()/Min()")
	}
}

func TestHistogramUnderflowInterpolatesFromZero(t *testing.T) {
	// Values below min all land in the underflow bucket [0, min). The
	// quantile must interpolate from 0 across that bucket instead of
	// reporting everything at the bucket's upper edge, so a distribution
	// concentrated below min still has a spread of quantiles.
	h := NewHistogram(1000, 2, 8)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100)) // all << min
	}
	p25, p50, p75 := h.Quantile(0.25), h.Quantile(0.5), h.Quantile(0.75)
	if !(p25 < p50 && p50 < p75) {
		t.Fatalf("underflow quantiles not spread: p25=%v p50=%v p75=%v", p25, p50, p75)
	}
	// Interpolating [0, 1000) linearly: p50 lands mid-bucket, nowhere
	// near the old answer of min=1000 (clamped to maxSeen=99).
	if p50 >= 99 {
		t.Fatalf("p50 = %v, want < maxSeen 99 (old edge-reporting behavior)", p50)
	}
	if p25 < 0 {
		t.Fatalf("p25 = %v, want >= 0", p25)
	}
}

func TestHistogramQuantileInterpolatesWithinBucket(t *testing.T) {
	// 100 observations spread across one wide bucket [64, 128): the
	// interpolated quantiles must fall strictly inside the bucket and
	// increase with q instead of all reporting the upper edge.
	h := NewHistogram(1, 2, 10)
	for i := 0; i < 100; i++ {
		h.Add(64 + float64(i)*0.64) // all in [64, 128)
	}
	p10, p90 := h.Quantile(0.1), h.Quantile(0.9)
	if !(p10 < p90) {
		t.Fatalf("within-bucket quantiles not spread: p10=%v p90=%v", p10, p90)
	}
	if p10 < 64 || p90 > 128 {
		t.Fatalf("quantiles escaped bucket: p10=%v p90=%v", p10, p90)
	}
}
