package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z := NewZipf(rng, 0.9, 100000)
	if z.N() != 100000 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	const draws = 200000
	for i := 0; i < draws; i++ {
		r := z.Draw()
		if r < 0 || r >= 100000 {
			t.Fatalf("rank %d out of range", r)
		}
		if r < 100 {
			counts[r]++
		}
	}
	// Rank 0 must be the most popular and p(0)/p(9) ~ 10^0.9 ~ 7.9.
	if counts[0] <= counts[9] {
		t.Fatalf("rank 0 (%d draws) should beat rank 9 (%d)", counts[0], counts[9])
	}
	ratio := float64(counts[0]) / float64(counts[9])
	if ratio < 4 || ratio > 14 {
		t.Errorf("p(0)/p(9) = %v, want ~7.9", ratio)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 0, 10)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Errorf("rank %d count %d deviates from uniform 10000", i, c)
		}
	}
}

func TestZipfInvalidN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	NewZipf(rand.New(rand.NewSource(1)), 1, 0)
}

func TestParetoBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := NewPareto(rng, 1.2, 1000, 1e7)
	for i := 0; i < 50000; i++ {
		v := p.Draw()
		if v < 1000 || v > 1e7 {
			t.Fatalf("sample %v outside [1000, 1e7]", v)
		}
	}
}

func TestParetoMeanMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := NewPareto(rng, 1.5, 100, 1e6)
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += p.Draw()
	}
	emp := sum / n
	ana := p.Mean()
	if math.Abs(emp-ana)/ana > 0.1 {
		t.Errorf("empirical mean %v vs analytic %v (>10%%)", emp, ana)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := NewPareto(rng, 1.1, 1, 1e6)
	small, large := 0, 0
	for i := 0; i < 100000; i++ {
		v := p.Draw()
		if v < 10 {
			small++
		}
		if v > 1e4 {
			large++
		}
	}
	if small < 80000 {
		t.Errorf("expected most mass near min, got %d/100000 below 10", small)
	}
	if large == 0 {
		t.Error("expected some heavy-tail samples above 1e4")
	}
}

func TestParetoInvalidParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ a, lo, hi float64 }{
		{0, 1, 2}, {1, 0, 2}, {1, 2, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPareto(%v,%v,%v) should panic", c.a, c.lo, c.hi)
				}
			}()
			NewPareto(rng, c.a, c.lo, c.hi)
		}()
	}
}

func TestExpMean(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	e := NewExp(rng, 250)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := e.Draw()
		if v < 0 {
			t.Fatalf("negative sample %v", v)
		}
		sum += v
	}
	if m := sum / n; math.Abs(m-250)/250 > 0.05 {
		t.Errorf("empirical mean %v, want ~250", m)
	}
}

func TestExpInvalidMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mean<=0")
		}
	}()
	NewExp(rand.New(rand.NewSource(1)), 0)
}
