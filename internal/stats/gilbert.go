package stats

import "math/rand"

// GEConfig parameterizes the Gilbert–Elliott two-state Markov loss
// model: the channel alternates between a good state (rare, independent
// loss) and a bad state (dense, bursty loss). Transitions are evaluated
// once per packet, so the mean burst length is 1/PBadToGood packets and
// the stationary bad-state probability is
// PGoodToBad/(PGoodToBad+PBadToGood).
type GEConfig struct {
	PGoodToBad float64 // per-packet transition probability good -> bad
	PBadToGood float64 // per-packet transition probability bad -> good
	LossGood   float64 // drop probability while in the good state
	LossBad    float64 // drop probability while in the bad state
}

// DefaultGEConfig is a moderate bursty-loss channel: ~2% of packets
// enter a burst, bursts last ~5 packets, and packets inside a burst are
// dropped 3 times out of 4.
func DefaultGEConfig() GEConfig {
	return GEConfig{PGoodToBad: 0.02, PBadToGood: 0.2, LossGood: 0, LossBad: 0.75}
}

// GilbertElliott is the model's per-channel state. Not safe for
// concurrent use; callers serialize (per-port in the simulator, under
// the fabric lock in live mode).
type GilbertElliott struct {
	cfg GEConfig
	rng *rand.Rand
	bad bool
}

// NewGilbertElliott returns a channel driven by rng, starting in the
// good state.
func NewGilbertElliott(rng *rand.Rand, cfg GEConfig) *GilbertElliott {
	return &GilbertElliott{cfg: cfg, rng: rng}
}

// Drop advances the state machine by one packet and reports whether
// that packet is lost.
func (g *GilbertElliott) Drop() bool {
	if g.bad {
		if g.rng.Float64() < g.cfg.PBadToGood {
			g.bad = false
		}
	} else {
		if g.rng.Float64() < g.cfg.PGoodToBad {
			g.bad = true
		}
	}
	p := g.cfg.LossGood
	if g.bad {
		p = g.cfg.LossBad
	}
	return p > 0 && g.rng.Float64() < p
}

// Bad reports whether the channel is currently in the bad (burst)
// state.
func (g *GilbertElliott) Bad() bool { return g.bad }
