package telemetry

import (
	"math"
	"math/bits"
	"strconv"
	"sync/atomic"
)

// LogHist is a fast-path-safe latency histogram: log-linear buckets
// (exact below 2^lhSubBits, then lhSubCount sub-buckets per power of
// two, HdrHistogram-style) striped across lhStripes independent count
// arrays so concurrent observers on different cores do not contend on
// the same cache lines. Observe is two relaxed atomic adds plus a
// bits.Len64 — cheap enough to call from the per-packet run loop under
// the <5% telemetry overhead gate, provided callers sample (the RTT
// sampler observes 1-in-64 ACKs, mirroring the cycle sampling).
//
// The existing Histogram (hist.go) stays the off-path choice: float
// bounds, arbitrary bucket layouts, CAS float sums. LogHist trades that
// flexibility for integer-only atomics and a fixed layout.
type LogHist struct {
	stripes [lhStripes]lhStripe
}

const (
	lhSubBits  = 3
	lhSubCount = 1 << lhSubBits // sub-buckets per power of two
	// Buckets: lhSubCount exact unit buckets [0,1)..[7,8), then
	// lhSubCount per octave for exponents lhSubBits..63.
	lhBuckets = lhSubCount + (64-lhSubBits)*lhSubCount
	// lhStripes must be a power of two (Observe masks the hint).
	lhStripes = 8
)

// lhStripe pads to its own cache-line neighborhood; the counts array is
// large enough that only the trailing sum shares lines across stripes,
// hence the explicit pad.
type lhStripe struct {
	counts [lhBuckets]atomic.Uint64
	sum    atomic.Uint64
	_      [56]byte
}

// lhBucketOf maps a value to its bucket index.
func lhBucketOf(v uint64) int {
	if v < lhSubCount {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - 1 // >= lhSubBits
	sub := (v >> (exp - lhSubBits)) & (lhSubCount - 1)
	return int(uint64(exp-lhSubBits)*lhSubCount + lhSubCount + sub)
}

// lhBucketLow returns bucket b's inclusive lower bound.
func lhBucketLow(b int) float64 {
	if b < lhSubCount {
		return float64(b)
	}
	rest := b - lhSubCount
	exp := uint(rest/lhSubCount) + lhSubBits
	sub := uint64(rest % lhSubCount)
	return float64(uint64(1)<<exp) + float64(sub)*float64(uint64(1)<<(exp-lhSubBits))
}

// lhBucketHigh returns bucket b's exclusive upper bound.
func lhBucketHigh(b int) float64 {
	if b+1 >= lhBuckets {
		return math.MaxUint64
	}
	return lhBucketLow(b + 1)
}

// Observe records one value. hint selects the stripe — pass a core
// index (or any cheap per-caller integer) so concurrent observers
// spread; correctness does not depend on it.
func (h *LogHist) Observe(v uint64, hint int) {
	st := &h.stripes[hint&(lhStripes-1)]
	st.counts[lhBucketOf(v)].Add(1)
	st.sum.Add(v)
}

// merge folds the stripes into one bucket array.
func (h *LogHist) merge() (counts [lhBuckets]uint64, total, sum uint64) {
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := 0; b < lhBuckets; b++ {
			c := st.counts[b].Load()
			counts[b] += c
			total += c
		}
		sum += st.sum.Load()
	}
	return counts, total, sum
}

// Count returns the number of observations.
func (h *LogHist) Count() uint64 {
	_, total, _ := h.merge()
	return total
}

// Sum returns the sum of observed values.
func (h *LogHist) Sum() uint64 {
	_, _, sum := h.merge()
	return sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the containing bucket. The first bucket
// interpolates from 0, not from the bucket's lower bound — an
// all-underflow distribution reports sub-bucket quantiles instead of
// pinning to the bucket edge. Returns 0 when empty.
func (h *LogHist) Quantile(q float64) float64 {
	counts, total, _ := h.merge()
	return lhQuantile(&counts, total, q)
}

// Quantiles evaluates several quantiles over one merged snapshot.
func (h *LogHist) Quantiles(qs ...float64) []float64 {
	counts, total, _ := h.merge()
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = lhQuantile(&counts, total, q)
	}
	return out
}

func lhQuantile(counts *[lhBuckets]uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for b := 0; b < lhBuckets; b++ {
		c := counts[b]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := lhBucketLow(b), lhBucketHigh(b)
			frac := float64(rank-cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return lhBucketHigh(lhBuckets - 1) // unreachable: rank <= total
}

// Mean returns the average observed value (0 when empty).
func (h *LogHist) Mean() float64 {
	_, total, sum := h.merge()
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}

// lhQuantiles is the summary quantile set RegisterLogHist exposes.
var lhQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// RegisterLogHist registers h as a Prometheus-style summary: one gauge
// per quantile in lhQuantiles (label quantile="0.5"...), plus
// name_count and name_sum counters. Exposing interpolated quantiles
// instead of ~500 _bucket series keeps the scrape surface small; the
// raw distribution stays queryable in-process.
func (r *Registry) RegisterLogHist(name, help string, h *LogHist, labels ...Label) {
	for _, q := range lhQuantiles {
		q := q
		ql := make([]Label, 0, len(labels)+1)
		ql = append(ql, labels...)
		ql = append(ql, L("quantile", strconv.FormatFloat(q, 'g', -1, 64)))
		r.GaugeFunc(name, help, func() float64 { return h.Quantile(q) }, ql...)
	}
	r.CounterFunc(name+"_count", help+" (observation count).",
		func() float64 { return float64(h.Count()) }, labels...)
	r.CounterFunc(name+"_sum", help+" (sum of observed values).",
		func() float64 { return float64(h.Sum()) }, labels...)
}
