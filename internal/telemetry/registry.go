package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one metric dimension, e.g. {"core", "3"}.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricKind distinguishes monotonic counters from point-in-time
// gauges in the exposition output.
type MetricKind uint8

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
)

func (k MetricKind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

// metric is one registered time series: a name, help text, a fixed
// label set, and a read function sampled at scrape time.
type metric struct {
	name   string
	help   string
	kind   MetricKind
	labels []Label
	read   func() float64
}

func (m *metric) labelString() string {
	if len(m.labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range m.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry is the unified metrics surface: every counter, gauge, and
// derived statistic of a service registers here once and is sampled at
// scrape time. Registration takes a mutex; reads of hot-path Counters
// are lock-free — the registry only merges their stripes when scraped.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter allocates a striped lock-free counter and registers it.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, func() float64 { return float64(c.Value()) }, labels...)
	return c
}

// CounterFunc registers a counter whose value is sampled from read at
// scrape time — the bridge for pre-existing atomic counters.
func (r *Registry) CounterFunc(name, help string, read func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, kind: KindCounter, labels: labels, read: read})
}

// GaugeFunc registers a gauge sampled from read at scrape time.
func (r *Registry) GaugeFunc(name, help string, read func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, kind: KindGauge, labels: labels, read: read})
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// snapshot returns the metric list sorted by (name, labels) so series
// sharing a name group together under one HELP/TYPE header.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].labelString() < ms[j].labelString()
	})
	return ms
}

// WriteText writes the registry in Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	var b strings.Builder
	prev := ""
	for _, m := range r.snapshot() {
		if m.name != prev {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
			prev = m.name
		}
		fmt.Fprintf(&b, "%s%s %s\n", m.name, m.labelString(),
			strconv.FormatFloat(m.read(), 'g', -1, 64))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Sample is one scraped series for the JSON exposition.
type Sample struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// Samples scrapes every registered series.
func (r *Registry) Samples() []Sample {
	ms := r.snapshot()
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Kind: m.kind.String(), Value: m.read()}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON writes the registry as a JSON array of samples.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // flow keys contain "->"
	enc.SetIndent("", "  ")
	return enc.Encode(r.Samples())
}
