package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterStripesMerge(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(core)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
	c.Add(100, 5) // out-of-range hint must not panic
	if got := c.Value(); got != workers*per+5 {
		t.Fatalf("Value after Add = %d, want %d", got, workers*per+5)
	}
}

func TestRegistryTextExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tas_rx_packets_total", "Packets received.", L("core", "0"))
	c.Add(0, 42)
	r.Counter("tas_rx_packets_total", "Packets received.", L("core", "1")).Add(1, 7)
	r.GaugeFunc("tas_flows", "Live flows.", func() float64 { return 3 })

	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP tas_rx_packets_total Packets received.",
		"# TYPE tas_rx_packets_total counter",
		`tas_rx_packets_total{core="0"} 42`,
		`tas_rx_packets_total{core="1"} 7`,
		"# TYPE tas_flows gauge",
		"tas_flows 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// HELP/TYPE headers must appear once per metric name, not per series.
	if n := strings.Count(out, "# TYPE tas_rx_packets_total"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1", n)
	}
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(0, 9)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	if err := json.Unmarshal(b.Bytes(), &samples); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(samples) != 1 || samples[0].Name != "a_total" || samples[0].Value != 9 {
		t.Fatalf("unexpected samples: %+v", samples)
	}
}

func TestFlowRingWrapAround(t *testing.T) {
	clock := int64(0)
	r := NewFlowRing("k", 4, func() int64 { clock++; return clock })
	for i := 0; i < 10; i++ {
		r.Record(FESegTx, uint32(i), 0, 100, 0)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint32(6 + i); ev.Seq != want {
			t.Errorf("event %d seq = %d, want %d (oldest-first after wrap)", i, ev.Seq, want)
		}
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Errorf("Total/Dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
}

func TestRecorderLifecycle(t *testing.T) {
	rc := NewRecorder(8, 2, func() int64 { return 0 })
	a := rc.Ring("a")
	if rc.Ring("a") != a {
		t.Fatal("Ring should return the same live ring for a key")
	}
	a.Record(FEEstablished, 0, 0, 0, 0)
	rc.Ring("b")
	rc.Ring("c")

	if got := rc.LiveKeys(); len(got) != 3 {
		t.Fatalf("LiveKeys = %v, want 3 keys", got)
	}
	rc.Retire("a")
	rc.Retire("b")
	rc.Retire("c") // retiredMax=2: "a" evicted
	if rc.Lookup("a") != nil {
		t.Error("ring a should have been evicted from the retired list")
	}
	if r := rc.Lookup("b"); r == nil {
		t.Error("ring b should still be retired")
	}
	if got := rc.RetiredKeys(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Errorf("RetiredKeys = %v, want [b c]", got)
	}
	rc.Retire("nope") // unknown key must be a no-op
}

func TestRecorderConcurrentWriters(t *testing.T) {
	tm := New(Config{Enabled: true, FlightRingSize: 16}, 2)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ring := tm.Recorder.Ring("shared")
			for i := 0; i < 1000; i++ {
				ring.Record(FESegRx, uint32(i), 0, 0, 0)
			}
		}()
	}
	wg.Wait()
	if got := tm.Recorder.Ring("shared").Total(); got != 4000 {
		t.Fatalf("Total = %d, want 4000", got)
	}
}

func TestCycleStats(t *testing.T) {
	c := NewCycleStats(2)
	c.AddFast(0, ModRx, 1000, 10)
	c.AddFast(1, ModRx, 500, 5)
	c.AddFast(99, ModTx, 100, 1) // out-of-range core clamps to 0
	c.AddSlow(ModCC, 2000, 3)
	c.AddApp(ModAppCopy, 300, 2)

	if got := c.Total(ModRx); got.Nanos != 1500 || got.Items != 15 {
		t.Errorf("Total(rx) = %+v", got)
	}
	if got := c.Get(0, ModTx); got.Nanos != 100 {
		t.Errorf("clamped AddFast lost: %+v", got)
	}
	if got := c.Get(2, ModCC); got.Nanos != 2000 {
		t.Errorf("slow row = %+v", got)
	}
	if got := c.Get(3, ModAppCopy); got.Items != 2 {
		t.Errorf("app row = %+v", got)
	}
	if c.RowName(0) != "core0" || c.RowName(2) != "slow" || c.RowName(3) != "app" {
		t.Errorf("row names: %s %s %s", c.RowName(0), c.RowName(2), c.RowName(3))
	}

	var b bytes.Buffer
	if err := c.WriteBreakdown(&b, 2.1, 15); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"rx", "cc", "app-copy", "cycles/pkt"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "timer") {
		t.Errorf("breakdown should skip empty modules:\n%s", out)
	}
}

func TestCycleStatsRegister(t *testing.T) {
	c := NewCycleStats(1)
	c.AddFast(0, ModRx, 100, 1)
	r := NewRegistry()
	c.Register(r)
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `tas_cycles_nanos_total{core="core0",module="rx"} 100`) {
		t.Errorf("registry missing cycle series:\n%s", b.String())
	}
}

func TestHTTPHandler(t *testing.T) {
	tm := New(Config{Enabled: true}, 1)
	tm.Registry.Counter("tas_test_total", "Test.").Add(0, 1)
	ring := tm.Recorder.Ring("1.2.3.4:5->6.7.8.9:10")
	ring.Record(FESynTx, 1, 0, 0, 0)
	ring.Record(FEEstablished, 1, 1, 0, 0)

	srv := httptest.NewServer(tm.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		if _, err := b.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "tas_test_total 1") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"tas_test_total"`) {
		t.Errorf("/metrics.json: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/flows"); code != 200 || !strings.Contains(body, `"syn-tx"`) {
		t.Errorf("/debug/flows: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/flows?flow=1.2.3.4:5-%3E6.7.8.9:10"); code != 200 ||
		!strings.Contains(body, "established") {
		t.Errorf("/debug/flows?flow=: code=%d body=%q", code, body)
	}
	if code, _ := get("/debug/flows?flow=unknown"); code != 404 {
		t.Errorf("unknown flow should 404, got %d", code)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := FESynTx; k <= FEAppRecv; k++ {
		if strings.HasPrefix(k.String(), "event(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}
