package telemetry

import (
	"math"
	"strconv"
	"sync/atomic"
)

// Histogram is a fixed-bound cumulative histogram with lock-free
// observation, exposed in Prometheus histogram convention
// (name_bucket{le="..."} / name_sum / name_count). It exists for
// control-plane events that have a duration distribution rather than a
// monotonic count — slow-path outages, recovery times — so Observe is
// called off the packet path and favors simplicity over striping.
type Histogram struct {
	bounds []float64       // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (the +Inf bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// DurationBounds are upper bounds (seconds) suited to control-plane
// outage and recovery durations: 1ms to ~67s in powers of four.
func DurationBounds() []float64 {
	return []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// cumulative returns the count of observations ≤ bounds[i] (Prometheus
// buckets are cumulative).
func (h *Histogram) cumulative(i int) uint64 {
	var c uint64
	for j := 0; j <= i; j++ {
		c += h.counts[j].Load()
	}
	return c
}

// RegisterHistogram exposes h under name in Prometheus histogram
// convention: one cumulative name_bucket series per bound plus the
// implicit +Inf bucket, and name_sum / name_count.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	for i, b := range h.bounds {
		i := i
		le := strconv.FormatFloat(b, 'g', -1, 64)
		r.CounterFunc(name+"_bucket", help,
			func() float64 { return float64(h.cumulative(i)) },
			append(append([]Label(nil), labels...), L("le", le))...)
	}
	r.CounterFunc(name+"_bucket", help,
		func() float64 { return float64(h.Count()) },
		append(append([]Label(nil), labels...), L("le", "+Inf"))...)
	r.CounterFunc(name+"_count", help, func() float64 { return float64(h.Count()) }, labels...)
	r.CounterFunc(name+"_sum", help, func() float64 { return h.Sum() }, labels...)
}
