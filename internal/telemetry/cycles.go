package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
)

// Module names one stage of the stack for cycle attribution — the rows
// of the paper's Table 1 style breakdown.
type Module uint8

// Cycle-accounting modules.
const (
	ModRx      Module = iota // fast-path receive processing
	ModTx                    // fast-path transmit processing
	ModCC                    // slow-path congestion-control sweep
	ModTimer                 // slow-path handshake/close/retransmit timers
	ModReaper                // slow-path app-liveness reaping
	ModAppCopy               // libtas payload copies in/out of app buffers
	ModMigrate               // slow-path core-failure flow migration
	ModOther                 // everything unattributed
	NumModules
)

var modNames = [NumModules]string{"rx", "tx", "cc", "timer", "reaper", "app-copy", "migrate", "other"}

func (m Module) String() string {
	if int(m) < len(modNames) {
		return modNames[m]
	}
	return fmt.Sprintf("mod(%d)", uint8(m))
}

// cycleCell accumulates one (row, module) pair: nanoseconds of wall
// time spent and items (packets, events, copies) processed. Padded so
// adjacent cells never share a cache line across cores.
type cycleCell struct {
	nanos atomic.Int64
	items atomic.Uint64
	_     [48]byte
}

// CycleStats attributes executed time per core per module. Rows
// 0..fastCores-1 are the fast-path cores; two extra rows hold the slow
// path and the application/libtas side. Live-path callers record wall
// nanoseconds (converted to cycles at a configured clock rate when
// reported); the simulation records modeled cycles directly via
// cpumodel.Core.ExecMod feeding AddFast.
type CycleStats struct {
	fastCores int
	cells     []cycleCell // (fastCores+2) * NumModules
}

// NewCycleStats sizes the account for fastCores fast-path rows plus the
// slow-path and app rows.
func NewCycleStats(fastCores int) *CycleStats {
	if fastCores < 1 {
		fastCores = 1
	}
	return &CycleStats{
		fastCores: fastCores,
		cells:     make([]cycleCell, (fastCores+2)*int(NumModules)),
	}
}

// FastCores returns the number of fast-path rows.
func (c *CycleStats) FastCores() int { return c.fastCores }

// Rows returns the total row count (fast cores + slow + app).
func (c *CycleStats) Rows() int { return c.fastCores + 2 }

// RowName labels a row for display: "core0".."coreN", "slow", "app".
func (c *CycleStats) RowName(row int) string {
	switch {
	case row < c.fastCores:
		return fmt.Sprintf("core%d", row)
	case row == c.fastCores:
		return "slow"
	default:
		return "app"
	}
}

func (c *CycleStats) cell(row int, m Module) *cycleCell {
	return &c.cells[row*int(NumModules)+int(m)]
}

// AddFast charges nanos of time and items of work to module m on
// fast-path core (clamped into range for safety against bad hints).
// Callers using sampled timing pass nanos == 0 on unsampled batches;
// the zero check keeps those calls to a single atomic RMW.
func (c *CycleStats) AddFast(core int, m Module, nanos int64, items uint64) {
	if core < 0 || core >= c.fastCores {
		core = 0
	}
	cl := c.cell(core, m)
	if nanos != 0 {
		cl.nanos.Add(nanos)
	}
	cl.items.Add(items)
}

// AddSlow charges the slow-path row.
func (c *CycleStats) AddSlow(m Module, nanos int64, items uint64) {
	cl := c.cell(c.fastCores, m)
	if nanos != 0 {
		cl.nanos.Add(nanos)
	}
	cl.items.Add(items)
}

// AddApp charges the application/libtas row.
func (c *CycleStats) AddApp(m Module, nanos int64, items uint64) {
	cl := c.cell(c.fastCores+1, m)
	if nanos != 0 {
		cl.nanos.Add(nanos)
	}
	cl.items.Add(items)
}

// ModuleTotal is the accumulated account of one (row, module) pair.
type ModuleTotal struct {
	Nanos int64
	Items uint64
}

// Get reads one (row, module) account.
func (c *CycleStats) Get(row int, m Module) ModuleTotal {
	cl := c.cell(row, m)
	return ModuleTotal{Nanos: cl.nanos.Load(), Items: cl.items.Load()}
}

// Total sums a module's account across all rows.
func (c *CycleStats) Total(m Module) ModuleTotal {
	var t ModuleTotal
	for row := 0; row < c.Rows(); row++ {
		g := c.Get(row, m)
		t.Nanos += g.Nanos
		t.Items += g.Items
	}
	return t
}

// WriteBreakdown prints a Table-1-style per-module breakdown: for each
// module, total time, items, and — when packets > 0 — cycles/packet at
// the given clock rate (cycles per nanosecond). Rows with no recorded
// time are skipped.
func (c *CycleStats) WriteBreakdown(w io.Writer, cyclesPerNs float64, packets uint64) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %12s %12s %14s\n", "module", "time(ms)", "items", "cycles/pkt")
	for m := Module(0); m < NumModules; m++ {
		t := c.Total(m)
		if t.Nanos == 0 && t.Items == 0 {
			continue
		}
		cpp := "-"
		if packets > 0 {
			cpp = fmt.Sprintf("%.0f", float64(t.Nanos)*cyclesPerNs/float64(packets))
		}
		fmt.Fprintf(&b, "%-10s %12.2f %12d %14s\n",
			m, float64(t.Nanos)/1e6, t.Items, cpp)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Register exposes the cycle account through a metrics registry as
// tas_cycles_nanos_total / tas_cycles_items_total labeled by row and
// module.
func (c *CycleStats) Register(r *Registry) {
	for row := 0; row < c.Rows(); row++ {
		for m := Module(0); m < NumModules; m++ {
			row, m := row, m
			labels := []Label{L("core", c.RowName(row)), L("module", m.String())}
			r.CounterFunc("tas_cycles_nanos_total",
				"Wall nanoseconds attributed to a stack module on a core.",
				func() float64 { return float64(c.Get(row, m).Nanos) }, labels...)
			r.CounterFunc("tas_cycles_items_total",
				"Work items (packets, events, copies) attributed to a stack module on a core.",
				func() float64 { return float64(c.Get(row, m).Items) }, labels...)
		}
	}
}
