package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// TimeSeries records periodic snapshots of a Registry into a bounded
// ring, turning the point-in-time scrape surface into a short history:
// "what did p99 RTT and the rx-ring depth do across the fault window"
// instead of only end-state counters. Storage is columnar — the series
// identity list is captured once, each tick appends one float per
// series — so a few minutes of 100ms snapshots stays small enough to
// embed in scenario run reports.
type TimeSeries struct {
	reg      *Registry
	interval time.Duration
	capacity int

	mu      sync.Mutex
	start   time.Time
	keys    []string  // canonical name+labels per column
	samples []Sample  // column identities (Value unused)
	atMS    []float64 // ring of snapshot offsets
	rows    [][]float64
	dropped int // snapshots evicted by the ring bound

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewTimeSeries builds a recorder over reg. interval <= 0 defaults to
// 100ms; capacity <= 0 defaults to 600 points (one minute at the
// default interval). The recorder is inert until Start.
func NewTimeSeries(reg *Registry, interval time.Duration, capacity int) *TimeSeries {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = 600
	}
	return &TimeSeries{
		reg:      reg,
		interval: interval,
		capacity: capacity,
		start:    time.Now(),
		stop:     make(chan struct{}),
	}
}

// Start launches the snapshot ticker. Idempotent via Stop: a stopped
// recorder stays stopped.
func (ts *TimeSeries) Start() {
	ts.mu.Lock()
	ts.start = time.Now()
	ts.mu.Unlock()
	ts.wg.Add(1)
	go func() {
		defer ts.wg.Done()
		tk := time.NewTicker(ts.interval)
		defer tk.Stop()
		for {
			select {
			case <-ts.stop:
				return
			case <-tk.C:
				ts.Snap()
			}
		}
	}()
}

// Stop halts the ticker; recorded points remain readable.
func (ts *TimeSeries) Stop() {
	ts.stopOnce.Do(func() { close(ts.stop) })
	ts.wg.Wait()
}

// sampleKey canonicalizes a sample's identity (labels sorted).
func sampleKey(s Sample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Snap takes one snapshot now (the ticker calls this; tests and report
// finalization may force a final point).
func (ts *TimeSeries) Snap() {
	samples := ts.reg.Samples()
	ts.mu.Lock()
	defer ts.mu.Unlock()

	// The column set is fixed at the first snapshot. Metric registration
	// happens during service construction, before the recorder starts,
	// so a changed set means a structurally new registry: restart the
	// ring rather than mis-align columns.
	match := len(samples) == len(ts.keys)
	if match {
		for i := range samples {
			if sampleKey(samples[i]) != ts.keys[i] {
				match = false
				break
			}
		}
	}
	if !match {
		ts.keys = make([]string, len(samples))
		ts.samples = make([]Sample, len(samples))
		for i := range samples {
			ts.keys[i] = sampleKey(samples[i])
			ts.samples[i] = samples[i]
		}
		ts.atMS = ts.atMS[:0]
		ts.rows = ts.rows[:0]
	}

	row := make([]float64, len(samples))
	for i := range samples {
		row[i] = samples[i].Value
	}
	ts.atMS = append(ts.atMS, float64(time.Since(ts.start).Microseconds())/1000)
	ts.rows = append(ts.rows, row)
	if len(ts.rows) > ts.capacity {
		n := len(ts.rows) - ts.capacity
		ts.atMS = append(ts.atMS[:0], ts.atMS[n:]...)
		ts.rows = append(ts.rows[:0], ts.rows[n:]...)
		ts.dropped += n
	}
}

// SeriesData is one metric's trajectory in a dump.
type SeriesData struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Values []float64         `json:"values"`
}

// SeriesDump is the exported (JSON) shape of a TimeSeries: a shared
// time axis plus one value vector per registered series.
type SeriesDump struct {
	StartedAt  time.Time    `json:"started_at"`
	IntervalMS float64      `json:"interval_ms"`
	Dropped    int          `json:"dropped_points,omitempty"`
	AtMS       []float64    `json:"at_ms"`
	Series     []SeriesData `json:"series"`
}

// Dump exports the recorded window.
func (ts *TimeSeries) Dump() *SeriesDump {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	d := &SeriesDump{
		StartedAt:  ts.start,
		IntervalMS: float64(ts.interval.Microseconds()) / 1000,
		Dropped:    ts.dropped,
		AtMS:       append([]float64(nil), ts.atMS...),
	}
	for col, s := range ts.samples {
		vals := make([]float64, len(ts.rows))
		for i, row := range ts.rows {
			vals[i] = row[col]
		}
		d.Series = append(d.Series, SeriesData{
			Name: s.Name, Kind: s.Kind, Labels: s.Labels, Values: vals,
		})
	}
	return d
}

// WriteJSON writes the dump.
func (ts *TimeSeries) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(ts.Dump())
}

// Points returns how many snapshots the ring currently holds.
func (ts *TimeSeries) Points() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.rows)
}

// Values returns the trajectory of the series matching name and every
// given label (nil labels matches the unlabeled series with that name),
// or nil if no such series was recorded.
func (d *SeriesDump) Values(name string, labels map[string]string) []float64 {
	for _, s := range d.Series {
		if s.Name != name || len(s.Labels) != len(labels) {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Values
		}
	}
	return nil
}

// Max returns the maximum recorded value of the matching series; ok is
// false when the series is absent or empty.
func (d *SeriesDump) Max(name string, labels map[string]string) (float64, bool) {
	vals := d.Values(name, labels)
	if len(vals) == 0 {
		return 0, false
	}
	max := vals[0]
	for _, v := range vals[1:] {
		if v > max {
			max = v
		}
	}
	return max, true
}
