package telemetry

import (
	"math"
	"sort"
	"testing"
)

func TestLogHistBucketMappingRoundTrip(t *testing.T) {
	// Every bucket's inclusive low and high integer edges must map back
	// to that bucket. Edges are sums of two powers of two, so the
	// float64 bounds convert to uint64 exactly.
	for b := 0; b < lhBuckets-1; b++ {
		lo := uint64(lhBucketLow(b))
		hi := uint64(lhBucketLow(b+1)) - 1
		if got := lhBucketOf(lo); got != b {
			t.Fatalf("bucket %d: low %d maps to bucket %d", b, lo, got)
		}
		if got := lhBucketOf(hi); got != b {
			t.Fatalf("bucket %d: high %d maps to bucket %d", b, hi, got)
		}
	}
	if lhBucketOf(math.MaxUint64) != lhBuckets-1 {
		t.Fatal("MaxUint64 must land in the top bucket")
	}
}

func TestLogHistQuantileTable(t *testing.T) {
	cases := []struct {
		name string
		obs  []uint64
		qs   map[float64]uint64 // q -> expected value
		// tolFrac is the allowed relative error (log-linear buckets are
		// ~12.5% wide above the exact range; exact below 8).
		tolFrac float64
	}{
		{
			name:    "empty",
			obs:     nil,
			qs:      map[float64]uint64{0: 0, 0.5: 0, 1: 0},
			tolFrac: 0,
		},
		{
			// A single observation interpolates to its bucket's upper
			// edge (frac = 1/1); unlike stats.Histogram there is no
			// exact min/max to clamp to, so 0 reports as 1 — one unit
			// bucket of quantization error.
			name:    "single-zero",
			obs:     []uint64{0},
			qs:      map[float64]uint64{0: 1, 0.5: 1, 0.99: 1, 1: 1},
			tolFrac: 0,
		},
		{
			// Values < 8 live in exact unit buckets [v, v+1): the last
			// rank in a bucket interpolates to the upper edge v+1.
			name: "small-exact",
			obs:  []uint64{1, 2, 3, 4, 5, 6, 7},
			qs: map[float64]uint64{
				0.142857: 2, // rank 1 -> bucket [1,2)
				0.5:      5, // rank 4 -> bucket [4,5)
				1:        8, // rank 7 -> bucket [7,8)
			},
			tolFrac: 0,
		},
		{
			name: "uniform-1k",
			obs:  seq(1, 1000),
			qs: map[float64]uint64{
				0.5:   500,
				0.9:   900,
				0.99:  990,
				0.999: 999,
			},
			tolFrac: 0.14,
		},
		{
			name: "bimodal",
			obs:  append(repeat(10, 900), repeat(100000, 100)...),
			qs: map[float64]uint64{
				0.5:  10,
				0.95: 100000,
			},
			tolFrac: 0.14,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := &LogHist{}
			for i, v := range tc.obs {
				h.Observe(v, i) // spread across stripes
			}
			if h.Count() != uint64(len(tc.obs)) {
				t.Fatalf("Count = %d, want %d", h.Count(), len(tc.obs))
			}
			var sum uint64
			for _, v := range tc.obs {
				sum += v
			}
			if h.Sum() != sum {
				t.Fatalf("Sum = %d, want %d", h.Sum(), sum)
			}
			for q, want := range tc.qs {
				got := h.Quantile(q)
				if want == 0 {
					if got != 0 {
						t.Errorf("Quantile(%v) = %v, want 0", q, got)
					}
					continue
				}
				if err := math.Abs(got-float64(want)) / float64(want); err > tc.tolFrac {
					t.Errorf("Quantile(%v) = %v, want %d ±%.0f%%", q, got, want, tc.tolFrac*100)
				}
			}
		})
	}
}

func TestLogHistQuantileMonotoneAndBounded(t *testing.T) {
	h := &LogHist{}
	vals := []uint64{3, 17, 17, 17, 250, 4096, 4097, 1 << 20, 1<<40 + 12345}
	for i, v := range vals {
		h.Observe(v, i)
	}
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v (not monotone)", q, v, prev)
		}
		prev = v
	}
	// p100 must not exceed the containing bucket of the true max by more
	// than the bucket width (~12.5%).
	if maxQ := h.Quantile(1); maxQ > float64(sorted[len(sorted)-1])*1.125+1 {
		t.Fatalf("p100 = %v exaggerates max %d", maxQ, sorted[len(sorted)-1])
	}
}

func TestLogHistFirstBucketInterpolatesFromZero(t *testing.T) {
	// 100 zeros: every quantile stays inside [0, 1) — the first bucket
	// interpolates from 0, it does not report its upper edge.
	h := &LogHist{}
	for i := 0; i < 100; i++ {
		h.Observe(0, i)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if v := h.Quantile(q); v < 0 || v >= 1 {
			t.Fatalf("all-zero Quantile(%v) = %v, want within [0, 1)", q, v)
		}
	}
}

func TestLogHistStripesMergeOnRead(t *testing.T) {
	h := &LogHist{}
	// Same value through every stripe hint: the scrape-side merge must
	// see all of them.
	for i := 0; i < 4*lhStripes; i++ {
		h.Observe(1000, i)
	}
	if h.Count() != 4*lhStripes {
		t.Fatalf("Count = %d, want %d", h.Count(), 4*lhStripes)
	}
	if h.Mean() < 900 || h.Mean() > 1100 {
		t.Fatalf("Mean = %v, want ~1000", h.Mean())
	}
}

func TestLogHistQuantilesBatch(t *testing.T) {
	h := &LogHist{}
	for _, v := range seq(1, 100) {
		h.Observe(v, 0)
	}
	qs := h.Quantiles(0.5, 0.99)
	if len(qs) != 2 {
		t.Fatalf("Quantiles returned %d values", len(qs))
	}
	if qs[0] != h.Quantile(0.5) || qs[1] != h.Quantile(0.99) {
		t.Fatal("Quantiles batch disagrees with single-q calls")
	}
}

func TestRegisterLogHist(t *testing.T) {
	r := NewRegistry()
	h := &LogHist{}
	for _, v := range seq(1, 1000) {
		h.Observe(v, 0)
	}
	r.RegisterLogHist("tas_x_us", "Test latency.", h, L("src", "test"))
	var got []Sample
	for _, s := range r.Samples() {
		if s.Name == "tas_x_us" || s.Name == "tas_x_us_count" || s.Name == "tas_x_us_sum" {
			got = append(got, s)
		}
	}
	// 4 quantile gauges + count + sum.
	if len(got) != 6 {
		t.Fatalf("registered %d series, want 6: %+v", len(got), got)
	}
	for _, s := range got {
		if s.Labels["src"] != "test" {
			t.Fatalf("series %s lost the src label: %v", s.Name, s.Labels)
		}
		switch s.Name {
		case "tas_x_us_count":
			if s.Value != 1000 {
				t.Fatalf("count = %v", s.Value)
			}
		case "tas_x_us_sum":
			if s.Value != 500500 {
				t.Fatalf("sum = %v", s.Value)
			}
		default:
			if s.Labels["quantile"] == "" {
				t.Fatalf("quantile gauge missing quantile label: %+v", s)
			}
		}
	}
}

func seq(lo, hi uint64) []uint64 {
	out := make([]uint64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, v)
	}
	return out
}

func repeat(v uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
