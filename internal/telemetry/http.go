package telemetry

import "net/http"

// Handler returns the telemetry HTTP surface:
//
//	/metrics          Prometheus text exposition of the registry
//	/metrics.json     the same registry as a JSON array
//	/debug/flows      all flight-recorder rings as JSON; ?flow=KEY
//	                  renders one flow's ring as a text timeline
//	/debug/timeseries the recorded registry time series as JSON
//
// Mount it wherever convenient (tasd exposes it behind -metrics-addr).
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, _ *http.Request) {
		if t.Series == nil {
			http.Error(w, "time-series recording disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.Series.WriteJSON(w)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = t.Registry.WriteText(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = t.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/debug/flows", func(w http.ResponseWriter, req *http.Request) {
		if key := req.URL.Query().Get("flow"); key != "" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := t.Recorder.WriteFlowText(w, key); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = t.Recorder.WriteJSON(w)
	})
	return mux
}
