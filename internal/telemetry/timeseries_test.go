package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func tsFixture() (*Registry, *Counter) {
	r := NewRegistry()
	c := r.Counter("tas_ts_ops_total", "Ops.", L("core", "0"))
	r.GaugeFunc("tas_ts_depth", "Depth.", func() float64 { return 5 })
	return r, c
}

func TestTimeSeriesSnapAndValues(t *testing.T) {
	r, c := tsFixture()
	ts := NewTimeSeries(r, time.Hour, 10) // manual Snap only
	c.Add(0, 1)
	ts.Snap()
	c.Add(0, 2)
	ts.Snap()
	d := ts.Dump()
	if len(d.AtMS) != 2 {
		t.Fatalf("points = %d, want 2", len(d.AtMS))
	}
	vals := d.Values("tas_ts_ops_total", map[string]string{"core": "0"})
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("counter trajectory = %v, want [1 3]", vals)
	}
	if max, ok := d.Max("tas_ts_depth", nil); !ok || max != 5 {
		t.Fatalf("gauge max = %v ok=%v, want 5 true", max, ok)
	}
	if _, ok := d.Max("tas_nope", nil); ok {
		t.Fatal("Max found a series that does not exist")
	}
	if at := d.AtMS; at[1] < at[0] {
		t.Fatalf("snapshot offsets not monotone: %v", at)
	}
}

func TestTimeSeriesEvictsOverCapacity(t *testing.T) {
	r, c := tsFixture()
	ts := NewTimeSeries(r, time.Hour, 3)
	for i := 0; i < 10; i++ {
		c.Add(0, 1)
		ts.Snap()
	}
	d := ts.Dump()
	if len(d.AtMS) != 3 {
		t.Fatalf("points = %d, want capacity 3", len(d.AtMS))
	}
	if d.Dropped != 7 {
		t.Fatalf("dropped = %d, want 7", d.Dropped)
	}
	vals := d.Values("tas_ts_ops_total", map[string]string{"core": "0"})
	if len(vals) != 3 || vals[2] != 10 {
		t.Fatalf("kept values = %v, want last three ending in 10", vals)
	}
}

func TestTimeSeriesColumnChangeResets(t *testing.T) {
	r, c := tsFixture()
	ts := NewTimeSeries(r, time.Hour, 10)
	c.Add(0, 1)
	ts.Snap()
	// Registering a new series changes the column set: the ring resets
	// rather than misaligning old rows against new columns.
	r.GaugeFunc("tas_ts_new", "Late registration.", func() float64 { return 1 })
	ts.Snap()
	d := ts.Dump()
	if len(d.AtMS) != 1 {
		t.Fatalf("points after column change = %d, want 1 (reset)", len(d.AtMS))
	}
	if _, ok := d.Max("tas_ts_new", nil); !ok {
		t.Fatal("new column missing after reset")
	}
}

func TestTimeSeriesStartStop(t *testing.T) {
	r, _ := tsFixture()
	ts := NewTimeSeries(r, time.Millisecond, 1000)
	ts.Start()
	deadline := time.After(2 * time.Second)
	for ts.Points() < 3 {
		select {
		case <-deadline:
			t.Fatalf("ticker produced only %d points in 2s", ts.Points())
		default:
			time.Sleep(time.Millisecond)
		}
	}
	ts.Stop()
	n := ts.Points()
	time.Sleep(10 * time.Millisecond)
	if got := ts.Points(); got != n {
		t.Fatalf("points advanced after Stop: %d -> %d", n, got)
	}
	ts.Stop() // idempotent
}

func TestTimeSeriesJSONShape(t *testing.T) {
	r, c := tsFixture()
	ts := NewTimeSeries(r, time.Hour, 10)
	c.Add(0, 4)
	ts.Snap()
	var b strings.Builder
	if err := ts.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var d SeriesDump
	if err := json.Unmarshal([]byte(b.String()), &d); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, b.String())
	}
	if d.IntervalMS != float64(time.Hour.Milliseconds()) {
		t.Fatalf("interval_ms = %v", d.IntervalMS)
	}
	if len(d.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(d.Series))
	}
	for _, s := range d.Series {
		if len(s.Values) != 1 {
			t.Fatalf("series %s has %d values, want 1", s.Name, len(s.Values))
		}
		if s.Kind == "" {
			t.Fatalf("series %s missing kind", s.Name)
		}
	}
}
