package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// FlowEventKind enumerates the flight-recorder event types. They cover
// the full connection lifecycle across all three layers: handshake
// (slow path), segment traffic and loss recovery (fast path),
// congestion-control decisions (slow path), and application copies
// (libtas).
type FlowEventKind uint8

// Flight-recorder event kinds.
const (
	FESynTx FlowEventKind = iota + 1
	FESynRx
	FESynAckTx
	FESynAckRx
	FEEstablished
	FESegTx
	FESegRx
	FEFastRexmit
	FERexmit
	FERTOBackoff
	FEEcnMark
	FERateChange
	FEFinTx
	FEFinRx
	FERstTx
	FERstRx
	FEAborted
	FEReaped
	FEAppSend
	FEAppRecv
	// Control-plane failure-domain events: FEDegraded/FERecovered mark
	// the fast path entering and leaving degraded mode (recorded on the
	// synthetic "slowpath" ring); FEReconstructed marks a flow whose
	// control state a warm-restarted slow path rebuilt from shared
	// memory.
	FEDegraded
	FERecovered
	FEReconstructed
	// Data-plane failure-domain events: FECoreFailed/FECoreRevived mark
	// a fast-path core leaving and rejoining the steering set (recorded
	// on the synthetic "cores" ring with the core index in Aux);
	// FEMigrated marks a flow the core watchdog re-adopted onto a
	// surviving core after its owner died.
	FECoreFailed
	FECoreRevived
	FEMigrated
	// Adversarial-traffic events: FESynCookieTx marks a stateless
	// cookie SYN-ACK (recorded on the listener's synthetic ring);
	// FESynCookieOK a completing ACK whose cookie validated into a
	// reconstructed flow; FESynCookieBad a cookie that failed the MAC
	// check; FEChallengeTx a rate-limited RFC 5961 challenge ACK sent
	// in response to an in-window-but-inexact RST, a SYN on an
	// established flow, or a blind ACK.
	FESynCookieTx
	FESynCookieOK
	FESynCookieBad
	FEChallengeTx
	// Resource-pressure events (recorded on the synthetic "pressure"
	// ring): FEPressureUp marks the degradation ladder engaging a higher
	// rung, FEPressureDown a release back down. Bytes carries the old
	// rung, Aux the new one.
	FEPressureUp
	FEPressureDown
	// Peer-liveness events: FEPersistProbe marks a zero-window persist
	// probe, FEKeepaliveProbe a keepalive probe, FETimeWait the flow
	// entering the 2MSL quarantine after an active close, and
	// FEPeerDead a liveness verdict — the probe budget ran out with no
	// answer and the flow was aborted.
	FEPersistProbe
	FEKeepaliveProbe
	FETimeWait
	FEPeerDead
)

var feNames = map[FlowEventKind]string{
	FESynTx:          "syn-tx",
	FESynRx:          "syn-rx",
	FESynAckTx:       "synack-tx",
	FESynAckRx:       "synack-rx",
	FEEstablished:    "established",
	FESegTx:          "seg-tx",
	FESegRx:          "seg-rx",
	FEFastRexmit:     "fast-rexmit",
	FERexmit:         "rexmit",
	FERTOBackoff:     "rto-backoff",
	FEEcnMark:        "ecn-mark",
	FERateChange:     "rate-change",
	FEFinTx:          "fin-tx",
	FEFinRx:          "fin-rx",
	FERstTx:          "rst-tx",
	FERstRx:          "rst-rx",
	FEAborted:        "aborted",
	FEReaped:         "reaped",
	FEAppSend:        "app-send",
	FEAppRecv:        "app-recv",
	FEDegraded:       "degraded",
	FERecovered:      "recovered",
	FEReconstructed:  "reconstructed",
	FECoreFailed:     "core-failed",
	FECoreRevived:    "core-revived",
	FEMigrated:       "migrated",
	FESynCookieTx:    "syncookie-tx",
	FESynCookieOK:    "syncookie-ok",
	FESynCookieBad:   "syncookie-bad",
	FEChallengeTx:    "challenge-tx",
	FEPressureUp:     "pressure-up",
	FEPressureDown:   "pressure-down",
	FEPersistProbe:   "persist-probe",
	FEKeepaliveProbe: "keepalive-probe",
	FETimeWait:       "time-wait",
	FEPeerDead:       "peer-dead",
}

func (k FlowEventKind) String() string {
	if s, ok := feNames[k]; ok {
		return s
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// FlowEvent is one flight-recorder entry. Seq/Ack are raw TCP sequence
// numbers so an event correlates 1:1 against a pcap capture from
// internal/trace; Aux carries a kind-specific value (rate in bytes/s
// for FERateChange, backoff RTO in ns for FERTOBackoff, queue depth
// etc.).
type FlowEvent struct {
	TS    int64 // ns since telemetry epoch
	Kind  FlowEventKind
	Seq   uint32
	Ack   uint32
	Bytes uint32
	Aux   uint64
}

// FlowRing is a bounded per-flow ring of trace events. Writers on the
// fast path, slow path, and libtas all record into the same ring; a
// spinlock guards the cursor. The critical section is a handful of
// stores and contention is per-flow-rare, so spinning beats a mutex's
// call overhead on the per-segment path — Record is charged to every
// data packet and its cost is gated by the fastpath overhead smoke
// test. When full, the oldest events are overwritten and Dropped
// reports how many were lost.
type FlowRing struct {
	key   string
	clock func() int64

	lk    atomic.Int32 // 0 free, 1 held
	buf   []FlowEvent
	total uint64 // events ever recorded
}

func (r *FlowRing) lock() {
	for i := 0; !r.lk.CompareAndSwap(0, 1); i++ {
		if i&63 == 63 {
			runtime.Gosched() // held across at most a few stores; be polite anyway
		}
	}
}

func (r *FlowRing) unlock() { r.lk.Store(0) }

// NewFlowRing builds a standalone ring (tests, tools). Normal flows get
// theirs from a Recorder.
func NewFlowRing(key string, size int, clock func() int64) *FlowRing {
	if size <= 0 {
		size = 64
	}
	return &FlowRing{key: key, clock: clock, buf: make([]FlowEvent, 0, size)}
}

// Key returns the flow key string ("ip:port->ip:port") the ring was
// registered under.
func (r *FlowRing) Key() string { return r.key }

// Record appends one event, stamping it with the telemetry clock.
func (r *FlowRing) Record(kind FlowEventKind, seq, ack, bytes uint32, aux uint64) {
	ev := FlowEvent{TS: r.clock(), Kind: kind, Seq: seq, Ack: ack, Bytes: bytes, Aux: aux}
	r.lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = ev
	}
	r.total++
	r.unlock()
}

// Events returns the ring's contents oldest-first.
func (r *FlowRing) Events() []FlowEvent {
	r.lock()
	defer r.unlock()
	out := make([]FlowEvent, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	head := int(r.total % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// Total returns how many events were ever recorded (recorded - len(Events())
// were overwritten).
func (r *FlowRing) Total() uint64 {
	r.lock()
	defer r.unlock()
	return r.total
}

// Dropped returns how many events were overwritten by newer ones.
func (r *FlowRing) Dropped() uint64 {
	r.lock()
	defer r.unlock()
	return r.total - uint64(len(r.buf))
}

// Recorder owns the flight-recorder rings of one service: a live ring
// per in-flight flow plus a bounded list of retired rings kept for
// post-mortem inspection of closed or aborted flows.
type Recorder struct {
	ringSize   int
	retiredMax int
	clock      func() int64

	mu      sync.Mutex
	live    map[string]*FlowRing
	retired []*FlowRing
}

// NewRecorder builds a recorder; clock is the shared telemetry
// timestamp source.
func NewRecorder(ringSize, retiredMax int, clock func() int64) *Recorder {
	return &Recorder{
		ringSize:   ringSize,
		retiredMax: retiredMax,
		clock:      clock,
		live:       make(map[string]*FlowRing),
	}
}

// Ring returns the live ring for key, creating it if needed. Keys are
// protocol.FlowKey.String() values ("ip:port->ip:port") from the local
// flow's perspective, so handshake events recorded before the Flow
// struct exists land in the same ring the flow later adopts.
func (rc *Recorder) Ring(key string) *FlowRing {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	r := rc.live[key]
	if r == nil {
		r = NewFlowRing(key, rc.ringSize, rc.clock)
		rc.live[key] = r
	}
	return r
}

// Lookup finds a ring by key: the live flow first, then the most
// recently retired one. Returns nil if the flow was never recorded.
func (rc *Recorder) Lookup(key string) *FlowRing {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if r := rc.live[key]; r != nil {
		return r
	}
	for i := len(rc.retired) - 1; i >= 0; i-- {
		if rc.retired[i].key == key {
			return rc.retired[i]
		}
	}
	return nil
}

// Retire moves a flow's ring from the live map to the bounded retired
// list (evicting the oldest retiree when full). Called when the flow is
// removed — normal close, abort, or reap — so its last events stay
// available for post-mortem dumps.
func (rc *Recorder) Retire(key string) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	r := rc.live[key]
	if r == nil {
		return
	}
	delete(rc.live, key)
	rc.retired = append(rc.retired, r)
	if len(rc.retired) > rc.retiredMax {
		rc.retired = rc.retired[len(rc.retired)-rc.retiredMax:]
	}
}

// LiveKeys returns the keys of all in-flight flows, sorted.
func (rc *Recorder) LiveKeys() []string {
	rc.mu.Lock()
	keys := make([]string, 0, len(rc.live))
	for k := range rc.live {
		keys = append(keys, k)
	}
	rc.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// RetiredKeys returns the keys of retired flows, oldest first.
func (rc *Recorder) RetiredKeys() []string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	keys := make([]string, len(rc.retired))
	for i, r := range rc.retired {
		keys[i] = r.key
	}
	return keys
}

// FlowDump is the JSON shape of one flow's flight-recorder ring.
type FlowDump struct {
	Key     string      `json:"key"`
	Total   uint64      `json:"total_events"`
	Dropped uint64      `json:"dropped_events"`
	Events  []EventDump `json:"events"`
}

// EventDump is the JSON shape of one flight-recorder event.
type EventDump struct {
	TS    int64  `json:"ts_ns"`
	Kind  string `json:"kind"`
	Seq   uint32 `json:"seq"`
	Ack   uint32 `json:"ack"`
	Bytes uint32 `json:"bytes,omitempty"`
	Aux   uint64 `json:"aux,omitempty"`
}

// Dump converts a ring to its JSON shape.
func (r *FlowRing) Dump() FlowDump {
	evs := r.Events()
	d := FlowDump{Key: r.key, Total: r.Total(), Dropped: r.Dropped(),
		Events: make([]EventDump, len(evs))}
	for i, ev := range evs {
		d.Events[i] = EventDump{TS: ev.TS, Kind: ev.Kind.String(),
			Seq: ev.Seq, Ack: ev.Ack, Bytes: ev.Bytes, Aux: ev.Aux}
	}
	return d
}

// DumpAll collects every live and retired ring as JSON shapes, live
// flows first (sorted by key), then retirees oldest-first.
func (rc *Recorder) DumpAll() []FlowDump {
	var out []FlowDump
	for _, k := range rc.LiveKeys() {
		if r := rc.Lookup(k); r != nil {
			out = append(out, r.Dump())
		}
	}
	rc.mu.Lock()
	retired := make([]*FlowRing, len(rc.retired))
	copy(retired, rc.retired)
	rc.mu.Unlock()
	for _, r := range retired {
		out = append(out, r.Dump())
	}
	return out
}

// WriteJSON writes every flow's ring as a JSON array.
func (rc *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false) // flow keys contain "->"
	enc.SetIndent("", "  ")
	dumps := rc.DumpAll()
	if dumps == nil {
		dumps = []FlowDump{}
	}
	return enc.Encode(dumps)
}

// WriteFlowText writes one flow's ring as a human-readable timeline,
// one event per line: timestamp, kind, seq/ack, payload bytes, aux.
func (rc *Recorder) WriteFlowText(w io.Writer, key string) error {
	r := rc.Lookup(key)
	if r == nil {
		return fmt.Errorf("telemetry: no flight record for flow %q", key)
	}
	fmt.Fprintf(w, "flow %s (%d events, %d overwritten)\n", key, r.Total(), r.Dropped())
	for _, ev := range r.Events() {
		fmt.Fprintf(w, "%12.3fms  %-12s seq=%-10d ack=%-10d bytes=%-6d aux=%d\n",
			float64(ev.TS)/1e6, ev.Kind, ev.Seq, ev.Ack, ev.Bytes, ev.Aux)
	}
	return nil
}
