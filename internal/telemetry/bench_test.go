package telemetry

import "testing"

// Micro-benchmarks for the hot-path primitives: FlowRing.Record and
// CycleStats.AddFast run once per data segment, so their cost bounds
// the telemetry-on overhead gated by the fastpath overhead smoke test.

func BenchmarkFlowRingRecord(b *testing.B) {
	var now int64
	r := NewFlowRing("bench", 256, func() int64 { now++; return now })
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(FESegRx, uint32(i), uint32(i), 64, 0)
	}
}

func BenchmarkCycleStatsAddFast(b *testing.B) {
	c := NewCycleStats(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.AddFast(0, ModRx, 0, 1)
	}
}

func BenchmarkCachedNow(b *testing.B) {
	t := New(Config{Enabled: true}, 2)
	t.RefreshNow()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = t.CachedNow()
	}
	_ = sink
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "benchmark counter")
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}
