// Package telemetry is the unified observability layer of the TAS
// reproduction: a labeled metrics registry with lock-free hot-path
// counters (per-core padded atomics, merged on scrape) and
// Prometheus-style text / JSON exposition, a per-flow flight recorder
// (a bounded ring of trace events emitted by the fast path, slow path,
// and libtas), and per-core cycle accounting that attributes executed
// time to named modules (rx, tx, cc, timer, reaper, app-copy) — the
// instrumentation behind the paper's Table 1 breakdown and the
// tail-latency/scalability figures.
//
// The whole subsystem is opt-in: a service built without telemetry
// carries only nil-pointer checks on its hot paths.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Config parameterizes one service's telemetry.
type Config struct {
	// Enabled turns the subsystem on. When false the service records
	// nothing and Metrics()/Telemetry() return nil.
	Enabled bool

	// FlightRingSize is the per-flow flight-recorder ring capacity in
	// events (default 64). Older events are overwritten; the ring
	// reports how many were lost.
	FlightRingSize int

	// RetiredRings is how many closed/aborted flows' rings are kept for
	// post-mortem inspection (default 32).
	RetiredRings int

	// TimeSeriesInterval is the period of the registry time-series
	// recorder (default 100ms; < 0 disables recording entirely).
	TimeSeriesInterval time.Duration

	// TimeSeriesPoints bounds the time-series ring (default 600 points
	// — one minute at the default interval; older points are evicted).
	TimeSeriesPoints int
}

func (c *Config) fill() {
	if c.FlightRingSize <= 0 {
		c.FlightRingSize = 64
	}
	if c.RetiredRings <= 0 {
		c.RetiredRings = 32
	}
	if c.TimeSeriesInterval == 0 {
		c.TimeSeriesInterval = 100 * time.Millisecond
	}
	if c.TimeSeriesPoints <= 0 {
		c.TimeSeriesPoints = 600
	}
}

// Telemetry bundles one service's observability state: the metrics
// registry, the flow flight recorder, and the per-core cycle accounts.
type Telemetry struct {
	Registry *Registry
	Recorder *Recorder
	Cycles   *CycleStats

	// Latency histograms (µs), observed from the hot paths under
	// sampling: smoothed RTT and RTT variance on ACK processing (fast
	// path), handshake completion in the slow path, and app
	// wakeup-to-ready latency in libtas. All are striped LogHists so
	// concurrent cores never contend on a shared cache line.
	RTT       *LogHist
	RTTVar    *LogHist
	Handshake *LogHist
	Wakeup    *LogHist

	// Series records periodic registry snapshots (nil when disabled).
	// The owning service starts and stops it with its own lifecycle.
	Series *TimeSeries

	epoch  time.Time
	cached atomic.Int64 // coarse clock: last published Now(), see CachedNow
}

// New builds a telemetry hub for a service with the given number of
// fast-path cores.
func New(cfg Config, fastCores int) *Telemetry {
	cfg.fill()
	t := &Telemetry{epoch: time.Now()}
	t.Registry = NewRegistry()
	t.Recorder = NewRecorder(cfg.FlightRingSize, cfg.RetiredRings, t.CachedNow)
	t.Cycles = NewCycleStats(fastCores)
	t.RTT = &LogHist{}
	t.RTTVar = &LogHist{}
	t.Handshake = &LogHist{}
	t.Wakeup = &LogHist{}
	if cfg.TimeSeriesInterval > 0 {
		t.Series = NewTimeSeries(t.Registry, cfg.TimeSeriesInterval, cfg.TimeSeriesPoints)
	}
	return t
}

// Now returns nanoseconds since the hub was created — the timestamp
// clock shared by flight-recorder events, so traces from the fast path,
// slow path, and libtas interleave on one axis. This reads the real
// clock; hot paths use CachedNow instead (a system clock read costs
// ~50-90ns on machines without a fast vDSO time source, which is a
// measurable fraction of per-packet processing).
func (t *Telemetry) Now() int64 { return time.Since(t.epoch).Nanoseconds() }

// CachedNow returns the most recently published timestamp — a coarse,
// monotone non-decreasing clock costing one atomic load. It is
// refreshed by code that reads the real clock anyway (the fast-path
// run loop's sampled batch timing, the slow path's control tick, and
// libtas's app-copy timing), so while traffic flows it stays within a
// few batch times of Now(). Flight-recorder events use it: event order
// and µs-scale spacing survive; sub-batch timing precision does not.
func (t *Telemetry) CachedNow() int64 { return t.cached.Load() }

// RefreshNow reads the real clock, publishes it for CachedNow, and
// returns it. Concurrent publishers race monotonically: the cached
// value only moves forward.
func (t *Telemetry) RefreshNow() int64 {
	now := time.Since(t.epoch).Nanoseconds()
	for {
		old := t.cached.Load()
		if now <= old || t.cached.CompareAndSwap(old, now) {
			return now
		}
	}
}
