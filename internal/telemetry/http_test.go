package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"testing"
)

// goldenTelemetry builds a fully deterministic fixture: a hand-rolled
// registry, a flight recorder on a fake clock, and one flow ring with a
// fixed lifecycle. Every byte of the HTTP surface is then comparable
// against golden strings.
func goldenTelemetry() *Telemetry {
	t := &Telemetry{Registry: NewRegistry()}
	var clk int64
	t.Recorder = NewRecorder(8, 4, func() int64 { clk += 1_500_000; return clk })

	pkts := t.Registry.Counter("tas_test_packets_total", "Packets processed.", L("core", "0"))
	pkts.Add(0, 42)
	t.Registry.Counter("tas_test_packets_total", "Packets processed.", L("core", "1")).Add(0, 7)
	t.Registry.GaugeFunc("tas_test_depth", "Ring occupancy.",
		func() float64 { return 3 }, L("ring", "rx"), L("core", "0"))

	r := t.Recorder.Ring("10.0.0.2:9000->10.0.0.1:8080")
	r.Record(FESynTx, 1000, 0, 0, 0)
	r.Record(FEEstablished, 1001, 501, 0, 0)
	r.Record(FESegTx, 1001, 501, 64, 0)
	return t
}

func get(t *testing.T, telem *Telemetry, path string) (int, string) {
	t.Helper()
	srv := httptest.NewServer(telem.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestGoldenMetricsText(t *testing.T) {
	code, body := get(t, goldenTelemetry(), "/metrics")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	want := `# HELP tas_test_depth Ring occupancy.
# TYPE tas_test_depth gauge
tas_test_depth{ring="rx",core="0"} 3
# HELP tas_test_packets_total Packets processed.
# TYPE tas_test_packets_total counter
tas_test_packets_total{core="0"} 42
tas_test_packets_total{core="1"} 7
`
	if body != want {
		t.Errorf("/metrics golden mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func TestGoldenMetricsJSON(t *testing.T) {
	code, body := get(t, goldenTelemetry(), "/metrics.json")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	want := `[
  {
    "name": "tas_test_depth",
    "kind": "gauge",
    "labels": {
      "core": "0",
      "ring": "rx"
    },
    "value": 3
  },
  {
    "name": "tas_test_packets_total",
    "kind": "counter",
    "labels": {
      "core": "0"
    },
    "value": 42
  },
  {
    "name": "tas_test_packets_total",
    "kind": "counter",
    "labels": {
      "core": "1"
    },
    "value": 7
  }
]
`
	if body != want {
		t.Errorf("/metrics.json golden mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func TestGoldenDebugFlows(t *testing.T) {
	code, body := get(t, goldenTelemetry(), "/debug/flows")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	want := `[
  {
    "key": "10.0.0.2:9000->10.0.0.1:8080",
    "total_events": 3,
    "dropped_events": 0,
    "events": [
      {
        "ts_ns": 1500000,
        "kind": "syn-tx",
        "seq": 1000,
        "ack": 0
      },
      {
        "ts_ns": 3000000,
        "kind": "established",
        "seq": 1001,
        "ack": 501
      },
      {
        "ts_ns": 4500000,
        "kind": "seg-tx",
        "seq": 1001,
        "ack": 501,
        "bytes": 64
      }
    ]
  }
]
`
	if body != want {
		t.Errorf("/debug/flows golden mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func TestGoldenDebugFlowText(t *testing.T) {
	code, body := get(t, goldenTelemetry(), "/debug/flows?flow=10.0.0.2:9000->10.0.0.1:8080")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	want := `flow 10.0.0.2:9000->10.0.0.1:8080 (3 events, 0 overwritten)
       1.500ms  syn-tx       seq=1000       ack=0          bytes=0      aux=0
       3.000ms  established  seq=1001       ack=501        bytes=0      aux=0
       4.500ms  seg-tx       seq=1001       ack=501        bytes=64     aux=0
`
	if body != want {
		t.Errorf("flow-text golden mismatch:\n--- got ---\n%s--- want ---\n%s", body, want)
	}
}

func TestTimeseriesEndpointDisabled(t *testing.T) {
	code, body := get(t, goldenTelemetry(), "/debug/timeseries")
	if code != 404 {
		t.Fatalf("disabled timeseries endpoint: status %d, body %q", code, body)
	}
}

func TestTimeseriesEndpointEnabled(t *testing.T) {
	telem := goldenTelemetry()
	telem.Series = NewTimeSeries(telem.Registry, 0, 16)
	telem.Series.Snap()
	telem.Series.Snap()
	code, body := get(t, telem, "/debug/timeseries")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var d SeriesDump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("timeseries body not valid JSON: %v\n%s", err, body)
	}
	if len(d.AtMS) != 2 {
		t.Fatalf("want 2 snapshots, got %d", len(d.AtMS))
	}
	if vals := d.Values("tas_test_packets_total", map[string]string{"core": "0"}); len(vals) != 2 || vals[0] != 42 {
		t.Fatalf("series values = %v, want [42 42]", vals)
	}
}
