package telemetry

import (
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	// Cumulative bucket counts: ≤0.1 → 1, ≤1 → 3, ≤10 → 4 (+Inf 5).
	for i, want := range []uint64{1, 3, 4} {
		if got := h.cumulative(i); got != want {
			t.Fatalf("cumulative(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(DurationBounds())
	h.Observe(0.002)
	h.Observe(0.5)
	r.RegisterHistogram("tas_test_seconds", "Test histogram.", h)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`tas_test_seconds_bucket{le="0.004"} 1`,
		`tas_test_seconds_bucket{le="1.024"} 2`,
		`tas_test_seconds_bucket{le="+Inf"} 2`,
		`tas_test_seconds_count 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
}
