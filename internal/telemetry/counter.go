package telemetry

import "sync/atomic"

// counterStripes is the number of independent cells in a striped
// counter. Each fast-path core hashes to its own cell, so concurrent
// increments never contend on a cache line; 16 covers MaxCores with
// room to spare.
const counterStripes = 16

// cell is one padded counter stripe. The padding keeps adjacent stripes
// on distinct cache lines so per-core increments do not false-share.
type cell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is a lock-free hot-path counter: per-core padded atomic
// stripes, merged on scrape. Increments from a fast-path core should
// pass that core's index as the hint; cold-path callers can pass 0.
type Counter struct {
	cells [counterStripes]cell
}

// Inc adds one to the stripe selected by hint (typically the calling
// core's index).
func (c *Counter) Inc(hint int) { c.Add(hint, 1) }

// Add adds d to the stripe selected by hint.
func (c *Counter) Add(hint int, d uint64) {
	c.cells[uint(hint)%counterStripes].v.Add(d)
}

// Value merges all stripes into the counter's current total.
func (c *Counter) Value() uint64 {
	var total uint64
	for i := range c.cells {
		total += c.cells[i].v.Load()
	}
	return total
}
