package netsim

import (
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Host is an endpoint: an IP/MAC identity, an uplink port toward the
// network, and a pluggable packet handler (the network stack under
// test).
type Host struct {
	IP      protocol.IPv4
	MAC     protocol.MAC
	Handler Deliverable
	uplink  *Port
	eng     *sim.Engine

	RxPackets uint64
	TxPackets uint64
}

// MACForIP derives a stable locally-administered MAC from an IP.
func MACForIP(ip protocol.IPv4) protocol.MAC { return protocol.MACForIPv4(ip) }

// NewHost creates a host; attach it with AttachUplink.
func NewHost(eng *sim.Engine, ip protocol.IPv4) *Host {
	return &Host{IP: ip, MAC: MACForIP(ip), eng: eng}
}

// AttachUplink wires the host's transmit side.
func (h *Host) AttachUplink(p *Port) { h.uplink = p }

// Deliver implements Deliverable: packets from the network are passed to
// the installed handler.
func (h *Host) Deliver(pkt *protocol.Packet) {
	h.RxPackets++
	if h.Handler != nil {
		h.Handler.Deliver(pkt)
	}
}

// Send stamps the packet with the host's source identity and transmits
// it. The destination MAC is derived from the destination IP (the slow
// path's ARP duty, resolved by construction here).
func (h *Host) Send(pkt *protocol.Packet) {
	pkt.SrcMAC = h.MAC
	if pkt.SrcIP == 0 {
		pkt.SrcIP = h.IP
	}
	if (pkt.DstMAC == protocol.MAC{}) {
		pkt.DstMAC = MACForIP(pkt.DstIP)
	}
	h.TxPackets++
	h.uplink.Send(pkt)
}

// Now returns the simulated time (convenience for stacks).
func (h *Host) Now() sim.Time { return h.eng.Now() }

// Engine returns the simulation engine.
func (h *Host) Engine() *sim.Engine { return h.eng }
