package netsim

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/sim"
)

// Switch is an output-queued switch: a route function selects the egress
// port for each packet, and each egress port is an independent Port with
// its own queue, rate, and ECN threshold. Switching latency itself is
// folded into link propagation delay (store-and-forward serialization is
// modeled by the ports).
type Switch struct {
	Name  string
	eng   *sim.Engine
	ports []*Port
	route func(pkt *protocol.Packet) int
}

// NewSwitch returns a switch with no ports; add them with AddPort and
// install routing with SetRoute.
func NewSwitch(eng *sim.Engine, name string) *Switch {
	return &Switch{Name: name, eng: eng}
}

// AddPort appends an egress port toward peer and returns its index.
func (s *Switch) AddPort(cfg PortConfig, peer Deliverable) int {
	s.ports = append(s.ports, NewPort(s.eng, cfg, peer))
	return len(s.ports) - 1
}

// Port returns the egress port at index i.
func (s *Switch) Port(i int) *Port { return s.ports[i] }

// NumPorts returns the number of egress ports.
func (s *Switch) NumPorts() int { return len(s.ports) }

// SetRoute installs the route function mapping packets to egress port
// indexes. Returning a negative index drops the packet.
func (s *Switch) SetRoute(fn func(pkt *protocol.Packet) int) { s.route = fn }

// Deliver implements Deliverable.
func (s *Switch) Deliver(pkt *protocol.Packet) {
	i := s.route(pkt)
	if i < 0 || i >= len(s.ports) {
		return // no route: drop
	}
	s.ports[i].Send(pkt)
}

// TotalDrops sums queue-overflow drops across all egress ports.
func (s *Switch) TotalDrops() uint64 {
	var d uint64
	for _, p := range s.ports {
		d += p.stats.Drops
	}
	return d
}

// String identifies the switch.
func (s *Switch) String() string { return fmt.Sprintf("switch(%s,%d ports)", s.Name, len(s.ports)) }
