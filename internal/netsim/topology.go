package netsim

import (
	"fmt"

	"repro/internal/protocol"
	"repro/internal/sim"
)

// ConnectPair wires two hosts with a direct full-duplex link (the
// microbenchmark "two machines, one link" setup).
func ConnectPair(eng *sim.Engine, a, b *Host, cfg PortConfig) {
	a.AttachUplink(NewPort(eng, cfg, b))
	b.AttachUplink(NewPort(eng, cfg, a))
}

// Star is a single-switch network: every host connects to one switch
// with symmetric links. It models the paper's testbed rack (clients and
// server on one Arista switch) and the incast setup.
type Star struct {
	Switch *Switch
	Hosts  []*Host
	index  map[protocol.IPv4]int
}

// NewStar builds a star over the given hosts. downCfg configures the
// switch->host ports (where incast congestion happens; give it the ECN
// threshold), upCfg the host->switch ports.
func NewStar(eng *sim.Engine, hosts []*Host, upCfg, downCfg PortConfig) *Star {
	sw := NewSwitch(eng, "star")
	st := &Star{Switch: sw, Hosts: hosts, index: make(map[protocol.IPv4]int)}
	for i, h := range hosts {
		h.AttachUplink(NewPort(eng, upCfg, sw))
		port := sw.AddPort(downCfg, h)
		if port != i {
			panic("netsim: port/host index mismatch")
		}
		st.index[h.IP] = i
	}
	sw.SetRoute(func(p *protocol.Packet) int {
		if i, ok := st.index[p.DstIP]; ok {
			return i
		}
		return -1
	})
	return st
}

// DownPort returns the switch egress port feeding host i — the queue to
// observe for incast/congestion experiments.
func (s *Star) DownPort(i int) *Port { return s.Switch.Port(i) }

// Dumbbell is the classic two-switch topology: left hosts and right
// hosts, joined by one (typically bottleneck) link. Useful for
// congestion experiments that need many senders contending on a single
// inter-switch link rather than on a receiver's downlink.
type Dumbbell struct {
	Left, Right   *Switch
	LeftHosts     []*Host
	RightHosts    []*Host
	bottleneckL2R *Port
	bottleneckR2L *Port
}

// NewDumbbell connects nLeft and nRight hosts via two switches joined by
// a bottleneck link. edgeCfg configures host<->switch ports; coreCfg the
// inter-switch link (put the ECN threshold there).
func NewDumbbell(eng *sim.Engine, nLeft, nRight int, edgeCfg, coreCfg PortConfig) *Dumbbell {
	d := &Dumbbell{
		Left:  NewSwitch(eng, "left"),
		Right: NewSwitch(eng, "right"),
	}
	for i := 0; i < nLeft; i++ {
		h := NewHost(eng, protocol.MakeIPv4(10, 1, byte(i/250), byte(i%250+1)))
		h.AttachUplink(NewPort(eng, edgeCfg, d.Left))
		d.Left.AddPort(edgeCfg, h)
		d.LeftHosts = append(d.LeftHosts, h)
	}
	for i := 0; i < nRight; i++ {
		h := NewHost(eng, protocol.MakeIPv4(10, 2, byte(i/250), byte(i%250+1)))
		h.AttachUplink(NewPort(eng, edgeCfg, d.Right))
		d.Right.AddPort(edgeCfg, h)
		d.RightHosts = append(d.RightHosts, h)
	}
	// Bottleneck ports are the switches' last ports.
	l2r := d.Left.AddPort(coreCfg, d.Right)
	r2l := d.Right.AddPort(coreCfg, d.Left)
	d.bottleneckL2R = d.Left.Port(l2r)
	d.bottleneckR2L = d.Right.Port(r2l)

	side := func(ip protocol.IPv4) int { return int(byte(ip >> 16)) } // 1=left, 2=right
	idx := func(ip protocol.IPv4) int { return int(byte(ip>>8))*250 + int(byte(ip)) - 1 }
	d.Left.SetRoute(func(p *protocol.Packet) int {
		if side(p.DstIP) == 1 {
			i := idx(p.DstIP)
			if i < 0 || i >= nLeft {
				return -1
			}
			return i
		}
		return l2r
	})
	d.Right.SetRoute(func(p *protocol.Packet) int {
		if side(p.DstIP) == 2 {
			i := idx(p.DstIP)
			if i < 0 || i >= nRight {
				return -1
			}
			return i
		}
		return r2l
	})
	return d
}

// Bottleneck returns the left-to-right inter-switch port (the usual
// observation point for queue dynamics).
func (d *Dumbbell) Bottleneck() *Port { return d.bottleneckL2R }

// FatTreeConfig sizes the 3-level Clos used for the paper's large-cluster
// simulation (§5.5: 2560 servers, 112 switches, 1:4 oversubscription).
type FatTreeConfig struct {
	Pods          int // number of pods
	TorsPerPod    int // ToR switches per pod
	ServersPerTor int // hosts per ToR
	AggsPerPod    int // aggregation switches per pod
	Cores         int // core switches (must be divisible by AggsPerPod)

	HostRateBps float64 // server link rate
	TorUpBps    float64 // ToR<->agg link rate
	AggUpBps    float64 // agg<->core link rate

	PropDelay    sim.Time
	QueueCap     int
	ECNThreshold int
}

// PaperFatTree returns the §5.5 configuration: 16 pods x 4 ToRs x 40
// servers = 2560 servers; 64 ToR + 32 agg + 16 core = 112 switches.
// Each ToR has 40x10G down and 2x50G up: 1:4 oversubscription at the
// edge; agg and core are 1:1 above that.
func PaperFatTree() FatTreeConfig {
	return FatTreeConfig{
		Pods: 16, TorsPerPod: 4, ServersPerTor: 40, AggsPerPod: 2, Cores: 16,
		HostRateBps: 10e9, TorUpBps: 50e9, AggUpBps: 25e9,
		PropDelay: 5 * sim.Microsecond, QueueCap: 250, ECNThreshold: 65,
	}
}

// FatTree is a 3-level Clos topology with ECMP-by-flow-hash routing.
// Host addressing: 10.pod.tor.(server+1).
type FatTree struct {
	Cfg   FatTreeConfig
	Hosts []*Host
	Tors  []*Switch // pod-major order
	Aggs  []*Switch
	Cores []*Switch
}

// HostIP returns the address of a server by coordinates.
func HostIP(pod, tor, server int) protocol.IPv4 {
	return protocol.MakeIPv4(10, byte(pod), byte(tor), byte(server+1))
}

func podOf(ip protocol.IPv4) int { return int(byte(ip >> 16)) }
func torOf(ip protocol.IPv4) int { return int(byte(ip >> 8)) }

// NewFatTree builds the topology and all hosts.
func NewFatTree(eng *sim.Engine, cfg FatTreeConfig) *FatTree {
	if cfg.Cores%cfg.AggsPerPod != 0 {
		panic("netsim: Cores must be divisible by AggsPerPod")
	}
	coresPerAgg := cfg.Cores / cfg.AggsPerPod
	ft := &FatTree{Cfg: cfg}

	mk := func(rate float64) PortConfig {
		return PortConfig{RateBps: rate, PropDelay: cfg.PropDelay, QueueCap: cfg.QueueCap, ECNThreshold: cfg.ECNThreshold}
	}

	// Create switches.
	for p := 0; p < cfg.Pods; p++ {
		for t := 0; t < cfg.TorsPerPod; t++ {
			ft.Tors = append(ft.Tors, NewSwitch(eng, fmt.Sprintf("tor%d.%d", p, t)))
		}
		for a := 0; a < cfg.AggsPerPod; a++ {
			ft.Aggs = append(ft.Aggs, NewSwitch(eng, fmt.Sprintf("agg%d.%d", p, a)))
		}
	}
	for c := 0; c < cfg.Cores; c++ {
		ft.Cores = append(ft.Cores, NewSwitch(eng, fmt.Sprintf("core%d", c)))
	}

	tor := func(p, t int) *Switch { return ft.Tors[p*cfg.TorsPerPod+t] }
	agg := func(p, a int) *Switch { return ft.Aggs[p*cfg.AggsPerPod+a] }

	// Hosts + ToR downlinks. ToR port layout: [0..servers) down,
	// [servers..servers+aggs) up.
	for p := 0; p < cfg.Pods; p++ {
		for t := 0; t < cfg.TorsPerPod; t++ {
			sw := tor(p, t)
			for s := 0; s < cfg.ServersPerTor; s++ {
				h := NewHost(eng, HostIP(p, t, s))
				h.AttachUplink(NewPort(eng, mk(cfg.HostRateBps), sw))
				sw.AddPort(mk(cfg.HostRateBps), h)
				ft.Hosts = append(ft.Hosts, h)
			}
			for a := 0; a < cfg.AggsPerPod; a++ {
				sw.AddPort(mk(cfg.TorUpBps), agg(p, a))
			}
		}
	}

	// Agg port layout: [0..tors) down to ToRs, [tors..tors+coresPerAgg) up.
	for p := 0; p < cfg.Pods; p++ {
		for a := 0; a < cfg.AggsPerPod; a++ {
			sw := agg(p, a)
			for t := 0; t < cfg.TorsPerPod; t++ {
				sw.AddPort(mk(cfg.TorUpBps), tor(p, t))
			}
			for ci := 0; ci < coresPerAgg; ci++ {
				core := ft.Cores[a*coresPerAgg+ci]
				sw.AddPort(mk(cfg.AggUpBps), core)
			}
		}
	}

	// Core port layout: one port per pod, to that pod's owning agg.
	// Core c belongs to agg group g = c / coresPerAgg.
	for c := 0; c < cfg.Cores; c++ {
		g := c / coresPerAgg
		sw := ft.Cores[c]
		for p := 0; p < cfg.Pods; p++ {
			sw.AddPort(mk(cfg.AggUpBps), agg(p, g))
		}
	}

	// Routing.
	for p := 0; p < cfg.Pods; p++ {
		for t := 0; t < cfg.TorsPerPod; t++ {
			p, t := p, t
			tor(p, t).SetRoute(func(pkt *protocol.Packet) int {
				if podOf(pkt.DstIP) == p && torOf(pkt.DstIP) == t {
					s := int(byte(pkt.DstIP)) - 1
					if s < 0 || s >= cfg.ServersPerTor {
						return -1
					}
					return s
				}
				// ECMP up over the pod's aggs.
				return cfg.ServersPerTor + int(pkt.Hash())%cfg.AggsPerPod
			})
		}
		for a := 0; a < cfg.AggsPerPod; a++ {
			p := p
			agg(p, a).SetRoute(func(pkt *protocol.Packet) int {
				if podOf(pkt.DstIP) == p {
					t := torOf(pkt.DstIP)
					if t < 0 || t >= cfg.TorsPerPod {
						return -1
					}
					return t
				}
				// ECMP up over this agg's cores.
				return cfg.TorsPerPod + int(pkt.Hash()>>8)%coresPerAgg
			})
		}
	}
	for c := 0; c < cfg.Cores; c++ {
		ft.Cores[c].SetRoute(func(pkt *protocol.Packet) int {
			p := podOf(pkt.DstIP)
			if p < 0 || p >= cfg.Pods {
				return -1
			}
			return p
		})
	}
	return ft
}

// HostByIP returns the host with the given address (nil if absent).
func (ft *FatTree) HostByIP(ip protocol.IPv4) *Host {
	p, t := podOf(ip), torOf(ip)
	s := int(byte(ip)) - 1
	if p < 0 || p >= ft.Cfg.Pods || t < 0 || t >= ft.Cfg.TorsPerPod || s < 0 || s >= ft.Cfg.ServersPerTor {
		return nil
	}
	return ft.Hosts[(p*ft.Cfg.TorsPerPod+t)*ft.Cfg.ServersPerTor+s]
}

// NumSwitches returns the total switch count.
func (ft *FatTree) NumSwitches() int { return len(ft.Tors) + len(ft.Aggs) + len(ft.Cores) }
