// Package netsim is the packet-level discrete-event network simulator
// that stands in for the paper's 10/40 GbE testbed and for its ns-3
// simulations. It models store-and-forward output-queued links with
// configurable bandwidth, propagation delay, drop-tail queues, DCTCP-style
// ECN marking thresholds, and random loss injection; switches with
// ECMP-by-flow-hash routing; and topology builders for the evaluation's
// setups (single link, incast star, and the 3-level FatTree of §5.5).
package netsim

import (
	"repro/internal/protocol"
	"repro/internal/sim"
)

// Deliverable receives packets from the network.
type Deliverable interface {
	Deliver(pkt *protocol.Packet)
}

// DeliverFunc adapts a function to the Deliverable interface.
type DeliverFunc func(*protocol.Packet)

// Deliver implements Deliverable.
func (f DeliverFunc) Deliver(p *protocol.Packet) { f(p) }

// PortConfig describes one unidirectional link attachment.
type PortConfig struct {
	RateBps      float64  // link bandwidth, bits/s
	PropDelay    sim.Time // propagation delay
	QueueCap     int      // max queued packets (drop-tail); <=0 means 1000
	ECNThreshold int      // mark CE when queue >= threshold (0 = no marking)
	LossRate     float64  // random drop probability in [0,1)
}

// PortStats counts what happened at a port.
type PortStats struct {
	TxPackets uint64
	TxBytes   uint64
	Drops     uint64 // queue-overflow drops
	LossDrops uint64 // injected random losses
	CEMarks   uint64

	// Time-weighted queue length integral for average-queue reporting.
	qlenArea     float64
	lastQlenTime sim.Time
	maxQlen      int
}

// Port is a unidirectional transmission resource: a drop-tail FIFO queue
// drained at the link rate, followed by a propagation delay. The egress
// side of every link and every switch port is a Port.
type Port struct {
	eng   *sim.Engine
	cfg   PortConfig
	peer  Deliverable
	queue []*protocol.Packet
	busy  bool
	stats PortStats
	fault *FaultInjector
}

// NewPort returns a port feeding peer.
func NewPort(eng *sim.Engine, cfg PortConfig, peer Deliverable) *Port {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1000
	}
	if cfg.RateBps <= 0 {
		panic("netsim: port needs positive rate")
	}
	return &Port{eng: eng, cfg: cfg, peer: peer}
}

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// QueueLen returns the instantaneous queue length in packets.
func (p *Port) QueueLen() int { return len(p.queue) }

// AvgQueueLen returns the time-weighted average queue length since the
// start of the run.
func (p *Port) AvgQueueLen() float64 {
	p.accountQlen()
	if p.eng.Now() == 0 {
		return 0
	}
	return p.stats.qlenArea / float64(p.eng.Now())
}

// MaxQueueLen returns the maximum instantaneous queue length observed.
func (p *Port) MaxQueueLen() int { return p.stats.maxQlen }

func (p *Port) accountQlen() {
	now := p.eng.Now()
	p.stats.qlenArea += float64(len(p.queue)) * float64(now-p.stats.lastQlenTime)
	p.stats.lastQlenTime = now
}

// SetFaultInjector attaches a fault injector that filters every packet
// offered to this port (nil detaches). The injector runs before the
// port's own LossRate and queue admission.
func (p *Port) SetFaultInjector(fi *FaultInjector) { p.fault = fi }

// Send enqueues a packet for transmission. Overflow and injected loss
// drop silently (counted in stats), as a real switch would.
func (p *Port) Send(pkt *protocol.Packet) {
	if p.fault != nil {
		v := p.fault.filter(pkt)
		if v.drop {
			p.stats.LossDrops++
			return
		}
		pkt = v.pkt
		if v.dup {
			p.enqueue(pkt.Clone())
		}
		if v.delay > 0 {
			held := pkt
			p.eng.After(v.delay, func() { p.enqueue(held) })
			return
		}
	}
	if p.cfg.LossRate > 0 && p.eng.Rand().Float64() < p.cfg.LossRate {
		p.stats.LossDrops++
		return
	}
	p.enqueue(pkt)
}

// enqueue admits a packet to the drop-tail queue and starts the
// transmitter if idle.
func (p *Port) enqueue(pkt *protocol.Packet) {
	if len(p.queue) >= p.cfg.QueueCap {
		p.stats.Drops++
		return
	}
	// DCTCP-style marking: mark on enqueue when the queue has built past
	// the threshold, only for ECN-capable packets.
	if p.cfg.ECNThreshold > 0 && len(p.queue) >= p.cfg.ECNThreshold &&
		(pkt.ECN == protocol.ECNECT0 || pkt.ECN == protocol.ECNECT1) {
		pkt = pkt.Clone()
		pkt.ECN = protocol.ECNCE
		p.stats.CEMarks++
	}
	p.accountQlen()
	p.queue = append(p.queue, pkt)
	if len(p.queue) > p.stats.maxQlen {
		p.stats.maxQlen = len(p.queue)
	}
	if !p.busy {
		p.busy = true
		p.startTx()
	}
}

func (p *Port) startTx() {
	pkt := p.queue[0]
	txTime := sim.Time(float64(pkt.WireLen()*8) / p.cfg.RateBps * 1e9)
	if txTime < 1 {
		txTime = 1
	}
	p.eng.After(txTime, func() {
		p.accountQlen()
		p.queue = p.queue[1:]
		p.stats.TxPackets++
		p.stats.TxBytes += uint64(pkt.WireLen())
		delivered := pkt
		p.eng.After(p.cfg.PropDelay, func() { p.peer.Deliver(delivered) })
		if len(p.queue) > 0 {
			p.startTx()
		} else {
			p.busy = false
		}
	})
}
