package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FaultConfig parameterizes a FaultInjector. All probabilities are per
// packet and independent unless noted; every random decision is drawn
// from the injector's own seeded source, so a run with a fixed seed and
// a fixed event schedule is fully reproducible.
type FaultConfig struct {
	Seed int64 // seed for the injector's private random source

	// LossRate drops packets uniformly (Bernoulli) with this
	// probability.
	LossRate float64

	// GE, when non-nil, runs a Gilbert–Elliott two-state channel in
	// front of the link: packets traversing a bad-state burst are
	// dropped with GE.LossBad.
	GE *stats.GEConfig

	// ReorderProb delays a packet by a uniform random time in
	// (0, ReorderMaxDelay], letting later packets overtake it — bounded
	// reordering. ReorderMaxDelay defaults to 100us when a probability
	// is set without a bound.
	ReorderProb     float64
	ReorderMaxDelay sim.Time

	// DupProb delivers an extra copy of the packet.
	DupProb float64

	// CorruptProb flips one random byte of the packet's wire image. The
	// corrupted frame is then run through protocol.Parse, and — as on a
	// real NIC — dropped when the IP/TCP checksum rejects it
	// (protocol.ErrBadChecksum). Flips that land in the Ethernet header
	// survive parsing and are delivered corrupted.
	CorruptProb float64
}

// Verdict counter names exported by FaultInjector.Counters.Get.
const (
	CntDownDrops    = "down_drops"    // dropped while the link was down
	CntBurstDrops   = "burst_drops"   // Gilbert–Elliott bad-state drops
	CntLossDrops    = "loss_drops"    // uniform Bernoulli drops
	CntCorruptDrops = "corrupt_drops" // corrupted and checksum-rejected
	CntCorruptPass  = "corrupt_pass"  // corrupted but checksum-clean (header flip)
	CntReordered    = "reordered"     // held back to be overtaken
	CntDuplicated   = "duplicated"    // extra copies injected
	CntPassed       = "passed"        // delivered unmodified
)

// FaultInjector is a deterministic, scriptable fault source attachable
// to any Port (Port.SetFaultInjector). It decides the fate of each
// packet at enqueue time and schedules link up/down transitions on the
// simulation clock. One injector drives one port; share nothing.
type FaultInjector struct {
	eng *sim.Engine
	cfg FaultConfig
	rng *rand.Rand
	ge  *stats.GilbertElliott

	down bool

	// Counters tallies every verdict the injector hands out.
	Counters FaultCounters
}

// FaultCounters tallies verdicts with pre-registered atomics: filter
// runs once per packet, where CounterSet's mutex-protected map lookup
// is measurable overhead. The Get/Snapshot/String read surface matches
// stats.CounterSet so callers and tests are unchanged.
type FaultCounters struct {
	downDrops, burstDrops, lossDrops, corruptDrops atomic.Uint64
	corruptPass, reordered, duplicated, passed     atomic.Uint64
}

// Get returns the named counter (0 for unknown names, like CounterSet).
func (c *FaultCounters) Get(name string) uint64 {
	switch name {
	case CntDownDrops:
		return c.downDrops.Load()
	case CntBurstDrops:
		return c.burstDrops.Load()
	case CntLossDrops:
		return c.lossDrops.Load()
	case CntCorruptDrops:
		return c.corruptDrops.Load()
	case CntCorruptPass:
		return c.corruptPass.Load()
	case CntReordered:
		return c.reordered.Load()
	case CntDuplicated:
		return c.duplicated.Load()
	case CntPassed:
		return c.passed.Load()
	}
	return 0
}

// Snapshot returns the non-zero counters by name.
func (c *FaultCounters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, 8)
	for _, name := range []string{
		CntDownDrops, CntBurstDrops, CntLossDrops, CntCorruptDrops,
		CntCorruptPass, CntReordered, CntDuplicated, CntPassed,
	} {
		if v := c.Get(name); v > 0 {
			out[name] = v
		}
	}
	return out
}

// String renders the counters in sorted-name order ("a=1 b=2").
func (c *FaultCounters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, k := range names {
		parts[i] = fmt.Sprintf("%s=%d", k, snap[k])
	}
	return strings.Join(parts, " ")
}

// NewFaultInjector builds an injector scheduling on eng's clock.
func NewFaultInjector(eng *sim.Engine, cfg FaultConfig) *FaultInjector {
	if cfg.ReorderProb > 0 && cfg.ReorderMaxDelay <= 0 {
		cfg.ReorderMaxDelay = 100 * sim.Microsecond
	}
	fi := &FaultInjector{
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.GE != nil {
		fi.ge = stats.NewGilbertElliott(fi.rng, *cfg.GE)
	}
	return fi
}

// SetDown forces the link state immediately.
func (fi *FaultInjector) SetDown(down bool) { fi.down = down }

// Down reports whether the link is currently down.
func (fi *FaultInjector) Down() bool { return fi.down }

// ScheduleDown takes the link down at absolute sim time t.
func (fi *FaultInjector) ScheduleDown(t sim.Time) {
	fi.eng.At(t, func() { fi.down = true })
}

// ScheduleUp restores the link at absolute sim time t.
func (fi *FaultInjector) ScheduleUp(t sim.Time) {
	fi.eng.At(t, func() { fi.down = false })
}

// SchedulePartition takes the link down during [from, to).
func (fi *FaultInjector) SchedulePartition(from, to sim.Time) {
	fi.ScheduleDown(from)
	fi.ScheduleUp(to)
}

// ScheduleFlaps scripts n down/up cycles starting at start: down for
// downFor, then up for upFor, repeated.
func (fi *FaultInjector) ScheduleFlaps(start, downFor, upFor sim.Time, n int) {
	t := start
	for i := 0; i < n; i++ {
		fi.SchedulePartition(t, t+downFor)
		t += downFor + upFor
	}
}

// verdict is the outcome of filtering one packet.
type verdict struct {
	drop  bool
	dup   bool
	delay sim.Time // >0: enqueue after this extra delay (reordering)
	pkt   *protocol.Packet
}

// filter decides the fate of one packet about to enter the port queue.
func (fi *FaultInjector) filter(pkt *protocol.Packet) verdict {
	if fi.down {
		fi.Counters.downDrops.Add(1)
		return verdict{drop: true}
	}
	if fi.ge != nil && fi.ge.Drop() {
		fi.Counters.burstDrops.Add(1)
		return verdict{drop: true}
	}
	if fi.cfg.LossRate > 0 && fi.rng.Float64() < fi.cfg.LossRate {
		fi.Counters.lossDrops.Add(1)
		return verdict{drop: true}
	}
	v := verdict{pkt: pkt}
	if fi.cfg.CorruptProb > 0 && fi.rng.Float64() < fi.cfg.CorruptProb {
		corrupted, rejected := fi.corrupt(pkt)
		if rejected {
			fi.Counters.corruptDrops.Add(1)
			return verdict{drop: true}
		}
		fi.Counters.corruptPass.Add(1)
		v.pkt = corrupted
	}
	if fi.cfg.DupProb > 0 && fi.rng.Float64() < fi.cfg.DupProb {
		fi.Counters.duplicated.Add(1)
		v.dup = true
	}
	if fi.cfg.ReorderProb > 0 && fi.rng.Float64() < fi.cfg.ReorderProb {
		fi.Counters.reordered.Add(1)
		v.delay = 1 + sim.Time(fi.rng.Int63n(int64(fi.cfg.ReorderMaxDelay)))
		return v
	}
	fi.Counters.passed.Add(1)
	return v
}

// corrupt flips one random byte of the packet's wire image and re-runs
// it through the receive-side parser. It returns the surviving packet
// (when the flip landed outside the checksummed region) and whether the
// frame was rejected by protocol.ErrBadChecksum — the NIC-discard path.
func (fi *FaultInjector) corrupt(pkt *protocol.Packet) (*protocol.Packet, bool) {
	buf := protocol.Marshal(pkt)
	i := fi.rng.Intn(len(buf))
	buf[i] ^= 1 << uint(fi.rng.Intn(8))
	parsed, err := protocol.Parse(buf)
	if err != nil {
		return nil, true
	}
	return parsed, false
}
