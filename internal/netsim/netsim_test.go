package netsim

import (
	"testing"

	"repro/internal/protocol"
	"repro/internal/sim"
)

func mkPkt(src, dst protocol.IPv4, size int) *protocol.Packet {
	return &protocol.Packet{
		SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: 2000,
		Flags: protocol.FlagACK, PayloadLen: size, ECN: protocol.ECNECT0,
	}
}

type collector struct {
	pkts  []*protocol.Packet
	times []sim.Time
	eng   *sim.Engine
}

func (c *collector) Deliver(p *protocol.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.eng.Now())
}

func TestPortSerialization(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	// 1 Gbps, 1us propagation.
	p := NewPort(eng, PortConfig{RateBps: 1e9, PropDelay: sim.Microsecond}, c)
	// Two packets, 1000B payload => wire = 1000+54+12(ts)? mkPkt has no TS:
	// 14+20+20+1000 = 1054B = 8432 bits => 8432ns at 1Gbps.
	p.Send(mkPkt(1, 2, 1000))
	p.Send(mkPkt(1, 2, 1000))
	eng.Run()
	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d", len(c.pkts))
	}
	if c.times[0] != 8432+1000 {
		t.Fatalf("first delivery at %d, want 9432", c.times[0])
	}
	// Second is serialized behind the first: 2*8432 + 1000.
	if c.times[1] != 2*8432+1000 {
		t.Fatalf("second delivery at %d, want %d", c.times[1], 2*8432+1000)
	}
	st := p.Stats()
	if st.TxPackets != 2 || st.TxBytes != 2108 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPortDropTail(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	p := NewPort(eng, PortConfig{RateBps: 1e9, QueueCap: 5}, c)
	for i := 0; i < 10; i++ {
		p.Send(mkPkt(1, 2, 100))
	}
	eng.Run()
	// One packet is in transmission plus 5 queued is not how this model
	// works: the in-flight packet stays at queue[0], so 5 total accepted.
	if len(c.pkts) != 5 {
		t.Fatalf("delivered %d, want 5", len(c.pkts))
	}
	if p.Stats().Drops != 5 {
		t.Fatalf("drops = %d, want 5", p.Stats().Drops)
	}
}

func TestPortECNMarking(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	p := NewPort(eng, PortConfig{RateBps: 1e9, QueueCap: 100, ECNThreshold: 3}, c)
	for i := 0; i < 10; i++ {
		p.Send(mkPkt(1, 2, 1000))
	}
	eng.Run()
	marked := 0
	for _, pkt := range c.pkts {
		if pkt.ECN == protocol.ECNCE {
			marked++
		}
	}
	// Packets 0,1,2 see queue lengths 0,1,2 (below threshold); the rest
	// are marked.
	if marked != 7 {
		t.Fatalf("marked = %d, want 7", marked)
	}
	if p.Stats().CEMarks != 7 {
		t.Fatalf("CEMarks = %d", p.Stats().CEMarks)
	}
}

func TestPortECNIgnoresNonECT(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	p := NewPort(eng, PortConfig{RateBps: 1e9, QueueCap: 100, ECNThreshold: 1}, c)
	pkt := mkPkt(1, 2, 100)
	pkt.ECN = protocol.ECNNotECT
	p.Send(mkPkt(1, 2, 100))
	p.Send(pkt)
	eng.Run()
	if c.pkts[1].ECN == protocol.ECNCE {
		t.Fatal("non-ECT packet must not be marked")
	}
}

func TestPortLossInjection(t *testing.T) {
	eng := sim.New(42)
	c := &collector{eng: eng}
	p := NewPort(eng, PortConfig{RateBps: 1e12, QueueCap: 1 << 20, LossRate: 0.1}, c)
	const n = 20000
	for i := 0; i < n; i++ {
		p.Send(mkPkt(1, 2, 100))
	}
	eng.Run()
	lost := int(p.Stats().LossDrops)
	if lost < n/10*7/10 || lost > n/10*13/10 {
		t.Fatalf("lost %d of %d, want ~10%%", lost, n)
	}
	if len(c.pkts)+lost != n {
		t.Fatalf("delivered %d + lost %d != %d", len(c.pkts), lost, n)
	}
}

func TestPortAvgQueueLen(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	p := NewPort(eng, PortConfig{RateBps: 1e9, QueueCap: 100}, c)
	for i := 0; i < 10; i++ {
		p.Send(mkPkt(1, 2, 1000))
	}
	eng.Run()
	if avg := p.AvgQueueLen(); avg <= 0 || avg >= 10 {
		t.Fatalf("avg queue = %v, want in (0,10)", avg)
	}
	if p.MaxQueueLen() != 10 {
		t.Fatalf("max queue = %d, want 10", p.MaxQueueLen())
	}
}

func TestConnectPairRoundTrip(t *testing.T) {
	eng := sim.New(1)
	a := NewHost(eng, protocol.MakeIPv4(10, 0, 0, 1))
	b := NewHost(eng, protocol.MakeIPv4(10, 0, 0, 2))
	ConnectPair(eng, a, b, PortConfig{RateBps: 10e9, PropDelay: 10 * sim.Microsecond})
	var got *protocol.Packet
	b.Handler = DeliverFunc(func(p *protocol.Packet) {
		got = p
		// echo back
		r := mkPkt(b.IP, a.IP, 10)
		b.Send(r)
	})
	var reply *protocol.Packet
	a.Handler = DeliverFunc(func(p *protocol.Packet) { reply = p })
	a.Send(mkPkt(a.IP, b.IP, 10))
	eng.Run()
	if got == nil || reply == nil {
		t.Fatal("round trip failed")
	}
	if got.SrcMAC != a.MAC || got.DstMAC != b.MAC {
		t.Fatal("MAC stamping wrong")
	}
	if a.TxPackets != 1 || a.RxPackets != 1 || b.RxPackets != 1 {
		t.Fatal("host counters wrong")
	}
}

func TestStarRouting(t *testing.T) {
	eng := sim.New(1)
	var hosts []*Host
	for i := 0; i < 5; i++ {
		hosts = append(hosts, NewHost(eng, protocol.MakeIPv4(10, 0, 0, byte(i+1))))
	}
	cfg := PortConfig{RateBps: 10e9, PropDelay: sim.Microsecond}
	NewStar(eng, hosts, cfg, cfg)
	received := make(map[protocol.IPv4]int)
	for _, h := range hosts {
		h := h
		h.Handler = DeliverFunc(func(p *protocol.Packet) {
			if p.DstIP != h.IP {
				t.Errorf("host %v got packet for %v", h.IP, p.DstIP)
			}
			received[h.IP]++
		})
	}
	// Every host sends to every other host.
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				src.Send(mkPkt(src.IP, dst.IP, 100))
			}
		}
	}
	eng.Run()
	for _, h := range hosts {
		if received[h.IP] != 4 {
			t.Fatalf("host %v received %d, want 4", h.IP, received[h.IP])
		}
	}
	// Unknown destination is dropped, not crashed.
	hosts[0].Send(mkPkt(hosts[0].IP, protocol.MakeIPv4(99, 9, 9, 9), 10))
	eng.Run()
}

func TestStarIncastQueueing(t *testing.T) {
	eng := sim.New(1)
	var hosts []*Host
	for i := 0; i < 5; i++ {
		hosts = append(hosts, NewHost(eng, protocol.MakeIPv4(10, 0, 0, byte(i+1))))
	}
	cfg := PortConfig{RateBps: 10e9, PropDelay: sim.Microsecond, QueueCap: 64, ECNThreshold: 10}
	star := NewStar(eng, hosts, cfg, cfg)
	hosts[0].Handler = DeliverFunc(func(p *protocol.Packet) {})
	// 4 senders blast host 0: its downlink queue must build.
	for s := 1; s < 5; s++ {
		for i := 0; i < 50; i++ {
			hosts[s].Send(mkPkt(hosts[s].IP, hosts[0].IP, 1448))
		}
	}
	eng.Run()
	if star.DownPort(0).MaxQueueLen() < 10 {
		t.Fatalf("incast should build the victim downlink queue, max = %d", star.DownPort(0).MaxQueueLen())
	}
	if star.DownPort(0).Stats().CEMarks == 0 {
		t.Fatal("expected CE marks under incast")
	}
}

func smallFatTree() FatTreeConfig {
	return FatTreeConfig{
		Pods: 4, TorsPerPod: 2, ServersPerTor: 4, AggsPerPod: 2, Cores: 4,
		HostRateBps: 10e9, TorUpBps: 20e9, AggUpBps: 20e9,
		PropDelay: sim.Microsecond, QueueCap: 100, ECNThreshold: 65,
	}
}

func TestFatTreeConnectivity(t *testing.T) {
	eng := sim.New(1)
	ft := NewFatTree(eng, smallFatTree())
	if len(ft.Hosts) != 4*2*4 {
		t.Fatalf("hosts = %d", len(ft.Hosts))
	}
	if ft.NumSwitches() != 8+8+4 {
		t.Fatalf("switches = %d", ft.NumSwitches())
	}
	got := make(map[protocol.IPv4]map[protocol.IPv4]bool)
	for _, h := range ft.Hosts {
		h := h
		got[h.IP] = make(map[protocol.IPv4]bool)
		h.Handler = DeliverFunc(func(p *protocol.Packet) {
			if p.DstIP != h.IP {
				t.Errorf("misrouted: %v arrived at %v", p.DstIP, h.IP)
			}
			got[h.IP][p.SrcIP] = true
		})
	}
	// All-to-all, one packet each.
	for _, src := range ft.Hosts {
		for _, dst := range ft.Hosts {
			if src != dst {
				src.Send(mkPkt(src.IP, dst.IP, 64))
			}
		}
	}
	eng.Run()
	for _, dst := range ft.Hosts {
		if len(got[dst.IP]) != len(ft.Hosts)-1 {
			t.Fatalf("host %v received from %d sources, want %d", dst.IP, len(got[dst.IP]), len(ft.Hosts)-1)
		}
	}
}

func TestFatTreeHostByIP(t *testing.T) {
	eng := sim.New(1)
	ft := NewFatTree(eng, smallFatTree())
	h := ft.HostByIP(HostIP(2, 1, 3))
	if h == nil || h.IP != HostIP(2, 1, 3) {
		t.Fatal("HostByIP lookup failed")
	}
	if ft.HostByIP(protocol.MakeIPv4(10, 9, 9, 9)) != nil {
		t.Fatal("out-of-range lookup should return nil")
	}
}

func TestFatTreeECMPFlowStability(t *testing.T) {
	// All packets of one flow must take the same path (no reordering):
	// send many packets of one flow cross-pod and verify in-order arrival.
	eng := sim.New(1)
	ft := NewFatTree(eng, smallFatTree())
	src := ft.HostByIP(HostIP(0, 0, 0))
	dst := ft.HostByIP(HostIP(3, 1, 2))
	var seqs []uint32
	dst.Handler = DeliverFunc(func(p *protocol.Packet) { seqs = append(seqs, p.Seq) })
	for i := 0; i < 200; i++ {
		i := i
		eng.At(sim.Time(i)*2*sim.Microsecond, func() {
			p := mkPkt(src.IP, dst.IP, 1448)
			p.Seq = uint32(i)
			src.Send(p)
		})
	}
	eng.Run()
	if len(seqs) != 200 {
		t.Fatalf("received %d", len(seqs))
	}
	for i, s := range seqs {
		if s != uint32(i) {
			t.Fatalf("reordering at %d: got seq %d", i, s)
		}
	}
}

func TestPaperFatTreeShape(t *testing.T) {
	cfg := PaperFatTree()
	if n := cfg.Pods * cfg.TorsPerPod * cfg.ServersPerTor; n != 2560 {
		t.Fatalf("servers = %d, want 2560", n)
	}
	sw := cfg.Pods*cfg.TorsPerPod + cfg.Pods*cfg.AggsPerPod + cfg.Cores
	if sw != 112 {
		t.Fatalf("switches = %d, want 112", sw)
	}
	// 1:4 oversubscription at the ToR.
	down := float64(cfg.ServersPerTor) * cfg.HostRateBps
	up := float64(cfg.AggsPerPod) * cfg.TorUpBps
	if down/up != 4 {
		t.Fatalf("oversubscription = %v, want 4", down/up)
	}
}

func TestDumbbellRouting(t *testing.T) {
	eng := sim.New(1)
	edge := PortConfig{RateBps: 10e9, PropDelay: sim.Microsecond}
	core := PortConfig{RateBps: 10e9, PropDelay: 5 * sim.Microsecond, QueueCap: 64, ECNThreshold: 10}
	d := NewDumbbell(eng, 3, 2, edge, core)
	got := make(map[protocol.IPv4]int)
	for _, h := range append(append([]*Host{}, d.LeftHosts...), d.RightHosts...) {
		h := h
		h.Handler = DeliverFunc(func(p *protocol.Packet) {
			if p.DstIP != h.IP {
				t.Errorf("misrouted %v at %v", p.DstIP, h.IP)
			}
			got[h.IP]++
		})
	}
	all := append(append([]*Host{}, d.LeftHosts...), d.RightHosts...)
	for _, src := range all {
		for _, dst := range all {
			if src != dst {
				src.Send(mkPkt(src.IP, dst.IP, 100))
			}
		}
	}
	eng.Run()
	for _, h := range all {
		if got[h.IP] != len(all)-1 {
			t.Fatalf("host %v received %d, want %d", h.IP, got[h.IP], len(all)-1)
		}
	}
}

func TestDumbbellBottleneckQueues(t *testing.T) {
	eng := sim.New(1)
	edge := PortConfig{RateBps: 40e9, PropDelay: sim.Microsecond}
	core := PortConfig{RateBps: 10e9, PropDelay: 5 * sim.Microsecond, QueueCap: 100, ECNThreshold: 10}
	d := NewDumbbell(eng, 4, 1, edge, core)
	d.RightHosts[0].Handler = DeliverFunc(func(*protocol.Packet) {})
	// All left hosts blast the single right host: the inter-switch link
	// must queue and mark.
	for _, src := range d.LeftHosts {
		for i := 0; i < 30; i++ {
			src.Send(mkPkt(src.IP, d.RightHosts[0].IP, 1448))
		}
	}
	eng.Run()
	if d.Bottleneck().MaxQueueLen() < 10 {
		t.Fatalf("bottleneck max queue %d, want >= 10", d.Bottleneck().MaxQueueLen())
	}
	if d.Bottleneck().Stats().CEMarks == 0 {
		t.Fatal("expected CE marks at bottleneck")
	}
}
