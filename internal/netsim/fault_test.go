package netsim

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// faultPort builds a 1 Gbps port feeding a collector, with fi attached.
func faultPort(eng *sim.Engine, fi *FaultInjector, c *collector) *Port {
	p := NewPort(eng, PortConfig{RateBps: 1e9, PropDelay: sim.Microsecond}, c)
	p.SetFaultInjector(fi)
	return p
}

func TestFaultLinkDownUpSchedule(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	fi := NewFaultInjector(eng, FaultConfig{Seed: 1})
	p := faultPort(eng, fi, c)
	// Link down during [10us, 20us): packets sent at 5, 15, 25 us.
	fi.SchedulePartition(10*sim.Microsecond, 20*sim.Microsecond)
	for _, at := range []sim.Time{5, 15, 25} {
		at := at * sim.Microsecond
		eng.At(at, func() { p.Send(mkPkt(1, 2, 100)) })
	}
	eng.Run()
	if len(c.pkts) != 2 {
		t.Fatalf("delivered %d, want 2 (middle packet hit the partition)", len(c.pkts))
	}
	if got := fi.Counters.Get(CntDownDrops); got != 1 {
		t.Fatalf("down_drops = %d, want 1 (%s)", got, fi.Counters.String())
	}
	if got := fi.Counters.Get(CntPassed); got != 2 {
		t.Fatalf("passed = %d, want 2", got)
	}
}

func TestFaultFlapSchedule(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	fi := NewFaultInjector(eng, FaultConfig{Seed: 1})
	p := faultPort(eng, fi, c)
	// 3 flaps: down 10us / up 10us starting at t=0; send one packet
	// every 5us for 60us -> packets at 0,5 | 20,25 | 40,45 dropped.
	fi.ScheduleFlaps(0, 10*sim.Microsecond, 10*sim.Microsecond, 3)
	for i := 0; i < 12; i++ {
		at := sim.Time(i*5) * sim.Microsecond
		eng.At(at, func() { p.Send(mkPkt(1, 2, 100)) })
	}
	eng.Run()
	if got := fi.Counters.Get(CntDownDrops); got != 6 {
		t.Fatalf("down_drops = %d, want 6 (%s)", got, fi.Counters.String())
	}
	if len(c.pkts) != 6 {
		t.Fatalf("delivered %d, want 6", len(c.pkts))
	}
}

func TestFaultGilbertElliottDeterministic(t *testing.T) {
	run := func() (delivered int, counters string) {
		eng := sim.New(1)
		c := &collector{eng: eng}
		ge := stats.GEConfig{PGoodToBad: 0.05, PBadToGood: 0.3, LossBad: 0.9}
		fi := NewFaultInjector(eng, FaultConfig{Seed: 99, GE: &ge})
		p := faultPort(eng, fi, c)
		for i := 0; i < 1000; i++ {
			at := sim.Time(i) * 10 * sim.Microsecond
			eng.At(at, func() { p.Send(mkPkt(1, 2, 100)) })
		}
		eng.Run()
		return len(c.pkts), fi.Counters.String()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("non-deterministic: %d %q vs %d %q", d1, s1, d2, s2)
	}
	drops := 1000 - d1
	if drops < 30 || drops > 400 {
		t.Fatalf("burst drops = %d, outside plausible band (%s)", drops, s1)
	}
}

func TestFaultReorderingBounded(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	fi := NewFaultInjector(eng, FaultConfig{
		Seed: 5, ReorderProb: 0.3, ReorderMaxDelay: 200 * sim.Microsecond,
	})
	p := faultPort(eng, fi, c)
	const n = 200
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 20 * sim.Microsecond
		seq := uint32(i)
		eng.At(at, func() {
			pkt := mkPkt(1, 2, 100)
			pkt.Seq = seq
			p.Send(pkt)
		})
	}
	eng.Run()
	if len(c.pkts) != n {
		t.Fatalf("delivered %d, want %d (reordering must not lose packets)", len(c.pkts), n)
	}
	inversions := 0
	maxDisplacement := 0
	for i, pkt := range c.pkts {
		if d := i - int(pkt.Seq); d > maxDisplacement {
			maxDisplacement = d
		}
		if i > 0 && pkt.Seq < c.pkts[i-1].Seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed")
	}
	// Bounded: 200us delay / 20us spacing => a packet can be overtaken
	// by at most ~10+serialization successors.
	if maxDisplacement > 12 {
		t.Fatalf("displacement %d exceeds the configured bound", maxDisplacement)
	}
	if got := fi.Counters.Get(CntReordered); got == 0 {
		t.Fatal("reordered counter not incremented")
	}
}

func TestFaultDuplication(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	fi := NewFaultInjector(eng, FaultConfig{Seed: 3, DupProb: 0.5})
	p := faultPort(eng, fi, c)
	const n = 100
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		eng.At(at, func() { p.Send(mkPkt(1, 2, 100)) })
	}
	eng.Run()
	dups := fi.Counters.Get(CntDuplicated)
	if dups == 0 {
		t.Fatal("no duplicates injected")
	}
	if uint64(len(c.pkts)) != n+dups {
		t.Fatalf("delivered %d, want %d originals + %d dups", len(c.pkts), n, dups)
	}
}

func TestFaultCorruptionDroppedByChecksum(t *testing.T) {
	eng := sim.New(1)
	c := &collector{eng: eng}
	fi := NewFaultInjector(eng, FaultConfig{Seed: 11, CorruptProb: 1.0})
	p := faultPort(eng, fi, c)
	const n = 200
	for i := 0; i < n; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		eng.At(at, func() {
			pkt := mkPkt(1, 2, 64)
			pkt.Payload = make([]byte, 64) // real payload so checksums cover it
			p.Send(pkt)
		})
	}
	eng.Run()
	rejected := fi.Counters.Get(CntCorruptDrops)
	passed := fi.Counters.Get(CntCorruptPass)
	if rejected+passed != n {
		t.Fatalf("corrupt verdicts %d+%d != %d sent", rejected, passed, n)
	}
	// The Ethernet header (14 of ~118 wire bytes) is outside the
	// checksummed region; almost all flips must be checksum-rejected.
	if rejected < n*3/4 {
		t.Fatalf("only %d/%d corrupted frames checksum-rejected (%s)", rejected, n, fi.Counters.String())
	}
	if uint64(len(c.pkts)) != passed {
		t.Fatalf("delivered %d, want %d survivors", len(c.pkts), passed)
	}
}
