package transport

import (
	"testing"

	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// sweepGoodput measures bulk goodput (bytes acked in a fixed window)
// over a link whose transmission, queueing, and propagation delays are
// modeled separately, at the given random-loss rate.
func sweepGoodput(seed int64, loss float64) uint64 {
	eng := sim.New(seed)
	a := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 1))
	b := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 2))
	netsim.ConnectPair(eng, a, b, netsim.PortConfig{
		RateBps: 1e9, PropDelay: 50 * sim.Microsecond, QueueCap: 200,
		LossRate: loss,
	})
	s, _ := StartFlow(NewEndpoint(a), NewEndpoint(b), 4000, 9000, SenderConfig{
		Window: congestion.NewNewReno(1448, 1<<20),
	}, ReceiverConfig{Mode: RecoverySelective})
	eng.RunUntil(200 * sim.Millisecond)
	return s.AckedBytes()
}

// TestLossSweepGracefulDegradation sweeps the random-loss rate and
// checks that goodput degrades monotonically and gracefully — the
// property the separated link model exists to preserve. A flat-delay
// model (infinite bandwidth plus a constant latency) delivers
// back-to-back writes as artificial bursts, and adding loss to it
// produces a receiver-limited collapse instead of the smooth
// congestion-limited curve real links (and netem's full model) show.
func TestLossSweepGracefulDegradation(t *testing.T) {
	rates := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	goodput := make([]uint64, len(rates))
	for i, p := range rates {
		goodput[i] = sweepGoodput(7, p)
		if goodput[i] == 0 {
			t.Fatalf("loss %.3f: zero goodput (collapse)", p)
		}
		t.Logf("loss %.3f: goodput %.1f Mbit/s", p, float64(goodput[i])*8/0.2/1e6)
	}

	// Monotone within slack: more loss never helps by more than 10%
	// (fast-retransmit timing gives small non-monotonic wiggles).
	for i := 1; i < len(rates); i++ {
		if float64(goodput[i]) > float64(goodput[i-1])*1.10 {
			t.Fatalf("goodput rose from %d to %d when loss went %.3f -> %.3f",
				goodput[i-1], goodput[i], rates[i-1], rates[i])
		}
	}

	// Graceful, not a cliff: NewReno at 2% loss should hold a meaningful
	// fraction of the lossless rate (~1.22*MSS/(RTT*sqrt(p)) is ~15% of
	// 1 Gbit/s here), and even 5% loss must stay well off the floor.
	if float64(goodput[4]) < 0.05*float64(goodput[0]) {
		t.Fatalf("cliff at 2%% loss: %d vs lossless %d", goodput[4], goodput[0])
	}
	if float64(goodput[5]) < 0.02*float64(goodput[0]) {
		t.Fatalf("cliff at 5%% loss: %d vs lossless %d", goodput[5], goodput[0])
	}

	// Deterministic: the sweep is a regression gate, so the same seed
	// must reproduce the same byte counts exactly.
	if again := sweepGoodput(7, 0.02); again != goodput[4] {
		t.Fatalf("non-deterministic sweep: %d then %d at 2%% loss", goodput[4], again)
	}
}
