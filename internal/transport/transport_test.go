package transport

import (
	"testing"

	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// pairNet builds two hosts on a direct 10G link with 25us one-way delay
// and optional loss.
func pairNet(seed int64, loss float64) (*sim.Engine, *Endpoint, *Endpoint) {
	eng := sim.New(seed)
	a := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 1))
	b := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 2))
	netsim.ConnectPair(eng, a, b, netsim.PortConfig{
		RateBps: 10e9, PropDelay: 25 * sim.Microsecond, QueueCap: 500,
		ECNThreshold: 65, LossRate: loss,
	})
	return eng, NewEndpoint(a), NewEndpoint(b)
}

func TestSizedFlowCompletesNewReno(t *testing.T) {
	eng, a, b := pairNet(1, 0)
	var fct sim.Time
	s, r := StartFlow(a, b, 4000, 9000, SenderConfig{
		Size:       1 << 20,
		Window:     congestion.NewNewReno(1448, 1<<20),
		OnComplete: func(d sim.Time) { fct = d },
	}, ReceiverConfig{Mode: RecoverySelective})
	eng.RunUntil(sim.Second)
	if !s.Finished() {
		t.Fatalf("flow did not finish: acked=%d", s.AckedBytes())
	}
	if r.BytesReceived != 1<<20 {
		t.Fatalf("received %d, want %d", r.BytesReceived, 1<<20)
	}
	if fct <= 0 {
		t.Fatal("no FCT reported")
	}
	// 1MB at 10G is ~840us + slow start; should complete well under 10ms.
	if fct > 10*sim.Millisecond {
		t.Fatalf("FCT %v too slow", fct)
	}
	if s.Stats().RetxBytes != 0 {
		t.Fatalf("lossless run retransmitted %d bytes", s.Stats().RetxBytes)
	}
}

func TestSizedFlowCompletesRateDCTCP(t *testing.T) {
	eng, a, b := pairNet(2, 0)
	s, r := StartFlow(a, b, 4000, 9000, SenderConfig{
		Size:            1 << 20,
		Rate:            congestion.NewRateDCTCP(congestion.DefaultConfig(10e9)),
		ControlInterval: 100 * sim.Microsecond,
	}, ReceiverConfig{Mode: RecoveryOneInterval})
	eng.RunUntil(sim.Second)
	if !s.Finished() {
		t.Fatalf("rate flow did not finish: acked=%d", s.AckedBytes())
	}
	if r.BytesReceived != 1<<20 {
		t.Fatalf("received %d", r.BytesReceived)
	}
}

func TestBulkFlowNearLineRate(t *testing.T) {
	eng, a, b := pairNet(3, 0)
	s, _ := StartFlow(a, b, 4000, 9000, SenderConfig{
		Window: congestion.NewNewReno(1448, 1<<20),
	}, ReceiverConfig{Mode: RecoverySelective})
	eng.RunUntil(100 * sim.Millisecond)
	gbps := float64(s.AckedBytes()) * 8 / 0.1 / 1e9
	// Goodput should be > 85% of 10G (header overhead ~4%).
	if gbps < 8.5 {
		t.Fatalf("bulk goodput %.2f Gbps, want > 8.5", gbps)
	}
	if gbps > 10 {
		t.Fatalf("goodput %.2f Gbps exceeds line rate", gbps)
	}
}

func TestBulkRateSenderNearLineRate(t *testing.T) {
	eng, a, b := pairNet(4, 0)
	s, _ := StartFlow(a, b, 4000, 9000, SenderConfig{
		Rate:            congestion.NewRateDCTCP(congestion.DefaultConfig(10e9)),
		ControlInterval: 200 * sim.Microsecond,
	}, ReceiverConfig{Mode: RecoveryOneInterval})
	eng.RunUntil(100 * sim.Millisecond)
	gbps := float64(s.AckedBytes()) * 8 / 0.1 / 1e9
	if gbps < 8 {
		t.Fatalf("rate-based bulk goodput %.2f Gbps, want > 8", gbps)
	}
}

func TestLossRecoveryAllModes(t *testing.T) {
	for _, mode := range []RecoveryMode{RecoverySelective, RecoveryOneInterval, RecoveryGoBackN} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			eng, a, b := pairNet(5, 0.02) // 2% loss
			cfg := SenderConfig{
				Size:   512 << 10,
				Window: congestion.NewNewReno(1448, 1<<20),
			}
			if mode != RecoverySelective {
				cfg.GoBackN = true
			}
			s, r := StartFlow(a, b, 4000, 9000, cfg, ReceiverConfig{Mode: mode})
			eng.RunUntil(5 * sim.Second)
			if !s.Finished() {
				t.Fatalf("flow with 2%% loss did not finish (mode %v): acked=%d", mode, s.AckedBytes())
			}
			if r.BytesReceived != 512<<10 {
				t.Fatalf("received %d", r.BytesReceived)
			}
			if s.Stats().RetxBytes == 0 {
				t.Fatal("expected retransmissions under loss")
			}
		})
	}
}

func TestLossRecoveryEfficiencyOrdering(t *testing.T) {
	// Retransmission volume: selective <= one-interval <= go-back-N, the
	// mechanism behind Figure 7.
	retx := func(seed int64, mode RecoveryMode, gbn bool) uint64 {
		eng, a, b := pairNet(seed, 0.02)
		s, _ := StartFlow(a, b, 4000, 9000, SenderConfig{
			Size:    2 << 20,
			Window:  congestion.NewNewReno(1448, 1<<20),
			GoBackN: gbn,
		}, ReceiverConfig{Mode: mode})
		eng.RunUntil(20 * sim.Second)
		if !s.Finished() {
			t.Fatalf("mode %v seed %d did not finish", mode, seed)
		}
		return s.Stats().RetxBytes
	}
	// Loss realizations differ per run (different packet counts consume
	// the RNG differently), so compare averages over several seeds.
	var sel, ooo, gbn uint64
	for seed := int64(70); seed < 78; seed++ {
		sel += retx(seed, RecoverySelective, false)
		ooo += retx(seed, RecoveryOneInterval, true)
		gbn += retx(seed, RecoveryGoBackN, true)
	}
	if !(sel < ooo && ooo < gbn) {
		t.Fatalf("mean retx ordering violated: selective=%d one-interval=%d gbn=%d", sel, ooo, gbn)
	}
}

func TestRateSenderRecoversFromLoss(t *testing.T) {
	eng, a, b := pairNet(6, 0.01)
	s, r := StartFlow(a, b, 4000, 9000, SenderConfig{
		Size:            512 << 10,
		Rate:            congestion.NewRateDCTCP(congestion.DefaultConfig(10e9)),
		ControlInterval: 100 * sim.Microsecond,
	}, ReceiverConfig{Mode: RecoveryOneInterval})
	eng.RunUntil(10 * sim.Second)
	if !s.Finished() {
		t.Fatalf("rate flow with loss did not finish: acked=%d", s.AckedBytes())
	}
	if r.BytesReceived != 512<<10 {
		t.Fatalf("received %d", r.BytesReceived)
	}
}

func TestECNFeedbackReachesSender(t *testing.T) {
	// Two DCTCP flows into one 10G link from separate hosts through a
	// switch port with a low mark threshold: senders must observe ECE.
	eng := sim.New(7)
	h1 := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 1))
	h2 := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 2))
	h3 := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 3))
	cfg := netsim.PortConfig{RateBps: 10e9, PropDelay: 10 * sim.Microsecond, QueueCap: 500, ECNThreshold: 20}
	netsim.NewStar(eng, []*netsim.Host{h1, h2, h3}, cfg, cfg)
	e1, e2, e3 := NewEndpoint(h1), NewEndpoint(h2), NewEndpoint(h3)
	s1, _ := StartFlow(e1, e3, 4000, 9000, SenderConfig{
		Window: congestion.NewWindowDCTCP(1448, 1<<20),
	}, ReceiverConfig{Mode: RecoverySelective})
	s2, _ := StartFlow(e2, e3, 4001, 9000, SenderConfig{
		Window: congestion.NewWindowDCTCP(1448, 1<<20),
	}, ReceiverConfig{Mode: RecoverySelective})
	eng.RunUntil(50 * sim.Millisecond)
	if s1.Stats().EcnAckedBytes == 0 && s2.Stats().EcnAckedBytes == 0 {
		t.Fatal("expected ECN feedback under congestion")
	}
	// Combined goodput near line rate despite marking.
	total := float64(s1.AckedBytes()+s2.AckedBytes()) * 8 / 0.05 / 1e9
	if total < 8 {
		t.Fatalf("combined goodput %.2f Gbps", total)
	}
}

func TestReceiverOneIntervalPolicy(t *testing.T) {
	eng, a, b := pairNet(8, 0)
	key := protocol.FlowKey{LocalIP: b.Host.IP, LocalPort: 9000, RemoteIP: a.Host.IP, RemotePort: 4000}
	r := NewReceiver(b, key, ReceiverConfig{Mode: RecoveryOneInterval})
	mk := func(seq uint32, n int) *protocol.Packet {
		return &protocol.Packet{
			SrcIP: a.Host.IP, DstIP: b.Host.IP, SrcPort: 4000, DstPort: 9000,
			Flags: protocol.FlagACK, Seq: seq, PayloadLen: n, ECN: protocol.ECNECT0,
		}
	}
	// Gap at 0..100; deliver 100..200 (starts interval), 300..400
	// (non-adjacent: dropped), 200..300 (extends interval).
	r.onPacket(mk(100, 100))
	if r.Expected() != 0 || r.OooAccepted != 100 {
		t.Fatalf("expected=%d oooAccepted=%d", r.Expected(), r.OooAccepted)
	}
	r.onPacket(mk(300, 100))
	if r.OooDropped != 100 {
		t.Fatalf("non-adjacent OOO should drop, dropped=%d", r.OooDropped)
	}
	r.onPacket(mk(200, 100))
	if r.OooAccepted != 200 {
		t.Fatalf("adjacent OOO should extend, accepted=%d", r.OooAccepted)
	}
	// Fill the gap: expected jumps to 300.
	r.onPacket(mk(0, 100))
	if r.Expected() != 300 {
		t.Fatalf("after gap fill expected=%d, want 300", r.Expected())
	}
	if r.BytesReceived != 300 {
		t.Fatalf("delivered=%d", r.BytesReceived)
	}
	_ = eng
}

func TestReceiverSelectivePolicy(t *testing.T) {
	_, a, b := pairNet(9, 0)
	key := protocol.FlowKey{LocalIP: b.Host.IP, LocalPort: 9000, RemoteIP: a.Host.IP, RemotePort: 4000}
	r := NewReceiver(b, key, ReceiverConfig{Mode: RecoverySelective})
	mk := func(seq uint32, n int) *protocol.Packet {
		return &protocol.Packet{
			SrcIP: a.Host.IP, DstIP: b.Host.IP, SrcPort: 4000, DstPort: 9000,
			Flags: protocol.FlagACK, Seq: seq, PayloadLen: n, ECN: protocol.ECNECT0,
		}
	}
	// Multiple disjoint intervals all buffered.
	r.onPacket(mk(100, 100))
	r.onPacket(mk(300, 100))
	r.onPacket(mk(500, 100))
	if r.OooAccepted != 300 || r.OooDropped != 0 {
		t.Fatalf("selective should buffer all: accepted=%d dropped=%d", r.OooAccepted, r.OooDropped)
	}
	r.onPacket(mk(0, 100)) // -> expected 200
	if r.Expected() != 200 {
		t.Fatalf("expected=%d, want 200", r.Expected())
	}
	r.onPacket(mk(200, 100)) // -> merges through 400
	if r.Expected() != 400 {
		t.Fatalf("expected=%d, want 400", r.Expected())
	}
	r.onPacket(mk(400, 100)) // -> merges through 600
	if r.Expected() != 600 {
		t.Fatalf("expected=%d, want 600", r.Expected())
	}
}

func TestReceiverGoBackNPolicy(t *testing.T) {
	_, a, b := pairNet(10, 0)
	key := protocol.FlowKey{LocalIP: b.Host.IP, LocalPort: 9000, RemoteIP: a.Host.IP, RemotePort: 4000}
	r := NewReceiver(b, key, ReceiverConfig{Mode: RecoveryGoBackN})
	pkt := &protocol.Packet{
		SrcIP: a.Host.IP, DstIP: b.Host.IP, SrcPort: 4000, DstPort: 9000,
		Flags: protocol.FlagACK, Seq: 100, PayloadLen: 100, ECN: protocol.ECNECT0,
	}
	r.onPacket(pkt)
	if r.OooDropped != 100 || r.OooAccepted != 0 {
		t.Fatalf("GBN must drop all OOO: dropped=%d accepted=%d", r.OooDropped, r.OooAccepted)
	}
}

func TestReceiverDuplicateSuppression(t *testing.T) {
	_, a, b := pairNet(11, 0)
	key := protocol.FlowKey{LocalIP: b.Host.IP, LocalPort: 9000, RemoteIP: a.Host.IP, RemotePort: 4000}
	r := NewReceiver(b, key, ReceiverConfig{Mode: RecoverySelective})
	mk := func(seq uint32, n int) *protocol.Packet {
		return &protocol.Packet{
			SrcIP: a.Host.IP, DstIP: b.Host.IP, SrcPort: 4000, DstPort: 9000,
			Flags: protocol.FlagACK, Seq: seq, PayloadLen: n, ECN: protocol.ECNECT0,
		}
	}
	r.onPacket(mk(0, 100))
	r.onPacket(mk(0, 100)) // exact duplicate
	if r.DupDropped != 100 {
		t.Fatalf("dup dropped = %d", r.DupDropped)
	}
	if r.BytesReceived != 100 {
		t.Fatalf("delivered = %d", r.BytesReceived)
	}
	// Partial overlap: 50..150 when expected=100 delivers 50.
	r.onPacket(mk(50, 100))
	if r.Expected() != 150 || r.BytesReceived != 150 {
		t.Fatalf("partial overlap: expected=%d delivered=%d", r.Expected(), r.BytesReceived)
	}
}

func TestReceiverBufferBound(t *testing.T) {
	_, a, b := pairNet(12, 0)
	key := protocol.FlowKey{LocalIP: b.Host.IP, LocalPort: 9000, RemoteIP: a.Host.IP, RemotePort: 4000}
	r := NewReceiver(b, key, ReceiverConfig{Mode: RecoverySelective, RxBufSize: 1024, Window: 1024})
	pkt := &protocol.Packet{
		SrcIP: a.Host.IP, DstIP: b.Host.IP, SrcPort: 4000, DstPort: 9000,
		Flags: protocol.FlagACK, Seq: 5000, PayloadLen: 100, ECN: protocol.ECNECT0,
	}
	r.onPacket(pkt)
	if r.OooAccepted != 0 || r.OooDropped != 100 {
		t.Fatal("data beyond the receive buffer must be dropped")
	}
}

func TestAcceptAll(t *testing.T) {
	eng, a, b := pairNet(13, 0)
	b.AcceptAll(ReceiverConfig{Mode: RecoveryOneInterval})
	key := protocol.FlowKey{LocalIP: a.Host.IP, LocalPort: 4000, RemoteIP: b.Host.IP, RemotePort: 9000}
	s := NewSender(a, key, SenderConfig{
		Size:   100 << 10,
		Window: congestion.NewNewReno(1448, 1<<20),
	})
	s.Start()
	eng.RunUntil(sim.Second)
	if !s.Finished() {
		t.Fatal("flow to AcceptAll endpoint did not finish")
	}
	r := b.Receiver(key.Reverse())
	if r == nil || r.BytesReceived != 100<<10 {
		t.Fatal("auto-created receiver missing or short")
	}
}

func TestManyFlowsShareLinkFairly(t *testing.T) {
	// 10 rate-based flows share one 10G link; all should finish with
	// comparable goodput (fairness smoke test for fig13 machinery).
	eng := sim.New(14)
	var hosts []*netsim.Host
	for i := 0; i < 11; i++ {
		hosts = append(hosts, netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 1, byte(i+1))))
	}
	cfg := netsim.PortConfig{RateBps: 10e9, PropDelay: 10 * sim.Microsecond, QueueCap: 300, ECNThreshold: 65}
	netsim.NewStar(eng, hosts, cfg, cfg)
	sink := NewEndpoint(hosts[10])
	sink.AcceptAll(ReceiverConfig{Mode: RecoveryOneInterval})
	var senders []*Sender
	for i := 0; i < 10; i++ {
		ep := NewEndpoint(hosts[i])
		key := protocol.FlowKey{LocalIP: hosts[i].IP, LocalPort: 4000, RemoteIP: hosts[10].IP, RemotePort: 9000}
		s := NewSender(ep, key, SenderConfig{
			Rate:            congestion.NewRateDCTCP(congestion.DefaultConfig(10e9)),
			ControlInterval: 200 * sim.Microsecond,
		})
		s.Start()
		senders = append(senders, s)
	}
	eng.RunUntil(200 * sim.Millisecond)
	var minB, maxB uint64 = 1 << 62, 0
	var total uint64
	for _, s := range senders {
		b := s.AckedBytes()
		total += b
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	gbps := float64(total) * 8 / 0.2 / 1e9
	if gbps < 7 {
		t.Fatalf("aggregate %.2f Gbps too low", gbps)
	}
	if minB == 0 {
		t.Fatal("a flow was starved")
	}
	if ratio := float64(maxB) / float64(minB); ratio > 5 {
		t.Fatalf("fairness ratio %.1f too high (max=%d min=%d)", ratio, maxB, minB)
	}
}

func TestDumbbellBottleneckSharing(t *testing.T) {
	// 4 left senders -> 4 right receivers across a 10G inter-switch
	// bottleneck: DCTCP keeps aggregate goodput near the bottleneck and
	// shares it roughly fairly.
	eng := sim.New(21)
	edge := netsim.PortConfig{RateBps: 40e9, PropDelay: 2 * sim.Microsecond, QueueCap: 500}
	core := netsim.PortConfig{RateBps: 10e9, PropDelay: 10 * sim.Microsecond, QueueCap: 500, ECNThreshold: 65}
	d := netsim.NewDumbbell(eng, 4, 4, edge, core)
	var senders []*Sender
	for i := 0; i < 4; i++ {
		src := NewEndpoint(d.LeftHosts[i])
		dst := NewEndpoint(d.RightHosts[i])
		dst.AcceptAll(ReceiverConfig{Mode: RecoverySelective})
		key := protocol.FlowKey{LocalIP: d.LeftHosts[i].IP, LocalPort: 4000, RemoteIP: d.RightHosts[i].IP, RemotePort: 9000}
		s := NewSender(src, key, SenderConfig{Window: congestion.NewWindowDCTCP(1448, 1<<20)})
		s.Start()
		senders = append(senders, s)
	}
	eng.RunUntil(100 * sim.Millisecond)
	var total, minB, maxB uint64
	minB = ^uint64(0)
	for _, s := range senders {
		b := s.AckedBytes()
		total += b
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	gbps := float64(total) * 8 / 0.1 / 1e9
	if gbps < 8 || gbps > 10 {
		t.Fatalf("aggregate %.2f Gbps, want ~9.5 (bottleneck-bound)", gbps)
	}
	if minB == 0 || float64(maxB)/float64(minB) > 3 {
		t.Fatalf("unfair sharing: min=%d max=%d", minB, maxB)
	}
	if d.Bottleneck().Stats().CEMarks == 0 {
		t.Fatal("expected marking at the bottleneck")
	}
}
