package transport

import (
	"sort"

	"repro/internal/protocol"
	"repro/internal/tcp"
)

// ReceiverConfig configures a data sink.
type ReceiverConfig struct {
	Mode   RecoveryMode
	Window uint32 // advertised receive window in bytes (0 = 1 MiB)
	// RxBufSize bounds how far ahead of the cumulative ack the receiver
	// will buffer out-of-order data (the per-flow receive payload
	// buffer); 0 = Window.
	RxBufSize uint32
}

func (c *ReceiverConfig) fill() {
	if c.Window == 0 {
		c.Window = 1 << 20
	}
	if c.RxBufSize == 0 {
		c.RxBufSize = c.Window
	}
}

// interval is a received out-of-order range [start, start+len).
type interval struct{ start, length uint32 }

// Receiver consumes a byte stream, generating cumulative ACKs with ECN
// echo, and applies one of the three out-of-order policies.
type Receiver struct {
	ep  *Endpoint
	key protocol.FlowKey
	cfg ReceiverConfig

	expected uint32 // next in-order sequence expected (cumulative ack)

	// Selective mode: all buffered OOO intervals, kept merged+sorted.
	intervals []interval

	// One-interval mode: the single tracked interval (TAS ooo_start|len).
	oooStart, oooLen uint32
	haveOoo          bool

	// Stats.
	BytesReceived uint64 // in-order bytes delivered
	OooAccepted   uint64 // out-of-order bytes buffered
	OooDropped    uint64 // out-of-order bytes dropped (policy or buffer)
	DupDropped    uint64 // duplicate/below-window bytes
	AcksSent      uint64
}

func newReceiver(ep *Endpoint, key protocol.FlowKey, cfg ReceiverConfig) *Receiver {
	cfg.fill()
	return &Receiver{ep: ep, key: key, cfg: cfg}
}

// NewReceiver registers a receiver for the given flow (local view).
func NewReceiver(ep *Endpoint, key protocol.FlowKey, cfg ReceiverConfig) *Receiver {
	r := newReceiver(ep, key, cfg)
	ep.register(key, r)
	return r
}

// Expected returns the cumulative ack point.
func (r *Receiver) Expected() uint32 { return r.expected }

func (r *Receiver) onPacket(pkt *protocol.Packet) {
	n := uint32(pkt.DataLen())
	if n == 0 {
		return // pure ack to a receiver: ignore
	}
	seq := pkt.Seq
	end := seq + n
	ce := pkt.ECN == protocol.ECNCE

	switch {
	case tcp.SeqLEQ(end, r.expected):
		// Entirely old: duplicate.
		r.DupDropped += uint64(n)
	case tcp.SeqLEQ(seq, r.expected):
		// In-order (possibly partially duplicate) data: deliver.
		adv := uint32(tcp.SeqDiff(end, r.expected))
		r.expected = end
		r.BytesReceived += uint64(adv)
		r.mergeBuffered()
	default:
		// Out of order.
		r.handleOoo(seq, n)
	}

	r.sendAck(pkt, ce)
}

// handleOoo applies the policy to a segment strictly beyond expected.
func (r *Receiver) handleOoo(seq, n uint32) {
	// Beyond the receive buffer: drop regardless of mode.
	if tcp.SeqDiff(seq+n, r.expected) > int32(r.cfg.RxBufSize) {
		r.OooDropped += uint64(n)
		return
	}
	switch r.cfg.Mode {
	case RecoveryGoBackN:
		r.OooDropped += uint64(n)
	case RecoveryOneInterval:
		// TAS: accept only segments extending or within the single
		// tracked interval (§3.1): start a new interval if none, extend
		// if contiguous/overlapping, drop otherwise.
		switch {
		case !r.haveOoo:
			r.haveOoo = true
			r.oooStart, r.oooLen = seq, n
			r.OooAccepted += uint64(n)
		case tcp.SeqLEQ(seq, r.oooStart+r.oooLen) && tcp.SeqGEQ(seq+n, r.oooStart):
			// Overlaps or abuts the tracked interval: extend.
			ns := tcp.SeqMin(r.oooStart, seq)
			ne := tcp.SeqMax(r.oooStart+r.oooLen, seq+n)
			grown := uint32(tcp.SeqDiff(ne, ns)) - r.oooLen
			r.oooStart, r.oooLen = ns, uint32(tcp.SeqDiff(ne, ns))
			r.OooAccepted += uint64(grown)
		default:
			r.OooDropped += uint64(n)
		}
	case RecoverySelective:
		r.insertInterval(seq, n)
	}
}

// mergeBuffered advances expected through any buffered data that is now
// in order.
func (r *Receiver) mergeBuffered() {
	switch r.cfg.Mode {
	case RecoveryOneInterval:
		if r.haveOoo && tcp.SeqLEQ(r.oooStart, r.expected) {
			if end := r.oooStart + r.oooLen; tcp.SeqGT(end, r.expected) {
				adv := uint32(tcp.SeqDiff(end, r.expected))
				r.expected = end
				r.BytesReceived += uint64(adv)
			}
			r.haveOoo = false
			r.oooLen = 0
		}
	case RecoverySelective:
		for len(r.intervals) > 0 && tcp.SeqLEQ(r.intervals[0].start, r.expected) {
			iv := r.intervals[0]
			r.intervals = r.intervals[1:]
			if end := iv.start + iv.length; tcp.SeqGT(end, r.expected) {
				adv := uint32(tcp.SeqDiff(end, r.expected))
				r.expected = end
				r.BytesReceived += uint64(adv)
			}
		}
	}
}

// insertInterval merges [seq, seq+n) into the sorted interval set.
func (r *Receiver) insertInterval(seq, n uint32) {
	r.OooAccepted += uint64(n)
	r.intervals = append(r.intervals, interval{seq, n})
	sort.Slice(r.intervals, func(i, j int) bool {
		return tcp.SeqLT(r.intervals[i].start, r.intervals[j].start)
	})
	merged := r.intervals[:1]
	for _, iv := range r.intervals[1:] {
		last := &merged[len(merged)-1]
		if tcp.SeqLEQ(iv.start, last.start+last.length) {
			if e := iv.start + iv.length; tcp.SeqGT(e, last.start+last.length) {
				last.length = uint32(tcp.SeqDiff(e, last.start))
			}
		} else {
			merged = append(merged, iv)
		}
	}
	r.intervals = merged
}

func (r *Receiver) sendAck(data *protocol.Packet, ce bool) {
	ack := &protocol.Packet{
		SrcIP: r.key.LocalIP, DstIP: r.key.RemoteIP,
		SrcPort: r.key.LocalPort, DstPort: r.key.RemotePort,
		Flags:  protocol.FlagACK,
		Ack:    r.expected,
		Window: uint16(min32(r.cfg.Window, 0xffff)),
		ECN:    protocol.ECNECT0,
	}
	if ce {
		ack.Flags |= protocol.FlagECE
	}
	if data.HasTS {
		ack.HasTS = true
		ack.TSVal = uint32(r.ep.eng.Now() / 1000)
		ack.TSEcr = data.TSVal
	}
	r.AcksSent++
	r.ep.send(ack)
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}
