package transport

import (
	"repro/internal/protocol"
)

// StartFlow wires a sender at src and a matching receiver at dst on the
// given port pair, starts the sender, and returns both halves.
func StartFlow(src, dst *Endpoint, srcPort, dstPort uint16, scfg SenderConfig, rcfg ReceiverConfig) (*Sender, *Receiver) {
	key := protocol.FlowKey{
		LocalIP: src.Host.IP, LocalPort: srcPort,
		RemoteIP: dst.Host.IP, RemotePort: dstPort,
	}
	r := NewReceiver(dst, key.Reverse(), rcfg)
	s := NewSender(src, key, scfg)
	s.Start()
	return s, r
}
