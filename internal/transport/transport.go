// Package transport implements byte-stream TCP data transfer over the
// network simulator, at the fidelity the paper's transport-level
// experiments need: slow start, congestion avoidance, fast retransmit,
// retransmission timeouts, ECN echo, and three loss-recovery modes —
//
//   - RecoverySelective: the receiver buffers all out-of-order data and
//     the sender retransmits only missing segments (models Linux with
//     SACK, the paper's loss-resilience baseline);
//   - RecoveryOneInterval: the receiver tracks exactly one out-of-order
//     interval, dropping other out-of-order arrivals — the TAS fast path
//     (§3.1, Exceptions);
//   - RecoveryGoBackN: the receiver drops all out-of-order data — "TAS
//     simple recovery" in Figure 7.
//
// Senders come in two flavors: window-based (ack-clocked, driven by a
// congestion.WindowController — the Linux/DCTCP model) and rate-based
// (paced by a token rate that a congestion.RateController updates every
// control interval τ — the TAS model, where the slow path sets rates the
// fast path enforces).
package transport

import (
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/sim"
)

// RecoveryMode selects the receiver's out-of-order policy (and with it,
// how much the sender must resend after loss).
type RecoveryMode int

// Recovery modes.
const (
	RecoverySelective RecoveryMode = iota
	RecoveryOneInterval
	RecoveryGoBackN
)

// String names the mode.
func (m RecoveryMode) String() string {
	switch m {
	case RecoverySelective:
		return "selective"
	case RecoveryOneInterval:
		return "one-interval"
	case RecoveryGoBackN:
		return "go-back-n"
	}
	return "unknown"
}

// conn is anything that consumes packets for one flow key.
type conn interface {
	onPacket(pkt *protocol.Packet)
}

// Endpoint attaches to a netsim.Host and demultiplexes TCP segments to
// senders and receivers by 4-tuple.
type Endpoint struct {
	Host  *netsim.Host
	eng   *sim.Engine
	conns map[protocol.FlowKey]conn

	// acceptCfg, when non-nil, auto-creates a Receiver for any unknown
	// incoming flow.
	acceptCfg *ReceiverConfig
}

// NewEndpoint wraps host and installs itself as the packet handler.
func NewEndpoint(host *netsim.Host) *Endpoint {
	e := &Endpoint{Host: host, eng: host.Engine(), conns: make(map[protocol.FlowKey]conn)}
	host.Handler = netsim.DeliverFunc(e.deliver)
	return e
}

// AcceptAll makes the endpoint create a Receiver with cfg for every
// incoming flow that has no connection yet.
func (e *Endpoint) AcceptAll(cfg ReceiverConfig) { c := cfg; e.acceptCfg = &c }

func (e *Endpoint) deliver(pkt *protocol.Packet) {
	key := pkt.RxKey()
	c, ok := e.conns[key]
	if !ok {
		if e.acceptCfg == nil || pkt.DataLen() == 0 {
			return // no consumer: drop (a real stack would RST)
		}
		r := newReceiver(e, key, *e.acceptCfg)
		e.conns[key] = r
		c = r
	}
	c.onPacket(pkt)
}

func (e *Endpoint) register(key protocol.FlowKey, c conn) { e.conns[key] = c }

// Receiver returns the receiver for a flow key, if one exists.
func (e *Endpoint) Receiver(key protocol.FlowKey) *Receiver {
	if r, ok := e.conns[key].(*Receiver); ok {
		return r
	}
	return nil
}

// send stamps and transmits a packet from this endpoint's host.
func (e *Endpoint) send(pkt *protocol.Packet) { e.Host.Send(pkt) }
