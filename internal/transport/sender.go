package transport

import (
	"repro/internal/congestion"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// SenderConfig configures one data-sending flow.
type SenderConfig struct {
	MSS  int    // segment payload size (default protocol.DefaultMSS)
	Size uint64 // bytes to send; 0 = unbounded (bulk flow)

	// Exactly one of Window or Rate must be set.
	Window congestion.WindowController // ack-clocked window sender
	Rate   congestion.RateController   // paced rate sender (TAS model)

	// ControlInterval is the slow-path control interval τ for rate
	// senders (default 100us). The rate controller runs once per τ, and
	// stall detection (the slow path's retransmission timeout, §3.2)
	// fires after StallIntervals τ without ack progress (default 2).
	ControlInterval sim.Time
	StallIntervals  int
	// AdaptiveInterval makes τ track 2x the measured RTT (the paper's
	// default: "every control interval (by default every 2 RTTs)"),
	// with ControlInterval as the floor. Keeps the control loop stable
	// when queueing inflates the RTT.
	AdaptiveInterval bool

	// GoBackN makes fast retransmit resend everything from the
	// cumulative ack instead of just the first missing segment. Rate
	// senders always go back N (the TAS fast path "resets the sender
	// state as if those segments had not been sent").
	GoBackN bool

	// MaxInflight caps unacknowledged bytes (stands in for the
	// negotiated receive window; default 1 MiB).
	MaxInflight uint32

	// MinRTO clamps the retransmission timeout (default 1ms).
	MinRTO sim.Time
	// MaxRTO clamps it from above and serves as the pre-first-sample
	// initial RTO (default 1s, TCP's conventional initial value).
	MaxRTO sim.Time

	// OnComplete fires when the last byte is acknowledged (sized flows).
	OnComplete func(fct sim.Time)
}

func (c *SenderConfig) fill() {
	if c.MSS <= 0 {
		c.MSS = protocol.DefaultMSS
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 1 << 20
	}
	if c.ControlInterval <= 0 {
		c.ControlInterval = 100 * sim.Microsecond
	}
	if c.StallIntervals <= 0 {
		c.StallIntervals = 2
	}
	if c.MinRTO <= 0 {
		c.MinRTO = sim.Millisecond
	}
}

// SenderStats reports what a sender did.
type SenderStats struct {
	SentBytes     uint64 // payload bytes transmitted, including retransmissions
	RetxBytes     uint64 // of those, retransmitted
	AckedBytes    uint64 // cumulative bytes acknowledged
	Frexmits      uint64 // fast-retransmit events
	Timeouts      uint64 // retransmission timeouts
	EcnAckedBytes uint64 // acked bytes whose acks carried ECE
}

// Sender transmits a byte stream over the simulated network.
type Sender struct {
	ep  *Endpoint
	eng *sim.Engine
	key protocol.FlowKey
	cfg SenderConfig

	started   bool
	startTime sim.Time
	finished  bool

	nextSend      uint32 // next sequence to transmit
	sentHigh      uint32 // highest sequence transmitted + 1
	cumAck        uint32 // highest cumulative ack received
	dupAcks       int
	inRecov       bool
	everRecovered bool
	recover       uint32

	rtt        *tcp.RTTEstimator
	rtoTimer   *sim.Timer
	rtoBackoff int

	// Rate-sender pacing state: the last transmission time and the wire
	// bits it "owes"; the next send is eligible once the owed bits have
	// drained at the *current* rate, so rate increases immediately pull
	// the next transmission earlier.
	lastTxTime   sim.Time
	owedBits     float64
	paceTimer    *sim.Timer
	ctrlTimer    *sim.Timer
	lastTick     sim.Time
	stallAck     uint32
	stallCount   int
	stallBackoff int

	// Interval counters for congestion feedback.
	ivAcked, ivEcn, ivSent uint64
	ivFrexmits, ivTimeouts uint32
	// txRateEwma smooths the measured send rate across control
	// intervals: with small τ only a handful of packets fit in one
	// interval, and the controller's 1.2x send-rate cap must not clamp
	// against that quantization noise.
	txRateEwma  float64
	txRateValid bool

	stats SenderStats
}

// NewSender registers a sender for the flow on ep (local side of key is
// ep's host). Call Start to begin transmission.
func NewSender(ep *Endpoint, key protocol.FlowKey, cfg SenderConfig) *Sender {
	cfg.fill()
	if (cfg.Window == nil) == (cfg.Rate == nil) {
		panic("transport: exactly one of Window or Rate must be set")
	}
	s := &Sender{ep: ep, eng: ep.eng, key: key, cfg: cfg, rtt: tcp.NewRTTEstimator()}
	s.rtt.MinRTO = int64(cfg.MinRTO)
	if cfg.MaxRTO > 0 {
		s.rtt.MaxRTO = int64(cfg.MaxRTO)
	}
	ep.register(key, s)
	return s
}

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// Finished reports whether a sized flow has been fully acknowledged.
func (s *Sender) Finished() bool { return s.finished }

// AckedBytes returns the cumulative acknowledged byte count.
func (s *Sender) AckedBytes() uint64 { return s.stats.AckedBytes }

// Start begins transmission at the current simulated time.
func (s *Sender) Start() {
	if s.started {
		return
	}
	s.started = true
	s.startTime = s.eng.Now()
	s.lastTxTime = s.eng.Now()
	if s.cfg.Rate != nil {
		if s.cfg.AdaptiveInterval {
			var tick func()
			tick = func() {
				s.controlTick()
				if s.finished {
					return
				}
				next := s.cfg.ControlInterval
				if rtt := sim.Time(2 * s.rtt.SRTT()); rtt > next {
					next = rtt
				}
				s.ctrlTimer = s.eng.After(next, tick)
			}
			s.ctrlTimer = s.eng.After(s.cfg.ControlInterval, tick)
		} else {
			s.ctrlTimer = s.eng.Every(s.cfg.ControlInterval, s.controlTick)
		}
		s.schedulePacedSend()
	} else {
		s.trySendWindow()
	}
}

// remaining returns how many bytes past nextSend are still unsent (for
// unbounded flows, always plenty).
func (s *Sender) remaining() uint64 {
	if s.cfg.Size == 0 {
		return 1 << 62
	}
	sentNew := s.stats.AckedBytes + uint64(uint32(tcp.SeqDiff(s.nextSend, s.cumAck)))
	if sentNew >= s.cfg.Size {
		return 0
	}
	return s.cfg.Size - sentNew
}

func (s *Sender) inflight() uint32 {
	// Measured from nextSend, not sentHigh: after a go-back-N rewind the
	// rewound segments count as "not sent" (the paper's fast path resets
	// the sender state exactly this way), which is what lets the window
	// admit the retransmissions.
	return uint32(tcp.SeqDiff(s.nextSend, s.cumAck))
}

// sendSegment transmits one segment at nextSend.
func (s *Sender) sendSegment(n int) {
	retx := tcp.SeqLT(s.nextSend, s.sentHigh)
	pkt := &protocol.Packet{
		SrcIP: s.key.LocalIP, DstIP: s.key.RemoteIP,
		SrcPort: s.key.LocalPort, DstPort: s.key.RemotePort,
		Flags: protocol.FlagACK, Seq: s.nextSend,
		PayloadLen: n,
		ECN:        protocol.ECNECT0,
		HasTS:      true,
		TSVal:      uint32(s.eng.Now() / 1000),
	}
	s.nextSend += uint32(n)
	if tcp.SeqGT(s.nextSend, s.sentHigh) {
		s.sentHigh = s.nextSend
	}
	s.stats.SentBytes += uint64(n)
	s.ivSent += uint64(n)
	if retx {
		s.stats.RetxBytes += uint64(n)
	}
	s.ep.send(pkt)
	s.armRTO()
}

// segLen returns the next segment length (<= MSS, <= remaining).
func (s *Sender) segLen() int {
	rem := s.remaining()
	if rem == 0 {
		return 0
	}
	if rem < uint64(s.cfg.MSS) {
		return int(rem)
	}
	return s.cfg.MSS
}

// --- Window (ack-clocked) path -------------------------------------------

func (s *Sender) trySendWindow() {
	if s.finished {
		return
	}
	for {
		n := s.segLen()
		if n == 0 {
			return
		}
		cwnd := uint32(s.cfg.Window.Window())
		if cwnd > s.cfg.MaxInflight {
			cwnd = s.cfg.MaxInflight
		}
		if s.inflight()+uint32(n) > cwnd {
			return
		}
		s.sendSegment(n)
	}
}

// --- Rate (paced) path ----------------------------------------------------

// eligibleAt returns when the next paced transmission may go out, given
// the current rate: the owed bits of the previous transmission must have
// drained.
func (s *Sender) eligibleAt() sim.Time {
	rate := s.cfg.Rate.Rate() * 8 // bits/s
	if rate <= 0 {
		rate = 1
	}
	drain := sim.Time(s.owedBits / rate * 1e9)
	at := s.lastTxTime + drain
	if now := s.eng.Now(); at < now {
		at = now
	}
	return at
}

func (s *Sender) schedulePacedSend() {
	if s.finished {
		return
	}
	at := s.eligibleAt()
	if s.paceTimer != nil {
		s.paceTimer.Stop()
	}
	s.paceTimer = s.eng.At(at, s.pacedSend)
}

func (s *Sender) pacedSend() {
	if s.finished {
		return
	}
	if at := s.eligibleAt(); at > s.eng.Now() {
		s.schedulePacedSend() // rate dropped since scheduling
		return
	}
	n := s.segLen()
	if n == 0 {
		return // nothing to send; ack arrival or control tick re-arms
	}
	if s.inflight()+uint32(n) > s.cfg.MaxInflight {
		return // window-limited; ack arrival re-arms
	}
	s.sendSegment(n)
	s.lastTxTime = s.eng.Now()
	s.owedBits = float64((n + protocol.EthHeaderLen + protocol.IPv4HeaderLen + protocol.TCPHeaderLen + protocol.TSOptLen) * 8)
	s.schedulePacedSend()
}

// controlTick is the slow path's per-flow control loop: gather feedback,
// run the congestion policy, detect stalls.
func (s *Sender) controlTick() {
	if s.finished {
		return
	}
	elapsed := s.eng.Now() - s.lastTick
	s.lastTick = s.eng.Now()
	if elapsed <= 0 {
		elapsed = s.cfg.ControlInterval
	}
	inst := float64(s.ivSent) / (float64(elapsed) / 1e9)
	if !s.txRateValid {
		s.txRateEwma = inst
		s.txRateValid = true
	} else {
		s.txRateEwma = 0.7*s.txRateEwma + 0.3*inst
	}
	fb := congestion.Feedback{
		AckedBytes: s.ivAcked,
		EcnBytes:   s.ivEcn,
		Frexmits:   s.ivFrexmits,
		Timeouts:   s.ivTimeouts,
		RTT:        s.rtt.SRTT(),
		TxRate:     s.txRateEwma,
	}
	s.ivAcked, s.ivEcn, s.ivSent, s.ivFrexmits, s.ivTimeouts = 0, 0, 0, 0, 0
	s.cfg.Rate.Update(fb)

	// Stall detection: unacknowledged data with no cumulative-ack
	// progress for StallIntervals control intervals triggers a
	// retransmission restart (§3.2, Retransmission timeouts). Guard with
	// the RTT estimate so that control intervals much shorter than the
	// RTT do not declare spurious timeouts.
	if s.inflight() > 0 && s.cumAck == s.stallAck {
		s.stallCount++
		minWait := sim.Time(s.cfg.StallIntervals) * s.cfg.ControlInterval
		if srtt := sim.Time(3 * s.rtt.SRTT()); srtt > minWait {
			minWait = srtt
		}
		if minWait < s.cfg.MinRTO {
			minWait = s.cfg.MinRTO
		}
		// Exponential backoff on consecutive stall timeouts, so a flow
		// at the rate floor is not re-collapsed every interval while its
		// retransmission is still draining.
		minWait <<= uint(s.stallBackoff)
		if s.stallCount >= s.cfg.StallIntervals &&
			sim.Time(s.stallCount)*s.cfg.ControlInterval >= minWait {
			s.stallCount = 0
			if s.stallBackoff < 10 {
				s.stallBackoff++
			}
			s.timeoutRetransmit()
		}
	} else {
		s.stallCount = 0
		s.stallBackoff = 0
		s.stallAck = s.cumAck
	}
	s.schedulePacedSend()
}

// --- Loss handling ---------------------------------------------------------

func (s *Sender) armRTO() {
	if s.cfg.Rate != nil {
		return // rate senders use slow-path stall detection instead
	}
	if s.rtoTimer != nil {
		s.rtoTimer.Stop()
	}
	rto := sim.Time(s.rtt.RTO()) << uint(s.rtoBackoff)
	if rto > 4*sim.Second {
		rto = 4 * sim.Second
	}
	s.rtoTimer = s.eng.After(rto, s.onRTO)
}

func (s *Sender) onRTO() {
	if s.finished || s.inflight() == 0 {
		return
	}
	s.rtoBackoff++
	s.timeoutRetransmit()
}

func (s *Sender) timeoutRetransmit() {
	s.stats.Timeouts++
	s.ivTimeouts++
	s.dupAcks = 0
	s.inRecov = false
	s.nextSend = s.cumAck // go back N
	if s.cfg.Window != nil {
		s.cfg.Window.OnRetransmitTimeout()
		s.trySendWindow()
	} else {
		s.schedulePacedSend()
	}
}

func (s *Sender) fastRetransmit() {
	s.stats.Frexmits++
	s.ivFrexmits++
	s.inRecov = true
	s.everRecovered = true
	s.recover = s.sentHigh
	if s.cfg.GoBackN || s.cfg.Rate != nil {
		// Reset as if those segments had not been sent.
		s.nextSend = s.cumAck
	} else {
		// Retransmit just the first missing segment.
		saved := s.nextSend
		s.nextSend = s.cumAck
		n := s.segLen()
		if n > 0 {
			s.sendSegment(n)
		}
		if tcp.SeqGT(saved, s.nextSend) {
			s.nextSend = saved
		}
	}
}

// --- Ack processing ---------------------------------------------------------

func (s *Sender) onPacket(pkt *protocol.Packet) {
	if pkt.DataLen() > 0 || !pkt.Flags.Has(protocol.FlagACK) || s.finished {
		return
	}
	if pkt.HasTS && pkt.TSEcr != 0 {
		s.rtt.Sample(int64(s.eng.Now()) - int64(pkt.TSEcr)*1000)
	}
	ece := pkt.Flags.Has(protocol.FlagECE)

	switch {
	case tcp.SeqGT(pkt.Ack, s.cumAck):
		acked := uint32(tcp.SeqDiff(pkt.Ack, s.cumAck))
		s.cumAck = pkt.Ack
		if tcp.SeqGT(s.cumAck, s.nextSend) {
			// The receiver has everything up to cumAck (it buffered data
			// we were about to resend): skip ahead.
			s.nextSend = s.cumAck
		}
		s.stats.AckedBytes += uint64(acked)
		s.ivAcked += uint64(acked)
		if ece {
			s.stats.EcnAckedBytes += uint64(acked)
			s.ivEcn += uint64(acked)
		}
		s.dupAcks = 0
		s.rtoBackoff = 0
		if s.cfg.Window != nil {
			s.cfg.Window.OnAck(int(acked), ece)
		}
		if s.inRecov {
			if tcp.SeqGEQ(s.cumAck, s.recover) {
				s.inRecov = false
			} else if !s.cfg.GoBackN && s.cfg.Rate == nil {
				// NewReno partial ack: retransmit the next missing segment.
				saved := s.nextSend
				s.nextSend = s.cumAck
				if n := s.segLen(); n > 0 {
					s.sendSegment(n)
				}
				if tcp.SeqGT(saved, s.nextSend) {
					s.nextSend = saved
				}
			}
		}
		if s.cfg.Size > 0 && s.stats.AckedBytes >= s.cfg.Size {
			s.complete()
			return
		}
		if s.inflight() == 0 {
			if s.rtoTimer != nil {
				s.rtoTimer.Stop()
			}
		} else {
			s.armRTO()
		}
	case pkt.Ack == s.cumAck && s.inflight() > 0:
		s.dupAcks++
		triggered := false
		if s.cfg.Window != nil {
			triggered = s.cfg.Window.OnDupAck()
		} else {
			triggered = s.dupAcks == 3
		}
		// RFC 6582 guard: after a recovery, stale duplicates of our own
		// retransmission burst still carry ack == recovery point; do not
		// let them trigger a new (spurious) recovery until the
		// cumulative ack has moved past the previous recovery's high
		// water mark.
		if triggered && !s.inRecov && (!s.everRecovered || tcp.SeqGT(s.cumAck, s.recover)) {
			s.fastRetransmit()
		}
	}

	if s.cfg.Window != nil {
		s.trySendWindow()
	} else {
		s.schedulePacedSend()
	}
}

func (s *Sender) complete() {
	s.finished = true
	if s.rtoTimer != nil {
		s.rtoTimer.Stop()
	}
	if s.ctrlTimer != nil {
		s.ctrlTimer.Stop()
	}
	if s.cfg.OnComplete != nil {
		s.cfg.OnComplete(s.eng.Now() - s.startTime)
	}
}
