// Package flowstate holds the fast path's per-flow connection state
// (Table 3 of the paper: 102 bytes per flow), the flow hash table that
// maps 4-tuples to that state, the per-flow spinlocks that make packets
// arriving on the "wrong" fast-path core safe during scale up/down, and
// the RSS redirection table used to steer packets to cores.
package flowstate

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/protocol"
	"repro/internal/shmring"
	"repro/internal/telemetry"
)

// Flow is the per-flow fast-path state. The layout mirrors Table 3: the
// comments give the paper's field name and bit width; the logical packed
// size is 102 bytes (asserted by a test). The two buffer pointers stand
// in for rx|tx_start|size (the buffers carry their own head/tail
// positions, the rx|tx_head|tail fields).
type Flow struct {
	Opaque  uint64 // opaque, 64: application-defined flow identifier
	Context uint16 // context, 16: RX/TX context queue number
	Bucket  uint32 // bucket, 24: rate bucket number

	RxBuf *shmring.PayloadBuffer // rx_start|size|head|tail
	TxBuf *shmring.PayloadBuffer // tx_start|size|head|tail

	TxSent uint32 // tx_sent, 32: bytes sent but unacknowledged from TxBuf tail

	SeqNo uint32 // seq, 32: local TCP sequence number (next byte to send)
	AckNo uint32 // ack, 32: peer TCP sequence number (next byte expected)

	// Window is the remote TCP receive window (window, 16). Happens-
	// before contract: every writer — installFlow before the flow is
	// published, the fast path's ACK processing, and the slow path's
	// handshake completion — holds the flow spinlock, and the slow
	// path's persist-timer sweep reads it under the same lock, so no
	// atomic is needed; the spinlock's CAS/store pair orders the
	// cross-core accesses.
	Window uint16

	// MSSCap, when nonzero, bounds this flow's segment size below the
	// engine-wide MSS. Set on flows reconstructed from a SYN cookie:
	// the peer's real MSS option is gone by then, so the cookie's
	// recovered MSS class is the only safe segmentation bound.
	MSSCap uint16

	DupAcks uint8 // dupack_cnt, 4: duplicate ACK count

	LocalIP   protocol.IPv4
	LocalPort uint16        // local_port, 16
	PeerIP    protocol.IPv4 // peer_ip, 32
	PeerPort  uint16        // peer_port, 16
	PeerMAC   protocol.MAC  // peer_mac, 48 (for segmentation)

	OooStart uint32 // ooo_start, 32: out-of-order interval start seq
	OooLen   uint32 // ooo_len, 32: out-of-order interval length

	CntAckB     uint32 // cnt_ackb, 32: acknowledged bytes since last slow-path poll
	CntEcnB     uint32 // cnt_ecnb, 32: ECN-marked bytes since last slow-path poll
	CntFrexmits uint8  // cnt_frexmits, 8: fast retransmits triggered
	RTTEst      uint32 // rtt_est, 32: RTT estimate in microseconds

	// RTTVarEst is the smoothed RTT variance (RFC 6298 rttvar, µs),
	// maintained alongside RTTEst on ACK processing. Like Rec, it is
	// observability state outside the paper's Table 3 footprint — the
	// latency observatory's histograms sample it per flow.
	RTTVarEst uint32

	// FinSent/FinReceived track teardown progress; connection control is
	// a slow-path concern but the fast path must not treat a FIN'd
	// stream as common-case data. FinAcked is set by the fast path when
	// the peer acknowledges our FIN's sequence number, so the slow path
	// can stop retransmitting it.
	FinSent     bool
	FinReceived bool
	FinAcked    bool

	// PeerClosedFirst records which side initiated the close: set when
	// the peer's FIN arrives before we have sent ours. The passive
	// closer (LAST_ACK) goes straight to CLOSED when its FIN is acked;
	// only the active closer enters the TIME_WAIT quarantine. Outside
	// the paper's Table 3 footprint (close-lifecycle bookkeeping, not
	// common-case state); guarded by the flow spinlock.
	PeerClosedFirst bool

	// Aborted marks a flow torn down by failure (retransmission budget
	// exhausted or peer RST): the fast path must stop transmitting and
	// the stack returns reset errors instead of blocking.
	Aborted bool

	// PeerDead refines Aborted: the slow path's probe machinery
	// (zero-window persist probes or keepalives) exhausted its budget
	// without a response, so the peer is presumed gone. libtas maps it
	// to ErrPeerDead instead of the generic reset error. Outside Table 3
	// (failure-cause bookkeeping); guarded by the flow spinlock.
	PeerDead bool

	// Rec is the flow's flight-recorder ring, nil when telemetry is off.
	// It is outside the paper's Table 3 footprint (observability state,
	// not protocol state) and is written by whichever layer holds the
	// flow at the time — the ring has its own short lock.
	Rec *telemetry.FlowRing

	// lock is the per-connection spinlock (§3.4): taken by whichever
	// fast-path core handles a packet for this flow, so that packets
	// arriving on the wrong core during scale up/down remain safe.
	lock SpinLock

	// touched is the flow's last-activity stamp (engine-clock nanos):
	// written by the fast path per processed packet and by libtas per
	// Send, read by the resource governor's LRU idle-reclaim rung to
	// pick victims oldest-first. A plain atomic store off the flow lock
	// — the reclaim sweep tolerates approximate ordering.
	touched atomic.Int64

	// retired latches exactly-once resource reclamation: every teardown
	// path (FIN, RST, abort, reaper, recovery, undeliverable accept)
	// funnels through the slow path's reclaim helper, and only the caller
	// that wins this CAS returns the flow's buffers, bucket slot, and
	// governor charges — double teardown must never double-release.
	retired atomic.Bool
}

// Retire claims the flow's one-shot reclamation token. The first caller
// gets true and must release the flow's resources; later callers get
// false and must not.
func (f *Flow) Retire() bool { return f.retired.CompareAndSwap(false, true) }

// Retired reports whether the flow's resources have been reclaimed.
func (f *Flow) Retired() bool { return f.retired.Load() }

// Touch stamps the flow's last-activity clock.
func (f *Flow) Touch(nanos int64) { f.touched.Store(nanos) }

// LastTouched returns the last-activity stamp (engine-clock nanos).
func (f *Flow) LastTouched() int64 { return f.touched.Load() }

// Lock acquires the flow's spinlock.
func (f *Flow) Lock() { f.lock.Lock() }

// Unlock releases the flow's spinlock.
func (f *Flow) Unlock() { f.lock.Unlock() }

// Key returns the flow's 4-tuple key (local perspective).
func (f *Flow) Key() protocol.FlowKey {
	return protocol.FlowKey{LocalIP: f.LocalIP, LocalPort: f.LocalPort, RemoteIP: f.PeerIP, RemotePort: f.PeerPort}
}

// TxPending returns the number of bytes in the transmit buffer that have
// not been sent yet (the amount the fast path may still segment).
func (f *Flow) TxPending() int {
	return f.TxBuf.Used() - int(f.TxSent)
}

// TakeCounters returns and clears the congestion feedback counters, as
// the slow path does at each control interval.
func (f *Flow) TakeCounters() (ackB, ecnB uint32, frexmits uint8) {
	ackB, ecnB, frexmits = f.CntAckB, f.CntEcnB, f.CntFrexmits
	f.CntAckB, f.CntEcnB, f.CntFrexmits = 0, 0, 0
	return
}

// CloseState is the close-side lifecycle refinement derived from the
// Fin*/PeerClosedFirst booleans: the classic TCP state names for the
// teardown half of the state machine. TIME_WAIT itself is not a
// CloseState — a flow in TIME_WAIT has left the flow table entirely
// and lives as a compact quarantine entry (see TimeWaitTable).
type CloseState uint8

// Close-side lifecycle states.
const (
	CloseNone CloseState = iota // established, no FIN either way
	CloseWait                   // peer FIN'd, we have not (CLOSE_WAIT)
	FinWait1                    // our FIN sent, not yet acked
	Closing                     // both FINs out, ours unacked (simultaneous close)
	FinWait2                    // our FIN acked, waiting for the peer's
	LastAck                     // peer closed first, our FIN unacked
)

// String names the close state.
func (c CloseState) String() string {
	switch c {
	case CloseNone:
		return "established"
	case CloseWait:
		return "close-wait"
	case FinWait1:
		return "fin-wait-1"
	case Closing:
		return "closing"
	case FinWait2:
		return "fin-wait-2"
	case LastAck:
		return "last-ack"
	}
	return "unknown"
}

// CloseState derives the flow's close-side lifecycle state. Callers
// hold the flow spinlock.
func (f *Flow) CloseState() CloseState {
	switch {
	case !f.FinSent && !f.FinReceived:
		return CloseNone
	case !f.FinSent:
		return CloseWait
	case f.FinAcked:
		return FinWait2 // peer FIN pending; with it, the flow leaves the table
	case f.PeerClosedFirst:
		return LastAck
	case f.FinReceived:
		return Closing
	default:
		return FinWait1
	}
}

// PackedSize is the paper's logical per-flow state footprint in bytes
// (Table 3 sums to 818 bits ≈ 102 bytes). The fast path's cache working
// set per flow is this constant; the connection-scalability experiments
// use it to model cache pressure.
const PackedSize = 102

// SpinLock is a test-and-set spinlock with passive backoff. The paper
// uses per-connection spinlocks because cross-core contention is rare
// (only during core scaling); a futex-style blocking lock would be
// heavier in the common uncontended case.
type SpinLock struct {
	v atomic.Uint32
}

// Lock spins until the lock is acquired.
func (s *SpinLock) Lock() {
	for !s.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

// TryLock attempts to acquire the lock without spinning.
func (s *SpinLock) TryLock() bool { return s.v.CompareAndSwap(0, 1) }

// Unlock releases the lock.
func (s *SpinLock) Unlock() { s.v.Store(0) }

// Table maps 4-tuples to flow state. It is sharded to avoid the global
// shared-state bottleneck the paper identifies in monolithic stacks
// (overhead source 3): lookups on different shards never contend.
type Table struct {
	shards [tableShards]tableShard
	count  atomic.Int64
}

const tableShards = 64

type tableShard struct {
	mu sync.RWMutex
	m  map[protocol.FlowKey]*Flow
	_  [40]byte // pad to a cache line to avoid false sharing between shards
}

// NewTable returns an empty flow table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].m = make(map[protocol.FlowKey]*Flow)
	}
	return t
}

func (t *Table) shardFor(k protocol.FlowKey) *tableShard {
	h := protocol.FlowHash(k.LocalIP, k.LocalPort, k.RemoteIP, k.RemotePort)
	return &t.shards[h%tableShards]
}

// Lookup returns the flow for k, or nil if none is installed.
func (t *Table) Lookup(k protocol.FlowKey) *Flow {
	s := t.shardFor(k)
	s.mu.RLock()
	f := s.m[k]
	s.mu.RUnlock()
	return f
}

// Insert installs f under its key. It reports false if a flow with the
// same key already exists (the existing flow is left in place).
func (t *Table) Insert(f *Flow) bool {
	k := f.Key()
	s := t.shardFor(k)
	s.mu.Lock()
	if _, dup := s.m[k]; dup {
		s.mu.Unlock()
		return false
	}
	s.m[k] = f
	s.mu.Unlock()
	t.count.Add(1)
	return true
}

// Remove deletes the flow for k and returns it (nil if absent).
func (t *Table) Remove(k protocol.FlowKey) *Flow {
	s := t.shardFor(k)
	s.mu.Lock()
	f, ok := s.m[k]
	if ok {
		delete(s.m, k)
	}
	s.mu.Unlock()
	if ok {
		t.count.Add(-1)
	}
	return f
}

// Len returns the number of installed flows.
func (t *Table) Len() int { return int(t.count.Load()) }

// ForEach calls fn for every flow. The iteration holds one shard read
// lock at a time; fn must not call back into the table for the same
// shard. Used by the slow path's congestion-control sweep.
func (t *Table) ForEach(fn func(*Flow)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.RLock()
		flows := make([]*Flow, 0, len(s.m))
		for _, f := range s.m {
			flows = append(flows, f)
		}
		s.mu.RUnlock()
		for _, f := range flows {
			fn(f)
		}
	}
}
