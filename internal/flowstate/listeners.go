package flowstate

import (
	"sync"
	"sync/atomic"
)

// ListenerEntry is the shared-memory record of one listening port. Like
// the flow table, it lives on the fast-path side of the slow-path
// boundary so it survives a slow-path crash: a warm-restarted slow path
// rebuilds its listener map from these entries, and because the Pending
// gauge object is stored here (not in the slow path), the accept-queue
// depth the application side decrements keeps pointing at the same
// counter across restarts.
type ListenerEntry struct {
	Port    uint16
	CtxID   uint16
	Opaque  uint64
	Backlog int
	Pending *atomic.Int32 // accept-queue depth, shared with libtas
}

// ListenerTable is the authoritative registry of listening ports,
// keyed by port. The slow path writes through it on listen/unlisten and
// scans it during warm-restart state reconstruction.
type ListenerTable struct {
	mu sync.Mutex
	m  map[uint16]*ListenerEntry
}

// NewListenerTable returns an empty table.
func NewListenerTable() *ListenerTable {
	return &ListenerTable{m: make(map[uint16]*ListenerEntry)}
}

// Insert records a listener; it reports false if the port is taken.
func (t *ListenerTable) Insert(e *ListenerEntry) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.m[e.Port]; dup {
		return false
	}
	t.m[e.Port] = e
	return true
}

// Remove drops the listener on port.
func (t *ListenerTable) Remove(port uint16) {
	t.mu.Lock()
	delete(t.m, port)
	t.mu.Unlock()
}

// Lookup returns the entry for port, or nil.
func (t *ListenerTable) Lookup(port uint16) *ListenerEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[port]
}

// ForEach visits every entry (snapshot; safe to mutate the table from
// the callback).
func (t *ListenerTable) ForEach(fn func(*ListenerEntry)) {
	t.mu.Lock()
	entries := make([]*ListenerEntry, 0, len(t.m))
	for _, e := range t.m {
		entries = append(entries, e)
	}
	t.mu.Unlock()
	for _, e := range entries {
		fn(e)
	}
}

// Len returns the number of registered listeners.
func (t *ListenerTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
