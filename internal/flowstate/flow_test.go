package flowstate

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"repro/internal/protocol"
	"repro/internal/shmring"
)

// TestTable3Layout verifies the paper's Table 3 accounting: the logical
// per-flow state sums to 102 bytes, and our Go struct's hot fields fit in
// a small number of cache lines.
func TestTable3Layout(t *testing.T) {
	// Bit widths straight from Table 3.
	bits := map[string]int{
		"opaque":           64,
		"context":          16,
		"bucket":           24,
		"rx|tx_start":      128,
		"rx|tx_size":       64,
		"rx|tx_head|tail":  128,
		"tx_sent":          32,
		"seq":              32,
		"ack":              32,
		"window":           16,
		"dupack_cnt":       4,
		"local_port":       16,
		"peer_ip|port|mac": 96,
		"ooo_start|len":    64,
		"cnt_ackb|ecnb":    64,
		"cnt_frexmits":     8,
		"rtt_est":          32,
	}
	total := 0
	for _, b := range bits {
		total += b
	}
	// 820 bits; the paper reports 102 bytes (rounding down).
	if got := total / 8; got != PackedSize {
		t.Fatalf("Table 3 sums to %d bytes, PackedSize = %d", got, PackedSize)
	}
	// The Go struct carries the same state (pointers replace start|size,
	// buffers carry head|tail) and must stay within 3 cache lines so the
	// >20k-flows-per-core cache argument holds roughly.
	if sz := unsafe.Sizeof(Flow{}); sz > 192 {
		t.Fatalf("Flow struct is %d bytes, want <= 192", sz)
	}
}

func newTestFlow(lp, pp uint16) *Flow {
	return &Flow{
		LocalIP: protocol.MakeIPv4(10, 0, 0, 1), LocalPort: lp,
		PeerIP: protocol.MakeIPv4(10, 0, 0, 2), PeerPort: pp,
		RxBuf: shmring.NewPayloadBuffer(1024),
		TxBuf: shmring.NewPayloadBuffer(1024),
	}
}

func TestTableInsertLookupRemove(t *testing.T) {
	tb := NewTable()
	f := newTestFlow(80, 1000)
	if !tb.Insert(f) {
		t.Fatal("insert failed")
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if got := tb.Lookup(f.Key()); got != f {
		t.Fatal("lookup mismatch")
	}
	if tb.Insert(newTestFlow(80, 1000)) {
		t.Fatal("duplicate insert should fail")
	}
	if got := tb.Remove(f.Key()); got != f {
		t.Fatal("remove mismatch")
	}
	if tb.Lookup(f.Key()) != nil || tb.Len() != 0 {
		t.Fatal("flow still present after remove")
	}
	if tb.Remove(f.Key()) != nil {
		t.Fatal("double remove should return nil")
	}
}

func TestTableForEach(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 100; i++ {
		tb.Insert(newTestFlow(uint16(i), 9))
	}
	seen := 0
	tb.ForEach(func(f *Flow) { seen++ })
	if seen != 100 {
		t.Fatalf("ForEach visited %d, want 100", seen)
	}
}

func TestTableConcurrent(t *testing.T) {
	tb := NewTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f := newTestFlow(uint16(g*1000+i), 7)
				tb.Insert(f)
				if tb.Lookup(f.Key()) == nil {
					t.Error("lookup after insert failed")
					return
				}
				if i%2 == 0 {
					tb.Remove(f.Key())
				}
			}
		}()
	}
	wg.Wait()
	if tb.Len() != 4000 {
		t.Fatalf("len = %d, want 4000", tb.Len())
	}
}

func TestFlowTxPending(t *testing.T) {
	f := newTestFlow(1, 2)
	f.TxBuf.Write(make([]byte, 500))
	if f.TxPending() != 500 {
		t.Fatalf("pending = %d", f.TxPending())
	}
	f.TxSent = 200
	if f.TxPending() != 300 {
		t.Fatalf("pending after send = %d", f.TxPending())
	}
}

func TestTakeCounters(t *testing.T) {
	f := newTestFlow(1, 2)
	f.CntAckB, f.CntEcnB, f.CntFrexmits = 100, 40, 2
	a, e, fr := f.TakeCounters()
	if a != 100 || e != 40 || fr != 2 {
		t.Fatalf("got %d %d %d", a, e, fr)
	}
	if f.CntAckB != 0 || f.CntEcnB != 0 || f.CntFrexmits != 0 {
		t.Fatal("counters not cleared")
	}
}

func TestSpinLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after unlock failed")
	}
	l.Unlock()
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	counter := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != 80000 {
		t.Fatalf("counter = %d, want 80000 (lost updates)", counter)
	}
}

func TestRSSSpread(t *testing.T) {
	r := NewRSS()
	if r.Cores() != 1 {
		t.Fatalf("fresh RSS cores = %d", r.Cores())
	}
	r.SetCores(4)
	counts := make(map[int]int)
	for h := uint32(0); h < 10000; h++ {
		c := r.CoreFor(h * 2654435761)
		if c < 0 || c >= 4 {
			t.Fatalf("core %d out of range", c)
		}
		counts[c]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] < 1500 {
			t.Errorf("core %d got only %d/10000 buckets", c, counts[c])
		}
	}
}

func TestRSSSetCoresClamp(t *testing.T) {
	r := NewRSS()
	r.SetCores(0)
	if r.Cores() != 1 {
		t.Fatalf("cores = %d, want clamped to 1", r.Cores())
	}
}

func TestRSSDeterministicPerFlow(t *testing.T) {
	r := NewRSS()
	r.SetCores(8)
	f := func(a, b uint32, ap, bp uint16) bool {
		p1 := &protocol.Packet{SrcIP: protocol.IPv4(a), DstIP: protocol.IPv4(b), SrcPort: ap, DstPort: bp}
		p2 := &protocol.Packet{SrcIP: protocol.IPv4(b), DstIP: protocol.IPv4(a), SrcPort: bp, DstPort: ap}
		// Both directions of a flow steer to the same core.
		return r.CoreForPacket(p1) == r.CoreForPacket(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRSSSetEntry(t *testing.T) {
	r := NewRSS()
	r.SetCores(4)
	r.SetEntry(5, 3)
	if got := r.table[5].Load(); got != 3 {
		t.Fatalf("entry 5 = %d", got)
	}
}
