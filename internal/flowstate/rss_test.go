package flowstate

import (
	"sync"
	"testing"
)

// TestRSSSetCoresSpread verifies the basic round-robin rewrite: with no
// failures, n cores split the 128 buckets evenly.
func TestRSSSetCoresSpread(t *testing.T) {
	r := NewRSS()
	r.SetCores(4)
	counts := make(map[int]int)
	for i := 0; i < RSSTableSize; i++ {
		counts[r.CoreFor(uint32(i))]++
	}
	if len(counts) != 4 {
		t.Fatalf("buckets spread over %d cores, want 4", len(counts))
	}
	for c, n := range counts {
		if n != RSSTableSize/4 {
			t.Fatalf("core %d owns %d buckets, want %d", c, n, RSSTableSize/4)
		}
	}
}

// TestRSSNeverSteersToFailed is the core invariant of the data-plane
// failure domain: once a core is marked failed and the table rewritten,
// no bucket names it — and no later SetCores (scale event) or SetEntry
// (targeted drain) can steer a bucket back until the exclusion clears.
func TestRSSNeverSteersToFailed(t *testing.T) {
	r := NewRSS()
	r.SetCores(4)
	r.SetFailed(2, true)
	r.SetCores(r.Cores()) // the failure re-steer

	check := func(when string) {
		t.Helper()
		for i := 0; i < RSSTableSize; i++ {
			if got := r.CoreFor(uint32(i)); got == 2 {
				t.Fatalf("%s: bucket %d steers to failed core 2", when, i)
			}
		}
	}
	check("after failure re-steer")

	// Scale events while the core is failed must keep excluding it.
	for _, n := range []int{2, 3, 4, 1, 4} {
		r.SetCores(n)
		check("after SetCores")
	}

	// A targeted SetEntry aimed at the failed core must be redirected.
	r.SetCores(4)
	r.SetEntry(7, 2)
	if got := r.CoreFor(7); got == 2 {
		t.Fatalf("SetEntry steered bucket 7 to failed core 2")
	}

	// Survivors still split the load.
	counts := make(map[int]int)
	for i := 0; i < RSSTableSize; i++ {
		counts[r.CoreFor(uint32(i))]++
	}
	if _, bad := counts[2]; bad || len(counts) != 3 {
		t.Fatalf("bucket owners = %v, want cores {0,1,3}", counts)
	}

	// Re-admission: clearing the exclusion and rewriting folds the core
	// back in.
	r.SetFailed(2, false)
	r.SetCores(4)
	counts = make(map[int]int)
	for i := 0; i < RSSTableSize; i++ {
		counts[r.CoreFor(uint32(i))]++
	}
	if counts[2] == 0 {
		t.Fatalf("core 2 owns no buckets after re-admission: %v", counts)
	}
}

// TestRSSFailedFallback: when every core in the active set is failed,
// steering spills to the lowest live core outside the active set but
// inside the physical limit (those cores exist and process packets,
// they just held no buckets while healthy); when every physical core
// is failed the table still holds a valid in-range index — core 0 —
// never a core beyond the limit: engines size their core arrays from
// their own configuration, and an out-of-range entry would turn a
// steering decision into a crash on whichever goroutine delivers the
// packet.
func TestRSSFailedFallback(t *testing.T) {
	r := NewRSS()
	r.SetLimit(4)
	r.SetFailed(0, true)
	r.SetFailed(1, true)
	r.SetCores(2)
	for i := 0; i < RSSTableSize; i++ {
		if got := r.CoreFor(uint32(i)); got != 2 {
			t.Fatalf("bucket %d -> core %d, want spill to live core 2", i, got)
		}
	}
	if r.FailedCount() != 2 {
		t.Fatalf("FailedCount = %d, want 2", r.FailedCount())
	}
	// Clearing a failed bit inside the active set restores it as the
	// sole target — spill is a last resort.
	r.SetFailed(1, false)
	r.SetCores(2)
	for i := 0; i < RSSTableSize; i++ {
		if got := r.CoreFor(uint32(i)); got != 1 {
			t.Fatalf("bucket %d -> core %d, want sole survivor core 1", i, got)
		}
	}
	// Every physical core failed: core 0 remains the (blackholing but
	// in-range) target; the spill never crosses the limit.
	for i := 0; i < 64; i++ {
		r.SetFailed(i, true)
	}
	r.SetCores(2)
	for i := 0; i < RSSTableSize; i++ {
		if got := r.CoreFor(uint32(i)); got != 0 {
			t.Fatalf("bucket %d -> core %d, want 0 with all cores failed", i, got)
		}
	}
	// Without a limit the active set is all there is: no spill.
	r2 := NewRSS()
	r2.SetFailed(0, true)
	r2.SetFailed(1, true)
	r2.SetCores(2)
	for i := 0; i < RSSTableSize; i++ {
		if got := r2.CoreFor(uint32(i)); got != 0 {
			t.Fatalf("bucket %d -> core %d, want 0 with no physical limit", i, got)
		}
	}
}

// TestRSSRewriteTransient exercises the paper's §3.4 tolerance claim
// directly: readers racing a rewrite may see a mix of old and new
// entries, but every value observed must be a member of one of the two
// legal steering sets — never the failed core, never garbage. Run with
// -race this also proves the rewrite itself is data-race-free.
func TestRSSRewriteTransient(t *testing.T) {
	r := NewRSS()
	r.SetCores(4)
	r.SetFailed(3, true)

	stop := make(chan struct{})
	var bad sync.Map
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < RSSTableSize; i++ {
					c := r.CoreFor(uint32(i))
					// Legal owners across all interleavings: cores 0..3
					// minus the permanently failed core 3.
					if c < 0 || c > 3 || c == 3 {
						bad.Store(c, i)
					}
				}
			}
		}()
	}
	// Writer: oscillate the active-set size, as the scaling monitor
	// does, while core 3 stays failed throughout.
	for iter := 0; iter < 2000; iter++ {
		r.SetCores(1 + iter%4)
	}
	close(stop)
	wg.Wait()
	bad.Range(func(core, bucket any) bool {
		t.Errorf("reader observed illegal core %v at bucket %v", core, bucket)
		return true
	})
}
