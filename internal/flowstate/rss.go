package flowstate

import (
	"sync/atomic"

	"repro/internal/protocol"
)

// RSSTableSize is the number of redirection-table entries, matching the
// 128-entry indirection tables of commodity NICs.
const RSSTableSize = 128

// rssMaxCores bounds the failed-core mask (one bit per core). Cores
// beyond it can never be marked failed; engines are configured far
// below this in practice.
const rssMaxCores = 64

// RSS models the NIC's receive-side-scaling redirection table: the flow
// hash indexes a table of fast-path core ids. The slow path rewrites the
// table when it adds or removes cores (§3.4, "we eagerly update the NIC
// RSS redirection table"); packets already in flight may still land on
// the old core, which is why flows carry spinlocks.
//
// The failed-core mask extends the same mechanism to the data-plane
// failure domain: a core the watchdog has declared dead is excluded
// from every rewrite, so neither the failure re-steer itself nor any
// later scale event can steer a bucket back to it until the slow path
// re-admits the core.
type RSS struct {
	table  [RSSTableSize]atomic.Int32
	cores  atomic.Int32
	limit  atomic.Int32  // physical cores that exist (0 = only the active set)
	failed atomic.Uint64 // bitmask of cores excluded from steering
}

// NewRSS returns a table steering everything to core 0.
func NewRSS() *RSS {
	r := &RSS{}
	r.SetCores(1)
	return r
}

// SetCores rewrites the redirection table to spread buckets across the
// first n cores round-robin, skipping cores marked failed. Readers
// racing with the rewrite observe a mix of old and new entries —
// exactly the transient the paper's design tolerates (per-flow
// spinlocks make wrong-core processing safe).
func (r *RSS) SetCores(n int) {
	if n < 1 {
		n = 1
	}
	r.cores.Store(int32(n))
	elig := r.eligible(n)
	for i := 0; i < RSSTableSize; i++ {
		r.table[i].Store(elig[i%len(elig)])
	}
}

// eligible returns the steering targets for a nominal active set of n
// cores: every core in [0,n) whose failed bit is clear. If the whole
// active set is failed it spills to the lowest live core outside the
// active set but within the physical limit — those cores exist, beat,
// and process packets, they just hold no buckets while healthy. If
// every physical core is failed it returns core 0: traffic blackholes
// in the dead core's ring until re-admission or drain, but the table
// never names a core beyond SetLimit — the engine sizes its core array
// from its own configuration, and an out-of-range entry would turn a
// steering decision into a crash on whichever goroutine delivers the
// packet.
func (r *RSS) eligible(n int) []int32 {
	mask := r.failed.Load()
	elig := make([]int32, 0, n)
	for i := 0; i < n && i < rssMaxCores; i++ {
		if mask&(1<<uint(i)) == 0 {
			elig = append(elig, int32(i))
		}
	}
	if len(elig) > 0 {
		return elig
	}
	lim := int(r.limit.Load())
	for i := n; i < lim && i < rssMaxCores; i++ {
		if mask&(1<<uint(i)) == 0 {
			return []int32{int32(i)}
		}
	}
	return []int32{0}
}

// SetLimit records how many physical cores exist (the engine's
// MaxCores). eligible may spill to cores in [active, limit) when the
// whole active set is failed, but never beyond the limit.
func (r *RSS) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	r.limit.Store(int32(n))
}

// SetFailed marks (or clears) a core as failed. It only updates the
// mask; callers rewrite the table afterwards (SetCores) so the change
// takes effect — the two steps mirror the slow path's eager-RSS-update
// protocol.
func (r *RSS) SetFailed(core int, failed bool) {
	if core < 0 || core >= rssMaxCores {
		return
	}
	bit := uint64(1) << uint(core)
	for {
		old := r.failed.Load()
		next := old &^ bit
		if failed {
			next = old | bit
		}
		if r.failed.CompareAndSwap(old, next) {
			return
		}
	}
}

// Failed reports whether a core is currently excluded from steering.
func (r *RSS) Failed(core int) bool {
	if core < 0 || core >= rssMaxCores {
		return false
	}
	return r.failed.Load()&(1<<uint(core)) != 0
}

// FailedCount returns how many cores are currently excluded.
func (r *RSS) FailedCount() int {
	mask := r.failed.Load()
	n := 0
	for ; mask != 0; mask &= mask - 1 {
		n++
	}
	return n
}

// Cores returns the nominal number of active cores (the scale target;
// failed cores within it receive no buckets).
func (r *RSS) Cores() int { return int(r.cores.Load()) }

// CoreFor returns the fast-path core that should process a packet with
// the given flow hash.
func (r *RSS) CoreFor(hash uint32) int {
	return int(r.table[hash%RSSTableSize].Load())
}

// CoreForPacket is CoreFor applied to the packet's 4-tuple hash.
func (r *RSS) CoreForPacket(p *protocol.Packet) int {
	return r.CoreFor(p.Hash())
}

// SetEntry explicitly steers one bucket to a core — used for targeted
// drain during scale-down. A failed core is never a valid target: the
// request is redirected to the eligible set instead, preserving the
// never-steer-to-failed invariant against racing callers.
func (r *RSS) SetEntry(bucket int, core int) {
	if r.Failed(core) {
		elig := r.eligible(r.Cores())
		core = int(elig[bucket%len(elig)])
	}
	r.table[bucket%RSSTableSize].Store(int32(core))
}
