package flowstate

import (
	"sync/atomic"

	"repro/internal/protocol"
)

// RSSTableSize is the number of redirection-table entries, matching the
// 128-entry indirection tables of commodity NICs.
const RSSTableSize = 128

// RSS models the NIC's receive-side-scaling redirection table: the flow
// hash indexes a table of fast-path core ids. The slow path rewrites the
// table when it adds or removes cores (§3.4, "we eagerly update the NIC
// RSS redirection table"); packets already in flight may still land on
// the old core, which is why flows carry spinlocks.
type RSS struct {
	table [RSSTableSize]atomic.Int32
	cores atomic.Int32
}

// NewRSS returns a table steering everything to core 0.
func NewRSS() *RSS {
	r := &RSS{}
	r.SetCores(1)
	return r
}

// SetCores rewrites the redirection table to spread buckets across n
// cores round-robin. Readers racing with the rewrite observe a mix of old
// and new entries — exactly the transient the paper's design tolerates.
func (r *RSS) SetCores(n int) {
	if n < 1 {
		n = 1
	}
	r.cores.Store(int32(n))
	for i := 0; i < RSSTableSize; i++ {
		r.table[i].Store(int32(i % n))
	}
}

// Cores returns the number of cores currently targeted.
func (r *RSS) Cores() int { return int(r.cores.Load()) }

// CoreFor returns the fast-path core that should process a packet with
// the given flow hash.
func (r *RSS) CoreFor(hash uint32) int {
	return int(r.table[hash%RSSTableSize].Load())
}

// CoreForPacket is CoreFor applied to the packet's 4-tuple hash.
func (r *RSS) CoreForPacket(p *protocol.Packet) int {
	return r.CoreFor(p.Hash())
}

// SetEntry explicitly steers one bucket to a core — used for targeted
// drain during scale-down.
func (r *RSS) SetEntry(bucket int, core int) {
	r.table[bucket%RSSTableSize].Store(int32(core))
}
