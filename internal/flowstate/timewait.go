package flowstate

import (
	"sync"

	"repro/internal/protocol"
)

// TimeWaitEntry is the compact 2MSL quarantine record a flow leaves
// behind when it completes an active close. The flow itself is removed
// from the table and all its resources (buffers, bucket, flow slot)
// are reclaimed immediately — the quarantine holds only what the
// RFC 793 TIME-WAIT responses need: the tuple, SND.NXT (seq after our
// FIN) for re-acks, RCV.NXT (ack past the peer's FIN) for acceptance
// checks and SYN-reuse ISN comparison, and the expiry deadline. This
// is what makes a FIN storm cheap: a quarantined connection costs tens
// of bytes against its own governed pool instead of a full flow slot
// plus payload buffers.
type TimeWaitEntry struct {
	Key      protocol.FlowKey
	FinalSeq uint32 // SND.NXT: sequence just past our FIN
	FinalAck uint32 // RCV.NXT: ack just past the peer's FIN
	Expiry   int64  // engine-clock nanos; refreshed on peer FIN rexmit

	// seqno orders entries for oldest-first eviction when the pool cap
	// is hit (Linux-style tw-bucket recycling).
	seqno uint64
}

// TimeWaitTable is the 2MSL quarantine. Like the flow and listener
// tables it lives on the engine side of the slow-path boundary, so a
// warm-restarted slow path re-adopts quarantined tuples (and their
// governor charges) instead of forgetting that a previous incarnation
// of a 4-tuple just died. Expiry deadlines use the engine clock, which
// also survives slow-path restarts.
type TimeWaitTable struct {
	mu   sync.Mutex
	m    map[protocol.FlowKey]*TimeWaitEntry
	next uint64
}

// NewTimeWaitTable returns an empty quarantine.
func NewTimeWaitTable() *TimeWaitTable {
	return &TimeWaitTable{m: make(map[protocol.FlowKey]*TimeWaitEntry)}
}

// Insert quarantines a tuple, replacing any existing entry for the key.
func (t *TimeWaitTable) Insert(e *TimeWaitEntry) {
	t.mu.Lock()
	t.next++
	e.seqno = t.next
	t.m[e.Key] = e
	t.mu.Unlock()
}

// Lookup returns the entry for k, or nil.
func (t *TimeWaitTable) Lookup(k protocol.FlowKey) *TimeWaitEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m[k]
}

// Remove drops the entry for k and reports whether one existed (the
// caller releases the governor charge only on true — early SYN reuse
// and the expiry sweep can race).
func (t *TimeWaitTable) Remove(k protocol.FlowKey) bool {
	t.mu.Lock()
	_, ok := t.m[k]
	if ok {
		delete(t.m, k)
	}
	t.mu.Unlock()
	return ok
}

// Extend refreshes k's expiry (a retransmitted peer FIN restarts the
// 2MSL clock, per RFC 793).
func (t *TimeWaitTable) Extend(k protocol.FlowKey, expiry int64) {
	t.mu.Lock()
	if e := t.m[k]; e != nil && expiry > e.Expiry {
		e.Expiry = expiry
	}
	t.mu.Unlock()
}

// Expire removes and returns the number of entries whose deadline has
// passed.
func (t *TimeWaitTable) Expire(now int64) int {
	t.mu.Lock()
	n := 0
	for k, e := range t.m {
		if e.Expiry <= now {
			delete(t.m, k)
			n++
		}
	}
	t.mu.Unlock()
	return n
}

// EvictOldest removes the oldest-inserted entry, reporting whether one
// existed. Called when the quarantine pool is at capacity: recycling
// the oldest incarnation is safer than refusing to quarantine the
// newest.
func (t *TimeWaitTable) EvictOldest() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	var victim *TimeWaitEntry
	for _, e := range t.m {
		if victim == nil || e.seqno < victim.seqno {
			victim = e
		}
	}
	if victim == nil {
		return false
	}
	delete(t.m, victim.Key)
	return true
}

// Len returns the number of quarantined tuples.
func (t *TimeWaitTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
