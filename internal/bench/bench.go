// Package bench contains one driver per table and figure of the paper's
// evaluation (§2.2, §5). Each driver regenerates the corresponding
// artifact — the same rows or series the paper reports — from this
// repository's substrates: the request-level CPU-cost simulation
// (baseline + cpumodel), the packet-level transport simulation
// (transport + netsim), and the live fast path where applicable.
//
// Absolute numbers come from a simulator, not the authors' testbed; the
// shapes (who wins, by what factor, where curves bend) are the
// reproduction targets. EXPERIMENTS.md records paper-vs-measured for
// every driver.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// RunConfig parameterizes a driver run.
type RunConfig struct {
	Seed int64
	// Quick shrinks durations/scales so the full suite runs on a laptop
	// in minutes; the shapes survive, the noise grows.
	Quick bool
}

// Result is a regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (r *Result) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// Note appends explanatory text printed under the table.
func (r *Result) Note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the result as comma-separated values (header + rows),
// for plotting the figures outside Go.
func (r *Result) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Experiment is one registered driver.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg RunConfig) *Result
	// Heavy experiments (paper-scale topologies) are skipped by
	// "tasbench -run all"; invoke them by id.
	Heavy bool
}

var registry []Experiment

// register adds an experiment (called from each driver's init).
func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments sorted by id.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// fmtF formats a float compactly.
func fmtF(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
