package bench

import (
	"fmt"

	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

func init() {
	register(Experiment{ID: "fig11", Title: "Single 10G link: FCT and queue vs control interval", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Large-cluster FCT CDFs (FatTree)", Run: runFig12})
	register(Experiment{ID: "fig13", Title: "Incast fairness: per-connection throughput distribution", Run: runFig13})
}

// ccKind selects the transport flavor for the congestion experiments.
type ccKind int

const (
	ccTCP   ccKind = iota // NewReno window
	ccDCTCP               // DCTCP window
	ccTAS                 // rate-based DCTCP with control interval tau
)

func (k ccKind) String() string {
	switch k {
	case ccTCP:
		return "TCP"
	case ccDCTCP:
		return "DCTCP"
	case ccTAS:
		return "TAS"
	}
	return "?"
}

func senderConfigFor(k ccKind, tau sim.Time, size uint64, done func(sim.Time)) transport.SenderConfig {
	cfg := transport.SenderConfig{Size: size, OnComplete: done}
	switch k {
	case ccTCP:
		cfg.Window = congestion.NewNewReno(1448, 1<<20)
	case ccDCTCP:
		cfg.Window = congestion.NewWindowDCTCP(1448, 1<<20)
	case ccTAS:
		c := congestion.DefaultConfig(10e9)
		// Start with the rate-equivalent of a 10-segment initial window
		// over the 100us RTT, for a fair comparison with the window
		// stacks' IW10, and slow-start per RTT (§4.1).
		c.InitRate = 145e6
		c.IntervalNs = int64(tau)
		cfg.Rate = congestion.NewRateDCTCP(c)
		cfg.ControlInterval = tau
		// Rate-based transmission is not ack-clocked: bound the
		// uncommitted inflight at roughly the 10G x 100us BDP so bursts
		// cannot exceed switch buffers by orders of magnitude.
		cfg.MaxInflight = 128 << 10
	}
	return cfg
}

// fig11Run simulates Pareto flows on one 10G link at 75% load and
// returns (mean FCT ms, avg bottleneck queue pkts).
func fig11Run(seed int64, kind ccKind, tau sim.Time, dur sim.Time) (fctMs, avgQ float64) {
	eng := sim.New(seed)
	a := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 1))
	b := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 2))
	// RTT 100us: 50us propagation each way.
	cfgA := netsim.PortConfig{RateBps: 10e9, PropDelay: 50 * sim.Microsecond, QueueCap: 400, ECNThreshold: 65}
	aPort := netsim.NewPort(eng, cfgA, b)
	a.AttachUplink(aPort)
	b.AttachUplink(netsim.NewPort(eng, cfgA, a))
	ea, eb := transport.NewEndpoint(a), transport.NewEndpoint(b)
	eb.AcceptAll(transport.ReceiverConfig{Mode: transport.RecoveryOneInterval})

	sizes := stats.NewPareto(eng.Rand(), 1.3, 2000, 2e6)
	meanSize := sizes.Mean()
	loadBps := 0.75 * 10e9 / 8
	arr := stats.NewExp(eng.Rand(), meanSize/loadBps*1e9) // ns between flows

	fcts := stats.NewCDF()
	port := uint16(10000)
	var launch func()
	launch = func() {
		if eng.Now() >= dur {
			return
		}
		size := uint64(sizes.Draw())
		p := port
		port++
		if port < 10000 {
			port = 10000
		}
		key := protocol.FlowKey{LocalIP: a.IP, LocalPort: p, RemoteIP: b.IP, RemotePort: 9000}
		s := transport.NewSender(ea, key, senderConfigFor(kind, tau, size, func(fct sim.Time) {
			fcts.Add(float64(fct) / 1e6)
		}))
		s.Start()
		eng.After(sim.Time(arr.Draw()), launch)
	}
	eng.After(0, launch)
	eng.RunUntil(dur + 20*sim.Millisecond) // drain
	return fcts.Mean(), aPort.AvgQueueLen()
}

func runFig11(cfg RunConfig) *Result {
	dur := 300 * sim.Millisecond
	if cfg.Quick {
		dur = 80 * sim.Millisecond
	}
	r := &Result{
		ID: "fig11", Title: "Single 10G link, 75% load, Pareto flows: avg FCT / avg queue vs tau",
		Header: []string{"tau (us)", "TCP FCT(ms)", "DCTCP FCT(ms)", "TAS FCT(ms)", "TCP Q", "DCTCP Q", "TAS Q"},
	}
	// Window baselines don't depend on tau: run once.
	tcpF, tcpQ := fig11Run(cfg.Seed, ccTCP, 0, dur)
	dctF, dctQ := fig11Run(cfg.Seed, ccDCTCP, 0, dur)
	taus := []sim.Time{25, 50, 100, 200, 400, 800, 1000}
	for _, tu := range taus {
		tau := tu * sim.Microsecond
		tasF, tasQ := fig11Run(cfg.Seed, ccTAS, tau, dur)
		r.AddRow(fmt.Sprint(tu), fmtF(tcpF, 2), fmtF(dctF, 2), fmtF(tasF, 2),
			fmtF(tcpQ, 1), fmtF(dctQ, 1), fmtF(tasQ, 1))
	}
	r.Note("paper: TAS FCT ~ DCTCP for tau >= RTT (100us); too-small tau slows convergence; queue grows slowly with tau")
	return r
}

// runFig12: FatTree on-off traffic, FCT CDFs for short and long flows.
// The default tree is scaled down from the paper's 2560 hosts so the
// full suite stays laptop-sized; FullFig12 runs the paper-size topology.
func runFig12(cfg RunConfig) *Result {
	ftCfg := netsim.FatTreeConfig{
		Pods: 4, TorsPerPod: 2, ServersPerTor: 8, AggsPerPod: 2, Cores: 4,
		HostRateBps: 10e9, TorUpBps: 20e9, AggUpBps: 20e9,
		PropDelay: 5 * sim.Microsecond, QueueCap: 250, ECNThreshold: 65,
	}
	dur := 150 * sim.Millisecond
	if cfg.Quick {
		dur = 50 * sim.Millisecond
	}
	return fig12Sized(cfg, ftCfg, dur)
}

func fig12Sized(cfg RunConfig, ftCfg netsim.FatTreeConfig, dur sim.Time) *Result {
	// At 1:4 edge oversubscription (paper config) the small tree still
	// exercises cross-pod contention.
	r := &Result{
		ID: "fig12", Title: fmt.Sprintf("FatTree (%d hosts) on-off traffic: FCT percentiles (ms)", ftCfg.Pods*ftCfg.TorsPerPod*ftCfg.ServersPerTor),
		Header: []string{"Flows", "Stack", "p50", "p90", "p99"},
	}
	run := func(kind ccKind) (short, long *stats.CDF) {
		eng := sim.New(cfg.Seed)
		ft := netsim.NewFatTree(eng, ftCfg)
		eps := make([]*transport.Endpoint, len(ft.Hosts))
		for i, h := range ft.Hosts {
			eps[i] = transport.NewEndpoint(h)
			eps[i].AcceptAll(transport.ReceiverConfig{Mode: transport.RecoveryOneInterval})
		}
		short, long = stats.NewCDF(), stats.NewCDF()
		sizes := stats.NewPareto(eng.Rand(), 1.3, 2000, 1e6)
		// 30% average load on host links via on-off flow launches.
		meanSize := sizes.Mean()
		perHostBps := 0.30 * 10e9 / 8
		gap := stats.NewExp(eng.Rand(), meanSize/perHostBps*1e9)
		const shortCut = 50 * 1448
		port := uint16(10000)
		var launchFrom func(src int)
		launchFrom = func(src int) {
			if eng.Now() >= dur {
				return
			}
			dst := src
			for dst == src {
				dst = eng.Rand().Intn(len(ft.Hosts))
			}
			size := uint64(sizes.Draw())
			p := port
			port++
			if port < 10000 {
				port = 10000
			}
			key := protocol.FlowKey{LocalIP: ft.Hosts[src].IP, LocalPort: p, RemoteIP: ft.Hosts[dst].IP, RemotePort: 9000}
			s := transport.NewSender(eps[src], key, senderConfigFor(kind, 100*sim.Microsecond, size, func(fct sim.Time) {
				if size <= shortCut {
					short.Add(float64(fct) / 1e6)
				} else {
					long.Add(float64(fct) / 1e6)
				}
			}))
			s.Start()
			eng.After(sim.Time(gap.Draw()), func() { launchFrom(src) })
		}
		for i := range ft.Hosts {
			i := i
			eng.After(sim.Time(gap.Draw()), func() { launchFrom(i) })
		}
		eng.RunUntil(dur + 30*sim.Millisecond)
		return short, long
	}
	for _, kind := range []ccKind{ccTCP, ccDCTCP, ccTAS} {
		short, long := run(kind)
		r.AddRow("short (<=50 pkt)", kind.String(),
			fmtF(short.Quantile(0.5), 2), fmtF(short.Quantile(0.9), 2), fmtF(short.Quantile(0.99), 2))
		r.AddRow("long (>50 pkt)", kind.String(),
			fmtF(long.Quantile(0.5), 2), fmtF(long.Quantile(0.9), 2), fmtF(long.Quantile(0.99), 2))
	}
	r.Note("paper (2560-host tree, tau=100us): TAS ~ DCTCP for both classes")
	r.Note("run the paper-size 2560-host tree via tasbench -run fig12-full (minutes of CPU)")
	return r
}

// runFig13: incast fairness.
func runFig13(cfg RunConfig) *Result {
	dur := 900 * sim.Millisecond
	warm := 300 * sim.Millisecond
	if cfg.Quick {
		dur = 600 * sim.Millisecond
		warm = 200 * sim.Millisecond
	}
	binW := 100 * sim.Millisecond
	r := &Result{
		ID: "fig13", Title: "Incast: per-connection 100ms throughput (MB per 100ms)",
		Header: []string{"Conns", "Fair share", "Linux p50", "Linux p1", "TAS p50", "TAS p99/p50", "Linux starved%"},
	}
	run := func(kind ccKind, conns int) *stats.CDF {
		eng := sim.New(cfg.Seed)
		hosts := []*netsim.Host{}
		for i := 0; i < 5; i++ {
			hosts = append(hosts, netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 1, byte(i+1))))
		}
		pc := netsim.PortConfig{RateBps: 10e9, PropDelay: 10 * sim.Microsecond, QueueCap: 2000, ECNThreshold: 65}
		netsim.NewStar(eng, hosts, pc, pc)
		sink := transport.NewEndpoint(hosts[4])
		mode := transport.RecoveryOneInterval
		if kind != ccTAS {
			mode = transport.RecoverySelective
		}
		sink.AcceptAll(transport.ReceiverConfig{Mode: mode})
		eps := []*transport.Endpoint{
			transport.NewEndpoint(hosts[0]), transport.NewEndpoint(hosts[1]),
			transport.NewEndpoint(hosts[2]), transport.NewEndpoint(hosts[3]),
		}
		var senders []*transport.Sender
		for i := 0; i < conns; i++ {
			src := i % 4
			key := protocol.FlowKey{LocalIP: hosts[src].IP, LocalPort: uint16(10000 + i/4), RemoteIP: hosts[4].IP, RemotePort: 9000}
			scfg := senderConfigFor(kind, 200*sim.Microsecond, 0, nil)
			scfg.MaxInflight = 256 << 10
			scfg.AdaptiveInterval = true // tau = 2x measured RTT (paper default)
			if kind == ccTAS {
				// TAS retransmission timeouts come from the slow path's
				// control loop: milliseconds, not Linux's 200ms floor.
				scfg.MaxRTO = 20 * sim.Millisecond
			} else {
				// Linux RTO: 200ms minimum, 1s initial — the reason
				// RTO-hit incast flows starve whole 100ms bins.
				scfg.MinRTO = 200 * sim.Millisecond
				scfg.MaxRTO = sim.Second
			}
			if kind == ccTAS {
				// Long-running incast flows: start near the eventual
				// fair share instead of the fresh-flow burst rate.
				c := congestion.DefaultConfig(10e9)
				c.InitRate = 2e6
				c.IntervalNs = int64(200 * sim.Microsecond)
				scfg.Rate = congestion.NewRateDCTCP(c)
			}
			s := transport.NewSender(eps[src], key, scfg)
			// Stagger connection establishment over 100ms.
			eng.At(sim.Time(i)*100*sim.Millisecond/sim.Time(conns), s.Start)
			senders = append(senders, s)
		}
		// Sample per-conn bytes every 100ms after warmup.
		bins := stats.NewCDF()
		last := make([]uint64, len(senders))
		for t := warm; t <= dur; t += binW {
			eng.RunUntil(t)
			for i, s := range senders {
				cur := s.AckedBytes()
				if t > warm {
					bins.Add(float64(cur-last[i]) / 1e6)
				}
				last[i] = cur
			}
		}
		return bins
	}
	for _, conns := range []int{50, 100, 200, 500, 1000} {
		fair := 10e9 / 8 * 0.1 / float64(conns) / 1e6 // MB per 100ms per conn
		lin := run(ccDCTCP, conns)                    // Linux with DCTCP (paper's baseline)
		tas := run(ccTAS, conns)
		starved := 0
		for _, p := range lin.Points(0) {
			if p[0] < fair/10 {
				starved++
			}
		}
		starvedPct := 100 * float64(starved) / float64(lin.Count())
		ratio := 0.0
		if tas.Quantile(0.5) > 0 {
			ratio = tas.Quantile(0.99) / tas.Quantile(0.5)
		}
		r.AddRow(fmt.Sprint(conns), fmtF(fair, 3),
			fmtF(lin.Quantile(0.5), 3), fmtF(lin.Quantile(0.01), 4),
			fmtF(tas.Quantile(0.5), 3), fmtF(ratio, 2), fmtF(starvedPct, 1))
	}
	r.Note("paper: TAS tail within 1.6-2.8x of median, median near fair share; Linux fluctuates widely with starved flows")
	return r
}

func init() {
	register(Experiment{ID: "fig12-full", Title: "Large-cluster FCT CDFs, paper-size 2560-host FatTree", Run: runFig12Full, Heavy: true})
}

// runFig12Full uses the paper's §5.5 topology: 2560 servers, 112
// switches, 1:4 oversubscription. Minutes of CPU.
func runFig12Full(cfg RunConfig) *Result {
	dur := 20 * sim.Millisecond
	if cfg.Quick {
		dur = 6 * sim.Millisecond
	}
	res := fig12Sized(cfg, netsim.PaperFatTree(), dur)
	res.ID = "fig12-full"
	return res
}
