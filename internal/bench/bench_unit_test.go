package bench

import (
	"strings"
	"testing"

	"repro/internal/cpumodel"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artifact must be registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
		"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig12-full", "fig13", "fig14", "fig15",
		"ablation-buffers", "ablation-steering",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) < len(want) {
		t.Errorf("registry has %d experiments, want >= %d", len(All()), len(want))
	}
}

func TestAllSortedAndUnique(t *testing.T) {
	all := All()
	seen := map[string]bool{}
	for i, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if i > 0 && all[i-1].ID > e.ID {
			t.Error("All() not sorted")
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id should not resolve")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "x", Title: "t", Header: []string{"A", "BB"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.Note("hello %d", 7)
	s := r.String()
	for _, want := range []string{"=== x: t ===", "A", "BB", "333", "note: hello 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: header line and row line have same prefix width.
	lines := strings.Split(s, "\n")
	if len(lines) < 5 {
		t.Fatal("too few lines")
	}
}

func TestTable6SplitMatchesPaper(t *testing.T) {
	cases := map[int][2]int{2: {1, 1}, 4: {2, 2}, 8: {5, 3}, 12: {7, 5}, 16: {9, 7}}
	for total, want := range cases {
		app, tas := table6Split(total, false)
		if app != want[0] || tas != want[1] {
			t.Errorf("split(%d) = %d/%d, want %d/%d", total, app, tas, want[0], want[1])
		}
		if app+tas != total {
			t.Errorf("split(%d) doesn't sum", total)
		}
		la, lt := table6Split(total, true)
		if la+lt != total || la < 1 || lt < 1 {
			t.Errorf("lowlevel split(%d) = %d/%d", total, la, lt)
		}
	}
	// Off-table totals still valid.
	a, s := table6Split(6, false)
	if a+s != 6 || a < 1 || s < 1 {
		t.Errorf("split(6) = %d/%d", a, s)
	}
}

func TestFig6CostsShape(t *testing.T) {
	// Per-message cost must grow with size and Linux must exceed TAS.
	for _, dir := range []string{"RX", "TX"} {
		tas32 := fig6Costs(cpumodel.StackTAS, dir, 32)
		tas2k := fig6Costs(cpumodel.StackTAS, dir, 2048)
		if tas2k.StackCycles() <= tas32.StackCycles() {
			t.Errorf("%s: larger messages must cost more", dir)
		}
	}
	lin := fig6Costs(cpumodel.StackLinux, "RX", 64)
	tas := fig6Costs(cpumodel.StackTAS, "RX", 64)
	if lin.StackCycles() <= tas.StackCycles() {
		t.Error("Linux per-message cost must exceed TAS")
	}
}

func TestCcKindString(t *testing.T) {
	if ccTCP.String() != "TCP" || ccDCTCP.String() != "DCTCP" || ccTAS.String() != "TAS" {
		t.Fatal("names")
	}
}

func TestResultCSV(t *testing.T) {
	r := &Result{ID: "x", Header: []string{"A", "B"}}
	r.AddRow("1", `va"l,ue`)
	got := r.CSV()
	want := "A,B\n1,\"va\"\"l,ue\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
