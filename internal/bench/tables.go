package bench

import (
	"fmt"
	"unsafe"

	"repro/internal/baseline"
	"repro/internal/cpumodel"
	"repro/internal/flowstate"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "table1", Title: "CPU cycles per request by network stack module", Run: runTable1})
	register(Experiment{ID: "table2", Title: "Per-request app/stack top-down overheads", Run: runTable2})
	register(Experiment{ID: "table3", Title: "Per-flow fast-path state (102 bytes)", Run: runTable3})
}

// table1Config is the §2.2 measurement setup: KV server on 8 cores, 32K
// connections, saturating small-request load.
func table1Measure(cfg RunConfig, kind cpumodel.StackKind) (perModule cpumodel.Costs, measured float64) {
	eng := sim.New(cfg.Seed)
	app, stk := 8, 0
	if kind == cpumodel.StackTAS || kind == cpumodel.StackTASLL {
		app, stk = 5, 3
	}
	srv := baseline.NewServer(eng, baseline.ServerConfig{
		Kind: kind, AppCores: app, StackCores: stk, Conns: 32768,
	})
	// The 32K-connection closed loop needs a full queue rotation
	// (~conns*cost/cores cycles) before the window opens, so the
	// cycles-issued vs requests-completed accounting is steady.
	warm, dur := 60*sim.Millisecond, 50*sim.Millisecond
	if cfg.Quick {
		warm, dur = 45*sim.Millisecond, 20*sim.Millisecond
	}
	res := baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
		Conns: 32768, NetRTT: 20 * sim.Microsecond,
		Duration: dur, Warmup: warm,
	})
	costs := srv.Costs()
	total := costs.TotalCycles()
	if res.CyclesPerReq > 0 {
		total = res.CyclesPerReq
	}
	// Scale the stack modules so they sum to the measured stack cycles
	// (emergent cache/lock penalties distribute across modules, as a
	// hardware-counter attribution would).
	if stack := total - costs.App; stack > 0 && costs.StackCycles() > 0 {
		f := stack / costs.StackCycles()
		costs.Driver *= f
		costs.IP *= f
		costs.TCP *= f
		costs.Sockets *= f
		costs.Other *= f
	}
	return costs, total
}

func runTable1(cfg RunConfig) *Result {
	r := &Result{
		ID: "table1", Title: "CPU cycles per request by network stack module (KV, 8 cores, 32K conns)",
		Header: []string{"Module", "Linux kc", "Linux %", "IX kc", "IX %", "TAS kc", "TAS %"},
	}
	kinds := []cpumodel.StackKind{cpumodel.StackLinux, cpumodel.StackIX, cpumodel.StackTAS}
	var costs [3]cpumodel.Costs
	var totals [3]float64
	for i, k := range kinds {
		costs[i], totals[i] = table1Measure(cfg, k)
	}
	row := func(name string, pick func(c cpumodel.Costs) float64) {
		cells := []string{name}
		for i := range kinds {
			v := pick(costs[i])
			cells = append(cells, fmtF(v/1000, 2), fmtF(100*v/totals[i], 0)+"%")
		}
		r.AddRow(cells...)
	}
	row("Driver", func(c cpumodel.Costs) float64 { return c.Driver })
	row("IP", func(c cpumodel.Costs) float64 { return c.IP })
	row("TCP", func(c cpumodel.Costs) float64 { return c.TCP })
	row("Sockets/IX", func(c cpumodel.Costs) float64 { return c.Sockets })
	row("Other", func(c cpumodel.Costs) float64 { return c.Other })
	row("App", func(c cpumodel.Costs) float64 { return c.App })
	cells := []string{"Total (measured)"}
	for i := range kinds {
		cells = append(cells, fmtF(totals[i]/1000, 2), "100%")
	}
	r.AddRow(cells...)
	r.Note("paper totals: Linux 16.75kc, IX 2.73kc, TAS 2.57kc")
	return r
}

func runTable2(cfg RunConfig) *Result {
	r := &Result{
		ID: "table2", Title: "Per-request app/stack overheads (top-down cycles)",
		Header: []string{"Counter", "Linux", "IX", "TAS"},
	}
	kinds := []cpumodel.StackKind{cpumodel.StackLinux, cpumodel.StackIX, cpumodel.StackTAS}
	type col struct {
		app, stack cpumodel.Breakdown
		cpi        float64
		instr      float64
		appC, stkC float64
	}
	var cols []col
	for _, k := range kinds {
		costs, total := table1Measure(cfg, k)
		appC := costs.App
		stkC := total - appC
		a, s := cpumodel.PerRequestBreakdown(k, appC, stkC)
		cols = append(cols, col{app: a, stack: s, cpi: cpumodel.CPI(total, costs.Instructions), instr: costs.Instructions, appC: appC, stkC: stkC})
	}
	pair := func(name string, f func(c col) (float64, float64)) {
		cells := []string{name}
		for _, c := range cols {
			a, s := f(c)
			cells = append(cells, fmt.Sprintf("%.0f/%.0f", a, s))
		}
		r.AddRow(cells...)
	}
	r.AddRow("CPU cycles", fmt.Sprintf("%.1fk/%.1fk", cols[0].appC/1e3, cols[0].stkC/1e3),
		fmt.Sprintf("%.1fk/%.1fk", cols[1].appC/1e3, cols[1].stkC/1e3),
		fmt.Sprintf("%.1fk/%.1fk", cols[2].appC/1e3, cols[2].stkC/1e3))
	r.AddRow("Instructions", fmtF(cols[0].instr/1e3, 1)+"k", fmtF(cols[1].instr/1e3, 1)+"k", fmtF(cols[2].instr/1e3, 1)+"k")
	r.AddRow("CPI", fmtF(cols[0].cpi, 2), fmtF(cols[1].cpi, 2), fmtF(cols[2].cpi, 2))
	pair("Retiring (cycles)", func(c col) (float64, float64) { return c.app.Retiring, c.stack.Retiring })
	pair("Frontend Bound", func(c col) (float64, float64) { return c.app.Frontend, c.stack.Frontend })
	pair("Backend Bound", func(c col) (float64, float64) { return c.app.Backend, c.stack.Backend })
	pair("Bad Speculation", func(c col) (float64, float64) { return c.app.BadSpec, c.stack.BadSpec })
	r.Note("cells are app/stack; paper: Linux CPI 1.32, IX 0.82, TAS 0.66; TAS backend-bound stack cycles ~32%% below IX")
	return r
}

func runTable3(cfg RunConfig) *Result {
	r := &Result{
		ID: "table3", Title: "Required per-flow fast path state",
		Header: []string{"Field", "Bits", "Description"},
	}
	fields := []struct {
		name string
		bits int
		desc string
	}{
		{"opaque", 64, "application-defined flow identifier"},
		{"context", 16, "RX/TX context queue number"},
		{"bucket", 24, "rate bucket number"},
		{"rx|tx_start", 128, "RX/TX buffer start"},
		{"rx|tx_size", 64, "RX/TX buffer size"},
		{"rx|tx_head|tail", 128, "RX/TX buffer head/tail position"},
		{"tx_sent", 32, "sent bytes from tx_head"},
		{"seq", 32, "local TCP sequence number"},
		{"ack", 32, "peer TCP sequence number"},
		{"window", 16, "remote TCP receive window"},
		{"dupack_cnt", 4, "duplicate ACK count"},
		{"local_port", 16, "local port number"},
		{"peer_ip|port|mac", 96, "peer 3-tuple (for segmentation)"},
		{"ooo_start|len", 64, "out-of-order interval"},
		{"cnt_ackb|ecnb", 64, "ACK'd and ECN marked bytes"},
		{"cnt_frexmits", 8, "fast re-transmits triggered count"},
		{"rtt_est", 32, "RTT estimate"},
	}
	total := 0
	for _, f := range fields {
		total += f.bits
		r.AddRow(f.name, fmt.Sprint(f.bits), f.desc)
	}
	r.AddRow("TOTAL", fmt.Sprint(total), fmt.Sprintf("%d bytes packed", total/8))
	r.Note("flowstate.PackedSize = %d bytes; Go struct sizeof = %d bytes (pointers replace start|size, buffers carry head|tail)",
		flowstate.PackedSize, unsafe.Sizeof(flowstate.Flow{}))
	r.Note("2 MB L2/3 per core / %d B => >19k flows hot per fast-path core", flowstate.PackedSize)
	return r
}
