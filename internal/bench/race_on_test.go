//go:build race

package bench

// raceEnabled reports whether the race detector is compiled in. The
// simulation smoke tests run minutes of simulated traffic; under the
// detector's ~20× slowdown they exceed any reasonable test timeout, so
// they skip themselves (the plain test run still covers them).
const raceEnabled = true
