package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	tas "repro"
)

func init() {
	register(Experiment{
		ID:    "handshake",
		Title: "Concurrent handshake scalability: striped tables, clean and under SYN flood",
		Run:   runHandshake,
	})
}

// runHandshake measures concurrent dial throughput and latency against a
// live server listening on eight ports, sweeping the handshake-table
// stripe count, both clean and with a 50K pps spoofed SYN flood pinned
// to the first port. Striping keeps the flooded port's stripe lock away
// from the other seven; SYN cookies keep legitimate dials to the flooded
// port itself completing. The row set is the trajectory recorded in
// BENCH_handshake.json.
func runHandshake(cfg RunConfig) *Result {
	workers, dials := 8, 150
	if cfg.Quick {
		workers, dials = 4, 50
	}
	r := &Result{
		ID:     "handshake",
		Title:  "Concurrent handshakes across 8 ports: throughput and latency vs stripe count",
		Header: []string{"Stripes", "Flood", "Handshakes/s", "p50(ms)", "p99(ms)", "Failures", "CookiesOK"},
	}
	for _, stripes := range []int{1, 16} {
		for _, flood := range []bool{false, true} {
			m := handshakeRun(cfg, stripes, flood, workers, dials)
			floodLbl := "-"
			if flood {
				floodLbl = "50Kpps"
			}
			r.AddRow(fmt.Sprint(stripes), floodLbl,
				fmtF(m.rate, 0), fmtF(m.p50, 2), fmtF(m.p99, 2),
				fmt.Sprint(m.fails), fmt.Sprint(m.cookies))
		}
	}
	r.Note("flood targets port 7100 only; workers dial all 8 ports (7100-7107), so flood rows mix the cookie path (flooded port) with cross-stripe dials")
	r.Note("with 16 stripes ports 7100-7107 spread across distinct stripes; with 1 stripe every handshake shares one lock")
	return r
}

type handshakeMetrics struct {
	rate    float64 // completed handshakes per second
	p50     float64 // dial latency ms
	p99     float64
	fails   int
	cookies uint64 // connections reconstructed from SYN cookies
}

func handshakeRun(cfg RunConfig, stripes int, flood bool, workers, dials int) handshakeMetrics {
	const basePort = 7100
	const ports = 8
	fab := tas.NewFabric()
	scfg := tas.Config{HandshakeStripes: stripes, ListenBacklog: 64}
	srv, err := fab.NewService("10.0.0.1", scfg)
	if err != nil {
		return handshakeMetrics{}
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tas.Config{HandshakeStripes: stripes})
	if err != nil {
		return handshakeMetrics{}
	}
	defer cli.Close()

	stop := make(chan struct{})
	defer close(stop)

	// One accept-and-close loop per port keeps accept queues drained.
	var acceptWG sync.WaitGroup
	for p := 0; p < ports; p++ {
		sctx := srv.NewContext()
		ln, err := sctx.Listen(uint16(basePort + p))
		if err != nil {
			return handshakeMetrics{}
		}
		acceptWG.Add(1)
		go func() {
			defer acceptWG.Done()
			defer ln.Close()
			for {
				c, err := ln.Accept(100 * time.Millisecond)
				if err != nil {
					select {
					case <-stop:
						return
					default:
						continue
					}
				}
				c.Close()
			}
		}()
	}

	if flood {
		atk, err := fab.NewAttacker("10.99.0.1")
		if err == nil {
			defer atk.Close()
			go func() {
				rng := rand.New(rand.NewSource(cfg.Seed + 977))
				tk := time.NewTicker(2 * time.Millisecond)
				defer tk.Stop()
				for {
					atk.SynBurst("10.0.0.1", basePort, 100, rng) // 50K pps
					select {
					case <-stop:
						return
					case <-tk.C:
					}
				}
			}()
		}
	}

	// Concurrent dialers: each worker owns a context and a port, dialing
	// and closing in a tight loop.
	var mu sync.Mutex
	var lat []time.Duration
	fails := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := cli.NewContext()
			port := uint16(basePort + w%ports)
			for i := 0; i < dials; i++ {
				t0 := time.Now()
				c, err := ctx.DialTimeout("10.0.0.1", port, 2*time.Second)
				d := time.Since(t0)
				mu.Lock()
				if err != nil {
					fails++
				} else {
					lat = append(lat, d)
				}
				mu.Unlock()
				if c != nil {
					c.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	m := handshakeMetrics{fails: fails, cookies: srv.Stats().SynCookiesValidated}
	if len(lat) == 0 {
		return m
	}
	m.rate = float64(len(lat)) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	pct := func(q float64) time.Duration {
		i := int(q*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return lat[i]
	}
	m.p50, m.p99 = ms(pct(0.50)), ms(pct(0.99))
	return m
}
