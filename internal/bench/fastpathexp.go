package bench

import (
	"io"
	"time"

	tas "repro"
)

func init() {
	register(Experiment{
		ID:    "fastpath",
		Title: "Fast-path latency observatory: ns/packet and sampled RTT percentiles",
		Run:   runFastpath,
	})
}

// runFastpath drives a live echo exchange over the in-process stack
// with the full latency observatory enabled and reports what it saw:
// wall-clock nanoseconds per fast-path packet, and the p50/p99/p99.9 of
// the smoothed RTT sampled by the striped log-linear histogram on the
// server's ACK path. Appended to BENCH_fastpath.json over time, the
// rows form the regression trajectory for both throughput and tail
// latency of this reproduction.
func runFastpath(cfg RunConfig) *Result {
	r := &Result{
		ID: "fastpath", Title: "Fast-path ns/packet and RTT percentiles (latency observatory)",
		Header: []string{"metric", "value", "unit"},
	}
	rpcs := 5000
	if cfg.Quick {
		rpcs = 1000
	}

	fab := tas.NewFabric()
	tcfg := tas.Config{Telemetry: tas.TelemetryConfig{Enabled: true}}
	srv, err := fab.NewService("10.0.0.1", tcfg)
	if err != nil {
		r.Note("fastpath: %v", err)
		return r
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tcfg)
	if err != nil {
		r.Note("fastpath: %v", err)
		return r
	}
	defer cli.Close()

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		r.Note("fastpath: %v", err)
		return r
	}
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		r.Note("fastpath: %v", err)
		return r
	}
	req, resp := make([]byte, 64), make([]byte, 64)
	start := time.Now()
	for i := 0; i < rpcs; i++ {
		if _, err := c.Write(req); err != nil {
			r.Note("fastpath: write: %v", err)
			return r
		}
		if _, err := io.ReadFull(c, resp); err != nil {
			r.Note("fastpath: read: %v", err)
			return r
		}
	}
	elapsed := time.Since(start)
	c.Close()

	eng := srv.Engine()
	var pkts uint64
	for i := 0; i < eng.MaxCores(); i++ {
		st := eng.Stats(i)
		pkts += st.RxPackets.Load() + st.TxPackets.Load()
	}
	if pkts == 0 {
		r.Note("fastpath: no packets")
		return r
	}
	r.AddRow("ns/packet", fmtF(float64(elapsed.Nanoseconds())/float64(pkts), 1), "ns")

	rtt := srv.Telemetry().RTT
	qs := rtt.Quantiles(0.5, 0.99, 0.999)
	r.AddRow("rtt_p50", fmtF(qs[0], 1), "us")
	r.AddRow("rtt_p99", fmtF(qs[1], 1), "us")
	r.AddRow("rtt_p99.9", fmtF(qs[2], 1), "us")
	r.AddRow("rtt_samples", fmtF(float64(rtt.Count()), 0), "")
	r.Note("%d RPCs in %v, %d packets through the server fast path; RTT sampled 1-in-64 ACKs from the smoothed estimator", rpcs, elapsed.Round(time.Millisecond), pkts)
	return r
}
