package bench

import (
	"fmt"

	"repro/internal/congestion"
	"repro/internal/netsim"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/transport"
)

func init() {
	register(Experiment{ID: "table4", Title: "Peer compatibility: Linux/TAS sender-receiver matrix", Run: runTable4})
	register(Experiment{ID: "fig7", Title: "Throughput penalty under packet loss", Run: runFig7})
}

// bulkPair builds a 10G two-host link and runs nflows bulk flows from a
// to b with the given sender style and receiver mode, returning goodput
// in Gbps.
func bulkGoodput(seed int64, nflows int, loss float64, tasSender bool, mode transport.RecoveryMode, dur sim.Time) float64 {
	eng := sim.New(seed)
	a := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 1))
	b := netsim.NewHost(eng, protocol.MakeIPv4(10, 0, 0, 2))
	netsim.ConnectPair(eng, a, b, netsim.PortConfig{
		RateBps: 10e9, PropDelay: 10 * sim.Microsecond, QueueCap: 500,
		ECNThreshold: 65, LossRate: loss,
	})
	ea, eb := transport.NewEndpoint(a), transport.NewEndpoint(b)
	var senders []*transport.Sender
	for i := 0; i < nflows; i++ {
		scfg := transport.SenderConfig{}
		if tasSender {
			c := congestion.DefaultConfig(10e9)
			c.IntervalNs = int64(200 * sim.Microsecond)
			scfg.Rate = congestion.NewRateDCTCP(c)
			scfg.ControlInterval = 200 * sim.Microsecond
			scfg.AdaptiveInterval = true // tau = 2x measured RTT (paper default)
		} else {
			scfg.Window = congestion.NewWindowDCTCP(1448, 1<<20)
		}
		s, _ := transport.StartFlow(ea, eb, uint16(10000+i), 9000, scfg, transport.ReceiverConfig{Mode: mode})
		senders = append(senders, s)
	}
	eng.RunUntil(dur)
	var total uint64
	for _, s := range senders {
		total += s.AckedBytes()
	}
	return float64(total) * 8 / (float64(dur) / 1e9) / 1e9
}

func runTable4(cfg RunConfig) *Result {
	dur := 200 * sim.Millisecond
	if cfg.Quick {
		dur = 60 * sim.Millisecond
	}
	r := &Result{
		ID: "table4", Title: "Compatibility: 100 bulk flows, 10G link (goodput, Gbps)",
		Header: []string{"Receiver \\ Sender", "Linux", "TAS"},
	}
	// Linux receiver = selective (SACK-like); TAS receiver = one-interval.
	ll := bulkGoodput(cfg.Seed, 100, 0, false, transport.RecoverySelective, dur)
	lt := bulkGoodput(cfg.Seed+1, 100, 0, true, transport.RecoverySelective, dur)
	tl := bulkGoodput(cfg.Seed+2, 100, 0, false, transport.RecoveryOneInterval, dur)
	tt := bulkGoodput(cfg.Seed+3, 100, 0, true, transport.RecoveryOneInterval, dur)
	r.AddRow("Linux", fmtF(ll, 2), fmtF(lt, 2))
	r.AddRow("TAS", fmtF(tl, 2), fmtF(tt, 2))
	r.Note("paper: 9.4 Gbps in all four combinations (line rate); wire-rate ceiling after headers ~9.5 Gbps")
	return r
}

func runFig7(cfg RunConfig) *Result {
	dur := 150 * sim.Millisecond
	seeds := 3
	if cfg.Quick {
		dur = 50 * sim.Millisecond
		seeds = 2
	}
	r := &Result{
		ID: "fig7", Title: "Throughput penalty vs packet loss (100 flows, one link)",
		Header: []string{"Loss %", "Linux penalty %", "TAS penalty %", "TAS simple (GBN) penalty %"},
	}
	type variant struct {
		tas  bool
		mode transport.RecoveryMode
	}
	variants := []variant{
		{false, transport.RecoverySelective},  // Linux: window + SACK-like
		{true, transport.RecoveryOneInterval}, // TAS
		{true, transport.RecoveryGoBackN},     // TAS simple recovery
	}
	// Lossless baselines per variant.
	base := make([]float64, len(variants))
	for i, v := range variants {
		base[i] = bulkGoodput(cfg.Seed+int64(i), 100, 0, v.tas, v.mode, dur)
	}
	for _, lossPct := range []float64{0.1, 0.2, 0.5, 1, 2, 5} {
		cells := []string{fmtF(lossPct, 1)}
		for i, v := range variants {
			var sum float64
			for s := 0; s < seeds; s++ {
				sum += bulkGoodput(cfg.Seed+int64(100*i+10*s)+int64(lossPct*1000), 100, lossPct/100, v.tas, v.mode, dur)
			}
			g := sum / float64(seeds)
			pen := (1 - g/base[i]) * 100
			if pen < 0 {
				pen = 0
			}
			cells = append(cells, fmtF(pen, 1))
		}
		r.AddRow(cells...)
	}
	r.Note("paper: TAS penalty <=1.5%% up to 1%% loss, 13%% at 5%%; TAS ~2x Linux; simple recovery ~3x TAS")
	return r
}

// fmtGbps is a tiny helper used by several drivers.
func fmtGbps(v float64) string { return fmt.Sprintf("%.2f", v) }
