package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cpumodel"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "fig8", Title: "Key-value store throughput scalability", Run: runFig8})
	register(Experiment{ID: "table6", Title: "Core split for TAS in the KV throughput experiment", Run: runTable6})
	register(Experiment{ID: "fig9", Title: "Key-value store latency CDF", Run: runFig9})
	register(Experiment{ID: "table5", Title: "Key-value store latency percentiles", Run: runTable5})
	register(Experiment{ID: "table7", Title: "Non-scalable KV workload throughput", Run: runTable7})
}

// table6Split returns the paper's Table 6 app/TAS core split for a total
// core count, per API flavor.
func table6Split(total int, lowlevel bool) (app, tas int) {
	if lowlevel {
		app = total / 2
		tas = total - app
		if app < 1 {
			app = 1
		}
		return app, tas
	}
	switch total {
	case 2:
		return 1, 1
	case 4:
		return 2, 2
	case 8:
		return 5, 3
	case 12:
		return 7, 5
	case 16:
		return 9, 7
	}
	app = total * 3 / 5
	if app < 1 {
		app = 1
	}
	return app, total - app
}

// kvAppCycles is the key-value store's per-request application work
// (hashing + lookup/update + response formatting, §5.3's 32B key / 64B
// value workload).
const kvAppCycles = 800

func kvThroughput(cfg RunConfig, kind cpumodel.StackKind, totalCores int, dur, warm sim.Time) float64 {
	app, stk := totalCores, 0
	switch kind {
	case cpumodel.StackTAS:
		app, stk = table6Split(totalCores, false)
	case cpumodel.StackTASLL:
		app, stk = table6Split(totalCores, true)
	}
	eng := sim.New(cfg.Seed)
	srv := baseline.NewServer(eng, baseline.ServerConfig{
		Kind: kind, AppCores: app, StackCores: stk, Conns: 32 << 10, AppCycles: kvAppCycles,
	})
	res := baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
		Conns: 32 << 10, NetRTT: 20 * sim.Microsecond,
		Duration: dur, Warmup: warm,
	})
	return res.MOps()
}

func runFig8(cfg RunConfig) *Result {
	dur, warm := 40*sim.Millisecond, 50*sim.Millisecond
	cores := []int{2, 4, 8, 12, 16}
	if cfg.Quick {
		dur, warm = 15*sim.Millisecond, 30*sim.Millisecond
		cores = []int{2, 8, 16}
	}
	r := &Result{
		ID: "fig8", Title: "KV store throughput (mOps) vs total server cores (32K conns, zipf 0.9, 90/10)",
		Header: []string{"Cores", "TAS LL", "TAS SO", "IX", "Linux"},
	}
	for _, c := range cores {
		r.AddRow(fmt.Sprint(c),
			fmtF(kvThroughput(cfg, cpumodel.StackTASLL, c, dur, warm), 2),
			fmtF(kvThroughput(cfg, cpumodel.StackTAS, c, dur, warm), 2),
			fmtF(kvThroughput(cfg, cpumodel.StackIX, c, dur, warm), 2),
			fmtF(kvThroughput(cfg, cpumodel.StackLinux, c, dur, warm), 2))
	}
	r.Note("paper: TAS LL up to 9.6x Linux and 1.9x IX; TAS SO 7.0x Linux and 1.3x IX")
	return r
}

func runTable6(cfg RunConfig) *Result {
	r := &Result{
		ID: "table6", Title: "Core split for TAS in the KV throughput experiment",
		Header: []string{"Total Cores", "Sockets App", "Sockets TAS", "Lowlevel App", "Lowlevel TAS"},
	}
	for _, total := range []int{2, 4, 8, 12, 16} {
		sa, st := table6Split(total, false)
		la, lt := table6Split(total, true)
		r.AddRow(fmt.Sprint(total), fmt.Sprint(sa), fmt.Sprint(st), fmt.Sprint(la), fmt.Sprint(lt))
	}
	r.Note("paper Table 6: sockets app/TAS = 1/1 2/2 5/3 7/5 9/7; lowlevel = even split")
	return r
}

// fig9Combo runs the latency experiment for one server/client stack
// pair: single app core, 15% utilization, open loop.
func fig9Combo(cfg RunConfig, server, client cpumodel.StackKind, dur, warm sim.Time) *stats.Histogram {
	eng := sim.New(cfg.Seed)
	app, stk := 1, 0
	if server == cpumodel.StackTAS || server == cpumodel.StackTASLL {
		stk = 1
	}
	srv := baseline.NewServer(eng, baseline.ServerConfig{
		Kind: server, AppCores: app, StackCores: stk, Conns: 256, AppCycles: kvAppCycles,
	})
	// Client-side stack contribution: its per-request cycles on an
	// unloaded core plus its own notification delay characteristics are
	// approximated as fixed latency.
	var clientCycles float64
	switch client {
	case cpumodel.StackLinux:
		clientCycles = 60000 // includes the wakeup path
	default:
		clientCycles = 9000 // TAS client: fast path + app hops + wakeup
	}
	cost := srv.Costs().TotalCycles()
	rate := 0.15 * 2.1e9 / cost
	res := baseline.RunOpenLoop(eng, srv, baseline.OpenLoopConfig{
		RatePerSec: rate, Conns: 256, NetRTT: 10 * sim.Microsecond,
		Client:   baseline.ClientModel{CyclesPerReq: clientCycles},
		Duration: dur, Warmup: warm,
	})
	return res.Latency
}

var fig9Combos = []struct {
	name           string
	server, client cpumodel.StackKind
}{
	{"TAS/TAS", cpumodel.StackTAS, cpumodel.StackTAS},
	{"IX/TAS", cpumodel.StackIX, cpumodel.StackTAS},
	{"TAS/Linux", cpumodel.StackTAS, cpumodel.StackLinux},
	{"IX/Linux", cpumodel.StackIX, cpumodel.StackLinux},
	{"Linux/TAS", cpumodel.StackLinux, cpumodel.StackTAS},
	{"Linux/Linux", cpumodel.StackLinux, cpumodel.StackLinux},
}

func runFig9(cfg RunConfig) *Result {
	dur, warm := 300*sim.Millisecond, 30*sim.Millisecond
	if cfg.Quick {
		dur = 100 * sim.Millisecond
	}
	r := &Result{
		ID: "fig9", Title: "KV latency CDF points (us) at 15% load (server/client)",
		Header: []string{"Combo", "p10", "p25", "p50", "p75", "p90", "p99"},
	}
	for _, c := range fig9Combos {
		h := fig9Combo(cfg, c.server, c.client, dur, warm)
		r.AddRow(c.name,
			fmtF(h.Quantile(0.10)/1000, 1), fmtF(h.Quantile(0.25)/1000, 1),
			fmtF(h.Quantile(0.50)/1000, 1), fmtF(h.Quantile(0.75)/1000, 1),
			fmtF(h.Quantile(0.90)/1000, 1), fmtF(h.Quantile(0.99)/1000, 1))
	}
	r.Note("paper Figure 9: TAS/TAS fastest; IX close but longer tail; Linux server shifts the whole CDF right")
	return r
}

func runTable5(cfg RunConfig) *Result {
	dur, warm := 400*sim.Millisecond, 30*sim.Millisecond
	if cfg.Quick {
		dur = 150 * sim.Millisecond
	}
	r := &Result{
		ID: "table5", Title: "KV request latency (us) with TAS clients",
		Header: []string{"Server", "Median", "90th", "99th", "Max"},
	}
	for _, k := range []cpumodel.StackKind{cpumodel.StackLinux, cpumodel.StackIX, cpumodel.StackTAS} {
		h := fig9Combo(cfg, k, cpumodel.StackTAS, dur, warm)
		r.AddRow(k.String(),
			fmtF(h.Quantile(0.5)/1000, 0), fmtF(h.Quantile(0.9)/1000, 0),
			fmtF(h.Quantile(0.99)/1000, 0), fmtF(h.Max()/1000, 0))
	}
	r.Note("paper Table 5: Linux 97/129/177/1319; IX 20/27/30/280; TAS 17/20/30/122")
	return r
}

// runTable7: maximum-contention workload (single 4-byte key), 256 conns.
func runTable7(cfg RunConfig) *Result {
	dur, warm := 30*sim.Millisecond, 15*sim.Millisecond
	if cfg.Quick {
		dur = 15 * sim.Millisecond
	}
	r := &Result{
		ID: "table7", Title: "Non-scalable KV workload (single hot key, mOps)",
		Header: []string{"Stack", "1 Core", "2 C", "3 C", "4 C"},
	}
	// The hot key's lock: every request serializes on a short critical
	// section (update or locked read), ~350 cycles. The tiny 4B
	// key/value makes app work cheap (~300 cycles).
	const serialCycles = 350
	const appCycles = 300
	run := func(kind cpumodel.StackKind, total int) float64 {
		app, stk := total, 0
		switch kind {
		case cpumodel.StackTAS, cpumodel.StackTASLL:
			// 1 app core, rest fast path (paper: "1 application core
			// with 1-3 fast path cores").
			app, stk = 1, total-1
			if stk < 1 {
				return 0 // TAS needs at least one fast-path core
			}
		}
		eng := sim.New(cfg.Seed)
		srv := baseline.NewServer(eng, baseline.ServerConfig{
			Kind: kind, AppCores: app, StackCores: stk, Conns: 256, AppCycles: appCycles,
		})
		lock := cpumodel.NewCore(eng, 2.1)
		res := baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
			Conns: 256, NetRTT: 20 * sim.Microsecond,
			Work: func(uint32) baseline.AppWork {
				return baseline.AppWork{Serial: lock, SerialCycles: serialCycles}
			},
			Duration: dur, Warmup: warm,
		})
		return res.MOps()
	}
	for _, k := range []cpumodel.StackKind{cpumodel.StackTASLL, cpumodel.StackTAS, cpumodel.StackIX, cpumodel.StackLinux} {
		cells := []string{k.String()}
		for total := 1; total <= 4; total++ {
			v := run(k, total)
			if v == 0 {
				cells = append(cells, "-")
			} else {
				cells = append(cells, fmtF(v, 1))
			}
		}
		r.AddRow(cells...)
	}
	r.Note("paper Table 7: TAS LL 2.4/3.8/4.6; TAS SO 2.4/3.1/3.1; IX 1.5/2.5/2.8/2.8; Linux 0.3/0.4/0.6/0.8")
	r.Note("TAS scales the stack independently of the lock-bound app; IX/Linux burn app cores on TCP")
	return r
}
