package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cpumodel"
	"repro/internal/sim"
)

func init() {
	register(Experiment{ID: "fig4", Title: "Connection scalability: RPC echo throughput vs connections", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "Throughput with short-lived connections", Run: runFig5})
	register(Experiment{ID: "fig6", Title: "Pipelined RPC throughput vs message size", Run: runFig6})
}

// echoServer builds the RPC echo server model for a stack on the 20-core
// testbed machine; TAS splits cores between app and fast path so neither
// side bottlenecks (the slow path's proportionality would find the same
// split).
func echoServer(eng *sim.Engine, kind cpumodel.StackKind, totalCores, conns int) *baseline.Server {
	const appCycles = 300 // echo application work
	app, stk := totalCores, 0
	if kind == cpumodel.StackTAS || kind == cpumodel.StackTASLL || kind == cpumodel.StackMTCP {
		costs := cpumodel.CostsFor(kind)
		fpCost := costs.Driver + costs.IP + costs.TCP + costs.Other
		appCost := costs.Sockets + appCycles
		// Balance per-core capacities: n*1/fp = (total-n)*1/app.
		stk = int(float64(totalCores)*fpCost/(fpCost+appCost) + 0.5)
		if stk < 1 {
			stk = 1
		}
		if stk >= totalCores {
			stk = totalCores - 1
		}
		app = totalCores - stk
	}
	return baseline.NewServer(eng, baseline.ServerConfig{
		Kind: kind, AppCores: app, StackCores: stk, Conns: conns, AppCycles: appCycles,
	})
}

func runFig4(cfg RunConfig) *Result {
	dur := 40 * sim.Millisecond
	warm := 50 * sim.Millisecond
	if cfg.Quick {
		dur, warm = 15*sim.Millisecond, 30*sim.Millisecond
	}
	r := &Result{
		ID: "fig4", Title: "RPC echo throughput (mOps) vs connections, 20-core server",
		Header: []string{"Connections", "TAS", "IX", "Linux"},
	}
	conns := []int{1 << 10, 16 << 10, 32 << 10, 48 << 10, 64 << 10, 80 << 10, 96 << 10}
	if cfg.Quick {
		conns = []int{1 << 10, 32 << 10, 64 << 10, 96 << 10}
	}
	type series struct {
		kind cpumodel.StackKind
		vals []float64
	}
	// The paper's fig4 TAS runs the sockets API (IX does not have one).
	all := []*series{{kind: cpumodel.StackTAS}, {kind: cpumodel.StackIX}, {kind: cpumodel.StackLinux}}
	for _, s := range all {
		for _, c := range conns {
			eng := sim.New(cfg.Seed)
			srv := echoServer(eng, s.kind, 20, c)
			res := baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
				Conns: c, NetRTT: 20 * sim.Microsecond,
				Duration: dur, Warmup: warm,
			})
			s.vals = append(s.vals, res.MOps())
		}
	}
	for i, c := range conns {
		r.AddRow(fmt.Sprintf("%dK", c/1024), fmtF(all[0].vals[i], 2), fmtF(all[1].vals[i], 2), fmtF(all[2].vals[i], 2))
	}
	// Degradation notes.
	for _, s := range all {
		peak, last := 0.0, s.vals[len(s.vals)-1]
		for _, v := range s.vals {
			if v > peak {
				peak = v
			}
		}
		r.Note("%s: peak %.2f mOps, at max conns %.2f (-%.0f%%)", s.kind, peak, last, 100*(1-last/peak))
	}
	r.Note("paper: TAS 5.1x Linux and 0.95x IX at 1K; degradation TAS ~7%%, IX ~60%%, Linux ~40%%; TAS 2.2x IX at 64K")
	return r
}

// runFig5 models short-lived connections: per connection, a handshake
// involving the slow path and the application several times, then k
// echo RPCs, then teardown. Throughput in mOps (RPCs only) vs k.
func runFig5(cfg RunConfig) *Result {
	dur := 60 * sim.Millisecond
	warm := 20 * sim.Millisecond
	if cfg.Quick {
		dur, warm = 25*sim.Millisecond, 10*sim.Millisecond
	}
	r := &Result{
		ID: "fig5", Title: "Throughput (mOps) with short-lived connections (1024 concurrent)",
		Header: []string{"Msgs/conn", "TAS", "Linux"},
	}
	msgs := []int{1, 2, 4, 16, 64, 256, 1024, 4096}
	if cfg.Quick {
		msgs = []int{1, 4, 64, 1024}
	}
	// Connection-control costs (cycles). TAS: connection setup and
	// teardown are the most heavyweight operations — they involve the
	// slow path AND the application several times during each handshake
	// (§5.1) — so they cost more than Linux's in-kernel handshake even
	// though TAS's data path is far cheaper.
	const tasSetup = 40000.0
	const linuxSetup = 9000.0

	type point struct{ tas, linux float64 }
	var pts []point
	for _, k := range msgs {
		var pt point
		// TAS: one app core, two fast-path cores, one slow-path core.
		{
			eng := sim.New(cfg.Seed)
			srv := baseline.NewServer(eng, baseline.ServerConfig{
				Kind: cpumodel.StackTAS, AppCores: 1, StackCores: 2, Conns: 1024, AppCycles: 300,
			})
			slow := cpumodel.NewCore(eng, 2.1)
			pt.tas = runShortLived(eng, srv, slow, tasSetup, k, dur, warm)
		}
		// Linux: one app core; setup runs inline on it.
		{
			eng := sim.New(cfg.Seed)
			srv := baseline.NewServer(eng, baseline.ServerConfig{
				Kind: cpumodel.StackLinux, AppCores: 1, Conns: 1024, AppCycles: 300,
			})
			res := runShortLived(eng, srv, nil, linuxSetup, k, dur, warm)
			pt.linux = res
		}
		pts = append(pts, pt)
		r.AddRow(fmt.Sprint(k), fmtF(pt.tas, 3), fmtF(pt.linux, 3))
	}
	r.Note("paper: TAS overtakes Linux at >=4 msgs/conn; reaches 95%% of its long-lived throughput at 256 msgs/conn")
	return r
}

// runShortLived drives 1024 concurrent connection slots; each slot
// performs setup (on the slow core if given, else on the server's app
// core via extra app cycles), k closed-loop RPCs, teardown (half a
// setup), then restarts. Returns measured RPC mOps.
func runShortLived(eng *sim.Engine, srv *baseline.Server, slowCore *cpumodel.Core, setupCycles float64, k int, dur, warm sim.Time) float64 {
	const rtt = 20 * sim.Microsecond
	measStart := warm
	measEnd := warm + dur
	var measured uint64

	var slot func(conn uint32)
	slot = func(conn uint32) {
		// Handshake: 1.5 network RTTs plus control-plane processing.
		setupDone := func() {
			done := 0
			var rpc func()
			rpc = func() {
				srv.Request(conn, baseline.AppWork{}, func(sim.Time) {
					eng.After(rtt/2, func() {
						now := eng.Now()
						if now >= measStart && now < measEnd {
							measured++
						}
						done++
						if now >= measEnd {
							return
						}
						if done < k {
							eng.After(rtt/2, rpc)
						} else {
							// Teardown (half a setup) then a fresh
							// connection.
							td := func() { slot(conn) }
							if slowCore != nil {
								slowCore.Exec(setupCycles/2, func() { eng.After(rtt, td) })
							} else {
								srv.Request(conn, baseline.AppWork{ExtraCycles: setupCycles / 2},
									func(sim.Time) { eng.After(rtt, td) })
							}
						}
					})
				})
			}
			eng.After(rtt/2, rpc)
		}
		if slowCore != nil {
			slowCore.Exec(setupCycles, func() { eng.After(rtt+rtt/2, setupDone) })
		} else {
			// Inline on the first app core via a zero-payload request
			// carrying the setup cycles.
			srv.Request(conn, baseline.AppWork{ExtraCycles: setupCycles}, func(sim.Time) {
				eng.After(rtt+rtt/2, setupDone)
			})
		}
	}
	for c := 0; c < 1024; c++ {
		conn := uint32(c)
		eng.After(sim.Time(c)*sim.Microsecond/16, func() { slot(conn) })
	}
	eng.RunUntil(measEnd)
	return float64(measured) / (float64(dur) / 1e9) / 1e6
}

// runFig6 sweeps pipelined RPC message size for RX-only and TX-only
// servers at two application delays.
func runFig6(cfg RunConfig) *Result {
	dur := 30 * sim.Millisecond
	warm := 15 * sim.Millisecond
	if cfg.Quick {
		dur, warm = 12*sim.Millisecond, 8*sim.Millisecond
	}
	r := &Result{
		ID: "fig6", Title: "Pipelined RPC throughput (Gbps goodput), single app thread, 100 conns",
		Header: []string{"Dir", "Delay(cyc)", "Size(B)", "TAS", "mTCP", "Linux"},
	}
	sizes := []int{32, 128, 512, 2048}
	delays := []float64{250, 1000}
	for _, dir := range []string{"RX", "TX"} {
		for _, delay := range delays {
			for _, size := range sizes {
				cells := []string{dir, fmtF(delay, 0), fmt.Sprint(size)}
				for _, kind := range []cpumodel.StackKind{cpumodel.StackTAS, cpumodel.StackMTCP, cpumodel.StackLinux} {
					costs := fig6Costs(kind, dir, size)
					eng := sim.New(cfg.Seed)
					srv := baseline.NewServer(eng, baseline.ServerConfig{
						Kind: kind, AppCores: 1, StackCores: 1, Conns: 100,
						AppCycles: delay, Costs: &costs,
					})
					res := baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
						Conns: 100, NetRTT: 20 * sim.Microsecond,
						Duration: dur, Warmup: warm, Pipeline: 32,
					})
					gbps := res.Throughput * float64(size) * 8 / 1e9
					if gbps > 38.5 {
						gbps = 38.5 // 40G line rate after headers
					}
					cells = append(cells, fmtF(gbps, 2))
				}
				r.AddRow(cells...)
			}
		}
	}
	r.Note("paper: RX small RPCs TAS ~4.5x Linux; TX small 12.4x Linux / 1.5x mTCP at 250cyc; ~2.5x Linux at 1000cyc; TAS hits 40G at 2KB")
	return r
}

// fig6Costs derives per-message costs for the pipelined one-way stream:
// per-packet protocol costs amortize over the messages sharing an MSS
// (22 for 64B messages), while per-message costs (socket call, copy,
// batching bookkeeping) do not.
func fig6Costs(kind cpumodel.StackKind, dir string, size int) cpumodel.Costs {
	base := cpumodel.CostsFor(kind)
	msgsPerPkt := float64(1448) / float64(size)
	if msgsPerPkt < 1 {
		msgsPerPkt = 1
	}
	// One-way traffic: roughly half the echo-RPC protocol work. For a
	// pipelined byte stream, Linux additionally amortizes per-packet
	// kernel work via GRO/GSO-style aggregation.
	proto := (base.Driver + base.IP + base.TCP + base.Other) / 2 / msgsPerPkt
	if kind == cpumodel.StackLinux {
		proto *= 0.35
	}
	// Per-message user-level work: socket call + copy. Linux pays
	// syscall-grade per-message costs that batching cannot remove; TAS
	// reads many messages per poll from the payload buffer; mTCP sits
	// between but its TX path avoids send queueing less well than TAS.
	var perMsg, perByte float64
	switch kind {
	case cpumodel.StackLinux:
		perMsg, perByte = 1500, 0.95
	case cpumodel.StackMTCP:
		perMsg, perByte = 450, 0.6
	default: // TAS
		perMsg, perByte = 250, 0.45
	}
	if dir == "TX" && kind == cpumodel.StackTAS {
		// No intermediate send queueing (§5.1): cheaper send leg.
		perMsg *= 0.8
	}
	out := base
	out.Driver, out.IP, out.Other = 0, 0, 0
	out.TCP = proto
	out.Sockets = perMsg + perByte*float64(size)
	return out
}
