package bench

import "testing"

func TestSmokeRPC(t *testing.T) {
	if raceEnabled {
		t.Skip("simulation smoke impractically slow under the race detector")
	}
	cfg := RunConfig{Seed: 1, Quick: true}
	for _, id := range []string{"fig4", "fig5", "fig6", "fig8", "table6", "table5", "table7"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		r := e.Run(cfg)
		t.Logf("\n%s", r)
	}
}
