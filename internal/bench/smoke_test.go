package bench

import "testing"

func TestSmokeTables(t *testing.T) {
	if raceEnabled {
		t.Skip("simulation smoke impractically slow under the race detector")
	}
	cfg := RunConfig{Seed: 1, Quick: true}
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig7"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		r := e.Run(cfg)
		t.Logf("\n%s", r)
	}
}
