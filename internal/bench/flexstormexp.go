package bench

import (
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "fig10", Title: "FlexStorm throughput (raw and per-core)", Run: runFig10})
	register(Experiment{ID: "table8", Title: "FlexStorm tuple processing time breakdown", Run: runTable8})
}

// flexConfig models one FlexStorm deployment on a stack: each node has a
// demultiplexer thread, two executor threads, and a multiplexer thread
// that batches outgoing tuples (the deployment of §5.4: 3 nodes, workers
// evenly distributed).
type flexConfig struct {
	kind cpumodel.StackKind

	// Per-tuple costs (cycles).
	demuxCycles float64 // demux thread: stack rx + routing
	execCycles  float64 // executor processing (paper: ~0.35us = ~750c)
	muxCycles   float64 // mux thread: batching bookkeeping + stack tx

	// Mux emission batching (application-level for Linux deployment;
	// stack-level for mTCP).
	batchFlush sim.Time
	// Stack-side input batching (mTCP collects packets into large
	// batches before delivering to the app).
	inputBatch sim.Time
}

func flexConfigFor(kind cpumodel.StackKind) flexConfig {
	costs := cpumodel.CostsFor(kind)
	// Tuples are small (~100B): ~14 tuples share an MSS, so per-packet
	// protocol costs amortize; per-tuple socket/queue work does not.
	const tuplesPerPkt = 14
	proto := (costs.Driver + costs.IP + costs.TCP + costs.Other) / tuplesPerPkt
	switch kind {
	case cpumodel.StackLinux:
		return flexConfig{
			kind:        kind,
			demuxCycles: proto/2 + 1500, // syscall-grade per-tuple receive
			execCycles:  780,
			muxCycles:   proto/2 + 900, // batched sends amortize syscalls
			batchFlush:  10 * sim.Millisecond,
		}
	case cpumodel.StackMTCP:
		return flexConfig{
			kind:        kind,
			demuxCycles: proto/2 + 500,
			execCycles:  700,
			muxCycles:   proto/2 + 450,
			batchFlush:  7 * sim.Millisecond, // app batching retained
			inputBatch:  2 * sim.Millisecond, // mTCP's own large rx batches
		}
	default: // TAS
		return flexConfig{
			kind:        kind,
			demuxCycles: proto/2 + 300,
			execCycles:  760,
			muxCycles:   proto/2 + 250,
			batchFlush:  4 * sim.Millisecond, // FlexStorm's own emission queue
		}
	}
}

// flexResult is one deployment's measurement.
type flexResult struct {
	rawMTuples float64 // aggregate tuples/s across the deployment, millions
	perCore    float64
	inQueueUs  float64
	processUs  float64
	outQueueMs float64
	totalMs    float64
}

// runFlex simulates one node at its saturation throughput and scales to
// the 3-node deployment (nodes are symmetric).
func runFlex(cfg RunConfig, fc flexConfig) flexResult {
	eng := sim.New(cfg.Seed)
	demux := cpumodel.NewCore(eng, 2.1)
	exec1 := cpumodel.NewCore(eng, 2.1)
	exec2 := cpumodel.NewCore(eng, 2.1)
	mux := cpumodel.NewCore(eng, 2.1)

	// Offered load: slightly above the per-node bottleneck capacity so
	// the node saturates; measured throughput is the service rate.
	bottleneck := fc.demuxCycles
	if fc.execCycles/2 > bottleneck {
		bottleneck = fc.execCycles / 2
	}
	if fc.muxCycles > bottleneck {
		bottleneck = fc.muxCycles
	}
	capacity := 2.1e9 / bottleneck
	offered := capacity * 0.98 // just below saturation: finite queues

	dur := 400 * sim.Millisecond
	warm := 100 * sim.Millisecond
	if cfg.Quick {
		dur, warm = 150*sim.Millisecond, 50*sim.Millisecond
	}
	gap := stats.NewExp(eng.Rand(), 1e9/offered)

	var served uint64
	inQ := &stats.Running{}
	outQ := &stats.Running{}
	measStart := warm
	measEnd := warm + dur

	// mux batching: tuples emitted at flush boundaries.
	nextFlush := func(now sim.Time, d sim.Time) sim.Time {
		if d <= 0 {
			return now
		}
		return (now/d + 1) * d
	}

	var arrive func()
	i := 0
	arrive = func() {
		if eng.Now() >= measEnd {
			return
		}
		i++
		ex := exec1
		if i%2 == 0 {
			ex = exec2
		}
		// Input batching (mTCP): delivery quantized before demux.
		deliverAt := nextFlush(eng.Now(), fc.inputBatch)
		arrivalTime := eng.Now()
		eng.At(deliverAt, func() {
			demux.Exec(fc.demuxCycles, func() {
				execStart := eng.Now()
				inQ.Add(float64(execStart - arrivalTime))
				ex.Exec(fc.execCycles, func() {
					// Tuple waits in the mux batch, then pays mux cycles.
					flushAt := nextFlush(eng.Now(), fc.batchFlush)
					enq := eng.Now()
					eng.At(flushAt, func() {
						mux.Exec(fc.muxCycles, func() {
							outQ.Add(float64(eng.Now() - enq))
							if eng.Now() >= measStart && eng.Now() < measEnd {
								served++
							}
						})
					})
				})
			})
		})
		eng.After(sim.Time(gap.Draw()), arrive)
	}
	eng.After(0, arrive)
	eng.RunUntil(measEnd + 50*sim.Millisecond)

	perNode := float64(served) / (float64(dur) / 1e9)
	const nodes = 3
	const coresPerNode = 4 // demux + 2 executors + mux
	return flexResult{
		rawMTuples: perNode * nodes / 1e6,
		perCore:    perNode * nodes / (nodes * coresPerNode) / 1e6,
		inQueueUs:  inQ.Mean() / 1e3,
		processUs:  fc.execCycles / 2.1 / 1e3,
		outQueueMs: outQ.Mean() / 1e6,
		totalMs:    (inQ.Mean() + fc.execCycles/2.1 + outQ.Mean()) / 1e6,
	}
}

func flexAll(cfg RunConfig) map[cpumodel.StackKind]flexResult {
	out := make(map[cpumodel.StackKind]flexResult)
	for _, k := range []cpumodel.StackKind{cpumodel.StackLinux, cpumodel.StackMTCP, cpumodel.StackTAS} {
		out[k] = runFlex(cfg, flexConfigFor(k))
	}
	return out
}

func runFig10(cfg RunConfig) *Result {
	res := flexAll(cfg)
	r := &Result{
		ID: "fig10", Title: "FlexStorm average throughput (3 nodes)",
		Header: []string{"Stack", "Raw (mtuples/s)", "Per core (mtuples/s)"},
	}
	for _, k := range []cpumodel.StackKind{cpumodel.StackLinux, cpumodel.StackMTCP, cpumodel.StackTAS} {
		v := res[k]
		r.AddRow(k.String(), fmtF(v.rawMTuples, 2), fmtF(v.perCore, 3))
	}
	r.Note("paper: mTCP 2.1x Linux raw (1.8x per-core, extra stack core); TAS +8%% raw / +26%% per-core vs mTCP (bottleneck: mux thread)")
	return r
}

func runTable8(cfg RunConfig) *Result {
	res := flexAll(cfg)
	r := &Result{
		ID: "table8", Title: "Average FlexStorm tuple processing time",
		Header: []string{"Stack", "Input", "Processing", "Output", "Total"},
	}
	for _, k := range []cpumodel.StackKind{cpumodel.StackLinux, cpumodel.StackMTCP, cpumodel.StackTAS} {
		v := res[k]
		input := fmt.Sprintf("%.2f us", v.inQueueUs)
		if v.inQueueUs > 500 {
			input = fmt.Sprintf("%.1f ms", v.inQueueUs/1000)
		}
		r.AddRow(k.String(), input, fmt.Sprintf("%.2f us", v.processUs),
			fmt.Sprintf("%.1f ms", v.outQueueMs), fmt.Sprintf("%.1f ms", v.totalMs))
	}
	r.Note("paper Table 8: Linux 6.96us/0.37us/20ms/20ms; mTCP 4ms/0.33us/14ms/18ms; TAS 7.47us/0.36us/8ms/8ms")
	return r
}
