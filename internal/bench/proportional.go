package bench

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/cpumodel"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "fig14", Title: "Workload proportionality: cores and throughput over time", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Latency during fast-path core acquisition", Run: runFig15})
	register(Experiment{ID: "ablation-buffers", Title: "Ablation: per-flow vs shared payload buffers", Run: runAblationBuffers})
	register(Experiment{ID: "ablation-steering", Title: "Ablation: eager vs draining re-steering on core scaling", Run: runAblationSteering})
}

// proportionalRig drives a TAS KV server with a client count that steps
// up and down over time, the §5.6 experiment. Returns per-interval
// (seconds, cores, mOps, p50 latency us).
type propSample struct {
	t     float64
	cores int
	mops  float64
	p50us float64
	p99us float64
}

func runProportional(cfg RunConfig, stepDur sim.Time) []propSample {
	eng := sim.New(cfg.Seed)
	srv := baseline.NewServer(eng, baseline.ServerConfig{
		Kind: cpumodel.StackTAS, AppCores: 8, StackCores: 10, Conns: 4096, AppCycles: kvAppCycles,
	})
	srv.SetActiveFP(1)
	srv.Monitor(2*sim.Millisecond, 0.2, 1.25, nil)

	// Client machines each offer a fixed open load; the schedule adds
	// one machine per step, then removes them again.
	perClient := 0.8e6 // requests/s per client machine
	schedule := []int{1, 2, 3, 4, 5, 4, 3, 2, 1}
	total := sim.Time(len(schedule)) * stepDur

	gap := stats.NewExp(eng.Rand(), 1)
	var clients int
	var samples []propSample

	// Load generator re-parameterized by the schedule.
	var arrive func()
	arrive = func() {
		if eng.Now() >= total {
			return
		}
		if clients > 0 {
			conn := uint32(eng.Rand().Intn(4096))
			srv.Request(conn, baseline.AppWork{}, nil)
		}
		rate := perClient * float64(clients)
		if rate < 1000 {
			rate = 1000
		}
		eng.After(sim.Time(gap.Draw()*1e9/rate), arrive)
	}
	eng.After(0, arrive)

	// Measurement: sample served count and latency percentiles per
	// window.
	windows := int(total / (stepDur / 4))
	var lastServed uint64
	hist := stats.NewLatencyHistogram()
	// Latency probe: a light closed loop measuring end-to-end.
	var probe func()
	probe = func() {
		if eng.Now() >= total {
			return
		}
		srv.Request(uint32(eng.Rand().Intn(4096)), baseline.AppWork{}, func(lat sim.Time) {
			hist.Add(float64(lat))
		})
		eng.After(200*sim.Microsecond, probe)
	}
	eng.After(0, probe)

	for w := 0; w < windows; w++ {
		at := sim.Time(w+1) * stepDur / 4
		step := int(at / stepDur)
		if step >= len(schedule) {
			step = len(schedule) - 1
		}
		clients = schedule[min(int(eng.Now()/stepDur), len(schedule)-1)]
		eng.RunUntil(at)
		clients = schedule[step]
		served := srv.Served
		mops := float64(served-lastServed) / (float64(stepDur/4) / 1e9) / 1e6
		lastServed = served
		samples = append(samples, propSample{
			t:     float64(at) / 1e9,
			cores: srv.ActiveFP(),
			mops:  mops,
			p50us: hist.Quantile(0.5) / 1000,
			p99us: hist.Quantile(0.99) / 1000,
		})
		hist = stats.NewLatencyHistogram()
	}
	return samples
}

func runFig14(cfg RunConfig) *Result {
	stepDur := 40 * sim.Millisecond // stands in for the paper's 10s steps
	if cfg.Quick {
		stepDur = 20 * sim.Millisecond
	}
	samples := runProportional(cfg, stepDur)
	r := &Result{
		ID: "fig14", Title: "TAS fast-path cores and throughput as load steps up then down",
		Header: []string{"t (ms)", "Clients step", "FP cores", "Throughput (mOps)"},
	}
	for i, s := range samples {
		step := i / 4
		clients := []int{1, 2, 3, 4, 5, 4, 3, 2, 1}[min(step, 8)]
		r.AddRow(fmtF(s.t*1000, 0), fmt.Sprint(clients), fmt.Sprint(s.cores), fmtF(s.mops, 2))
	}
	r.Note("paper: cores ramp 1→3→...→9 as 5 clients arrive, then shed one by one; throughput tracks offered load throughout")
	return r
}

func runFig15(cfg RunConfig) *Result {
	stepDur := 40 * sim.Millisecond
	if cfg.Quick {
		stepDur = 20 * sim.Millisecond
	}
	samples := runProportional(cfg, stepDur)
	r := &Result{
		ID: "fig15", Title: "Request latency around fast-path core acquisitions",
		Header: []string{"t (ms)", "FP cores", "p50 (us)", "p99 (us)"},
	}
	// Zoom on the window around the 3->4 client transition (steps 2-4).
	for _, s := range samples {
		if s.t*1000 < float64(2*stepDur/sim.Millisecond) || s.t*1000 > float64(5*stepDur/sim.Millisecond) {
			continue
		}
		r.AddRow(fmtF(s.t*1000, 0), fmt.Sprint(s.cores), fmtF(s.p50us, 1), fmtF(s.p99us, 1))
	}
	r.Note("paper: during core acquisition latency spikes ~15us (~30%%) then returns; cold caches + wakeup on the new core")
	return r
}

// runAblationBuffers quantifies §3.1's design choice of per-flow payload
// buffers: shared buffers require scanning the sharing flows to compute
// flow-control windows, a per-packet cost that grows with connection
// count; per-flow buffers are constant time.
func runAblationBuffers(cfg RunConfig) *Result {
	dur, warm := 30*sim.Millisecond, 40*sim.Millisecond
	if cfg.Quick {
		dur, warm = 15*sim.Millisecond, 25*sim.Millisecond
	}
	r := &Result{
		ID: "ablation-buffers", Title: "Per-flow vs shared payload buffers (echo mOps, 20 cores)",
		Header: []string{"Connections", "Per-flow", "Shared (iterative window calc)"},
	}
	for _, conns := range []int{1 << 10, 16 << 10, 64 << 10} {
		run := func(shared bool) float64 {
			costs := cpumodel.CostsFor(cpumodel.StackTAS)
			if shared {
				// Window computation iterates flows sharing the buffer
				// (log-ish scan with buckets of 1K flows per buffer).
				costs.TCP += float64(conns) * 0.02
			}
			eng := sim.New(cfg.Seed)
			srv := baseline.NewServer(eng, baseline.ServerConfig{
				Kind: cpumodel.StackTAS, AppCores: 12, StackCores: 8, Conns: conns,
				AppCycles: 300, Costs: &costs,
			})
			res := baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
				Conns: conns, NetRTT: 20 * sim.Microsecond, Duration: dur, Warmup: warm,
			})
			return res.MOps()
		}
		r.AddRow(fmt.Sprintf("%dK", conns/1024), fmtF(run(false), 2), fmtF(run(true), 2))
	}
	r.Note("per-flow buffers keep fast-path work constant-time per packet; shared buffers collapse at high connection counts")
	return r
}

// runAblationSteering compares §3.4's eager asynchronous RSS re-steering
// (packets may briefly land on the wrong core, protected by per-flow
// locks) with a conservative drain-before-move design that pauses the
// moved flows.
func runAblationSteering(cfg RunConfig) *Result {
	r := &Result{
		ID: "ablation-steering", Title: "Core scale-up transition cost: eager vs draining re-steering",
		Header: []string{"Policy", "p50 during transition (us)", "p99 during transition (us)"},
	}
	run := func(drain bool) (p50, p99 float64) {
		eng := sim.New(cfg.Seed)
		srv := baseline.NewServer(eng, baseline.ServerConfig{
			Kind: cpumodel.StackTAS, AppCores: 4, StackCores: 4, Conns: 1024, AppCycles: 300,
		})
		srv.SetActiveFP(2)
		if drain {
			// Draining design: moving flows stall for a full drain
			// period when the steering changes.
			srv.ColdPeriod = 2 * sim.Millisecond
			srv.ColdExtraCycles = 2500 + 2.1*2000 // + ~2us stall per request
		}
		hist := stats.NewLatencyHistogram()
		stop := sim.Time(20 * sim.Millisecond)
		var probe func()
		probe = func() {
			if eng.Now() >= stop {
				return
			}
			srv.Request(uint32(eng.Rand().Intn(1024)), baseline.AppWork{}, func(lat sim.Time) {
				if eng.Now() >= 10*sim.Millisecond { // transition window
					hist.Add(float64(lat))
				}
			})
			eng.After(5*sim.Microsecond, probe)
		}
		eng.After(0, probe)
		eng.At(10*sim.Millisecond, func() { srv.SetActiveFP(4) })
		eng.RunUntil(stop)
		return hist.Quantile(0.5) / 1000, hist.Quantile(0.99) / 1000
	}
	e50, e99 := run(false)
	d50, d99 := run(true)
	r.AddRow("eager (TAS)", fmtF(e50, 1), fmtF(e99, 1))
	r.AddRow("draining", fmtF(d50, 1), fmtF(d99, 1))
	r.Note("eager re-steering bounds the transition cost to a cold-cache blip; draining stalls every moved flow")
	return r
}
