package bench

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	tas "repro"
)

func init() {
	register(Experiment{
		ID:    "churn",
		Title: "Connection churn under resource governance: throughput, backpressure, leak audit",
		Run:   runChurn,
	})
}

// runChurn drives full connect-transfer-close cycles through the live
// stack while sweeping the governor's flow budget from uncapped down to
// well below the offered concurrency. The capped rows show graceful
// degradation — denied dials surface as retryable backpressure and the
// ladder sheds load instead of the stack failing ad hoc — and every row
// ends with a pool leak audit: all governed pools must drain back to
// zero once the churn stops. The row set is the trajectory recorded in
// BENCH_scale.json.
func runChurn(cfg RunConfig) *Result {
	workers, cycles := 16, 120
	if cfg.Quick {
		workers, cycles = 8, 40
	}
	r := &Result{
		ID:     "churn",
		Title:  "Connect-transfer-close churn vs governor flow budget",
		Header: []string{"FlowBudget", "Churn/s", "p50(ms)", "p99(ms)", "Denied", "PeakRung", "LeakFree"},
	}
	for _, budget := range []int{0, 48, 24} {
		m := churnRun(cfg, budget, workers, cycles)
		lbl := "uncapped"
		if budget > 0 {
			lbl = fmt.Sprint(budget)
		}
		leak := "yes"
		if !m.leakFree {
			leak = "NO"
		}
		r.AddRow(lbl, fmtF(m.rate, 0), fmtF(m.p50, 2), fmtF(m.p99, 2),
			fmt.Sprint(m.denied), fmt.Sprint(m.peakRung), leak)
	}
	r.Note("%d workers x %d cycles each; every cycle dials, streams 8 KiB (SHA-256 verified), and closes", workers, cycles)
	r.Note("Denied counts governor flow-admission denials (surfaced to dialers as retryable backpressure)")
	r.Note("PeakRung is the degradation ladder's high-water mark: 1 cookies, 2 shed-syn, 3 clamp-tx, 4 reclaim")
	r.Note("LeakFree audits the governed pools after the churn: flows, payload, half-open, timers, accept all back to zero")
	return r
}

type churnMetrics struct {
	rate     float64 // completed cycles per second
	p50, p99 float64 // cycle latency ms (dial through close, incl. retries)
	denied   uint64  // governor flow-admission denials
	peakRung int
	leakFree bool
}

const churnPayload = 8 << 10

func churnRun(cfg RunConfig, flowBudget, workers, cycles int) churnMetrics {
	const port = 7200
	fab := tas.NewFabric()
	srv, err := fab.NewService("10.0.0.1", tas.Config{
		MaxFlows:      flowBudget,
		ListenBacklog: 256,
		// Small buffers keep the uncapped row's payload accounting modest
		// and make the capped rows about the flow budget, not memory.
		RxBufSize: 32 << 10, TxBufSize: 32 << 10,
		ControlInterval: 2 * time.Millisecond,
	})
	if err != nil {
		return churnMetrics{}
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tas.Config{
		RxBufSize: 32 << 10, TxBufSize: 32 << 10,
	})
	if err != nil {
		return churnMetrics{}
	}
	defer cli.Close()

	stop := make(chan struct{})
	sctx := srv.NewContext()
	ln, err := sctx.Listen(port)
	if err != nil {
		return churnMetrics{}
	}
	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		defer ln.Close()
		for {
			c, err := ln.Accept(100 * time.Millisecond)
			if err != nil {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			acceptWG.Add(1)
			go func() {
				defer acceptWG.Done()
				defer c.Close()
				buf := make([]byte, churnPayload)
				for off := 0; off < len(buf); {
					n, err := c.ReadTimeout(buf[off:], 2*time.Second)
					if err != nil {
						return
					}
					off += n
				}
				sum := sha256.Sum256(buf)
				c.WriteTimeout(sum[:], 2*time.Second)
			}()
		}
	}()

	var mu sync.Mutex
	var lat []float64
	completed := 0
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			payload := make([]byte, churnPayload)
			rng.Read(payload)
			want := sha256.Sum256(payload)
			ctx := cli.NewContext()
			for i := 0; i < cycles; i++ {
				t0 := time.Now()
				if !churnCycle(ctx, payload, want) {
					continue
				}
				mu.Lock()
				lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
				completed++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	acceptWG.Wait()

	st := srv.Stats()
	m := churnMetrics{
		denied:   st.GovFlowDenied,
		peakRung: st.PeakPressureLevel,
	}
	if completed > 0 {
		m.rate = float64(completed) / elapsed.Seconds()
		sort.Float64s(lat)
		m.p50 = lat[len(lat)/2]
		m.p99 = lat[len(lat)*99/100]
	}
	m.leakFree = poolsDrained(srv, 5*time.Second)
	return m
}

// churnCycle runs one dial-stream-verify-close cycle, retrying
// backpressured dials until one succeeds.
func churnCycle(ctx *tas.Context, payload []byte, want [32]byte) bool {
	var c *tas.Conn
	for {
		var err error
		c, err = ctx.DialTimeout("10.0.0.1", 7200, 2*time.Second)
		if err == nil {
			break
		}
		if !tas.ErrBackpressure(err) && !tas.ErrTimeout(err) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	defer c.Close()
	for off := 0; off < len(payload); {
		n, err := c.WriteTimeout(payload[off:], 2*time.Second)
		if err != nil {
			return false
		}
		off += n
	}
	var got [32]byte
	for off := 0; off < len(got); {
		n, err := c.ReadTimeout(got[off:], 2*time.Second)
		if err != nil {
			return false
		}
		off += n
	}
	return got == want
}

// poolsDrained polls the server's governed pools until flows, payload,
// half-open, timers, and accept all read zero (or the deadline passes):
// the leak audit every churn row must pass.
func poolsDrained(srv *tas.Service, wait time.Duration) bool {
	deadline := time.Now().Add(wait)
	for {
		used := srv.Stats().PoolUsed
		if used["flows"] == 0 && used["payload_bytes"] == 0 &&
			used["half_open"] == 0 && used["timers"] == 0 && used["accept"] == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}
