package bench

import (
	"io"
	"time"

	tas "repro"
	"repro/internal/baseline"
	"repro/internal/cpumodel"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func init() {
	register(Experiment{ID: "cycles", Title: "Per-module cycle breakdown, cycles/packet (Table 1 analog)", Run: runCycles})
}

// runCycles regenerates the paper's Table 1 view — where CPU cycles go,
// by stack module — from both substrates:
//
//   - sim: the request-level TAS server model, whose ExecMod attribution
//     splits the calibrated cost table across rx/tx/app pipeline stages;
//     cycles here are the calibrated Skylake numbers.
//   - live: the in-process Go stack with telemetry enabled, where each
//     fast-path batch section, slow-path sweep, and libtas copy is
//     wall-clock timed and converted at the paper's 2.1 GHz clock.
//
// The live numbers measure this reproduction, not the paper's C code;
// the comparison target is the shape (rx+tx dominate, cc/timer/reaper
// are a small slow-path tax), not the magnitudes.
func runCycles(cfg RunConfig) *Result {
	r := &Result{
		ID: "cycles", Title: "Per-module cycle breakdown (cycles/packet)",
		Header: []string{"source", "module", "cycles/pkt", "share"},
	}

	simRows(cfg, r)
	liveRows(cfg, r)
	r.Note("sim: calibrated Table-1 cost model, per request; live: wall-clock of this Go stack at %.1f GHz, per packet", cpumodel.DefaultCyclesPerNs)
	r.Note("paper Table 1 (TAS, per request): driver 0.09kc, TCP 0.81kc, sockets 0.62kc, other 0.37kc")
	return r
}

// simRows runs the request-level TAS model and reports attributed
// cycles per request.
func simRows(cfg RunConfig, r *Result) {
	dur, warm := 20*sim.Millisecond, 10*sim.Millisecond
	if cfg.Quick {
		dur, warm = 8*sim.Millisecond, 4*sim.Millisecond
	}
	eng := sim.New(cfg.Seed)
	srv := echoServer(eng, cpumodel.StackTAS, 20, 1024)
	baseline.RunClosedLoop(eng, srv, baseline.ClosedLoopConfig{
		Conns: 1024, NetRTT: 20 * sim.Microsecond,
		Duration: dur, Warmup: warm,
	})
	cycles, _ := cpumodel.ModuleBreakdown(srv.AllCores())
	served := float64(srv.Served)
	if served == 0 {
		r.Note("sim: no requests served")
		return
	}
	var total float64
	for _, c := range cycles {
		total += c
	}
	for m := telemetry.Module(0); m < telemetry.NumModules; m++ {
		if cycles[m] == 0 {
			continue
		}
		r.AddRow("sim", m.String(), fmtF(cycles[m]/served, 0), fmtF(100*cycles[m]/total, 1)+"%")
	}
}

// liveRows runs a live echo exchange over the in-process stack with
// telemetry on and reports measured cycles per packet.
func liveRows(cfg RunConfig, r *Result) {
	rpcs := 3000
	if cfg.Quick {
		rpcs = 800
	}
	fab := tas.NewFabric()
	tcfg := tas.Config{Telemetry: tas.TelemetryConfig{Enabled: true}}
	srv, err := fab.NewService("10.0.0.1", tcfg)
	if err != nil {
		r.Note("live: %v", err)
		return
	}
	defer srv.Close()
	cli, err := fab.NewService("10.0.0.2", tcfg)
	if err != nil {
		r.Note("live: %v", err)
		return
	}
	defer cli.Close()

	sctx := srv.NewContext()
	ln, err := sctx.Listen(8080)
	if err != nil {
		r.Note("live: %v", err)
		return
	}
	go func() {
		c, err := ln.Accept(5 * time.Second)
		if err != nil {
			return
		}
		buf := make([]byte, 4096)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	cctx := cli.NewContext()
	c, err := cctx.Dial("10.0.0.1", 8080)
	if err != nil {
		r.Note("live: %v", err)
		return
	}
	req, resp := make([]byte, 64), make([]byte, 64)
	for i := 0; i < rpcs; i++ {
		if _, err := c.Write(req); err != nil {
			r.Note("live: write: %v", err)
			return
		}
		if _, err := io.ReadFull(c, resp); err != nil {
			r.Note("live: read: %v", err)
			return
		}
	}
	c.Close()

	// Packets handled by the server's fast path (both directions).
	eng := srv.Engine()
	var pkts uint64
	for i := 0; i < eng.MaxCores(); i++ {
		st := eng.Stats(i)
		pkts += st.RxPackets.Load() + st.TxPackets.Load()
	}
	if pkts == 0 {
		r.Note("live: no packets")
		return
	}
	cy := srv.Telemetry().Cycles
	var total float64
	for m := telemetry.Module(0); m < telemetry.NumModules; m++ {
		total += float64(cy.Total(m).Nanos) * cpumodel.DefaultCyclesPerNs
	}
	for m := telemetry.Module(0); m < telemetry.NumModules; m++ {
		tot := cy.Total(m)
		if tot.Nanos == 0 && tot.Items == 0 {
			continue
		}
		mc := float64(tot.Nanos) * cpumodel.DefaultCyclesPerNs
		r.AddRow("live", m.String(), fmtF(mc/float64(pkts), 0), fmtF(100*mc/total, 1)+"%")
	}
	r.Note("live: %d RPCs, %d packets through the server fast path", rpcs, pkts)
}
