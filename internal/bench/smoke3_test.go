package bench

import "testing"

func TestSmokeRemaining(t *testing.T) {
	if raceEnabled {
		t.Skip("simulation smoke impractically slow under the race detector")
	}
	cfg := RunConfig{Seed: 1, Quick: true}
	for _, id := range []string{"fig10", "table8", "fig14", "fig15", "ablation-buffers", "ablation-steering", "fig11", "fig13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		r := e.Run(cfg)
		t.Logf("\n%s", r)
	}
}
